// Deep ftsh semantics: interactions between constructs, scoping corners,
// I/O transaction behaviour, and documented edge cases.
#include <gtest/gtest.h>

#include "shell/interpreter.hpp"
#include "shell/sim_executor.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::shell {
namespace {

struct RunResult {
  Status status;
  std::string output;
  double elapsed = 0;
};

RunResult run_script(const std::string& src,
                     const std::function<void(SimExecutor&)>& setup = {},
                     Environment* env = nullptr,
                     InterpreterOptions options = {}) {
  sim::Kernel kernel(options.seed);
  SimExecutor executor(kernel);
  if (setup) setup(executor);
  Environment local_env;
  Environment* e = env ? env : &local_env;
  RunResult result;
  kernel.spawn("script", [&](sim::Context& ctx) {
    SimExecutor::ContextBinding binding(executor, ctx);
    Interpreter interpreter(executor, options);
    result.status = interpreter.run_source(src, *e);
    result.output = interpreter.output();
  });
  kernel.run();
  result.elapsed = to_seconds(kernel.now());
  return result;
}

// ---------------------------------------------------------- construct mix

TEST(SemanticsTest, ForanyInsideForall) {
  // Each parallel branch independently races through its alternatives.
  RunResult r = run_script(
      "forall job in a b\n"
      "  forany host in bad good\n"
      "    probe ${host}\n"
      "  end\n"
      "end",
      [](SimExecutor& ex) {
        ex.register_command("probe", [](sim::Context& ctx,
                                        const CommandInvocation& inv) {
          ctx.sleep(sec(1));
          if (inv.argv[1] == "bad") {
            return CommandResult{Status::unavailable("bad host"), "", ""};
          }
          return CommandResult{Status::success(), "", ""};
        });
      });
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.elapsed, 2.0);  // branches in parallel, alternatives serial
}

TEST(SemanticsTest, ForallInsideForany) {
  // First alternative's parallel group fails -> second alternative works.
  RunResult r = run_script(
      "forany cluster in broken healthy\n"
      "  forall n in 1 2\n"
      "    start ${cluster} ${n}\n"
      "  end\n"
      "end\n"
      "echo used ${cluster}",
      [](SimExecutor& ex) {
        ex.register_command("start", [](sim::Context& ctx,
                                        const CommandInvocation& inv) {
          ctx.sleep(sec(1));
          if (inv.argv[1] == "broken" && inv.argv[2] == "2") {
            return CommandResult{Status::failure("node down"), "", ""};
          }
          return CommandResult{Status::success(), "", ""};
        });
      });
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.output, "used healthy\n");
}

TEST(SemanticsTest, TryInsideCatch) {
  RunResult r = run_script(
      "try 1 times\n"
      "  false\n"
      "catch\n"
      "  try 3 times\n"
      "    recover\n"
      "  end\n"
      "end\n"
      "echo done",
      [](SimExecutor& ex) {
        int calls = 0;
        ex.register_command(
            "recover",
            [calls](sim::Context&, const CommandInvocation&) mutable {
              ++calls;
              if (calls < 3) {
                return CommandResult{Status::failure("not yet"), "", ""};
              }
              return CommandResult{Status::success(), "", ""};
            });
      });
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.output, "done\n");
}

TEST(SemanticsTest, NestedCatchRethrowCaughtByOuterTry) {
  RunResult r = run_script(
      "try 2 times\n"
      "  try 1 times\n"
      "    attempt\n"
      "  catch\n"
      "    echo cleanup\n"
      "    failure\n"
      "  end\n"
      "end",
      [](SimExecutor& ex) {
        int calls = 0;
        ex.register_command(
            "attempt",
            [calls](sim::Context&, const CommandInvocation&) mutable {
              ++calls;
              if (calls < 2) {
                return CommandResult{Status::failure("first time"), "", ""};
              }
              return CommandResult{Status::success(), "", ""};
            });
      });
  // First inner try fails -> catch echoes + rethrows -> outer retries ->
  // second attempt succeeds (no catch entered).
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.output, "cleanup\n");
}

TEST(SemanticsTest, TryZeroTimesFailsWithoutRunningBody) {
  int calls = 0;
  RunResult r = run_script("try 0 times\n  count\nend",
                           [&](SimExecutor& ex) {
                             ex.register_command(
                                 "count",
                                 [&](sim::Context&, const CommandInvocation&) {
                                   ++calls;
                                   return CommandResult{Status::success(), "",
                                                        ""};
                                 });
                           });
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(calls, 0);
}

TEST(SemanticsTest, FiveLevelNestedTryDeadlines) {
  // The outermost limit applies regardless of nesting depth (paper: "The
  // outer time limit of thirty minutes applies regardless of the depth").
  RunResult r = run_script(
      "try for 4 seconds\n"
      " try for 1 hour\n"
      "  try for 2 hours\n"
      "   try for 3 hours\n"
      "    try for 4 hours\n"
      "     sleep 1 day\n"
      "    end\n"
      "   end\n"
      "  end\n"
      " end\n"
      "end");
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(r.elapsed, 4.0);
}

TEST(SemanticsTest, WhileBodyFailureStopsLoopAndScript) {
  RunResult r = run_script(
      "i=0\n"
      "while ${i} .lt. 10\n"
      "  i = ${i} .add. 1\n"
      "  if ${i} .eq. 3\n"
      "    failure\n"
      "  end\n"
      "end\n"
      "echo unreached",
      {});
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(r.output, "");
}

TEST(SemanticsTest, ReturnAtTopLevelEndsScriptWithSuccess) {
  RunResult r = run_script("echo one\nreturn\necho two");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "one\n");
}

TEST(SemanticsTest, ReturnInsideWhileInsideFunction) {
  RunResult r = run_script(
      "function find_first\n"
      "  i=0\n"
      "  while ${i} .lt. 100\n"
      "    i = ${i} .add. 1\n"
      "    if ${i} .eq. 4\n"
      "      found=${i}\n"
      "      return\n"
      "    end\n"
      "  end\n"
      "  failure\n"
      "end\n"
      "found=none\n"
      "find_first\n"
      "echo found ${found}");
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.output, "found 4\n");
}

// ------------------------------------------------------------- functions

TEST(SemanticsTest, FunctionsCallFunctions) {
  RunResult r = run_script(
      "function inner x\n"
      "  echo inner ${x}\n"
      "end\n"
      "function outer y\n"
      "  inner ${y}-a\n"
      "  inner ${y}-b\n"
      "end\n"
      "outer top");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "inner top-a\ninner top-b\n");
}

TEST(SemanticsTest, RunawayRecursionFailsCleanly) {
  RunResult r = run_script(
      "function loop\n"
      "  loop\n"
      "end\n"
      "loop");
  EXPECT_TRUE(r.status.failed());
  EXPECT_NE(r.status.message().find("recursion"), std::string::npos);
}

TEST(SemanticsTest, BoundedRecursionWorks) {
  RunResult r = run_script(
      "function countdown n\n"
      "  if ${n} .gt. 0\n"
      "    echo ${n}\n"
      "    m = ${n} .sub. 1\n"
      "    countdown ${m}\n"
      "  end\n"
      "end\n"
      "countdown 3");
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.output, "3\n2\n1\n");
}

TEST(SemanticsTest, QuotedArgumentsSurviveFunctionCalls) {
  RunResult r = run_script(
      "function show a\n"
      "  echo [${a}]\n"
      "end\n"
      "show \"two words\"");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "[two words]\n");
}

TEST(SemanticsTest, FunctionAssignmentsReachEnclosingScope) {
  // assign updates where defined: a global set inside a function persists.
  RunResult r = run_script(
      "x=before\n"
      "function set_it\n"
      "  x=after\n"
      "end\n"
      "set_it\n"
      "echo ${x}");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "after\n");
}

// --------------------------------------------------- variables and words

TEST(SemanticsTest, CapturedListFansOutForany) {
  RunResult r = run_script(
      "list-mirrors -> mirrors\n"
      "forany m in ${mirrors}\n"
      "  probe ${m}\n"
      "end\n"
      "echo ${m}",
      [](SimExecutor& ex) {
        ex.register_command("list-mirrors",
                            [](sim::Context&, const CommandInvocation&) {
                              return CommandResult{Status::success(),
                                                   "m1 m2 m3\n", ""};
                            });
        ex.register_command("probe", [](sim::Context&,
                                        const CommandInvocation& inv) {
          if (inv.argv[1] == "m3") {
            return CommandResult{Status::success(), "", ""};
          }
          return CommandResult{Status::unavailable("down"), "", ""};
        });
      });
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.output, "m3\n");
}

TEST(SemanticsTest, IoTransactionThroughVariables) {
  // The paper's pattern: hold output in a variable until the command
  // definitely completed, then release it.
  RunResult r = run_script(
      "try 3 times\n"
      "  run-simulation ->& tmp\n"
      "end\n"
      "cat -< tmp",
      [](SimExecutor& ex) {
        int calls = 0;
        ex.register_command(
            "run-simulation",
            [calls](sim::Context&, const CommandInvocation&) mutable {
              ++calls;
              if (calls < 3) {
                // Failed attempts still PRINT partial junk...
                return CommandResult{Status::failure("sim crashed"),
                                     "partial garbage\n", ""};
              }
              return CommandResult{Status::success(), "final result\n", ""};
            });
      });
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  // ...but none of the partial junk leaked into the committed value.
  EXPECT_EQ(r.output, "final result");
}

TEST(SemanticsTest, FileRedirectionIsNotTransactional) {
  // Contrast with the above (and with the paper's discussion): direct file
  // redirection commits per command, so a failed later member leaves the
  // file behind.
  SimExecutor* captured = nullptr;
  RunResult r = run_script(
      "emit > out.txt\n"
      "false",
      [&](SimExecutor& ex) {
        captured = &ex;
        ex.register_command("emit", [](sim::Context&,
                                       const CommandInvocation&) {
          return CommandResult{Status::success(), "partial\n", ""};
        });
      });
  EXPECT_TRUE(r.status.failed());
  // The file exists despite the script failing.
}

TEST(SemanticsTest, RedirectTargetsMayUseVariables) {
  Environment env;
  env.assign("base", "result");
  RunResult r = run_script(
      "echo hello > ${base}.txt\n"
      "cat < ${base}.txt",
      {}, &env);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "hello\n");
}

TEST(SemanticsTest, ExistsSeesScriptSideEffects) {
  RunResult r = run_script(
      "if .exists. flagfile\n"
      "  echo early\n"
      "end\n"
      "append-file flagfile x\n"
      "if .exists. flagfile\n"
      "  echo late\n"
      "end");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "late\n");
}

TEST(SemanticsTest, DefaultExpansionUsesValueWhenSet) {
  Environment env;
  env.assign("x", "real");
  RunResult r = run_script("echo ${x:-fallback}", {}, &env);
  EXPECT_EQ(r.output, "real\n");
}

TEST(SemanticsTest, DefaultExpansionSubstitutesWithoutAssigning) {
  Environment env;
  RunResult r = run_script("echo ${x:-fallback}\necho ${x:-again}", {}, &env);
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.output, "fallback\nagain\n");
  EXPECT_FALSE(env.defined("x"));
}

TEST(SemanticsTest, AssignDefaultExpansionPersists) {
  Environment env;
  RunResult r = run_script("echo ${x:=sticky}\necho ${x:-other}", {}, &env);
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.output, "sticky\nsticky\n");
  EXPECT_EQ(env.get("x"), "sticky");
}

TEST(SemanticsTest, EmptyDefaultMakesUnsetHarmless) {
  RunResult r = run_script("echo [${nothing:-}]");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "[]\n");
}

TEST(SemanticsTest, DefaultsWorkInListsAndSplit) {
  RunResult r = run_script(
      "forany h in ${mirrors:-m1 m2}\n"
      "  probe ${h}\n"
      "end\n"
      "echo ${h}",
      [](SimExecutor& ex) {
        ex.register_command("probe", [](sim::Context&,
                                        const CommandInvocation& inv) {
          if (inv.argv[1] == "m2") {
            return CommandResult{Status::success(), "", ""};
          }
          return CommandResult{Status::unavailable("down"), "", ""};
        });
      });
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.output, "m2\n");  // the default split into two alternatives
}

TEST(SemanticsTest, EmptyListAfterSplittingFails) {
  Environment env;
  env.assign("hosts", "   ");
  RunResult r = run_script("forany h in ${hosts}\n  true\nend", {}, &env);
  EXPECT_TRUE(r.status.failed());
}

TEST(SemanticsTest, ForallOuterVariableLastWriteWins) {
  // Documented semantics: branch-local loop var, but assignments to OUTER
  // names are shared (sequential in virtual time => deterministic order).
  RunResult r = run_script(
      "winner=none\n"
      "forall t in 3 1 2\n"
      "  sleep ${t} seconds\n"
      "  winner=${t}\n"
      "end\n"
      "echo ${winner}");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "3\n");  // the 3 s branch writes last
}

// ------------------------------------------------------------ arithmetic

TEST(SemanticsTest, ArithmeticCorners) {
  RunResult r = run_script(
      "a = 0 .sub. 7\n"
      "b = ${a} .mul. 3\n"
      "c = ${b} .div. 4\n"
      "d = 17 .mod. 5\n"
      "echo ${a} ${b} ${c} ${d}");
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.output, "-7 -21 -5 2\n");  // C++ truncation semantics
}

TEST(SemanticsTest, ComparisonOfNegativeNumbers) {
  RunResult r = run_script(
      "a = 0 .sub. 2\n"
      "if ${a} .lt. 1\n  echo yes\nend");
  EXPECT_EQ(r.output, "yes\n");
}

TEST(SemanticsTest, StringVsNumericEquality) {
  RunResult r = run_script(
      "if abc .ne. abd\n  echo strings\nend\n"
      "if 010 .eq. 10\n  echo numbers\nend");
  EXPECT_EQ(r.output, "strings\nnumbers\n");
}

TEST(SemanticsTest, UndefinedVariableInConditionFailsScript) {
  RunResult r = run_script("if ${ghost} .lt. 3\n  echo x\nend");
  EXPECT_TRUE(r.status.failed());
}

// ----------------------------------------------------------- punctuation

TEST(SemanticsTest, SemicolonsInsideBodies) {
  RunResult r = run_script("try 1 times\n  echo a; echo b; echo c\nend");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "a\nb\nc\n");
}

TEST(SemanticsTest, CommentsInsideConstructs) {
  RunResult r = run_script(
      "try 1 times  # budget\n"
      "  # the payload:\n"
      "  echo ok    # trailing\n"
      "end");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "ok\n");
}

TEST(SemanticsTest, LineContinuationAcrossArguments) {
  RunResult r = run_script("echo one \\\n two \\\n three");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "one two three\n");
}

// -------------------------------------------------------- forall corners

TEST(SemanticsTest, ForallSingleBranchActsLikeGroup) {
  RunResult r = run_script("forall x in only\n  echo ${x}\nend");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "only\n");
}

TEST(SemanticsTest, ForallFailureInsideTryIsRetried) {
  RunResult r = run_script(
      "try for 1 hour or 2 times\n"
      "  forall n in 1 2\n"
      "    job ${n}\n"
      "  end\n"
      "end",
      [](SimExecutor& ex) {
        int round = 0;
        ex.register_command(
            "job", [round](sim::Context& ctx,
                           const CommandInvocation& inv) mutable {
              ctx.sleep(sec(1));
              if (inv.argv[1] == "2") ++round;
              if (inv.argv[1] == "2" && round < 2) {
                return CommandResult{Status::failure("flaked"), "", ""};
              }
              return CommandResult{Status::success(), "", ""};
            });
      });
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
}

TEST(SemanticsTest, TryBudgetCutsForallBranches) {
  RunResult r = run_script(
      "try for 3 seconds\n"
      "  forall t in 1h 2h\n"
      "    sleep ${t}\n"
      "  end\n"
      "end");
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(r.elapsed, 3.0);  // both branches killed at the deadline
}

}  // namespace
}  // namespace ethergrid::shell
