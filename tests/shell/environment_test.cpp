#include "shell/environment.hpp"

#include <gtest/gtest.h>

namespace ethergrid::shell {
namespace {

TEST(EnvironmentTest, GetUnsetReturnsNullopt) {
  Environment env;
  EXPECT_FALSE(env.get("x").has_value());
  EXPECT_FALSE(env.defined("x"));
}

TEST(EnvironmentTest, AssignAndGet) {
  Environment env;
  env.assign("x", "5");
  EXPECT_EQ(env.get("x"), "5");
  env.assign("x", "6");
  EXPECT_EQ(env.get("x"), "6");
}

TEST(EnvironmentTest, ChildSeesParentVariables) {
  Environment root;
  root.assign("x", "1");
  Environment child(&root);
  EXPECT_EQ(child.get("x"), "1");
}

TEST(EnvironmentTest, AssignUpdatesDefiningScope) {
  Environment root;
  root.assign("x", "1");
  Environment child(&root);
  child.assign("x", "2");  // updates the root's x
  EXPECT_EQ(root.get("x"), "2");
}

TEST(EnvironmentTest, AssignUndefinedDefinesLocally) {
  Environment root;
  Environment child(&root);
  child.assign("y", "local");
  EXPECT_EQ(child.get("y"), "local");
  EXPECT_FALSE(root.get("y").has_value());
}

TEST(EnvironmentTest, DefineShadowsParent) {
  Environment root;
  root.assign("x", "outer");
  Environment child(&root);
  child.define("x", "inner");
  EXPECT_EQ(child.get("x"), "inner");
  EXPECT_EQ(root.get("x"), "outer");
  // assign in child now updates the child's shadow, not the root.
  child.assign("x", "inner2");
  EXPECT_EQ(root.get("x"), "outer");
}

TEST(EnvironmentTest, FunctionsAreGlobal) {
  Environment root;
  Environment child(&root);
  FunctionDef def;
  def.name = "f";
  def.body = std::make_shared<Group>();
  child.define_function(def);
  EXPECT_NE(root.find_function("f"), nullptr);
  EXPECT_NE(child.find_function("f"), nullptr);
  EXPECT_EQ(root.find_function("g"), nullptr);
}

TEST(EnvironmentTest, FunctionRedefinitionReplaces) {
  Environment root;
  FunctionDef def;
  def.name = "f";
  def.parameters = {"a"};
  def.body = std::make_shared<Group>();
  root.define_function(def);
  def.parameters = {"a", "b"};
  root.define_function(def);
  EXPECT_EQ(root.find_function("f")->parameters.size(), 2u);
}

}  // namespace
}  // namespace ethergrid::shell
