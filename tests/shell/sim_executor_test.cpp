#include "shell/sim_executor.hpp"

#include <gtest/gtest.h>

namespace ethergrid::shell {
namespace {

// Runs body inside a simulated process with the executor bound.
void in_sim(SimExecutor& executor, sim::Kernel& kernel,
            const std::function<void(sim::Context&)>& body) {
  kernel.spawn("test", [&](sim::Context& ctx) {
    SimExecutor::ContextBinding binding(executor, ctx);
    body(ctx);
  });
  kernel.run();
}

CommandInvocation inv(std::vector<std::string> argv) {
  CommandInvocation i;
  i.argv = std::move(argv);
  return i;
}

TEST(SimExecutorTest, UnknownCommandIsNotFound) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  in_sim(ex, kernel, [&](sim::Context&) {
    CommandResult r = ex.run(inv({"mystery"}));
    EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
  });
}

TEST(SimExecutorTest, RegisteredCommandRuns) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  ex.register_command("hi", [](sim::Context&, const CommandInvocation& i) {
    return CommandResult{Status::success(), "hello " + i.argv.back(), ""};
  });
  in_sim(ex, kernel, [&](sim::Context&) {
    CommandResult r = ex.run(inv({"hi", "there"}));
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.out, "hello there");
  });
}

TEST(SimExecutorTest, RegistrationOverrides) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  ex.register_command("true", [](sim::Context&, const CommandInvocation&) {
    return CommandResult{Status::failure("not so true"), "", ""};
  });
  in_sim(ex, kernel, [&](sim::Context&) {
    EXPECT_TRUE(ex.run(inv({"true"})).status.failed());
  });
}

TEST(SimExecutorTest, EchoBuiltin) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  in_sim(ex, kernel, [&](sim::Context&) {
    EXPECT_EQ(ex.run(inv({"echo", "a", "b"})).out, "a b\n");
    EXPECT_EQ(ex.run(inv({"echo"})).out, "\n");
  });
}

TEST(SimExecutorTest, SleepBuiltinTakesVirtualTime) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  in_sim(ex, kernel, [&](sim::Context& ctx) {
    ASSERT_TRUE(ex.run(inv({"sleep", "90", "seconds"})).status.ok());
    EXPECT_EQ(ctx.now(), kEpoch + sec(90));
    EXPECT_TRUE(ex.run(inv({"sleep"})).status.failed());
    EXPECT_TRUE(ex.run(inv({"sleep", "blue"})).status.failed());
  });
}

TEST(SimExecutorTest, FailBuiltinCarriesMessage) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  in_sim(ex, kernel, [&](sim::Context&) {
    CommandResult r = ex.run(inv({"fail", "disk", "full"}));
    EXPECT_TRUE(r.status.failed());
    EXPECT_EQ(r.status.message(), "disk full");
  });
}

TEST(SimExecutorTest, FlakyRespectsPercentage) {
  sim::Kernel kernel(7);
  SimExecutor ex(kernel);
  in_sim(ex, kernel, [&](sim::Context&) {
    int failures = 0;
    for (int i = 0; i < 200; ++i) {
      if (ex.run(inv({"flaky", "25"})).status.failed()) ++failures;
    }
    EXPECT_GT(failures, 20);
    EXPECT_LT(failures, 80);
    EXPECT_TRUE(ex.run(inv({"flaky", "0"})).status.ok());
    EXPECT_TRUE(ex.run(inv({"flaky", "100"})).status.failed());
    EXPECT_TRUE(ex.run(inv({"flaky", "142"})).status.failed());  // bad arg
  });
}

TEST(SimExecutorTest, FileRedirectionWritesVfs) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  in_sim(ex, kernel, [&](sim::Context&) {
    CommandInvocation i = inv({"echo", "data"});
    i.stdout_file = "out.txt";
    CommandResult r = ex.run(i);
    EXPECT_TRUE(r.status.ok());
    EXPECT_TRUE(r.out.empty());  // routed to the file, not the caller
    EXPECT_EQ(ex.read_file("out.txt"), "data\n");
  });
}

TEST(SimExecutorTest, AppendRedirection) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  in_sim(ex, kernel, [&](sim::Context&) {
    CommandInvocation i = inv({"echo", "one"});
    i.stdout_file = "log";
    (void)ex.run(i);
    i = inv({"echo", "two"});
    i.stdout_file = "log";
    i.stdout_append = true;
    (void)ex.run(i);
    EXPECT_EQ(ex.read_file("log"), "one\ntwo\n");
  });
}

TEST(SimExecutorTest, StdinFileResolved) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  ex.write_file("input", "payload");
  in_sim(ex, kernel, [&](sim::Context&) {
    CommandInvocation i = inv({"cat"});
    i.stdin_file = "input";
    EXPECT_EQ(ex.run(i).out, "payload");
    i.stdin_file = "missing";
    EXPECT_EQ(ex.run(i).status.code(), StatusCode::kNotFound);
  });
}

TEST(SimExecutorTest, MergeStderrFoldsIntoOut) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  ex.register_command("noisy", [](sim::Context&, const CommandInvocation&) {
    return CommandResult{Status::success(), "out.", "err."};
  });
  in_sim(ex, kernel, [&](sim::Context&) {
    CommandInvocation i = inv({"noisy"});
    i.merge_stderr = true;
    CommandResult r = ex.run(i);
    EXPECT_EQ(r.out, "out.err.");
    EXPECT_TRUE(r.err.empty());
  });
}

TEST(SimExecutorTest, VfsHelpers) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  EXPECT_FALSE(ex.file_exists("f"));
  ex.write_file("f", "v");
  EXPECT_TRUE(ex.file_exists("f"));
  EXPECT_EQ(ex.read_file("f"), "v");
  ex.remove_file("f");
  EXPECT_FALSE(ex.file_exists("f"));
  EXPECT_FALSE(ex.read_file("f").has_value());
}

TEST(SimExecutorTest, UseOutsideProcessThrows) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  EXPECT_THROW((void)ex.now(), std::logic_error);
  EXPECT_THROW((void)ex.run(inv({"echo"})), std::logic_error);
}

TEST(SimExecutorTest, WithDeadlinePreempts) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  in_sim(ex, kernel, [&](sim::Context& ctx) {
    Status s = ex.with_deadline(kEpoch + sec(3), [&]() -> Status {
      ctx.sleep(hours(1));
      return Status::success();
    });
    EXPECT_EQ(s.code(), StatusCode::kTimeout);
    EXPECT_EQ(ctx.now(), kEpoch + sec(3));
  });
}

TEST(SimExecutorTest, RunParallelCollectsStatuses) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  in_sim(ex, kernel, [&](sim::Context&) {
    auto statuses = ex.run_parallel({
        [&] {
          ex.sleep(sec(1));
          return Status::success();
        },
        [&] {
          ex.sleep(sec(2));
          return Status::success();
        },
    });
    ASSERT_EQ(statuses.size(), 2u);
    EXPECT_TRUE(statuses[0].ok());
    EXPECT_TRUE(statuses[1].ok());
    EXPECT_EQ(ex.now(), kEpoch + sec(2));  // parallel, not serial
  });
}

TEST(SimExecutorTest, RunParallelAbortsOnFirstFailure) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  in_sim(ex, kernel, [&](sim::Context&) {
    auto statuses = ex.run_parallel({
        [&] {
          ex.sleep(sec(1));
          return Status::failure("early death");
        },
        [&] {
          ex.sleep(hours(5));
          return Status::success();
        },
    });
    ASSERT_EQ(statuses.size(), 2u);
    EXPECT_TRUE(statuses[0].failed());
    EXPECT_EQ(statuses[1].code(), StatusCode::kKilled);
    EXPECT_EQ(ex.now(), kEpoch + sec(1));
  });
}

TEST(SimExecutorTest, RunParallelBranchesGetOwnContexts) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  in_sim(ex, kernel, [&](sim::Context& parent_ctx) {
    std::vector<TimePoint> times;
    (void)ex.run_parallel({
        [&] {
          ex.sleep(sec(2));
          times.push_back(ex.now());
          return Status::success();
        },
        [&] {
          ex.sleep(sec(4));
          times.push_back(ex.now());
          return Status::success();
        },
    });
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], kEpoch + sec(2));
    EXPECT_EQ(times[1], kEpoch + sec(4));
    EXPECT_EQ(parent_ctx.now(), kEpoch + sec(4));
  });
}

TEST(SimExecutorTest, RunParallelUnderDeadlineKillsBranches) {
  sim::Kernel kernel;
  SimExecutor ex(kernel);
  bool timed_out = false;
  kernel.spawn("test", [&](sim::Context& ctx) {
    SimExecutor::ContextBinding binding(ex, ctx);
    try {
      sim::DeadlineScope scope(ctx, kEpoch + sec(2));
      (void)ex.run_parallel({[&] {
        ex.sleep(hours(1));
        return Status::success();
      }});
    } catch (const sim::DeadlineExceeded&) {
      timed_out = true;
    }
  });
  kernel.run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(kernel.live_process_count(), 0u);  // branch did not leak
}

}  // namespace
}  // namespace ethergrid::shell
