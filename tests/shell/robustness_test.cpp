// Front-end robustness: malformed and adversarial input must produce a
// clean parse error (or parse fine), never a crash, hang, or silent
// acceptance of nonsense.  Includes a deterministic token-soup fuzz sweep.
#include <gtest/gtest.h>

#include "shell/parser.hpp"
#include "util/rng.hpp"

namespace ethergrid::shell {
namespace {

class MalformedInputTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MalformedInputTest, FailsCleanly) {
  ParseResult r = parse_script(GetParam());
  EXPECT_TRUE(r.status.failed()) << "accepted: " << GetParam();
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status.message().find("line"), std::string::npos)
      << "no line info: " << r.status.message();
}

INSTANTIATE_TEST_SUITE_P(
    UnbalancedConstructs, MalformedInputTest,
    ::testing::Values("try 1 times\n  a\n",              //
                      "forany x in a\n  b\n",            //
                      "if 1 .lt. 2\n  a\n",              //
                      "while 1 .lt. 2\n  a\n",           //
                      "function f\n  a\n",               //
                      "end",                             //
                      "catch\n  a\nend",                 //
                      "else\n  a\nend",                  //
                      "try 1 times\n a\nend\nend"));

INSTANTIATE_TEST_SUITE_P(
    BadHeaders, MalformedInputTest,
    ::testing::Values("try\n  a\nend",                   //
                      "try for\n  a\nend",               //
                      "try maybe 5\n  a\nend",           //
                      "forany in a b\n  c\nend",         //
                      "forany 9bad in a\n  c\nend",      //
                      "forall x a b\n  c\nend",          //
                      "if\n  a\nend",                    //
                      "while\n  a\nend",                 //
                      "function\n  a\nend",              //
                      "function 3f\n  a\nend"));

INSTANTIATE_TEST_SUITE_P(
    BadExpressions, MalformedInputTest,
    ::testing::Values("if .lt. 2\n  a\nend",             //
                      "if 1 .lt.\n  a\nend",             //
                      "if 1 .lt. 2 extra words .\n  a\nend",
                      "x = 1 .add.",                     //
                      "x = .mul. 3",                     //
                      "failure with args"));

INSTANTIATE_TEST_SUITE_P(
    BadRedirections, MalformedInputTest,
    ::testing::Values("cmd >",      //
                      "cmd <",      //
                      "cmd ->",     //
                      "cmd -<",     //
                      "> file",     //
                      "echo \"unterminated"));

class WellFormedOddInputTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(WellFormedOddInputTest, Parses) {
  ParseResult r = parse_script(GetParam());
  EXPECT_TRUE(r.status.ok()) << GetParam() << ": " << r.status.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Odd, WellFormedOddInputTest,
    ::testing::Values(
        "",                               // empty script
        "\n\n\n;;;\n",                    // separators only
        "# nothing but a comment",        //
        "cmd - -- --- -<x",               // dashes everywhere
        "cmd a=b c=d",                    // '=' in non-head argv words
        "x=",                             // empty assignment value
        "echo ''\necho \"\"",             // empty strings
        "try 999999999 times\n a\nend",   // absurd but well-formed
        "echo $ $$ ${}x",                 // degenerate dollars
        "echo \"a\nb\"",                  // embedded newline in string
        "f() { not shell }"));            // C-shell-isms are just words

// Deterministic fuzz: random token soup.  The parser must terminate with
// either result and never crash.
TEST(FuzzTest, TokenSoupNeverCrashes) {
  const char* vocabulary[] = {
      "try",  "catch",  "end",   "forany", "forall", "if",     "else",
      "while", "function", "failure", "return", "in",  "for",  "times",
      "or",   ".lt.",   ".and.", ".not.",  ".exists.", "echo", "x",
      "${x}", "$y",     "\"q\"", "'lit'",  "5",      "=",      ";",
      ">",    "<",      ">>",    ">&",     "->",     "-<",     "->&",
      "\n",   "\\\n",   "#c\n",  "a=b",    "-",      "--",     "${",
  };
  Rng rng(20030603);  // HPDC-12's opening day
  for (int round = 0; round < 2000; ++round) {
    std::string script;
    const int length = int(rng.uniform_int(0, 40));
    for (int i = 0; i < length; ++i) {
      script += vocabulary[rng.uniform_int(
          0, std::int64_t(std::size(vocabulary)) - 1)];
      script += rng.chance(0.7) ? " " : "";
    }
    ParseResult r = parse_script(script);
    if (r.status.ok()) {
      ASSERT_NE(r.script, nullptr) << script;
    } else {
      ASSERT_EQ(r.status.code(), StatusCode::kInvalidArgument) << script;
    }
  }
}

// Deep nesting must not blow the stack at sane depths and must balance.
TEST(FuzzTest, DeepNestingParses) {
  std::string script;
  const int depth = 200;
  for (int i = 0; i < depth; ++i) script += "try 1 times\n";
  script += "echo deep\n";
  for (int i = 0; i < depth; ++i) script += "end\n";
  ParseResult r = parse_script(script);
  ASSERT_TRUE(r.status.ok()) << r.status.to_string();
  // Walk down to verify the chain depth.
  const Statement* stmt = r.script->top.statements.at(0).get();
  int seen = 1;
  while (stmt->kind == Statement::Kind::kTry &&
         !stmt->try_stmt.body.statements.empty() &&
         stmt->try_stmt.body.statements[0]->kind == Statement::Kind::kTry) {
    stmt = stmt->try_stmt.body.statements[0].get();
    ++seen;
  }
  EXPECT_EQ(seen, depth);
}

TEST(FuzzTest, LongFlatScriptParses) {
  std::string script;
  for (int i = 0; i < 20000; ++i) {
    script += "echo line" + std::to_string(i) + "\n";
  }
  ParseResult r = parse_script(script);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.script->top.statements.size(), 20000u);
}

}  // namespace
}  // namespace ethergrid::shell
