// End-to-end ftsh semantics over the simulated executor.
#include "shell/interpreter.hpp"

#include <gtest/gtest.h>

#include "shell/sim_executor.hpp"

namespace ethergrid::shell {
namespace {

struct RunResult {
  Status status;
  std::string output;
  double elapsed = 0;  // virtual seconds
};

// Runs src in a fresh simulation.  `setup` may register commands / seed the
// VFS; `env` (optional) allows pre-setting and post-inspecting variables.
RunResult run_script(const std::string& src,
                     const std::function<void(SimExecutor&)>& setup = {},
                     Environment* env = nullptr,
                     InterpreterOptions options = {}) {
  sim::Kernel kernel(options.seed);
  SimExecutor executor(kernel);
  if (setup) setup(executor);
  Environment local_env;
  Environment* e = env ? env : &local_env;
  RunResult result;
  kernel.spawn("script", [&](sim::Context& ctx) {
    SimExecutor::ContextBinding binding(executor, ctx);
    Interpreter interpreter(executor, options);
    result.status = interpreter.run_source(src, *e);
    result.output = interpreter.output();
  });
  kernel.run();
  result.elapsed = to_seconds(kernel.now());
  return result;
}

TEST(InterpreterTest, EchoProducesOutput) {
  RunResult r = run_script("echo hello world");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "hello world\n");
}

TEST(InterpreterTest, GroupFailsFast) {
  RunResult r = run_script("echo one\nfalse\necho two");
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(r.output, "one\n");  // 'two' never ran
}

TEST(InterpreterTest, UnknownCommandFails) {
  RunResult r = run_script("no-such-program");
  EXPECT_TRUE(r.status.failed());
}

TEST(InterpreterTest, VariableExpansion) {
  Environment env;
  env.assign("server", "xxx");
  RunResult r = run_script("echo \"got file from ${server}\"", {}, &env);
  EXPECT_EQ(r.output, "got file from xxx\n");
}

TEST(InterpreterTest, UndefinedVariableFailsCommand) {
  RunResult r = run_script("echo ${nope}");
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST(InterpreterTest, SingleQuotesSuppressExpansion) {
  RunResult r = run_script("echo '${nope}'");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "${nope}\n");
}

TEST(InterpreterTest, TrySucceedsImmediately) {
  RunResult r = run_script("try 5 times\n  echo hi\nend");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "hi\n");
  EXPECT_EQ(r.elapsed, 0.0);
}

TEST(InterpreterTest, TryRetriesUntilAttemptsExhausted) {
  int calls = 0;
  RunResult r = run_script("try 3 times\n  always-fail\nend",
                           [&](SimExecutor& ex) {
                             ex.register_command(
                                 "always-fail",
                                 [&](sim::Context&, const CommandInvocation&) {
                                   ++calls;
                                   return CommandResult{
                                       Status::failure("nope"), "", ""};
                                 });
                           });
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(calls, 3);
  // Two backoffs: 1-2s + 2-4s.
  EXPECT_GE(r.elapsed, 3.0);
  EXPECT_LT(r.elapsed, 6.0);
}

TEST(InterpreterTest, TryForTimeAbortsWedgedCommand) {
  // The heart of the paper: the running procedure is forcibly terminated
  // when the limit expires.
  RunResult r = run_script("try for 5 seconds\n  sleep 1 hour\nend");
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(r.status.code(), StatusCode::kTimeout);
  EXPECT_EQ(r.elapsed, 5.0);
}

TEST(InterpreterTest, TryForOrTimesWhicheverFirst) {
  RunResult r = run_script("try for 1 hour or 2 times\n  false\nend");
  EXPECT_TRUE(r.status.failed());
  EXPECT_NE(r.status.code(), StatusCode::kTimeout);
  EXPECT_LT(r.elapsed, 10.0);  // one backoff only
}

TEST(InterpreterTest, TryLimitsFromVariables) {
  Environment env;
  env.assign("t", "5");
  env.assign("n", "2");
  RunResult r =
      run_script("try for ${t} seconds or ${n} times\n  sleep 1m\nend", {},
                 &env);
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(r.elapsed, 5.0);
}

TEST(InterpreterTest, CatchHandlesFailure) {
  RunResult r = run_script(
      "try 2 times\n  false\ncatch\n  echo cleaned\nend\necho after");
  EXPECT_TRUE(r.status.ok());  // catch handled it
  EXPECT_EQ(r.output, "cleaned\nafter\n");
}

TEST(InterpreterTest, CatchCanRethrow) {
  // The paper's idiom: clean up, then `failure`.
  RunResult r = run_script(
      "try 2 times\n  false\ncatch\n  echo cleaned\n  failure\nend");
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(r.output, "cleaned\n");
}

TEST(InterpreterTest, CatchSkippedOnSuccess) {
  RunResult r = run_script("try 2 times\n  echo fine\ncatch\n  echo bad\nend");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "fine\n");
}

TEST(InterpreterTest, NestedTryOuterLimitDominates) {
  // Inner try wants an hour; the outer 10 s budget cuts through it.
  RunResult r = run_script(
      "try for 10 seconds\n  try for 1 hour\n    sleep 2 hours\n  end\nend");
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(r.elapsed, 10.0);
}

TEST(InterpreterTest, NestedTryInnerTimeoutRetriedByOuter) {
  int calls = 0;
  RunResult r = run_script(
      "try for 1 hour or 2 times\n"
      "  try for 3 seconds\n    wedge\n  end\nend",
      [&](SimExecutor& ex) {
        ex.register_command("wedge", [&](sim::Context& ctx,
                                         const CommandInvocation&) {
          ++calls;
          ctx.sleep(minutes(10));
          return CommandResult{Status::success(), "", ""};
        });
      });
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(calls, 2);  // outer retried the inner timeout once
}

TEST(InterpreterTest, ForanyStopsAtFirstSuccess) {
  RunResult r = run_script(
      "forany host in xxx yyy zzz\n"
      "  probe ${host}\n"
      "end\n"
      "echo got ${host}",
      [&](SimExecutor& ex) {
        ex.register_command("probe", [](sim::Context&,
                                        const CommandInvocation& inv) {
          if (inv.argv[1] == "yyy") {
            return CommandResult{Status::success(), "", ""};
          }
          return CommandResult{Status::unavailable(inv.argv[1]), "", ""};
        });
      });
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "got yyy\n");  // winning value persists
}

TEST(InterpreterTest, ForanyFailsWhenAllFail) {
  RunResult r = run_script("forany x in a b c\n  false\nend");
  EXPECT_TRUE(r.status.failed());
}

TEST(InterpreterTest, ForallRunsBranchesInParallel) {
  RunResult r = run_script("forall t in 5 5 5\n  sleep ${t} seconds\nend");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.elapsed, 5.0);  // concurrent, not 15
}

TEST(InterpreterTest, ForallAbortsSiblingsOnFailure) {
  RunResult r = run_script(
      "forall t in quick slow\n  job ${t}\nend",
      [&](SimExecutor& ex) {
        ex.register_command("job", [](sim::Context& ctx,
                                      const CommandInvocation& inv) {
          if (inv.argv[1] == "quick") {
            ctx.sleep(sec(1));
            return CommandResult{Status::failure("quick died"), "", ""};
          }
          ctx.sleep(hours(1));
          return CommandResult{Status::success(), "", ""};
        });
      });
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(r.elapsed, 1.0);  // the slow branch was killed, not awaited
}

TEST(InterpreterTest, ForallBranchVariableIsBranchLocal) {
  RunResult r = run_script(
      "x=outer\n"
      "forall x in a b\n  true\nend\n"
      "echo ${x}");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "outer\n");
}

TEST(InterpreterTest, WordSplittingFansOutUnquotedVariables) {
  Environment env;
  env.assign("hosts", "xxx yyy zzz");
  int probes = 0;
  RunResult r = run_script("forany h in ${hosts}\n  probe ${h}\nend",
                           [&](SimExecutor& ex) {
                             ex.register_command(
                                 "probe",
                                 [&](sim::Context&, const CommandInvocation&) {
                                   ++probes;
                                   return CommandResult{Status::failure("no"),
                                                        "", ""};
                                 });
                           },
                           &env);
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(probes, 3);  // three alternatives, not one
}

TEST(InterpreterTest, QuotedVariablesDoNotSplit) {
  Environment env;
  env.assign("hosts", "xxx yyy zzz");
  int probes = 0;
  RunResult r = run_script("forany h in \"${hosts}\"\n  probe\nend",
                           [&](SimExecutor& ex) {
                             ex.register_command(
                                 "probe",
                                 [&](sim::Context&, const CommandInvocation&) {
                                   ++probes;
                                   return CommandResult{Status::failure("no"),
                                                        "", ""};
                                 });
                           },
                           &env);
  EXPECT_EQ(probes, 1);
}

TEST(InterpreterTest, IfElseNumericComparison) {
  Environment env;
  env.assign("n", "500");
  RunResult r = run_script(
      "if ${n} .lt. 1000\n  echo low\nelse\n  echo high\nend", {}, &env);
  EXPECT_EQ(r.output, "low\n");
  env.assign("n", "5000");
  r = run_script("if ${n} .lt. 1000\n  echo low\nelse\n  echo high\nend", {},
                 &env);
  EXPECT_EQ(r.output, "high\n");
}

TEST(InterpreterTest, IfConditionTypeErrorFails) {
  RunResult r = run_script("if abc .lt. 3\n  echo x\nend");
  EXPECT_TRUE(r.status.failed());
}

TEST(InterpreterTest, WhileLoopWithArithmetic) {
  RunResult r = run_script(
      "i=0\n"
      "while ${i} .lt. 3\n"
      "  echo tick ${i}\n"
      "  i = ${i} .add. 1\n"
      "end");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "tick 0\ntick 1\ntick 2\n");
}

TEST(InterpreterTest, StringEqualityComparison) {
  RunResult r = run_script("if abc .eq. abc\n  echo same\nend");
  EXPECT_EQ(r.output, "same\n");
  r = run_script("if 07 .eq. 7\n  echo numeric\nend");
  EXPECT_EQ(r.output, "numeric\n");  // both parse as ints: numeric equality
}

TEST(InterpreterTest, BooleanOperators) {
  RunResult r = run_script(
      "if 1 .lt. 2 .and. .not. 3 .lt. 2\n  echo yes\nend");
  EXPECT_EQ(r.output, "yes\n");
}

TEST(InterpreterTest, DivisionByZeroFails) {
  RunResult r = run_script("x = 1 .div. 0");
  EXPECT_TRUE(r.status.failed());
}

TEST(InterpreterTest, VariableCaptureRedirect) {
  // The paper: run-simulation ->& tmp ... cat -< tmp
  RunResult r = run_script(
      "run-simulation ->& tmp\n"
      "cat -< tmp",
      [&](SimExecutor& ex) {
        ex.register_command("run-simulation",
                            [](sim::Context&, const CommandInvocation&) {
                              return CommandResult{Status::success(),
                                                   "result 42\n", "warn\n"};
                            });
      });
  EXPECT_TRUE(r.status.ok());
  // ->& merged stderr into the capture; trailing newline stripped like $().
  EXPECT_EQ(r.output, "result 42\nwarn");
}

TEST(InterpreterTest, CaptureNotAssignedOnFailure) {
  Environment env;
  env.assign("tmp", "stale");
  RunResult r = run_script("bad-cmd -> tmp\n", [&](SimExecutor& ex) {
    ex.register_command("bad-cmd", [](sim::Context&,
                                      const CommandInvocation&) {
      return CommandResult{Status::failure("died"), "partial", ""};
    });
  }, &env);
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(env.get("tmp"), "stale");  // partial output not committed
}

TEST(InterpreterTest, FileRedirectionRoundTrip) {
  SimExecutor* captured = nullptr;
  RunResult r = run_script(
      "echo data > file.txt\n"
      "cat < file.txt",
      [&](SimExecutor& ex) { captured = &ex; });
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "data\n");
}

TEST(InterpreterTest, AppendRedirection) {
  std::string contents;
  RunResult r = run_script(
      "echo one > f\n"
      "echo two >> f\n"
      "cat < f");
  EXPECT_EQ(r.output, "one\ntwo\n");
}

TEST(InterpreterTest, CutFileNrIdiomWorks) {
  // The actual Ethernet submitter fragment, with a fake /proc reader.
  RunResult r = run_script(
      "read-file-nr -> n\n"
      "if ${n} .lt. 1000\n  failure\nelse\n  echo submit\nend",
      [&](SimExecutor& ex) {
        ex.register_command("read-file-nr",
                            [](sim::Context&, const CommandInvocation&) {
                              return CommandResult{Status::success(), "512",
                                                   ""};
                            });
      });
  EXPECT_TRUE(r.status.failed());  // 512 < 1000 => failure, try would defer
}

TEST(InterpreterTest, FunctionDefinitionAndCall) {
  RunResult r = run_script(
      "function greet name\n"
      "  echo hello ${name}\n"
      "end\n"
      "greet world\n"
      "greet again");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "hello world\nhello again\n");
}

TEST(InterpreterTest, FunctionArityMismatchFails) {
  RunResult r = run_script(
      "function f a b\n  true\nend\n"
      "f onlyone");
  EXPECT_TRUE(r.status.failed());
}

TEST(InterpreterTest, FunctionParametersAreLocal) {
  Environment env;
  env.assign("name", "outer");
  RunResult r = run_script(
      "function f name\n  echo ${name}\nend\n"
      "f inner\n"
      "echo ${name}",
      {}, &env);
  EXPECT_EQ(r.output, "inner\nouter\n");
}

TEST(InterpreterTest, ReturnExitsFunctionEarlyWithSuccess) {
  RunResult r = run_script(
      "function f\n"
      "  echo before\n"
      "  return\n"
      "  echo after\n"
      "end\n"
      "f\n"
      "echo done");
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.output, "before\ndone\n");
}

TEST(InterpreterTest, FunctionFailurePropagates) {
  RunResult r = run_script(
      "function f\n  failure\nend\n"
      "f\n"
      "echo unreached");
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(r.output, "");
}

TEST(InterpreterTest, FunctionsCanRetryInsideTry) {
  RunResult r = run_script(
      "function fetch host\n"
      "  probe ${host}\n"
      "end\n"
      "try for 1 hour or 3 times\n"
      "  fetch xxx\n"
      "end",
      [&](SimExecutor& ex) {
        int calls = 0;
        ex.register_command(
            "probe",
            [calls](sim::Context&, const CommandInvocation&) mutable {
              ++calls;
              if (calls < 3) {
                return CommandResult{Status::failure("flap"), "", ""};
              }
              return CommandResult{Status::success(), "", ""};
            });
      });
  EXPECT_TRUE(r.status.ok());
}

TEST(InterpreterTest, ExistsOperator) {
  RunResult r = run_script(
      "if .exists. /data/file\n  echo yes\nelse\n  echo no\nend",
      [&](SimExecutor& ex) { ex.write_file("/data/file", "x"); });
  EXPECT_EQ(r.output, "yes\n");
  r = run_script("if .exists. /data/file\n  echo yes\nelse\n  echo no\nend");
  EXPECT_EQ(r.output, "no\n");
}

TEST(InterpreterTest, DeterministicAcrossRuns) {
  const char* src =
      "try for 1 hour or 4 times\n  flaky 80\nend";
  RunResult a = run_script(src);
  RunResult b = run_script(src);
  EXPECT_EQ(a.status.ok(), b.status.ok());
  EXPECT_EQ(a.elapsed, b.elapsed);
}

TEST(InterpreterTest, PaperHeadlineExampleRuns) {
  // "this fragment retries a program for up to one hour in three different
  //  configurations for five minutes each"
  int attempts = 0;
  RunResult r = run_script(
      "try for 1 hour\n"
      "  forany host in xxx yyy zzz\n"
      "    try for 5 minutes\n"
      "      fetch-file ${host} filename\n"
      "    end\n"
      "  end\n"
      "end",
      [&](SimExecutor& ex) {
        ex.register_command(
            "fetch-file", [&](sim::Context& ctx, const CommandInvocation& inv) {
              ++attempts;
              if (inv.argv[1] == "zzz") {
                ctx.sleep(sec(2));
                return CommandResult{Status::success(), "", ""};
              }
              ctx.sleep(minutes(10));  // wedged server: 5 min limit trips
              return CommandResult{Status::success(), "", ""};
            });
      });
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(attempts, 3);
  // Two 5-minute timeouts plus the 2 s success.
  EXPECT_GE(r.elapsed, 602.0);
  EXPECT_LT(r.elapsed, 620.0);
}

TEST(InterpreterTest, StderrGoesToDiagnostics) {
  sim::Kernel kernel;
  SimExecutor executor(kernel);
  executor.register_command("warny",
                            [](sim::Context&, const CommandInvocation&) {
                              return CommandResult{Status::success(), "out\n",
                                                   "err\n"};
                            });
  Environment env;
  std::string diag;
  kernel.spawn("script", [&](sim::Context& ctx) {
    SimExecutor::ContextBinding binding(executor, ctx);
    Interpreter interpreter(executor);
    ASSERT_TRUE(interpreter.run_source("warny", env).ok());
    EXPECT_EQ(interpreter.output(), "out\n");
    diag = interpreter.diagnostics();
  });
  kernel.run();
  EXPECT_EQ(diag, "err\n");
}

TEST(InterpreterTest, CustomStderrSinkSeesEachChunkExactlyOnce) {
  // Regression: with a custom stderr consumer installed the chunk used to
  // reach BOTH the sink and the diagnostics accumulator.  Routing is
  // single-path now: observers always see it, accumulation only while the
  // capture flag is on.
  sim::Kernel kernel;
  SimExecutor executor(kernel);
  executor.register_command("warny",
                            [](sim::Context&, const CommandInvocation&) {
                              return CommandResult{Status::success(), "",
                                                   "err\n"};
                            });
  int chunks_seen = 0;
  std::string sunk;
  obs::StreamObserver streams(nullptr, [&](std::string_view text) {
    ++chunks_seen;
    sunk.append(text);
  });
  ObserverSet observers;
  observers.add(&streams);
  InterpreterOptions options;
  options.observers = &observers;
  options.capture_stderr = false;  // the sink owns the stream
  std::string diag;
  kernel.spawn("script", [&](sim::Context& ctx) {
    SimExecutor::ContextBinding binding(executor, ctx);
    Interpreter interpreter(executor, options);
    Environment env;
    ASSERT_TRUE(interpreter.run_source("warny", env).ok());
    diag = interpreter.diagnostics();
  });
  kernel.run();
  EXPECT_EQ(chunks_seen, 1);
  EXPECT_EQ(sunk, "err\n");
  EXPECT_EQ(diag, "");  // not ALSO accumulated
}

TEST(InterpreterTest, BackChannelLogsFailures) {
  CapturingSink sink;
  Logger logger(LogLevel::kDebug);
  logger.set_sink(sink.as_sink());
  // The Logger rides the observability channel via LoggerObserver now.
  obs::LoggerObserver bridge(&logger);
  ObserverSet observers;
  observers.add(&bridge);
  InterpreterOptions options;
  options.observers = &observers;
  RunResult r = run_script("try 2 times\n  false\nend", {}, nullptr, options);
  EXPECT_TRUE(r.status.failed());
  bool saw_command_failure = false;
  bool saw_try_summary = false;
  for (const auto& rec : sink.records()) {
    if (rec.message.find("'false' failed") != std::string::npos) {
      saw_command_failure = true;
    }
    if (rec.message.find("try at line") != std::string::npos) {
      saw_try_summary = true;
    }
  }
  EXPECT_TRUE(saw_command_failure);
  EXPECT_TRUE(saw_try_summary);
}

}  // namespace
}  // namespace ethergrid::shell
