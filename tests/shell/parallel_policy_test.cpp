// The forall branch-creation governor (the paper's deferred "Ethernet-like
// algorithm" for process creation), in both executors.
#include <gtest/gtest.h>

#include "posix/posix_executor.hpp"
#include "shell/interpreter.hpp"
#include "shell/sim_executor.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::shell {
namespace {

struct SimRun {
  Status status;
  double elapsed = 0;
};

SimRun run_sim_script(const std::string& src, const ParallelPolicy& policy,
                      SimExecutor** executor_out = nullptr,
                      sim::Kernel** kernel_out = nullptr) {
  static thread_local int unused;
  (void)unused;
  sim::Kernel kernel(1);
  SimExecutor executor(kernel);
  executor.set_parallel_policy(policy);
  if (executor_out) *executor_out = &executor;
  if (kernel_out) *kernel_out = &kernel;
  SimRun result;
  kernel.spawn("script", [&](sim::Context& ctx) {
    SimExecutor::ContextBinding binding(executor, ctx);
    Interpreter interpreter(executor);
    Environment env;
    result.status = interpreter.run_source(src, env);
  });
  kernel.run();
  result.elapsed = to_seconds(kernel.now());
  return result;
}

TEST(SimParallelPolicyTest, WindowBoundsConcurrency) {
  ParallelPolicy policy;
  policy.max_concurrent = 2;
  SimRun r = run_sim_script(
      "forall t in 1 1 1 1 1 1\n  sleep ${t} seconds\nend", policy);
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.elapsed, 3.0);  // 6 one-second branches, two at a time
}

TEST(SimParallelPolicyTest, UnlimitedPolicyIsFullyParallel) {
  SimRun r = run_sim_script(
      "forall t in 1 1 1 1 1 1\n  sleep ${t} seconds\nend", ParallelPolicy{});
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.elapsed, 1.0);
}

TEST(SimParallelPolicyTest, WindowStillAbortsOnFailure) {
  ParallelPolicy policy;
  policy.max_concurrent = 1;
  int runs = 0;
  sim::Kernel kernel(1);
  SimExecutor executor(kernel);
  executor.set_parallel_policy(policy);
  executor.register_command(
      "job", [&](sim::Context& ctx, const CommandInvocation& inv) {
        ++runs;
        ctx.sleep(sec(1));
        if (inv.argv[1] == "2") {
          return CommandResult{Status::failure("branch 2 died"), "", ""};
        }
        return CommandResult{Status::success(), "", ""};
      });
  Status status;
  kernel.spawn("script", [&](sim::Context& ctx) {
    SimExecutor::ContextBinding binding(executor, ctx);
    Interpreter interpreter(executor);
    Environment env;
    status = interpreter.run_source(
        "forall n in 1 2 3 4\n  job ${n}\nend", env);
  });
  kernel.run();
  EXPECT_TRUE(status.failed());
  // Serial window: branch 1 ok, branch 2 fails, branches 3-4 never spawn.
  EXPECT_EQ(runs, 2);
}

TEST(SimParallelPolicyTest, ProcessTableSharedAcrossScripts) {
  // Two scripts, each wanting 2 parallel branches, over a 2-slot table:
  // total in-flight branches never exceed the table, yet everything
  // completes (creation backs off rather than failing).
  sim::Kernel kernel(1);
  SimExecutor executor(kernel);
  ParallelPolicy policy;
  policy.process_table_slots = 2;
  executor.set_parallel_policy(policy);
  int in_flight = 0;
  int max_in_flight = 0;
  executor.register_command(
      "work", [&](sim::Context& ctx, const CommandInvocation&) {
        ++in_flight;
        max_in_flight = std::max(max_in_flight, in_flight);
        ctx.sleep(sec(2));
        --in_flight;
        return CommandResult{Status::success(), "", ""};
      });
  int completed = 0;
  for (int s = 0; s < 2; ++s) {
    kernel.spawn("script" + std::to_string(s), [&](sim::Context& ctx) {
      SimExecutor::ContextBinding binding(executor, ctx);
      Interpreter interpreter(executor);
      Environment env;
      if (interpreter.run_source("forall b in 1 2\n  work\nend", env).ok()) {
        ++completed;
      }
    });
  }
  kernel.run();
  EXPECT_EQ(completed, 2);
  EXPECT_LE(max_in_flight, 2);
  EXPECT_EQ(max_in_flight, 2);  // the table was actually used, not idle
}

TEST(SimParallelPolicyTest, TryDeadlinePreemptsGovernedWait) {
  // All table slots are pinned by another script; a try around the starved
  // forall must still time out on schedule.
  sim::Kernel kernel(1);
  SimExecutor executor(kernel);
  ParallelPolicy policy;
  policy.process_table_slots = 1;
  executor.set_parallel_policy(policy);
  executor.register_command("work",
                            [&](sim::Context& ctx, const CommandInvocation&) {
                              ctx.sleep(hours(1));
                              return CommandResult{Status::success(), "", ""};
                            });
  Status hog_status, starved_status;
  kernel.spawn("hog", [&](sim::Context& ctx) {
    SimExecutor::ContextBinding binding(executor, ctx);
    Interpreter interpreter(executor);
    Environment env;
    hog_status = interpreter.run_source("forall x in 1\n  work\nend", env);
  });
  TimePoint starved_done{};
  kernel.spawn("starved", [&](sim::Context& ctx) {
    ctx.sleep(sec(1));  // let the hog take the slot
    SimExecutor::ContextBinding binding(executor, ctx);
    Interpreter interpreter(executor);
    Environment env;
    starved_status = interpreter.run_source(
        "try for 10 seconds\n  forall x in 1\n    work\n  end\nend", env);
    starved_done = ctx.now();
  });
  kernel.run_until(kEpoch + sec(30));
  EXPECT_TRUE(starved_status.failed());
  EXPECT_EQ(starved_done, kEpoch + sec(11));
  kernel.shutdown();
}

// ---- POSIX ----

TEST(PosixParallelPolicyTest, WindowBoundsConcurrency) {
  posix::PosixExecutorOptions options;
  options.kill_grace = msec(200);
  options.poll_interval = msec(5);
  posix::PosixExecutor executor(options);
  ParallelPolicy policy;
  policy.max_concurrent = 2;
  executor.set_parallel_policy(policy);
  Interpreter interpreter(executor);
  Environment env;
  const TimePoint start = executor.now();
  Status s = interpreter.run_source(
      "forall t in 0.2 0.2 0.2 0.2\n  sleep ${t}\nend", env);
  const Duration took = executor.now() - start;
  EXPECT_TRUE(s.ok()) << s.to_string();
  EXPECT_GE(took, msec(380));  // two waves of ~0.2 s
  EXPECT_LT(took, msec(1500));
}

TEST(PosixParallelPolicyTest, ProcessTableLimitsAcrossBranches) {
  posix::PosixExecutorOptions options;
  options.poll_interval = msec(5);
  posix::PosixExecutor executor(options);
  ParallelPolicy policy;
  policy.process_table_slots = 1;
  policy.backoff = core::BackoffPolicy::fixed(msec(10));
  executor.set_parallel_policy(policy);
  Interpreter interpreter(executor);
  Environment env;
  const TimePoint start = executor.now();
  Status s = interpreter.run_source(
      "forall t in 0.2 0.2 0.2\n  sleep ${t}\nend", env);
  const Duration took = executor.now() - start;
  EXPECT_TRUE(s.ok()) << s.to_string();
  EXPECT_GE(took, msec(580));  // fully serialized by the 1-slot table
}

}  // namespace
}  // namespace ethergrid::shell
