// Allocation-count regression gates for the interpreter hot path.
//
// Wall-clock throughput flakes on shared CI machines; the heap allocation
// count of a fixed-seed simulated workload is exactly reproducible.  These
// tests pin that count for the same 100-command workload the micro_shell
// benchmark gates on, with observers off AND on, so a per-command
// allocation sneaking back into either path fails ctest instead of only
// nudging a benchmark number nobody reads.
//
// This file lives in its own test binary: the global operator new/delete
// replacements below are binary-wide.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "shell/interpreter.hpp"
#include "shell/parser.hpp"
#include "shell/sim_executor.hpp"
#include "sim/kernel.hpp"

namespace {
std::atomic<std::int64_t> g_alloc_count{0};
void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ethergrid::shell {
namespace {

// The micro_shell observer workload: 100 trivial commands plus the loop
// arithmetic driving them.
constexpr char kScript[] =
    "i=0\nwhile ${i} .lt. 100\n  true\n  i = ${i} .add. 1\nend";

Status run_workload(const Script& script, obs::ObserverSet* observers) {
  sim::Kernel kernel;
  SimExecutor executor(kernel);
  executor.set_observers(observers);
  InterpreterOptions options;
  options.observers = observers;
  Status result;
  kernel.spawn("bench", [&](sim::Context& ctx) {
    SimExecutor::ContextBinding binding(executor, ctx);
    Interpreter interpreter(executor, options);
    Environment env;
    result = interpreter.run(script, env);
  });
  kernel.run();
  return result;
}

std::int64_t count_allocs(const std::function<void()>& fn) {
  const std::int64_t before = g_alloc_count.load(std::memory_order_relaxed);
  fn();
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

TEST(InterpreterAllocTest, ObserversOffBudget) {
  auto parsed = parse_script(kScript);
  ASSERT_TRUE(parsed.status.ok());
  // One warmup run settles one-time statics (interned sites, lazily
  // initialised library state); after it the count is exactly reproducible.
  ASSERT_TRUE(run_workload(*parsed.script, nullptr).ok());
  const std::int64_t allocs = count_allocs(
      [&] { ASSERT_TRUE(run_workload(*parsed.script, nullptr).ok()); });
  // Kernel + executor setup (builtin registration, process bookkeeping)
  // accounts for essentially all of this; the 100-iteration command loop
  // itself must contribute zero.  Seed value was 218.
  EXPECT_LE(allocs, 110) << "observers-off workload allocation regression";
}

TEST(InterpreterAllocTest, ObserversOnBudget) {
  auto parsed = parse_script(kScript);
  ASSERT_TRUE(parsed.status.ok());
  ASSERT_TRUE(run_workload(*parsed.script, nullptr).ok());  // settle statics
  // Fresh trace + metrics inside the measured region: the count includes
  // their block/arena growth, so the budget covers the true cost of turning
  // full observability on for this workload.
  const std::int64_t allocs = count_allocs([&] {
    obs::TraceRecorder trace("bench");
    obs::MetricsRegistry metrics;
    obs::ObserverSet set;
    set.add(&trace);
    set.add(&metrics);
    ASSERT_TRUE(run_workload(*parsed.script, &set).ok());
  });
  // 201 spans land in one pre-sized record block; the arena and histogram
  // reservoirs grow amortised.  Per-span steady-state cost must stay zero.
  EXPECT_LE(allocs, 200) << "observers-on workload allocation regression";
}

}  // namespace
}  // namespace ethergrid::shell
