#include "shell/parser.hpp"

#include <gtest/gtest.h>

namespace ethergrid::shell {
namespace {

std::shared_ptr<Script> parse_ok(std::string_view src) {
  ParseResult r = parse_script(src);
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  return r.script;
}

Status parse_err(std::string_view src) {
  ParseResult r = parse_script(src);
  EXPECT_TRUE(r.status.failed()) << "expected parse failure for: " << src;
  return r.status;
}

const Statement& only_stmt(const Script& s) {
  EXPECT_EQ(s.top.statements.size(), 1u);
  return *s.top.statements.at(0);
}

TEST(ParserTest, EmptyScript) {
  auto s = parse_ok("\n\n# just a comment\n");
  EXPECT_TRUE(s->top.statements.empty());
}

TEST(ParserTest, SimpleCommand) {
  auto s = parse_ok("wget http://server/file.tar.gz");
  const Statement& stmt = only_stmt(*s);
  EXPECT_EQ(stmt.kind, Statement::Kind::kCommand);
  ASSERT_EQ(stmt.command.argv.size(), 2u);
  EXPECT_TRUE(stmt.command.argv[0].is_literal("wget"));
}

TEST(ParserTest, CommandWithVariables) {
  auto s = parse_ok("wget http://${server}/file");
  const Statement& stmt = only_stmt(*s);
  const Word& url = stmt.command.argv[1];
  ASSERT_EQ(url.segments.size(), 3u);
  EXPECT_EQ(url.segments[0].text, "http://");
  EXPECT_EQ(url.segments[1].kind, WordSegment::Kind::kVariable);
  EXPECT_EQ(url.segments[1].text, "server");
  EXPECT_EQ(url.segments[2].text, "/file");
}

TEST(ParserTest, DollarNameVariable) {
  auto s = parse_ok("fetch-file $host filename");
  const Word& arg = only_stmt(*s).command.argv[1];
  ASSERT_EQ(arg.segments.size(), 1u);
  EXPECT_EQ(arg.segments[0].kind, WordSegment::Kind::kVariable);
  EXPECT_EQ(arg.segments[0].text, "host");
}

TEST(ParserTest, GluedQuotedPiecesFormOneArgument) {
  auto s = parse_ok("echo \"a b\"c");
  const Statement& stmt = only_stmt(*s);
  ASSERT_EQ(stmt.command.argv.size(), 2u);
  EXPECT_EQ(stmt.command.argv[1].describe(), "a bc");
}

TEST(ParserTest, Redirections) {
  auto s = parse_ok("run-simulation ->& tmp < in > out");
  const Redirections& r = only_stmt(*s).command.redirects;
  ASSERT_TRUE(r.stdout_var.has_value());
  EXPECT_TRUE(r.stdout_var->is_literal("tmp"));
  EXPECT_TRUE(r.merge_stderr);
  ASSERT_TRUE(r.stdin_file.has_value());
  EXPECT_TRUE(r.stdin_file->is_literal("in"));
  ASSERT_TRUE(r.stdout_file.has_value());
  EXPECT_FALSE(r.stdout_append);
}

TEST(ParserTest, AppendRedirect) {
  auto s = parse_ok("cmd >> log");
  EXPECT_TRUE(only_stmt(*s).command.redirects.stdout_append);
}

TEST(ParserTest, VarInputRedirect) {
  auto s = parse_ok("cat -< tmp");
  ASSERT_TRUE(only_stmt(*s).command.redirects.stdin_var.has_value());
}

TEST(ParserTest, RedirectionWithoutCommandFails) {
  parse_err("> out");
}

TEST(ParserTest, TryForDuration) {
  auto s = parse_ok("try for 30 minutes\n  a\nend");
  const Statement& stmt = only_stmt(*s);
  ASSERT_EQ(stmt.kind, Statement::Kind::kTry);
  ASSERT_EQ(stmt.try_stmt.time_words.size(), 2u);
  EXPECT_TRUE(stmt.try_stmt.time_words[0].is_literal("30"));
  EXPECT_TRUE(stmt.try_stmt.time_words[1].is_literal("minutes"));
  EXPECT_FALSE(stmt.try_stmt.attempts_word.has_value());
  EXPECT_EQ(stmt.try_stmt.body.statements.size(), 1u);
  EXPECT_FALSE(stmt.try_stmt.catch_body.has_value());
}

TEST(ParserTest, TryTimes) {
  auto s = parse_ok("try 5 times\n  a\nend");
  const TryStmt& t = only_stmt(*s).try_stmt;
  EXPECT_TRUE(t.time_words.empty());
  ASSERT_TRUE(t.attempts_word.has_value());
  EXPECT_TRUE(t.attempts_word->is_literal("5"));
}

TEST(ParserTest, TryForOrTimes) {
  auto s = parse_ok("try for 1 hour or 3 times\n  a\nend");
  const TryStmt& t = only_stmt(*s).try_stmt;
  ASSERT_EQ(t.time_words.size(), 2u);
  EXPECT_TRUE(t.time_words[1].is_literal("hour"));
  ASSERT_TRUE(t.attempts_word.has_value());
  EXPECT_TRUE(t.attempts_word->is_literal("3"));
}

TEST(ParserTest, TryWithVariableLimits) {
  auto s = parse_ok("try for ${t} minutes or ${n} times\n  a\nend");
  const TryStmt& t = only_stmt(*s).try_stmt;
  ASSERT_EQ(t.time_words.size(), 2u);
  EXPECT_EQ(t.time_words[0].segments[0].kind, WordSegment::Kind::kVariable);
  ASSERT_TRUE(t.attempts_word.has_value());
}

TEST(ParserTest, TryCatch) {
  auto s = parse_ok(
      "try 5 times\n  wget x\ncatch\n  rm -f x\n  failure\nend");
  const TryStmt& t = only_stmt(*s).try_stmt;
  ASSERT_TRUE(t.catch_body.has_value());
  EXPECT_EQ(t.catch_body->statements.size(), 2u);
  EXPECT_EQ(t.catch_body->statements[1]->kind, Statement::Kind::kFailure);
}

TEST(ParserTest, TryWithoutLimitsFails) { parse_err("try\n  a\nend"); }

TEST(ParserTest, TryMissingEndFails) { parse_err("try 5 times\n  a\n"); }

TEST(ParserTest, BadTryHeaderFails) {
  parse_err("try quickly\n  a\nend");
  parse_err("try for\n  a\nend");
}

TEST(ParserTest, NestedTry) {
  auto s = parse_ok(R"(
try for 30 minutes
  try for 5 minutes
    wget http://server/file.tar.gz
  end
  try for 1 minute or 3 times
    gunzip file.tar.gz
    tar xvf file.tar
  end
end
)");
  const TryStmt& outer = only_stmt(*s).try_stmt;
  ASSERT_EQ(outer.body.statements.size(), 2u);
  EXPECT_EQ(outer.body.statements[0]->kind, Statement::Kind::kTry);
  EXPECT_EQ(outer.body.statements[1]->kind, Statement::Kind::kTry);
  EXPECT_EQ(outer.body.statements[1]->try_stmt.body.statements.size(), 2u);
}

TEST(ParserTest, ForanyAndForall) {
  auto s = parse_ok("forany server in xxx yyy zzz\n  wget ${server}\nend");
  const ForStmt& f = only_stmt(*s).for_stmt;
  EXPECT_EQ(f.kind, ForStmt::Kind::kAny);
  EXPECT_EQ(f.variable, "server");
  ASSERT_EQ(f.list.size(), 3u);
  EXPECT_TRUE(f.list[2].is_literal("zzz"));

  s = parse_ok("forall file in a b\n  wget ${file}\nend");
  EXPECT_EQ(only_stmt(*s).for_stmt.kind, ForStmt::Kind::kAll);
}

TEST(ParserTest, ForanyRequiresInAndList) {
  parse_err("forany server xxx\n  a\nend");
  parse_err("forany server in\n  a\nend");
  parse_err("forany in a b\n  c\nend");  // 'in' is not an identifier issue
}

TEST(ParserTest, IfElse) {
  auto s = parse_ok(
      "if ${n} .lt. 1000\n  failure\nelse\n  condor_submit job\nend");
  const IfStmt& i = only_stmt(*s).if_stmt;
  ASSERT_NE(i.condition, nullptr);
  EXPECT_EQ(i.condition->kind, Expr::Kind::kBinary);
  EXPECT_EQ(i.condition->op, BinaryOp::kLt);
  EXPECT_EQ(i.then_body.statements.size(), 1u);
  ASSERT_TRUE(i.else_body.has_value());
  EXPECT_EQ(i.else_body->statements.size(), 1u);
}

TEST(ParserTest, ElseIfChain) {
  auto s = parse_ok(R"(
if ${x} .eq. 1
  a
else if ${x} .eq. 2
  b
else
  c
end
)");
  const IfStmt& i = only_stmt(*s).if_stmt;
  ASSERT_TRUE(i.else_body.has_value());
  ASSERT_EQ(i.else_body->statements.size(), 1u);
  EXPECT_EQ(i.else_body->statements[0]->kind, Statement::Kind::kIf);
}

TEST(ParserTest, WhileLoop) {
  auto s = parse_ok("while ${i} .lt. 10\n  i = ${i} .add. 1\nend");
  const Statement& stmt = only_stmt(*s);
  EXPECT_EQ(stmt.kind, Statement::Kind::kWhile);
  EXPECT_EQ(stmt.while_stmt.body.statements.size(), 1u);
  EXPECT_EQ(stmt.while_stmt.body.statements[0]->kind,
            Statement::Kind::kAssignment);
}

TEST(ParserTest, ExpressionPrecedence) {
  // a .lt. b .and. c .lt. d  =>  (a<b) .and. (c<d)
  auto s = parse_ok("if 1 .lt. 2 .and. 3 .lt. 4\n  a\nend");
  const Expr& e = *only_stmt(*s).if_stmt.condition;
  EXPECT_EQ(e.op, BinaryOp::kAnd);
  EXPECT_EQ(e.lhs->op, BinaryOp::kLt);
  EXPECT_EQ(e.rhs->op, BinaryOp::kLt);
}

TEST(ParserTest, ArithmeticPrecedence) {
  // 1 .add. 2 .mul. 3  =>  1 + (2*3)
  auto s = parse_ok("x = 1 .add. 2 .mul. 3");
  const Expr& e = *only_stmt(*s).assignment.value;
  EXPECT_EQ(e.op, BinaryOp::kAdd);
  EXPECT_EQ(e.rhs->op, BinaryOp::kMul);
}

TEST(ParserTest, NotAndExists) {
  auto s = parse_ok("if .not. .exists. /tmp/file\n  a\nend");
  const Expr& e = *only_stmt(*s).if_stmt.condition;
  EXPECT_EQ(e.kind, Expr::Kind::kNot);
  EXPECT_EQ(e.child->kind, Expr::Kind::kExists);
}

TEST(ParserTest, OperatorNeedsLeftOperand) {
  parse_err("if .lt. 3\n  a\nend");
}

TEST(ParserTest, AssignmentSingleToken) {
  auto s = parse_ok("x=5");
  const Statement& stmt = only_stmt(*s);
  ASSERT_EQ(stmt.kind, Statement::Kind::kAssignment);
  EXPECT_EQ(stmt.assignment.name, "x");
  EXPECT_TRUE(stmt.assignment.value->value.is_literal("5"));
}

TEST(ParserTest, AssignmentSpacedExpression) {
  auto s = parse_ok("n = ${n} .add. 1");
  const Statement& stmt = only_stmt(*s);
  ASSERT_EQ(stmt.kind, Statement::Kind::kAssignment);
  EXPECT_EQ(stmt.assignment.name, "n");
  EXPECT_EQ(stmt.assignment.value->kind, Expr::Kind::kBinary);
}

TEST(ParserTest, AssignmentWithVariableValue) {
  auto s = parse_ok("dest=${base}.out");
  const Statement& stmt = only_stmt(*s);
  ASSERT_EQ(stmt.kind, Statement::Kind::kAssignment);
  ASSERT_EQ(stmt.assignment.value->value.segments.size(), 2u);
}

TEST(ParserTest, NonIdentifierEqualsIsCommand) {
  // argv[0] containing '=' but not starting with an identifier stays a
  // command ('=' has no special lexing).
  auto s = parse_ok("make CFLAGS=-O2");
  EXPECT_EQ(only_stmt(*s).kind, Statement::Kind::kCommand);
}

TEST(ParserTest, FunctionDefinition) {
  auto s = parse_ok("function get host file\n  wget ${host}/${file}\nend");
  const Statement& stmt = only_stmt(*s);
  ASSERT_EQ(stmt.kind, Statement::Kind::kFunction);
  EXPECT_EQ(stmt.function.name, "get");
  EXPECT_EQ(stmt.function.parameters,
            (std::vector<std::string>{"host", "file"}));
  EXPECT_EQ(stmt.function.body->statements.size(), 1u);
}

TEST(ParserTest, FailureAndReturn) {
  auto s = parse_ok("failure");
  EXPECT_EQ(only_stmt(*s).kind, Statement::Kind::kFailure);
  s = parse_ok("return");
  EXPECT_EQ(only_stmt(*s).kind, Statement::Kind::kReturn);
  parse_err("failure now");  // no arguments allowed
}

TEST(ParserTest, StrayKeywordsFail) {
  parse_err("end");
  parse_err("catch");
  parse_err("else");
}

TEST(ParserTest, FullPaperScriptParses) {
  auto s = parse_ok(R"(
# The Ethernet submitter from section 5.
try for 5 minutes
  cut -f2 /proc/sys/fs/file-nr -> n
  if ${n} .lt. 1000
    failure
  else
    condor_submit submit.job
  end
end
)");
  EXPECT_EQ(s->top.statements.size(), 1u);
}

TEST(ParserTest, BlackHoleReaderScriptParses) {
  auto s = parse_ok(R"(
try for 900 seconds
  forany host in xxx yyy zzz
    try for 5 seconds
      wget http://$host/flag
    end
    try for 60 seconds
      wget http://$host/data
    end
  end
end
)");
  EXPECT_EQ(s->top.statements.size(), 1u);
}

}  // namespace
}  // namespace ethergrid::shell
