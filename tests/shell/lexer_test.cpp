#include "shell/lexer.hpp"

#include <gtest/gtest.h>

namespace ethergrid::shell {
namespace {

std::vector<Token> lex_ok(std::string_view src) {
  LexResult r = lex(src);
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  return r.tokens;
}

TEST(LexerTest, EmptyInputIsJustEof) {
  auto tokens = lex_ok("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(LexerTest, SimpleCommand) {
  auto tokens = lex_ok("wget http://server/file.tar.gz");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[0].is_word("wget"));
  EXPECT_TRUE(tokens[1].is_word("http://server/file.tar.gz"));
  EXPECT_EQ(tokens[2].kind, TokenKind::kNewline);
  EXPECT_EQ(tokens[3].kind, TokenKind::kEof);
}

TEST(LexerTest, NewlinesAndSemicolonsSeparate) {
  auto tokens = lex_ok("a\nb;c");
  std::vector<TokenKind> kinds;
  for (const auto& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kWord, TokenKind::kNewline, TokenKind::kWord,
                       TokenKind::kNewline, TokenKind::kWord,
                       TokenKind::kNewline, TokenKind::kEof}));
}

TEST(LexerTest, ConsecutiveSeparatorsCollapse) {
  auto tokens = lex_ok("a\n\n\n;;b");
  ASSERT_EQ(tokens.size(), 5u);  // a NL b NL EOF
}

TEST(LexerTest, CommentsIgnoredToEndOfLine) {
  auto tokens = lex_ok("a b # comment with try end\nc");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_TRUE(tokens[0].is_word("a"));
  EXPECT_TRUE(tokens[1].is_word("b"));
  EXPECT_EQ(tokens[2].kind, TokenKind::kNewline);
  EXPECT_TRUE(tokens[3].is_word("c"));
}

TEST(LexerTest, MidWordHashIsLiteral) {
  auto tokens = lex_ok("echo file#1 ${#}");
  EXPECT_TRUE(tokens[1].is_word("file#1"));
  EXPECT_TRUE(tokens[2].is_word("${#}"));
  // ... while a hash at a token boundary still comments.
  tokens = lex_ok("echo a #rest");
  ASSERT_EQ(tokens.size(), 4u);  // echo a NL EOF
}

TEST(LexerTest, LineContinuation) {
  auto tokens = lex_ok("a \\\n b");
  ASSERT_EQ(tokens.size(), 4u);  // a b NL EOF -- one statement
  EXPECT_TRUE(tokens[0].is_word("a"));
  EXPECT_TRUE(tokens[1].is_word("b"));
  EXPECT_FALSE(tokens[1].glued);  // continuation separates tokens
}

TEST(LexerTest, LineNumbersTracked) {
  auto tokens = lex_ok("a\nb\nc");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[2].line, 2);
  EXPECT_EQ(tokens[4].line, 3);
}

TEST(LexerTest, RedirectionOperators) {
  auto tokens = lex_ok("cmd < in > out\ncmd >> log\ncmd >& both");
  EXPECT_EQ(tokens[1].kind, TokenKind::kRedirectIn);
  EXPECT_TRUE(tokens[2].is_word("in"));
  EXPECT_EQ(tokens[3].kind, TokenKind::kRedirectOut);
  EXPECT_EQ(tokens[7].kind, TokenKind::kRedirectApp);
  EXPECT_EQ(tokens[11].kind, TokenKind::kRedirectBoth);
}

TEST(LexerTest, RedirectBreaksWordsWithoutSpaces) {
  auto tokens = lex_ok("cmd>out");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_TRUE(tokens[0].is_word("cmd"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kRedirectOut);
  EXPECT_TRUE(tokens[2].is_word("out"));
}

TEST(LexerTest, VariableRedirections) {
  // The paper's examples: `run-simulation ->& tmp`, `cat -< tmp`,
  // `cut -f2 /proc/sys/fs/file-nr -> n`.
  auto tokens = lex_ok("run-simulation ->& tmp");
  EXPECT_TRUE(tokens[0].is_word("run-simulation"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kVarBoth);
  EXPECT_TRUE(tokens[2].is_word("tmp"));

  tokens = lex_ok("cat -< tmp");
  EXPECT_EQ(tokens[1].kind, TokenKind::kVarIn);

  tokens = lex_ok("cut -f2 /proc/sys/fs/file-nr -> n");
  EXPECT_TRUE(tokens[1].is_word("-f2"));  // '-' flags are plain words
  EXPECT_TRUE(tokens[2].is_word("/proc/sys/fs/file-nr"));
  EXPECT_EQ(tokens[3].kind, TokenKind::kVarOut);
  EXPECT_TRUE(tokens[4].is_word("n"));
}

TEST(LexerTest, HyphenatedWordsAreNotOperators) {
  auto tokens = lex_ok("rm -f file-name.tar");
  EXPECT_TRUE(tokens[1].is_word("-f"));
  EXPECT_TRUE(tokens[2].is_word("file-name.tar"));
}

TEST(LexerTest, DoubleQuotedStrings) {
  auto tokens = lex_ok("echo \"got file from ${server}\"");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "got file from ${server}");
  EXPECT_FALSE(tokens[1].literal);
}

TEST(LexerTest, SingleQuotedStringsAreLiteral) {
  auto tokens = lex_ok("echo '${not_a_var}'");
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "${not_a_var}");
  EXPECT_TRUE(tokens[1].literal);
}

TEST(LexerTest, QuotesPreserveSpacesAndSpecials) {
  auto tokens = lex_ok("echo \"a > b; c # d\"");
  EXPECT_EQ(tokens[1].text, "a > b; c # d");
}

TEST(LexerTest, EscapesInDoubleQuotes) {
  auto tokens = lex_ok(R"(echo "a\"b\\c\$d\ne")");
  EXPECT_EQ(tokens[1].text, "a\"b\\c$d\ne");
}

TEST(LexerTest, BackslashEscapesInWords) {
  auto tokens = lex_ok(R"(echo a\ b)");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_TRUE(tokens[1].is_word("a b"));
}

TEST(LexerTest, GluedTokensMarked) {
  auto tokens = lex_ok("echo \"a\"b c");
  EXPECT_FALSE(tokens[1].glued);  // "a" follows whitespace
  EXPECT_TRUE(tokens[2].glued);   // b glued to "a"
  EXPECT_FALSE(tokens[3].glued);  // c separate
}

TEST(LexerTest, UnterminatedStringFails) {
  LexResult r = lex("echo \"oops");
  EXPECT_TRUE(r.status.failed());
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST(LexerTest, MultilineStringCountsLines) {
  auto r = lex("echo \"a\nb\"\nnext");
  ASSERT_TRUE(r.status.ok());
  // 'next' is on line 3.
  bool found = false;
  for (const auto& t : r.tokens) {
    if (t.is_word("next")) {
      EXPECT_EQ(t.line, 3);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, PaperExampleLexesCleanly) {
  const char* script = R"(
try for 1 hour
  forany host in xxx yyy zzz
    try for 5 minutes
      fetch-file $host filename
    end
  end
end
)";
  LexResult r = lex(script);
  EXPECT_TRUE(r.status.ok());
}

}  // namespace
}  // namespace ethergrid::shell
