#include "shell/audit.hpp"

#include <gtest/gtest.h>

#include "shell/interpreter.hpp"
#include "shell/sim_executor.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::shell {
namespace {

TEST(AuditLogTest, AggregatesBySite) {
  AuditLog log;
  log.record(AuditEntry::Kind::kCommand, 3, "wget", Status::failure("x"),
             sec(1));
  log.record(AuditEntry::Kind::kCommand, 3, "wget", Status::success(),
             sec(2));
  log.record(AuditEntry::Kind::kCommand, 5, "wget", Status::success(),
             sec(1));
  auto entries = log.entries();
  ASSERT_EQ(entries.size(), 2u);  // line 3 and line 5 are distinct sites
  EXPECT_EQ(entries[0].line, 3);
  EXPECT_EQ(entries[0].executions, 2);
  EXPECT_EQ(entries[0].failures, 1);
  EXPECT_EQ(entries[0].busy_total, sec(3));
  EXPECT_EQ(entries[1].line, 5);
  EXPECT_EQ(entries[1].executions, 1);
}

TEST(AuditLogTest, CountsFailureReasons) {
  AuditLog log;
  log.record(AuditEntry::Kind::kCommand, 1, "c", Status::timeout(), sec(1));
  log.record(AuditEntry::Kind::kCommand, 1, "c", Status::timeout(), sec(1));
  log.record(AuditEntry::Kind::kCommand, 1, "c",
             Status::resource_exhausted(), sec(1));
  auto entries = log.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].failure_reasons.at("TIMEOUT"), 2);
  EXPECT_EQ(entries[0].failure_reasons.at("RESOURCE_EXHAUSTED"), 1);
}

TEST(AuditLogTest, TotalsAndClear) {
  AuditLog log;
  log.record(AuditEntry::Kind::kTry, 1, "try 3 times", Status::failure(""),
             sec(1));
  log.record(AuditEntry::Kind::kCommand, 2, "c", Status::success(), sec(1));
  EXPECT_EQ(log.total_executions(), 2);
  EXPECT_EQ(log.total_failures(), 1);
  log.clear();
  EXPECT_EQ(log.total_executions(), 0);
  EXPECT_TRUE(log.entries().empty());
}

TEST(AuditLogTest, ReportMentionsSitesAndReasons) {
  AuditLog log;
  log.record(AuditEntry::Kind::kCommand, 7, "condor_submit",
             Status::unavailable("down"), msec(1500));
  std::string report = log.report();
  EXPECT_NE(report.find("condor_submit"), std::string::npos);
  EXPECT_NE(report.find("UNAVAILABLE"), std::string::npos);
  EXPECT_NE(report.find("7"), std::string::npos);
}

// ---- interpreter integration ----

// The modern wiring: the AuditLog rides the ObserverSet and aggregates
// finished spans; no InterpreterOptions::audit shim involved.
struct AuditWorld {
  sim::Kernel kernel;
  SimExecutor executor{kernel};
  AuditLog audit;
  ObserverSet observers;

  Status run(const std::string& source) {
    observers.add(&audit);
    InterpreterOptions options;
    options.observers = &observers;
    Status result;
    kernel.spawn("script", [&](sim::Context& ctx) {
      SimExecutor::ContextBinding binding(executor, ctx);
      Interpreter interpreter(executor, options);
      Environment env;
      result = interpreter.run_source(source, env);
    });
    kernel.run();
    return result;
  }
};

TEST(AuditIntegrationTest, RecordsRetriedCommandFrequency) {
  AuditWorld world;
  Status s = world.run("try 4 times\n  false\nend");
  EXPECT_TRUE(s.failed());
  auto entries = world.audit.entries();
  ASSERT_EQ(entries.size(), 2u);
  // Entries sort by line: the try construct (line 1), then the command.
  // The try site: one run, with its backoff accounted.
  EXPECT_EQ(entries[0].kind, AuditEntry::Kind::kTry);
  EXPECT_EQ(entries[0].label, "try 4 times");
  EXPECT_EQ(entries[0].executions, 1);
  EXPECT_EQ(entries[0].failures, 1);
  EXPECT_GT(entries[0].backoff_total, sec(3));  // 1+2+4s min, jittered
  // The command site: 4 executions, 4 failures -- "the frequency of each
  // failure branch".
  EXPECT_EQ(entries[1].kind, AuditEntry::Kind::kCommand);
  EXPECT_EQ(entries[1].label, "false");
  EXPECT_EQ(entries[1].executions, 4);
  EXPECT_EQ(entries[1].failures, 4);
}

TEST(AuditIntegrationTest, RecordsForanyOutcome) {
  AuditWorld world;
  Status s = world.run(
      "forany x in a b\n  fail ${x}\nend");
  EXPECT_TRUE(s.failed());
  bool saw_forany = false;
  for (const auto& e : world.audit.entries()) {
    if (e.kind == AuditEntry::Kind::kForany) {
      saw_forany = true;
      EXPECT_EQ(e.failures, 1);
    }
  }
  EXPECT_TRUE(saw_forany);
}

TEST(AuditIntegrationTest, RecordsForallOutcome) {
  AuditWorld world;
  Status s = world.run("forall x in 1 2\n  sleep ${x} seconds\nend");
  EXPECT_TRUE(s.ok());
  bool saw_forall = false;
  for (const auto& e : world.audit.entries()) {
    if (e.kind == AuditEntry::Kind::kForall) {
      saw_forall = true;
      EXPECT_EQ(e.failures, 0);
      EXPECT_GE(e.busy_total, sec(2));
    }
  }
  EXPECT_TRUE(saw_forall);
}

TEST(AuditIntegrationTest, TrySiteLabelCarriesBudget) {
  AuditWorld world;
  (void)world.run("try for 10 seconds or 2 times\n  false\nend");
  bool found = false;
  for (const auto& e : world.audit.entries()) {
    if (e.kind == AuditEntry::Kind::kTry) {
      EXPECT_EQ(e.label, "try for 10 seconds or 2 times");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AuditIntegrationTest, AuditLogOnObserverSetRecords) {
  // The one supported route since the InterpreterOptions::audit shim was
  // removed: the log rides the ObserverSet like any other observer.
  sim::Kernel kernel;
  SimExecutor executor(kernel);
  AuditLog audit;
  ObserverSet observers;
  observers.add(&audit);
  executor.set_observers(&observers);
  Status result;
  kernel.spawn("script", [&](sim::Context& ctx) {
    SimExecutor::ContextBinding binding(executor, ctx);
    InterpreterOptions options;
    options.observers = &observers;
    Interpreter interpreter(executor, options);
    Environment env;
    result = interpreter.run_source("echo ok\nfalse", env);
  });
  kernel.run();
  EXPECT_TRUE(result.failed());
  EXPECT_EQ(audit.total_executions(), 2);
  EXPECT_EQ(audit.total_failures(), 1);
}

TEST(AuditIntegrationTest, FaultEventsBecomeFaultRows) {
  // A kFault event on the observability channel lands in the audit table
  // with the "<site> <kind>" label the legacy fault_observer produced.
  AuditLog audit;
  obs::ObsEvent event;
  event.kind = obs::ObsEvent::Kind::kFault;
  event.site = obs::intern_site("schedd.submit reset");
  event.detail = "fraction=0.42";
  audit.on_event(event);
  auto entries = audit.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, AuditEntry::Kind::kFault);
  EXPECT_EQ(entries[0].label, "schedd.submit reset");
  EXPECT_EQ(entries[0].failures, 1);
}

TEST(AuditIntegrationTest, NoAuditMeansNoRecording) {
  // Covered implicitly everywhere else, but assert the null path works.
  sim::Kernel kernel;
  SimExecutor executor(kernel);
  Status result;
  kernel.spawn("script", [&](sim::Context& ctx) {
    SimExecutor::ContextBinding binding(executor, ctx);
    Interpreter interpreter(executor);  // no audit
    Environment env;
    result = interpreter.run_source("echo fine", env);
  });
  kernel.run();
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace ethergrid::shell
