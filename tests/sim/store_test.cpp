#include "sim/store.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ethergrid::sim {
namespace {

TEST(StoreTest, PutThenGet) {
  Kernel k;
  Store<int> s(k);
  int got = 0;
  k.spawn("p", [&](Context& ctx) {
    s.put(ctx, 42);
    got = s.get(ctx);
  });
  k.run();
  EXPECT_EQ(got, 42);
  EXPECT_TRUE(s.empty());
}

TEST(StoreTest, GetBlocksUntilPut) {
  Kernel k;
  Store<std::string> s(k);
  TimePoint at{};
  std::string got;
  k.spawn("consumer", [&](Context& ctx) {
    got = s.get(ctx);
    at = ctx.now();
  });
  k.spawn("producer", [&](Context& ctx) {
    ctx.sleep(sec(6));
    s.put(ctx, "hello");
  });
  k.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(at, kEpoch + sec(6));
}

TEST(StoreTest, FifoOrdering) {
  Kernel k;
  Store<int> s(k);
  std::vector<int> got;
  k.spawn("producer", [&](Context& ctx) {
    for (int i = 0; i < 5; ++i) s.put(ctx, i);
  });
  k.spawn("consumer", [&](Context& ctx) {
    ctx.sleep(sec(1));
    for (int i = 0; i < 5; ++i) got.push_back(s.get(ctx));
  });
  k.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(StoreTest, BoundedPutBlocksUntilSpace) {
  Kernel k;
  Store<int> s(k, 2);
  TimePoint third_put{};
  k.spawn("producer", [&](Context& ctx) {
    s.put(ctx, 1);
    s.put(ctx, 2);
    s.put(ctx, 3);  // blocks: capacity 2
    third_put = ctx.now();
  });
  k.spawn("consumer", [&](Context& ctx) {
    ctx.sleep(sec(4));
    (void)s.get(ctx);
  });
  k.run();
  EXPECT_EQ(third_put, kEpoch + sec(4));
}

TEST(StoreTest, TryGetNonBlocking) {
  Kernel k;
  Store<int> s(k);
  int out = 0;
  EXPECT_FALSE(s.try_get(&out));
  k.spawn("p", [&](Context& ctx) { s.put(ctx, 9); });
  k.run();
  EXPECT_TRUE(s.try_get(&out));
  EXPECT_EQ(out, 9);
  EXPECT_FALSE(s.try_get(&out));
}

TEST(StoreTest, TryPutRespectsCapacity) {
  Kernel k;
  Store<int> s(k, 1);
  EXPECT_TRUE(s.try_put(1));
  EXPECT_FALSE(s.try_put(2));
  int out = 0;
  EXPECT_TRUE(s.try_get(&out));
  EXPECT_TRUE(s.try_put(3));
}

TEST(StoreTest, SizeTracksContents) {
  Kernel k;
  Store<int> s(k);
  EXPECT_EQ(s.size(), 0u);
  k.spawn("p", [&](Context& ctx) {
    s.put(ctx, 1);
    s.put(ctx, 2);
  });
  k.run();
  EXPECT_EQ(s.size(), 2u);
}

TEST(StoreTest, GetRespectsDeadline) {
  Kernel k;
  Store<int> s(k);
  bool threw = false;
  k.spawn("p", [&](Context& ctx) {
    try {
      DeadlineScope scope(ctx, kEpoch + sec(2));
      (void)s.get(ctx);
    } catch (const DeadlineExceeded&) {
      threw = true;
    }
  });
  k.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(k.now(), kEpoch + sec(2));
}

TEST(StoreTest, MultipleConsumersEachGetOneItem) {
  Kernel k;
  Store<int> s(k);
  std::vector<int> got;
  for (int i = 0; i < 3; ++i) {
    k.spawn("c" + std::to_string(i), [&](Context& ctx) {
      got.push_back(s.get(ctx));
    });
  }
  k.spawn("producer", [&](Context& ctx) {
    ctx.sleep(sec(1));
    for (int i = 0; i < 3; ++i) s.put(ctx, i + 100);
  });
  k.run();
  ASSERT_EQ(got.size(), 3u);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int>{100, 101, 102}));
}

}  // namespace
}  // namespace ethergrid::sim
