// ShardedKernel + ShardMailbox: window-boundary semantics, canonical
// delivery order, per-shard clocks (the PR 5 fast paths must be
// shard-aware), determinism across worker-thread counts, and the slab
// stack mode that makes 10^5 concurrent fibers possible.
#include "sim/shard.hpp"

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/kernel.hpp"
#include "sim/mailbox.hpp"
#include "util/time.hpp"

namespace ethergrid::sim {
namespace {

TEST(ShardMailbox, DrainsInCanonicalOrder) {
  ShardMailbox box(3);
  auto msg = [](TimePoint deliver, std::uint64_t site) {
    ShardMessage m;
    m.deliver = deliver;
    m.src_site = site;
    m.dst_shard = 0;
    m.body = [](Context&) {};
    return m;
  };
  // Posted out of order across rows; ties on deliver broken by site, ties
  // on (deliver, site) by posting order.
  box.post(2, msg(kEpoch + msec(5), 20));
  box.post(0, msg(kEpoch + msec(1), 7));
  box.post(1, msg(kEpoch + msec(5), 9));
  box.post(0, msg(kEpoch + msec(5), 7));
  box.post(0, msg(kEpoch + msec(5), 7));
  box.post(1, msg(kEpoch + msec(2), 30));

  std::vector<ShardMessage> batch = box.drain();
  ASSERT_EQ(batch.size(), 6u);
  EXPECT_EQ(batch[0].deliver, kEpoch + msec(1));
  EXPECT_EQ(batch[1].deliver, kEpoch + msec(2));
  // The four t=5ms messages: site 7 (seq order), then 9, then 20.
  EXPECT_EQ(batch[2].src_site, 7u);
  EXPECT_EQ(batch[3].src_site, 7u);
  EXPECT_LT(batch[2].seq, batch[3].seq);
  EXPECT_EQ(batch[4].src_site, 9u);
  EXPECT_EQ(batch[5].src_site, 20u);
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.posted_total(), 6u);
}

TEST(KernelNextLiveEventTime, ExactAndSkipsStale) {
  Kernel kernel(1);
  EXPECT_EQ(kernel.next_live_event_time(), TimePoint::max());
  ProcessHandle early = kernel.spawn("early", [](Context& ctx) {
    ctx.sleep(msec(10));
  });
  kernel.spawn("late", [](Context& ctx) { ctx.sleep(msec(500)); });
  // Both spawn wakes are pending at t=0.
  EXPECT_EQ(kernel.next_live_event_time(), kEpoch);
  kernel.run_until(kEpoch + usec(1));  // deliver the spawn wakes
  EXPECT_EQ(kernel.next_live_event_time(), kEpoch + msec(10));
  kernel.kill(*early, "test");
  // The kill wake is immediate; after it drains, only "late" remains and
  // early's 10ms entry is stale.
  kernel.run_until(kEpoch + usec(2));
  EXPECT_EQ(kernel.next_live_event_time(), kEpoch + msec(500));
  kernel.shutdown();
}

TEST(ShardedKernel, CrossShardDeliveryHonorsLatency) {
  ShardedKernelOptions opt;
  opt.shards = 2;
  opt.lookahead = msec(10);
  ShardedKernel sk(1, opt);
  TimePoint delivered = TimePoint::max();
  sk.spawn(0, "sender", [&sk](Context& ctx) {
    ctx.sleep(msec(3));
    // Posted at t=3ms with latency 25ms: must run on shard 1 at exactly
    // t=28ms, unaffected by window boundaries in between.
    sk.post(0, /*src_site=*/1, /*dst_shard=*/1, msec(25), "rpc",
            [](Context&) {});
  });
  sk.spawn(1, "probe", [&delivered](Context& ctx) {
    ctx.sleep(msec(100));
    (void)ctx;
  });
  // Observe the delivery time via a second message whose body records it.
  sk.spawn(0, "sender2", [&sk, &delivered](Context& ctx) {
    ctx.sleep(msec(3));
    sk.post(0, 1, 1, msec(25), "rpc2",
            [&delivered](Context& ctx2) { delivered = ctx2.now(); });
  });
  sk.run();
  EXPECT_EQ(delivered, kEpoch + msec(28));
  EXPECT_GT(sk.messages_delivered(), 0u);
  sk.shutdown();
}

TEST(ShardedKernel, LatencyFlooredToLookahead) {
  ShardedKernelOptions opt;
  opt.shards = 2;
  opt.lookahead = msec(50);
  ShardedKernel sk(1, opt);
  TimePoint delivered{};
  sk.spawn(0, "sender", [&](Context& ctx) {
    ctx.sleep(msec(1));
    sk.post(0, 1, 1, usec(0), "rpc",
            [&delivered](Context& ctx2) { delivered = ctx2.now(); });
  });
  sk.run();
  EXPECT_EQ(delivered, kEpoch + msec(51));
  sk.shutdown();
}

TEST(ShardedKernel, SameShardPostTakesTheBatchedPath) {
  ShardedKernelOptions opt;
  opt.shards = 1;
  opt.lookahead = msec(10);
  ShardedKernel sk(1, opt);
  TimePoint delivered{};
  sk.spawn(0, "sender", [&](Context& ctx) {
    ctx.sleep(msec(2));
    sk.post(0, 1, 0, msec(10), "self",
            [&delivered](Context& ctx2) { delivered = ctx2.now(); });
  });
  sk.run();
  EXPECT_EQ(delivered, kEpoch + msec(12));
  sk.shutdown();
}

// Satellite regression: PR 5's lock-free clock mirror and thread-local
// current-context fast path must be PER SHARD.  A process's Context::now()
// reads its own kernel's clock, and mid-window the other shard's clock is
// observably elsewhere -- with a process-global mirror both reads would
// alias.
TEST(ShardedKernel, ClockReadsAreShardLocalInsideAWindow) {
  ShardedKernelOptions opt;
  opt.shards = 2;
  opt.threads = 1;  // deterministic in-window order: shard 0 runs first
  opt.lookahead = sec(10);  // one window covers the whole run
  ShardedKernel sk(1, opt);
  std::vector<TimePoint> own_reads;
  TimePoint other_clock_during_shard0 = TimePoint::max();
  sk.spawn(0, "walker0", [&](Context& ctx) {
    ctx.sleep(msec(500));
    own_reads.push_back(ctx.now());
    // Shard 1 has not run this window yet (threads=1 runs shards in
    // order), so its clock must still be at the window start -- NOT at
    // this shard's 500ms.
    other_clock_during_shard0 = sk.shard(1).now();
    ctx.sleep(msec(500));
    own_reads.push_back(ctx.now());
  });
  std::vector<TimePoint> shard1_reads;
  sk.spawn(1, "walker1", [&](Context& ctx) {
    ctx.sleep(msec(250));
    shard1_reads.push_back(ctx.now());
    ctx.sleep(msec(750));
    shard1_reads.push_back(ctx.now());
  });
  sk.run();
  ASSERT_EQ(own_reads.size(), 2u);
  EXPECT_EQ(own_reads[0], kEpoch + msec(500));
  EXPECT_EQ(own_reads[1], kEpoch + sec(1));
  EXPECT_EQ(other_clock_during_shard0, kEpoch);  // shard 1 untouched so far
  ASSERT_EQ(shard1_reads.size(), 2u);
  EXPECT_EQ(shard1_reads[0], kEpoch + msec(250));
  EXPECT_EQ(shard1_reads[1], kEpoch + sec(1));
  sk.shutdown();
}

// One world, built twice: shards=4/threads=1 vs shards=4/threads=4 must
// produce identical per-shard event counts, delivery timelines, and final
// digests.  (The full-stack version of this -- stats + byte-identical
// fault audits over the grid substrates -- lives in
// backend_equivalence_test.cpp.)
struct PingWorld {
  explicit PingWorld(ShardedKernel& sk) : timelines(sk.shard_count()) {}
  std::vector<std::vector<std::pair<std::string, TimePoint>>> timelines;
};

void build_ping_world(ShardedKernel& sk, PingWorld& world) {
  // Every shard posts to its right neighbor a few times; bodies record
  // (name, delivery time) into shard-local timelines.
  for (std::size_t s = 0; s < sk.shard_count(); ++s) {
    const std::size_t dst = (s + 1) % sk.shard_count();
    sk.spawn(s, "pinger" + std::to_string(s),
             [&sk, &world, s, dst](Context& ctx) {
               for (int round = 0; round < 5; ++round) {
                 ctx.sleep(msec(7 + std::int64_t(s)));
                 const std::string tag =
                     "ping" + std::to_string(s) + "." + std::to_string(round);
                 sk.post(s, /*src_site=*/s, dst, msec(20), tag,
                         [&world, dst, tag](Context& ctx2) {
                           world.timelines[dst].emplace_back(tag, ctx2.now());
                         });
               }
             });
  }
}

TEST(ShardedKernel, ByteIdenticalAcrossWorkerThreadCounts) {
  auto run = [](std::size_t threads) {
    ShardedKernelOptions opt;
    opt.shards = 4;
    opt.threads = threads;
    opt.lookahead = msec(5);
    auto sk = std::make_unique<ShardedKernel>(42, opt);
    PingWorld world(*sk);
    build_ping_world(*sk, world);
    sk->run();
    std::vector<std::uint64_t> events;
    std::vector<std::uint64_t> digests;
    for (std::size_t s = 0; s < sk->shard_count(); ++s) {
      events.push_back(sk->shard(s).events_processed());
      digests.push_back(sk->shard(s).state_digest());
    }
    const std::uint64_t windows = sk->windows_run();
    sk->shutdown();
    return std::make_tuple(world.timelines, events, digests, windows);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_EQ(std::get<0>(serial), std::get<0>(parallel));
  EXPECT_EQ(std::get<1>(serial), std::get<1>(parallel));
  EXPECT_EQ(std::get<2>(serial), std::get<2>(parallel));
  EXPECT_EQ(std::get<3>(serial), std::get<3>(parallel));
}

TEST(ShardedKernel, RunUntilReportsPendingMailAndEvents) {
  ShardedKernelOptions opt;
  opt.shards = 2;
  opt.lookahead = msec(10);
  ShardedKernel sk(1, opt);
  bool delivered = false;
  sk.spawn(0, "sender", [&](Context& ctx) {
    ctx.sleep(msec(95));
    sk.post(0, 1, 1, msec(10), "late",
            [&delivered](Context&) { delivered = true; });
  });
  // The message posts at 95ms and delivers at 105ms: beyond this limit, so
  // run_until must report pending work and hold the message.
  EXPECT_TRUE(sk.run_until(kEpoch + msec(100)));
  EXPECT_FALSE(delivered);
  EXPECT_EQ(sk.now(), kEpoch + msec(100));
  EXPECT_FALSE(sk.run_until(kEpoch + msec(200)));
  EXPECT_TRUE(delivered);
  sk.shutdown();
}

TEST(ShardedKernel, ShutdownDropsUndeliveredMessages) {
  ShardedKernelOptions opt;
  opt.shards = 2;
  ShardedKernel sk(1, opt);
  bool ran = false;
  sk.post(0, 1, 1, msec(5), "never", [&ran](Context&) { ran = true; });
  sk.shutdown();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sk.live_process_count(), 0u);
}

TEST(ShardedKernel, ShardExceptionPropagatesDeterministically) {
  ShardedKernelOptions opt;
  opt.shards = 4;
  opt.threads = 4;
  ShardedKernel sk(1, opt);
  for (std::size_t s = 0; s < 4; ++s) {
    sk.spawn(s, "thrower" + std::to_string(s), [s](Context& ctx) {
      ctx.sleep(msec(1));
      if (s >= 2) throw std::runtime_error("boom shard " + std::to_string(s));
    });
  }
  // Both shard 2 and shard 3 throw in the same window; the first by shard
  // index must surface regardless of worker timing.
  try {
    sk.run();
    FAIL() << "expected a shard exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom shard 2");
  }
  sk.shutdown();
}

TEST(SlabStacks, ManyFibersWithoutGuardPages) {
  KernelOptions opt;
  opt.fiber_stack_bytes = 64 << 10;
  opt.fiber_stack_slab = 32;  // one mmap per 32 stacks
  Kernel kernel(7, opt);
  std::atomic<int> done{0};
  for (int i = 0; i < 300; ++i) {
    kernel.spawn("p" + std::to_string(i), [&done, i](Context& ctx) {
      ctx.sleep(usec(i % 17));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  kernel.run();
  EXPECT_EQ(done.load(), 300);
  // Recycling: a second wave must reuse the carved stacks, not grow slabs
  // unboundedly (not directly observable; this pins it doesn't crash and
  // the world still drains).
  for (int i = 0; i < 300; ++i) {
    kernel.spawn("q" + std::to_string(i), [&done](Context& ctx) {
      ctx.sleep(usec(1));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  kernel.run();
  EXPECT_EQ(done.load(), 600);
  kernel.shutdown();
}

}  // namespace
}  // namespace ethergrid::sim
