// Additional kernel edges: shutdown semantics, cross-thread event pokes,
// time-limit boundary conditions.
#include <gtest/gtest.h>

#include "sim/kernel.hpp"

namespace ethergrid::sim {
namespace {

TEST(KernelExtraTest, ShutdownIsIdempotent) {
  Kernel k;
  Event never(k);
  k.spawn("blocked", [&](Context& ctx) { ctx.wait(never); });
  k.run();
  k.shutdown();
  k.shutdown();
  EXPECT_EQ(k.live_process_count(), 0u);
}

TEST(KernelExtraTest, SpawnAfterShutdownIsStillborn) {
  Kernel k;
  k.shutdown();
  bool ran = false;
  auto p = k.spawn("late", [&](Context&) { ran = true; });
  k.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(p->finished());
  EXPECT_EQ(p->result().code(), StatusCode::kKilled);
}

TEST(KernelExtraTest, RunUntilPastTimeIsNoOpOnClock) {
  Kernel k;
  k.run_until(kEpoch + sec(10));
  EXPECT_EQ(k.now(), kEpoch + sec(10));
  k.run_until(kEpoch + sec(5));  // earlier than now: must not go back
  EXPECT_EQ(k.now(), kEpoch + sec(10));
}

TEST(KernelExtraTest, EventSetBetweenRunsWakesAtNextRun) {
  Kernel k;
  Event e(k);
  TimePoint woke{};
  k.spawn("waiter", [&](Context& ctx) {
    ctx.wait(e);
    woke = ctx.now();
  });
  k.run_until(kEpoch + sec(3));
  EXPECT_EQ(woke, TimePoint{});  // still blocked
  e.set();                       // poked from the main thread
  k.run_until(kEpoch + sec(6));
  EXPECT_EQ(woke, kEpoch + sec(3));  // woken at the set's timestamp
}

TEST(KernelExtraTest, WaitForZeroTimeoutPollsOnce) {
  Kernel k;
  Event unset(k), preset(k);
  preset.set();
  bool got_unset = true, got_preset = false;
  k.spawn("p", [&](Context& ctx) {
    got_unset = ctx.wait_for(unset, Duration(0));
    got_preset = ctx.wait_for(preset, Duration(0));
  });
  k.run();
  EXPECT_FALSE(got_unset);
  EXPECT_TRUE(got_preset);
}

TEST(KernelExtraTest, FailureMessageSurvivesInResult) {
  Kernel k;
  k.set_propagate_errors(false);
  auto p = k.spawn("thrower", [](Context&) {
    throw std::runtime_error("the specific reason");
  });
  k.run();
  EXPECT_EQ(p->result().message(), "the specific reason");
}

TEST(KernelExtraTest, ManySequentialKernelsDoNotInterfere) {
  // Guards against hidden global state across kernel instances.
  for (int i = 0; i < 20; ++i) {
    Kernel k(std::uint64_t(i + 1));
    TimePoint done{};
    k.spawn("p", [&](Context& ctx) {
      ctx.sleep(sec(1));
      done = ctx.now();
    });
    k.run();
    EXPECT_EQ(done, kEpoch + sec(1));
  }
}

TEST(KernelExtraTest, KilledProcessDoneEventStillFiresForJoiners) {
  Kernel k;
  Event never(k);
  auto victim = k.spawn("victim", [&](Context& ctx) { ctx.wait(never); });
  TimePoint joined{};
  k.spawn("joiner", [&](Context& ctx) {
    ctx.join(victim);
    joined = ctx.now();
  });
  k.spawn("killer", [&](Context& ctx) {
    ctx.sleep(sec(2));
    ctx.kill(victim);
  });
  k.run();
  EXPECT_EQ(joined, kEpoch + sec(2));
}

TEST(KernelExtraTest, ZeroDurationRunForProcessesSameInstantEvents) {
  Kernel k;
  bool ran = false;
  k.spawn("p", [&](Context&) { ran = true; });
  k.run_for(Duration(0));
  EXPECT_TRUE(ran);  // start event was scheduled at t=0
}

TEST(KernelExtraTest, DeadlineAtExactlyNowThrowsOnEntry) {
  Kernel k;
  bool threw = false;
  k.spawn("p", [&](Context& ctx) {
    ctx.sleep(sec(1));
    try {
      DeadlineScope scope(ctx, ctx.now());  // deadline == now
      ctx.sleep(Duration(0));
    } catch (const DeadlineExceeded&) {
      threw = true;
    }
  });
  k.run();
  EXPECT_TRUE(threw);
}

// Same-instant FIFO fairness: when several processes yield() at the same
// virtual instant, they must proceed round-robin in (time, seq) order -- no
// process may run twice before a same-instant peer runs once.  Identical on
// both queue implementations (the heap is the wheel's oracle).
TEST(KernelExtraTest, SameInstantYieldIsFifoFairOnBothQueues) {
  std::vector<std::string> transcripts;
  for (QueueImpl queue : {QueueImpl::kWheel, QueueImpl::kHeap}) {
    KernelOptions options;
    options.queue = queue;
    Kernel k(1, options);
    std::string transcript;
    for (const char* name : {"a", "b", "c"}) {
      k.spawn(name, [&transcript, name](Context& ctx) {
        for (int round = 0; round < 3; ++round) {
          transcript += name;
          ctx.yield();
        }
      });
    }
    k.run();
    // Spawn order seeds the rotation; every round is a full a,b,c sweep.
    EXPECT_EQ(transcript, "abcabcabc")
        << "queue=" << queue_impl_name(queue);
    transcripts.push_back(transcript);
  }
  EXPECT_EQ(transcripts[0], transcripts[1]);
}

}  // namespace
}  // namespace ethergrid::sim
