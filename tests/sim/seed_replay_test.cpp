// Seed-replay regression: the kernel's determinism contract, asserted on a
// full multi-process scenario rather than a single primitive.  The same
// seed must reproduce the identical interleaving -- every event in the same
// order at the same virtual instant -- because chaos-harness replay and the
// paper's figure pipeline both stand on this property.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "sim/kernel.hpp"
#include "sim/resource.hpp"
#include "util/strings.hpp"

namespace ethergrid::sim {
namespace {

// A contended mini-world: workers with jittered think times competing for a
// 2-slot resource, a coordinator pulsing an event on a random cadence, a
// waiter racing that event against timeouts, and a killer ending one worker
// mid-run.  Every scheduling decision the kernel makes shows up in the
// trace, in order, with its virtual timestamp.
std::string run_world(std::uint64_t seed) {
  std::string trace;
  Kernel kernel(seed);
  Resource slots(kernel, 2);
  Event tick(kernel);

  auto stamp = [&trace](Context& ctx, const char* who, const char* what) {
    trace += strprintf("t=%.6f %s %s\n", to_seconds(ctx.now()), who, what);
  };

  for (int i = 0; i < 4; ++i) {
    kernel.spawn("worker" + std::to_string(i), [&, i](Context& ctx) {
      const std::string who = "worker" + std::to_string(i);
      Rng rng = ctx.rng();
      while (true) {
        ctx.sleep(sec(rng.uniform(0.1, 1.5)));
        slots.acquire(ctx);
        stamp(ctx, who.c_str(), "acquired");
        ctx.sleep(sec(rng.uniform(0.2, 0.8)));
        slots.release();
        stamp(ctx, who.c_str(), "released");
      }
    });
  }

  kernel.spawn("coordinator", [&](Context& ctx) {
    Rng rng = ctx.rng();
    while (true) {
      ctx.sleep(sec(rng.uniform(0.5, 2.0)));
      stamp(ctx, "coordinator", "pulse");
      tick.pulse();
    }
  });

  kernel.spawn("waiter", [&](Context& ctx) {
    while (true) {
      if (ctx.wait_for(tick, sec(1))) {
        stamp(ctx, "waiter", "tick");
      } else {
        stamp(ctx, "waiter", "timeout");
      }
    }
  });

  auto victim = kernel.spawn("victim", [&](Context& ctx) {
    stamp(ctx, "victim", "start");
    ctx.sleep(hours(24));  // never completes on its own
    stamp(ctx, "victim", "unreachable");
  });
  kernel.spawn("killer", [&, victim](Context& ctx) {
    ctx.sleep(sec(7));
    stamp(ctx, "killer", "kill");
    ctx.kill(victim);
  });

  kernel.run_until(kEpoch + sec(30));
  kernel.shutdown();
  return trace;
}

TEST(SeedReplayTest, SameSeedReplaysByteIdentical) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 4096ULL}) {
    const std::string first = run_world(seed);
    const std::string second = run_world(seed);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

TEST(SeedReplayTest, TraceIsSubstantial) {
  // The scenario genuinely exercises contention: plenty of events, and the
  // kill lands.
  const std::string trace = run_world(42);
  EXPECT_GE(std::count(trace.begin(), trace.end(), '\n'), 50);
  EXPECT_NE(trace.find("killer kill"), std::string::npos);
  EXPECT_EQ(trace.find("victim unreachable"), std::string::npos);
}

TEST(SeedReplayTest, DifferentSeedsDiverge) {
  EXPECT_NE(run_world(1), run_world(2));
}

}  // namespace
}  // namespace ethergrid::sim
