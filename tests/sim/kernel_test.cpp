#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ethergrid::sim {
namespace {

TEST(KernelTest, ClockStartsAtEpoch) {
  Kernel k;
  EXPECT_EQ(k.now(), kEpoch);
}

TEST(KernelTest, ProcessBodyRunsToCompletion) {
  Kernel k;
  bool ran = false;
  auto p = k.spawn("p", [&](Context&) { ran = true; });
  EXPECT_FALSE(ran);  // nothing runs until the kernel does
  k.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(p->finished());
  EXPECT_TRUE(p->result().ok());
}

TEST(KernelTest, SleepAdvancesVirtualTime) {
  Kernel k;
  TimePoint observed{};
  k.spawn("p", [&](Context& ctx) {
    ctx.sleep(sec(10));
    observed = ctx.now();
  });
  k.run();
  EXPECT_EQ(observed, kEpoch + sec(10));
  EXPECT_EQ(k.now(), kEpoch + sec(10));
}

TEST(KernelTest, SleepZeroYields) {
  Kernel k;
  std::vector<int> order;
  k.spawn("a", [&](Context& ctx) {
    order.push_back(1);
    ctx.yield();
    order.push_back(3);
  });
  k.spawn("b", [&](Context&) { order.push_back(2); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(KernelTest, ProcessesInterleaveDeterministicallyByTime) {
  Kernel k;
  std::vector<std::string> trace;
  k.spawn("a", [&](Context& ctx) {
    ctx.sleep(sec(2));
    trace.push_back("a@2");
    ctx.sleep(sec(2));
    trace.push_back("a@4");
  });
  k.spawn("b", [&](Context& ctx) {
    ctx.sleep(sec(3));
    trace.push_back("b@3");
  });
  k.run();
  EXPECT_EQ(trace, (std::vector<std::string>{"a@2", "b@3", "a@4"}));
}

TEST(KernelTest, EqualTimeEventsRunInScheduleOrder) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    k.spawn("p" + std::to_string(i), [&, i](Context& ctx) {
      ctx.sleep(sec(1));
      order.push_back(i);
    });
  }
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(KernelTest, RunUntilStopsAtLimitAndAdvancesClock) {
  Kernel k;
  int steps = 0;
  k.spawn("p", [&](Context& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.sleep(sec(1));
      ++steps;
    }
  });
  bool more = k.run_until(kEpoch + sec(3));
  EXPECT_EQ(steps, 3);
  EXPECT_TRUE(more);
  EXPECT_EQ(k.now(), kEpoch + sec(3));
  more = k.run_until(kEpoch + sec(100));
  EXPECT_EQ(steps, 10);
  EXPECT_FALSE(more);
  EXPECT_EQ(k.now(), kEpoch + sec(100));  // clock jumps to the limit
}

TEST(KernelTest, RunForIsRelative) {
  Kernel k;
  k.run_for(sec(5));
  EXPECT_EQ(k.now(), kEpoch + sec(5));
  k.run_for(sec(5));
  EXPECT_EQ(k.now(), kEpoch + sec(10));
}

TEST(KernelTest, EventWakesWaiter) {
  Kernel k;
  Event e(k);
  TimePoint woke{};
  k.spawn("waiter", [&](Context& ctx) {
    ctx.wait(e);
    woke = ctx.now();
  });
  k.spawn("setter", [&](Context& ctx) {
    ctx.sleep(sec(7));
    e.set();
  });
  k.run();
  EXPECT_EQ(woke, kEpoch + sec(7));
}

TEST(KernelTest, LatchedEventReturnsImmediately) {
  Kernel k;
  Event e(k);
  e.set();
  TimePoint woke = kEpoch + sec(99);
  k.spawn("waiter", [&](Context& ctx) {
    ctx.wait(e);
    woke = ctx.now();
  });
  k.run();
  EXPECT_EQ(woke, kEpoch);
}

TEST(KernelTest, PulseWakesCurrentWaitersOnly) {
  Kernel k;
  Event e(k);
  bool first_woke = false, second_woke = false;
  k.spawn("first", [&](Context& ctx) {
    ctx.wait(e);
    first_woke = true;
  });
  k.spawn("pulser", [&](Context& ctx) {
    ctx.sleep(sec(1));
    e.pulse();
  });
  k.run();
  EXPECT_TRUE(first_woke);
  // A waiter arriving after the pulse blocks (pulse does not latch).
  k.spawn("second", [&](Context& ctx) {
    ctx.wait(e);
    second_woke = true;
  });
  k.run();
  EXPECT_FALSE(second_woke);
  EXPECT_EQ(k.live_process_count(), 1u);
}

TEST(KernelTest, EventResetBlocksFutureWaiters) {
  Kernel k;
  Event e(k);
  e.set();
  e.reset();
  bool woke = false;
  k.spawn("waiter", [&](Context& ctx) {
    ctx.wait(e);
    woke = true;
  });
  k.run();
  EXPECT_FALSE(woke);
}

TEST(KernelTest, WaitForTimesOut) {
  Kernel k;
  Event e(k);
  bool fired = true;
  TimePoint at{};
  k.spawn("p", [&](Context& ctx) {
    fired = ctx.wait_for(e, sec(5));
    at = ctx.now();
  });
  k.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(at, kEpoch + sec(5));
}

TEST(KernelTest, WaitForSucceedsBeforeTimeout) {
  Kernel k;
  Event e(k);
  bool fired = false;
  TimePoint at{};
  k.spawn("p", [&](Context& ctx) {
    fired = ctx.wait_for(e, sec(5));
    at = ctx.now();
  });
  k.spawn("setter", [&](Context& ctx) {
    ctx.sleep(sec(2));
    e.set();
  });
  k.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(at, kEpoch + sec(2));
}

TEST(KernelTest, KillWhileSleepingInterrupts) {
  Kernel k;
  bool unwound = false;
  auto victim = k.spawn("victim", [&](Context& ctx) {
    try {
      ctx.sleep(hours(1));
    } catch (const Interrupted&) {
      unwound = true;
      throw;
    }
  });
  k.spawn("killer", [&](Context& ctx) {
    ctx.sleep(sec(1));
    ctx.kill(victim, "test kill");
  });
  k.run();
  EXPECT_TRUE(unwound);
  EXPECT_TRUE(victim->finished());
  EXPECT_EQ(victim->result().code(), StatusCode::kKilled);
  EXPECT_EQ(victim->result().message(), "test kill");
  EXPECT_EQ(k.now(), kEpoch + sec(1));  // did not wait out the hour
}

TEST(KernelTest, KillWhileWaitingOnEventInterrupts) {
  Kernel k;
  Event e(k);
  auto victim = k.spawn("victim", [&](Context& ctx) { ctx.wait(e); });
  k.spawn("killer", [&](Context& ctx) {
    ctx.sleep(sec(2));
    ctx.kill(victim);
  });
  k.run();
  EXPECT_EQ(victim->result().code(), StatusCode::kKilled);
}

TEST(KernelTest, KillBeforeFirstRunSkipsBody) {
  Kernel k;
  bool ran = false;
  auto victim = k.spawn("victim", [&](Context&) { ran = true; });
  k.kill(*victim, "never started");
  k.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(victim->result().code(), StatusCode::kKilled);
}

TEST(KernelTest, SelfKillTakesEffectAtNextWait) {
  Kernel k;
  bool after_kill = false;
  bool after_wait = false;
  auto p = k.spawn("p", [&](Context& ctx) {
    ctx.kill(ctx.process(), "suicide");
    after_kill = true;  // kill is deferred to the next wait
    ctx.sleep(sec(1));
    after_wait = true;
  });
  k.run();
  EXPECT_TRUE(after_kill);
  EXPECT_FALSE(after_wait);
  EXPECT_EQ(p->result().code(), StatusCode::kKilled);
}

TEST(KernelTest, KilledProcessCannotWaitAgain) {
  Kernel k;
  int interrupts = 0;
  auto p = k.spawn("stubborn", [&](Context& ctx) {
    for (int i = 0; i < 3; ++i) {
      try {
        ctx.sleep(sec(10));
      } catch (const Interrupted&) {
        ++interrupts;  // swallow and try to keep going
      }
    }
  });
  k.spawn("killer", [&](Context& ctx) {
    ctx.sleep(sec(1));
    ctx.kill(p);
  });
  k.run();
  EXPECT_EQ(interrupts, 3);  // every wait re-throws once killed
  EXPECT_TRUE(p->finished());
  EXPECT_EQ(k.now(), kEpoch + sec(1));  // no further time passed
}

TEST(KernelTest, JoinWaitsForChild) {
  Kernel k;
  TimePoint joined{};
  k.spawn("parent", [&](Context& ctx) {
    auto child = ctx.spawn("child", [](Context& c) { c.sleep(sec(5)); });
    ctx.join(child);
    joined = ctx.now();
  });
  k.run();
  EXPECT_EQ(joined, kEpoch + sec(5));
}

TEST(KernelTest, JoinFinishedChildIsImmediate) {
  Kernel k;
  TimePoint joined{};
  k.spawn("parent", [&](Context& ctx) {
    auto child = ctx.spawn("child", [](Context&) {});
    ctx.sleep(sec(3));  // child finishes meanwhile
    ctx.join(child);
    joined = ctx.now();
  });
  k.run();
  EXPECT_EQ(joined, kEpoch + sec(3));
}

TEST(KernelTest, SpawnedChildStartsAtCurrentTime) {
  Kernel k;
  TimePoint child_start{kEpoch + hours(99)};
  k.spawn("parent", [&](Context& ctx) {
    ctx.sleep(sec(4));
    ctx.spawn("child", [&](Context& c) { child_start = c.now(); });
  });
  k.run();
  EXPECT_EQ(child_start, kEpoch + sec(4));
}

TEST(KernelTest, ProcessExceptionPropagatesFromRun) {
  Kernel k;
  auto p = k.spawn("bad", [](Context&) {
    throw std::runtime_error("body bug");
  });
  EXPECT_THROW(k.run(), std::runtime_error);
  EXPECT_EQ(p->result().code(), StatusCode::kFailure);
  EXPECT_EQ(p->result().message(), "body bug");
}

TEST(KernelTest, ProcessExceptionCanBeSuppressed) {
  Kernel k;
  k.set_propagate_errors(false);
  auto p = k.spawn("bad", [](Context&) {
    throw std::runtime_error("body bug");
  });
  EXPECT_NO_THROW(k.run());
  EXPECT_EQ(p->result().code(), StatusCode::kFailure);
}

TEST(KernelTest, LiveProcessCountTracksLifecycles) {
  Kernel k;
  Event never(k);
  EXPECT_EQ(k.live_process_count(), 0u);
  k.spawn("done", [](Context&) {});
  k.spawn("blocked", [&](Context& ctx) { ctx.wait(never); });
  EXPECT_EQ(k.live_process_count(), 2u);
  k.run();
  EXPECT_EQ(k.live_process_count(), 1u);  // blocked remains
}

TEST(KernelTest, DestructorKillsBlockedProcesses) {
  bool unwound = false;
  {
    Kernel k;
    Event never(k);
    k.spawn("blocked", [&](Context& ctx) {
      try {
        ctx.wait(never);
      } catch (const Interrupted&) {
        unwound = true;
        throw;
      }
    });
    k.run();
    EXPECT_FALSE(unwound);
  }
  EXPECT_TRUE(unwound);
}

TEST(KernelTest, ManyProcessesDeterministicTotalTime) {
  auto run_once = [] {
    Kernel k(123);
    std::vector<ProcessHandle> ps;
    std::int64_t sum = 0;
    for (int i = 0; i < 100; ++i) {
      ps.push_back(k.spawn("p" + std::to_string(i), [&, i](Context& ctx) {
        Rng& rng = ctx.rng();
        for (int j = 0; j < 20; ++j) {
          ctx.sleep(msec(rng.uniform_int(1, 1000)));
          sum += i;
        }
      }));
    }
    k.run();
    return std::pair<TimePoint, std::int64_t>(k.now(), sum);
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.first, kEpoch);
}

TEST(KernelTest, PerProcessRngStreamsDiffer) {
  Kernel k(7);
  std::uint64_t a = 0, b = 0;
  k.spawn("a", [&](Context& ctx) { a = ctx.rng().next_u64(); });
  k.spawn("b", [&](Context& ctx) { b = ctx.rng().next_u64(); });
  k.run();
  EXPECT_NE(a, b);
}

TEST(KernelTest, ProcessNamesAndIdsAreAssigned) {
  Kernel k;
  auto p = k.spawn("worker", [](Context&) {});
  auto q = k.spawn("worker2", [](Context&) {});
  EXPECT_EQ(p->name(), "worker");
  EXPECT_NE(p->id(), q->id());
  k.run();
}

}  // namespace
}  // namespace ethergrid::sim
