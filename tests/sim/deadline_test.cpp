// Deadline-stack semantics: the mechanism behind ftsh `try for T` forcible
// termination in the simulation.
#include <gtest/gtest.h>

#include "sim/kernel.hpp"

namespace ethergrid::sim {
namespace {

TEST(DeadlineTest, SleepCutShortByDeadline) {
  Kernel k;
  bool threw = false;
  TimePoint woke{};
  k.spawn("p", [&](Context& ctx) {
    DeadlineScope scope(ctx, kEpoch + sec(5));
    try {
      ctx.sleep(sec(60));
    } catch (const DeadlineExceeded& d) {
      threw = true;
      woke = ctx.now();
      EXPECT_EQ(d.token, scope.token());
      EXPECT_EQ(d.deadline, kEpoch + sec(5));
    }
  });
  k.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(woke, kEpoch + sec(5));  // wakes exactly at the deadline
}

TEST(DeadlineTest, SleepEndingExactlyAtDeadlineSucceeds) {
  Kernel k;
  bool threw = false;
  k.spawn("p", [&](Context& ctx) {
    DeadlineScope scope(ctx, kEpoch + sec(5));
    try {
      ctx.sleep(sec(5));
    } catch (const DeadlineExceeded&) {
      threw = true;
    }
  });
  k.run();
  EXPECT_FALSE(threw);
}

TEST(DeadlineTest, NextWaitAfterExactExpiryThrows) {
  Kernel k;
  bool threw = false;
  k.spawn("p", [&](Context& ctx) {
    DeadlineScope scope(ctx, kEpoch + sec(5));
    ctx.sleep(sec(5));  // ok: ends exactly at deadline
    try {
      ctx.sleep(Duration(0));  // any further wait trips the expired deadline
    } catch (const DeadlineExceeded&) {
      threw = true;
    }
  });
  k.run();
  EXPECT_TRUE(threw);
}

TEST(DeadlineTest, InnerDeadlineFiresFirstWhenEarlier) {
  Kernel k;
  std::uint64_t inner_token = 0;
  std::uint64_t caught_token = 0;
  k.spawn("p", [&](Context& ctx) {
    DeadlineScope outer(ctx, kEpoch + sec(100));
    DeadlineScope inner(ctx, kEpoch + sec(5));
    inner_token = inner.token();
    try {
      ctx.sleep(sec(60));
    } catch (const DeadlineExceeded& d) {
      caught_token = d.token;
    }
  });
  k.run();
  EXPECT_EQ(caught_token, inner_token);
}

TEST(DeadlineTest, OuterDeadlineDominatesWhenEarlier) {
  // An outer try with a shorter limit must unwind the inner scope too: the
  // exception carries the *outermost* expired token.
  Kernel k;
  std::uint64_t outer_token = 0;
  std::uint64_t caught_token = 0;
  bool inner_caught_and_rethrew = false;
  k.spawn("p", [&](Context& ctx) {
    DeadlineScope outer(ctx, kEpoch + sec(5));
    outer_token = outer.token();
    try {
      DeadlineScope inner(ctx, kEpoch + sec(100));
      try {
        ctx.sleep(sec(60));
      } catch (const DeadlineExceeded& d) {
        if (d.token != inner.token()) {
          inner_caught_and_rethrew = true;
          throw;  // not ours: propagate to the owning scope
        }
      }
    } catch (const DeadlineExceeded& d) {
      caught_token = d.token;
    }
  });
  k.run();
  EXPECT_TRUE(inner_caught_and_rethrew);
  EXPECT_EQ(caught_token, outer_token);
}

TEST(DeadlineTest, ExpiredDeadlineThrowsOnEntryToWait) {
  Kernel k;
  bool threw = false;
  k.spawn("p", [&](Context& ctx) {
    DeadlineScope scope(ctx, kEpoch + sec(1));
    (void)scope;
    // Another process moved time? No -- simplest: push an already-expired
    // deadline (time zero minus epsilon is impossible, so use now()).
    DeadlineScope expired(ctx, ctx.now());
    try {
      ctx.sleep(sec(1));
    } catch (const DeadlineExceeded& d) {
      threw = true;
      EXPECT_EQ(d.token, expired.token());
    }
  });
  k.run();
  EXPECT_TRUE(threw);
}

TEST(DeadlineTest, CheckThrowsWhenExpired) {
  Kernel k;
  bool threw = false;
  k.spawn("p", [&](Context& ctx) {
    DeadlineScope scope(ctx, ctx.now());
    try {
      ctx.check();
    } catch (const DeadlineExceeded&) {
      threw = true;
    }
  });
  k.run();
  EXPECT_TRUE(threw);
}

TEST(DeadlineTest, CheckPassesWhenNotExpired) {
  Kernel k;
  k.spawn("p", [&](Context& ctx) {
    DeadlineScope scope(ctx, ctx.now() + sec(1));
    ctx.check();  // must not throw
  });
  k.run();
}

TEST(DeadlineTest, EarliestDeadlineReflectsStack) {
  Kernel k;
  k.spawn("p", [&](Context& ctx) {
    EXPECT_EQ(ctx.earliest_deadline(), kNoDeadline);
    DeadlineScope a(ctx, kEpoch + sec(50));
    EXPECT_EQ(ctx.earliest_deadline(), kEpoch + sec(50));
    {
      DeadlineScope b(ctx, kEpoch + sec(10));
      EXPECT_EQ(ctx.earliest_deadline(), kEpoch + sec(10));
    }
    EXPECT_EQ(ctx.earliest_deadline(), kEpoch + sec(50));
  });
  k.run();
}

TEST(DeadlineTest, WaitOnEventHonorsDeadline) {
  Kernel k;
  Event never(k);
  bool threw = false;
  TimePoint woke{};
  k.spawn("p", [&](Context& ctx) {
    DeadlineScope scope(ctx, kEpoch + sec(3));
    try {
      ctx.wait(never);
    } catch (const DeadlineExceeded&) {
      threw = true;
      woke = ctx.now();
    }
  });
  k.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(woke, kEpoch + sec(3));
}

TEST(DeadlineTest, WaitForDeadlineBeatsLocalTimeout) {
  // Enclosing deadline (2s) earlier than the local timeout (10s): the
  // deadline must throw rather than return false.
  Kernel k;
  Event never(k);
  bool threw = false;
  bool returned = false;
  k.spawn("p", [&](Context& ctx) {
    DeadlineScope scope(ctx, kEpoch + sec(2));
    try {
      returned = !ctx.wait_for(never, sec(10));
    } catch (const DeadlineExceeded&) {
      threw = true;
    }
  });
  k.run();
  EXPECT_TRUE(threw);
  EXPECT_FALSE(returned);
}

TEST(DeadlineTest, WaitForLocalTimeoutBeatsLaterDeadline) {
  Kernel k;
  Event never(k);
  bool timed_out = false;
  TimePoint at{};
  k.spawn("p", [&](Context& ctx) {
    DeadlineScope scope(ctx, kEpoch + sec(100));
    timed_out = !ctx.wait_for(never, sec(4));
    at = ctx.now();
  });
  k.run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(at, kEpoch + sec(4));
}

TEST(DeadlineTest, JoinHonorsDeadline) {
  Kernel k;
  bool threw = false;
  k.spawn("parent", [&](Context& ctx) {
    auto child = ctx.spawn("slow", [](Context& c) { c.sleep(hours(1)); });
    try {
      DeadlineScope scope(ctx, kEpoch + sec(2));
      ctx.join(child);
    } catch (const DeadlineExceeded&) {
      threw = true;  // scope already popped during unwind
      ctx.kill(child, "parent deadline");
    }
  });
  k.run();
  EXPECT_TRUE(threw);
  EXPECT_LT(k.now(), kEpoch + minutes(5));
}

TEST(DeadlineTest, DeadlineScopePopsOnUnwind) {
  Kernel k;
  k.spawn("p", [&](Context& ctx) {
    try {
      DeadlineScope inner(ctx, ctx.now() + sec(1));
      throw std::logic_error("user error");
    } catch (const std::logic_error&) {
    }
    EXPECT_EQ(ctx.earliest_deadline(), kNoDeadline);
  });
  k.run();
}

TEST(DeadlineTest, BackoffSleepAtDeadlineBoundaryDoesNotLoopForever) {
  // Regression guard for the expiry-at-entry rule: a retry loop whose delay
  // lands exactly on the deadline must terminate via DeadlineExceeded on the
  // next wait rather than spinning at the same virtual instant.
  Kernel k;
  int attempts = 0;
  bool threw = false;
  k.spawn("p", [&](Context& ctx) {
    DeadlineScope scope(ctx, kEpoch + sec(10));
    try {
      while (true) {
        ++attempts;
        ctx.sleep(sec(5));  // "work" that always fails
      }
    } catch (const DeadlineExceeded&) {
      threw = true;
    }
  });
  k.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(attempts, 3);  // t=0->5, 5->10, then entry check throws
}

}  // namespace
}  // namespace ethergrid::sim
