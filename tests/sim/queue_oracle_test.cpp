// Differential oracle for the event-queue implementations.
//
// The binary heap (the original implementation) is kept as the reference:
// its pop order is trivially the (time, seq) min.  The hierarchical timer
// wheel must reproduce that order exactly -- same entries, same sequence --
// under randomized schedules, cancellations (stale tokens), limit
// advances, and compaction, or the kernel's determinism contract breaks
// silently.  Three fixed seeds keep failures reproducible.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::sim {
namespace {

using internal::HeapQueue;
using internal::QueueEntry;
using internal::TimerWheel;

constexpr std::uint64_t kSeeds[] = {1, 7, 42};

QueueEntry entry_at(std::int64_t t, std::uint64_t seq, std::uint64_t token) {
  return QueueEntry{TimePoint(Duration(t)), seq, nullptr, token};
}

std::string key(const QueueEntry& e) {
  std::ostringstream out;
  out << e.time.time_since_epoch().count() << "/" << e.seq;
  return out.str();
}

// Random time offsets spanning every wheel level: the current L0 rotation,
// the higher rings, and the overflow bag beyond 2^40 us of coverage.
std::int64_t random_offset(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> bucket(0, 5);
  switch (bucket(rng)) {
    case 0: return 0;  // current instant: ready-heap path
    case 1: return std::uniform_int_distribution<std::int64_t>(1, 1000)(rng);
    case 2:
      return std::uniform_int_distribution<std::int64_t>(1001, 1 << 16)(rng);
    case 3:
      return std::uniform_int_distribution<std::int64_t>(1 << 16,
                                                         1 << 28)(rng);
    case 4:
      return std::uniform_int_distribution<std::int64_t>(
          1 << 28, std::int64_t(1) << 39)(rng);
    default:  // beyond coverage: overflow bag
      return std::uniform_int_distribution<std::int64_t>(
          std::int64_t(1) << 40, std::int64_t(1) << 41)(rng);
  }
}

// Drives both queues through an identical randomized script of pushes and
// bounded pops and asserts the popped (time, seq) streams are identical.
// `stale_bit` marks entries whose token has that bit set as stale; the
// wheel drops them internally (pred), the heap pops them and the harness
// filters -- the surviving streams must still match.
void run_differential(std::uint64_t seed, bool with_stale,
                      bool with_compaction) {
  std::mt19937_64 rng(seed);
  TimerWheel wheel;
  HeapQueue heap;
  const auto stale = [&](const QueueEntry& e) {
    return with_stale && (e.token & 1) != 0;
  };

  std::int64_t now = 0;
  std::uint64_t seq = 0;
  std::uniform_int_distribution<int> action(0, 9);
  std::uniform_int_distribution<std::uint64_t> token_dist(0, 3);

  for (int step = 0; step < 20000; ++step) {
    const int a = action(rng);
    if (a < 6) {  // push
      const QueueEntry e =
          entry_at(now + random_offset(rng), seq++, token_dist(rng));
      wheel.push(e);
      heap.push(e);
    } else if (a < 9) {  // advance and drain up to the new limit
      now += random_offset(rng) / 4;
      const TimePoint limit{Duration(now)};
      while (true) {
        QueueEntry from_wheel;
        std::size_t dropped = 0;
        bool wheel_got = false;
        // The wheel drops stale entries it meets; keep popping until it
        // yields a survivor (it only hands back ready-heap residents,
        // whose staleness is the caller's job -- mirror the kernel).
        while (wheel.pop_due(limit, &from_wheel, stale, &dropped)) {
          if (stale(from_wheel)) continue;
          wheel_got = true;
          break;
        }
        QueueEntry from_heap;
        bool heap_got = false;
        while (heap.pop_due(limit, &from_heap)) {
          if (stale(from_heap)) continue;
          heap_got = true;
          break;
        }
        ASSERT_EQ(wheel_got, heap_got)
            << "seed " << seed << " step " << step << " now " << now;
        if (!wheel_got) break;
        ASSERT_EQ(key(from_wheel), key(from_heap))
            << "seed " << seed << " step " << step << " now " << now;
      }
    } else if (with_compaction) {
      wheel.compact_step(stale);
      heap.compact(stale);
    }
  }

  // Full drain: everything left must come out in the same order too.
  while (true) {
    QueueEntry from_wheel;
    std::size_t dropped = 0;
    bool wheel_got = false;
    while (wheel.pop_due(TimePoint::max(), &from_wheel, stale, &dropped)) {
      if (stale(from_wheel)) continue;
      wheel_got = true;
      break;
    }
    QueueEntry from_heap;
    bool heap_got = false;
    while (heap.pop_due(TimePoint::max(), &from_heap)) {
      if (stale(from_heap)) continue;
      heap_got = true;
      break;
    }
    ASSERT_EQ(wheel_got, heap_got) << "seed " << seed << " (final drain)";
    if (!wheel_got) break;
    ASSERT_EQ(key(from_wheel), key(from_heap))
        << "seed " << seed << " (final drain)";
  }
  EXPECT_EQ(wheel.size(), 0u) << "seed " << seed;
}

TEST(QueueOracle, PopOrderMatchesHeap) {
  for (std::uint64_t seed : kSeeds) {
    run_differential(seed, /*with_stale=*/false, /*with_compaction=*/false);
  }
}

TEST(QueueOracle, PopOrderMatchesHeapUnderStaleDrops) {
  for (std::uint64_t seed : kSeeds) {
    run_differential(seed, /*with_stale=*/true, /*with_compaction=*/false);
  }
}

TEST(QueueOracle, PopOrderMatchesHeapUnderCompaction) {
  for (std::uint64_t seed : kSeeds) {
    run_differential(seed, /*with_stale=*/true, /*with_compaction=*/true);
  }
}

// Same-timestamp bursts are where FIFO-by-seq actually bites: every entry
// lands in one L0 slot (or the ready heap) and the wheel must still hand
// them back in push order.
TEST(QueueOracle, EqualTimestampsPopInSeqOrder) {
  for (std::uint64_t seed : kSeeds) {
    std::mt19937_64 rng(seed);
    TimerWheel wheel;
    std::uint64_t seq = 0;
    const auto never_stale = [](const QueueEntry&) { return false; };
    for (int burst = 0; burst < 64; ++burst) {
      const std::int64_t t =
          std::uniform_int_distribution<std::int64_t>(0, 1 << 20)(rng);
      for (int i = 0; i < 16; ++i) {
        wheel.push(entry_at(t, seq++, 0));
      }
    }
    QueueEntry out;
    std::size_t dropped = 0;
    std::int64_t last_t = -1;
    std::uint64_t last_seq = 0;
    bool first = true;
    while (wheel.pop_due(TimePoint::max(), &out, never_stale, &dropped)) {
      const std::int64_t t = out.time.time_since_epoch().count();
      if (!first && t == last_t) {
        EXPECT_GT(out.seq, last_seq) << "FIFO violated at t=" << t;
      } else if (!first) {
        EXPECT_GT(t, last_t);
      }
      last_t = t;
      last_seq = out.seq;
      first = false;
    }
    EXPECT_EQ(wheel.size(), 0u);
  }
}

// Kernel-level differential: an identical randomized simulation must
// process events in the same order -- observed as identical (virtual time,
// process) wake traces -- under both queue implementations.
std::vector<std::string> run_kernel_trace(QueueImpl queue,
                                          std::uint64_t seed) {
  KernelOptions options;
  options.queue = queue;
  Kernel kernel(seed, options);
  std::vector<std::string> trace;
  Event tick(kernel);
  for (int i = 0; i < 6; ++i) {
    kernel.spawn("worker" + std::to_string(i), [&, i](Context& ctx) {
      std::mt19937_64 rng(seed * 977 + i);
      for (int step = 0; step < 200; ++step) {
        std::ostringstream line;
        line << "w" << i << "@"
             << ctx.now().time_since_epoch().count() << "#" << step;
        trace.push_back(line.str());
        switch (rng() % 4) {
          case 0:
            ctx.sleep(usec(std::int64_t(rng() % 5000)));
            break;
          case 1:
            ctx.sleep(msec(std::int64_t(rng() % 50)));
            break;
          case 2:
            tick.pulse();
            ctx.sleep(usec(1));
            break;
          default:
            if (!ctx.wait_for(tick, usec(std::int64_t(rng() % 2000)))) {
              trace.push_back("timeout");
            }
            break;
        }
      }
    });
  }
  kernel.run();
  return trace;
}

TEST(QueueOracle, KernelTracesIdenticalAcrossQueueImpls) {
  for (std::uint64_t seed : kSeeds) {
    const auto wheel_trace = run_kernel_trace(QueueImpl::kWheel, seed);
    const auto heap_trace = run_kernel_trace(QueueImpl::kHeap, seed);
    ASSERT_EQ(wheel_trace.size(), heap_trace.size()) << "seed " << seed;
    for (std::size_t i = 0; i < wheel_trace.size(); ++i) {
      ASSERT_EQ(wheel_trace[i], heap_trace[i])
          << "seed " << seed << " diverges at step " << i;
    }
  }
}

}  // namespace
}  // namespace ethergrid::sim
