#include "sim/fluid.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/kernel.hpp"

namespace ethergrid::sim {
namespace {

// N equal flows of equal work over capacity C: every flow gets C/N, so all
// finish together at N * work / C.
TEST(FluidTest, EqualFlowsShareEqually) {
  for (int n : {1, 2, 4, 8}) {
    Kernel k;
    FluidResource link(k, 100.0);  // 100 units/s
    std::vector<TimePoint> done(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      k.spawn("f" + std::to_string(i), [&, i](Context& ctx) {
        ASSERT_TRUE(link.transfer(ctx, 1000.0).ok());
        done[std::size_t(i)] = ctx.now();
      });
    }
    k.run();
    const TimePoint expected = kEpoch + sec(n * 1000.0 / 100.0);
    for (int i = 0; i < n; ++i) {
      // eta rounds up to whole microseconds; allow one tick per reshare.
      EXPECT_GE(done[std::size_t(i)], expected) << "n=" << n << " i=" << i;
      EXPECT_LE(done[std::size_t(i)], expected + msec(1))
          << "n=" << n << " i=" << i;
    }
    EXPECT_EQ(link.transfers_completed(), n);
    EXPECT_DOUBLE_EQ(link.units_moved(), n * 1000.0);
    k.shutdown();
  }
}

// A flow of weight 3 against a flow of weight 1 drains three units for
// every one of its rival's.
TEST(FluidTest, WeightedSharesSplitProportionally) {
  Kernel k;
  FluidResource link(k, 100.0);
  TimePoint heavy_done{};
  TimePoint light_done{};
  k.spawn("heavy", [&](Context& ctx) {
    FluidFlowOptions options;
    options.weight = 3.0;
    ASSERT_TRUE(link.transfer(ctx, 900.0, options).ok());
    heavy_done = ctx.now();
  });
  k.spawn("light", [&](Context& ctx) {
    ASSERT_TRUE(link.transfer(ctx, 900.0).ok());
    light_done = ctx.now();
  });
  k.run();
  // Phase 1: heavy at 75/s, light at 25/s; heavy's 900 drain in 12 s during
  // which light moves 300.  Phase 2: light alone at 100/s for 6 s more.
  EXPECT_GE(heavy_done, kEpoch + sec(12));
  EXPECT_LE(heavy_done, kEpoch + sec(12) + msec(1));
  EXPECT_GE(light_done, kEpoch + sec(18));
  EXPECT_LE(light_done, kEpoch + sec(18) + msec(1));
  k.shutdown();
}

// A rate cap freezes a flow below its proportional share and the spare
// capacity spills to the uncapped flow (max-min progressive filling).
TEST(FluidTest, RateCapSpillsToUncappedFlows) {
  Kernel k;
  FluidResource link(k, 100.0);
  TimePoint capped_done{};
  TimePoint open_done{};
  k.spawn("capped", [&](Context& ctx) {
    FluidFlowOptions options;
    options.rate_cap = 20.0;
    ASSERT_TRUE(link.transfer(ctx, 200.0, options).ok());
    capped_done = ctx.now();
  });
  k.spawn("open", [&](Context& ctx) {
    ASSERT_TRUE(link.transfer(ctx, 800.0).ok());
    open_done = ctx.now();
  });
  k.run();
  // Both run 10 s: capped at 20/s (200 done), open at 80/s (800 done).
  EXPECT_GE(capped_done, kEpoch + sec(10));
  EXPECT_LE(capped_done, kEpoch + sec(10) + msec(1));
  EXPECT_GE(open_done, kEpoch + sec(10));
  EXPECT_LE(open_done, kEpoch + sec(10) + msec(1));
  k.shutdown();
}

// Joins and leaves re-share correctly: a late joiner halves the incumbent's
// rate, and its departure restores the full rate.
TEST(FluidTest, JoinAndLeaveReshare) {
  Kernel k;
  FluidResource link(k, 100.0);
  TimePoint first_done{};
  TimePoint second_done{};
  k.spawn("incumbent", [&](Context& ctx) {
    ASSERT_TRUE(link.transfer(ctx, 1000.0).ok());
    first_done = ctx.now();
  });
  k.spawn("joiner", [&](Context& ctx) {
    ctx.sleep(sec(4));  // incumbent has moved 400 alone
    ASSERT_TRUE(link.transfer(ctx, 500.0).ok());
    second_done = ctx.now();
  });
  k.run();
  // t=4: incumbent has 600 left, joiner 500, both at 50/s.  The joiner
  // finishes first at t=14; the incumbent then runs alone at 100/s with
  // 100 left and finishes at t=15.
  EXPECT_GE(second_done, kEpoch + sec(14));
  EXPECT_LE(second_done, kEpoch + sec(14) + msec(1));
  EXPECT_GE(first_done, kEpoch + sec(15));
  EXPECT_LE(first_done, kEpoch + sec(15) + msec(1));
  EXPECT_GE(link.reshares(), 3);  // join, leave, leave
  k.shutdown();
}

// instantaneous_share quotes the rate a hypothetical flow would get
// without perturbing the real flows.
TEST(FluidTest, InstantaneousShareQuotesHypotheticalRate) {
  Kernel k;
  FluidResource link(k, 100.0);
  double share_empty = -1;
  double share_busy = -1;
  k.spawn("flow", [&](Context& ctx) { (void)link.transfer(ctx, 1000.0); });
  k.spawn("probe", [&](Context& ctx) {
    share_busy = link.instantaneous_share();
    ctx.sleep(sec(60));  // flow done at t=10
    share_empty = link.instantaneous_share();
  });
  k.run();
  EXPECT_DOUBLE_EQ(share_busy, 50.0);   // would split 100 two ways
  EXPECT_DOUBLE_EQ(share_empty, 100.0); // link idle
  k.shutdown();
}

// Kills mid-transfer abort the flow, free its share, and count it.
TEST(FluidTest, KilledFlowLeavesAndReshares) {
  Kernel k;
  FluidResource link(k, 100.0);
  TimePoint survivor_done{};
  auto handle = k.spawn("victim", [&](Context& ctx) {
    (void)link.transfer(ctx, 1.0e9);
  });
  k.spawn("survivor", [&](Context& ctx) {
    ASSERT_TRUE(link.transfer(ctx, 1000.0).ok());
    survivor_done = ctx.now();
  });
  k.spawn("killer", [&](Context& ctx) {
    ctx.sleep(sec(5));
    ctx.kill(handle);
  });
  k.run();
  // 0-5 s shared at 50/s (250 moved), then alone at 100/s for 7.5 s.
  EXPECT_GE(survivor_done, kEpoch + sec(12.5));
  EXPECT_LE(survivor_done, kEpoch + sec(12.5) + msec(1));
  EXPECT_EQ(link.transfers_aborted(), 1);
  EXPECT_EQ(link.active_flows(), 0u);
  k.shutdown();
}

// Determinism probe across queue implementations: same completion times.
TEST(FluidTest, DeterministicAcrossQueueImpls) {
  auto run = [](QueueImpl queue) {
    KernelOptions options;
    options.queue = queue;
    Kernel k(42, options);
    FluidResource link(k, 64.0);
    std::vector<Duration> done;
    for (int i = 0; i < 6; ++i) {
      k.spawn("f" + std::to_string(i), [&, i](Context& ctx) {
        ctx.sleep(sec(i));
        FluidFlowOptions fo;
        fo.weight = 1.0 + i % 3;
        ASSERT_TRUE(link.transfer(ctx, 100.0 * (i + 1), fo).ok());
        done.push_back(ctx.now() - kEpoch);
      });
    }
    k.run();
    k.shutdown();
    return done;
  };
  EXPECT_EQ(run(QueueImpl::kWheel), run(QueueImpl::kHeap));
}

}  // namespace
}  // namespace ethergrid::sim
