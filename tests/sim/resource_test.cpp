#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ethergrid::sim {
namespace {

TEST(ResourceTest, ImmediateAcquireWhenAvailable) {
  Kernel k;
  Resource r(k, 3);
  TimePoint at{kEpoch + hours(1)};
  k.spawn("p", [&](Context& ctx) {
    r.acquire(ctx, 2);
    at = ctx.now();
  });
  k.run();
  EXPECT_EQ(at, kEpoch);
  EXPECT_EQ(r.available(), 1);
  EXPECT_EQ(r.in_use(), 2);
}

TEST(ResourceTest, BlocksUntilReleased) {
  Kernel k;
  Resource r(k, 1);
  TimePoint got{};
  k.spawn("holder", [&](Context& ctx) {
    r.acquire(ctx);
    ctx.sleep(sec(10));
    r.release();
  });
  k.spawn("waiter", [&](Context& ctx) {
    ctx.sleep(sec(1));
    r.acquire(ctx);
    got = ctx.now();
    r.release();
  });
  k.run();
  EXPECT_EQ(got, kEpoch + sec(10));
  EXPECT_EQ(r.available(), 1);
}

TEST(ResourceTest, FifoOrderAmongWaiters) {
  Kernel k;
  Resource r(k, 1);
  std::vector<int> order;
  k.spawn("holder", [&](Context& ctx) {
    r.acquire(ctx);
    ctx.sleep(sec(10));
    r.release();
  });
  for (int i = 0; i < 3; ++i) {
    k.spawn("w" + std::to_string(i), [&, i](Context& ctx) {
      ctx.sleep(sec(i + 1));  // arrive in order 0,1,2
      r.acquire(ctx);
      order.push_back(i);
      ctx.sleep(sec(1));
      r.release();
    });
  }
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ResourceTest, TryAcquireDoesNotBlock) {
  Kernel k;
  Resource r(k, 2);
  EXPECT_TRUE(r.try_acquire(2));
  EXPECT_FALSE(r.try_acquire(1));
  r.release(2);
  EXPECT_TRUE(r.try_acquire(1));
}

TEST(ResourceTest, TryAcquireFailsWhileQueueNonEmpty) {
  // FIFO fairness: a try_acquire must not jump the queue even if units
  // would suffice for it.
  Kernel k;
  Resource r(k, 2);
  bool jumped = true;
  k.spawn("holder", [&](Context& ctx) {
    r.acquire(ctx, 2);
    ctx.sleep(sec(5));
    r.release(1);  // 1 free but the queued waiter wants 2
    ctx.sleep(sec(5));
    jumped = r.try_acquire(1);  // queue non-empty: must refuse
    r.release(1);
  });
  k.spawn("waiter", [&](Context& ctx) {
    ctx.sleep(sec(1));
    r.acquire(ctx, 2);
    r.release(2);
  });
  k.run();
  EXPECT_FALSE(jumped);
}

TEST(ResourceTest, QueueLengthVisible) {
  Kernel k;
  Resource r(k, 1);
  std::size_t observed = 0;
  k.spawn("holder", [&](Context& ctx) {
    r.acquire(ctx);
    ctx.sleep(sec(5));
    observed = r.queue_length();
    r.release();
  });
  for (int i = 0; i < 4; ++i) {
    k.spawn("w", [&](Context& ctx) {
      r.acquire(ctx);
      r.release();
    });
  }
  k.run();
  EXPECT_EQ(observed, 4u);
  EXPECT_EQ(r.queue_length(), 0u);
}

TEST(ResourceTest, DeadlineWhileQueuedRemovesWaiter) {
  Kernel k;
  Resource r(k, 1);
  bool threw = false;
  k.spawn("holder", [&](Context& ctx) {
    r.acquire(ctx);
    ctx.sleep(sec(100));
    r.release();
  });
  k.spawn("impatient", [&](Context& ctx) {
    ctx.sleep(sec(1));
    try {
      DeadlineScope scope(ctx, kEpoch + sec(5));
      r.acquire(ctx);
    } catch (const DeadlineExceeded&) {
      threw = true;
    }
  });
  k.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(r.queue_length(), 0u);
  EXPECT_EQ(r.available(), 1);  // holder's release not stolen by a ghost
}

TEST(ResourceTest, KillWhileQueuedHandsGrantOnward) {
  // If a queued waiter is killed, a later waiter must still get the units.
  Kernel k;
  Resource r(k, 1);
  TimePoint got{};
  auto victim = k.spawn("victim", [&](Context& ctx) {
    ctx.sleep(sec(1));
    r.acquire(ctx);  // queues behind holder; killed at t=3
    ADD_FAILURE() << "victim acquired unexpectedly";
  });
  k.spawn("holder", [&](Context& ctx) {
    r.acquire(ctx);
    ctx.sleep(sec(10));
    r.release();
  });
  k.spawn("killer", [&](Context& ctx) {
    ctx.sleep(sec(3));
    ctx.kill(victim);
  });
  k.spawn("waiter", [&](Context& ctx) {
    ctx.sleep(sec(2));
    r.acquire(ctx);
    got = ctx.now();
    r.release();
  });
  k.run();
  EXPECT_EQ(got, kEpoch + sec(10));
  EXPECT_EQ(r.available(), 1);
}

TEST(ResourceTest, LeaseReleasesOnScopeExit) {
  Kernel k;
  Resource r(k, 1);
  k.spawn("p", [&](Context& ctx) {
    {
      ResourceLease lease(ctx, r);
      EXPECT_EQ(r.available(), 0);
    }
    EXPECT_EQ(r.available(), 1);
  });
  k.run();
}

TEST(ResourceTest, LeaseEarlyReleaseIsIdempotent) {
  Kernel k;
  Resource r(k, 2);
  k.spawn("p", [&](Context& ctx) {
    ResourceLease lease(ctx, r, 2);
    lease.release();
    lease.release();
    EXPECT_EQ(r.available(), 2);
  });
  k.run();
  EXPECT_EQ(r.available(), 2);
}

TEST(ResourceTest, LeaseReleasesDuringUnwind) {
  Kernel k;
  Resource r(k, 1);
  bool threw = false;
  k.spawn("p", [&](Context& ctx) {
    try {
      DeadlineScope scope(ctx, kEpoch + sec(1));
      ResourceLease lease(ctx, r);
      ctx.sleep(sec(100));
    } catch (const DeadlineExceeded&) {
      threw = true;
    }
  });
  k.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(r.available(), 1);
}

}  // namespace
}  // namespace ethergrid::sim
