// Backend equivalence: the fiber and thread backends are two executors of
// ONE simulation.  Same seed, same scenario, same fault plan => identical
// final statistics and a byte-identical fault audit, regardless of which
// backend ran the processes.  This is the differential oracle that keeps
// the fiber fast path honest: any scheduling divergence (wrong wake order,
// dropped wakeup, RNG stream skew) shows up here as a stats or audit diff.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "exp/scenarios.hpp"
#include "obs/trace.hpp"
#include "shell/session.hpp"
#include "shell/sim_executor.hpp"
#include "sim/fault_plan.hpp"
#include "sim/kernel.hpp"

namespace ethergrid {
namespace {

// Same plans the chaos suite replays (tests/chaos/chaos_test.cpp).
const char kPlanResets[] = "fileserver.*.fetch:reset@0.25";
const char kPlanPartitionStall[] =
    "fileserver.yyy.*:drop@100-500;fileserver.*.fetch:stall@0.3,5";

sim::FaultPlan parse_plan(const std::string& spec) {
  sim::FaultPlan plan;
  Status s = sim::FaultPlan::parse(spec, &plan);
  EXPECT_TRUE(s.ok()) << s.message();
  return plan;
}

exp::ReaderTimeline run_readers(sim::Backend backend, std::uint64_t seed,
                                const std::string& plan_spec,
                                grid::DisciplineKind kind) {
  exp::ReaderScenarioConfig config;
  config.seed = seed;
  config.kernel.backend = backend;
  config.faults = parse_plan(plan_spec);
  return exp::run_reader_timeline(config, kind, sec(900), sec(30));
}

class BackendEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, const char*>> {
};

// Under TSan the kernel forces the thread backend, which would make this a
// thread-vs-thread tautology; skip so the suite reports reality.
bool fiber_backend_available() {
  sim::Kernel probe(1, {sim::Backend::kFiber});
  return probe.backend() == sim::Backend::kFiber;
}

TEST_P(BackendEquivalenceTest, ChaosReaderStatsAndAuditMatch) {
  if (!fiber_backend_available()) {
    GTEST_SKIP() << "fiber backend unavailable (TSan build)";
  }
  const auto [seed, plan] = GetParam();
  for (grid::DisciplineKind kind :
       {grid::DisciplineKind::kFixed, grid::DisciplineKind::kEthernet}) {
    const auto fiber = run_readers(sim::Backend::kFiber, seed, plan, kind);
    const auto thread = run_readers(sim::Backend::kThread, seed, plan, kind);
    EXPECT_EQ(fiber.transfers_total, thread.transfers_total);
    EXPECT_EQ(fiber.collisions_total, thread.collisions_total);
    EXPECT_EQ(fiber.deferrals_total, thread.deferrals_total);
    EXPECT_EQ(fiber.faults_injected, thread.faults_injected);
    // Byte-identical audit text: every injected fault fired at the same
    // virtual instant at the same site in the same order.
    EXPECT_EQ(fiber.fault_audit, thread.fault_audit);
    ASSERT_EQ(fiber.points.size(), thread.points.size());
    for (std::size_t i = 0; i < fiber.points.size(); ++i) {
      EXPECT_EQ(fiber.points[i].transfers, thread.points[i].transfers) << i;
      EXPECT_EQ(fiber.points[i].collisions, thread.points[i].collisions) << i;
      EXPECT_EQ(fiber.points[i].deferrals, thread.points[i].deferrals) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByPlans, BackendEquivalenceTest,
    ::testing::Combine(::testing::Values(std::uint64_t(1), std::uint64_t(7),
                                         std::uint64_t(42)),
                       ::testing::Values(kPlanResets, kPlanPartitionStall)));

// The submit scenario exercises a different substrate mix (FD table,
// service queue aborts, crash pulses) -- one seed is enough on top of the
// reader matrix above.
TEST(BackendEquivalence, SubmitScaleMatches) {
  if (!fiber_backend_available()) {
    GTEST_SKIP() << "fiber backend unavailable (TSan build)";
  }
  exp::SubmitScenarioConfig config;
  config.seed = 42;
  config.faults = parse_plan("schedd.submit:reset@0.05");

  config.kernel.backend = sim::Backend::kFiber;
  const auto fiber =
      exp::run_submit_scale_point(config, grid::DisciplineKind::kEthernet, 80);
  config.kernel.backend = sim::Backend::kThread;
  const auto thread =
      exp::run_submit_scale_point(config, grid::DisciplineKind::kEthernet, 80);

  EXPECT_EQ(fiber.jobs_submitted, thread.jobs_submitted);
  EXPECT_EQ(fiber.schedd_crashes, thread.schedd_crashes);
  EXPECT_EQ(fiber.fd_low_watermark, thread.fd_low_watermark);
  EXPECT_EQ(fiber.faults_injected, thread.faults_injected);
  EXPECT_EQ(fiber.fault_audit, thread.fault_audit);
  EXPECT_EQ(fiber.kernel_events, thread.kernel_events);
}

// ---- trace determinism ----
//
// The observability layer extends the oracle: a fixed-seed run must export
// a byte-identical Perfetto JSON on both backends.  Span ids are assigned
// in emission order and every timestamp is virtual, so any divergence in
// scheduling or RNG consumption shows up as a byte diff here.

// A script exercising the span hierarchy: parallel forall branches on
// separate tracks, a try whose retries emit jittered backoff events.
const char kTraceScript[] =
    "forall x in 1 2 3\n"
    "  sleep ${x} seconds\n"
    "end\n"
    "try 3 times\n"
    "  false\n"
    "end\n";

std::string run_script_trace(sim::Backend backend) {
  sim::Kernel kernel(7, {backend});
  shell::SimExecutor executor(kernel);
  shell::SessionOptions options;
  options.collect_trace = true;
  options.trace_process_name = "equiv";
  options.seed = 99;
  shell::Session session(executor, options);
  kernel.spawn("script", [&](sim::Context& ctx) {
    shell::SimExecutor::ContextBinding binding(executor, ctx);
    (void)session.run_source(kTraceScript);
  });
  kernel.run();
  return session.trace()->to_json();
}

TEST(BackendEquivalence, ScriptTraceBytesMatch) {
  if (!fiber_backend_available()) {
    GTEST_SKIP() << "fiber backend unavailable (TSan build)";
  }
  const std::string fiber = run_script_trace(sim::Backend::kFiber);
  const std::string thread = run_script_trace(sim::Backend::kThread);
  EXPECT_NE(fiber.find("forall"), std::string::npos);
  EXPECT_NE(fiber.find("backoff"), std::string::npos);
  EXPECT_EQ(fiber, thread);
}

std::string run_reader_trace(sim::Backend backend) {
  obs::TraceRecorder recorder("gridsim");
  obs::ObserverSet set;
  set.add(&recorder);
  exp::ReaderScenarioConfig config;
  config.seed = 42;
  config.kernel.backend = backend;
  config.faults = parse_plan(kPlanResets);
  config.observers = &set;
  (void)exp::run_reader_timeline(config, grid::DisciplineKind::kEthernet,
                                 sec(900), sec(30));
  return recorder.to_json();
}

TEST(BackendEquivalence, ChaosReaderTraceBytesMatch) {
  if (!fiber_backend_available()) {
    GTEST_SKIP() << "fiber backend unavailable (TSan build)";
  }
  const std::string fiber = run_reader_trace(sim::Backend::kFiber);
  const std::string thread = run_reader_trace(sim::Backend::kThread);
  EXPECT_NE(fiber.find("collision"), std::string::npos);
  EXPECT_NE(fiber.find("fault"), std::string::npos);
  EXPECT_EQ(fiber, thread);
}

}  // namespace
}  // namespace ethergrid
