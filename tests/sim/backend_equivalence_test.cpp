// Backend equivalence: the fiber and thread backends are two executors of
// ONE simulation, and the timer wheel and binary heap are two containers
// for ONE event queue.  Same seed, same scenario, same fault plan =>
// identical final statistics and a byte-identical fault audit across every
// (backend x queue) combination.  This is the differential oracle that
// keeps the fiber fast path and the wheel's cascade logic honest: any
// scheduling divergence (wrong wake order, dropped wakeup, RNG stream
// skew) shows up here as a stats or audit diff.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <string>
#include <tuple>
#include <utility>

#include "exp/scenarios.hpp"
#include "obs/trace.hpp"
#include "shell/session.hpp"
#include "shell/sim_executor.hpp"
#include "sim/fault_plan.hpp"
#include "sim/kernel.hpp"

namespace ethergrid {
namespace {

// Same plans the chaos suite replays (tests/chaos/chaos_test.cpp).
const char kPlanResets[] = "fileserver.*.fetch:reset@0.25";
const char kPlanPartitionStall[] =
    "fileserver.yyy.*:drop@100-500;fileserver.*.fetch:stall@0.3,5";

sim::FaultPlan parse_plan(const std::string& spec) {
  sim::FaultPlan plan;
  Status s = sim::FaultPlan::parse(spec, &plan);
  EXPECT_TRUE(s.ok()) << s.message();
  return plan;
}

// Every executor/queue pairing the kernel supports; index 0 is the
// reference configuration the others must match.
constexpr std::pair<sim::Backend, sim::QueueImpl> kCombos[] = {
    {sim::Backend::kFiber, sim::QueueImpl::kWheel},
    {sim::Backend::kThread, sim::QueueImpl::kWheel},
    {sim::Backend::kFiber, sim::QueueImpl::kHeap},
    {sim::Backend::kThread, sim::QueueImpl::kHeap},
};

const char* combo_name(std::size_t i) {
  static const char* names[] = {"fiber/wheel", "thread/wheel", "fiber/heap",
                                "thread/heap"};
  return names[i];
}

exp::ReaderTimeline run_readers(sim::Backend backend, sim::QueueImpl queue,
                                std::uint64_t seed,
                                const std::string& plan_spec,
                                std::string_view discipline) {
  exp::ReaderScenarioConfig config;
  config.seed = seed;
  config.kernel.backend = backend;
  config.kernel.queue = queue;
  config.faults = parse_plan(plan_spec);
  return exp::run_reader_timeline(config, discipline, sec(900), sec(30));
}

class BackendEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, const char*>> {
};

// Under TSan the kernel forces the thread backend, which would make this a
// thread-vs-thread tautology; skip so the suite reports reality.
bool fiber_backend_available() {
  sim::Kernel probe(1, {sim::Backend::kFiber});
  return probe.backend() == sim::Backend::kFiber;
}

TEST_P(BackendEquivalenceTest, ChaosReaderStatsAndAuditMatch) {
  if (!fiber_backend_available()) {
    GTEST_SKIP() << "fiber backend unavailable (TSan build)";
  }
  const auto [seed, plan] = GetParam();
  for (const char* discipline : {"fixed", "ethernet"}) {
    const auto ref = run_readers(kCombos[0].first, kCombos[0].second, seed,
                                 plan, discipline);
    for (std::size_t c = 1; c < std::size(kCombos); ++c) {
      const auto got = run_readers(kCombos[c].first, kCombos[c].second, seed,
                                   plan, discipline);
      SCOPED_TRACE(combo_name(c));
      EXPECT_EQ(ref.transfers_total, got.transfers_total);
      EXPECT_EQ(ref.collisions_total, got.collisions_total);
      EXPECT_EQ(ref.deferrals_total, got.deferrals_total);
      EXPECT_EQ(ref.faults_injected, got.faults_injected);
      // Byte-identical audit text: every injected fault fired at the same
      // virtual instant at the same site in the same order.
      EXPECT_EQ(ref.fault_audit, got.fault_audit);
      ASSERT_EQ(ref.points.size(), got.points.size());
      for (std::size_t i = 0; i < ref.points.size(); ++i) {
        EXPECT_EQ(ref.points[i].transfers, got.points[i].transfers) << i;
        EXPECT_EQ(ref.points[i].collisions, got.points[i].collisions) << i;
        EXPECT_EQ(ref.points[i].deferrals, got.points[i].deferrals) << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByPlans, BackendEquivalenceTest,
    ::testing::Combine(::testing::Values(std::uint64_t(1), std::uint64_t(7),
                                         std::uint64_t(42)),
                       ::testing::Values(kPlanResets, kPlanPartitionStall)));

// The submit scenario exercises a different substrate mix (FD table,
// service queue aborts, crash pulses) -- one seed is enough on top of the
// reader matrix above.
TEST(BackendEquivalence, SubmitScaleMatches) {
  if (!fiber_backend_available()) {
    GTEST_SKIP() << "fiber backend unavailable (TSan build)";
  }
  exp::SubmitScenarioConfig config;
  config.seed = 42;
  config.faults = parse_plan("schedd.submit:reset@0.05");

  config.kernel.backend = kCombos[0].first;
  config.kernel.queue = kCombos[0].second;
  const auto ref = exp::run_submit_scale_point(config, "ethernet", 80);
  for (std::size_t c = 1; c < std::size(kCombos); ++c) {
    config.kernel.backend = kCombos[c].first;
    config.kernel.queue = kCombos[c].second;
    const auto got = exp::run_submit_scale_point(config, "ethernet", 80);
    SCOPED_TRACE(combo_name(c));
    EXPECT_EQ(ref.jobs_submitted, got.jobs_submitted);
    EXPECT_EQ(ref.schedd_crashes, got.schedd_crashes);
    EXPECT_EQ(ref.fd_low_watermark, got.fd_low_watermark);
    EXPECT_EQ(ref.faults_injected, got.faults_injected);
    EXPECT_EQ(ref.fault_audit, got.fault_audit);
    EXPECT_EQ(ref.kernel_events, got.kernel_events);
  }
}

// The fluid capacity model joins the matrix: max-min reshare events are
// ordinary timer events, so a saturated fluid link with faults -- and the
// reservation book's grant arithmetic on top -- must replay identically
// across every backend/queue pairing, down to per-sender byte counts.
exp::BulkSweepPoint run_bulk(sim::Backend backend, sim::QueueImpl queue,
                             std::string_view discipline) {
  exp::BulkScenarioConfig config;
  config.link_bps = 1.0 * 1024 * 1024;
  config.sender.file_bytes = 4 << 20;
  config.faults = parse_plan("bulk.write:fail@0.1");
  config.kernel.backend = backend;
  config.kernel.queue = queue;
  return exp::run_bulk_point(config, discipline, 6, sec(300));
}

TEST(BackendEquivalence, FluidBulkStatsAndAuditMatch) {
  if (!fiber_backend_available()) {
    GTEST_SKIP() << "fiber backend unavailable (TSan build)";
  }
  for (const char* discipline : {"ethernet", "reservation"}) {
    SCOPED_TRACE(discipline);
    const auto ref = run_bulk(kCombos[0].first, kCombos[0].second, discipline);
    ASSERT_GT(ref.bytes_sent, 0);
    EXPECT_GT(ref.faults_injected, 0);
    for (std::size_t c = 1; c < std::size(kCombos); ++c) {
      SCOPED_TRACE(combo_name(c));
      const auto got =
          run_bulk(kCombos[c].first, kCombos[c].second, discipline);
      EXPECT_EQ(ref.bytes_sent, got.bytes_sent);
      EXPECT_EQ(ref.per_sender_bytes, got.per_sender_bytes);
      EXPECT_EQ(ref.grants, got.grants);
      EXPECT_EQ(ref.rejects, got.rejects);
      EXPECT_EQ(ref.deferrals, got.deferrals);
      EXPECT_EQ(ref.faults_injected, got.faults_injected);
      EXPECT_EQ(ref.fault_audit, got.fault_audit);
      EXPECT_EQ(ref.kernel_events, got.kernel_events);
    }
  }
}

// ---- trace determinism ----
//
// The observability layer extends the oracle: a fixed-seed run must export
// a byte-identical Perfetto JSON on both backends.  Span ids are assigned
// in emission order and every timestamp is virtual, so any divergence in
// scheduling or RNG consumption shows up as a byte diff here.

// A script exercising the span hierarchy: parallel forall branches on
// separate tracks, a try whose retries emit jittered backoff events.
const char kTraceScript[] =
    "forall x in 1 2 3\n"
    "  sleep ${x} seconds\n"
    "end\n"
    "try 3 times\n"
    "  false\n"
    "end\n";

std::string run_script_trace(sim::Backend backend, sim::QueueImpl queue) {
  sim::Kernel kernel(7, {backend, queue});
  shell::SimExecutor executor(kernel);
  shell::SessionOptions options;
  options.collect_trace = true;
  options.trace_process_name = "equiv";
  options.seed = 99;
  shell::Session session(executor, options);
  kernel.spawn("script", [&](sim::Context& ctx) {
    shell::SimExecutor::ContextBinding binding(executor, ctx);
    (void)session.run_source(kTraceScript);
  });
  kernel.run();
  return session.trace()->to_json();
}

TEST(BackendEquivalence, ScriptTraceBytesMatch) {
  if (!fiber_backend_available()) {
    GTEST_SKIP() << "fiber backend unavailable (TSan build)";
  }
  const std::string ref = run_script_trace(kCombos[0].first, kCombos[0].second);
  EXPECT_NE(ref.find("forall"), std::string::npos);
  EXPECT_NE(ref.find("backoff"), std::string::npos);
  for (std::size_t c = 1; c < std::size(kCombos); ++c) {
    SCOPED_TRACE(combo_name(c));
    EXPECT_EQ(ref, run_script_trace(kCombos[c].first, kCombos[c].second));
  }
}

std::string run_reader_trace(sim::Backend backend, sim::QueueImpl queue) {
  obs::TraceRecorder recorder("gridsim");
  obs::ObserverSet set;
  set.add(&recorder);
  exp::ReaderScenarioConfig config;
  config.seed = 42;
  config.kernel.backend = backend;
  config.kernel.queue = queue;
  config.faults = parse_plan(kPlanResets);
  config.observers = &set;
  (void)exp::run_reader_timeline(config, "ethernet", sec(900), sec(30));
  return recorder.to_json();
}

TEST(BackendEquivalence, ChaosReaderTraceBytesMatch) {
  if (!fiber_backend_available()) {
    GTEST_SKIP() << "fiber backend unavailable (TSan build)";
  }
  const std::string ref = run_reader_trace(kCombos[0].first, kCombos[0].second);
  EXPECT_NE(ref.find("collision"), std::string::npos);
  EXPECT_NE(ref.find("fault"), std::string::npos);
  for (std::size_t c = 1; c < std::size(kCombos); ++c) {
    SCOPED_TRACE(combo_name(c));
    EXPECT_EQ(ref, run_reader_trace(kCombos[c].first, kCombos[c].second));
  }
}

// ---- sharded equivalence ----
//
// The sharded kernel joins the oracle: ONE partitioned world, three
// executions -- unsharded (shards=1), sharded single-threaded (shards=4,
// threads=1), and sharded parallel (shards=4, threads=4) -- must agree on
// every per-site statistic and produce a byte-identical merged fault
// audit.  shards=1 vs shards=4 checks partition independence (per-site
// names pin the RNG streams); threads=1 vs threads=4 checks that worker
// scheduling reorders nothing virtual time doesn't.

// Per-site plans over the sharded submit world's "schedd<i>.submit" sites.
const char kShardPlanResets[] = "schedd*.submit:reset@0.1";
const char kShardPlanCrashStall[] =
    "schedd1.submit:crash@30;schedd*.submit:stall@0.2,2";

exp::ShardedSubmitResult run_sharded(std::uint64_t seed,
                                     const std::string& plan_spec,
                                     std::string_view discipline,
                                     std::size_t shards, std::size_t threads,
                                     bool record_trace = false,
                                     int bulk_per_site = 0,
                                     const char* bulk_discipline = "ethernet") {
  exp::ShardedSubmitConfig config;
  config.sites = 4;
  config.submitters_per_site = 20;
  config.remote_per_site = 2;
  config.seed = seed;
  config.sharded.shards = shards;
  config.sharded.threads = threads;
  config.faults = parse_plan(plan_spec);
  config.record_trace = record_trace;
  config.bulk_per_site = bulk_per_site;
  config.bulk.discipline = bulk_discipline;
  config.bulk.file_bytes = 4 << 20;
  return exp::run_sharded_submit(config, discipline, sec(120));
}

void expect_sharded_equal(const exp::ShardedSubmitResult& ref,
                          const exp::ShardedSubmitResult& got) {
  ASSERT_EQ(ref.by_site.size(), got.by_site.size());
  for (std::size_t i = 0; i < ref.by_site.size(); ++i) {
    EXPECT_EQ(ref.by_site[i].jobs_submitted, got.by_site[i].jobs_submitted)
        << "site " << i;
    EXPECT_EQ(ref.by_site[i].schedd_crashes, got.by_site[i].schedd_crashes)
        << "site " << i;
    EXPECT_EQ(ref.by_site[i].fd_low_watermark, got.by_site[i].fd_low_watermark)
        << "site " << i;
  }
  for (std::size_t i = 0; i < ref.by_site.size(); ++i) {
    EXPECT_EQ(ref.by_site[i].bulk_files, got.by_site[i].bulk_files)
        << "site " << i;
    EXPECT_EQ(ref.by_site[i].bulk_bytes, got.by_site[i].bulk_bytes)
        << "site " << i;
    EXPECT_EQ(ref.by_site[i].bulk_grants, got.by_site[i].bulk_grants)
        << "site " << i;
  }
  EXPECT_EQ(ref.jobs_total, got.jobs_total);
  EXPECT_EQ(ref.remote_jobs, got.remote_jobs);
  EXPECT_EQ(ref.remote_tries_failed, got.remote_tries_failed);
  EXPECT_EQ(ref.bulk_bytes_total, got.bulk_bytes_total);
  EXPECT_EQ(ref.bulk_grants_total, got.bulk_grants_total);
  EXPECT_EQ(ref.faults_injected, got.faults_injected);
  // Byte-identical merged audit: every fault fired at the same virtual
  // instant at the same site, independent of partition and thread count.
  EXPECT_EQ(ref.fault_audit, got.fault_audit);
}

class ShardedEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, const char*>> {
};

TEST_P(ShardedEquivalenceTest, StatsAndAuditMatchAcrossShardsAndThreads) {
  const auto [seed, plan] = GetParam();
  for (const char* discipline : {"fixed", "ethernet"}) {
    SCOPED_TRACE(discipline);
    const auto ref = run_sharded(seed, plan, discipline, /*shards=*/1,
                                 /*threads=*/1);
    ASSERT_GT(ref.jobs_total, 0);
    EXPECT_GT(ref.faults_injected, 0);
    {
      SCOPED_TRACE("shards=4/threads=1");
      const auto got = run_sharded(seed, plan, discipline, 4, 1);
      expect_sharded_equal(ref, got);
    }
    {
      SCOPED_TRACE("shards=4/threads=4");
      const auto got = run_sharded(seed, plan, discipline, 4, 4);
      expect_sharded_equal(ref, got);
    }
  }
}

// Fluid substrates under sharding: each site runs a fluid bulk link whose
// flows are shard-local, so per-site bulk bytes/files/grants -- and the
// merged audit, which now includes site<i>.bulk.write faults -- must be
// identical for shards=1, shards=4/threads=1, and shards=4/threads=4.
TEST(ShardedEquivalence, FluidBulkLaneMatchesAcrossShardsAndThreads) {
  const char* plan = "schedd*.submit:reset@0.1;site*.bulk.write:fail@0.1";
  for (const char* bulk_discipline : {"ethernet", "reservation"}) {
    SCOPED_TRACE(bulk_discipline);
    const auto ref = run_sharded(42, plan, "ethernet", 1, 1,
                                 /*record_trace=*/false, /*bulk_per_site=*/3,
                                 bulk_discipline);
    ASSERT_GT(ref.bulk_bytes_total, 0);
    if (std::string(bulk_discipline) == "reservation") {
      EXPECT_GT(ref.bulk_grants_total, 0);
    }
    {
      SCOPED_TRACE("shards=4/threads=1");
      expect_sharded_equal(ref, run_sharded(42, plan, "ethernet", 4, 1, false,
                                            3, bulk_discipline));
    }
    {
      SCOPED_TRACE("shards=4/threads=4");
      expect_sharded_equal(ref, run_sharded(42, plan, "ethernet", 4, 4, false,
                                            3, bulk_discipline));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByPlans, ShardedEquivalenceTest,
    ::testing::Combine(::testing::Values(std::uint64_t(1), std::uint64_t(7),
                                         std::uint64_t(42)),
                       ::testing::Values(kShardPlanResets,
                                         kShardPlanCrashStall)));

// The exported trace is part of the determinism contract at fixed shard
// count: shards=4/threads=4 must serialize the same merged bytes as
// shards=4/threads=1 (per-shard lanes, merged in shard order).
TEST(ShardedEquivalence, MergedTraceBytesMatchAcrossThreadCounts) {
  const auto ref = run_sharded(42, kShardPlanCrashStall, "ethernet", 4, 1,
                               /*record_trace=*/true);
  EXPECT_NE(ref.trace_json.find("fault"), std::string::npos);
  EXPECT_NE(ref.trace_json.find("shard3"), std::string::npos);
  const auto got = run_sharded(42, kShardPlanCrashStall, "ethernet", 4, 4,
                               /*record_trace=*/true);
  EXPECT_EQ(ref.trace_json, got.trace_json);
}

}  // namespace
}  // namespace ethergrid
