// Regression tests for stale-wakeup accounting and heap compaction.
//
// The kernel cancels wakeups lazily: a consumed or killed wakeup leaves its
// queue entry behind (token mismatch) to be skipped on pop.  Before
// compaction existed, a long-lived process that kept racing an event
// against a long timeout stranded one far-future entry per cycle and the
// queue grew for the whole run.  These tests pin the O(live) bound.
#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ethergrid::sim {
namespace {

// The classic leak: wait_for(event, long_timeout) where the event always
// wins.  Each cycle schedules a timer entry hours in the future that can
// only die by compaction.
TEST(QueueCompaction, EventWinsLeavesNoUnboundedTimerResidue) {
  Kernel kernel(1);
  Event tick(kernel);
  constexpr int kCycles = 20000;
  kernel.spawn("poller", [&](Context& ctx) {
    for (int i = 0; i < kCycles; ++i) {
      const bool fired = ctx.wait_for(tick, hours(24));
      ASSERT_TRUE(fired);
    }
  });
  kernel.spawn("pulser", [&](Context& ctx) {
    for (int i = 0; i < kCycles; ++i) {
      ctx.sleep(msec(1));
      tick.pulse();
    }
  });

  std::size_t max_depth = 0;
  while (kernel.run_for(sec(1))) {
    max_depth = std::max(max_depth, kernel.queue_depth());
  }
  // 20k cycles stranded 20k far-future entries; compaction must keep the
  // queue near the live population (2 processes), not the cycle count.
  EXPECT_LE(max_depth, 128u);
  EXPECT_EQ(kernel.live_process_count(), 0u);
}

// Pure timeout churn: every wakeup is consumed at its own time, so depth
// must stay flat even without compaction.  Guards the accounting itself.
TEST(QueueCompaction, RepeatedWaitForTimeoutsStayFlat) {
  Kernel kernel(1);
  Event never(kernel);
  kernel.spawn("poller", [&](Context& ctx) {
    for (int i = 0; i < 5000; ++i) {
      const bool fired = ctx.wait_for(never, msec(10));
      ASSERT_FALSE(fired);
    }
  });
  std::size_t max_depth = 0;
  while (kernel.run_for(sec(1))) {
    max_depth = std::max(max_depth, kernel.queue_depth());
  }
  EXPECT_LE(max_depth, 8u);
}

// Kill-heavy churn: killing a blocked process invalidates its pending
// wakeups; the stale count must come back down via pops or compaction and
// never go negative (which would show up as a huge queue_depth bound).
TEST(QueueCompaction, KilledSleepersAreCompactedAway) {
  Kernel kernel(7);
  for (int i = 0; i < 500; ++i) {
    auto sleeper = kernel.spawn("sleeper", [](Context& ctx) {
      ctx.sleep(hours(1000));
    });
    kernel.spawn("killer", [sleeper](Context& ctx) {
      ctx.sleep(msec(1));
      ctx.kill(*sleeper, "cull");
    });
    kernel.run_for(msec(2));
  }
  kernel.run();
  EXPECT_EQ(kernel.live_process_count(), 0u);
  EXPECT_LE(kernel.queue_depth(), 64u);
}

}  // namespace
}  // namespace ethergrid::sim
