// Regression tests for stale-wakeup accounting and queue compaction.
//
// The kernel cancels wakeups lazily: a consumed or killed wakeup leaves its
// queue entry behind (token mismatch) to be skipped on pop.  Before
// compaction existed, a long-lived process that kept racing an event
// against a long timeout stranded one far-future entry per cycle and the
// queue grew for the whole run.  These tests pin the O(live) bound, and --
// since stale_wakeups_ is a size_t -- that the accounting never underflows:
// a wrapped counter trips the stale > size/2 trigger on every schedule and
// locks the queue into permanent O(n) compaction, which the depth bounds
// below would catch (debug builds additionally audit the exact counts after
// every queue operation and abort on mismatch).
//
// The whole suite runs under both queue implementations (timer wheel and
// the binary-heap oracle); the accounting contract is identical.
#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace ethergrid::sim {
namespace {

class QueueCompaction : public ::testing::TestWithParam<QueueImpl> {
 protected:
  KernelOptions options() const {
    KernelOptions o;
    o.queue = GetParam();
    return o;
  }
};

// The classic leak: wait_for(event, long_timeout) where the event always
// wins.  Each cycle schedules a timer entry hours in the future that can
// only die by compaction.
TEST_P(QueueCompaction, EventWinsLeavesNoUnboundedTimerResidue) {
  Kernel kernel(1, options());
  Event tick(kernel);
  constexpr int kCycles = 20000;
  kernel.spawn("poller", [&](Context& ctx) {
    for (int i = 0; i < kCycles; ++i) {
      const bool fired = ctx.wait_for(tick, hours(24));
      ASSERT_TRUE(fired);
    }
  });
  kernel.spawn("pulser", [&](Context& ctx) {
    for (int i = 0; i < kCycles; ++i) {
      ctx.sleep(msec(1));
      tick.pulse();
    }
  });

  std::size_t max_depth = 0;
  while (kernel.run_for(sec(1))) {
    max_depth = std::max(max_depth, kernel.queue_depth());
  }
  // 20k cycles stranded 20k far-future entries; compaction must keep the
  // queue near the live population (2 processes), not the cycle count.
  EXPECT_LE(max_depth, 128u);
  EXPECT_EQ(kernel.live_process_count(), 0u);
}

// Pure timeout churn: every wakeup is consumed at its own time, so depth
// must stay flat even without compaction.  Guards the accounting itself.
TEST_P(QueueCompaction, RepeatedWaitForTimeoutsStayFlat) {
  Kernel kernel(1, options());
  Event never(kernel);
  kernel.spawn("poller", [&](Context& ctx) {
    for (int i = 0; i < 5000; ++i) {
      const bool fired = ctx.wait_for(never, msec(10));
      ASSERT_FALSE(fired);
    }
  });
  std::size_t max_depth = 0;
  while (kernel.run_for(sec(1))) {
    max_depth = std::max(max_depth, kernel.queue_depth());
  }
  EXPECT_LE(max_depth, 8u);
}

// Kill-heavy churn: killing a blocked process invalidates its pending
// wakeups; the stale count must come back down via pops or compaction and
// never go negative (which would show up as a huge queue_depth bound).
TEST_P(QueueCompaction, KilledSleepersAreCompactedAway) {
  Kernel kernel(7, options());
  for (int i = 0; i < 500; ++i) {
    auto sleeper = kernel.spawn("sleeper", [](Context& ctx) {
      ctx.sleep(hours(1000));
    });
    kernel.spawn("killer", [sleeper](Context& ctx) {
      ctx.sleep(msec(1));
      ctx.kill(*sleeper, "cull");
    });
    kernel.run_for(msec(2));
  }
  kernel.run();
  EXPECT_EQ(kernel.live_process_count(), 0u);
  EXPECT_LE(kernel.queue_depth(), 64u);
}

// Underflow regression (the stale_wakeups_ bugfix): processes that FINISH
// while a stranded entry for them is still queued.  Each waiter wins its
// event race -- stranding a +24h timeout entry -- and immediately ends.
// Finishing must retire the process's remaining entries into the stale
// count exactly once (token bump at finish) so that staleness stays a pure
// token comparison: the wheel's drop predicate never reads process state,
// so a finished process whose entries still token-matched would be
// delivered dead, and a double-counted hand-off wraps the size_t counter
// when the stranded entries are later popped or purged.  The
// permanent-compaction fallout would show up here as a blown depth bound;
// debug builds additionally abort in the accounting audit.
TEST_P(QueueCompaction, FinishedProcessesWithStrandedEntriesDrainExactly) {
  Kernel kernel(42, options());
  Event tick(kernel);
  constexpr int kWaiters = 300;
  for (int i = 0; i < kWaiters; ++i) {
    kernel.spawn("oneshot" + std::to_string(i), [&](Context& ctx) {
      // Event wins; the +24h timeout entry outlives the process.
      ASSERT_TRUE(ctx.wait_for(tick, hours(24)));
    });
  }
  kernel.spawn("pulser", [&](Context& ctx) {
    for (int i = 0; i < kWaiters; ++i) {
      ctx.sleep(usec(10));
      tick.pulse();
    }
  });
  // Let every waiter finish; their stranded entries are still queued.
  ASSERT_FALSE(kernel.run_until(TimePoint(sec(1))));
  EXPECT_EQ(kernel.live_process_count(), 0u);
  // Advance past every stranded entry: each one must be dropped as stale
  // (counter decremented exactly once), leaving a truly empty queue.
  EXPECT_FALSE(kernel.run_until(TimePoint(hours(48))));
  EXPECT_EQ(kernel.queue_depth(), 0u);

  // The accounting must still be exact: fresh work schedules and drains
  // normally (a wrapped counter would force compaction on every schedule
  // and, in debug builds, abort the audit long before this point).
  kernel.spawn("after", [&](Context& ctx) { ctx.sleep(msec(5)); });
  kernel.run();
  EXPECT_EQ(kernel.queue_depth(), 0u);
  EXPECT_EQ(kernel.live_process_count(), 0u);
}

// Kill-the-running-process regression: kill_locked must invalidate the
// current process's wake token too.  A self-killed process that then
// blocks must unwind promptly (Interrupted at the next yield point), not
// strand a live-counted entry until its full timeout elapses.
TEST_P(QueueCompaction, KillingRunningProcessTakesEffectAtNextYield) {
  Kernel kernel(7, options());
  bool interrupted = false;
  bool resumed_after_kill = false;
  auto victim = kernel.spawn("self-kill", [&](Context& ctx) {
    ctx.kill(ctx.process(), "suicide");
    try {
      ctx.sleep(hours(1000));
      resumed_after_kill = true;
    } catch (const Interrupted&) {
      interrupted = true;
      throw;
    }
  });
  kernel.run_until(TimePoint(sec(1)));
  EXPECT_TRUE(interrupted);
  EXPECT_FALSE(resumed_after_kill);
  EXPECT_EQ(kernel.live_process_count(), 0u);
  // The +1000h sleep entry must be accounted stale, not live: advancing
  // past it is pure bookkeeping and the queue ends empty.
  EXPECT_FALSE(kernel.run_until(TimePoint(hours(2000))));
  EXPECT_EQ(kernel.queue_depth(), 0u);
  (void)victim;
}

INSTANTIATE_TEST_SUITE_P(
    AllQueues, QueueCompaction,
    ::testing::Values(QueueImpl::kWheel, QueueImpl::kHeap),
    [](const ::testing::TestParamInfo<QueueImpl>& info) {
      return std::string(queue_impl_name(info.param));
    });

}  // namespace
}  // namespace ethergrid::sim
