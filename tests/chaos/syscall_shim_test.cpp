// Chaos at the syscall boundary: the shim lets these tests reach error
// paths in PosixExecutor that no well-behaved kernel produces on demand --
// descriptor exhaustion at pipe(2), fork(2) refusal, and EINTR storms on
// the supervision loop's reads and writes.  Real processes, real pipes.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <string>

#include "posix/posix_executor.hpp"
#include "posix/syscall_shim.hpp"
#include "shell/executor.hpp"

namespace ethergrid::posix {
namespace {

// Hook state must live in plain globals: the table holds C function
// pointers, so the doubles cannot capture.
std::atomic<int> g_fail_budget{0};    // fail this many calls, then delegate
std::atomic<int> g_eintr_budget{0};   // interrupt this many calls first
std::atomic<long> g_eintr_served{0};  // how many EINTRs were delivered

int failing_pipe2(int fds[2], int flags) {
  if (g_fail_budget.fetch_sub(1) > 0) {
    errno = EMFILE;
    return -1;
  }
  return ::pipe2(fds, flags);
}

pid_t failing_fork() {
  if (g_fail_budget.fetch_sub(1) > 0) {
    errno = EAGAIN;
    return -1;
  }
  return ::fork();
}

ssize_t eintr_then_real_read(int fd, void* buf, size_t count) {
  if (g_eintr_budget.fetch_sub(1) > 0) {
    g_eintr_served.fetch_add(1);
    errno = EINTR;
    return -1;
  }
  return ::read(fd, buf, count);
}

ssize_t eintr_then_real_write(int fd, const void* buf, size_t count) {
  if (g_eintr_budget.fetch_sub(1) > 0) {
    g_eintr_served.fetch_add(1);
    errno = EINTR;
    return -1;
  }
  return ::write(fd, buf, count);
}

pid_t eintr_then_real_waitpid(pid_t pid, int* status, int options) {
  if (g_eintr_budget.fetch_sub(1) > 0) {
    g_eintr_served.fetch_add(1);
    errno = EINTR;
    return -1;
  }
  return ::waitpid(pid, status, options);
}

shell::CommandInvocation echo_invocation() {
  shell::CommandInvocation inv;
  inv.argv = {"/bin/sh", "-c", "cat"};
  inv.stdin_data = "payload through a storm of interrupts\n";
  inv.capture_stdout = true;
  return inv;
}

class SyscallShimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_fail_budget = 0;
    g_eintr_budget = 0;
    g_eintr_served = 0;
    reset_syscall_hooks();
  }
  void TearDown() override { reset_syscall_hooks(); }
};

TEST_F(SyscallShimTest, WrappersRetryEintr) {
  SyscallHooks hooks = syscall_hooks();
  hooks.read = &eintr_then_real_read;
  hooks.write = &eintr_then_real_write;
  hooks.waitpid = &eintr_then_real_waitpid;
  ScopedSyscallHooks scoped(hooks);
  g_eintr_budget = 64;  // every wrapped call eats a few interrupts first

  PosixExecutor executor;
  shell::CommandResult result = executor.run(echo_invocation());
  EXPECT_TRUE(result.status.ok()) << result.status.message();
  EXPECT_EQ(result.out, "payload through a storm of interrupts\n");
  // The storm actually hit the wrappers -- this test exercised the retry
  // loops, not a quiet path.
  EXPECT_GT(g_eintr_served.load(), 0);
}

TEST_F(SyscallShimTest, PipeExhaustionFailsCleanly) {
  SyscallHooks hooks = syscall_hooks();
  hooks.pipe2 = &failing_pipe2;
  ScopedSyscallHooks scoped(hooks);
  g_fail_budget = 1000;  // every pipe2 in this run fails

  PosixExecutor executor;
  shell::CommandResult result = executor.run(echo_invocation());
  EXPECT_TRUE(result.status.failed());
  EXPECT_EQ(result.status.code(), StatusCode::kIoError);
  EXPECT_NE(result.status.message().find("pipe"), std::string::npos);

  // With the budget spent, the same executor works again: the failure
  // leaked nothing.
  g_fail_budget = 0;
  result = executor.run(echo_invocation());
  EXPECT_TRUE(result.status.ok()) << result.status.message();
}

TEST_F(SyscallShimTest, ForkRefusalFailsCleanly) {
  SyscallHooks hooks = syscall_hooks();
  hooks.fork = &failing_fork;
  ScopedSyscallHooks scoped(hooks);
  g_fail_budget = 1000;

  PosixExecutor executor;
  shell::CommandResult result = executor.run(echo_invocation());
  EXPECT_TRUE(result.status.failed());
  EXPECT_EQ(result.status.code(), StatusCode::kIoError);
  EXPECT_NE(result.status.message().find("fork"), std::string::npos);

  g_fail_budget = 0;
  result = executor.run(echo_invocation());
  EXPECT_TRUE(result.status.ok()) << result.status.message();
}

TEST_F(SyscallShimTest, TransientPipeFailureOnlyCostsThatCommand) {
  SyscallHooks hooks = syscall_hooks();
  hooks.pipe2 = &failing_pipe2;
  ScopedSyscallHooks scoped(hooks);
  g_fail_budget = 1;  // exactly one pipe2 fails, the rest succeed

  PosixExecutor executor;
  shell::CommandResult first = executor.run(echo_invocation());
  EXPECT_TRUE(first.status.failed());
  shell::CommandResult second = executor.run(echo_invocation());
  EXPECT_TRUE(second.status.ok()) << second.status.message();
  EXPECT_EQ(second.out, "payload through a storm of interrupts\n");
}

}  // namespace
}  // namespace ethergrid::posix
