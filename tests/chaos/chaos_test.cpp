// The chaos matrix: Fixed/Aloha/Ethernet disciplines run under adversarial
// fault plans, asserting the two properties the harness exists to check:
//
//  (a) determinism -- the same seed + plan replays byte-identical fault
//      audits and identical outcome counters, twice in a row;
//  (b) the paper's ordering survives injected chaos -- under contention
//      faults the Ethernet discipline completes no less work than Fixed
//      while wasting strictly fewer consumptions (failed 60-second data
//      tries, i.e. collisions).
//
// The seed comes from ETHERGRID_CHAOS_SEED when set (the CI chaos job runs
// a small matrix of them), defaulting to 42.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <string_view>

#include "exp/scenarios.hpp"

namespace ethergrid {
namespace {

std::uint64_t chaos_seed() {
  const char* env = std::getenv("ETHERGRID_CHAOS_SEED");
  if (env && *env) return std::strtoull(env, nullptr, 10);
  return 42;
}

sim::FaultPlan parse_plan(const std::string& spec) {
  sim::FaultPlan plan;
  Status s = sim::FaultPlan::parse(spec, &plan);
  EXPECT_TRUE(s.ok()) << spec << ": " << s.message();
  return plan;
}

// Two *distinct* contention plans for the reader scenario (which already
// contains the paper's permanent black hole, server zzz):
//  A: mid-transfer resets on every server's data path -- wasted transfer
//     time on top of the black hole;
//  B: a long windowed partition turns healthy server yyy into a second
//     black hole, plus latency spikes on all data fetches.
const char kPlanResets[] = "fileserver.*.fetch:reset@0.25";
const char kPlanPartitionStall[] =
    "fileserver.yyy.*:drop@100-500;fileserver.*.fetch:stall@0.3,5";

exp::ReaderTimeline run_readers(const std::string& plan_spec,
                                std::string_view discipline) {
  exp::ReaderScenarioConfig config;
  config.seed = chaos_seed();
  config.servers = exp::ReaderScenarioConfig::paper_farm();
  config.faults = parse_plan(plan_spec);
  return exp::run_reader_timeline(config, discipline, sec(900), sec(30));
}

class ChaosReaderTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ChaosReaderTest, DeterministicReplayAcrossAllDisciplines) {
  const std::string plan = GetParam();
  for (const char* discipline : {"fixed", "aloha", "ethernet"}) {
    const auto first = run_readers(plan, discipline);
    const auto second = run_readers(plan, discipline);
    ASSERT_GT(first.faults_injected, 0)
        << "plan fired nothing: " << plan;
    // Byte-identical fault audit: same faults, same order, same instants.
    EXPECT_EQ(first.fault_audit, second.fault_audit)
        << discipline << " under " << plan;
    EXPECT_EQ(first.faults_injected, second.faults_injected);
    EXPECT_EQ(first.transfers_total, second.transfers_total);
    EXPECT_EQ(first.collisions_total, second.collisions_total);
    EXPECT_EQ(first.deferrals_total, second.deferrals_total);
  }
}

TEST_P(ChaosReaderTest, EthernetBeatsFixedUnderContentionFaults) {
  const std::string plan = GetParam();
  const auto fixed = run_readers(plan, "fixed");
  const auto ethernet = run_readers(plan, "ethernet");
  const auto aloha = run_readers(plan, "aloha");

  // Every discipline keeps making progress under the plan.
  EXPECT_GT(fixed.transfers_total, 0) << plan;
  EXPECT_GT(aloha.transfers_total, 0) << plan;
  EXPECT_GT(ethernet.transfers_total, 0) << plan;

  // (b): no-worse throughput, strictly fewer wasted consumptions.
  EXPECT_GE(ethernet.transfers_total, fixed.transfers_total) << plan;
  EXPECT_LT(ethernet.collisions_total, fixed.collisions_total) << plan;
  // Carrier sense is doing the avoiding: the deferrals exist.
  EXPECT_GT(ethernet.deferrals_total, 0) << plan;
}

INSTANTIATE_TEST_SUITE_P(Plans, ChaosReaderTest,
                         ::testing::Values(kPlanResets, kPlanPartitionStall));

// The buffer scenario exercises the iochannel + fsbuffer sites: metadata
// failures and channel faults, replayed deterministically.
TEST(ChaosBufferTest, BufferWorldReplaysDeterministically) {
  auto run = [](std::string_view discipline) {
    exp::BufferScenarioConfig config;
    config.seed = chaos_seed();
    config.faults = parse_plan(
        "iochannel.write:fail@0.08;fsbuffer.append:fail@0.02");
    return exp::run_buffer_point(config, discipline, 8, sec(300));
  };
  for (const char* discipline : {"fixed", "ethernet"}) {
    const auto first = run(discipline);
    const auto second = run(discipline);
    ASSERT_GT(first.faults_injected, 0);
    EXPECT_EQ(first.fault_audit, second.fault_audit);
    EXPECT_EQ(first.files_consumed, second.files_consumed);
    EXPECT_EQ(first.collisions, second.collisions);
    EXPECT_EQ(first.tries_failed, second.tries_failed);
    EXPECT_GT(first.files_consumed, 0);  // faults degrade, never wedge
  }
}

// The schedd site: a scheduled crash fires exactly once, lands in the
// audit, and the submission world replays identically around it.
TEST(ChaosScheddTest, InjectedCrashReplaysDeterministically) {
  auto run = [] {
    exp::SubmitScenarioConfig config;
    config.seed = chaos_seed();
    config.faults = parse_plan("schedd.submit:crash@60");
    return exp::run_submit_scale_point(config, "ethernet", 40, minutes(5));
  };
  const auto first = run();
  const auto second = run();
  EXPECT_GE(first.schedd_crashes, 1);  // the injected crash landed
  EXPECT_EQ(first.fault_audit, second.fault_audit);
  EXPECT_EQ(first.jobs_submitted, second.jobs_submitted);
  EXPECT_EQ(first.schedd_crashes, second.schedd_crashes);
  EXPECT_GT(first.jobs_submitted, 0);  // the world recovers and continues
}

}  // namespace
}  // namespace ethergrid
