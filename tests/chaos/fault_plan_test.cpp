// Units for the fault-plan grammar, the site glob, and the injector's
// determinism contract -- the foundations the scenario chaos matrix rests
// on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fault.hpp"
#include "sim/fault_plan.hpp"
#include "util/rng.hpp"

namespace ethergrid {
namespace {

using sim::FaultPlan;
using sim::FaultSpec;
using sim::site_matches;

TEST(SiteMatchTest, Globs) {
  EXPECT_TRUE(site_matches("schedd.submit", "schedd.submit"));
  EXPECT_FALSE(site_matches("schedd.submit", "schedd.submits"));
  EXPECT_TRUE(site_matches("fileserver.*.fetch", "fileserver.xxx.fetch"));
  EXPECT_FALSE(site_matches("fileserver.*.fetch", "fileserver.xxx.flag"));
  EXPECT_TRUE(site_matches("fileserver.yyy.*", "fileserver.yyy.flag"));
  EXPECT_TRUE(site_matches("*", "anything.at.all"));
  EXPECT_TRUE(site_matches("a*c*e", "abcde"));
  EXPECT_FALSE(site_matches("a*c*e", "abcdf"));
  EXPECT_TRUE(site_matches("iochannel.write", "iochannel.write"));
  EXPECT_FALSE(site_matches("", "x"));
  EXPECT_TRUE(site_matches("*", ""));
}

TEST(FaultPlanParseTest, FullGrammarRoundTrips) {
  FaultPlan plan;
  const std::string spec =
      "fileserver.*.fetch:reset@0.3,0.1-0.9;"
      "schedd.submit:stall@0.25,5;"
      "iochannel.write:fail@0.1;"
      "schedd.submit:crash@120;"
      "fileserver.yyy.*:drop@100-400";
  ASSERT_TRUE(FaultPlan::parse(spec, &plan).ok());
  ASSERT_EQ(plan.rules().size(), 5u);

  EXPECT_EQ(plan.rules()[0].spec.kind, FaultSpec::Kind::kReset);
  EXPECT_DOUBLE_EQ(plan.rules()[0].spec.probability, 0.3);
  EXPECT_DOUBLE_EQ(plan.rules()[0].spec.fraction_min, 0.1);
  EXPECT_DOUBLE_EQ(plan.rules()[0].spec.fraction_max, 0.9);

  EXPECT_EQ(plan.rules()[1].spec.kind, FaultSpec::Kind::kStall);
  EXPECT_EQ(plan.rules()[1].spec.stall, sec(5));

  EXPECT_EQ(plan.rules()[2].spec.kind, FaultSpec::Kind::kError);
  EXPECT_EQ(plan.rules()[3].spec.kind, FaultSpec::Kind::kCrash);
  EXPECT_EQ(plan.rules()[3].spec.at, kEpoch + sec(120));
  EXPECT_EQ(plan.rules()[4].spec.kind, FaultSpec::Kind::kPartition);
  EXPECT_EQ(plan.rules()[4].spec.window_start, kEpoch + sec(100));
  EXPECT_EQ(plan.rules()[4].spec.window_end, kEpoch + sec(400));

  // describe() renders a form parse() accepts again, rule for rule.
  FaultPlan reparsed;
  std::string rendered = plan.describe();
  for (char& c : rendered) {
    if (c == '\n') c = ';';
  }
  ASSERT_TRUE(FaultPlan::parse(rendered, &reparsed).ok());
  EXPECT_EQ(reparsed.describe(), plan.describe());
}

TEST(FaultPlanParseTest, RejectsMalformedRules) {
  FaultPlan untouched;
  untouched.add("x", FaultPlan::error(1.0));
  for (const char* bad : {
           "norule",                      // no colon
           ":fail@0.5",                   // empty site
           "site:fail",                   // no args
           "site:fail@",                  // empty probability
           "site:fail@abc",               // non-numeric
           "site:crash@12s",              // trailing junk on number
           "site:stall@0.5",              // stall missing duration
           "site:drop@40",                // drop needs a range
           "site:drop@400-100",           // inverted range
           "site:reset@0.5,0.9-0.1",      // inverted fraction range
           "site:explode@1",              // unknown kind
       }) {
    FaultPlan plan = untouched;
    Status s = FaultPlan::parse(bad, &plan);
    EXPECT_TRUE(s.failed()) << bad;
    // A failed parse leaves *out untouched.
    EXPECT_EQ(plan.describe(), untouched.describe()) << bad;
  }
}

TEST(FaultInjectorTest, EmptyInjectorNeverFires) {
  core::FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  const auto d = injector.decide("anything", kEpoch);
  EXPECT_EQ(d.action, core::FaultDecision::Action::kNone);
  EXPECT_EQ(injector.fired_total(), 0);
}

TEST(FaultInjectorTest, SameSeedSamePlanReplaysIdentically) {
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::parse(
                  "a.fetch:reset@0.4;b.write:fail@0.3;c.submit:stall@0.5,2",
                  &plan)
                  .ok());
  auto run = [&plan](std::uint64_t seed) {
    core::FaultInjector injector(plan, Rng(seed));
    std::string log;
    // Interleave sites to prove per-site streams are order-independent.
    for (int i = 0; i < 200; ++i) {
      const char* site = i % 3 == 0 ? "a.fetch" : i % 3 == 1 ? "b.write"
                                                             : "c.submit";
      auto d = injector.decide(site, kEpoch + sec(i));
      log += char('0' + int(d.action));
    }
    return log + "|" + injector.audit_text();
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FaultInjectorTest, SiteStreamsAreIndependent) {
  // Consulting extra, unrelated sites must not perturb a site's own
  // decision sequence -- the property that lets a plan grow new rules
  // without reshuffling existing runs.
  FaultPlan plan;
  plan.add("a.*", FaultPlan::error(0.5));
  plan.add("b.*", FaultPlan::error(0.5));

  auto run_a = [&plan](bool also_consult_b) {
    core::FaultInjector injector(plan, Rng(7));
    std::string log;
    for (int i = 0; i < 100; ++i) {
      if (also_consult_b) (void)injector.decide("b.noise", kEpoch + sec(i));
      auto d = injector.decide("a.data", kEpoch + sec(i));
      log += d.action == core::FaultDecision::Action::kFail ? 'F' : '.';
    }
    return log;
  };
  EXPECT_EQ(run_a(false), run_a(true));
}

TEST(FaultInjectorTest, CrashFiresExactlyOnce) {
  FaultPlan plan;
  plan.add("daemon", FaultPlan::crash_at(kEpoch + sec(10)));
  core::FaultInjector injector(plan, Rng(1));
  EXPECT_EQ(injector.decide("daemon", kEpoch + sec(5)).action,
            core::FaultDecision::Action::kNone);
  EXPECT_EQ(injector.decide("daemon", kEpoch + sec(11)).action,
            core::FaultDecision::Action::kCrash);
  EXPECT_EQ(injector.decide("daemon", kEpoch + sec(12)).action,
            core::FaultDecision::Action::kNone);
  EXPECT_EQ(injector.fired_at("daemon"), 1);
}

TEST(FaultInjectorTest, PartitionCoversItsWindowOnly) {
  FaultPlan plan;
  plan.add("server.*", FaultPlan::partition(kEpoch + sec(100),
                                            kEpoch + sec(200)));
  core::FaultInjector injector(plan, Rng(1));
  EXPECT_EQ(injector.decide("server.x", kEpoch + sec(99)).action,
            core::FaultDecision::Action::kNone);
  EXPECT_EQ(injector.decide("server.x", kEpoch + sec(100)).action,
            core::FaultDecision::Action::kPartition);
  EXPECT_EQ(injector.decide("server.x", kEpoch + sec(199)).action,
            core::FaultDecision::Action::kPartition);
  EXPECT_EQ(injector.decide("server.x", kEpoch + sec(200)).action,
            core::FaultDecision::Action::kNone);
}

TEST(FaultInjectorTest, ObserverSeesEveryFiredFault) {
  FaultPlan plan;
  plan.add("s", FaultPlan::error(1.0));
  core::FaultInjector injector(plan, Rng(3));
  std::vector<core::FaultEvent> seen;
  injector.set_observer([&seen](const core::FaultEvent& e) {
    seen.push_back(e);
  });
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(injector.decide("s", kEpoch + sec(i)).action,
              core::FaultDecision::Action::kFail);
  }
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.front().site, "s");
  EXPECT_EQ(seen.front().kind, "fail");
  EXPECT_EQ(injector.fired_total(), 5);
}

}  // namespace
}  // namespace ethergrid
