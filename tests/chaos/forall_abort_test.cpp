// Sibling-abort under stalls: when one forall branch fails, a branch stuck
// in a stalled external command (or a pure compute loop) must die promptly
// -- the cancellation promise the paper's recovery model depends on.  Real
// processes and wall-clock bounds: a regression here shows up as a 30 s
// hang, caught by the assertions long before the test timeout.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "posix/posix_executor.hpp"
#include "shell/executor.hpp"

namespace ethergrid::posix {
namespace {

using WallClock = std::chrono::steady_clock;

double elapsed_seconds(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

shell::CommandInvocation command(std::vector<std::string> argv) {
  shell::CommandInvocation inv;
  inv.argv = std::move(argv);
  return inv;
}

TEST(ForallAbortTest, StalledCommandBranchIsKilledWhenSiblingFails) {
  PosixExecutor executor;
  const auto start = WallClock::now();

  std::vector<std::function<Status()>> branches;
  // The stalled branch: an external process that would run for 30 s.
  branches.push_back([&executor] {
    return executor.run(command({"/bin/sh", "-c", "sleep 30"})).status;
  });
  // The failing sibling: quick, decisive.
  branches.push_back([&executor] {
    executor.run(command({"/bin/sh", "-c", "sleep 0.2"}));
    return Status::failure("sibling failed");
  });

  std::vector<Status> statuses = executor.run_parallel(std::move(branches));

  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].failed());  // killed, not completed
  EXPECT_TRUE(statuses[1].failed());
  // Promptness is the contract: the stalled process was signalled as soon
  // as the sibling failed, not after its own 30 s ran out.
  EXPECT_LT(elapsed_seconds(start), 10.0);
}

TEST(ForallAbortTest, ComputeBranchObservesAbortRequested) {
  // A branch that never blocks in run() must still see the abort through
  // Executor::abort_requested -- the hook the interpreter polls between
  // statements.
  PosixExecutor executor;
  const auto start = WallClock::now();
  bool observed_abort = false;

  std::vector<std::function<Status()>> branches;
  branches.push_back([&executor, &observed_abort, start] {
    while (!executor.abort_requested()) {
      if (elapsed_seconds(start) > 20.0) {
        return Status::failure("abort never observed");
      }
      executor.sleep(msec(5));  // group-aware sleep: wakes on abort
    }
    observed_abort = true;
    return Status::killed("saw sibling abort");
  });
  branches.push_back([&executor] {
    executor.sleep(msec(100));
    return Status::failure("sibling failed");
  });

  std::vector<Status> statuses = executor.run_parallel(std::move(branches));

  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(observed_abort);
  EXPECT_LT(elapsed_seconds(start), 10.0);
}

TEST(ForallAbortTest, NoFailureMeansNoAbort) {
  PosixExecutor executor;
  std::vector<std::function<Status()>> branches;
  for (int i = 0; i < 3; ++i) {
    branches.push_back([&executor] {
      if (executor.abort_requested()) {
        return Status::failure("spurious abort");
      }
      return executor.run(command({"/bin/sh", "-c", "true"})).status;
    });
  }
  for (const Status& s : executor.run_parallel(std::move(branches))) {
    EXPECT_TRUE(s.ok()) << s.message();
  }
}

}  // namespace
}  // namespace ethergrid::posix
