// Kernel-level chaos: kill storms, self-kills, and spawns racing shutdown.
//
// The scenario chaos matrix (chaos_test.cpp) stresses the grid layers;
// this file aims the same adversarial style at the kernel's lifecycle
// edges, which the stale-wakeup accounting fix made contractual:
//
//  - killing the *currently running* process invalidates its wake token
//    like any other kill (it unwinds at its next wait primitive, and any
//    entry it scheduled before the kill is accounted stale, not live);
//  - spawns issued while the kernel is shutting down are born killed and
//    leave no live queue entries behind;
//  - a randomized kill storm replays identically for a fixed seed across
//    both queue implementations.
//
// Debug builds audit the exact stale/live counts after every queue
// operation, so any accounting drift these sequences provoke aborts the
// test rather than silently wrapping a counter.  Release builds get the
// same check through Kernel::verify_queue_accounting() -- the one code
// path shared with the model checker's queue-accounting invariant.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/kernel.hpp"

namespace ethergrid::sim {
namespace {

class KernelChaosTest : public ::testing::TestWithParam<QueueImpl> {
 protected:
  KernelOptions options() const {
    KernelOptions o;
    o.queue = GetParam();
    return o;
  }
};

// A storm of workers that sleep, pulse, self-kill, and murder each other
// on a deterministic schedule.  The trace of every observable step must be
// identical run-to-run and across queue implementations.
std::vector<std::string> run_kill_storm(QueueImpl queue, std::uint64_t seed) {
  KernelOptions options;
  options.queue = queue;
  Kernel kernel(seed, options);
  std::vector<std::string> trace;
  std::vector<ProcessHandle> workers;
  Event churn(kernel);
  for (int i = 0; i < 8; ++i) {
    workers.push_back(
        kernel.spawn("w" + std::to_string(i), [&, i](Context& ctx) {
          try {
            for (int step = 0;; ++step) {
              std::ostringstream line;
              line << "w" << i << "@" << ctx.now().time_since_epoch().count()
                   << "#" << step;
              trace.push_back(line.str());
              switch (ctx.rng().next_u64() % 5) {
                case 0:
                  ctx.sleep(usec(std::int64_t(ctx.rng().next_u64() % 3000)));
                  break;
                case 1:
                  // Long sleep: if a killer hits us here the +10min entry
                  // must die with us (stale), not outlive the process.
                  ctx.sleep(minutes(10));
                  break;
                case 2:
                  churn.pulse();
                  ctx.sleep(usec(1));
                  break;
                case 3:
                  if (!workers.empty() && step > 4) {
                    // Murder a deterministic victim -- possibly ourselves:
                    // kill-of-current must behave like any other kill.
                    Process& victim =
                        *workers[ctx.rng().next_u64() % workers.size()];
                    ctx.kill(victim, "storm");
                  }
                  ctx.yield();
                  break;
                default:
                  (void)ctx.wait_for(
                      churn, usec(std::int64_t(ctx.rng().next_u64() % 2000)));
                  break;
              }
            }
          } catch (const Interrupted&) {
            std::ostringstream line;
            line << "w" << i << " killed@"
                 << ctx.now().time_since_epoch().count();
            trace.push_back(line.str());
            throw;
          }
        }));
  }
  // A storm where every worker can die leaves survivors blocked forever on
  // the churn event; bound the run and then tear everything down.
  kernel.run_until(TimePoint(sec(30)));
  // The same accounting check the model checker runs after every
  // transition; here it audits the storm's end state even in release
  // builds, where the per-operation debug audit is compiled out.
  EXPECT_TRUE(kernel.verify_queue_accounting().ok())
      << kernel.verify_queue_accounting().message();
  kernel.shutdown();
  EXPECT_EQ(kernel.live_process_count(), 0u);
  EXPECT_EQ(kernel.queue_depth(), 0u);
  EXPECT_TRUE(kernel.verify_queue_accounting().ok())
      << kernel.verify_queue_accounting().message();
  return trace;
}

TEST_P(KernelChaosTest, KillStormReplaysIdentically) {
  const auto first = run_kill_storm(GetParam(), 42);
  const auto second = run_kill_storm(GetParam(), 42);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i], second[i]) << "diverges at step " << i;
  }
  // At least one kill must actually have landed for the pin to mean much.
  bool saw_kill = false;
  for (const std::string& line : first) {
    if (line.find("killed@") != std::string::npos) saw_kill = true;
  }
  EXPECT_TRUE(saw_kill);
}

TEST(KernelChaos, KillStormIdenticalAcrossQueueImpls) {
  const auto wheel = run_kill_storm(QueueImpl::kWheel, 7);
  const auto heap = run_kill_storm(QueueImpl::kHeap, 7);
  ASSERT_EQ(wheel.size(), heap.size());
  for (std::size_t i = 0; i < wheel.size(); ++i) {
    ASSERT_EQ(wheel[i], heap[i]) << "diverges at step " << i;
  }
}

// Spawns issued while the kernel is shutting down: the unwinding bodies
// below respawn replacements from their Interrupted handlers.  Those
// children must be born killed, unwind without running their bodies, and
// leave the queue truly empty -- no live-counted entries for processes
// that never ran.
TEST_P(KernelChaosTest, SpawnDuringShutdownIsBornKilledAndLeakFree) {
  Kernel kernel(1, options());
  int respawned = 0;
  int respawn_bodies_ran = 0;
  std::function<void(Context&)> body = [&](Context& ctx) {
    try {
      ctx.sleep(hours(24));
    } catch (const Interrupted&) {
      // Unwinding under shutdown: this spawn must be inert.
      ++respawned;
      ctx.spawn("phoenix", [&](Context&) { ++respawn_bodies_ran; });
      throw;
    }
  };
  for (int i = 0; i < 16; ++i) {
    kernel.spawn("doomed" + std::to_string(i), body);
  }
  kernel.run_until(TimePoint(sec(1)));
  EXPECT_EQ(kernel.live_process_count(), 16u);
  EXPECT_TRUE(kernel.verify_queue_accounting().ok())
      << kernel.verify_queue_accounting().message();
  kernel.shutdown();
  EXPECT_EQ(respawned, 16);
  EXPECT_EQ(respawn_bodies_ran, 0);
  EXPECT_EQ(kernel.live_process_count(), 0u);
  EXPECT_EQ(kernel.queue_depth(), 0u);
  // And a spawn after shutdown completes is equally inert.
  auto late = kernel.spawn("late", [&](Context&) { ++respawn_bodies_ran; });
  kernel.run();
  EXPECT_EQ(respawn_bodies_ran, 0);
  EXPECT_TRUE(late->finished());
  EXPECT_EQ(kernel.queue_depth(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllQueues, KernelChaosTest,
    ::testing::Values(QueueImpl::kWheel, QueueImpl::kHeap),
    [](const ::testing::TestParamInfo<QueueImpl>& info) {
      return std::string(queue_impl_name(info.param));
    });

}  // namespace
}  // namespace ethergrid::sim
