#include "grid/io_channel.hpp"

#include <gtest/gtest.h>

namespace ethergrid::grid {
namespace {

IoChannelConfig test_config() {
  IoChannelConfig c;
  c.bytes_per_second = 1 << 20;  // 1 MB/s
  c.per_op_overhead = msec(10);
  return c;
}

TEST(IoChannelTest, MetadataOpCostsOverheadOnly) {
  sim::Kernel k;
  IoChannel ch(k, test_config());
  k.spawn("p", [&](sim::Context& ctx) {
    ch.transfer(ctx, 0);
    EXPECT_EQ(ctx.now(), kEpoch + msec(10));
  });
  k.run();
  EXPECT_EQ(ch.ops(), 1);
  EXPECT_EQ(ch.bytes_moved(), 0);
}

TEST(IoChannelTest, PayloadAddsBandwidthTime) {
  sim::Kernel k;
  IoChannel ch(k, test_config());
  k.spawn("p", [&](sim::Context& ctx) {
    ch.transfer(ctx, 512 << 10);  // 0.5 MB at 1 MB/s = 500 ms
    EXPECT_EQ(ctx.now(), kEpoch + msec(510));
  });
  k.run();
  EXPECT_EQ(ch.bytes_moved(), 512 << 10);
  EXPECT_EQ(ch.busy_time(), msec(510));
}

TEST(IoChannelTest, FifoSharingSerializesClients) {
  sim::Kernel k;
  IoChannel ch(k, test_config());
  std::vector<TimePoint> done;
  for (int i = 0; i < 3; ++i) {
    k.spawn("c" + std::to_string(i), [&](sim::Context& ctx) {
      ch.transfer(ctx, 1 << 20);  // ~1.01 s each
      done.push_back(ctx.now());
    });
  }
  k.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], kEpoch + msec(1010));  // 1 MiB at 1 MiB/s + 10 ms
  EXPECT_EQ(done[1], done[0] + msec(1010));
  EXPECT_EQ(done[2], done[1] + msec(1010));
}

TEST(IoChannelTest, FloodStarvesLatecomer) {
  // The mechanism of Figure 4: a client hammering small ops keeps a
  // big-transfer client waiting its FIFO turn every time.
  sim::Kernel k;
  IoChannel ch(k, test_config());
  std::int64_t flood_ops = 0;
  auto flooder = k.spawn("flooder", [&](sim::Context& ctx) {
    while (true) {
      ch.transfer(ctx, 0);
      ++flood_ops;
    }
  });
  TimePoint reader_done{};
  k.spawn("reader", [&](sim::Context& ctx) {
    for (int i = 0; i < 10; ++i) ch.transfer(ctx, 0);
    reader_done = ctx.now();
  });
  k.run_until(kEpoch + sec(10));
  k.shutdown();
  (void)flooder;
  // Perfect fairness would finish the reader's 10 ops in ~0.2 s of shared
  // time; FIFO interleaving with the flood makes it exactly alternate.
  EXPECT_GE(reader_done, kEpoch + msec(190));
  EXPECT_GT(flood_ops, 400);
}

TEST(IoChannelTest, DeadlineAbortsQueuedTransfer) {
  sim::Kernel k;
  IoChannel ch(k, test_config());
  k.spawn("hog", [&](sim::Context& ctx) {
    ch.transfer(ctx, 100 << 20);  // ~100 s
  });
  bool timed_out = false;
  k.spawn("impatient", [&](sim::Context& ctx) {
    ctx.sleep(msec(1));
    try {
      sim::DeadlineScope scope(ctx, kEpoch + sec(2));
      ch.transfer(ctx, 1);
    } catch (const sim::DeadlineExceeded&) {
      timed_out = true;
    }
  });
  k.run();
  EXPECT_TRUE(timed_out);
}

TEST(IoChannelTest, TelemetryAccumulates) {
  sim::Kernel k;
  IoChannel ch(k, test_config());
  k.spawn("p", [&](sim::Context& ctx) {
    ch.transfer(ctx, 100);
    ch.transfer(ctx, 200);
    ch.transfer(ctx, 0);
  });
  k.run();
  EXPECT_EQ(ch.ops(), 3);
  EXPECT_EQ(ch.bytes_moved(), 300);
}

}  // namespace
}  // namespace ethergrid::grid
