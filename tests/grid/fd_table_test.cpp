#include "grid/fd_table.hpp"

#include <gtest/gtest.h>

namespace ethergrid::grid {
namespace {

TEST(FdTableTest, StartsFull) {
  FdTable t(100);
  EXPECT_EQ(t.capacity(), 100);
  EXPECT_EQ(t.available(), 100);
  EXPECT_EQ(t.in_use(), 0);
}

TEST(FdTableTest, AllocateAndFree) {
  FdTable t(100);
  EXPECT_TRUE(t.try_allocate(30));
  EXPECT_EQ(t.available(), 70);
  EXPECT_EQ(t.in_use(), 30);
  t.free(30);
  EXPECT_EQ(t.available(), 100);
}

TEST(FdTableTest, AllocationFailsWhenInsufficient) {
  FdTable t(10);
  EXPECT_TRUE(t.try_allocate(10));
  EXPECT_FALSE(t.try_allocate(1));
  EXPECT_EQ(t.available(), 0);
  EXPECT_EQ(t.allocation_failures(), 1);
}

TEST(FdTableTest, FailedAllocationTakesNothing) {
  FdTable t(10);
  EXPECT_TRUE(t.try_allocate(8));
  EXPECT_FALSE(t.try_allocate(5));
  EXPECT_EQ(t.available(), 2);
  EXPECT_TRUE(t.try_allocate(2));
}

TEST(FdTableTest, LowWatermarkTracksMinimum) {
  FdTable t(100);
  EXPECT_EQ(t.low_watermark(), 100);
  (void)t.try_allocate(60);
  EXPECT_EQ(t.low_watermark(), 40);
  t.free(30);
  EXPECT_EQ(t.low_watermark(), 40);  // watermark is sticky
  (void)t.try_allocate(65);
  EXPECT_EQ(t.low_watermark(), 5);
}

TEST(FdTableTest, ResetRestoresCapacity) {
  FdTable t(50);
  (void)t.try_allocate(50);
  t.reset();
  EXPECT_EQ(t.available(), 50);
}

TEST(FdLeaseTest, HoldsAndReleases) {
  FdTable t(10);
  {
    FdLease lease(t, 4);
    EXPECT_TRUE(lease.held());
    EXPECT_EQ(lease.count(), 4);
    EXPECT_EQ(t.available(), 6);
  }
  EXPECT_EQ(t.available(), 10);
}

TEST(FdLeaseTest, FailedLeaseIsEmpty) {
  FdTable t(3);
  FdLease lease(t, 4);
  EXPECT_FALSE(lease.held());
  EXPECT_EQ(lease.count(), 0);
  EXPECT_EQ(t.available(), 3);
}

TEST(FdLeaseTest, MoveTransfersOwnership) {
  FdTable t(10);
  FdLease a(t, 5);
  FdLease b(std::move(a));
  EXPECT_FALSE(a.held());
  EXPECT_TRUE(b.held());
  EXPECT_EQ(t.available(), 5);
  FdLease c;
  c = std::move(b);
  EXPECT_TRUE(c.held());
  c.release();
  EXPECT_EQ(t.available(), 10);
}

TEST(FdLeaseTest, ExplicitReleaseIsIdempotent) {
  FdTable t(10);
  FdLease lease(t, 5);
  lease.release();
  lease.release();
  EXPECT_EQ(t.available(), 10);
}

TEST(FdLeaseTest, MoveAssignReleasesPrevious) {
  FdTable t(10);
  FdLease a(t, 3);
  FdLease b(t, 4);
  EXPECT_EQ(t.available(), 3);
  a = std::move(b);
  EXPECT_EQ(t.available(), 6);  // a's original 3 released
  EXPECT_EQ(a.count(), 4);
}

}  // namespace
}  // namespace ethergrid::grid
