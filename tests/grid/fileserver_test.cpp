#include "grid/fileserver.hpp"

#include <gtest/gtest.h>

#include "core/retry.hpp"
#include "core/sim_clock.hpp"
#include "grid/schedd.hpp"

namespace ethergrid::grid {
namespace {

FileServerConfig normal_server(const std::string& name) {
  FileServerConfig c;
  c.name = name;
  c.bytes_per_second = 10.0 * 1024 * 1024;
  c.request_overhead = msec(200);
  return c;
}

FileServerConfig black_hole(const std::string& name) {
  FileServerConfig c = normal_server(name);
  c.black_hole = true;
  return c;
}

TEST(FileServerTest, TransferTakesSizeOverBandwidth) {
  sim::Kernel k;
  FileServer s(k, normal_server("www"));
  TimePoint done{};
  k.spawn("client", [&](sim::Context& ctx) {
    Status st = s.fetch(ctx, 100 << 20);  // 100 MB at 10 MB/s
    EXPECT_TRUE(st.ok());
    done = ctx.now();
  });
  k.run();
  EXPECT_EQ(done, kEpoch + msec(200) + sec(10));
  EXPECT_EQ(s.transfers_completed(), 1);
  EXPECT_EQ(s.bytes_served(), 100 << 20);
}

TEST(FileServerTest, FlagFetchIsFast) {
  sim::Kernel k;
  FileServer s(k, normal_server("www"));
  TimePoint done{};
  k.spawn("client", [&](sim::Context& ctx) {
    EXPECT_TRUE(s.fetch_flag(ctx).ok());
    done = ctx.now();
  });
  k.run();
  EXPECT_LT(done, kEpoch + sec(1));
}

TEST(FileServerTest, SingleThreadedSerializesClients) {
  sim::Kernel k;
  FileServer s(k, normal_server("www"));
  std::vector<TimePoint> done;
  for (int i = 0; i < 3; ++i) {
    k.spawn("c" + std::to_string(i), [&](sim::Context& ctx) {
      ASSERT_TRUE(s.fetch(ctx, 10 << 20).ok());  // ~1.2 s each
      done.push_back(ctx.now());
    });
  }
  k.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], kEpoch + msec(1200));
  EXPECT_EQ(done[1], kEpoch + msec(2400));
  EXPECT_EQ(done[2], kEpoch + msec(3600));
}

TEST(FileServerTest, BlackHoleNeverCompletes) {
  sim::Kernel k;
  FileServer s(k, black_hole("hole"));
  bool returned = false;
  k.spawn("client", [&](sim::Context& ctx) {
    (void)s.fetch(ctx, 1 << 20);
    returned = true;
  });
  k.run_until(kEpoch + hours(10));
  k.shutdown();  // the swallowed client still references the server
  EXPECT_FALSE(returned);
  EXPECT_EQ(s.connections_accepted(), 1);  // it DID accept the connection
  EXPECT_EQ(s.transfers_completed(), 0);
}

TEST(FileServerTest, BlackHoleReleasedByClientDeadline) {
  sim::Kernel k;
  FileServer s(k, black_hole("hole"));
  bool timed_out = false;
  k.spawn("client", [&](sim::Context& ctx) {
    try {
      sim::DeadlineScope scope(ctx, kEpoch + sec(60));
      (void)s.fetch(ctx, 1 << 20);
    } catch (const sim::DeadlineExceeded&) {
      timed_out = true;
    }
  });
  k.run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(k.now(), kEpoch + sec(60));
}

TEST(FileServerTest, BlackHoleBlocksSubsequentClientsWhileHeld) {
  // Client A is stuck in the hole; client B queues behind it (single
  // threaded) until A's timeout disconnects and B takes the slot -- and is
  // swallowed in turn.
  sim::Kernel k;
  FileServer s(k, black_hole("hole"));
  TimePoint b_timed_out{};
  k.spawn("a", [&](sim::Context& ctx) {
    try {
      sim::DeadlineScope scope(ctx, kEpoch + sec(30));
      (void)s.fetch(ctx, 1);
    } catch (const sim::DeadlineExceeded&) {
    }
  });
  k.spawn("b", [&](sim::Context& ctx) {
    ctx.sleep(sec(1));
    try {
      sim::DeadlineScope scope(ctx, kEpoch + sec(90));
      (void)s.fetch(ctx, 1);
    } catch (const sim::DeadlineExceeded&) {
      b_timed_out = ctx.now();
    }
  });
  k.run();
  EXPECT_EQ(b_timed_out, kEpoch + sec(90));
  EXPECT_EQ(s.connections_accepted(), 2);
}

TEST(FileServerTest, TransientFailuresAbortPromptly) {
  sim::Kernel k(3);
  FileServerConfig c = normal_server("flaky");
  c.transient_failure_rate = 1.0;  // always resets
  FileServer s(k, c);
  Status result;
  TimePoint done{};
  k.spawn("client", [&](sim::Context& ctx) {
    result = s.fetch(ctx, 100 << 20);
    done = ctx.now();
  });
  k.run();
  EXPECT_EQ(result.code(), StatusCode::kIoError);
  // Prompt: the reset lands somewhere inside the 10 s transfer window, not
  // after a black-hole eternity.
  EXPECT_LT(done, kEpoch + sec(11));
  EXPECT_EQ(s.transfers_completed(), 0);
  EXPECT_EQ(s.transfers_aborted(), 1);
}

TEST(FileServerTest, TransientFailureRateRoughlyHonored) {
  sim::Kernel k(9);
  FileServerConfig c = normal_server("flaky");
  c.transient_failure_rate = 0.3;
  FileServer s(k, c);
  int failures = 0;
  k.spawn("client", [&](sim::Context& ctx) {
    for (int i = 0; i < 200; ++i) {
      if (s.fetch(ctx, 1 << 20).failed()) ++failures;
    }
  });
  k.run();
  EXPECT_GT(failures, 200 * 0.15);
  EXPECT_LT(failures, 200 * 0.45);
  EXPECT_EQ(s.transfers_completed() + s.transfers_aborted(), 200);
}

TEST(FileServerTest, FlagProbesAreImmuneToTransientFailures) {
  sim::Kernel k;
  FileServerConfig c = normal_server("flaky");
  c.transient_failure_rate = 1.0;
  FileServer s(k, c);
  k.spawn("client", [&](sim::Context& ctx) {
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(s.fetch_flag(ctx).ok());
  });
  k.run();
}

TEST(FileServerTest, InnerTryRecoversFromTransientFailures) {
  // The nesting of the paper's reader: `try for 60 seconds wget` retries a
  // reset transfer within its own budget.
  sim::Kernel k(4);
  FileServerConfig c = normal_server("flaky");
  c.transient_failure_rate = 0.5;
  c.bytes_per_second = 100.0 * 1024 * 1024;  // 1 s transfers
  FileServer s(k, c);
  int successes = 0;
  k.spawn("client", [&](sim::Context& ctx) {
    core::SimClock clock(ctx);
    Rng rng = ctx.rng();
    for (int i = 0; i < 20; ++i) {
      Status st = core::run_try(
          clock, rng, core::TryOptions::for_time(sec(60)),
          [&](TimePoint) { return s.fetch(ctx, 100 << 20); });
      if (st.ok()) ++successes;
    }
  });
  k.run();
  // Retrying recovers nearly everything; an unlucky streak of resets can
  // still exhaust one 60 s budget (1+2+4+8+16+32 s of backoff).
  EXPECT_GE(successes, 18);
  EXPECT_GT(s.transfers_aborted(), 0);
}

TEST(ScheddLatencyTest, HistogramRecordsSuccessfulSubmits) {
  sim::Kernel k;
  ScheddConfig config;
  config.fds_per_connection_jitter = 0;
  config.fds_per_transfer = 0;
  config.service_min = config.service_max = sec(1);
  config.slowdown_per_connection = 0;
  Schedd schedd(k, config);
  k.spawn("client", [&](sim::Context& ctx) {
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(schedd.submit(ctx).ok());
  });
  k.run();
  EXPECT_EQ(schedd.submit_latency().count(), 10);
  // Each submit: 0.1 s connect + 1 s service.
  EXPECT_EQ(schedd.submit_latency().min(), msec(1100));
  EXPECT_EQ(schedd.submit_latency().max(), msec(1100));
}

TEST(ServerFarmTest, ByNameAndSize) {
  sim::Kernel k;
  ServerFarm farm(k, {normal_server("xxx"), normal_server("yyy"),
                      black_hole("zzz")});
  EXPECT_EQ(farm.size(), 3u);
  ASSERT_NE(farm.by_name("yyy"), nullptr);
  EXPECT_EQ(farm.by_name("yyy")->name(), "yyy");
  EXPECT_EQ(farm.by_name("nope"), nullptr);
  EXPECT_TRUE(farm.by_name("zzz")->is_black_hole());
  EXPECT_FALSE(farm.by_name("xxx")->is_black_hole());
}

TEST(ServerFarmTest, PickCoversAllServers) {
  sim::Kernel k;
  ServerFarm farm(k, {normal_server("a"), normal_server("b"),
                      normal_server("c")});
  Rng rng(5);
  bool seen[3] = {false, false, false};
  for (int i = 0; i < 100; ++i) {
    std::size_t idx = farm.pick(rng);
    ASSERT_LT(idx, 3u);
    seen[idx] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

}  // namespace
}  // namespace ethergrid::grid
