// Scenario-client integration at small scale: a handful of clients against
// each substrate, verifying the qualitative behaviour each figure relies on.
//
// These tests deliberately keep using the deprecated DisciplineKind enum
// and `kind` config fields: they are the coverage for the one-release shim
// (clients.hpp) that resolves the enum through the string registry.  Every
// other call site has migrated to discipline names; delete the enum uses
// here together with the shim.
#include "grid/clients.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace ethergrid::grid {
namespace {

TEST(DisciplineKindTest, Names) {
  EXPECT_EQ(discipline_kind_name(DisciplineKind::kFixed), "fixed");
  EXPECT_EQ(discipline_kind_name(DisciplineKind::kAloha), "aloha");
  EXPECT_EQ(discipline_kind_name(DisciplineKind::kEthernet), "ethernet");
}

// ------------------------------------------------------------- submitters

ScheddConfig tiny_schedd() {
  ScheddConfig c;
  c.fd_capacity = 200;
  c.fds_per_connection = 10;
  c.fds_per_connection_jitter = 0;
  c.fds_per_transfer = 0;
  c.fds_per_service = 4;
  c.service_concurrency = 2;
  c.service_min = sec(1);
  c.service_max = sec(2);
  c.slowdown_per_connection = 0;
  return c;
}

TEST(SubmitterTest, SingleSubmitterSubmitsSteadily) {
  sim::Kernel k;
  Schedd schedd(k, tiny_schedd());
  SubmitterConfig config;
  config.kind = DisciplineKind::kAloha;
  SubmitterStats stats;
  k.spawn("submitter", make_submitter(schedd, config, &stats));
  k.run_until(kEpoch + minutes(5));
  k.shutdown();  // clients outlive the window; stop them before teardown
  // cycle ~ 0.5 startup + 0.1 connect + ~1.5 service: ~140 jobs in 5 min.
  EXPECT_GT(stats.jobs_succeeded, 100);
  EXPECT_EQ(stats.tries_failed, 0);
  EXPECT_EQ(schedd.jobs_submitted(), stats.jobs_succeeded);
}

TEST(SubmitterTest, EthernetDefersBelowThreshold) {
  sim::Kernel k;
  ScheddConfig sc = tiny_schedd();
  sc.service_min = sc.service_max = sec(30);  // pin connections
  Schedd schedd(k, sc);
  // Soak up descriptors so that free < threshold.
  ASSERT_TRUE(schedd.fd_table().try_allocate(150));  // 50 left
  SubmitterConfig config;
  config.kind = DisciplineKind::kEthernet;
  config.fd_threshold = 100;
  config.try_budget = sec(30);
  SubmitterStats stats;
  k.spawn("submitter", make_submitter(schedd, config, &stats));
  k.run_until(kEpoch + minutes(2));
  k.shutdown();
  EXPECT_EQ(stats.jobs_succeeded, 0);
  EXPECT_GT(stats.discipline.deferrals, 0);
  EXPECT_EQ(stats.discipline.collisions, 0);  // never touched the schedd
  EXPECT_EQ(schedd.open_connections(), 0);
}

TEST(SubmitterTest, FixedSubmitterRetriesWithoutBackoff) {
  sim::Kernel k;
  ScheddConfig sc = tiny_schedd();
  sc.fd_capacity = 10;  // nothing can connect (needs 10 + 4 for service)
  sc.fds_per_connection = 10;
  Schedd schedd(k, sc);
  SubmitterConfig fixed_config;
  fixed_config.kind = DisciplineKind::kFixed;
  fixed_config.try_budget = sec(60);
  SubmitterStats fixed_stats;
  SubmitterConfig aloha_config = fixed_config;
  aloha_config.kind = DisciplineKind::kAloha;
  SubmitterStats aloha_stats;
  {
    sim::Kernel k2;  // separate worlds so they do not share the schedd
    Schedd schedd2(k2, sc);
    k2.spawn("aloha", make_submitter(schedd2, aloha_config, &aloha_stats));
    k2.run_until(kEpoch + minutes(5));
    k2.shutdown();
  }
  k.spawn("fixed", make_submitter(schedd, fixed_config, &fixed_stats));
  k.run_until(kEpoch + minutes(5));
  k.shutdown();
  // The fixed client hammers: far more attempts than the backing-off Aloha.
  EXPECT_GT(fixed_stats.discipline.try_metrics.attempts,
            4 * aloha_stats.discipline.try_metrics.attempts);
  EXPECT_EQ(fixed_stats.jobs_succeeded, 0);
  EXPECT_EQ(aloha_stats.jobs_succeeded, 0);
}

// -------------------------------------------------------------- producers

TEST(ProducerConsumerTest, UncontendedProducerFlowsThrough) {
  sim::Kernel k;
  FsBuffer buffer(k, 120 << 20);
  IoChannel channel(k, IoChannelConfig{});
  ProducerConfig pc;
  pc.kind = DisciplineKind::kAloha;
  pc.compute_min = pc.compute_max = sec(10);  // gentle producer
  pc.name_prefix = "p0";
  ProducerStats ps;
  ConsumerConfig cc;
  ConsumerStats cs;
  k.spawn("producer", make_producer(buffer, channel, pc, &ps));
  k.spawn("consumer", make_consumer(buffer, channel, cc, &cs));
  k.run_until(kEpoch + minutes(10));
  k.shutdown();
  EXPECT_GT(ps.files_completed, 30);  // ~1 file per ~10.25 s
  EXPECT_GT(cs.files_consumed, 30);
  EXPECT_EQ(ps.discipline.collisions, 0);
  // Consumer keeps up: buffer nearly empty at any instant.
  EXPECT_LT(buffer.used_bytes(), 4 << 20);
}

TEST(ProducerConsumerTest, TinyBufferCausesCollisions) {
  sim::Kernel k;
  FsBuffer buffer(k, 256 << 10);  // 256 KB: most 0-1 MB files cannot fit
  IoChannel channel(k, IoChannelConfig{});
  ProducerConfig pc;
  pc.kind = DisciplineKind::kAloha;
  pc.name_prefix = "p0";
  pc.compute_min = pc.compute_max = sec(1);
  ProducerStats ps;
  ConsumerConfig cc;
  ConsumerStats cs;
  k.spawn("producer", make_producer(buffer, channel, pc, &ps));
  k.spawn("consumer", make_consumer(buffer, channel, cc, &cs));
  k.run_until(kEpoch + minutes(10));
  k.shutdown();
  EXPECT_GT(ps.discipline.collisions, 0);
  EXPECT_GT(ps.files_completed, 0);  // small files still make it
  // No leaked partials pinning the buffer forever: everything in the buffer
  // is either complete (awaiting consumption) or actively being written.
  EXPECT_LE(buffer.incomplete_count(), 1);
}

TEST(ProducerConsumerTest, EthernetProducerAvoidsCollisions) {
  auto run = [](DisciplineKind kind, std::int64_t* collisions,
                std::int64_t* consumed) {
    sim::Kernel k(17);
    FsBuffer buffer(k, 2 << 20);  // cramped 2 MB buffer
    IoChannel channel(k, IoChannelConfig{});
    ConsumerConfig cc;
    cc.read_bytes_per_second = 256 << 10;  // slow consumer
    ConsumerStats cs;
    std::vector<std::unique_ptr<ProducerStats>> stats;
    for (int i = 0; i < 4; ++i) {
      ProducerConfig pc;
      pc.kind = kind;
      pc.compute_min = sec(1);
      pc.compute_max = sec(3);
      pc.name_prefix = "p" + std::to_string(i);
      stats.push_back(std::make_unique<ProducerStats>());
      k.spawn("producer" + std::to_string(i),
              make_producer(buffer, channel, pc, stats.back().get()));
    }
    k.spawn("consumer", make_consumer(buffer, channel, cc, &cs));
    k.run_until(kEpoch + minutes(20));
    k.shutdown();
    *collisions = 0;
    for (const auto& s : stats) *collisions += s->discipline.collisions;
    *consumed = cs.files_consumed;
  };
  std::int64_t fixed_collisions = 0, fixed_consumed = 0;
  std::int64_t ether_collisions = 0, ether_consumed = 0;
  run(DisciplineKind::kFixed, &fixed_collisions, &fixed_consumed);
  run(DisciplineKind::kEthernet, &ether_collisions, &ether_consumed);
  EXPECT_GT(fixed_collisions, 10 * std::max<std::int64_t>(ether_collisions, 1))
      << "fixed=" << fixed_collisions << " ethernet=" << ether_collisions;
  EXPECT_GT(ether_consumed, 0);
}

// ---------------------------------------------------------------- readers

std::vector<FileServerConfig> paper_farm() {
  FileServerConfig a;
  a.name = "xxx";
  FileServerConfig b;
  b.name = "yyy";
  FileServerConfig hole;
  hole.name = "zzz";
  hole.black_hole = true;
  return {a, b, hole};
}

TEST(ReaderTest, AlohaReaderSuffersBlackHoleStalls) {
  sim::Kernel k(3);
  ServerFarm farm(k, paper_farm());
  ReaderConfig rc;
  rc.kind = DisciplineKind::kAloha;
  ReaderStats stats;
  k.spawn("reader", make_reader(farm, rc, &stats));
  k.run_until(kEpoch + sec(900));
  k.shutdown();
  EXPECT_GT(stats.transfers, 10);
  EXPECT_GT(stats.collisions, 0);  // it hit the hole and paid 60 s each time
  EXPECT_EQ(stats.deferrals, 0);   // aloha never probes
}

TEST(ReaderTest, EthernetReaderDefersInsteadOfStalling) {
  sim::Kernel k(3);
  ServerFarm farm(k, paper_farm());
  ReaderConfig rc;
  rc.kind = DisciplineKind::kEthernet;
  ReaderStats stats;
  k.spawn("reader", make_reader(farm, rc, &stats));
  k.run_until(kEpoch + sec(900));
  k.shutdown();
  EXPECT_GT(stats.transfers, 10);
  EXPECT_GT(stats.deferrals, 0);    // probes caught the hole
  EXPECT_EQ(stats.collisions, 0);   // and it never paid the 60 s price
}

TEST(ReaderTest, EthernetOutperformsAlohaUnderBlackHole) {
  auto run = [](DisciplineKind kind) {
    sim::Kernel k(9);
    ServerFarm farm(k, paper_farm());
    std::vector<std::unique_ptr<ReaderStats>> stats;
    for (int i = 0; i < 3; ++i) {
      ReaderConfig rc;
      rc.kind = kind;
      stats.push_back(std::make_unique<ReaderStats>());
      k.spawn("reader" + std::to_string(i),
              make_reader(farm, rc, stats.back().get()));
    }
    k.run_until(kEpoch + sec(900));
    k.shutdown();
    std::int64_t transfers = 0;
    for (const auto& s : stats) transfers += s->transfers;
    return transfers;
  };
  const std::int64_t aloha = run(DisciplineKind::kAloha);
  const std::int64_t ethernet = run(DisciplineKind::kEthernet);
  EXPECT_GT(ethernet, aloha) << "aloha=" << aloha << " ethernet=" << ethernet;
}

TEST(ReaderTest, AllBlackHolesMakesNoProgressButTerminates) {
  sim::Kernel k;
  FileServerConfig hole;
  hole.name = "h";
  hole.black_hole = true;
  ServerFarm farm(k, {hole, hole, hole});
  ReaderConfig rc;
  rc.kind = DisciplineKind::kEthernet;
  ReaderStats stats;
  k.spawn("reader", make_reader(farm, rc, &stats));
  k.run_until(kEpoch + sec(600));
  k.shutdown();
  EXPECT_EQ(stats.transfers, 0);
  EXPECT_GT(stats.deferrals, 3);  // kept probing, never hung
}

}  // namespace
}  // namespace ethergrid::grid
