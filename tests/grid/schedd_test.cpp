#include "grid/schedd.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ethergrid::grid {
namespace {

ScheddConfig small_config() {
  ScheddConfig c;
  c.fd_capacity = 100;
  c.fds_per_connection = 10;
  c.fds_per_connection_jitter = 0;
  c.fds_per_transfer = 0;
  c.fds_per_service = 5;
  c.service_concurrency = 2;
  c.service_min = sec(1);
  c.service_max = sec(1);
  c.slowdown_per_connection = 0.0;
  c.connect_time = msec(100);
  c.restart_delay = sec(10);
  return c;
}

TEST(ScheddTest, SingleSubmissionSucceeds) {
  sim::Kernel k;
  Schedd schedd(k, small_config());
  Status result;
  k.spawn("client", [&](sim::Context& ctx) { result = schedd.submit(ctx); });
  k.run();
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(schedd.jobs_submitted(), 1);
  // connect 0.1s + service 1s.
  EXPECT_EQ(k.now(), kEpoch + msec(1100));
  // All descriptors returned after completion.
  EXPECT_EQ(schedd.fd_table().available(), 100);
  EXPECT_EQ(schedd.open_connections(), 0);
}

TEST(ScheddTest, ServiceConcurrencyQueuesFifo) {
  sim::Kernel k;
  Schedd schedd(k, small_config());
  std::vector<TimePoint> done;
  for (int i = 0; i < 4; ++i) {
    k.spawn("c" + std::to_string(i), [&](sim::Context& ctx) {
      Status s = schedd.submit(ctx);
      ASSERT_TRUE(s.ok());
      done.push_back(ctx.now());
    });
  }
  k.run();
  ASSERT_EQ(done.size(), 4u);
  // Concurrency 2, 1 s service: first two at 1.1 s, next two at 2.1 s.
  EXPECT_EQ(done[0], kEpoch + msec(1100));
  EXPECT_EQ(done[1], kEpoch + msec(1100));
  EXPECT_EQ(done[2], kEpoch + msec(2100));
  EXPECT_EQ(done[3], kEpoch + msec(2100));
}

TEST(ScheddTest, ConnectionRefusedWhenFdsExhausted) {
  // capacity 100, 10 per connection: the 10th concurrent connection leaves
  // nothing for service; the 11th cannot even connect.
  sim::Kernel k;
  ScheddConfig config = small_config();
  config.service_concurrency = 1;
  config.service_min = config.service_max = sec(60);  // pin connections
  Schedd schedd(k, config);
  int refused = 0;
  int crashed_or_dropped = 0;
  for (int i = 0; i < 12; ++i) {
    k.spawn("c" + std::to_string(i), [&](sim::Context& ctx) {
      Status s = schedd.submit(ctx);
      if (s.code() == StatusCode::kResourceExhausted) ++refused;
      if (s.code() == StatusCode::kUnavailable) ++crashed_or_dropped;
    });
  }
  k.run_until(kEpoch + sec(5));
  k.shutdown();  // nine submissions still in flight reference the schedd
  EXPECT_GT(refused, 0);
}

TEST(ScheddTest, CrashesWhenServiceFdsUnavailable) {
  // Descriptor pressure (held here by an external hog, in production by the
  // mass of open submitter connections) leaves the schedd unable to
  // allocate its own service descriptors: it crashes and drops every
  // in-flight submission at once (the broadcast jam).
  sim::Kernel k;
  ScheddConfig config = small_config();  // conn 10, svc 5, slots 2
  config.fd_capacity = 40;
  config.service_min = config.service_max = sec(30);
  Schedd schedd(k, config);
  // 40 - 11(hog) - 10(c0 conn) - 5(c0 svc) - 10(c1 conn) = 4 < 5: c1's
  // service allocation fails and crashes the daemon while c0 is mid-service.
  ASSERT_TRUE(schedd.fd_table().try_allocate(11));
  Status c0_result, c1_result;
  k.spawn("c0", [&](sim::Context& ctx) { c0_result = schedd.submit(ctx); });
  k.spawn("c1", [&](sim::Context& ctx) { c1_result = schedd.submit(ctx); });
  k.run();
  EXPECT_EQ(schedd.crashes(), 1);
  EXPECT_EQ(c1_result.code(), StatusCode::kUnavailable);  // the trigger
  EXPECT_EQ(c0_result.code(), StatusCode::kUnavailable);  // the bystander
  EXPECT_LT(k.now(), kEpoch + sec(30));  // c0 did not serve out its 30 s
  EXPECT_EQ(schedd.jobs_submitted(), 0);
  EXPECT_EQ(schedd.fd_table().available(), 40 - 11);  // all leases released
}

TEST(ScheddTest, RefusesWhileRestarting) {
  sim::Kernel k;
  ScheddConfig config = small_config();
  config.fd_capacity = 40;
  config.service_min = config.service_max = sec(30);
  config.restart_delay = sec(10);
  Schedd schedd(k, config);
  ASSERT_TRUE(schedd.fd_table().try_allocate(11));  // as above: c1 crashes it
  k.spawn("c0", [&](sim::Context& ctx) { (void)schedd.submit(ctx); });
  k.spawn("c1", [&](sim::Context& ctx) { (void)schedd.submit(ctx); });
  Status during_restart, after_restart;
  k.spawn("late", [&](sim::Context& ctx) {
    ctx.sleep(sec(2));  // the crash happened at ~0.1 s
    during_restart = schedd.submit(ctx);
    ctx.sleep(sec(15));  // well past restart; hog's descriptors still gone
    schedd.fd_table().free(11);
    after_restart = schedd.submit(ctx);
  });
  k.run();
  EXPECT_EQ(schedd.crashes(), 1);
  EXPECT_EQ(during_restart.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(after_restart.ok()) << after_restart.to_string();
}

TEST(ScheddTest, SubmissionSeriesRecordsTimes) {
  sim::Kernel k;
  Schedd schedd(k, small_config());
  k.spawn("client", [&](sim::Context& ctx) {
    ASSERT_TRUE(schedd.submit(ctx).ok());
    ASSERT_TRUE(schedd.submit(ctx).ok());
  });
  k.run();
  EXPECT_EQ(schedd.submissions().total(), 2);
  EXPECT_EQ(schedd.submissions().count_before(kEpoch + msec(1100)), 1);
  EXPECT_EQ(schedd.submissions().count_before(kEpoch + msec(2200)), 2);
}

TEST(ScheddTest, LoadSlowdownStretchesService) {
  // With slowdown_per_connection = 1, two concurrent connections make
  // service time scale visibly.
  sim::Kernel k;
  ScheddConfig config = small_config();
  config.slowdown_per_connection = 1.0;  // extreme for visibility
  config.service_concurrency = 2;
  Schedd schedd(k, config);
  std::vector<TimePoint> done;
  for (int i = 0; i < 2; ++i) {
    k.spawn("c", [&](sim::Context& ctx) {
      ASSERT_TRUE(schedd.submit(ctx).ok());
      done.push_back(ctx.now());
    });
  }
  k.run();
  ASSERT_EQ(done.size(), 2u);
  // The factor snapshots at service start: the first job sees 1 open
  // connection (factor 2 => 2 s), the second sees 2 (factor 3 => 3 s).
  EXPECT_EQ(done[0], kEpoch + msec(2100));
  EXPECT_EQ(done[1], kEpoch + msec(3100));
}

TEST(ScheddTest, AbortedSubmitterReleasesEverything) {
  // A client killed mid-queue or mid-service must not leak descriptors or
  // connections -- the cancellation-cleanliness property of section 6.
  sim::Kernel k;
  ScheddConfig config = small_config();
  config.service_concurrency = 1;
  config.service_min = config.service_max = sec(30);
  Schedd schedd(k, config);
  auto victim = k.spawn("victim", [&](sim::Context& ctx) {
    (void)schedd.submit(ctx);
  });
  k.spawn("holder", [&](sim::Context& ctx) { (void)schedd.submit(ctx); });
  k.spawn("killer", [&](sim::Context& ctx) {
    ctx.sleep(sec(5));
    ctx.kill(victim, "user abort");
  });
  k.run();
  EXPECT_EQ(schedd.fd_table().available(), 100);
  EXPECT_EQ(schedd.open_connections(), 0);
}

TEST(ScheddTest, DeadlineAbortMidServiceReleasesEverything) {
  sim::Kernel k;
  ScheddConfig config = small_config();
  config.service_min = config.service_max = sec(30);
  Schedd schedd(k, config);
  bool timed_out = false;
  k.spawn("impatient", [&](sim::Context& ctx) {
    try {
      sim::DeadlineScope scope(ctx, kEpoch + sec(2));
      (void)schedd.submit(ctx);
    } catch (const sim::DeadlineExceeded&) {
      timed_out = true;
    }
  });
  k.run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(schedd.fd_table().available(), 100);
  EXPECT_EQ(schedd.open_connections(), 0);
}

}  // namespace
}  // namespace ethergrid::grid
