#include "grid/substrate.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "obs/observer.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::grid {
namespace {

SubstrateConfig binary_config() {
  SubstrateConfig config;
  config.site = "medium";
  config.bytes_per_second = 1000.0;
  config.slots = 1;
  return config;
}

SubstrateConfig fluid_config() {
  SubstrateConfig config = binary_config();
  config.model = CapacityModel::kFluid;
  return config;
}

TEST(SubstrateTest, CapacityModelNamesRoundTrip) {
  EXPECT_EQ(capacity_model_name(CapacityModel::kBinary), "binary");
  EXPECT_EQ(capacity_model_name(CapacityModel::kFluid), "fluid");
  CapacityModel model = CapacityModel::kBinary;
  EXPECT_TRUE(parse_capacity_model("fluid", &model));
  EXPECT_EQ(model, CapacityModel::kFluid);
  EXPECT_TRUE(parse_capacity_model("binary", &model));
  EXPECT_EQ(model, CapacityModel::kBinary);
  EXPECT_FALSE(parse_capacity_model("bogus", &model));
}

// Binary model: Hold serializes on the slot resource; second holder waits.
TEST(SubstrateTest, BinaryHoldSerializes) {
  sim::Kernel k;
  Substrate medium(k, binary_config());
  TimePoint second_started{};
  k.spawn("a", [&](sim::Context& ctx) {
    Substrate::Hold hold(ctx, medium);
    ctx.sleep(sec(10));
  });
  k.spawn("b", [&](sim::Context& ctx) {
    ctx.sleep(sec(1));
    Substrate::Hold hold(ctx, medium);
    second_started = ctx.now();
  });
  k.run();
  EXPECT_EQ(second_started, kEpoch + sec(10));
  k.shutdown();
}

// Fluid model: Hold admits everyone; stream() divides the bandwidth.
TEST(SubstrateTest, FluidStreamsShareBandwidth) {
  sim::Kernel k;
  Substrate medium(k, fluid_config());
  std::vector<TimePoint> done(2);
  for (int i = 0; i < 2; ++i) {
    k.spawn("s" + std::to_string(i), [&, i](sim::Context& ctx) {
      Substrate::Hold hold(ctx, medium);
      ASSERT_TRUE(medium.stream(ctx, 5000.0).ok());
      done[std::size_t(i)] = ctx.now();
    });
  }
  k.run();
  // Two flows over 1000 B/s move 5000 B each in 10 s together.
  EXPECT_GE(done[0], kEpoch + sec(10));
  EXPECT_LE(done[0], kEpoch + sec(10) + msec(1));
  EXPECT_EQ(done[0], done[1]);
  k.shutdown();
}

// instantaneous_share_fraction: fluid reports the fair share a new flow
// would get as a fraction of capacity; binary reports slot availability.
TEST(SubstrateTest, ShareFractionQuotesBothModels) {
  sim::Kernel k;
  Substrate fluid(k, fluid_config());
  Substrate binary(k, binary_config());
  double fluid_idle = -1;
  double fluid_busy = -1;
  double binary_idle = -1;
  double binary_busy = -1;
  k.spawn("fluid-flow",
          [&](sim::Context& ctx) { (void)fluid.stream(ctx, 4000.0); });
  k.spawn("binary-holder", [&](sim::Context& ctx) {
    Substrate::Hold hold(ctx, binary);
    ctx.sleep(sec(2));
  });
  k.spawn("probe", [&](sim::Context& ctx) {
    fluid_busy = fluid.instantaneous_share_fraction();
    binary_busy = binary.instantaneous_share_fraction();
    ctx.sleep(sec(30));
    fluid_idle = fluid.instantaneous_share_fraction();
    binary_idle = binary.instantaneous_share_fraction();
  });
  k.run();
  EXPECT_DOUBLE_EQ(fluid_busy, 0.5);
  EXPECT_DOUBLE_EQ(fluid_idle, 1.0);
  EXPECT_DOUBLE_EQ(binary_busy, 0.0);
  EXPECT_DOUBLE_EQ(binary_idle, 1.0);
  k.shutdown();
}

// Fluid substrates emit flow_share events through the observer channel on
// every re-share.
TEST(SubstrateTest, FluidEmitsFlowShareEvents) {
  sim::Kernel k;
  Substrate medium(k, fluid_config());
  struct Collector : obs::Observer {
    std::vector<obs::ObsEvent> events;
    void on_event(const obs::ObsEvent& event) override {
      if (event.kind == obs::ObsEvent::Kind::kFlowShare)
        events.push_back(event);
    }
  } collector;
  obs::ObserverSet observers;
  observers.add(&collector);
  medium.set_observers(&observers);
  k.spawn("a", [&](sim::Context& ctx) { (void)medium.stream(ctx, 1000.0); });
  k.spawn("b", [&](sim::Context& ctx) {
    ctx.sleep(msec(500));
    (void)medium.stream(ctx, 1000.0);
  });
  k.run();
  // Re-shares: a joins, b joins, a leaves, b leaves.
  ASSERT_GE(collector.events.size(), 4u);
  // While both flows were active the unit share is half the capacity.
  bool saw_half = false;
  for (const obs::ObsEvent& event : collector.events) {
    if (event.value == 0.5) saw_half = true;
  }
  EXPECT_TRUE(saw_half);
  k.shutdown();
}

// payload_duration matches the binary-mode cost formula.
TEST(SubstrateTest, PayloadDurationMatchesBandwidth) {
  sim::Kernel k;
  Substrate medium(k, binary_config());
  EXPECT_EQ(medium.payload_duration(2000.0), sec(2));
  EXPECT_EQ(medium.payload_duration(0.0), Duration{});
}

}  // namespace
}  // namespace ethergrid::grid
