#include "grid/fsbuffer.hpp"

#include <gtest/gtest.h>

namespace ethergrid::grid {
namespace {

TEST(FsBufferTest, CreateAppendRename) {
  sim::Kernel k;
  FsBuffer b(k, 1000);
  EXPECT_TRUE(b.create("x").ok());
  EXPECT_TRUE(b.append("x", 400).ok());
  EXPECT_EQ(b.used_bytes(), 400);
  EXPECT_EQ(b.free_bytes(), 600);
  EXPECT_EQ(b.incomplete_count(), 1);
  EXPECT_EQ(b.complete_count(), 0);
  EXPECT_TRUE(b.rename_done("x").ok());
  EXPECT_EQ(b.incomplete_count(), 0);
  EXPECT_EQ(b.complete_count(), 1);
}

TEST(FsBufferTest, CreateDuplicateFails) {
  sim::Kernel k;
  FsBuffer b(k, 1000);
  ASSERT_TRUE(b.create("x").ok());
  EXPECT_EQ(b.create("x").code(), StatusCode::kInvalidArgument);
}

TEST(FsBufferTest, AppendMissingFileFails) {
  sim::Kernel k;
  FsBuffer b(k, 1000);
  EXPECT_EQ(b.append("ghost", 10).code(), StatusCode::kNotFound);
}

TEST(FsBufferTest, AppendToCompleteFileFails) {
  sim::Kernel k;
  FsBuffer b(k, 1000);
  ASSERT_TRUE(b.create("x").ok());
  ASSERT_TRUE(b.rename_done("x").ok());
  EXPECT_EQ(b.append("x", 10).code(), StatusCode::kInvalidArgument);
}

TEST(FsBufferTest, EnospcWhenFull) {
  sim::Kernel k;
  FsBuffer b(k, 100);
  ASSERT_TRUE(b.create("x").ok());
  ASSERT_TRUE(b.append("x", 80).ok());
  Status s = b.append("x", 30);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(b.enospc_failures(), 1);
  // The failed append wrote nothing; the partial file remains.
  EXPECT_EQ(b.used_bytes(), 80);
  EXPECT_TRUE(b.append("x", 20).ok());  // exact fit succeeds
}

TEST(FsBufferTest, RemoveFreesSpaceAndIsIdempotent) {
  sim::Kernel k;
  FsBuffer b(k, 100);
  ASSERT_TRUE(b.create("x").ok());
  ASSERT_TRUE(b.append("x", 60).ok());
  b.remove("x");
  EXPECT_EQ(b.used_bytes(), 0);
  b.remove("x");  // rm -f: ok when missing
  EXPECT_EQ(b.used_bytes(), 0);
}

TEST(FsBufferTest, RenameMissingFails) {
  sim::Kernel k;
  FsBuffer b(k, 100);
  EXPECT_EQ(b.rename_done("ghost").code(), StatusCode::kNotFound);
  ASSERT_TRUE(b.create("x").ok());
  ASSERT_TRUE(b.rename_done("x").ok());
  EXPECT_EQ(b.rename_done("x").code(), StatusCode::kInvalidArgument);
}

TEST(FsBufferTest, OldestCompleteFollowsCreationOrder) {
  sim::Kernel k;
  FsBuffer b(k, 1000);
  ASSERT_TRUE(b.create("a").ok());
  ASSERT_TRUE(b.create("b").ok());
  ASSERT_TRUE(b.append("a", 10).ok());
  ASSERT_TRUE(b.append("b", 20).ok());
  EXPECT_FALSE(b.oldest_complete().has_value());
  ASSERT_TRUE(b.rename_done("b").ok());
  auto f = b.oldest_complete();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->name, "b");
  ASSERT_TRUE(b.rename_done("a").ok());
  f = b.oldest_complete();
  EXPECT_EQ(f->name, "a");  // a was created first
  b.remove("a");
  EXPECT_EQ(b.oldest_complete()->name, "b");
}

TEST(FsBufferTest, AverageCompleteSize) {
  sim::Kernel k;
  FsBuffer b(k, 1000);
  EXPECT_EQ(b.average_complete_size(), 0);
  ASSERT_TRUE(b.create("a").ok());
  ASSERT_TRUE(b.append("a", 100).ok());
  ASSERT_TRUE(b.rename_done("a").ok());
  ASSERT_TRUE(b.create("b").ok());
  ASSERT_TRUE(b.append("b", 300).ok());
  EXPECT_EQ(b.average_complete_size(), 100);  // only complete files count
  ASSERT_TRUE(b.rename_done("b").ok());
  EXPECT_EQ(b.average_complete_size(), 200);
}

TEST(FsBufferTest, CompletionEventWakesConsumer) {
  sim::Kernel k;
  FsBuffer b(k, 1000);
  TimePoint woke{};
  k.spawn("consumer", [&](sim::Context& ctx) {
    ctx.wait(b.completion_event());
    woke = ctx.now();
  });
  k.spawn("producer", [&](sim::Context& ctx) {
    ASSERT_TRUE(b.create("x").ok());
    ctx.sleep(sec(5));
    ASSERT_TRUE(b.rename_done("x").ok());
  });
  k.run();
  EXPECT_EQ(woke, kEpoch + sec(5));
}

TEST(FsBufferTest, ListShowsEverything) {
  sim::Kernel k;
  FsBuffer b(k, 1000);
  ASSERT_TRUE(b.create("a").ok());
  ASSERT_TRUE(b.append("a", 5).ok());
  ASSERT_TRUE(b.create("b").ok());
  ASSERT_TRUE(b.rename_done("b").ok());
  auto files = b.list();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].name, "a");
  EXPECT_EQ(files[0].size, 5);
  EXPECT_FALSE(files[0].complete);
  EXPECT_TRUE(files[1].complete);
}

TEST(FsBufferTest, ZeroByteFileCompletes) {
  sim::Kernel k;
  FsBuffer b(k, 100);
  ASSERT_TRUE(b.create("empty").ok());
  ASSERT_TRUE(b.rename_done("empty").ok());
  EXPECT_EQ(b.oldest_complete()->size, 0);
}

}  // namespace
}  // namespace ethergrid::grid
