#include "grid/reservation.hpp"

#include <gtest/gtest.h>

#include "sim/kernel.hpp"

namespace ethergrid::grid {
namespace {

ReservationBookConfig book_config(double bps = 100.0) {
  ReservationBookConfig config;
  config.reservable_bps = bps;
  config.horizon = minutes(10);
  return config;
}

TEST(ReservationTest, GrantsImmediatelyOnIdleBook) {
  sim::Kernel k;
  ReservationBook book(book_config());
  k.spawn("client", [&](sim::Context& ctx) {
    Grant grant = book.request(ctx, 1000.0, 10.0, 50.0);
    ASSERT_TRUE(grant.ok());
    EXPECT_EQ(grant.start, ctx.now());
    EXPECT_DOUBLE_EQ(grant.rate, 50.0);  // max_rate available -> take it
    EXPECT_EQ(grant.duration, sec(20));  // 1000 / 50
    EXPECT_DOUBLE_EQ(book.reserved_at(ctx.now()), 50.0);
  });
  k.run();
  EXPECT_EQ(book.granted(), 1);
  k.shutdown();
}

TEST(ReservationTest, ConcurrentGrantsNeverOversubscribe) {
  sim::Kernel k;
  ReservationBook book(book_config(100.0));
  k.spawn("clients", [&](sim::Context& ctx) {
    Grant a = book.request(ctx, 1000.0, 10.0, 60.0);
    Grant b = book.request(ctx, 1000.0, 10.0, 60.0);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // b squeezes beside a (40 left) or queues behind it; either way the
    // sum of reserved rates never exceeds capacity at any instant.
    for (int s = 0; s <= 60; ++s) {
      EXPECT_LE(book.reserved_at(ctx.now() + sec(s)), 100.0 + 1e-9);
    }
    // Malleable: starting now at the leftover 40 B/s finishes at t=25,
    // beating a wait for a's end (t=20) plus 1000/60 s more (t=36.7).
    EXPECT_EQ(b.start, ctx.now());
    EXPECT_DOUBLE_EQ(b.rate, 40.0);
  });
  k.run();
  k.shutdown();
}

TEST(ReservationTest, PicksLaterStartWhenItFinishesEarlier) {
  sim::Kernel k;
  ReservationBook book(book_config(100.0));
  k.spawn("clients", [&](sim::Context& ctx) {
    // First grant takes 90 of 100 for 10 s.
    Grant a = book.request(ctx, 900.0, 90.0, 90.0);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.duration, sec(10));
    // 1000 B at min 50: starting now runs at 10 B/s (infeasible, below
    // min); the earliest feasible start is a's end, at the full 100 B/s.
    Grant b = book.request(ctx, 1000.0, 50.0, 100.0);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b.start, ctx.now() + sec(10));
    EXPECT_DOUBLE_EQ(b.rate, 100.0);
  });
  k.run();
  k.shutdown();
}

TEST(ReservationTest, RejectsWhenNothingFitsAndCountsIt) {
  sim::Kernel k;
  ReservationBook book(book_config(100.0));
  k.spawn("client", [&](sim::Context& ctx) {
    // min_rate above capacity: impossible.
    EXPECT_FALSE(book.request(ctx, 1000.0, 200.0, 300.0).ok());
    // Saturate the horizon, then ask for more than the leftover.
    Grant a = book.request(ctx, 100.0 * to_seconds(minutes(20)), 100.0,
                           100.0);
    ASSERT_TRUE(a.ok());
    EXPECT_FALSE(book.request(ctx, 1000.0, 50.0, 100.0).ok());
  });
  k.run();
  EXPECT_EQ(book.rejected(), 2);
  k.shutdown();
}

TEST(ReservationTest, ReleaseFreesCapacityAndLeaseIsIdempotent) {
  sim::Kernel k;
  ReservationBook book(book_config(100.0));
  k.spawn("client", [&](sim::Context& ctx) {
    Grant a = book.request(ctx, 6000.0, 100.0, 100.0);
    ASSERT_TRUE(a.ok());
    {
      GrantLease lease(book, a.id);
      EXPECT_EQ(book.active_grants(), 1u);
      lease.release();
      lease.release();  // idempotent
    }
    EXPECT_EQ(book.active_grants(), 0u);
    // Full capacity is back.
    Grant b = book.request(ctx, 1000.0, 100.0, 100.0);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b.start, ctx.now());
  });
  k.run();
  k.shutdown();
}

TEST(ReservationTest, ExpiredGrantsAreSwept) {
  sim::Kernel k;
  ReservationBook book(book_config(100.0));
  k.spawn("client", [&](sim::Context& ctx) {
    Grant a = book.request(ctx, 1000.0, 100.0, 100.0);  // 10 s window
    ASSERT_TRUE(a.ok());
    ctx.sleep(sec(30));  // well past the window; never released
    Grant b = book.request(ctx, 1000.0, 100.0, 100.0);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b.start, ctx.now());
    EXPECT_EQ(book.active_grants(), 1u);  // a was swept
  });
  k.run();
  k.shutdown();
}

TEST(ReservationTest, DeterministicScheduleIsPureArithmetic) {
  // Two identically-configured books fed the same request sequence agree
  // exactly -- no RNG anywhere in the path.
  sim::Kernel k;
  ReservationBook a(book_config(77.0));
  ReservationBook b(book_config(77.0));
  k.spawn("client", [&](sim::Context& ctx) {
    for (int i = 0; i < 16; ++i) {
      Grant ga = a.request(ctx, 100.0 * (i + 1), 5.0, 30.0);
      Grant gb = b.request(ctx, 100.0 * (i + 1), 5.0, 30.0);
      ASSERT_EQ(ga.ok(), gb.ok());
      if (ga.ok()) {
        EXPECT_EQ(ga.start, gb.start);
        EXPECT_EQ(ga.duration, gb.duration);
        EXPECT_DOUBLE_EQ(ga.rate, gb.rate);
      }
      ctx.sleep(sec(3));
    }
  });
  k.run();
  k.shutdown();
}

}  // namespace
}  // namespace ethergrid::grid
