#include "grid/submit_file.hpp"

#include <gtest/gtest.h>

#include "grid/schedd.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::grid {
namespace {

TEST(SubmitFileTest, ParsesClassicFile) {
  SubmitDescription job;
  Status s = parse_submit_file(R"(
# my simulation
executable = sim.exe
arguments  = -n 10 --fast
transfer_input_files = a.dat, b.dat, c.dat
requirements = Memory > 512
queue 5
)",
                               &job);
  ASSERT_TRUE(s.ok()) << s.to_string();
  EXPECT_EQ(job.executable, "sim.exe");
  EXPECT_EQ(job.arguments, "-n 10 --fast");
  EXPECT_EQ(job.transfer_input_files,
            (std::vector<std::string>{"a.dat", "b.dat", "c.dat"}));
  EXPECT_EQ(job.attributes.at("requirements"), "Memory > 512");
  EXPECT_EQ(job.queue_count, 5);
}

TEST(SubmitFileTest, BareQueueIsOneJob) {
  SubmitDescription job;
  ASSERT_TRUE(parse_submit_file("executable = x\nqueue\n", &job).ok());
  EXPECT_EQ(job.queue_count, 1);
}

TEST(SubmitFileTest, QueueStatementsAccumulate) {
  SubmitDescription job;
  ASSERT_TRUE(
      parse_submit_file("executable = x\nqueue 2\nqueue\nqueue 3\n", &job)
          .ok());
  EXPECT_EQ(job.queue_count, 6);
}

TEST(SubmitFileTest, KeysAreCaseInsensitive) {
  SubmitDescription job;
  ASSERT_TRUE(
      parse_submit_file("Executable = x\nQUEUE 1\nFooBar = baz\n", &job)
          .ok());
  EXPECT_EQ(job.executable, "x");
  EXPECT_EQ(job.attributes.at("foobar"), "baz");
}

TEST(SubmitFileTest, LaterAssignmentsOverride) {
  SubmitDescription job;
  ASSERT_TRUE(
      parse_submit_file("executable = a\nexecutable = b\nqueue\n", &job)
          .ok());
  EXPECT_EQ(job.executable, "b");
}

TEST(SubmitFileTest, MissingExecutableFails) {
  SubmitDescription job;
  Status s = parse_submit_file("arguments = -n\nqueue\n", &job);
  EXPECT_TRUE(s.failed());
  EXPECT_NE(s.message().find("executable"), std::string::npos);
}

TEST(SubmitFileTest, MissingQueueFails) {
  SubmitDescription job;
  Status s = parse_submit_file("executable = x\n", &job);
  EXPECT_TRUE(s.failed());
  EXPECT_NE(s.message().find("queue"), std::string::npos);
}

TEST(SubmitFileTest, MalformedLinesCarryLineNumbers) {
  SubmitDescription job;
  Status s = parse_submit_file("executable = x\nthis is not valid\n", &job);
  EXPECT_TRUE(s.failed());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(SubmitFileTest, BadQueueCounts) {
  SubmitDescription job;
  EXPECT_TRUE(parse_submit_file("executable = x\nqueue zero\n", &job).failed());
  EXPECT_TRUE(parse_submit_file("executable = x\nqueue 0\n", &job).failed());
  EXPECT_TRUE(parse_submit_file("executable = x\nqueue -3\n", &job).failed());
}

TEST(SubmitFileTest, ConnectionFdCostCountsTransferFiles) {
  SubmitDescription job;
  ASSERT_TRUE(parse_submit_file(
                  "executable = x\ntransfer_input_files = a, b\nqueue\n", &job)
                  .ok());
  EXPECT_EQ(job.connection_fd_cost(20), 22);
}

// ---- schedd integration ----

ScheddConfig plain_schedd() {
  ScheddConfig c;
  c.fds_per_connection_jitter = 0;
  c.fds_per_transfer = 0;
  c.service_min = c.service_max = sec(1);
  c.slowdown_per_connection = 0;
  return c;
}

TEST(SubmitFileScheddTest, QueueCountLandsAtomically) {
  sim::Kernel k;
  Schedd schedd(k, plain_schedd());
  SubmitDescription job;
  ASSERT_TRUE(parse_submit_file("executable = x\nqueue 5\n", &job).ok());
  k.spawn("client", [&](sim::Context& ctx) {
    ASSERT_TRUE(schedd.submit(ctx, job).ok());
  });
  k.run();
  EXPECT_EQ(schedd.jobs_submitted(), 5);
  // Service time scaled by the queue count: 0.1 connect + 5 x 1 s.
  EXPECT_EQ(k.now(), kEpoch + msec(5100));
}

TEST(SubmitFileScheddTest, TransferListSetsDescriptorFootprint) {
  sim::Kernel k;
  ScheddConfig config = plain_schedd();
  config.fd_capacity = 50;
  config.fds_per_connection = 20;
  Schedd schedd(k, config);
  SubmitDescription heavy;
  ASSERT_TRUE(parse_submit_file(
                  "executable = x\n"
                  "transfer_input_files = "
                  "f01,f02,f03,f04,f05,f06,f07,f08,f09,f10,"
                  "f11,f12,f13,f14,f15,f16,f17,f18,f19,f20,"
                  "f21,f22,f23,f24,f25,f26,f27,f28,f29,f30,f31\n"
                  "queue\n",
                  &heavy)
                  .ok());
  Status result;
  k.spawn("client",
          [&](sim::Context& ctx) { result = schedd.submit(ctx, heavy); });
  k.run();
  // 20 + 31 = 51 descriptors needed > 50 available: refused at connect.
  EXPECT_EQ(result.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(schedd.jobs_submitted(), 0);
}

}  // namespace
}  // namespace ethergrid::grid
