// Full-stack integration: the PAPER'S LITERAL SCRIPTS, interpreted by our
// ftsh, driving the simulated grid substrates.  These are the fidelity
// tests that tie the language to the evaluation.
#include <gtest/gtest.h>

#include "grid/fileserver.hpp"
#include "grid/schedd.hpp"
#include "grid/submit_file.hpp"
#include "shell/session.hpp"
#include "shell/sim_executor.hpp"
#include "sim/kernel.hpp"

namespace ethergrid {
namespace {

// ---------------------------------------------------- ethernet submitter

// The exact fragment from section 5 (read-file-nr standing in for
// `cut -f2 /proc/sys/fs/file-nr`).
constexpr const char* kEthernetSubmitter = R"(
try for 5 minutes
  read-file-nr -> n
  if ${n} .lt. 1000
    failure
  else
    condor_submit submit.job
  end
end
)";

struct SubmitWorld {
  explicit SubmitWorld(std::uint64_t seed = 3)
      : kernel(seed), schedd(kernel, config()), executor(kernel) {
    executor.register_command(
        "read-file-nr",
        [this](sim::Context& ctx,
               const shell::CommandInvocation&) -> shell::CommandResult {
          ctx.sleep(msec(10));
          return {Status::success(),
                  std::to_string(schedd.fd_table().available()), ""};
        });
    executor.register_command(
        "condor_submit",
        [this](sim::Context& ctx,
               const shell::CommandInvocation& inv) -> shell::CommandResult {
          // With a submit file in the VFS, parse and submit the real
          // description; otherwise fall back to a generic submission.
          if (inv.argv.size() > 1) {
            if (auto text = executor.read_file(inv.argv[1])) {
              grid::SubmitDescription job;
              Status parsed = grid::parse_submit_file(*text, &job);
              if (parsed.failed()) return {parsed, "", ""};
              return {schedd.submit(ctx, job), "", ""};
            }
          }
          return {schedd.submit(ctx), "", ""};
        });
  }

  static grid::ScheddConfig config() {
    grid::ScheddConfig c;
    c.fd_capacity = 4096;
    c.fds_per_connection = 20;
    c.fds_per_connection_jitter = 0;
    c.fds_per_transfer = 0;
    return c;
  }

  Status run_script(const char* source) {
    shell::Session session(executor);
    Status result;
    kernel.spawn("script", [&](sim::Context& ctx) {
      shell::SimExecutor::ContextBinding binding(executor, ctx);
      result = session.run_source(source);
    });
    kernel.run();
    return result;
  }

  sim::Kernel kernel;
  grid::Schedd schedd;
  shell::SimExecutor executor;
};

TEST(ScriptSubmitterTest, SubmitsWhenDescriptorsPlentiful) {
  SubmitWorld world;
  Status s = world.run_script(kEthernetSubmitter);
  EXPECT_TRUE(s.ok()) << s.to_string();
  EXPECT_EQ(world.schedd.jobs_submitted(), 1);
}

TEST(ScriptSubmitterTest, DefersWhileBelowThresholdThenTimesOut) {
  SubmitWorld world;
  // Pin descriptors so that free < 1000 for the whole budget.
  ASSERT_TRUE(world.schedd.fd_table().try_allocate(3200));  // 896 free
  Status s = world.run_script(kEthernetSubmitter);
  EXPECT_TRUE(s.failed());
  EXPECT_EQ(world.schedd.jobs_submitted(), 0);  // never touched the schedd
  EXPECT_EQ(world.kernel.now(), kEpoch + minutes(5));  // burned the budget
}

TEST(ScriptSubmitterTest, ResumesWhenDescriptorsReturn) {
  SubmitWorld world;
  ASSERT_TRUE(world.schedd.fd_table().try_allocate(3200));
  // Free the hogged descriptors after 90 s: the script's backoff retries
  // must then find n >= 1000 and submit within the 5-minute budget.
  world.kernel.spawn("hog-release", [&](sim::Context& ctx) {
    ctx.sleep(sec(90));
    world.schedd.fd_table().free(3200);
  });
  Status s = world.run_script(kEthernetSubmitter);
  EXPECT_TRUE(s.ok()) << s.to_string();
  EXPECT_EQ(world.schedd.jobs_submitted(), 1);
  EXPECT_GT(world.kernel.now(), kEpoch + sec(90));
  EXPECT_LT(world.kernel.now(), kEpoch + minutes(5));
}

TEST(ScriptSubmitterTest, SubmitFileDescriptionDrivesTheSubmission) {
  SubmitWorld world;
  world.executor.write_file("submit.job",
                            "executable = sim.exe\n"
                            "transfer_input_files = a.dat, b.dat\n"
                            "queue 3\n");
  Status s = world.run_script(kEthernetSubmitter);
  EXPECT_TRUE(s.ok()) << s.to_string();
  EXPECT_EQ(world.schedd.jobs_submitted(), 3);  // the queue count landed
}

TEST(ScriptSubmitterTest, MalformedSubmitFileIsASpecificationError) {
  // The paper's section-6 caveat: no amount of Ethernet retrying fixes a
  // bad job description.  The try burns its budget and fails.
  SubmitWorld world;
  world.executor.write_file("submit.job", "arguments = -n 10\nqueue\n");
  Status s = world.run_script(
      "try for 10 seconds or 3 times\n"
      "  condor_submit submit.job\n"
      "end");
  EXPECT_TRUE(s.failed());
  EXPECT_EQ(world.schedd.jobs_submitted(), 0);
}

// ---------------------------------------------------- black-hole readers

struct ReaderWorld {
  explicit ReaderWorld(std::uint64_t seed = 5)
      : kernel(seed),
        farm(kernel,
             {server("xxx", false), server("yyy", false), server("zzz", true)}),
        executor(kernel) {
    executor.register_command(
        "wget", [this](sim::Context& ctx, const shell::CommandInvocation& inv)
                    -> shell::CommandResult {
          const std::string& url = inv.argv.at(1);
          const auto host_start = url.find("//") + 2;
          const auto host_end = url.find('/', host_start);
          const std::string host =
              url.substr(host_start, host_end - host_start);
          const std::string path = url.substr(host_end + 1);
          grid::FileServer* s = farm.by_name(host);
          if (!s) return {Status::not_found("host " + host), "", ""};
          if (path == "flag") return {s->fetch_flag(ctx), "", ""};
          return {s->fetch(ctx, 100 << 20), "", ""};
        });
  }

  static grid::FileServerConfig server(const std::string& name, bool hole) {
    grid::FileServerConfig c;
    c.name = name;
    c.black_hole = hole;
    return c;
  }

  Status run_script(const char* source, double* elapsed_seconds) {
    shell::Session session(executor);
    Status result;
    kernel.spawn("reader", [&](sim::Context& ctx) {
      shell::SimExecutor::ContextBinding binding(executor, ctx);
      result = session.run_source(source);
    });
    kernel.run();
    *elapsed_seconds = to_seconds(kernel.now());
    return result;
  }

  sim::Kernel kernel;
  grid::ServerFarm farm;
  shell::SimExecutor executor;
};

// The paper's Aloha reader (section 5, third scenario).
constexpr const char* kAlohaReader = R"(
try for 900 seconds
  forany host in xxx yyy zzz
    try for 60 seconds
      wget http://${host}/data
    end
  end
end
)";

// The paper's Ethernet reader with the one-byte flag probe.
constexpr const char* kEthernetReader = R"(
try for 900 seconds
  forany host in xxx yyy zzz
    try for 5 seconds
      wget http://${host}/flag
    end
    try for 60 seconds
      wget http://${host}/data
    end
  end
end
)";

TEST(ScriptReaderTest, AlohaReaderCompletesDespiteBlackHole) {
  ReaderWorld world;
  double elapsed = 0;
  Status s = world.run_script(kAlohaReader, &elapsed);
  EXPECT_TRUE(s.ok()) << s.to_string();
  // forany goes in list order xxx first (a good server): ~10.2 s.
  EXPECT_LT(elapsed, 15.0);
}

TEST(ScriptReaderTest, AlohaPaysSixtySecondsInTheHole) {
  // Remove the good servers: only the hole remains; the inner 60 s try must
  // burn fully, then the outer forany fails, backs off, and ultimately the
  // 900 s budget expires.
  ReaderWorld world;
  double elapsed = 0;
  Status s = world.run_script(
      "try for 130 seconds\n"
      "  forany host in zzz\n"
      "    try for 60 seconds\n"
      "      wget http://${host}/data\n"
      "    end\n"
      "  end\n"
      "end",
      &elapsed);
  EXPECT_TRUE(s.failed());
  EXPECT_DOUBLE_EQ(elapsed, 130.0);
  // Two full 60 s stalls plus the start of a third after backoffs.
  EXPECT_EQ(world.farm.by_name("zzz")->connections_accepted(), 3);
}

TEST(ScriptReaderTest, EthernetProbeSkipsTheHoleQuickly) {
  ReaderWorld world;
  double elapsed = 0;
  Status s = world.run_script(
      "forany host in zzz xxx\n"  // hole FIRST: probe must reject it in 5 s
      "  try for 5 seconds\n"
      "    wget http://${host}/flag\n"
      "  end\n"
      "  try for 60 seconds\n"
      "    wget http://${host}/data\n"
      "  end\n"
      "end\n"
      "echo from ${host}",
      &elapsed);
  EXPECT_TRUE(s.ok()) << s.to_string();
  // 5 s wasted on the hole's probe instead of 60 s on its data fetch.
  EXPECT_GT(elapsed, 14.9);
  EXPECT_LT(elapsed, 17.0);
}

TEST(ScriptReaderTest, EthernetBeatsAlohaWhenTheHoleComesFirst) {
  // Force the worst-case alternative order (hole first) so the comparison
  // is deterministic: Aloha pays the full 60 s per round; Ethernet pays
  // only the 5 s probe.
  constexpr const char* kAlohaHoleFirst =
      "try for 900 seconds\n"
      "  forany host in zzz xxx yyy\n"
      "    try for 60 seconds\n"
      "      wget http://${host}/data\n"
      "    end\n"
      "  end\n"
      "end";
  constexpr const char* kEthernetHoleFirst =
      "try for 900 seconds\n"
      "  forany host in zzz xxx yyy\n"
      "    try for 5 seconds\n"
      "      wget http://${host}/flag\n"
      "    end\n"
      "    try for 60 seconds\n"
      "      wget http://${host}/data\n"
      "    end\n"
      "  end\n"
      "end";
  auto run_rounds = [](const char* script, int rounds) {
    ReaderWorld world;
    double total = 0;
    for (int i = 0; i < rounds; ++i) {
      double elapsed = 0;
      Status s = world.run_script(script, &elapsed);
      EXPECT_TRUE(s.ok());
      total = elapsed;  // cumulative virtual time (kernel persists)
    }
    return total;
  };
  const double aloha_time = run_rounds(kAlohaHoleFirst, 3);
  const double ethernet_time = run_rounds(kEthernetHoleFirst, 3);
  EXPECT_GT(aloha_time, 3 * 60.0);          // a full stall every round
  EXPECT_LT(ethernet_time, aloha_time / 3);  // probes instead of stalls
}

// -------------------------------------------------- full-stack observability

TEST(ScriptObservabilityTest, GridEventsLandInTheSessionTrace) {
  // One Session observes the whole stack: interpreter spans from the script
  // run plus carrier-sense probes emitted by the file servers themselves.
  ReaderWorld world;
  shell::SessionOptions options;
  options.collect_trace = true;
  options.collect_metrics = true;
  shell::Session session(world.executor, options);
  world.farm.set_observers(&session.observers());
  Status result;
  world.kernel.spawn("reader", [&](sim::Context& ctx) {
    shell::SimExecutor::ContextBinding binding(world.executor, ctx);
    result = session.run_source(
        "try for 5 seconds\n"
        "  wget http://xxx/flag\n"
        "end\n"
        "wget http://xxx/data");
  });
  world.kernel.run();
  ASSERT_TRUE(result.ok()) << result.to_string();
  const std::string json = session.trace()->to_json();
  EXPECT_NE(json.find("carrier-sense: fileserver.xxx"), std::string::npos);
  EXPECT_NE(json.find("command: wget"), std::string::npos);
  EXPECT_GE(session.metrics()->counter("events.carrier-sense"), 1);
  EXPECT_EQ(session.metrics()->counter("spans.script"), 1);
}

// ------------------------------------------------------- forall fan-out

TEST(ScriptForallTest, ParallelFetchesOverlapOnDistinctServers) {
  ReaderWorld world;
  double elapsed = 0;
  // Two 100 MB fetches from two different single-threaded servers run
  // concurrently: total ~10.2 s, not ~20.4.
  Status s = world.run_script(
      "forall host in xxx yyy\n"
      "  wget http://${host}/data\n"
      "end",
      &elapsed);
  EXPECT_TRUE(s.ok()) << s.to_string();
  EXPECT_LT(elapsed, 12.0);
}

TEST(ScriptForallTest, SameServerSerializesBranches) {
  ReaderWorld world;
  double elapsed = 0;
  Status s = world.run_script(
      "forall n in 1 2\n"
      "  wget http://xxx/data\n"
      "end",
      &elapsed);
  EXPECT_TRUE(s.ok());
  EXPECT_GT(elapsed, 20.0);  // single-threaded server: 2 x ~10.2 s
}

}  // namespace
}  // namespace ethergrid
