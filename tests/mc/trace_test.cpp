// Trace file format: round-trips, forward compatibility, and line-numbered
// rejection of malformed input.
#include "mc/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sim/event_queue.hpp"

namespace ethergrid::mc {
namespace {

TraceFile sample_trace() {
  TraceFile trace;
  trace.scenario = "forall-abort";
  trace.queue = sim::QueueImpl::kHeap;
  trace.seed = 42;
  trace.violation = "queue-accounting";
  trace.decisions.push_back(
      Decision{ChoicePoint::Kind::kSchedule, "sched", 2, 3, "branch#4"});
  trace.decisions.push_back(Decision{ChoicePoint::Kind::kFault,
                                     "schedd.submit", 1, 2,
                                     "crash@schedd.submit#0"});
  return trace;
}

TEST(TraceTest, RoundTripsViolationTrace) {
  const TraceFile trace = sample_trace();
  TraceFile reloaded;
  ASSERT_TRUE(parse_trace(format_trace(trace), &reloaded).ok());
  EXPECT_EQ(reloaded.scenario, trace.scenario);
  EXPECT_EQ(reloaded.queue, trace.queue);
  EXPECT_EQ(reloaded.seed, trace.seed);
  EXPECT_EQ(reloaded.violation, trace.violation);
  ASSERT_EQ(reloaded.decisions.size(), 2u);
  EXPECT_EQ(reloaded.decisions[0].kind, ChoicePoint::Kind::kSchedule);
  EXPECT_EQ(reloaded.decisions[0].site, "sched");
  EXPECT_EQ(reloaded.decisions[0].chosen, 2u);
  EXPECT_EQ(reloaded.decisions[0].arity, 3u);
  EXPECT_EQ(reloaded.decisions[0].label, "branch#4");
  EXPECT_EQ(reloaded.decisions[1].kind, ChoicePoint::Kind::kFault);
  EXPECT_EQ(reloaded.decisions[1].site, "schedd.submit");
}

TEST(TraceTest, RoundTripsCleanTrace) {
  TraceFile trace = sample_trace();
  trace.violation.clear();
  const std::string text = format_trace(trace);
  EXPECT_EQ(text.find("violation"), std::string::npos);
  TraceFile reloaded;
  ASSERT_TRUE(parse_trace(text, &reloaded).ok());
  EXPECT_TRUE(reloaded.violation.empty());
}

TEST(TraceTest, LabelsMayContainSpaces) {
  TraceFile trace = sample_trace();
  trace.decisions[0].label = "a label with spaces";
  TraceFile reloaded;
  ASSERT_TRUE(parse_trace(format_trace(trace), &reloaded).ok());
  EXPECT_EQ(reloaded.decisions[0].label, "a label with spaces");
}

TEST(TraceTest, IgnoresCommentsAndUnknownHeaders) {
  TraceFile reloaded;
  const Status parsed = parse_trace(
      "ethergrid-mc-trace v1\n"
      "# a comment\n"
      "scenario forall-abort\n"
      "queue wheel\n"
      "seed 7\n"
      "future-key future value\n"
      "d sched 0 2 sched a#1\n"
      "end\n",
      &reloaded);
  ASSERT_TRUE(parsed.ok()) << parsed.message();
  EXPECT_EQ(reloaded.seed, 7u);
  ASSERT_EQ(reloaded.decisions.size(), 1u);
}

TEST(TraceTest, RejectsBadMagic) {
  TraceFile out;
  EXPECT_TRUE(parse_trace("not-a-trace v9\nend\n", &out).failed());
}

TEST(TraceTest, RejectsChosenOutOfRange) {
  TraceFile out;
  const Status parsed = parse_trace(
      "ethergrid-mc-trace v1\n"
      "scenario x\n"
      "d sched 3 2 sched a#1\n"
      "end\n",
      &out);
  ASSERT_TRUE(parsed.failed());
  EXPECT_NE(parsed.message().find("line 3"), std::string::npos)
      << parsed.message();
}

TEST(TraceTest, RejectsMalformedDecisionLine) {
  TraceFile out;
  EXPECT_TRUE(parse_trace(
                  "ethergrid-mc-trace v1\n"
                  "d sched zero 2 sched a#1\n"
                  "end\n",
                  &out)
                  .failed());
}

TEST(TraceTest, RejectsMissingEnd) {
  TraceFile out;
  EXPECT_TRUE(parse_trace(
                  "ethergrid-mc-trace v1\n"
                  "scenario x\n"
                  "d sched 0 2 sched a#1\n",
                  &out)
                  .failed());
}

}  // namespace
}  // namespace ethergrid::mc
