// The DFS explorer against tiny hand-built scenarios where the full
// interleaving tree is known: exhaustive enumeration, violation discovery
// with replayable counterexamples, sleep-set reduction, state pruning, depth
// budgets, and fault-branch enumeration.
#include "mc/explorer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "sim/fault_plan.hpp"
#include "sim/kernel.hpp"
#include "util/strings.hpp"

namespace ethergrid::mc {
namespace {

class OrderWorld final : public ScenarioWorld {
 public:
  std::vector<std::string> order;
};

// Three processes, all runnable at t=0, each appends its name and exits.
// The interleaving tree is exactly the 3! = 6 permutations (choice points of
// arity 3 then 2; the final singleton is never consulted).
class OrderScenario : public Scenario {
 public:
  explicit OrderScenario(std::vector<std::string> names = {"a", "b", "c"})
      : names_(std::move(names)) {}

  std::string name() const override { return "toy-order"; }

  bool independent(const std::string& a, const std::string& b) const override {
    return all_independent_ && a != b;
  }

  std::unique_ptr<ScenarioWorld> build(sim::Kernel& kernel, Strategy*,
                                       InvariantSet& invariants) override {
    auto world = std::make_unique<OrderWorld>();
    OrderWorld* w = world.get();
    for (const std::string& name : names_) {
      kernel.spawn(name, [w, name](sim::Context&) {
        w->order.push_back(name);
      });
    }
    invariants.add("order-check", [this, w](const CheckContext& ctx) {
      if (!ctx.at_end) return Status::success();
      const std::string order = join(w->order, ",");
      orders_seen.insert(order);
      if (order == forbidden_order_) {
        return Status::failure("reached forbidden order " + order);
      }
      return Status::success();
    });
    return world;
  }

  void forbid(std::string order) { forbidden_order_ = std::move(order); }
  void set_all_independent() { all_independent_ = true; }

  // Final orders reached by completed executions, across the whole
  // exploration (the Scenario outlives each per-execution world).
  std::set<std::string> orders_seen;

 private:
  std::vector<std::string> names_;
  std::string forbidden_order_;
  bool all_independent_ = false;
};

TEST(ExplorerTest, EnumeratesEveryInterleaving) {
  OrderScenario scenario;
  Explorer explorer(scenario);
  const ExploreResult result = explorer.explore();
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.stats.executions, 6u);
  EXPECT_EQ(scenario.orders_seen.size(), 6u);
  EXPECT_EQ(result.stats.sleep_set_skips, 0u);
}

TEST(ExplorerTest, FindsViolationWithReplayableTrace) {
  OrderScenario scenario;
  scenario.forbid("b,c,a");
  Explorer explorer(scenario);
  const ExploreResult result = explorer.explore();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.violations.size(), 1u);  // stops on first by default
  const Violation& v = result.violations.front();
  EXPECT_EQ(v.invariant, "order-check");
  ASSERT_FALSE(v.trace.empty());

  // The recorded choice vector deterministically reproduces the violation
  // on a fresh scenario instance.
  OrderScenario replay_scenario;
  replay_scenario.forbid("b,c,a");
  Explorer replayer(replay_scenario);
  const ExploreResult replayed = replayer.replay(v.trace);
  ASSERT_EQ(replayed.violations.size(), 1u);
  EXPECT_EQ(replayed.violations.front().invariant, "order-check");
  EXPECT_EQ(replay_scenario.orders_seen.count("b,c,a"), 1u);
}

TEST(ExplorerTest, ReplayDivergenceIsReported) {
  OrderScenario scenario;
  scenario.forbid("b,c,a");
  Explorer explorer(scenario);
  ExploreResult result = explorer.explore();
  ASSERT_FALSE(result.ok());
  std::vector<Decision> doctored = result.violations.front().trace;
  ASSERT_FALSE(doctored.empty());
  doctored.front().label = "zzz#99";

  OrderScenario replay_scenario;
  Explorer replayer(replay_scenario);
  const ExploreResult replayed = replayer.replay(doctored);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.violations.front().invariant, "mc.divergence");
}

TEST(ExplorerTest, SleepSetsPruneIndependentOrders) {
  OrderScenario scenario;
  scenario.set_all_independent();
  Explorer explorer(scenario);
  const ExploreResult result = explorer.explore();
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.complete);
  EXPECT_LT(result.stats.executions, 6u);
  EXPECT_GT(result.stats.sleep_set_skips, 0u);
}

TEST(ExplorerTest, StatePruningCollapsesConvergentPrefixes) {
  // Four processes: after delivering {a,b} in either order, the explorer
  // stands at an identical state with {c,d} pending -- an arity-2 choice
  // point whose digest has been seen, so the second prefix is cut short.
  // (With three processes the convergent states land on arity-1 points,
  // which never consult the strategy, so pruning would have nothing to do.)
  OrderScenario scenario({"a", "b", "c", "d"});
  ExplorerOptions options;
  options.state_pruning = true;
  Explorer explorer(scenario, options);
  const ExploreResult result = explorer.explore();
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.complete);
  EXPECT_LT(result.stats.executions, 24u);
  EXPECT_GT(result.stats.state_prunes, 0u);
}

// Two processes ping-pong same-instant yields: a deep chain of arity-2
// choice points that must hit the depth budget, not hang.
class PingPongScenario final : public Scenario {
 public:
  std::string name() const override { return "toy-pingpong"; }

  std::unique_ptr<ScenarioWorld> build(sim::Kernel& kernel, Strategy*,
                                       InvariantSet&) override {
    for (const char* name : {"ping", "pong"}) {
      kernel.spawn(name, [](sim::Context& ctx) {
        for (int i = 0; i < 8; ++i) ctx.yield();
      });
    }
    return std::make_unique<ScenarioWorld>();
  }
};

TEST(ExplorerTest, DepthBudgetTruncatesInsteadOfHanging) {
  PingPongScenario scenario;
  ExplorerOptions options;
  options.max_depth = 3;
  options.max_executions = 64;
  Explorer explorer(scenario, options);
  const ExploreResult result = explorer.explore();
  EXPECT_TRUE(result.ok());  // truncated runs skip end invariants
  EXPECT_FALSE(result.complete);
  EXPECT_GT(result.stats.depth_truncations, 0u);
  EXPECT_LE(result.stats.max_depth_seen, 3u);
}

// A single process consulting a probabilistic fault rule once: the fault
// site becomes a 2-way choice point (none / error fires) and the explorer
// must drive the scenario down both.
class FaultBranchWorld final : public ScenarioWorld {
 public:
  explicit FaultBranchWorld(Rng rng)
      : faults(sim::FaultPlan().add("toy.op", sim::FaultPlan::error(0.5)),
               rng) {}
  core::FaultInjector faults;
};

class FaultBranchScenario final : public Scenario {
 public:
  std::string name() const override { return "toy-fault"; }

  std::unique_ptr<ScenarioWorld> build(sim::Kernel& kernel,
                                       Strategy* strategy,
                                       InvariantSet&) override {
    auto world = std::make_unique<FaultBranchWorld>(kernel.rng());
    FaultBranchWorld* w = world.get();
    w->faults.set_strategy(strategy);
    kernel.spawn("worker", [this, w](sim::Context& ctx) {
      const core::FaultDecision d = w->faults.decide("toy.op", ctx.now());
      if (d.action == core::FaultDecision::Action::kFail) {
        ++fail_branches;
      } else {
        ++none_branches;
      }
    });
    return world;
  }

  int fail_branches = 0;
  int none_branches = 0;
};

TEST(ExplorerTest, FaultRulesBecomeEnumerableBranches) {
  FaultBranchScenario scenario;
  Explorer explorer(scenario);
  const ExploreResult result = explorer.explore();
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.stats.executions, 2u);
  EXPECT_EQ(scenario.none_branches, 1);
  EXPECT_EQ(scenario.fail_branches, 1);
}

}  // namespace
}  // namespace ethergrid::mc
