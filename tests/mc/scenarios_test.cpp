// The built-in scenarios (the three ROADMAP discipline invariants plus the
// wake-token self-test) across both event-queue implementations.
#include "mc/scenarios.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "mc/explorer.hpp"
#include "mc/trace.hpp"
#include "sim/event_queue.hpp"

namespace ethergrid::mc {
namespace {

class McScenariosTest : public ::testing::TestWithParam<sim::QueueImpl> {
 protected:
  ExplorerOptions options_for(std::uint64_t max_executions = 100000) {
    ExplorerOptions options;
    options.kernel.queue = GetParam();
    options.max_executions = max_executions;
    return options;
  }
};

TEST_P(McScenariosTest, ListsAllScenarios) {
  const std::vector<std::string> names = scenario_names();
  ASSERT_EQ(names.size(), 6u);
  for (const std::string& name : names) {
    EXPECT_NE(make_scenario(name), nullptr) << name;
  }
  EXPECT_EQ(make_scenario("no-such-scenario"), nullptr);
}

// Acceptance: exhaustive exploration of the 3-process forall sibling-abort
// script terminates and leaks nothing on any interleaving.
TEST_P(McScenariosTest, ForallAbortExploresExhaustively) {
  std::unique_ptr<Scenario> scenario = make_scenario("forall-abort");
  ASSERT_NE(scenario, nullptr);
  Explorer explorer(*scenario, options_for());
  const ExploreResult result = explorer.explore();
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? ""
                                   : result.violations.front().message);
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.stats.executions, 1u);
}

TEST_P(McScenariosTest, TryTimeoutReleasesEverything) {
  std::unique_ptr<Scenario> scenario = make_scenario("try-timeout-resource");
  ASSERT_NE(scenario, nullptr);
  Explorer explorer(*scenario, options_for());
  const ExploreResult result = explorer.explore();
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? ""
                                   : result.violations.front().message);
  EXPECT_TRUE(result.complete);
}

// Too large to close; must stay clean within a CI-sized budget.
TEST_P(McScenariosTest, CarrierSenseStaysCleanWithinBudget) {
  std::unique_ptr<Scenario> scenario = make_scenario("carrier-sense-crash");
  ASSERT_NE(scenario, nullptr);
  ExplorerOptions options = options_for(/*max_executions=*/40);
  options.max_depth = 40;
  options.max_transitions = 100000;
  Explorer explorer(*scenario, options);
  const ExploreResult result = explorer.explore();
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? ""
                                   : result.violations.front().message);
  EXPECT_GT(result.stats.executions, 1u);
}

// Acceptance: the deliberately re-introduced pre-PR-6 wake-token bug is
// caught, and the counterexample survives a serialize/parse/replay round
// trip.
TEST_P(McScenariosTest, WakeTokenSelfTestProducesReplayableCounterexample) {
  std::unique_ptr<Scenario> scenario = make_scenario("wake-token-selftest");
  ASSERT_NE(scenario, nullptr);
  Explorer explorer(*scenario, options_for());
  const ExploreResult result = explorer.explore();
  ASSERT_FALSE(result.ok());
  const Violation& v = result.violations.front();
  EXPECT_EQ(v.invariant, "queue-accounting");
  ASSERT_FALSE(v.trace.empty());

  TraceFile trace;
  trace.scenario = scenario->name();
  trace.queue = GetParam();
  trace.seed = 1;
  trace.violation = v.invariant;
  trace.decisions = v.trace;
  TraceFile reloaded;
  ASSERT_TRUE(parse_trace(format_trace(trace), &reloaded).ok());
  ASSERT_EQ(reloaded.decisions.size(), v.trace.size());

  std::unique_ptr<Scenario> replay_scenario = make_scenario(reloaded.scenario);
  ASSERT_NE(replay_scenario, nullptr);
  ExplorerOptions options;
  options.kernel.queue = reloaded.queue;
  options.seed = reloaded.seed;
  Explorer replayer(*replay_scenario, options);
  const ExploreResult replayed = replayer.replay(reloaded.decisions);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.violations.front().invariant, "queue-accounting");
}

// Acceptance: the two-shard world with a cross-shard submit racing a kill
// at a window boundary closes exhaustively and stays clean -- no
// interleaving of the mailbox delivery, the kill, and the fault branch
// may double-deliver the reply, leak a process on either shard, or drift
// either shard's wakeup accounting.
TEST_P(McScenariosTest, CrossShardWindowExploresExhaustively) {
  std::unique_ptr<Scenario> scenario = make_scenario("cross-shard-window");
  ASSERT_NE(scenario, nullptr);
  Explorer explorer(*scenario, options_for());
  const ExploreResult result = explorer.explore();
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? ""
                                   : result.violations.front().message);
  EXPECT_TRUE(result.complete);
  // The window-boundary race must actually branch: at least the fault
  // choice and one schedule choice.
  EXPECT_GT(result.stats.executions, 2u);
  EXPECT_GT(result.stats.choice_points, 0u);
}

// Acceptance: the reservation-grant/kill race closes exhaustively and
// stays clean -- whichever side of the grant-delivery instant the kill
// lands on, and whichever fault branch stalls a flow, no booking leaks,
// no fluid flow is orphaned, the book never oversubscribes mid-flight,
// and the untargeted requester completes.
TEST_P(McScenariosTest, ReservationGrantKillExploresExhaustively) {
  std::unique_ptr<Scenario> scenario = make_scenario("reservation-grant-kill");
  ASSERT_NE(scenario, nullptr);
  Explorer explorer(*scenario, options_for());
  const ExploreResult result = explorer.explore();
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? ""
                                   : result.violations.front().message);
  EXPECT_TRUE(result.complete);
  // The race must actually branch: the fault decisions plus the schedule
  // ambiguity at the t=2s grant-delivery instant.
  EXPECT_GT(result.stats.executions, 2u);
  EXPECT_GT(result.stats.choice_points, 0u);
}

TEST_P(McScenariosTest, ScriptScenarioRunsArbitrarySource) {
  std::unique_ptr<Scenario> scenario = make_script_scenario(
      "script:inline",
      "forall x in 1 2\n  sleep 1 millisecond\nend\n");
  ASSERT_NE(scenario, nullptr);
  Explorer explorer(*scenario, options_for());
  const ExploreResult result = explorer.explore();
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? ""
                                   : result.violations.front().message);
  EXPECT_TRUE(result.complete);
}

INSTANTIATE_TEST_SUITE_P(
    Queues, McScenariosTest,
    ::testing::Values(sim::QueueImpl::kWheel, sim::QueueImpl::kHeap),
    [](const ::testing::TestParamInfo<sim::QueueImpl>& info) {
      return std::string(sim::queue_impl_name(info.param));
    });

}  // namespace
}  // namespace ethergrid::mc
