// Unit coverage for the trace exporter and the ObserverSet composition:
// JSON helpers, span-id allocation, fan-out order, and the Chrome
// trace-event serialization contract Perfetto relies on.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/observer.hpp"

namespace ethergrid::obs {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("wget http://host/file"), "wget http://host/file");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndWhitespace) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line1\nline2\ttab\rcr"),
            "line1\\nline2\\ttab\\rcr");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(JsonNumberTest, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(json_number(0), "0");
  EXPECT_EQ(json_number(42), "42");
  EXPECT_EQ(json_number(-3), "-3");
  EXPECT_EQ(json_number(1e6), "1000000");
}

TEST(JsonNumberTest, FractionsTrimTrailingZeros) {
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(0.25), "0.25");
  EXPECT_EQ(json_number(1.0 / 3.0), "0.333333");
}

TEST(JsonNumberTest, NonFiniteValuesSerializeAsZero) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "0");
}

// ---- ObserverSet ----

struct RecordingObserver final : Observer {
  std::vector<std::string> calls;
  std::string tag;
  std::vector<std::string>* shared = nullptr;

  void on_span_begin(const Span& span) override {
    calls.push_back("begin:" + std::string(span.name));
    if (shared) shared->push_back(tag + ".begin");
  }
  void on_span_end(const Span& span) override {
    calls.push_back("end:" + std::string(span.name));
  }
  void on_event(const ObsEvent& event) override {
    calls.push_back("event:" + std::string(site_name(event.site)));
  }
  void on_output(StreamKind stream, std::string_view text) override {
    calls.push_back((stream == StreamKind::kStdout ? "out:" : "err:") +
                    std::string(text));
  }
  void on_log(const ObsLogLine& line) override {
    calls.push_back("log:" + line.message);
  }
};

TEST(ObserverSetTest, AssignsSequentialSpanIds) {
  ObserverSet set;
  Span a, b, c;
  EXPECT_EQ(set.begin_span(a), 1u);
  EXPECT_EQ(set.begin_span(b), 2u);
  EXPECT_EQ(set.begin_span(c), 3u);
  EXPECT_EQ(a.id, 1u);
  EXPECT_EQ(c.id, 3u);
}

TEST(ObserverSetTest, FansOutEveryCallbackInRegistrationOrder) {
  ObserverSet set;
  std::vector<std::string> order;
  RecordingObserver first, second;
  first.tag = "first";
  first.shared = &order;
  second.tag = "second";
  second.shared = &order;
  set.add(&first);
  set.add(&second);

  Span span;
  span.name = "s";
  set.begin_span(span);
  set.end_span(span);
  ObsEvent event;
  event.site = intern_site("site");
  set.on_event(event);
  set.on_output(StreamKind::kStdout, "x");
  ObsLogLine line;
  line.message = "m";
  set.on_log(line);

  const std::vector<std::string> expected = {"begin:s", "end:s", "event:site",
                                             "out:x", "log:m"};
  EXPECT_EQ(first.calls, expected);
  EXPECT_EQ(second.calls, expected);
  const std::vector<std::string> expected_order = {"first.begin",
                                                   "second.begin"};
  EXPECT_EQ(order, expected_order);
}

TEST(ObserverSetTest, RemoveStopsDelivery) {
  ObserverSet set;
  RecordingObserver obs;
  set.add(&obs);
  EXPECT_FALSE(set.empty());
  set.remove(&obs);
  EXPECT_TRUE(set.empty());
  ObsEvent event;
  set.on_event(event);
  EXPECT_TRUE(obs.calls.empty());
}

// ---- TraceRecorder ----

Span make_span() {
  Span span;
  span.id = 7;
  span.parent = 3;
  span.kind = SpanKind::kCommand;
  span.name = "wget mirror";
  span.line = 12;
  span.track = 0;
  span.start = TimePoint{} + msec(1500);
  span.end = TimePoint{} + msec(2250);
  span.status = Status::success();
  return span;
}

TEST(TraceRecorderTest, CompleteEventCarriesSpanFields) {
  TraceRecorder recorder("unit");
  recorder.on_span_begin(make_span());
  recorder.on_span_end(make_span());
  EXPECT_EQ(recorder.span_count(), 1u);
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"command: wget mirror\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos);  // microseconds
  EXPECT_NE(json.find("\"dur\":750000"), std::string::npos);
  EXPECT_NE(json.find("\"span\":7"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":3"), std::string::npos);
  EXPECT_NE(json.find("\"line\":12"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"OK\""), std::string::npos);
}

TEST(TraceRecorderTest, FailedSpanCarriesErrorMessage) {
  TraceRecorder recorder;
  Span span = make_span();
  span.status = Status::timeout("deadline blown");
  recorder.on_span_end(span);
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("\"status\":\"TIMEOUT\""), std::string::npos);
  EXPECT_NE(json.find("\"error\":\"deadline blown\""), std::string::npos);
}

TEST(TraceRecorderTest, InstantEventAndProcessMetadata) {
  TraceRecorder recorder("gridsim");
  ObsEvent event;
  event.kind = ObsEvent::Kind::kCollision;
  event.time = TimePoint{} + sec(3);
  event.span = 9;
  event.site = intern_site("schedd.submit");
  event.value = 2.5;
  recorder.on_event(event);
  EXPECT_EQ(recorder.event_count(), 1u);
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"collision: schedd.submit\""),
            std::string::npos);
  EXPECT_NE(json.find("\"value\":2.5"), std::string::npos);
  // Perfetto process row named after the recorder's process_name.
  EXPECT_NE(json.find("\"args\":{\"name\":\"gridsim\"}"), std::string::npos);
}

TEST(TraceRecorderTest, TracksRenderAsNamedLanes) {
  TraceRecorder recorder;
  Span span = make_span();
  span.track = 2;
  recorder.on_span_end(span);
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("\"name\":\"lane 2\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(TraceRecorderTest, SameFeedProducesIdenticalBytes) {
  TraceRecorder a("x"), b("x");
  for (TraceRecorder* r : {&a, &b}) {
    r->on_span_end(make_span());
    ObsEvent event;
    event.kind = ObsEvent::Kind::kBackoff;
    event.value = 0.75;
    r->on_event(event);
  }
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(TraceRecorderTest, WriteFileRoundTrips) {
  TraceRecorder recorder("file");
  recorder.on_span_end(make_span());
  const std::string path =
      ::testing::TempDir() + "/ethergrid_trace_test.json";
  ASSERT_TRUE(recorder.write_file(path).ok());
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), recorder.to_json());
}

TEST(TraceRecorderTest, WriteFileReportsUnwritablePath) {
  TraceRecorder recorder;
  Status s = recorder.write_file("/no/such/dir/trace.json");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace ethergrid::obs
