// Unit coverage for the metrics registry: histogram bucketing, the span
// and event derivations, and the deterministic flat-JSON export that
// bench/report embeds.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/observer.hpp"

namespace ethergrid::obs {
namespace {

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(HistogramTest, TracksAggregates) {
  Histogram h;
  h.record(1);
  h.record(2);
  h.record(4);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 7);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 4);
  EXPECT_NEAR(h.mean(), 7.0 / 3.0, 1e-9);
}

TEST(HistogramTest, QuantilesStayWithinObservedRange) {
  Histogram h;
  h.record(0.02);
  h.record(0.5);
  h.record(30);
  h.record(120);  // decade-spanning, like backoff delays
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GE(h.quantile(q), h.min()) << q;
    EXPECT_LE(h.quantile(q), h.max()) << q;
  }
  EXPECT_EQ(h.quantile(1.0), 120);
}

TEST(HistogramTest, JsonCarriesSummaryFields) {
  Histogram h;
  h.record(2);
  h.record(2);
  const std::string json = h.to_json();
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":4"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
}

TEST(MetricsRegistryTest, ManualCountersAndSamplesMaterialize) {
  MetricsRegistry registry;
  registry.add("jobs.submitted");
  registry.add("jobs.submitted", 2);
  registry.record("queue_depth", 5);
  EXPECT_EQ(registry.counter("jobs.submitted"), 3);
  EXPECT_EQ(registry.counter("never.bumped"), 0);
  ASSERT_NE(registry.histogram("queue_depth"), nullptr);
  EXPECT_EQ(registry.histogram("queue_depth")->count(), 1u);
  EXPECT_EQ(registry.histogram("never.recorded"), nullptr);
}

Span command_span(Status status) {
  Span span;
  span.kind = SpanKind::kCommand;
  span.start = TimePoint{} + sec(1);
  span.end = TimePoint{} + sec(3);
  span.status = status;
  return span;
}

TEST(MetricsRegistryTest, DerivesCommandMetricsFromSpans) {
  MetricsRegistry registry;
  registry.on_span_end(command_span(Status::success()));
  registry.on_span_end(command_span(Status::failure("nope")));
  EXPECT_EQ(registry.counter("spans.command"), 2);
  EXPECT_EQ(registry.counter("spans.command.failed"), 1);
  EXPECT_EQ(registry.counter("commands.attempts"), 2);
  // Durations are recorded in native microseconds: a virtual-time command
  // lasting whole seconds must yield a nonzero sum (the old seconds-based
  // histogram rounded sim-scale durations to an all-zeros distribution).
  ASSERT_NE(registry.histogram("command_duration_us"), nullptr);
  EXPECT_EQ(registry.histogram("command_duration_us")->count(), 2u);
  EXPECT_EQ(registry.histogram("command_duration_us")->max(), 2e6);
  EXPECT_EQ(registry.histogram("command_duration_us")->sum(), 4e6);
}

TEST(MetricsRegistryTest, DerivesTryAndForallHistograms) {
  MetricsRegistry registry;
  Span try_span;
  try_span.kind = SpanKind::kTry;
  try_span.attempts = 3;
  try_span.backoff = sec(7);
  try_span.status = Status::success();
  registry.on_span_end(try_span);
  Span forall_span;
  forall_span.kind = SpanKind::kForall;
  forall_span.attempts = 4;  // branch count rides the attempts field
  registry.on_span_end(forall_span);

  ASSERT_NE(registry.histogram("try_attempts"), nullptr);
  EXPECT_EQ(registry.histogram("try_attempts")->max(), 3);
  ASSERT_NE(registry.histogram("try_backoff_total_s"), nullptr);
  EXPECT_EQ(registry.histogram("try_backoff_total_s")->max(), 7);
  ASSERT_NE(registry.histogram("forall_branches"), nullptr);
  EXPECT_EQ(registry.histogram("forall_branches")->max(), 4);
}

TEST(MetricsRegistryTest, DerivesEventMetrics) {
  MetricsRegistry registry;
  ObsEvent event;
  event.kind = ObsEvent::Kind::kBackoff;
  event.value = 0.5;
  registry.on_event(event);
  event.kind = ObsEvent::Kind::kOccupancy;
  event.value = 3;
  registry.on_event(event);
  event.kind = ObsEvent::Kind::kKill;
  event.value = 0.2;
  registry.on_event(event);
  event.kind = ObsEvent::Kind::kCarrierSense;
  event.value = 0;  // deferred
  registry.on_event(event);
  event.value = 1;  // clear
  registry.on_event(event);

  EXPECT_EQ(registry.counter("events.backoff"), 1);
  EXPECT_EQ(registry.counter("events.carrier-sense"), 2);
  EXPECT_EQ(registry.counter("events.carrier-sense.deferred"), 1);
  ASSERT_NE(registry.histogram("backoff_delay_s"), nullptr);
  EXPECT_EQ(registry.histogram("backoff_delay_s")->max(), 0.5);
  ASSERT_NE(registry.histogram("forall_occupancy"), nullptr);
  EXPECT_EQ(registry.histogram("forall_occupancy")->max(), 3);
  ASSERT_NE(registry.histogram("kill_latency_s"), nullptr);
  EXPECT_EQ(registry.histogram("kill_latency_s")->max(), 0.2);
}

TEST(MetricsRegistryTest, JsonIsSortedAndDeterministic) {
  MetricsRegistry a, b;
  for (MetricsRegistry* r : {&a, &b}) {
    // Insert in non-sorted order; the export sorts by name.
    r->add("zeta");
    r->add("alpha", 2);
    r->record("late_hist", 1);
    r->record("early_hist", 9);
  }
  const std::string json = a.to_json();
  EXPECT_EQ(json, b.to_json());
  EXPECT_LT(json.find("\"counters\""), json.find("\"histograms\""));
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_LT(json.find("\"early_hist\""), json.find("\"late_hist\""));
  EXPECT_NE(json.find("\"alpha\":2"), std::string::npos);
}

}  // namespace
}  // namespace ethergrid::obs
