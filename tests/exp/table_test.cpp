#include "exp/table.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

namespace ethergrid::exp {
namespace {

TEST(TableTest, CellFormatting) {
  EXPECT_EQ(Table::cell(std::int64_t(42)), "42");
  EXPECT_EQ(Table::cell(-1), "-1");
  EXPECT_EQ(Table::cell(2.5), "2.5");
  EXPECT_EQ(Table::cell(1e6), "1e+06");
}

TEST(TableTest, RowsPadToColumnCount) {
  Table t("Test", {"a", "b", "c"});
  t.add_row({"1"});  // short row padded with empties
  EXPECT_EQ(t.row_count(), 1u);
  t.print();  // must not crash
}

TEST(TableTest, CsvWrittenWhenEnvSet) {
  const std::string dir = ::testing::TempDir();
  setenv("ETHERGRID_CSV_DIR", dir.c_str(), 1);
  Table t("My Fancy Table (v2)", {"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  t.print();
  unsetenv("ETHERGRID_CSV_DIR");

  std::ifstream csv(dir + "/my_fancy_table_v2.csv");
  ASSERT_TRUE(csv.good());
  std::string line;
  std::getline(csv, line);
  EXPECT_EQ(line, "x,y");
  std::getline(csv, line);
  EXPECT_EQ(line, "1,2");
  std::getline(csv, line);
  EXPECT_EQ(line, "3,4");
}

TEST(TableTest, NoCsvWithoutEnv) {
  unsetenv("ETHERGRID_CSV_DIR");
  Table t("Ephemeral", {"x"});
  t.add_row({"1"});
  t.print();  // should only touch stdout
}

}  // namespace
}  // namespace ethergrid::exp
