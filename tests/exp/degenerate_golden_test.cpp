// Differential pin: the binary (degenerate) capacity model must reproduce
// the pre-substrate-refactor seed behavior bit-for-bit.  The rows below
// were captured from the last enum-era build (PR 8 tree) by running the
// exact configurations in this file; every stat AND the FNV-1a hash of the
// fault audit text must match, across the chaos seeds {1, 7, 42}.
//
// If this test fails, the refactor changed the op sequence somewhere --
// an extra sleep, a reordered RNG draw, a renamed fault site -- and the
// repo's replay guarantee ("same (seed, plan) -> same run") is broken
// across releases.  Do NOT regenerate these rows to make the test pass
// unless the release notes declare a compatibility break; set
// ETHERGRID_GOLDEN_PRINT=1 to print the current rows for that case.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/scenarios.hpp"
#include "sim/fault_plan.hpp"

namespace ethergrid::exp {
namespace {

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

struct GoldenRow {
  const char* scenario;  // "buffer" | "reader"
  const char* kind;
  std::uint64_t seed;
  std::int64_t a, b, c, d, e, f, g;
  std::uint64_t kernel_events;
  std::uint64_t audit_fnv;
};

// Captured from the pre-refactor build; see the header comment.
constexpr GoldenRow kGolden[] = {
    {"buffer", "fixed", 1, 254, 130457353, 1303, 0, 492, 0, 800, 27719,
     0xa40a8ae341a0d4feull},
    {"buffer", "ethernet", 1, 223, 112412334, 250, 27, 223, 0, 296, 8034,
     0x226731f780cff0a6ull},
    {"reader", "aloha", 1, 32, 0, 7, 0, 0, 0, 8, 117, 0x4ee02673d0b1d6abull},
    {"reader", "ethernet", 1, 42, 0, 0, 45, 0, 0, 15, 317,
     0x68d50a9b3fff4547ull},
    {"buffer", "fixed", 7, 259, 136455278, 1223, 0, 485, 0, 855, 27417,
     0x801a3f0db2d0a0c4ull},
    {"buffer", "ethernet", 7, 241, 123144582, 271, 35, 242, 0, 334, 8634,
     0xdd223e7104e2c7b8ull},
    {"reader", "aloha", 7, 23, 0, 9, 0, 0, 0, 6, 90, 0xeb4a3bb8803de4d0ull},
    {"reader", "ethernet", 7, 41, 0, 0, 41, 0, 0, 13, 296,
     0x5b1ac8b554543133ull},
    {"buffer", "fixed", 42, 259, 128321401, 1296, 0, 509, 0, 771, 27860,
     0x8ffcb2d45ce5907cull},
    {"buffer", "ethernet", 42, 362, 176837680, 355, 41, 420, 0, 426, 14162,
     0x2f11b386fd610652ull},
    {"reader", "aloha", 42, 30, 0, 7, 0, 0, 0, 6, 108,
     0x04c1cf3a51fd6c80ull},
    {"reader", "ethernet", 42, 44, 0, 0, 53, 0, 0, 8, 308,
     0x3e050e732873e206ull},
};

GoldenRow run_buffer(std::uint64_t seed, const char* kind) {
  BufferScenarioConfig config;
  config.seed = seed;
  EXPECT_TRUE(sim::FaultPlan::parse(
                  "iochannel.write:reset@0.05;fsbuffer.append:fail@0.02",
                  &config.faults)
                  .ok());
  BufferSweepPoint point = run_buffer_point(config, kind, 10, sec(240));
  GoldenRow row{};
  row.scenario = "buffer";
  row.kind = kind;
  row.seed = seed;
  row.a = point.files_consumed;
  row.b = point.bytes_consumed;
  row.c = point.collisions;
  row.d = point.deferrals;
  row.e = point.files_completed;
  row.f = point.tries_failed;
  row.g = point.faults_injected;
  row.kernel_events = point.kernel_events;
  row.audit_fnv = fnv1a64(point.fault_audit);
  return row;
}

GoldenRow run_reader(std::uint64_t seed, const char* kind) {
  ReaderScenarioConfig config;
  config.seed = seed;
  config.servers = ReaderScenarioConfig::paper_farm();
  EXPECT_TRUE(sim::FaultPlan::parse(
                  "fileserver.*.fetch:reset@0.15;fileserver.yyy.flag:fail@0.1",
                  &config.faults)
                  .ok());
  ReaderTimeline timeline = run_reader_timeline(config, kind, sec(300),
                                                sec(30));
  GoldenRow row{};
  row.scenario = "reader";
  row.kind = kind;
  row.seed = seed;
  row.a = timeline.transfers_total;
  row.b = 0;
  row.c = timeline.collisions_total;
  row.d = timeline.deferrals_total;
  row.e = 0;
  row.f = 0;
  row.g = timeline.faults_injected;
  row.kernel_events = timeline.kernel_events;
  row.audit_fnv = fnv1a64(timeline.fault_audit);
  return row;
}

void expect_matches(const GoldenRow& want, const GoldenRow& got) {
  const std::string label = std::string(want.scenario) + "/" + want.kind +
                            "/seed=" + std::to_string(want.seed);
  EXPECT_EQ(got.a, want.a) << label;
  EXPECT_EQ(got.b, want.b) << label;
  EXPECT_EQ(got.c, want.c) << label;
  EXPECT_EQ(got.d, want.d) << label;
  EXPECT_EQ(got.e, want.e) << label;
  EXPECT_EQ(got.f, want.f) << label;
  EXPECT_EQ(got.g, want.g) << label;
  EXPECT_EQ(got.kernel_events, want.kernel_events) << label;
  EXPECT_EQ(got.audit_fnv, want.audit_fnv) << label << " (fault audit bytes)";
  if (std::getenv("ETHERGRID_GOLDEN_PRINT")) {
    std::printf("    {\"%s\", \"%s\", %llu, %lld, %lld, %lld, %lld, %lld, "
                "%lld, %lld, %llu, 0x%016llxull},\n",
                got.scenario, got.kind,
                static_cast<unsigned long long>(got.seed),
                static_cast<long long>(got.a), static_cast<long long>(got.b),
                static_cast<long long>(got.c), static_cast<long long>(got.d),
                static_cast<long long>(got.e), static_cast<long long>(got.f),
                static_cast<long long>(got.g),
                static_cast<unsigned long long>(got.kernel_events),
                static_cast<unsigned long long>(got.audit_fnv));
  }
}

TEST(DegenerateGoldenTest, BinaryModelReproducesPreRefactorRuns) {
  for (const GoldenRow& want : kGolden) {
    const GoldenRow got = std::string(want.scenario) == "buffer"
                              ? run_buffer(want.seed, want.kind)
                              : run_reader(want.seed, want.kind);
    expect_matches(want, got);
  }
}

// The degenerate check the other direction: explicitly constructing the
// substrates in fluid mode must CHANGE contention behavior (otherwise the
// fluid port is a no-op and the golden pin proves nothing).
TEST(DegenerateGoldenTest, FluidModeDivergesFromBinaryUnderContention) {
  BufferScenarioConfig binary;
  binary.seed = 42;
  BufferSweepPoint binary_point = run_buffer_point(binary, "fixed", 10,
                                                   sec(240));

  BufferScenarioConfig fluid = binary;
  fluid.channel.model = grid::CapacityModel::kFluid;
  BufferSweepPoint fluid_point = run_buffer_point(fluid, "fixed", 10,
                                                  sec(240));

  EXPECT_NE(binary_point.kernel_events, fluid_point.kernel_events);
}

}  // namespace
}  // namespace ethergrid::exp
