// Harness-level tests: the scenario runners are what every figure bench
// trusts, so pin down their determinism and the core shape properties at
// reduced scale (fast enough for the unit suite).
#include "exp/scenarios.hpp"

#include <gtest/gtest.h>

namespace ethergrid::exp {
namespace {

TEST(SubmitScaleTest, DeterministicForSameSeed) {
  SubmitScenarioConfig config;
  auto a = run_submit_scale_point(config, "aloha", 60,
                                  minutes(2));
  auto b = run_submit_scale_point(config, "aloha", 60,
                                  minutes(2));
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.schedd_crashes, b.schedd_crashes);
  EXPECT_EQ(a.fd_low_watermark, b.fd_low_watermark);
}

TEST(SubmitScaleTest, SeedChangesRun) {
  SubmitScenarioConfig a_config;
  SubmitScenarioConfig b_config;
  b_config.seed = 43;
  auto a = run_submit_scale_point(a_config, "aloha", 60,
                                  minutes(2));
  auto b = run_submit_scale_point(b_config, "aloha", 60,
                                  minutes(2));
  // Different seeds shuffle service times; totals should differ (not a hard
  // guarantee, but with 60 clients over 2 minutes a tie is implausible --
  // and determinism above already covers the converse).
  EXPECT_NE(a.jobs_submitted, b.jobs_submitted);
}

TEST(SubmitScaleTest, UncontendedDisciplinesAreEquivalent) {
  SubmitScenarioConfig config;
  auto fixed = run_submit_scale_point(config, "fixed",
                                      20, minutes(2));
  auto aloha = run_submit_scale_point(config, "aloha",
                                      20, minutes(2));
  // With no contention there are no failures, hence no backoff: identical.
  EXPECT_EQ(fixed.jobs_submitted, aloha.jobs_submitted);
  EXPECT_EQ(fixed.schedd_crashes, 0);
}

TEST(SubmitScaleTest, OverloadOrderingHolds) {
  // The figure-1 property at the collapse point, at full scale but a
  // shorter window to stay fast.
  SubmitScenarioConfig config;
  auto fixed = run_submit_scale_point(config, "fixed",
                                      460, minutes(3));
  auto aloha = run_submit_scale_point(config, "aloha",
                                      460, minutes(3));
  auto ether = run_submit_scale_point(
      config, "ethernet", 460, minutes(3));
  EXPECT_GT(ether.jobs_submitted, aloha.jobs_submitted);
  EXPECT_GT(aloha.jobs_submitted, fixed.jobs_submitted);
  EXPECT_GT(fixed.schedd_crashes, ether.schedd_crashes);
}

TEST(SubmitterTimelineTest, SamplesCoverWindow) {
  SubmitScenarioConfig config;
  auto timeline = run_submitter_timeline(
      config, "aloha", 30, minutes(2), sec(10));
  ASSERT_EQ(timeline.points.size(), 13u);  // 0..120 s inclusive
  EXPECT_DOUBLE_EQ(timeline.points.front().t_seconds, 0.0);
  EXPECT_DOUBLE_EQ(timeline.points.back().t_seconds, 120.0);
  // Cumulative jobs are monotone.
  for (std::size_t i = 1; i < timeline.points.size(); ++i) {
    EXPECT_GE(timeline.points[i].jobs_submitted,
              timeline.points[i - 1].jobs_submitted);
  }
  EXPECT_EQ(timeline.points.back().jobs_submitted,
            double(timeline.jobs_total));
}

TEST(BufferPointTest, DeterministicAndConsistentAcrossFigures) {
  // Figures 4 and 5 are two views of the same sweep: same config + seed
  // must give byte-identical results.
  BufferScenarioConfig config;
  auto a = run_buffer_point(config, "ethernet", 10,
                            sec(120));
  auto b = run_buffer_point(config, "ethernet", 10,
                            sec(120));
  EXPECT_EQ(a.files_consumed, b.files_consumed);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.deferrals, b.deferrals);
  EXPECT_EQ(a.bytes_consumed, b.bytes_consumed);
}

TEST(BufferPointTest, FixedFloodsCollisions) {
  BufferScenarioConfig config;
  auto fixed =
      run_buffer_point(config, "fixed", 15, sec(180));
  auto ether = run_buffer_point(config, "ethernet", 15,
                                sec(180));
  EXPECT_GT(fixed.collisions, 5 * std::max<std::int64_t>(ether.collisions, 1));
  EXPECT_GT(ether.files_consumed, fixed.files_consumed);
}

TEST(ReaderTimelineTest, PaperFarmHasOneBlackHole) {
  auto farm = ReaderScenarioConfig::paper_farm();
  ASSERT_EQ(farm.size(), 3u);
  int holes = 0;
  for (const auto& s : farm) holes += s.black_hole ? 1 : 0;
  EXPECT_EQ(holes, 1);
}

TEST(ReaderTimelineTest, EthernetAvoidsCollisions) {
  ReaderScenarioConfig config;
  auto ether = run_reader_timeline(config, "ethernet",
                                   sec(300), sec(30));
  auto aloha = run_reader_timeline(config, "aloha",
                                   sec(300), sec(30));
  EXPECT_EQ(ether.collisions_total, 0);
  EXPECT_GT(ether.deferrals_total, 0);
  EXPECT_GT(aloha.collisions_total, 0);
  EXPECT_GE(ether.transfers_total, aloha.transfers_total);
}

TEST(ReaderTimelineTest, CumulativeSeriesMonotone) {
  ReaderScenarioConfig config;
  auto timeline = run_reader_timeline(config, "aloha",
                                      sec(300), sec(30));
  for (std::size_t i = 1; i < timeline.points.size(); ++i) {
    EXPECT_GE(timeline.points[i].transfers, timeline.points[i - 1].transfers);
    EXPECT_GE(timeline.points[i].collisions,
              timeline.points[i - 1].collisions);
  }
}

}  // namespace
}  // namespace ethergrid::exp
