// Figure-shape smoke tests: miniature versions of every figure's claim,
// runnable in ctest.  The bench binaries print the full series; these tests
// guard the *shapes* (who wins, who collapses, which mechanisms fire) so a
// regression in any substrate or discipline fails CI, not just a human
// reading bench output.
#include <gtest/gtest.h>

#include "exp/scenarios.hpp"

namespace ethergrid::exp {
namespace {

// -------- Figure 1: collapse and ordering at the critical point ---------

TEST(FigureSmokeTest, Fig1_FixedCollapsesAboveCritical) {
  SubmitScenarioConfig config;
  auto below = run_submit_scale_point(config, "fixed",
                                      100, minutes(2));
  auto above = run_submit_scale_point(config, "fixed",
                                      460, minutes(2));
  EXPECT_GT(below.jobs_submitted, 100);
  EXPECT_LT(above.jobs_submitted, below.jobs_submitted / 4);
  EXPECT_GT(above.schedd_crashes, 0);
}

TEST(FigureSmokeTest, Fig1_OrderingUnderOverload) {
  SubmitScenarioConfig config;
  auto fixed = run_submit_scale_point(config, "fixed",
                                      460, minutes(2));
  auto aloha = run_submit_scale_point(config, "aloha",
                                      460, minutes(2));
  auto ether = run_submit_scale_point(
      config, "ethernet", 460, minutes(2));
  EXPECT_GT(ether.jobs_submitted, aloha.jobs_submitted);
  EXPECT_GE(aloha.jobs_submitted, fixed.jobs_submitted);
}

// -------- Figures 2-3: the timeline mechanisms --------------------------

TEST(FigureSmokeTest, Fig2_AlohaBroadcastJamSpikes) {
  SubmitScenarioConfig config;
  auto timeline = run_submitter_timeline(
      config, "aloha", 420, sec(420), sec(10));
  EXPECT_GT(timeline.schedd_crashes, 0);
  // Available FDs must both crater and spike back up (the jam).
  double min_fds = 1e18, max_recovery = 0, prev = 8192;
  for (const auto& p : timeline.points) {
    min_fds = std::min(min_fds, p.available_fds);
    max_recovery = std::max(max_recovery, p.available_fds - prev);
    prev = p.available_fds;
  }
  EXPECT_LT(min_fds, 500);
  EXPECT_GT(max_recovery, 1000);
}

TEST(FigureSmokeTest, Fig3_EthernetHoldsThresholdFloor) {
  SubmitScenarioConfig config;
  auto timeline = run_submitter_timeline(
      config, "ethernet", 420, sec(420), sec(10));
  EXPECT_LE(timeline.schedd_crashes, 1);  // at most the t=0 stampede
  double steady_min = 1e18;
  for (const auto& p : timeline.points) {
    if (p.t_seconds < 120) continue;
    steady_min = std::min(steady_min, p.available_fds);
  }
  EXPECT_GT(steady_min, 200);  // never exhausted after the transient
  EXPECT_GT(timeline.jobs_total, 200);
}

// -------- Figures 4-5: buffer collapse and collision ordering -----------

TEST(FigureSmokeTest, Fig4_FixedThroughputCollapsesWithProducers) {
  BufferScenarioConfig config;
  auto few = run_buffer_point(config, "fixed", 5,
                              sec(240));
  auto many = run_buffer_point(config, "fixed", 45,
                               sec(240));
  EXPECT_LT(many.files_consumed, few.files_consumed);
}

TEST(FigureSmokeTest, Fig4_EthernetHoldsUnderProducerPressure) {
  BufferScenarioConfig config;
  auto fixed = run_buffer_point(config, "fixed", 45,
                                sec(240));
  auto ether = run_buffer_point(config, "ethernet", 45,
                                sec(240));
  EXPECT_GT(ether.files_consumed, 2 * fixed.files_consumed);
}

TEST(FigureSmokeTest, Fig5_CollisionOrdering) {
  BufferScenarioConfig config;
  auto fixed = run_buffer_point(config, "fixed", 30,
                                sec(240));
  auto aloha = run_buffer_point(config, "aloha", 30,
                                sec(240));
  auto ether = run_buffer_point(config, "ethernet", 30,
                                sec(240));
  EXPECT_GT(fixed.collisions, 3 * std::max<std::int64_t>(aloha.collisions, 1));
  EXPECT_GT(aloha.collisions, ether.collisions);
}

// -------- Figures 6-7: the black hole ------------------------------------

TEST(FigureSmokeTest, Fig6_AlohaPaysStalls) {
  ReaderScenarioConfig config;
  auto timeline = run_reader_timeline(config, "aloha",
                                      sec(450), sec(30));
  EXPECT_GT(timeline.transfers_total, 5);
  EXPECT_GT(timeline.collisions_total, 0);
}

TEST(FigureSmokeTest, Fig7_EthernetAvoidsStallsAndWins) {
  ReaderScenarioConfig config;
  auto aloha = run_reader_timeline(config, "aloha",
                                   sec(450), sec(30));
  auto ether = run_reader_timeline(config, "ethernet",
                                   sec(450), sec(30));
  EXPECT_EQ(ether.collisions_total, 0);
  EXPECT_GT(ether.deferrals_total, 0);
  EXPECT_GT(ether.transfers_total, aloha.transfers_total);
}

}  // namespace
}  // namespace ethergrid::exp
