#include <gtest/gtest.h>

#include <string>

#include "exp/scenarios.hpp"

namespace ethergrid::exp {
namespace {

BulkScenarioConfig small_world() {
  BulkScenarioConfig config;
  config.link_bps = 1.0 * 1024 * 1024;
  config.sender.file_bytes = 4 << 20;
  return config;
}

TEST(BulkScenarioTest, DeterministicInSeed) {
  const BulkScenarioConfig config = small_world();
  const BulkSweepPoint a = run_bulk_point(config, "ethernet", 6, sec(300));
  const BulkSweepPoint b = run_bulk_point(config, "ethernet", 6, sec(300));
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.kernel_events, b.kernel_events);
  EXPECT_EQ(a.per_sender_bytes, b.per_sender_bytes);

  BulkScenarioConfig other = config;
  other.seed = 7;
  const BulkSweepPoint c = run_bulk_point(other, "ethernet", 6, sec(300));
  EXPECT_NE(a.kernel_events, c.kernel_events);
}

TEST(BulkScenarioTest, AllDisciplinesMoveBytes) {
  const BulkScenarioConfig config = small_world();
  for (const char* discipline :
       {"fixed", "aloha", "ethernet", "reservation"}) {
    const BulkSweepPoint point = run_bulk_point(config, discipline, 4,
                                                sec(300));
    EXPECT_GT(point.bytes_sent, 0) << discipline;
    EXPECT_EQ(point.discipline, discipline);
    EXPECT_EQ(point.per_sender_bytes.size(), 4u) << discipline;
    EXPECT_GT(point.jain_fairness, 0.0) << discipline;
    EXPECT_LE(point.jain_fairness, 1.0 + 1e-12) << discipline;
  }
}

TEST(BulkScenarioTest, ReservationNegotiatesGrants) {
  const BulkSweepPoint point =
      run_bulk_point(small_world(), "reservation", 6, sec(300));
  EXPECT_GT(point.grants, 0);
  // Every granted window is exclusive arithmetic, not contention: with the
  // book pacing admissions there are no starved-stream timeouts.
  EXPECT_EQ(point.attempt_timeouts, 0);
}

// The figure-8 claim, in miniature: under saturating load, Reservation
// matches-or-beats Ethernet on goodput and is at least as fair.  The full
// gate (larger world, CI baseline) lives in bench/fig8_bulk_transfer.
TEST(BulkScenarioTest, ReservationBeatsEthernetUnderSaturation) {
  BulkScenarioConfig config = small_world();
  const int senders = 10;  // heavily oversubscribed link
  const BulkSweepPoint ethernet =
      run_bulk_point(config, "ethernet", senders, sec(600));
  const BulkSweepPoint reservation =
      run_bulk_point(config, "reservation", senders, sec(600));
  EXPECT_GE(reservation.goodput_bps, ethernet.goodput_bps);
  EXPECT_GE(reservation.jain_fairness, ethernet.jain_fairness);
}

TEST(BulkScenarioTest, FaultPlanInjectsAndAudits) {
  BulkScenarioConfig config = small_world();
  ASSERT_TRUE(
      sim::FaultPlan::parse("bulk.write:fail@0.2", &config.faults).ok());
  const BulkSweepPoint point = run_bulk_point(config, "aloha", 4, sec(300));
  EXPECT_GT(point.faults_injected, 0);
  EXPECT_FALSE(point.fault_audit.empty());
  const BulkSweepPoint replay = run_bulk_point(config, "aloha", 4, sec(300));
  EXPECT_EQ(point.fault_audit, replay.fault_audit);
}

}  // namespace
}  // namespace ethergrid::exp
