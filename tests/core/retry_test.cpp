// run_try semantics over virtual time.
#include "core/retry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/sim_clock.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::core {
namespace {

using sim::Context;
using sim::Kernel;

// Runs `body` inside a fresh simulated process and returns after the kernel
// drains.  Shared harness for all core-over-sim tests.
void run_in_sim(const std::function<void(Context&, SimClock&, Rng&)>& body,
                std::uint64_t seed = 1) {
  Kernel kernel(seed);
  kernel.spawn("test", [&](Context& ctx) {
    SimClock clock(ctx);
    Rng rng = ctx.rng();
    body(ctx, clock, rng);
  });
  kernel.run();
}

TEST(RunTryTest, SucceedsFirstAttempt) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    int calls = 0;
    Status s = run_try(clock, rng, TryOptions::times(5), [&](TimePoint) {
      ++calls;
      return Status::success();
    });
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(clock.now(), kEpoch);  // no backoff needed
  });
}

TEST(RunTryTest, RetriesUntilSuccess) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    int calls = 0;
    Status s = run_try(clock, rng, TryOptions::times(10), [&](TimePoint) {
      ++calls;
      return calls < 4 ? Status::failure("flaky") : Status::success();
    });
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(calls, 4);
    // 3 failures => delays of ~1,2,4 (x jitter in [1,2)): total in [7,14).
    EXPECT_GE(clock.now(), kEpoch + sec(7));
    EXPECT_LT(clock.now(), kEpoch + sec(14));
  });
}

TEST(RunTryTest, AttemptBudgetExhaustedReturnsLastFailure) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    int calls = 0;
    TryMetrics metrics;
    TryOptions options = TryOptions::times(3);
    options.metrics = &metrics;
    Status s = run_try(clock, rng, options, [&](TimePoint) {
      ++calls;
      return Status::failure("always #" + std::to_string(calls));
    });
    EXPECT_TRUE(s.failed());
    EXPECT_EQ(s.message(), "always #3");
    EXPECT_EQ(calls, 3);
    EXPECT_TRUE(metrics.attempts_exhausted);
    EXPECT_FALSE(metrics.timed_out);
    EXPECT_EQ(metrics.attempts, 3);
    EXPECT_EQ(metrics.failures, 3);
  });
}

TEST(RunTryTest, TimeBudgetExpiresBetweenAttempts) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    TryMetrics metrics;
    TryOptions options = TryOptions::for_time(sec(10));
    options.metrics = &metrics;
    Status s = run_try(clock, rng, options, [&](TimePoint) {
      return Status::failure("nope");
    });
    EXPECT_EQ(s.code(), StatusCode::kTimeout);
    EXPECT_TRUE(metrics.timed_out);
    EXPECT_EQ(clock.now(), kEpoch + sec(10));  // exactly at the budget
    EXPECT_GE(metrics.attempts, 2);
  });
}

TEST(RunTryTest, TimeBudgetAbortsRunningAttempt) {
  // The paper: "If the limit should expire during the execution of a
  // procedure, then that procedure is forcibly terminated."
  run_in_sim([](Context& ctx, SimClock& clock, Rng& rng) {
    bool attempt_completed = false;
    Status s = run_try(clock, rng, TryOptions::for_time(sec(5)),
                       [&](TimePoint) {
                         ctx.sleep(hours(1));  // wedged operation
                         attempt_completed = true;
                         return Status::success();
                       });
    EXPECT_EQ(s.code(), StatusCode::kTimeout);
    EXPECT_FALSE(attempt_completed);
    EXPECT_EQ(clock.now(), kEpoch + sec(5));
  });
}

TEST(RunTryTest, CombinedBudgetWhicheverFirst_TimeWins) {
  run_in_sim([](Context& ctx, SimClock& clock, Rng& rng) {
    TryOptions options = TryOptions::for_time_or_times(sec(3), 100);
    Status s = run_try(clock, rng, options, [&](TimePoint) {
      ctx.sleep(sec(1));
      return Status::failure("x");
    });
    EXPECT_EQ(s.code(), StatusCode::kTimeout);
    EXPECT_EQ(clock.now(), kEpoch + sec(3));
  });
}

TEST(RunTryTest, CombinedBudgetWhicheverFirst_AttemptsWin) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    TryOptions options = TryOptions::for_time_or_times(hours(10), 2);
    int calls = 0;
    Status s = run_try(clock, rng, options, [&](TimePoint) {
      ++calls;
      return Status::failure("x");
    });
    EXPECT_TRUE(s.failed());
    EXPECT_NE(s.code(), StatusCode::kTimeout);
    EXPECT_EQ(calls, 2);
  });
}

TEST(RunTryTest, ZeroAttemptLimitFailsWithoutRunning) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    int calls = 0;
    Status s = run_try(clock, rng, TryOptions::times(0), [&](TimePoint) {
      ++calls;
      return Status::success();
    });
    EXPECT_TRUE(s.failed());
    EXPECT_EQ(calls, 0);
  });
}

TEST(RunTryTest, AttemptReceivesOverallDeadline) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    TimePoint seen{};
    (void)run_try(clock, rng, TryOptions::for_time(minutes(5)),
                  [&](TimePoint deadline) {
                    seen = deadline;
                    return Status::success();
                  });
    EXPECT_EQ(seen, kEpoch + minutes(5));
  });
}

TEST(RunTryTest, NoTimeLimitPassesMaxDeadline) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    TimePoint seen{};
    (void)run_try(clock, rng, TryOptions::times(1), [&](TimePoint deadline) {
      seen = deadline;
      return Status::success();
    });
    EXPECT_EQ(seen, TimePoint::max());
  });
}

TEST(RunTryTest, NestedTriesInnerTimeoutIsOuterFailure) {
  // try for 30s { try for 2s { always-fail } } -- the inner try times out,
  // the outer retries it, and eventually the outer times out too.
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    int inner_runs = 0;
    TryMetrics outer_metrics;
    TryOptions outer = TryOptions::for_time(sec(30));
    outer.metrics = &outer_metrics;
    Status s = run_try(clock, rng, outer, [&](TimePoint) {
      return run_try(clock, rng, TryOptions::for_time(sec(2)),
                     [&](TimePoint) {
                       ++inner_runs;
                       return Status::failure("persistent");
                     });
    });
    EXPECT_EQ(s.code(), StatusCode::kTimeout);
    EXPECT_EQ(clock.now(), kEpoch + sec(30));
    EXPECT_GT(outer_metrics.attempts, 1);
    EXPECT_GT(inner_runs, outer_metrics.attempts);  // inner retried too
  });
}

TEST(RunTryTest, OuterDeadlineCutsInnerTryMidFlight) {
  // Outer limit shorter than inner: the outer deadline must preempt the
  // inner try's attempt and surface as the OUTER timeout.
  run_in_sim([](Context& ctx, SimClock& clock, Rng& rng) {
    Status s = run_try(clock, rng, TryOptions::for_time(sec(5)),
                       [&](TimePoint) {
                         return run_try(clock, rng,
                                        TryOptions::for_time(hours(1)),
                                        [&](TimePoint) {
                                          ctx.sleep(minutes(10));
                                          return Status::success();
                                        });
                       });
    EXPECT_EQ(s.code(), StatusCode::kTimeout);
    EXPECT_EQ(clock.now(), kEpoch + sec(5));
  });
}

TEST(RunTryTest, MetricsFlushedEvenWhenOuterDeadlineUnwinds) {
  run_in_sim([](Context& ctx, SimClock& clock, Rng& rng) {
    TryMetrics metrics;
    TryOptions inner = TryOptions::for_time(hours(1));
    inner.metrics = &metrics;
    Status outer =
        run_try(clock, rng, TryOptions::for_time(sec(3)), [&](TimePoint) {
          return run_try(clock, rng, inner, [&](TimePoint) {
            ctx.sleep(sec(1));
            return Status::failure("slow");
          });
        });
    EXPECT_EQ(outer.code(), StatusCode::kTimeout);
    EXPECT_GE(metrics.attempts, 1);  // recorded despite forcible unwind
  });
}

TEST(RunTryTest, BackoffDelaysAreCappedByRemainingBudget) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    TryOptions options = TryOptions::for_time(sec(100));
    options.backoff = BackoffPolicy::fixed(hours(5));  // absurd delay
    Status s = run_try(clock, rng, options,
                       [&](TimePoint) { return Status::failure("x"); });
    EXPECT_EQ(s.code(), StatusCode::kTimeout);
    EXPECT_EQ(clock.now(), kEpoch + sec(100));  // not 5 hours
  });
}

TEST(RunTryTest, ZeroCostFailingAttemptCannotLivelock) {
  // A Fixed client (no backoff) retrying an instantaneous failure must still
  // advance virtual time via the min_cycle floor and hit the time budget.
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    TryOptions options = TryOptions::for_time(sec(1));
    options.backoff = BackoffPolicy::none();
    TryMetrics metrics;
    options.metrics = &metrics;
    Status s = run_try(clock, rng, options,
                       [&](TimePoint) { return Status::failure("instant"); });
    EXPECT_EQ(s.code(), StatusCode::kTimeout);
    EXPECT_EQ(clock.now(), kEpoch + sec(1));
    // min_cycle 1 ms => ~1000 attempts in the 1 s budget.
    EXPECT_GE(metrics.attempts, 900);
    EXPECT_LE(metrics.attempts, 1100);
  });
}

TEST(RunTryTest, MinCycleDoesNotInflateSlowAttempts) {
  run_in_sim([](Context& ctx, SimClock& clock, Rng& rng) {
    TryOptions options = TryOptions::times(3);
    options.backoff = BackoffPolicy::none();
    Status s = run_try(clock, rng, options, [&](TimePoint) {
      ctx.sleep(sec(2));  // attempt already costs more than min_cycle
      return Status::failure("slow");
    });
    EXPECT_TRUE(s.failed());
    EXPECT_EQ(clock.now(), kEpoch + sec(6));  // exactly 3 x 2 s, no padding
  });
}

TEST(RunTryTest, KillDuringTryPropagatesInterrupted) {
  Kernel kernel;
  sim::ProcessHandle worker = kernel.spawn("worker", [&](Context& ctx) {
    SimClock clock(ctx);
    Rng rng = ctx.rng();
    (void)run_try(clock, rng, TryOptions::for_time(hours(5)),
                  [&](TimePoint) { return Status::failure("always"); });
    ADD_FAILURE() << "run_try returned after kill";
  });
  kernel.spawn("killer", [&](Context& ctx) {
    ctx.sleep(sec(30));
    ctx.kill(worker);
  });
  kernel.run();
  EXPECT_EQ(worker->result().code(), StatusCode::kKilled);
}

TEST(RunTryTest, SuccessStatusIsReturnedVerbatim) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    Status s = run_try(clock, rng, TryOptions::times(1),
                       [&](TimePoint) { return Status::success(); });
    EXPECT_EQ(s, Status::success());
  });
}

// A clock whose sleeps are cut short, the way a forall abort (or any
// cooperative wake) truncates a real backoff delay.
class TruncatingClock final : public Clock {
 public:
  explicit TruncatingClock(Duration cap) : cap_(cap) {}
  TimePoint now() override { return now_; }
  void sleep(Duration d) override { now_ += std::min(d, cap_); }
  Status with_deadline(TimePoint,
                       const std::function<Status()>& fn) override {
    return fn();
  }

 private:
  Duration cap_;
  TimePoint now_ = kEpoch;
};

TEST(TryMetricsTest, TruncatedBackoffRecordsSleptNotRequested) {
  TruncatingClock clock(msec(5));  // every sleep is interrupted after 5 ms
  Rng rng(1);
  TryMetrics metrics;
  TryOptions options = TryOptions::times(2);
  options.backoff = BackoffPolicy::fixed(msec(100));
  options.metrics = &metrics;
  Status s = run_try(clock, rng, options,
                     [](TimePoint) { return Status::failure("nope"); });
  EXPECT_TRUE(s.failed());
  EXPECT_EQ(metrics.attempts, 2);
  // One backoff between the two attempts: 100 ms was requested, 5 ms was
  // actually slept, and only the slept time may be reported.
  EXPECT_EQ(metrics.backoff_total, msec(5));
}

TEST(TryMetricsTest, MergeAccumulates) {
  TryMetrics a, b;
  a.attempts = 2;
  a.failures = 1;
  a.backoff_total = sec(3);
  b.attempts = 3;
  b.failures = 3;
  b.timed_out = true;
  a.merge(b);
  EXPECT_EQ(a.attempts, 5);
  EXPECT_EQ(a.failures, 4);
  EXPECT_EQ(a.backoff_total, sec(3));
  EXPECT_TRUE(a.timed_out);
  EXPECT_FALSE(a.succeeded);
}

}  // namespace
}  // namespace ethergrid::core
