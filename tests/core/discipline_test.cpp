#include "core/discipline.hpp"

#include <gtest/gtest.h>

#include "core/sim_clock.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::core {
namespace {

using sim::Context;
using sim::Kernel;

void run_in_sim(const std::function<void(Context&, SimClock&, Rng&)>& body,
                std::uint64_t seed = 1) {
  Kernel kernel(seed);
  kernel.spawn("test", [&](Context& ctx) {
    SimClock clock(ctx);
    Rng rng = ctx.rng();
    body(ctx, clock, rng);
  });
  kernel.run();
}

TEST(DisciplineTest, FactoriesSetNamesAndBackoff) {
  Discipline f = Discipline::fixed(TryOptions::times(3));
  EXPECT_EQ(f.name, "fixed");
  EXPECT_EQ(f.options.backoff.kind, BackoffPolicy::Kind::kNone);
  EXPECT_FALSE(f.carrier_sense);

  Discipline a = Discipline::aloha(TryOptions::times(3));
  EXPECT_EQ(a.name, "aloha");
  EXPECT_EQ(a.options.backoff.kind, BackoffPolicy::Kind::kExponential);
  EXPECT_FALSE(a.carrier_sense);

  Discipline e = Discipline::ethernet(
      TryOptions::times(3), [](TimePoint) { return Status::success(); });
  EXPECT_EQ(e.name, "ethernet");
  EXPECT_TRUE(e.carrier_sense);
}

TEST(DisciplineTest, FixedRetriesWithoutDelay) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    int calls = 0;
    DisciplineMetrics m;
    Status s = run_with_discipline(
        clock, rng, Discipline::fixed(TryOptions::times(5)),
        [&](TimePoint) {
          ++calls;
          return Status::failure("busy");
        },
        &m);
    EXPECT_TRUE(s.failed());
    EXPECT_EQ(calls, 5);
    // No backoff: only the min_cycle floor (4 x 1 ms) passes.
    EXPECT_LT(clock.now(), kEpoch + msec(10));
    EXPECT_EQ(m.collisions, 5);
    EXPECT_EQ(m.deferrals, 0);
  });
}

TEST(DisciplineTest, AlohaBacksOffBetweenCollisions) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    DisciplineMetrics m;
    (void)run_with_discipline(
        clock, rng, Discipline::aloha(TryOptions::times(4)),
        [&](TimePoint) { return Status::failure("busy"); }, &m);
    EXPECT_EQ(m.collisions, 4);
    EXPECT_GT(clock.now(), kEpoch + sec(6));  // >= 1+2+4 (min jitter)
  });
}

TEST(DisciplineTest, EthernetDefersWithoutConsuming) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    int medium_busy = 3;  // carrier clears after 3 probes
    int work_runs = 0;
    DisciplineMetrics m;
    Discipline d = Discipline::ethernet(
        TryOptions::times(10), [&](TimePoint) {
          return medium_busy-- > 0 ? Status::unavailable("busy")
                                   : Status::success();
        });
    Status s = run_with_discipline(
        clock, rng, d,
        [&](TimePoint) {
          ++work_runs;
          return Status::success();
        },
        &m);
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(work_runs, 1);   // work ran only once the medium was clear
    EXPECT_EQ(m.deferrals, 3);
    EXPECT_EQ(m.probes, 4);
    EXPECT_EQ(m.collisions, 0);
    EXPECT_EQ(m.try_metrics.attempts, 4);  // deferrals consume attempts
  });
}

TEST(DisciplineTest, DeferralsApplyBackoff) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    Discipline d = Discipline::ethernet(
        TryOptions::times(3),
        [](TimePoint) { return Status::unavailable("always busy"); });
    DisciplineMetrics m;
    Status s = run_with_discipline(
        clock, rng, d,
        [](TimePoint) {
          ADD_FAILURE() << "work ran despite busy carrier";
          return Status::success();
        },
        &m);
    EXPECT_TRUE(s.failed());
    EXPECT_EQ(m.deferrals, 3);
    EXPECT_GT(clock.now(), kEpoch + sec(2));  // backed off between probes
  });
}

TEST(DisciplineTest, CollisionsCountedOnWorkFailure) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    int calls = 0;
    DisciplineMetrics m;
    Discipline d = Discipline::ethernet(
        TryOptions::times(5), [](TimePoint) { return Status::success(); });
    Status s = run_with_discipline(
        clock, rng, d,
        [&](TimePoint) {
          ++calls;
          return calls < 3 ? Status::io_error("collision") : Status::success();
        },
        &m);
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(m.collisions, 2);
    EXPECT_EQ(m.deferrals, 0);
    EXPECT_EQ(calls, 3);
  });
}

TEST(DisciplineTest, CarrierSenseReceivesDeadline) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    TimePoint seen{};
    Discipline d = Discipline::ethernet(TryOptions::for_time(minutes(5)),
                                        [&](TimePoint deadline) {
                                          seen = deadline;
                                          return Status::success();
                                        });
    (void)run_with_discipline(
        clock, rng, d, [](TimePoint) { return Status::success(); }, nullptr);
    EXPECT_EQ(seen, kEpoch + minutes(5));
  });
}

TEST(DisciplineTest, NullMetricsIsSafe) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    Status s = run_with_discipline(
        clock, rng, Discipline::aloha(TryOptions::times(2)),
        [](TimePoint) { return Status::failure("x"); }, nullptr);
    EXPECT_TRUE(s.failed());
  });
}

TEST(DisciplineTest, TimeBudgetAppliesAcrossDeferrals) {
  run_in_sim([](Context&, SimClock& clock, Rng& rng) {
    Discipline d = Discipline::ethernet(
        TryOptions::for_time(sec(30)),
        [](TimePoint) { return Status::unavailable("busy forever"); });
    DisciplineMetrics m;
    Status s = run_with_discipline(
        clock, rng, d, [](TimePoint) { return Status::success(); }, &m);
    EXPECT_EQ(s.code(), StatusCode::kTimeout);
    EXPECT_EQ(clock.now(), kEpoch + sec(30));
    EXPECT_GT(m.deferrals, 1);
  });
}

}  // namespace
}  // namespace ethergrid::core
