#include "core/backoff.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ethergrid::core {
namespace {

TEST(BackoffPolicyTest, PaperDefaultMatchesPaper) {
  BackoffPolicy p = BackoffPolicy::paper_default();
  EXPECT_EQ(p.kind, BackoffPolicy::Kind::kExponential);
  EXPECT_EQ(p.base, sec(1));
  EXPECT_DOUBLE_EQ(p.factor, 2.0);
  EXPECT_EQ(p.cap, hours(1));
  EXPECT_DOUBLE_EQ(p.jitter_min, 1.0);
  EXPECT_DOUBLE_EQ(p.jitter_max, 2.0);
}

TEST(BackoffPolicyTest, NoneHasZeroDelay) {
  Rng rng(1);
  Backoff b(BackoffPolicy::none(), rng);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(b.next(), Duration(0));
  EXPECT_EQ(b.failures(), 10);
}

TEST(BackoffPolicyTest, FixedIsConstant) {
  Rng rng(1);
  Backoff b(BackoffPolicy::fixed(sec(3)), rng);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(b.next(), sec(3));
}

TEST(BackoffTest, NoJitterDoublesExactly) {
  Rng rng(1);
  Backoff b(BackoffPolicy::no_jitter(), rng);
  EXPECT_EQ(b.next(), sec(1));
  EXPECT_EQ(b.next(), sec(2));
  EXPECT_EQ(b.next(), sec(4));
  EXPECT_EQ(b.next(), sec(8));
  EXPECT_EQ(b.next(), sec(16));
}

TEST(BackoffTest, NoJitterSaturatesAtCap) {
  Rng rng(1);
  BackoffPolicy p = BackoffPolicy::no_jitter();
  p.cap = sec(10);
  Backoff b(p, rng);
  for (int i = 0; i < 4; ++i) (void)b.next();  // 1,2,4,8
  EXPECT_EQ(b.next(), sec(10));                // 16 -> capped
  EXPECT_EQ(b.next(), sec(10));                // stays capped
}

TEST(BackoffTest, ResetRestoresBaseDelay) {
  Rng rng(1);
  Backoff b(BackoffPolicy::no_jitter(), rng);
  (void)b.next();
  (void)b.next();
  EXPECT_EQ(b.peek_base(), sec(4));
  b.reset();
  EXPECT_EQ(b.failures(), 0);
  EXPECT_EQ(b.next(), sec(1));
}

TEST(BackoffTest, PeekDoesNotAdvance) {
  Rng rng(1);
  Backoff b(BackoffPolicy::no_jitter(), rng);
  EXPECT_EQ(b.peek_base(), sec(1));
  EXPECT_EQ(b.peek_base(), sec(1));
  EXPECT_EQ(b.failures(), 0);
}

// Property: with the paper policy, the k-th delay always lies in
// [min(2^k, cap), 2*min(2^k, cap)) seconds.
class BackoffJitterBoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(BackoffJitterBoundsTest, DelayWithinJitterBand) {
  const int k = GetParam();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    Backoff b(BackoffPolicy::paper_default(), rng);
    for (int i = 0; i < k; ++i) (void)b.next();
    const double expected_base = std::min(std::pow(2.0, k), 3600.0);
    const Duration d = b.next();
    EXPECT_GE(to_seconds(d), expected_base) << "seed " << seed;
    EXPECT_LT(to_seconds(d), 2.0 * expected_base + 1e-9) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(FailureCounts, BackoffJitterBoundsTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 11, 12, 15, 20));

TEST(BackoffTest, JitterSpreadsDelays) {
  // With jitter, two clients with different streams back off differently --
  // the anti-cascade property.
  Rng r1(1), r2(2);
  Backoff a(BackoffPolicy::paper_default(), r1);
  Backoff b(BackoffPolicy::paper_default(), r2);
  int identical = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.next() == b.next()) ++identical;
  }
  EXPECT_LT(identical, 3);
}

TEST(BackoffTest, DeterministicForSameSeed) {
  Rng r1(42), r2(42);
  Backoff a(BackoffPolicy::paper_default(), r1);
  Backoff b(BackoffPolicy::paper_default(), r2);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(BackoffTest, LargeFailureCountDoesNotOverflow) {
  Rng rng(1);
  Backoff b(BackoffPolicy::paper_default(), rng);
  Duration d{};
  for (int i = 0; i < 200; ++i) d = b.next();
  EXPECT_GE(d, hours(1));
  EXPECT_LT(d, hours(2) + sec(1));  // cap * jitter_max
}

TEST(BackoffPolicyTest, DescribeIsHumanReadable) {
  EXPECT_EQ(BackoffPolicy::none().describe(), "none");
  EXPECT_EQ(BackoffPolicy::fixed(sec(3)).describe(), "fixed(3s)");
  EXPECT_NE(BackoffPolicy::paper_default().describe().find("exp"),
            std::string::npos);
}

}  // namespace
}  // namespace ethergrid::core
