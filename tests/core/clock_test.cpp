#include "core/clock.hpp"

#include <gtest/gtest.h>

#include "core/lease.hpp"
#include "core/sim_clock.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::core {
namespace {

TEST(WallClockTest, StartsNearEpochAndAdvances) {
  WallClock clock;
  TimePoint a = clock.now();
  EXPECT_LT(a - kEpoch, sec(1));
  clock.sleep(msec(20));
  TimePoint b = clock.now();
  EXPECT_GE(b - a, msec(15));  // scheduler slop tolerated downward slightly
}

TEST(WallClockTest, NegativeSleepReturnsImmediately) {
  WallClock clock;
  TimePoint a = clock.now();
  clock.sleep(Duration(-5));
  EXPECT_LT(clock.now() - a, msec(50));
}

TEST(WallClockTest, WithDeadlinePassesThroughStatus) {
  WallClock clock;
  Status ok = clock.with_deadline(TimePoint::max(),
                                  [] { return Status::success(); });
  EXPECT_TRUE(ok.ok());
  Status fail = clock.with_deadline(TimePoint::max(),
                                    [] { return Status::failure("x"); });
  EXPECT_EQ(fail.code(), StatusCode::kFailure);
}

TEST(WallClockTest, WithDeadlineConvertsLateFailureToTimeout) {
  WallClock clock;
  // Deadline already passed; a failing fn is reported as timeout.
  Status s = clock.with_deadline(clock.now() - sec(1),
                                 [] { return Status::failure("late"); });
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  // ... but a *successful* fn is still a success.
  Status ok = clock.with_deadline(clock.now() - sec(1),
                                  [] { return Status::success(); });
  EXPECT_TRUE(ok.ok());
}

TEST(SimClockTest, TracksKernelTime) {
  sim::Kernel kernel;
  kernel.spawn("p", [](sim::Context& ctx) {
    SimClock clock(ctx);
    EXPECT_EQ(clock.now(), kEpoch);
    clock.sleep(sec(42));
    EXPECT_EQ(clock.now(), kEpoch + sec(42));
  });
  kernel.run();
}

TEST(SimClockTest, WithDeadlinePreemptsBody) {
  sim::Kernel kernel;
  kernel.spawn("p", [](sim::Context& ctx) {
    SimClock clock(ctx);
    bool completed = false;
    Status s = clock.with_deadline(kEpoch + sec(2), [&]() -> Status {
      ctx.sleep(hours(1));
      completed = true;
      return Status::success();
    });
    EXPECT_EQ(s.code(), StatusCode::kTimeout);
    EXPECT_FALSE(completed);
    EXPECT_EQ(clock.now(), kEpoch + sec(2));
  });
  kernel.run();
}

TEST(SimClockTest, WithDeadlineLetsEnclosingDeadlinePropagate) {
  sim::Kernel kernel;
  bool outer_caught = false;
  kernel.spawn("p", [&](sim::Context& ctx) {
    SimClock clock(ctx);
    try {
      sim::DeadlineScope outer(ctx, kEpoch + sec(1));
      (void)clock.with_deadline(kEpoch + hours(1), [&]() -> Status {
        ctx.sleep(minutes(30));
        return Status::success();
      });
      ADD_FAILURE() << "outer deadline did not fire";
    } catch (const sim::DeadlineExceeded&) {
      outer_caught = true;
    }
  });
  kernel.run();
  EXPECT_TRUE(outer_caught);
}

TEST(LeaseTimerTest, NeverExpiresWithZeroSlice) {
  sim::Kernel kernel;
  kernel.spawn("p", [](sim::Context& ctx) {
    SimClock clock(ctx);
    LeaseTimer lease(clock, Duration(0));
    ctx.sleep(hours(100));
    EXPECT_FALSE(lease.expired());
  });
  kernel.run();
}

TEST(LeaseTimerTest, ExpiresAfterSlice) {
  sim::Kernel kernel;
  kernel.spawn("p", [](sim::Context& ctx) {
    SimClock clock(ctx);
    LeaseTimer lease(clock, sec(10));
    EXPECT_FALSE(lease.expired());
    ctx.sleep(sec(9));
    EXPECT_FALSE(lease.expired());
    ctx.sleep(sec(1));
    EXPECT_TRUE(lease.expired());  // boundary inclusive
    EXPECT_EQ(lease.held(), sec(10));
  });
  kernel.run();
}

TEST(LeaseTimerTest, OnAcquireRestartsSlice) {
  sim::Kernel kernel;
  kernel.spawn("p", [](sim::Context& ctx) {
    SimClock clock(ctx);
    LeaseTimer lease(clock, sec(10));
    ctx.sleep(sec(15));
    EXPECT_TRUE(lease.expired());
    lease.on_acquire();
    EXPECT_FALSE(lease.expired());
    EXPECT_EQ(lease.held(), Duration(0));
  });
  kernel.run();
}

}  // namespace
}  // namespace ethergrid::core
