// Real-process executor tests.  These run actual /bin utilities; every
// timeout here is sub-second wall clock to keep the suite fast.
#include "posix/posix_executor.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "shell/environment.hpp"
#include "shell/interpreter.hpp"

namespace ethergrid::posix {
namespace {

using shell::CommandInvocation;
using shell::CommandResult;

PosixExecutorOptions fast_options() {
  PosixExecutorOptions o;
  o.kill_grace = msec(200);
  o.poll_interval = msec(5);
  return o;
}

CommandInvocation inv(std::vector<std::string> argv) {
  CommandInvocation i;
  i.argv = std::move(argv);
  return i;
}

TEST(PosixExecutorTest, TrueSucceedsFalseFails) {
  PosixExecutor ex(fast_options());
  EXPECT_TRUE(ex.run(inv({"true"})).status.ok());
  Status s = ex.run(inv({"false"})).status;
  EXPECT_TRUE(s.failed());
  EXPECT_NE(s.message().find("exit status 1"), std::string::npos);
}

TEST(PosixExecutorTest, CapturesStdout) {
  PosixExecutor ex(fast_options());
  CommandResult r = ex.run(inv({"echo", "hello", "world"}));
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.out, "hello world\n");
  EXPECT_TRUE(r.err.empty());
}

TEST(PosixExecutorTest, CapturesStderrSeparately) {
  PosixExecutor ex(fast_options());
  CommandResult r = ex.run(inv({"sh", "-c", "echo out; echo err >&2"}));
  EXPECT_EQ(r.out, "out\n");
  EXPECT_EQ(r.err, "err\n");
}

TEST(PosixExecutorTest, MergeStderr) {
  PosixExecutor ex(fast_options());
  CommandInvocation i = inv({"sh", "-c", "echo out; echo err >&2"});
  i.merge_stderr = true;
  CommandResult r = ex.run(i);
  EXPECT_NE(r.out.find("out"), std::string::npos);
  EXPECT_NE(r.out.find("err"), std::string::npos);
  EXPECT_TRUE(r.err.empty());
}

TEST(PosixExecutorTest, UnknownCommandIsNotFound) {
  PosixExecutor ex(fast_options());
  Status s = ex.run(inv({"definitely-no-such-binary-xyz"})).status;
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(PosixExecutorTest, StdinDataFlowsToChild) {
  PosixExecutor ex(fast_options());
  CommandInvocation i = inv({"cat"});
  i.stdin_data = "payload 123\n";
  CommandResult r = ex.run(i);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.out, "payload 123\n");
}

TEST(PosixExecutorTest, LargeStdinDoesNotDeadlock) {
  PosixExecutor ex(fast_options());
  std::string big(1 << 20, 'x');  // 1 MB: far beyond the pipe buffer
  CommandInvocation i = inv({"wc", "-c"});
  i.stdin_data = big;
  CommandResult r = ex.run(i);
  ASSERT_TRUE(r.status.ok());
  EXPECT_NE(r.out.find("1048576"), std::string::npos);
}

TEST(PosixExecutorTest, FileRedirectionRoundTrip) {
  PosixExecutor ex(fast_options());
  const std::string path = ::testing::TempDir() + "ethergrid_redirect.txt";
  std::remove(path.c_str());

  CommandInvocation write = inv({"echo", "data"});
  write.stdout_file = path;
  ASSERT_TRUE(ex.run(write).status.ok());

  CommandInvocation append = inv({"echo", "more"});
  append.stdout_file = path;
  append.stdout_append = true;
  ASSERT_TRUE(ex.run(append).status.ok());

  CommandInvocation read = inv({"cat"});
  read.stdin_file = path;
  EXPECT_EQ(ex.run(read).out, "data\nmore\n");
  std::remove(path.c_str());
}

TEST(PosixExecutorTest, MissingStdinFileFails) {
  PosixExecutor ex(fast_options());
  CommandInvocation i = inv({"cat"});
  i.stdin_file = "/no/such/file/anywhere";
  EXPECT_TRUE(ex.run(i).status.failed());
}

TEST(PosixExecutorTest, DeadlineKillsWedgedCommand) {
  PosixExecutor ex(fast_options());
  CommandInvocation i = inv({"sleep", "30"});
  i.deadline = ex.now() + msec(300);
  const TimePoint start = ex.now();
  Status s = ex.run(i).status;
  const Duration took = ex.now() - start;
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_LT(took, sec(3));
}

TEST(PosixExecutorTest, SessionKillReachesGrandchildren) {
  // The child forks a grandchild; killing the session must take both.
  PosixExecutor ex(fast_options());
  CommandInvocation i = inv({"sh", "-c", "sleep 30 & wait"});
  i.deadline = ex.now() + msec(300);
  const TimePoint start = ex.now();
  Status s = ex.run(i).status;
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_LT(ex.now() - start, sec(3));
}

TEST(PosixExecutorTest, SigtermResistantChildGetsSigkilled) {
  PosixExecutor ex(fast_options());
  CommandInvocation i = inv({"sh", "-c", "trap '' TERM; sleep 30"});
  i.deadline = ex.now() + msec(200);
  const TimePoint start = ex.now();
  Status s = ex.run(i).status;
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  // ~200 ms deadline + ~200 ms grace, then SIGKILL.
  EXPECT_LT(ex.now() - start, sec(3));
}

TEST(PosixExecutorTest, FileExists) {
  PosixExecutor ex(fast_options());
  EXPECT_TRUE(ex.file_exists("/"));
  EXPECT_FALSE(ex.file_exists("/no/such/path/zzz"));
}

TEST(PosixExecutorTest, RunParallelAllSucceed) {
  PosixExecutor ex(fast_options());
  auto statuses = ex.run_parallel({
      [&] { return ex.run(inv({"true"})).status; },
      [&] { return ex.run(inv({"echo", "hi"})).status; },
  });
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].ok());
}

TEST(PosixExecutorTest, RunParallelAbortsSiblings) {
  PosixExecutor ex(fast_options());
  const TimePoint start = ex.now();
  auto statuses = ex.run_parallel({
      [&] { return ex.run(inv({"false"})).status; },
      [&] {
        CommandInvocation slow = inv({"sleep", "30"});
        return ex.run(slow).status;
      },
  });
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].failed());
  EXPECT_TRUE(statuses[1].failed());
  EXPECT_LT(ex.now() - start, sec(5));  // the sleep was killed, not awaited
}

// ---- full interpreter over real processes ----

TEST(PosixIntegrationTest, ScriptWithRealCommands) {
  PosixExecutor ex(fast_options());
  shell::Interpreter interp(ex);
  shell::Environment env;
  Status s = interp.run_source(
      "echo starting\n"
      "hostname -> h\n"
      "true\n"
      "echo done",
      env);
  EXPECT_TRUE(s.ok()) << s.to_string();
  EXPECT_EQ(interp.output(), "starting\ndone\n");
  EXPECT_TRUE(env.get("h").has_value());
}

TEST(PosixIntegrationTest, TryForWallTimeAbortsSleep) {
  PosixExecutor ex(fast_options());
  shell::InterpreterOptions options;
  options.backoff = core::BackoffPolicy::fixed(msec(10));
  shell::Interpreter interp(ex, options);
  shell::Environment env;
  const TimePoint start = ex.now();
  Status s = interp.run_source("try for 1 seconds\n  sleep 30\nend", env);
  EXPECT_TRUE(s.failed());
  EXPECT_LT(ex.now() - start, sec(5));
}

TEST(PosixIntegrationTest, TryTimesRetriesRealCommand) {
  PosixExecutor ex(fast_options());
  shell::InterpreterOptions options;
  options.backoff = core::BackoffPolicy::fixed(msec(5));
  shell::Interpreter interp(ex, options);
  shell::Environment env;
  // A file-based counter: fails until the third run.
  const std::string counter = ::testing::TempDir() + "ethergrid_counter";
  std::remove(counter.c_str());
  Status s = interp.run_source(
      "try 5 times\n"
      "  sh -c \"echo x >> " + counter + "; test $(wc -l < " + counter +
          ") -ge 3\"\n"
      "end",
      env);
  EXPECT_TRUE(s.ok()) << s.to_string();
  std::ifstream in(counter);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3);
  std::remove(counter.c_str());
}

TEST(PosixIntegrationTest, ForallRealParallelism) {
  PosixExecutor ex(fast_options());
  shell::Interpreter interp(ex);
  shell::Environment env;
  const TimePoint start = ex.now();
  Status s = interp.run_source(
      "forall t in 0.3 0.3 0.3\n  sleep ${t}\nend", env);
  EXPECT_TRUE(s.ok()) << s.to_string();
  const Duration took = ex.now() - start;
  EXPECT_LT(took, msec(800));  // parallel: ~0.3 s, not 0.9 s
}

TEST(PosixIntegrationTest, VariableCaptureFromRealCommand) {
  PosixExecutor ex(fast_options());
  shell::Interpreter interp(ex);
  shell::Environment env;
  Status s = interp.run_source(
      "sh -c \"echo 512\" -> n\n"
      "if ${n} .lt. 1000\n  echo low\nend",
      env);
  EXPECT_TRUE(s.ok()) << s.to_string();
  EXPECT_EQ(interp.output(), "low\n");
}

}  // namespace
}  // namespace ethergrid::posix
