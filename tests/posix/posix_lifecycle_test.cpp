// Child-lifecycle regressions: O_CLOEXEC fd hygiene, event-driven exit and
// abort latency, pump error paths, pre-setsid kill delivery, and the
// SIGTERM -> grace -> SIGKILL escalation order.
//
// The latency assertions are deliberately paired with huge poll_interval
// values: if a fixed polling term ever sneaks back into the supervision hot
// path, these tests time out the bound instead of passing by luck.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <dirent.h>
#include <set>
#include <thread>

#include "posix/event_loop.hpp"
#include "posix/posix_executor.hpp"
#include "shell/environment.hpp"
#include "shell/interpreter.hpp"

namespace ethergrid::posix {
namespace {

using shell::CommandInvocation;

CommandInvocation inv(std::vector<std::string> argv) {
  CommandInvocation i;
  i.argv = std::move(argv);
  return i;
}

// Fds open in this process right now.
std::set<int> own_open_fds() {
  std::set<int> fds;
  DIR* dir = ::opendir("/proc/self/fd");
  if (!dir) return fds;
  while (struct dirent* entry = ::readdir(dir)) {
    int fd = ::atoi(entry->d_name);
    if (fd > 0 || entry->d_name[0] == '0') fds.insert(fd);
  }
  ::closedir(dir);
  return fds;
}

// ---- satellite: fd hygiene (pipe2 + O_CLOEXEC everywhere) ----

TEST(PosixLifecycleTest, PipesDoNotLeakIntoConcurrentSiblings) {
  // Fds that were already inheritable before the executor existed (test
  // runner plumbing) are not ours to police.
  std::set<int> preexisting;
  for (int fd : own_open_fds()) {
    const int flags = ::fcntl(fd, F_GETFD, 0);
    if (flags >= 0 && !(flags & FD_CLOEXEC)) preexisting.insert(fd);
  }

  PosixExecutorOptions o;
  o.kill_grace = msec(200);
  PosixExecutor ex(o);

  // Hold a command in flight so its parent-side pipe ends are live while a
  // second command forks: without O_CLOEXEC the probe would inherit them.
  std::thread holder([&] {
    CommandInvocation slow = inv({"sleep", "0.8"});
    slow.stdin_data = "unread";  // keeps all three pipes open
    (void)ex.run(slow);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  auto probe = ex.run(inv({"ls", "-l", "/proc/self/fd"}));
  holder.join();
  ASSERT_TRUE(probe.status.ok()) << probe.status.to_string();

  // Lines look like "l-wx------ 1 u g 64 Jan 1 00:00 4 -> pipe:[123]".
  // A leaked supervision fd shows up as a pipe on an fd above the child's
  // stdio triple; ls's own /proc fd and whitelisted inherited fds are fine.
  std::size_t pos = 0;
  while (pos < probe.out.size()) {
    std::size_t end = probe.out.find('\n', pos);
    if (end == std::string::npos) end = probe.out.size();
    const std::string line = probe.out.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t arrow = line.find(" -> ");
    if (arrow == std::string::npos) continue;
    const std::size_t name_start = line.rfind(' ', arrow - 1) + 1;
    const int fd = ::atoi(line.substr(name_start, arrow - name_start).c_str());
    const std::string target = line.substr(arrow + 4);
    if (fd <= 2 || preexisting.count(fd)) continue;
    EXPECT_TRUE(target.compare(0, 5, "pipe:") != 0)
        << "pipe fd " << fd << " leaked into a child; listing:\n"
        << probe.out;
  }
}

// ---- satellite: pump must retire dead descriptors ----

TEST(PosixLifecycleTest, PumpReportsEofWithData) {
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK), 0);
  ASSERT_EQ(::write(fds[1], "abc", 3), 3);
  ::close(fds[1]);
  std::string sink;
  EXPECT_EQ(pump_fd(fds[0], &sink), PumpResult::kEof);
  EXPECT_EQ(sink, "abc");
  ::close(fds[0]);
}

TEST(PosixLifecycleTest, PumpReportsOpenOnEmptyPipe) {
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK), 0);
  std::string sink;
  EXPECT_EQ(pump_fd(fds[0], &sink), PumpResult::kOpen);
  EXPECT_TRUE(sink.empty());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(PosixLifecycleTest, PumpReportsHardErrorNotOpen) {
  // Reading a write-only fd fails with EBADF: the old code treated any
  // negative read as "still open" and could supervise a dead fd forever.
  int fd = ::open("/dev/null", O_WRONLY);
  ASSERT_GE(fd, 0);
  std::string sink;
  EXPECT_EQ(pump_fd(fd, &sink), PumpResult::kError);
  ::close(fd);
}

// ---- satellite: kill delivery before the child reaches setsid ----

TEST(PosixLifecycleTest, KillSessionReachesPreSetsidChild) {
  // The child never calls setsid, modeling the window between fork and
  // setsid: kill(-pid) alone fails with ESRCH and the kill would be lost.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    for (;;) ::pause();
  }
  kill_session(pid, SIGKILL);
  int status = 0;
  for (int i = 0; i < 400; ++i) {
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      EXPECT_TRUE(WIFSIGNALED(status));
      EXPECT_EQ(WTERMSIG(status), SIGKILL);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, &status, 0);
  FAIL() << "pre-setsid child survived kill_session";
}

// ---- satellite: SIGTERM precedes SIGKILL by kill_grace ----

TEST(PosixLifecycleTest, DeadlineEscalatesTermThenKill) {
  PosixExecutorOptions o;
  o.kill_grace = msec(400);
  PosixExecutor ex(o);
  // The trap proves SIGTERM arrived; the loop ignores it so only the
  // SIGKILL after kill_grace actually ends the session.
  CommandInvocation i = inv(
      {"sh", "-c", "trap 'echo got-term' TERM; while true; do sleep 0.05; done"});
  i.deadline = ex.now() + msec(200);
  const TimePoint start = ex.now();
  auto r = ex.run(i);
  const Duration took = ex.now() - start;
  EXPECT_EQ(r.status.code(), StatusCode::kTimeout);
  EXPECT_NE(r.out.find("got-term"), std::string::npos)
      << "SIGTERM was not delivered before SIGKILL; out=" << r.out;
  EXPECT_GE(took, msec(550));  // deadline + most of the grace period
  EXPECT_LT(took, sec(3));
}

// ---- tentpole: supervision is event-driven, not polled ----

TEST(PosixLifecycleTest, ExitToReturnDoesNotWaitForPollInterval) {
  PosixExecutorOptions o;
  o.poll_interval = msec(500);  // a polling loop would eat this whole
  PosixExecutor ex(o);
  CommandInvocation i = inv({"true"});
  i.stdout_file = "/dev/null";  // no pipes: child exit is the only event
  const TimePoint start = ex.now();
  ASSERT_TRUE(ex.run(i).status.ok());
  EXPECT_LT(ex.now() - start, msec(250));
}

TEST(PosixLifecycleTest, DeadlineEnforcementDoesNotWaitForPollInterval) {
  PosixExecutorOptions o;
  o.poll_interval = sec(2);
  o.kill_grace = msec(100);
  PosixExecutor ex(o);
  CommandInvocation i = inv({"sleep", "30"});
  i.deadline = ex.now() + msec(100);
  const TimePoint start = ex.now();
  Status s = ex.run(i).status;
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_LT(ex.now() - start, msec(700));
}

TEST(PosixLifecycleTest, GroupAbortWakesSiblingSupervisionImmediately) {
  PosixExecutorOptions o;
  o.poll_interval = sec(1);
  o.kill_grace = msec(100);
  PosixExecutor ex(o);
  const TimePoint start = ex.now();
  auto statuses = ex.run_parallel({
      [&] { return ex.run(inv({"false"})).status; },
      [&] { return ex.run(inv({"sleep", "30"})).status; },
  });
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].failed());
  EXPECT_TRUE(statuses[1].failed());
  EXPECT_LT(ex.now() - start, msec(700));
}

TEST(PosixLifecycleTest, GroupAbortWakesSleepingBranchImmediately) {
  PosixExecutorOptions o;
  o.poll_interval = sec(1);
  PosixExecutor ex(o);
  const TimePoint start = ex.now();
  Status slept = Status::success();
  auto statuses = ex.run_parallel({
      [&] { return ex.run(inv({"false"})).status; },
      [&] {
        ex.sleep(sec(20));  // must be cut short by the sibling's failure
        slept = Status::success();
        return Status::success();
      },
  });
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_LT(ex.now() - start, sec(2));
}

TEST(PosixLifecycleTest, ParallelFastExitDoesNotWaitForSibling) {
  PosixExecutor ex;
  Duration echo_took = sec(100);
  auto statuses = ex.run_parallel({
      [&] {
        const TimePoint start = ex.now();
        Status s = ex.run(inv({"echo", "hi"})).status;
        echo_took = ex.now() - start;
        return s;
      },
      [&] { return ex.run(inv({"sleep", "1"})).status; },
  });
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].ok());
  // Pre-O_CLOEXEC, the sleep child could inherit the echo pipe's write end
  // and hold its EOF hostage for the full second.
  EXPECT_LT(echo_took, msec(700));
}

// ---- abort propagation through the interpreter ----

TEST(PosixLifecycleTest, AbortStopsCommandFreeBranch) {
  // Branch b is pure arithmetic -- it never runs a process, so only the
  // interpreter's between-statement abort check can stop it.
  PosixExecutor ex;
  shell::Interpreter interp(ex);
  shell::Environment env;
  Status s = interp.run_source(
      "forall t in a b\n"
      "  if ${t} .eq. a\n"
      "    false\n"
      "  end\n"
      "  if ${t} .eq. b\n"
      "    i = 0\n"
      "    while ${i} .lt. 300000\n"
      "      i = ${i} .add. 1\n"
      "    end\n"
      "    echo completed\n"
      "  end\n"
      "end",
      env);
  EXPECT_TRUE(s.failed());
  EXPECT_EQ(interp.output().find("completed"), std::string::npos)
      << "aborted branch ran to completion: " << interp.output();
}

}  // namespace
}  // namespace ethergrid::posix
