// Additional POSIX executor coverage: termination plumbing, bad paths,
// audit/trace through real processes.
#include <gtest/gtest.h>

#include <signal.h>

#include <thread>

#include "posix/posix_executor.hpp"
#include "shell/audit.hpp"
#include "shell/environment.hpp"
#include "shell/interpreter.hpp"
#include "shell/session.hpp"

namespace ethergrid::posix {
namespace {

using shell::CommandInvocation;

PosixExecutorOptions fast_options() {
  PosixExecutorOptions o;
  o.kill_grace = msec(200);
  o.poll_interval = msec(5);
  return o;
}

CommandInvocation inv(std::vector<std::string> argv) {
  CommandInvocation i;
  i.argv = std::move(argv);
  return i;
}

TEST(PosixExtraTest, TerminateAllKillsRunningCommand) {
  PosixExecutor ex(fast_options());
  // Another thread terminates everything shortly after the command starts;
  // the command must die long before its natural 30 s.
  std::thread terminator([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ex.terminate_all(SIGTERM);
  });
  const TimePoint start = ex.now();
  Status s = ex.run(inv({"sleep", "30"})).status;
  terminator.join();
  EXPECT_TRUE(s.failed());
  EXPECT_NE(s.message().find("signal"), std::string::npos);
  EXPECT_LT(ex.now() - start, sec(5));
}

TEST(PosixExtraTest, UnwritableStdoutFileFails) {
  PosixExecutor ex(fast_options());
  CommandInvocation i = inv({"echo", "x"});
  i.stdout_file = "/no/such/dir/file.txt";
  Status s = ex.run(i).status;
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(PosixExtraTest, AlreadyExpiredDeadlineKillsImmediately) {
  PosixExecutor ex(fast_options());
  CommandInvocation i = inv({"sleep", "30"});
  i.deadline = ex.now() - sec(1);  // in the past
  const TimePoint start = ex.now();
  Status s = ex.run(i).status;
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_LT(ex.now() - start, sec(2));
}

TEST(PosixExtraTest, ZeroExitCodeBeatsNoisyStderr) {
  PosixExecutor ex(fast_options());
  auto r = ex.run(inv({"sh", "-c", "echo warn >&2; exit 0"}));
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.err, "warn\n");
}

TEST(PosixExtraTest, SpecificExitCodesReported) {
  PosixExecutor ex(fast_options());
  Status s = ex.run(inv({"sh", "-c", "exit 42"})).status;
  EXPECT_TRUE(s.failed());
  EXPECT_NE(s.message().find("42"), std::string::npos);
}

TEST(PosixExtraTest, AuditThroughRealProcesses) {
  PosixExecutor ex(fast_options());
  shell::AuditLog audit;
  shell::ObserverSet observers;
  observers.add(&audit);
  ex.set_observers(&observers);
  shell::InterpreterOptions options;
  options.observers = &observers;
  options.backoff = core::BackoffPolicy::fixed(msec(5));
  shell::Interpreter interp(ex, options);
  shell::Environment env;
  Status s = interp.run_source("try 3 times\n  false\nend", env);
  EXPECT_TRUE(s.failed());
  EXPECT_EQ(audit.total_failures(), 4);  // 3 command failures + the try
  bool saw_command = false;
  for (const auto& e : audit.entries()) {
    if (e.kind == shell::AuditEntry::Kind::kCommand) {
      EXPECT_EQ(e.executions, 3);
      saw_command = true;
    }
  }
  EXPECT_TRUE(saw_command);
}

TEST(PosixExtraTest, TraceEmitsExpandedCommands) {
  PosixExecutor ex(fast_options());
  std::string traced;
  shell::SessionOptions options;
  options.xtrace = true;
  options.xtrace_sink = [&](std::string_view text) { traced.append(text); };
  shell::Session session(ex, options);
  session.environment().assign("what", "world");
  ASSERT_TRUE(session.run_source("echo hello ${what}").ok());
  EXPECT_NE(traced.find("+ echo hello world"), std::string::npos);
}

TEST(PosixExtraTest, SessionCollectsProcessSpans) {
  // Real processes produce kProcess spans parented under the interpreter's
  // command spans, and the trace JSON round-trips through write_file.
  PosixExecutor ex(fast_options());
  shell::SessionOptions options;
  options.collect_trace = true;
  options.collect_metrics = true;
  shell::Session session(ex, options);
  ASSERT_TRUE(session.run_source("echo hello\ntrue").ok());
  ASSERT_NE(session.trace(), nullptr);
  EXPECT_GE(session.trace()->span_count(), 3u);  // script + 2 commands + procs
  const std::string json = session.trace()->to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process: echo"), std::string::npos);
  ASSERT_NE(session.metrics(), nullptr);
  EXPECT_EQ(session.metrics()->counter("spans.command"), 2);
  EXPECT_GE(session.metrics()->counter("spans.process"), 2);
}

TEST(PosixExtraTest, EnvironmentVariablePassthroughViaSh) {
  // ftsh variables are shell-level, not process environment; passing data
  // into a child goes through argv (documented behaviour).
  PosixExecutor ex(fast_options());
  shell::Interpreter interp(ex);
  shell::Environment env;
  env.assign("payload", "xyzzy");
  ASSERT_TRUE(interp.run_source("sh -c \"echo got ${payload}\"", env).ok());
  EXPECT_EQ(interp.output(), "got xyzzy\n");
}

TEST(PosixExtraTest, ForallBranchesUseDistinctSessions) {
  // Two parallel branches each run a process; the failure of one kills the
  // other's session without touching the test process itself.
  PosixExecutor ex(fast_options());
  shell::Interpreter interp(ex);
  shell::Environment env;
  const TimePoint start = ex.now();
  Status s = interp.run_source(
      "forall t in fail slow\n"
      "  job-${t}\n"
      "end",
      env);
  // job-fail / job-slow do not exist: both fail fast as NOT_FOUND.
  EXPECT_TRUE(s.failed());
  EXPECT_LT(ex.now() - start, sec(5));
}

}  // namespace
}  // namespace ethergrid::posix
