#!/bin/sh
# End-to-end test of the paper's nested-shell protocol (section 4):
#
#   "Exactly this problem occurs when one ftsh script executes another as
#    an external command. ... ftsh handles this gracefully by trapping the
#    warning SIGTERMs from its parent and then reacting by killing its own
#    children."
#
# The outer ftsh gives a 1-second budget to an inner ftsh that starts a
# 60-second sleep in a session of its own.  At the deadline the outer shell
# SIGTERMs the inner shell's session; the inner shell's handler terminates
# the sleep's session; everything unwinds in seconds, and the outer shell
# reports failure.
#
# Usage: nested_ftsh_test.sh /path/to/ftsh

FTSH="$1"
if [ -z "$FTSH" ] || [ ! -x "$FTSH" ]; then
  echo "usage: $0 /path/to/ftsh" >&2
  exit 2
fi

start=$(date +%s)
if "$FTSH" -c "try for 1 seconds
  $FTSH -c 'sleep 60'
end" 2>/dev/null; then
  echo "FAIL: outer ftsh unexpectedly succeeded" >&2
  exit 1
fi
elapsed=$(( $(date +%s) - start ))

if [ "$elapsed" -gt 15 ]; then
  echo "FAIL: nested teardown took ${elapsed}s (sleep 60 not cancelled?)" >&2
  exit 1
fi

echo "OK: nested ftsh tree terminated in ${elapsed}s"
exit 0
