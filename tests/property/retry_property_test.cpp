// Property sweeps for run_try: invariants that must hold for every seed and
// budget combination, checked across a parameterized grid.
#include <gtest/gtest.h>

#include <cmath>

#include "core/backoff.hpp"
#include "core/retry.hpp"
#include "core/sim_clock.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::core {
namespace {

struct Case {
  std::uint64_t seed;
  double fail_probability;
  std::int64_t budget_seconds;  // 0 => attempts-only budget
  int attempt_limit;            // 0 => time-only budget
};

void PrintTo(const Case& c, std::ostream* os) {
  *os << "seed=" << c.seed << " p=" << c.fail_probability
      << " T=" << c.budget_seconds << " N=" << c.attempt_limit;
}

class RetryPropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(RetryPropertyTest, InvariantsHold) {
  const Case c = GetParam();
  sim::Kernel kernel(c.seed);
  kernel.spawn("p", [&](sim::Context& ctx) {
    SimClock clock(ctx);
    Rng rng = ctx.rng();
    Rng flake = ctx.rng().stream("flake");

    TryOptions options;
    if (c.budget_seconds > 0) options.time_limit = sec(c.budget_seconds);
    if (c.attempt_limit > 0) options.attempt_limit = c.attempt_limit;
    TryMetrics metrics;
    options.metrics = &metrics;

    const TimePoint start = ctx.now();
    bool last_attempt_ok = false;
    Status s = run_try(clock, rng, options, [&](TimePoint deadline) {
      EXPECT_GE(deadline, start);  // deadline never in the past at start
      ctx.sleep(msec(50));         // attempts take time
      last_attempt_ok = !flake.chance(c.fail_probability);
      return last_attempt_ok ? Status::success()
                             : Status::failure("flake");
    });
    const Duration elapsed = ctx.now() - start;

    // I1: something was attempted (budgets are positive).
    EXPECT_GE(metrics.attempts, 1);
    // I2: attempts = failures + (succeeded ? 1 : 0)  (a cut-short attempt
    // never returns, so it is not counted as failed).
    if (s.ok()) {
      EXPECT_EQ(metrics.attempts, metrics.failures + 1);
      EXPECT_TRUE(metrics.succeeded);
      EXPECT_TRUE(last_attempt_ok);
    } else {
      EXPECT_FALSE(metrics.succeeded);
      EXPECT_LE(metrics.failures, metrics.attempts);
      EXPECT_GE(metrics.failures, metrics.attempts - 1);
    }
    // I3: never exceeds the attempt budget.
    if (c.attempt_limit > 0) {
      EXPECT_LE(metrics.attempts, c.attempt_limit);
    }
    // I4: never exceeds the time budget (the engine wakes exactly at it).
    if (c.budget_seconds > 0) {
      EXPECT_LE(elapsed, sec(c.budget_seconds));
      if (s.failed() && metrics.timed_out) {
        EXPECT_EQ(elapsed, sec(c.budget_seconds));
      }
    }
    // I5: backoff time is accounted inside the elapsed window.
    EXPECT_LE(metrics.backoff_total, elapsed);
    // I6: the result is one of the three legal outcomes.
    if (s.failed()) {
      EXPECT_TRUE(metrics.timed_out || metrics.attempts_exhausted);
    }
  });
  kernel.run();
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    for (double p : {0.0, 0.3, 0.9, 1.0}) {
      cases.push_back(Case{seed, p, 60, 0});   // time-only
      cases.push_back(Case{seed, p, 0, 5});    // attempts-only
      cases.push_back(Case{seed, p, 30, 8});   // both
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RetryPropertyTest,
                         ::testing::ValuesIn(make_cases()));

// Determinism across identical runs, for a grid of seeds.
class RetryDeterminismTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RetryDeterminismTest, IdenticalRunsAgree) {
  auto run_once = [&](std::uint64_t seed) {
    sim::Kernel kernel(seed);
    std::int64_t result = 0;
    kernel.spawn("p", [&](sim::Context& ctx) {
      SimClock clock(ctx);
      Rng rng = ctx.rng();
      Rng flake = ctx.rng().stream("flake");
      TryMetrics metrics;
      TryOptions options = TryOptions::for_time_or_times(minutes(5), 50);
      options.metrics = &metrics;
      (void)run_try(clock, rng, options, [&](TimePoint) {
        ctx.sleep(msec(10));
        return flake.chance(0.8) ? Status::failure("x") : Status::success();
      });
      result = metrics.attempts * 1000000 + ctx.now().time_since_epoch().count() % 1000000;
    });
    kernel.run();
    return result;
  };
  EXPECT_EQ(run_once(GetParam()), run_once(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetryDeterminismTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------- backoff policy itself
//
// "The base delay is one second, doubled after every failure, up to a
//  maximum of one hour.  Each delay interval is multiplied by a random
//  factor between one and two."  Checked draw by draw.

class BackoffPolicyPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackoffPolicyPropertyTest, PaperPolicyDoublesAndJittersInRange) {
  Rng rng(GetParam());
  const BackoffPolicy policy = BackoffPolicy::paper_default();
  Backoff backoff(policy, rng);
  for (int k = 0; k < 13; ++k) {
    // Pre-jitter delay after the k-th failure: 1s * 2^k, capped at 1h.
    const double expected =
        std::min(std::pow(2.0, k), to_seconds(policy.cap));
    const Duration base = backoff.peek_base();
    EXPECT_NEAR(to_seconds(base), expected, 1e-9) << "failure #" << k;
    // The realized delay carries a random factor in [1, 2).
    const Duration delay = backoff.next();
    EXPECT_GE(delay, base) << "failure #" << k;
    EXPECT_LT(delay, base * 2) << "failure #" << k;
  }
}

TEST_P(BackoffPolicyPropertyTest, LongStreakSaturatesAtOneHour) {
  Rng rng(GetParam());
  Backoff backoff(BackoffPolicy::paper_default(), rng);
  // Burn far past the doubling range; exponent math must saturate, not
  // overflow.
  for (int k = 0; k < 200; ++k) (void)backoff.next();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(backoff.peek_base(), hours(1));
    const Duration delay = backoff.next();
    EXPECT_GE(delay, hours(1));
    EXPECT_LT(delay, hours(2));  // jitter still spreads the capped delay
  }
  // A success resets the streak to the base delay.
  backoff.reset();
  EXPECT_EQ(backoff.peek_base(), sec(1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackoffPolicyPropertyTest,
                         ::testing::Values(1, 7, 42, 99, 1234));

}  // namespace
}  // namespace ethergrid::core
