// Property sweeps for the disk-buffer substrate: space accounting must be
// exact under any interleaving of producers, disciplines and failures.
#include <gtest/gtest.h>

#include <memory>
#include <string_view>
#include <vector>

#include "grid/clients.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::grid {
namespace {

struct Case {
  std::uint64_t seed;
  const char* discipline;
  int producers;
  std::int64_t capacity;
};

void PrintTo(const Case& c, std::ostream* os) {
  *os << "seed=" << c.seed << " discipline=" << c.discipline
      << " producers=" << c.producers << " cap=" << c.capacity;
}

class BufferPropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(BufferPropertyTest, SpaceAccountingIsExact) {
  const Case c = GetParam();
  sim::Kernel kernel(c.seed);
  FsBuffer buffer(kernel, c.capacity);
  IoChannel channel(kernel, IoChannelConfig{});
  ConsumerConfig consumer_config;
  ConsumerStats consumer_stats;
  kernel.spawn("consumer", make_consumer(buffer, channel, consumer_config,
                                         &consumer_stats));
  std::vector<std::unique_ptr<ProducerStats>> stats;
  for (int i = 0; i < c.producers; ++i) {
    ProducerConfig pc;
    pc.discipline = c.discipline;
    pc.name_prefix = "p" + std::to_string(i);
    stats.push_back(std::make_unique<ProducerStats>());
    kernel.spawn("producer" + std::to_string(i),
                 make_producer(buffer, channel, pc, stats.back().get()));
  }

  // Sample invariants repeatedly during the run, not only at the end.
  for (int step = 0; step < 20; ++step) {
    kernel.run_for(sec(15));

    // I1: used equals the sum of the listed files' sizes.
    std::int64_t listed = 0;
    for (const auto& f : buffer.list()) listed += f.size;
    EXPECT_EQ(listed, buffer.used_bytes());

    // I2: capacity is never exceeded and free is its complement.
    EXPECT_LE(buffer.used_bytes(), c.capacity);
    EXPECT_EQ(buffer.free_bytes(), c.capacity - buffer.used_bytes());

    // I3: counts agree with the listing.
    int complete = 0, incomplete = 0;
    for (const auto& f : buffer.list()) (f.complete ? complete : incomplete)++;
    EXPECT_EQ(complete, buffer.complete_count());
    EXPECT_EQ(incomplete, buffer.incomplete_count());

    // I4: each live producer leaves at most one in-flight file.
    EXPECT_LE(buffer.incomplete_count(), c.producers);
  }
  kernel.shutdown();

  // I5: everything consumed was a completed file.
  std::int64_t completed = 0;
  for (const auto& s : stats) completed += s->files_completed;
  EXPECT_LE(consumer_stats.files_consumed, completed);

  // I6: the Ethernet discipline's whole point -- far fewer collisions than
  // attempts for fixed clients under pressure (sanity, not a tautology).
  if (std::string_view(c.discipline) == "ethernet") {
    std::int64_t collisions = 0;
    for (const auto& s : stats) collisions += s->discipline.collisions;
    std::int64_t deferrals = 0;
    for (const auto& s : stats) deferrals += s->discipline.deferrals;
    if (deferrals > 50) {
      EXPECT_LT(collisions, deferrals);  // sense mostly precedes collision
    }
  }
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (std::uint64_t seed : {1ULL, 9ULL, 77ULL}) {
    for (const char* discipline : {"fixed", "aloha", "ethernet"}) {
      cases.push_back(Case{seed, discipline, 4, 8 << 20});
      cases.push_back(Case{seed, discipline, 10, 2 << 20});  // pressure
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BufferPropertyTest,
                         ::testing::ValuesIn(make_cases()));

}  // namespace
}  // namespace ethergrid::grid
