// Property sweeps for the simulation kernel: invariants over randomized
// workloads of sleepers, wakers, killers, and resource users.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/resource.hpp"

namespace ethergrid::sim {
namespace {

class KernelPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelPropertyTest, ClockIsMonotoneAcrossAllProcesses) {
  Kernel kernel(GetParam());
  TimePoint last_seen = kEpoch;
  bool monotone = true;
  for (int i = 0; i < 20; ++i) {
    kernel.spawn("p" + std::to_string(i), [&](Context& ctx) {
      Rng& rng = ctx.rng();
      for (int j = 0; j < 50; ++j) {
        ctx.sleep(msec(rng.uniform_int(0, 500)));
        if (ctx.now() < last_seen) monotone = false;
        last_seen = ctx.now();
      }
    });
  }
  kernel.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(kernel.live_process_count(), 0u);
}

TEST_P(KernelPropertyTest, RandomKillsNeverLeakOrHang) {
  Kernel kernel(GetParam());
  std::vector<ProcessHandle> victims;
  for (int i = 0; i < 15; ++i) {
    victims.push_back(
        kernel.spawn("victim" + std::to_string(i), [](Context& ctx) {
          for (int j = 0; j < 100; ++j) ctx.sleep(sec(1));
        }));
  }
  kernel.spawn("killer", [&](Context& ctx) {
    Rng& rng = ctx.rng();
    for (auto& victim : victims) {
      ctx.sleep(msec(rng.uniform_int(1, 2000)));
      ctx.kill(victim, "random kill");
    }
  });
  kernel.run();
  EXPECT_EQ(kernel.live_process_count(), 0u);
  for (auto& victim : victims) {
    EXPECT_TRUE(victim->finished());
    EXPECT_EQ(victim->result().code(), StatusCode::kKilled);
  }
}

TEST_P(KernelPropertyTest, ResourceNeverOversubscribed) {
  Kernel kernel(GetParam());
  const std::int64_t capacity = 3;
  Resource resource(kernel, capacity);
  std::int64_t in_use = 0;
  std::int64_t max_in_use = 0;
  std::int64_t grants = 0;
  for (int i = 0; i < 12; ++i) {
    kernel.spawn("w" + std::to_string(i), [&](Context& ctx) {
      Rng& rng = ctx.rng();
      for (int j = 0; j < 20; ++j) {
        ctx.sleep(msec(rng.uniform_int(0, 100)));
        ResourceLease lease(ctx, resource);
        ++in_use;
        ++grants;
        max_in_use = std::max(max_in_use, in_use);
        ctx.sleep(msec(rng.uniform_int(1, 50)));
        --in_use;
      }
    });
  }
  kernel.run();
  EXPECT_EQ(grants, 12 * 20);
  EXPECT_LE(max_in_use, capacity);
  EXPECT_EQ(resource.available(), capacity);
  EXPECT_EQ(resource.queue_length(), 0u);
}

TEST_P(KernelPropertyTest, DeadlinesFireExactlyOnTime) {
  Kernel kernel(GetParam());
  for (int i = 0; i < 10; ++i) {
    kernel.spawn("p" + std::to_string(i), [](Context& ctx) {
      Rng& rng = ctx.rng();
      for (int j = 0; j < 10; ++j) {
        const Duration budget = msec(rng.uniform_int(1, 1000));
        const TimePoint start = ctx.now();
        try {
          DeadlineScope scope(ctx, start + budget);
          while (true) ctx.sleep(msec(rng.uniform_int(1, 300)));
        } catch (const DeadlineExceeded& d) {
          EXPECT_EQ(ctx.now(), start + budget);
          EXPECT_EQ(d.deadline, start + budget);
        }
      }
    });
  }
  kernel.run();
}

TEST_P(KernelPropertyTest, IdenticalSeedsIdenticalTraces) {
  auto trace_of = [&](std::uint64_t seed) {
    Kernel kernel(seed);
    std::vector<std::int64_t> trace;
    Event gate(kernel);
    for (int i = 0; i < 10; ++i) {
      kernel.spawn("p" + std::to_string(i), [&, i](Context& ctx) {
        Rng& rng = ctx.rng();
        for (int j = 0; j < 20; ++j) {
          if (rng.chance(0.2)) {
            gate.pulse();
          } else if (rng.chance(0.1)) {
            (void)ctx.wait_for(gate, msec(rng.uniform_int(1, 500)));
          } else {
            ctx.sleep(msec(rng.uniform_int(0, 200)));
          }
          trace.push_back(i * 1000000 +
                          ctx.now().time_since_epoch().count() % 1000000);
        }
      });
    }
    kernel.run();
    return trace;
  };
  EXPECT_EQ(trace_of(GetParam()), trace_of(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 11, 42, 1000, 31337));

}  // namespace
}  // namespace ethergrid::sim
