#include "util/log.hpp"

#include <gtest/gtest.h>

namespace ethergrid {
namespace {

TEST(LoggerTest, ThresholdFilters) {
  Logger logger(LogLevel::kWarn);
  CapturingSink sink;
  logger.set_sink(sink.as_sink());
  logger.log(LogLevel::kDebug, kEpoch, "c", "dropped");
  logger.log(LogLevel::kInfo, kEpoch, "c", "dropped");
  logger.log(LogLevel::kWarn, kEpoch, "c", "kept");
  logger.log(LogLevel::kError, kEpoch, "c", "kept");
  EXPECT_EQ(sink.count(), 2u);
}

TEST(LoggerTest, OffSilencesEverything) {
  Logger logger(LogLevel::kOff);
  CapturingSink sink;
  logger.set_sink(sink.as_sink());
  logger.log(LogLevel::kError, kEpoch, "c", "dropped");
  EXPECT_EQ(sink.count(), 0u);
}

TEST(LoggerTest, RecordsCarryFields) {
  Logger logger(LogLevel::kDebug);
  CapturingSink sink;
  logger.set_sink(sink.as_sink());
  logger.log(LogLevel::kInfo, kEpoch + sec(3), "schedd", "crashed");
  auto records = sink.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].level, LogLevel::kInfo);
  EXPECT_EQ(records[0].time, kEpoch + sec(3));
  EXPECT_EQ(records[0].component, "schedd");
  EXPECT_EQ(records[0].message, "crashed");
}

TEST(LoggerTest, EnabledMatchesThreshold) {
  Logger logger(LogLevel::kInfo);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_TRUE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
}

TEST(LoggerTest, ThresholdAdjustable) {
  Logger logger(LogLevel::kError);
  CapturingSink sink;
  logger.set_sink(sink.as_sink());
  logger.log(LogLevel::kInfo, kEpoch, "c", "dropped");
  logger.set_threshold(LogLevel::kDebug);
  logger.log(LogLevel::kDebug, kEpoch, "c", "kept");
  EXPECT_EQ(sink.count(), 1u);
}

TEST(LoggerTest, ClearResetsCapture) {
  Logger logger(LogLevel::kDebug);
  CapturingSink sink;
  logger.set_sink(sink.as_sink());
  logger.log(LogLevel::kInfo, kEpoch, "c", "one");
  sink.clear();
  EXPECT_EQ(sink.count(), 0u);
}

TEST(LogLevelTest, Names) {
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace ethergrid
