#include "util/status.hpp"

#include <gtest/gtest.h>

namespace ethergrid {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_FALSE(s.failed());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCode) {
  EXPECT_EQ(Status::failure().code(), StatusCode::kFailure);
  EXPECT_EQ(Status::timeout().code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::killed().code(), StatusCode::kKilled);
  EXPECT_EQ(Status::not_found().code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::resource_exhausted().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::invalid_argument().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::io_error().code(), StatusCode::kIoError);
  EXPECT_EQ(Status::unavailable().code(), StatusCode::kUnavailable);
}

TEST(StatusTest, FailedStatusesAreNotOk) {
  for (Status s : {Status::failure(), Status::timeout(), Status::killed(),
                   Status::not_found(), Status::resource_exhausted()}) {
    EXPECT_TRUE(s.failed()) << s.to_string();
    EXPECT_FALSE(s.ok());
  }
}

TEST(StatusTest, MessageIsCarried) {
  Status s = Status::failure("disk full");
  EXPECT_EQ(s.message(), "disk full");
  EXPECT_EQ(s.to_string(), "FAILURE: disk full");
}

TEST(StatusTest, ToStringWithoutMessageIsJustCategory) {
  EXPECT_EQ(Status::timeout().to_string(), "TIMEOUT");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::failure("x"), Status::failure("x"));
  EXPECT_FALSE(Status::failure("x") == Status::failure("y"));
  EXPECT_FALSE(Status::failure("x") == Status::timeout("x"));
  EXPECT_EQ(Status::success(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_EQ(status_code_name(StatusCode::kTimeout), "TIMEOUT");
  EXPECT_EQ(status_code_name(StatusCode::kKilled), "KILLED");
  EXPECT_EQ(status_code_name(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
}

}  // namespace
}  // namespace ethergrid
