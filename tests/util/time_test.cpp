#include "util/time.hpp"

#include <gtest/gtest.h>

namespace ethergrid {
namespace {

TEST(TimeTest, ConstructorsScaleCorrectly) {
  EXPECT_EQ(usec(5).count(), 5);
  EXPECT_EQ(msec(5).count(), 5000);
  EXPECT_EQ(sec(5).count(), 5000000);
  EXPECT_EQ(sec(0.5).count(), 500000);
  EXPECT_EQ(minutes(2).count(), 120000000);
  EXPECT_EQ(hours(1).count(), 3600000000LL);
}

TEST(TimeTest, ToSecondsRoundTrips) {
  EXPECT_DOUBLE_EQ(to_seconds(sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_seconds(msec(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(kEpoch + sec(7)), 7.0);
}

TEST(TimeTest, TimePointArithmetic) {
  TimePoint t = kEpoch + sec(10);
  EXPECT_EQ((t + sec(5)) - t, sec(5));
  EXPECT_LT(t, t + usec(1));
}

struct DurationCase {
  const char* text;
  std::int64_t expected_us;
};

class ParseDurationTest : public ::testing::TestWithParam<DurationCase> {};

TEST_P(ParseDurationTest, Parses) {
  Duration d;
  ASSERT_TRUE(parse_duration(GetParam().text, &d)) << GetParam().text;
  EXPECT_EQ(d.count(), GetParam().expected_us) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    PaperPhrases, ParseDurationTest,
    ::testing::Values(
        DurationCase{"30 minutes", 30LL * 60 * 1000000},
        DurationCase{"1 hour", 3600LL * 1000000},
        DurationCase{"5 minutes", 300LL * 1000000},
        DurationCase{"60 seconds", 60LL * 1000000},
        DurationCase{"900 seconds", 900LL * 1000000},
        DurationCase{"5 seconds", 5LL * 1000000},
        DurationCase{"1 minute", 60LL * 1000000}));

INSTANTIATE_TEST_SUITE_P(
    ShortForms, ParseDurationTest,
    ::testing::Values(DurationCase{"5s", 5000000}, DurationCase{"5 s", 5000000},
                      DurationCase{"10m", 600000000},
                      DurationCase{"2h", 7200000000LL},
                      DurationCase{"1d", 86400000000LL},
                      DurationCase{"250ms", 250000},
                      DurationCase{"1.5s", 1500000},
                      DurationCase{"0.5 hours", 1800000000LL}));

INSTANTIATE_TEST_SUITE_P(
    Compound, ParseDurationTest,
    ::testing::Values(DurationCase{"1h30m", 5400000000LL},
                      DurationCase{"1 hour 30 minutes", 5400000000LL},
                      DurationCase{"2m 30s", 150000000},
                      DurationCase{"1m1s", 61000000}));

INSTANTIATE_TEST_SUITE_P(
    BareNumbersAreSeconds, ParseDurationTest,
    ::testing::Values(DurationCase{"5", 5000000}, DurationCase{"0", 0},
                      DurationCase{"3.25", 3250000}));

class ParseDurationRejectTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(ParseDurationRejectTest, Rejects) {
  Duration d;
  EXPECT_FALSE(parse_duration(GetParam(), &d)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, ParseDurationRejectTest,
                         ::testing::Values("", "  ", "abc", "5 lightyears",
                                           "minutes", "5 5 minutes x",
                                           "--3s"));

TEST(FormatDurationTest, RendersHumanReadably) {
  EXPECT_EQ(format_duration(usec(500)), "500us");
  EXPECT_EQ(format_duration(msec(5)), "5ms");
  EXPECT_EQ(format_duration(sec(5)), "5s");
  EXPECT_EQ(format_duration(sec(90)), "1m30s");
  EXPECT_EQ(format_duration(hours(2) + minutes(5)), "2h5m");
}

}  // namespace
}  // namespace ethergrid
