#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace ethergrid {
namespace {

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SummaryStatsTest, SingleValue) {
  SummaryStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryStatsTest, KnownMoments) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(LatencyHistogramTest, EmptyQuantileIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), Duration(0));
  EXPECT_EQ(h.count(), 0);
}

TEST(LatencyHistogramTest, SingleValue) {
  LatencyHistogram h;
  h.add(msec(10));
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), msec(10));
  EXPECT_EQ(h.max(), msec(10));
  // Bucketed: the quantile lands within [2^k, 2^(k+1)) around 10ms.
  EXPECT_GE(h.quantile(0.5), msec(5));
  EXPECT_LE(h.quantile(0.5), msec(20));
}

TEST(LatencyHistogramTest, QuantilesAreMonotone) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(msec(i));
  Duration previous(0);
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    Duration v = h.quantile(q);
    EXPECT_GE(v, previous) << "q=" << q;
    previous = v;
  }
}

TEST(LatencyHistogramTest, MedianRoughlyCorrect) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(msec(i));
  // Power-of-two buckets: median of U(1ms,1000ms) is ~500ms; accept the
  // bucket span [256ms, 1024ms).
  Duration med = h.quantile(0.5);
  EXPECT_GE(med, msec(256));
  EXPECT_LT(med, msec(1024));
}

TEST(LatencyHistogramTest, ZeroAndNegativeDurationsLandInFirstBucket) {
  LatencyHistogram h;
  h.add(Duration(0));
  h.add(Duration(-5));
  EXPECT_EQ(h.count(), 2);
  EXPECT_LE(h.quantile(1.0), Duration(2));
}

TEST(TimeSeriesTest, RecordsPoints) {
  TimeSeries ts("fds");
  EXPECT_TRUE(ts.empty());
  ts.sample(kEpoch + sec(1), 10.0);
  ts.sample(kEpoch + sec(2), 20.0);
  ASSERT_EQ(ts.points().size(), 2u);
  EXPECT_EQ(ts.name(), "fds");
  EXPECT_DOUBLE_EQ(ts.last(), 20.0);
  EXPECT_DOUBLE_EQ(ts.min_value(), 10.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 20.0);
}

TEST(TimeSeriesTest, LastFallback) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.last(-1.0), -1.0);
}

TEST(EventSeriesTest, CountsCumulatively) {
  EventSeries es("transfers");
  es.record(kEpoch + sec(1));
  es.record(kEpoch + sec(5));
  es.record(kEpoch + sec(5));
  EXPECT_EQ(es.total(), 3);
  ASSERT_EQ(es.series().points().size(), 3u);
  EXPECT_DOUBLE_EQ(es.series().points().back().value, 3.0);
}

TEST(EventSeriesTest, CountBefore) {
  EventSeries es;
  es.record(kEpoch + sec(10));
  es.record(kEpoch + sec(20));
  es.record(kEpoch + sec(30));
  EXPECT_EQ(es.count_before(kEpoch + sec(5)), 0);
  EXPECT_EQ(es.count_before(kEpoch + sec(10)), 1);
  EXPECT_EQ(es.count_before(kEpoch + sec(25)), 2);
  EXPECT_EQ(es.count_before(kEpoch + sec(99)), 3);
}

}  // namespace
}  // namespace ethergrid
