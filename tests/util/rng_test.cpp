#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ethergrid {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 5u);  // not stuck at a fixed point
}

TEST(RngTest, NamedStreamsAreIndependentAndStable) {
  Rng root(7);
  Rng a1 = root.stream("alpha");
  Rng a2 = root.stream("alpha");
  Rng b = root.stream("beta");
  EXPECT_EQ(a1.next_u64(), a2.next_u64());
  Rng a3 = root.stream("alpha");
  EXPECT_NE(a3.next_u64(), b.next_u64());
}

TEST(RngTest, IndexedStreamsAreDecorrelated) {
  Rng root(7);
  Rng s0 = root.stream(std::uint64_t{0});
  Rng s1 = root.stream(std::uint64_t{1});
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0.next_u64() == s1.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, StreamDerivationDoesNotPerturbParent) {
  Rng a(9), b(9);
  (void)a.stream("child");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 10000; ++i) {
    double x = r.uniform(1.0, 2.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LT(x, 2.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng r(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng r(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng r(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(RngTest, ChanceExtremes) {
  Rng r(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng r(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(double(hits) / n, 0.25, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng r(12);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double x = r.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, Fnv1a64KnownValues) {
  // FNV-1a reference: hash of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(RngTest, SplitmixAdvancesState) {
  std::uint64_t s = 1;
  std::uint64_t a = splitmix64_next(&s);
  std::uint64_t b = splitmix64_next(&s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 1u);
}

}  // namespace
}  // namespace ethergrid
