#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace ethergrid {
namespace {

TEST(SplitTest, SplitsOnWhitespaceByDefault) {
  EXPECT_EQ(split("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("  a\tb "), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split("").empty());
  EXPECT_TRUE(split("   ").empty());
}

TEST(SplitTest, CustomDelimiters) {
  EXPECT_EQ(split("a,b,,c", ","), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitKeepEmptyTest, PreservesEmptyFields) {
  EXPECT_EQ(split_keep_empty("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split_keep_empty(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split_keep_empty("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(AffixTest, StartsAndEndsWith) {
  EXPECT_TRUE(starts_with("filename.done", "file"));
  EXPECT_FALSE(starts_with("file", "filename"));
  EXPECT_TRUE(ends_with("filename.done", ".done"));
  EXPECT_FALSE(ends_with("done", "x.done"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(ToLowerTest, Lowercases) {
  EXPECT_EQ(to_lower("MiXeD 123"), "mixed 123");
}

TEST(ParseIntTest, AcceptsIntegers) {
  long long v = 0;
  EXPECT_TRUE(parse_int("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(parse_int("+3", &v));
  EXPECT_EQ(v, 3);
  EXPECT_TRUE(parse_int("  10 ", &v));
  EXPECT_EQ(v, 10);
}

TEST(ParseIntTest, RejectsGarbage) {
  long long v = 0;
  EXPECT_FALSE(parse_int("", &v));
  EXPECT_FALSE(parse_int("4x", &v));
  EXPECT_FALSE(parse_int("x4", &v));
  EXPECT_FALSE(parse_int("-", &v));
  EXPECT_FALSE(parse_int("1.5", &v));
}

TEST(IsIntegerTest, MatchesParseInt) {
  EXPECT_TRUE(is_integer("123"));
  EXPECT_TRUE(is_integer("-1"));
  EXPECT_FALSE(is_integer("1.0"));
  EXPECT_FALSE(is_integer("abc"));
}

TEST(StrprintfTest, FormatsLikePrintf) {
  EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strprintf("empty"), "empty");
}

}  // namespace
}  // namespace ethergrid
