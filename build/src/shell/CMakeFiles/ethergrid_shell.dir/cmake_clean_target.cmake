file(REMOVE_RECURSE
  "libethergrid_shell.a"
)
