# Empty dependencies file for ethergrid_shell.
# This may be replaced when dependencies are built.
