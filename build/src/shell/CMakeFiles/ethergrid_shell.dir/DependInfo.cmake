
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shell/audit.cpp" "src/shell/CMakeFiles/ethergrid_shell.dir/audit.cpp.o" "gcc" "src/shell/CMakeFiles/ethergrid_shell.dir/audit.cpp.o.d"
  "/root/repo/src/shell/environment.cpp" "src/shell/CMakeFiles/ethergrid_shell.dir/environment.cpp.o" "gcc" "src/shell/CMakeFiles/ethergrid_shell.dir/environment.cpp.o.d"
  "/root/repo/src/shell/interpreter.cpp" "src/shell/CMakeFiles/ethergrid_shell.dir/interpreter.cpp.o" "gcc" "src/shell/CMakeFiles/ethergrid_shell.dir/interpreter.cpp.o.d"
  "/root/repo/src/shell/lexer.cpp" "src/shell/CMakeFiles/ethergrid_shell.dir/lexer.cpp.o" "gcc" "src/shell/CMakeFiles/ethergrid_shell.dir/lexer.cpp.o.d"
  "/root/repo/src/shell/parser.cpp" "src/shell/CMakeFiles/ethergrid_shell.dir/parser.cpp.o" "gcc" "src/shell/CMakeFiles/ethergrid_shell.dir/parser.cpp.o.d"
  "/root/repo/src/shell/sim_executor.cpp" "src/shell/CMakeFiles/ethergrid_shell.dir/sim_executor.cpp.o" "gcc" "src/shell/CMakeFiles/ethergrid_shell.dir/sim_executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ethergrid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ethergrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ethergrid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
