file(REMOVE_RECURSE
  "CMakeFiles/ethergrid_shell.dir/audit.cpp.o"
  "CMakeFiles/ethergrid_shell.dir/audit.cpp.o.d"
  "CMakeFiles/ethergrid_shell.dir/environment.cpp.o"
  "CMakeFiles/ethergrid_shell.dir/environment.cpp.o.d"
  "CMakeFiles/ethergrid_shell.dir/interpreter.cpp.o"
  "CMakeFiles/ethergrid_shell.dir/interpreter.cpp.o.d"
  "CMakeFiles/ethergrid_shell.dir/lexer.cpp.o"
  "CMakeFiles/ethergrid_shell.dir/lexer.cpp.o.d"
  "CMakeFiles/ethergrid_shell.dir/parser.cpp.o"
  "CMakeFiles/ethergrid_shell.dir/parser.cpp.o.d"
  "CMakeFiles/ethergrid_shell.dir/sim_executor.cpp.o"
  "CMakeFiles/ethergrid_shell.dir/sim_executor.cpp.o.d"
  "libethergrid_shell.a"
  "libethergrid_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethergrid_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
