file(REMOVE_RECURSE
  "libethergrid_util.a"
)
