file(REMOVE_RECURSE
  "CMakeFiles/ethergrid_util.dir/log.cpp.o"
  "CMakeFiles/ethergrid_util.dir/log.cpp.o.d"
  "CMakeFiles/ethergrid_util.dir/rng.cpp.o"
  "CMakeFiles/ethergrid_util.dir/rng.cpp.o.d"
  "CMakeFiles/ethergrid_util.dir/stats.cpp.o"
  "CMakeFiles/ethergrid_util.dir/stats.cpp.o.d"
  "CMakeFiles/ethergrid_util.dir/status.cpp.o"
  "CMakeFiles/ethergrid_util.dir/status.cpp.o.d"
  "CMakeFiles/ethergrid_util.dir/strings.cpp.o"
  "CMakeFiles/ethergrid_util.dir/strings.cpp.o.d"
  "CMakeFiles/ethergrid_util.dir/time.cpp.o"
  "CMakeFiles/ethergrid_util.dir/time.cpp.o.d"
  "libethergrid_util.a"
  "libethergrid_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethergrid_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
