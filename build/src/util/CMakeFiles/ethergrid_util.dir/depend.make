# Empty dependencies file for ethergrid_util.
# This may be replaced when dependencies are built.
