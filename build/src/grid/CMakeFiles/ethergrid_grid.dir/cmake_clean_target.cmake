file(REMOVE_RECURSE
  "libethergrid_grid.a"
)
