file(REMOVE_RECURSE
  "CMakeFiles/ethergrid_grid.dir/clients.cpp.o"
  "CMakeFiles/ethergrid_grid.dir/clients.cpp.o.d"
  "CMakeFiles/ethergrid_grid.dir/fd_table.cpp.o"
  "CMakeFiles/ethergrid_grid.dir/fd_table.cpp.o.d"
  "CMakeFiles/ethergrid_grid.dir/fileserver.cpp.o"
  "CMakeFiles/ethergrid_grid.dir/fileserver.cpp.o.d"
  "CMakeFiles/ethergrid_grid.dir/fsbuffer.cpp.o"
  "CMakeFiles/ethergrid_grid.dir/fsbuffer.cpp.o.d"
  "CMakeFiles/ethergrid_grid.dir/io_channel.cpp.o"
  "CMakeFiles/ethergrid_grid.dir/io_channel.cpp.o.d"
  "CMakeFiles/ethergrid_grid.dir/schedd.cpp.o"
  "CMakeFiles/ethergrid_grid.dir/schedd.cpp.o.d"
  "CMakeFiles/ethergrid_grid.dir/submit_file.cpp.o"
  "CMakeFiles/ethergrid_grid.dir/submit_file.cpp.o.d"
  "libethergrid_grid.a"
  "libethergrid_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethergrid_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
