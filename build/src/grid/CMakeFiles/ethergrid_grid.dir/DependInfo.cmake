
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/clients.cpp" "src/grid/CMakeFiles/ethergrid_grid.dir/clients.cpp.o" "gcc" "src/grid/CMakeFiles/ethergrid_grid.dir/clients.cpp.o.d"
  "/root/repo/src/grid/fd_table.cpp" "src/grid/CMakeFiles/ethergrid_grid.dir/fd_table.cpp.o" "gcc" "src/grid/CMakeFiles/ethergrid_grid.dir/fd_table.cpp.o.d"
  "/root/repo/src/grid/fileserver.cpp" "src/grid/CMakeFiles/ethergrid_grid.dir/fileserver.cpp.o" "gcc" "src/grid/CMakeFiles/ethergrid_grid.dir/fileserver.cpp.o.d"
  "/root/repo/src/grid/fsbuffer.cpp" "src/grid/CMakeFiles/ethergrid_grid.dir/fsbuffer.cpp.o" "gcc" "src/grid/CMakeFiles/ethergrid_grid.dir/fsbuffer.cpp.o.d"
  "/root/repo/src/grid/io_channel.cpp" "src/grid/CMakeFiles/ethergrid_grid.dir/io_channel.cpp.o" "gcc" "src/grid/CMakeFiles/ethergrid_grid.dir/io_channel.cpp.o.d"
  "/root/repo/src/grid/schedd.cpp" "src/grid/CMakeFiles/ethergrid_grid.dir/schedd.cpp.o" "gcc" "src/grid/CMakeFiles/ethergrid_grid.dir/schedd.cpp.o.d"
  "/root/repo/src/grid/submit_file.cpp" "src/grid/CMakeFiles/ethergrid_grid.dir/submit_file.cpp.o" "gcc" "src/grid/CMakeFiles/ethergrid_grid.dir/submit_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ethergrid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ethergrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ethergrid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
