# Empty dependencies file for ethergrid_grid.
# This may be replaced when dependencies are built.
