# Empty compiler generated dependencies file for ethergrid_posix.
# This may be replaced when dependencies are built.
