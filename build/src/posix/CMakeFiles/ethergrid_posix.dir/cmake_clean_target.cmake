file(REMOVE_RECURSE
  "libethergrid_posix.a"
)
