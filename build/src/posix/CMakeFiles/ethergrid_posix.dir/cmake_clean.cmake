file(REMOVE_RECURSE
  "CMakeFiles/ethergrid_posix.dir/posix_executor.cpp.o"
  "CMakeFiles/ethergrid_posix.dir/posix_executor.cpp.o.d"
  "libethergrid_posix.a"
  "libethergrid_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethergrid_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
