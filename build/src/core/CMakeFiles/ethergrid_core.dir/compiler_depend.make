# Empty compiler generated dependencies file for ethergrid_core.
# This may be replaced when dependencies are built.
