file(REMOVE_RECURSE
  "CMakeFiles/ethergrid_core.dir/backoff.cpp.o"
  "CMakeFiles/ethergrid_core.dir/backoff.cpp.o.d"
  "CMakeFiles/ethergrid_core.dir/clock.cpp.o"
  "CMakeFiles/ethergrid_core.dir/clock.cpp.o.d"
  "CMakeFiles/ethergrid_core.dir/discipline.cpp.o"
  "CMakeFiles/ethergrid_core.dir/discipline.cpp.o.d"
  "CMakeFiles/ethergrid_core.dir/retry.cpp.o"
  "CMakeFiles/ethergrid_core.dir/retry.cpp.o.d"
  "libethergrid_core.a"
  "libethergrid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethergrid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
