file(REMOVE_RECURSE
  "libethergrid_core.a"
)
