
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backoff.cpp" "src/core/CMakeFiles/ethergrid_core.dir/backoff.cpp.o" "gcc" "src/core/CMakeFiles/ethergrid_core.dir/backoff.cpp.o.d"
  "/root/repo/src/core/clock.cpp" "src/core/CMakeFiles/ethergrid_core.dir/clock.cpp.o" "gcc" "src/core/CMakeFiles/ethergrid_core.dir/clock.cpp.o.d"
  "/root/repo/src/core/discipline.cpp" "src/core/CMakeFiles/ethergrid_core.dir/discipline.cpp.o" "gcc" "src/core/CMakeFiles/ethergrid_core.dir/discipline.cpp.o.d"
  "/root/repo/src/core/retry.cpp" "src/core/CMakeFiles/ethergrid_core.dir/retry.cpp.o" "gcc" "src/core/CMakeFiles/ethergrid_core.dir/retry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ethergrid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ethergrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
