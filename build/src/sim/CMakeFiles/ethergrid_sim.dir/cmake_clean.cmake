file(REMOVE_RECURSE
  "CMakeFiles/ethergrid_sim.dir/kernel.cpp.o"
  "CMakeFiles/ethergrid_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/ethergrid_sim.dir/resource.cpp.o"
  "CMakeFiles/ethergrid_sim.dir/resource.cpp.o.d"
  "libethergrid_sim.a"
  "libethergrid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethergrid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
