file(REMOVE_RECURSE
  "libethergrid_sim.a"
)
