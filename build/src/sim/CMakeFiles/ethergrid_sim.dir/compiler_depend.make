# Empty compiler generated dependencies file for ethergrid_sim.
# This may be replaced when dependencies are built.
