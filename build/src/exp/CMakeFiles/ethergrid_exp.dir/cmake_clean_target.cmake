file(REMOVE_RECURSE
  "libethergrid_exp.a"
)
