file(REMOVE_RECURSE
  "CMakeFiles/ethergrid_exp.dir/scenarios.cpp.o"
  "CMakeFiles/ethergrid_exp.dir/scenarios.cpp.o.d"
  "CMakeFiles/ethergrid_exp.dir/table.cpp.o"
  "CMakeFiles/ethergrid_exp.dir/table.cpp.o.d"
  "libethergrid_exp.a"
  "libethergrid_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethergrid_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
