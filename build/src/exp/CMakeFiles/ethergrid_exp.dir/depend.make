# Empty dependencies file for ethergrid_exp.
# This may be replaced when dependencies are built.
