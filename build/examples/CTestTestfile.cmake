# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ftsh_syntax_archive-unpack "/root/repo/build/examples/ftsh" "-n" "/root/repo/examples/scripts/archive-unpack.ftsh")
set_tests_properties(ftsh_syntax_archive-unpack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(ftsh_syntax_local-test-first "/root/repo/build/examples/ftsh" "-n" "/root/repo/examples/scripts/local-test-first.ftsh")
set_tests_properties(ftsh_syntax_local-test-first PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(ftsh_syntax_mirror-fetch "/root/repo/build/examples/ftsh" "-n" "/root/repo/examples/scripts/mirror-fetch.ftsh")
set_tests_properties(ftsh_syntax_mirror-fetch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(ftsh_syntax_probe-before-submit "/root/repo/build/examples/ftsh" "-n" "/root/repo/examples/scripts/probe-before-submit.ftsh")
set_tests_properties(ftsh_syntax_probe-before-submit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
