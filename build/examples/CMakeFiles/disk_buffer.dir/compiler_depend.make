# Empty compiler generated dependencies file for disk_buffer.
# This may be replaced when dependencies are built.
