file(REMOVE_RECURSE
  "CMakeFiles/disk_buffer.dir/disk_buffer.cpp.o"
  "CMakeFiles/disk_buffer.dir/disk_buffer.cpp.o.d"
  "disk_buffer"
  "disk_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
