file(REMOVE_RECURSE
  "CMakeFiles/job_submission.dir/job_submission.cpp.o"
  "CMakeFiles/job_submission.dir/job_submission.cpp.o.d"
  "job_submission"
  "job_submission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_submission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
