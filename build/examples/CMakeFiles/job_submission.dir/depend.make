# Empty dependencies file for job_submission.
# This may be replaced when dependencies are built.
