
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/job_submission.cpp" "examples/CMakeFiles/job_submission.dir/job_submission.cpp.o" "gcc" "examples/CMakeFiles/job_submission.dir/job_submission.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/shell/CMakeFiles/ethergrid_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ethergrid_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ethergrid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ethergrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ethergrid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
