# Empty dependencies file for data_replication.
# This may be replaced when dependencies are built.
