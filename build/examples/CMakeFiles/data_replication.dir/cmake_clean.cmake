file(REMOVE_RECURSE
  "CMakeFiles/data_replication.dir/data_replication.cpp.o"
  "CMakeFiles/data_replication.dir/data_replication.cpp.o.d"
  "data_replication"
  "data_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
