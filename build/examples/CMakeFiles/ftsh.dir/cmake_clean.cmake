file(REMOVE_RECURSE
  "CMakeFiles/ftsh.dir/ftsh.cpp.o"
  "CMakeFiles/ftsh.dir/ftsh.cpp.o.d"
  "ftsh"
  "ftsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
