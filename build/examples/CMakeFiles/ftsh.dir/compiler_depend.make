# Empty compiler generated dependencies file for ftsh.
# This may be replaced when dependencies are built.
