# Empty dependencies file for gridsim.
# This may be replaced when dependencies are built.
