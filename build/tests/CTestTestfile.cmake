# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/posix_test[1]_include.cmake")
include("/root/repo/build/tests/shell_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
add_test(nested_ftsh_protocol "sh" "/root/repo/tests/tools/nested_ftsh_test.sh" "/root/repo/build/examples/ftsh")
set_tests_properties(nested_ftsh_protocol PROPERTIES  TIMEOUT "30" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;90;add_test;/root/repo/tests/CMakeLists.txt;0;")
