
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/backoff_test.cpp" "tests/CMakeFiles/core_test.dir/core/backoff_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/backoff_test.cpp.o.d"
  "/root/repo/tests/core/clock_test.cpp" "tests/CMakeFiles/core_test.dir/core/clock_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/clock_test.cpp.o.d"
  "/root/repo/tests/core/discipline_test.cpp" "tests/CMakeFiles/core_test.dir/core/discipline_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/discipline_test.cpp.o.d"
  "/root/repo/tests/core/retry_test.cpp" "tests/CMakeFiles/core_test.dir/core/retry_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/retry_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ethergrid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ethergrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ethergrid_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
