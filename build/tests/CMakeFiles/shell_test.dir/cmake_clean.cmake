file(REMOVE_RECURSE
  "CMakeFiles/shell_test.dir/shell/audit_test.cpp.o"
  "CMakeFiles/shell_test.dir/shell/audit_test.cpp.o.d"
  "CMakeFiles/shell_test.dir/shell/environment_test.cpp.o"
  "CMakeFiles/shell_test.dir/shell/environment_test.cpp.o.d"
  "CMakeFiles/shell_test.dir/shell/interpreter_test.cpp.o"
  "CMakeFiles/shell_test.dir/shell/interpreter_test.cpp.o.d"
  "CMakeFiles/shell_test.dir/shell/lexer_test.cpp.o"
  "CMakeFiles/shell_test.dir/shell/lexer_test.cpp.o.d"
  "CMakeFiles/shell_test.dir/shell/parser_test.cpp.o"
  "CMakeFiles/shell_test.dir/shell/parser_test.cpp.o.d"
  "CMakeFiles/shell_test.dir/shell/robustness_test.cpp.o"
  "CMakeFiles/shell_test.dir/shell/robustness_test.cpp.o.d"
  "CMakeFiles/shell_test.dir/shell/semantics_test.cpp.o"
  "CMakeFiles/shell_test.dir/shell/semantics_test.cpp.o.d"
  "CMakeFiles/shell_test.dir/shell/sim_executor_test.cpp.o"
  "CMakeFiles/shell_test.dir/shell/sim_executor_test.cpp.o.d"
  "shell_test"
  "shell_test.pdb"
  "shell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
