
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/shell/audit_test.cpp" "tests/CMakeFiles/shell_test.dir/shell/audit_test.cpp.o" "gcc" "tests/CMakeFiles/shell_test.dir/shell/audit_test.cpp.o.d"
  "/root/repo/tests/shell/environment_test.cpp" "tests/CMakeFiles/shell_test.dir/shell/environment_test.cpp.o" "gcc" "tests/CMakeFiles/shell_test.dir/shell/environment_test.cpp.o.d"
  "/root/repo/tests/shell/interpreter_test.cpp" "tests/CMakeFiles/shell_test.dir/shell/interpreter_test.cpp.o" "gcc" "tests/CMakeFiles/shell_test.dir/shell/interpreter_test.cpp.o.d"
  "/root/repo/tests/shell/lexer_test.cpp" "tests/CMakeFiles/shell_test.dir/shell/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/shell_test.dir/shell/lexer_test.cpp.o.d"
  "/root/repo/tests/shell/parser_test.cpp" "tests/CMakeFiles/shell_test.dir/shell/parser_test.cpp.o" "gcc" "tests/CMakeFiles/shell_test.dir/shell/parser_test.cpp.o.d"
  "/root/repo/tests/shell/robustness_test.cpp" "tests/CMakeFiles/shell_test.dir/shell/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/shell_test.dir/shell/robustness_test.cpp.o.d"
  "/root/repo/tests/shell/semantics_test.cpp" "tests/CMakeFiles/shell_test.dir/shell/semantics_test.cpp.o" "gcc" "tests/CMakeFiles/shell_test.dir/shell/semantics_test.cpp.o.d"
  "/root/repo/tests/shell/sim_executor_test.cpp" "tests/CMakeFiles/shell_test.dir/shell/sim_executor_test.cpp.o" "gcc" "tests/CMakeFiles/shell_test.dir/shell/sim_executor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ethergrid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ethergrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/ethergrid_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ethergrid_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
