
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property/buffer_property_test.cpp" "tests/CMakeFiles/property_test.dir/property/buffer_property_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property/buffer_property_test.cpp.o.d"
  "/root/repo/tests/property/kernel_property_test.cpp" "tests/CMakeFiles/property_test.dir/property/kernel_property_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property/kernel_property_test.cpp.o.d"
  "/root/repo/tests/property/retry_property_test.cpp" "tests/CMakeFiles/property_test.dir/property/retry_property_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property/retry_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ethergrid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ethergrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ethergrid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ethergrid_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
