
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/grid/clients_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/clients_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/clients_test.cpp.o.d"
  "/root/repo/tests/grid/fd_table_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/fd_table_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/fd_table_test.cpp.o.d"
  "/root/repo/tests/grid/fileserver_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/fileserver_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/fileserver_test.cpp.o.d"
  "/root/repo/tests/grid/fsbuffer_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/fsbuffer_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/fsbuffer_test.cpp.o.d"
  "/root/repo/tests/grid/io_channel_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/io_channel_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/io_channel_test.cpp.o.d"
  "/root/repo/tests/grid/schedd_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/schedd_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/schedd_test.cpp.o.d"
  "/root/repo/tests/grid/submit_file_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/submit_file_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/submit_file_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ethergrid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ethergrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ethergrid_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ethergrid_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
