# Empty dependencies file for fidelity_script_vs_api.
# This may be replaced when dependencies are built.
