file(REMOVE_RECURSE
  "CMakeFiles/fidelity_script_vs_api.dir/fidelity_script_vs_api.cpp.o"
  "CMakeFiles/fidelity_script_vs_api.dir/fidelity_script_vs_api.cpp.o.d"
  "fidelity_script_vs_api"
  "fidelity_script_vs_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidelity_script_vs_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
