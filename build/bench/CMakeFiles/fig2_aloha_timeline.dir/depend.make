# Empty dependencies file for fig2_aloha_timeline.
# This may be replaced when dependencies are built.
