# Empty compiler generated dependencies file for micro_shell.
# This may be replaced when dependencies are built.
