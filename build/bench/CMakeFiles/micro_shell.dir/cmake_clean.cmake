file(REMOVE_RECURSE
  "CMakeFiles/micro_shell.dir/micro_shell.cpp.o"
  "CMakeFiles/micro_shell.dir/micro_shell.cpp.o.d"
  "micro_shell"
  "micro_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
