# Empty compiler generated dependencies file for fig7_ethernet_reader.
# This may be replaced when dependencies are built.
