file(REMOVE_RECURSE
  "CMakeFiles/fig7_ethernet_reader.dir/fig7_ethernet_reader.cpp.o"
  "CMakeFiles/fig7_ethernet_reader.dir/fig7_ethernet_reader.cpp.o.d"
  "fig7_ethernet_reader"
  "fig7_ethernet_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ethernet_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
