file(REMOVE_RECURSE
  "CMakeFiles/ablation_carrier_threshold.dir/ablation_carrier_threshold.cpp.o"
  "CMakeFiles/ablation_carrier_threshold.dir/ablation_carrier_threshold.cpp.o.d"
  "ablation_carrier_threshold"
  "ablation_carrier_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_carrier_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
