# Empty compiler generated dependencies file for ablation_carrier_threshold.
# This may be replaced when dependencies are built.
