# Empty compiler generated dependencies file for fig6_aloha_reader.
# This may be replaced when dependencies are built.
