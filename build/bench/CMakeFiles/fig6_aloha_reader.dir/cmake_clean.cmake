file(REMOVE_RECURSE
  "CMakeFiles/fig6_aloha_reader.dir/fig6_aloha_reader.cpp.o"
  "CMakeFiles/fig6_aloha_reader.dir/fig6_aloha_reader.cpp.o.d"
  "fig6_aloha_reader"
  "fig6_aloha_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_aloha_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
