
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_aloha_reader.cpp" "bench/CMakeFiles/fig6_aloha_reader.dir/fig6_aloha_reader.cpp.o" "gcc" "bench/CMakeFiles/fig6_aloha_reader.dir/fig6_aloha_reader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/ethergrid_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ethergrid_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/ethergrid_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ethergrid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ethergrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ethergrid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
