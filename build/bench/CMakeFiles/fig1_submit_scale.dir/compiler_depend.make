# Empty compiler generated dependencies file for fig1_submit_scale.
# This may be replaced when dependencies are built.
