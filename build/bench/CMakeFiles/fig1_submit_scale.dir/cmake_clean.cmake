file(REMOVE_RECURSE
  "CMakeFiles/fig1_submit_scale.dir/fig1_submit_scale.cpp.o"
  "CMakeFiles/fig1_submit_scale.dir/fig1_submit_scale.cpp.o.d"
  "fig1_submit_scale"
  "fig1_submit_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_submit_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
