file(REMOVE_RECURSE
  "CMakeFiles/fig5_buffer_collisions.dir/fig5_buffer_collisions.cpp.o"
  "CMakeFiles/fig5_buffer_collisions.dir/fig5_buffer_collisions.cpp.o.d"
  "fig5_buffer_collisions"
  "fig5_buffer_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_buffer_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
