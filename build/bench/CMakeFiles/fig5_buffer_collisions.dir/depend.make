# Empty dependencies file for fig5_buffer_collisions.
# This may be replaced when dependencies are built.
