file(REMOVE_RECURSE
  "CMakeFiles/ablation_forall_governor.dir/ablation_forall_governor.cpp.o"
  "CMakeFiles/ablation_forall_governor.dir/ablation_forall_governor.cpp.o.d"
  "ablation_forall_governor"
  "ablation_forall_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_forall_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
