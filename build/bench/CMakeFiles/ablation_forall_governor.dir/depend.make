# Empty dependencies file for ablation_forall_governor.
# This may be replaced when dependencies are built.
