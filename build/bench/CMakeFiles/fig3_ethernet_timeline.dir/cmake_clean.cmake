file(REMOVE_RECURSE
  "CMakeFiles/fig3_ethernet_timeline.dir/fig3_ethernet_timeline.cpp.o"
  "CMakeFiles/fig3_ethernet_timeline.dir/fig3_ethernet_timeline.cpp.o.d"
  "fig3_ethernet_timeline"
  "fig3_ethernet_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ethernet_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
