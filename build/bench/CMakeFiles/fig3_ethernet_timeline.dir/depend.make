# Empty dependencies file for fig3_ethernet_timeline.
# This may be replaced when dependencies are built.
