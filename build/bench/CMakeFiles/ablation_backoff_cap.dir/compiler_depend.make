# Empty compiler generated dependencies file for ablation_backoff_cap.
# This may be replaced when dependencies are built.
