file(REMOVE_RECURSE
  "CMakeFiles/ablation_backoff_cap.dir/ablation_backoff_cap.cpp.o"
  "CMakeFiles/ablation_backoff_cap.dir/ablation_backoff_cap.cpp.o.d"
  "ablation_backoff_cap"
  "ablation_backoff_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backoff_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
