# Empty dependencies file for ablation_limited_allocation.
# This may be replaced when dependencies are built.
