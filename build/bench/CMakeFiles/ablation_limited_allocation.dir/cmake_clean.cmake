file(REMOVE_RECURSE
  "CMakeFiles/ablation_limited_allocation.dir/ablation_limited_allocation.cpp.o"
  "CMakeFiles/ablation_limited_allocation.dir/ablation_limited_allocation.cpp.o.d"
  "ablation_limited_allocation"
  "ablation_limited_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_limited_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
