// ethergrid_mc: command-line driver for the mini model checker (src/mc).
//
// Explore a built-in scenario (or an ad-hoc ftsh script) across every
// same-instant scheduling order and fault branch, or deterministically
// re-execute a recorded counterexample trace:
//
//   ethergrid_mc --list
//   ethergrid_mc --scenario forall-abort --queue heap
//   ethergrid_mc --all --max-depth 24 --max-executions 2000
//   ethergrid_mc --script my.ftsh
//   ethergrid_mc --scenario wake-token-selftest --trace-out bug.trace
//   ethergrid_mc --replay bug.trace
//
// Exit codes: 0 = clean exploration (or replay outcome matches the trace's
// recorded expectation), 1 = violation (or replay mismatch), 2 = usage or
// input error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mc/explorer.hpp"
#include "mc/scenarios.hpp"
#include "mc/trace.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace ethergrid;

struct Args {
  bool list = false;
  bool all = false;
  std::vector<std::string> scenarios;
  std::string script_path;
  std::string replay_path;
  std::string trace_out;
  mc::ExplorerOptions options;
  bool queue_set = false;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--list] [--scenario NAME]... [--all] [--script FILE]\n"
      "          [--replay FILE] [--trace-out FILE]\n"
      "          [--queue wheel|heap] [--backend fiber|thread] [--seed N]\n"
      "          [--max-depth N] [--max-executions N] [--max-transitions N]\n"
      "          [--keep-going] [--state-pruning]\n",
      argv0);
  return 2;
}

bool parse_u64(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

void print_stats(const mc::ExplorerStats& stats, bool complete) {
  std::printf(
      "  executions=%llu transitions=%llu choice_points=%llu "
      "branches=%llu\n"
      "  sleep_skips=%llu state_prunes=%llu depth_truncations=%llu "
      "transition_truncations=%llu max_depth=%zu\n"
      "  exploration %s\n",
      static_cast<unsigned long long>(stats.executions),
      static_cast<unsigned long long>(stats.transitions),
      static_cast<unsigned long long>(stats.choice_points),
      static_cast<unsigned long long>(stats.branches_explored),
      static_cast<unsigned long long>(stats.sleep_set_skips),
      static_cast<unsigned long long>(stats.state_prunes),
      static_cast<unsigned long long>(stats.depth_truncations),
      static_cast<unsigned long long>(stats.transition_truncations),
      stats.max_depth_seen, complete ? "complete" : "bounded (incomplete)");
}

void print_violation(const mc::Violation& v) {
  std::printf("  VIOLATION [%s] %s\n", v.invariant.c_str(),
              v.message.c_str());
  std::printf("  counterexample (%zu decisions, execution %llu):\n",
              v.trace.size(), static_cast<unsigned long long>(v.execution));
  for (std::size_t i = 0; i < v.trace.size(); ++i) {
    const mc::Decision& d = v.trace[i];
    std::printf("    %3zu. %s %s -> %zu/%zu (%s)\n", i,
                mc::choice_kind_name(d.kind), d.site.c_str(), d.chosen,
                d.arity, d.label.c_str());
  }
}

// Explores one scenario; returns 0 clean, 1 violation.  Writes the first
// violation's trace to trace_out (if set).
int explore_scenario(mc::Scenario& scenario, const Args& args) {
  std::printf("exploring %s (queue=%s, seed=%llu)\n",
              scenario.name().c_str(),
              sim::queue_impl_name(args.options.kernel.queue),
              static_cast<unsigned long long>(args.options.seed));
  mc::Explorer explorer(scenario, args.options);
  const mc::ExploreResult result = explorer.explore();
  print_stats(result.stats, result.complete);
  if (result.ok()) {
    std::printf("  no violations\n");
    return 0;
  }
  for (const mc::Violation& v : result.violations) print_violation(v);
  if (!args.trace_out.empty()) {
    mc::TraceFile trace;
    trace.scenario = scenario.name();
    trace.queue = args.options.kernel.queue;
    trace.seed = args.options.seed;
    trace.violation = result.violations.front().invariant;
    trace.decisions = result.violations.front().trace;
    const Status written = mc::write_trace_file(args.trace_out, trace);
    if (written.failed()) {
      std::fprintf(stderr, "error: %s\n", written.message().c_str());
    } else {
      std::printf("  trace written to %s\n", args.trace_out.c_str());
    }
  }
  return 1;
}

int replay_trace(const Args& args) {
  mc::TraceFile trace;
  const Status read = mc::read_trace_file(args.replay_path, &trace);
  if (read.failed()) {
    std::fprintf(stderr, "error: %s\n", read.message().c_str());
    return 2;
  }
  std::unique_ptr<mc::Scenario> scenario = mc::make_scenario(trace.scenario);
  if (!scenario) {
    std::fprintf(stderr, "error: trace names unknown scenario \"%s\"\n",
                 trace.scenario.c_str());
    return 2;
  }
  mc::ExplorerOptions options = args.options;
  options.kernel.queue = trace.queue;
  options.seed = trace.seed;
  std::printf("replaying %s (%zu decisions, queue=%s, seed=%llu)\n",
              args.replay_path.c_str(), trace.decisions.size(),
              sim::queue_impl_name(trace.queue),
              static_cast<unsigned long long>(trace.seed));
  mc::Explorer explorer(*scenario, options);
  const mc::ExploreResult result = explorer.replay(trace.decisions);
  for (const mc::Violation& v : result.violations) print_violation(v);
  if (trace.violation.empty()) {
    if (result.ok()) {
      std::printf("  clean replay, as recorded\n");
      return 0;
    }
    std::printf("  REPLAY MISMATCH: trace is recorded clean but violated\n");
    return 1;
  }
  for (const mc::Violation& v : result.violations) {
    if (v.invariant == trace.violation) {
      std::printf("  reproduced recorded violation [%s]\n",
                  trace.violation.c_str());
      return 0;
    }
  }
  std::printf("  REPLAY MISMATCH: recorded violation [%s] did not reproduce\n",
              trace.violation.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  args.options.max_depth = 64;
  args.options.max_executions = 20000;
  args.options.max_transitions = 20000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--list") {
      args.list = true;
    } else if (arg == "--all") {
      args.all = true;
    } else if (arg == "--scenario") {
      const char* name = next();
      if (!name) return usage(argv[0]);
      args.scenarios.push_back(name);
    } else if (arg == "--script") {
      const char* path = next();
      if (!path) return usage(argv[0]);
      args.script_path = path;
    } else if (arg == "--replay") {
      const char* path = next();
      if (!path) return usage(argv[0]);
      args.replay_path = path;
    } else if (arg == "--trace-out") {
      const char* path = next();
      if (!path) return usage(argv[0]);
      args.trace_out = path;
    } else if (arg == "--queue") {
      const char* name = next();
      if (!name) return usage(argv[0]);
      if (std::strcmp(name, "wheel") == 0) {
        args.options.kernel.queue = sim::QueueImpl::kWheel;
      } else if (std::strcmp(name, "heap") == 0) {
        args.options.kernel.queue = sim::QueueImpl::kHeap;
      } else {
        return usage(argv[0]);
      }
      args.queue_set = true;
    } else if (arg == "--backend") {
      const char* name = next();
      if (!name) return usage(argv[0]);
      if (std::strcmp(name, "fiber") == 0) {
        args.options.kernel.backend = sim::Backend::kFiber;
      } else if (std::strcmp(name, "thread") == 0) {
        args.options.kernel.backend = sim::Backend::kThread;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--seed") {
      const char* value = next();
      if (!value || !parse_u64(value, &args.options.seed)) {
        return usage(argv[0]);
      }
    } else if (arg == "--max-depth") {
      std::uint64_t value = 0;
      const char* text = next();
      if (!text || !parse_u64(text, &value)) return usage(argv[0]);
      args.options.max_depth = static_cast<std::size_t>(value);
    } else if (arg == "--max-executions") {
      const char* text = next();
      if (!text || !parse_u64(text, &args.options.max_executions)) {
        return usage(argv[0]);
      }
    } else if (arg == "--max-transitions") {
      const char* text = next();
      if (!text || !parse_u64(text, &args.options.max_transitions)) {
        return usage(argv[0]);
      }
    } else if (arg == "--keep-going") {
      args.options.stop_on_first_violation = false;
    } else if (arg == "--state-pruning") {
      args.options.state_pruning = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (args.list) {
    for (const std::string& name : mc::scenario_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (!args.replay_path.empty()) {
    return replay_trace(args);
  }

  std::vector<std::unique_ptr<mc::Scenario>> scenarios;
  if (args.all) {
    for (const std::string& name : mc::scenario_names()) {
      // The self-test intentionally violates; --all is the CI clean sweep.
      if (name == "wake-token-selftest") continue;
      scenarios.push_back(mc::make_scenario(name));
    }
  }
  for (const std::string& name : args.scenarios) {
    std::unique_ptr<mc::Scenario> scenario = mc::make_scenario(name);
    if (!scenario) {
      std::fprintf(stderr, "unknown scenario: %s (try --list)\n",
                   name.c_str());
      return 2;
    }
    scenarios.push_back(std::move(scenario));
  }
  if (!args.script_path.empty()) {
    std::ifstream in(args.script_path);
    if (!in) {
      std::fprintf(stderr, "cannot open script: %s\n",
                   args.script_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    scenarios.push_back(
        mc::make_script_scenario("script:" + args.script_path, text.str()));
  }
  if (scenarios.empty()) return usage(argv[0]);

  int exit_code = 0;
  for (const std::unique_ptr<mc::Scenario>& scenario : scenarios) {
    const int rc = explore_scenario(*scenario, args);
    if (rc != 0) exit_code = rc;
  }
  return exit_code;
}
