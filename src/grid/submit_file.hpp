// Condor submit-description files: what `condor_submit submit.job` reads.
//
// "A Condor submitter is a standalone executable that examines a job
//  description file, connects to a schedd, and transfers the necessary
//  details and files."
//
// This implements the classic submit-file format so the scripted scenarios
// can use real job descriptions, and so the schedd's per-connection
// descriptor footprint can be derived from the job's actual transfer list
// (more files to spool = more descriptors pinned).
//
// Supported syntax (the classic core of the language):
//   # comment
//   executable = sim.exe
//   arguments  = -n 10 --fast
//   transfer_input_files = a.dat, b.dat, c.dat
//   anything_else = kept as a raw attribute
//   queue            # one job
//   queue 5          # five jobs
// Keys are case-insensitive; later assignments override earlier ones;
// `queue` statements accumulate.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace ethergrid::grid {

struct SubmitDescription {
  std::string executable;
  std::string arguments;
  std::vector<std::string> transfer_input_files;
  // Every other `key = value` line, lower-cased keys, verbatim values.
  std::map<std::string, std::string> attributes;
  // Total jobs across all queue statements; 0 if no queue line appeared.
  int queue_count = 0;

  // Descriptors a submission of this job pins on the schedd host: the
  // connection itself plus one per transfer file (spool handles).
  std::int64_t connection_fd_cost(std::int64_t base) const {
    return base + std::int64_t(transfer_input_files.size());
  }
};

// Parses the text of a submit file.  Fails with kInvalidArgument (carrying
// a line number) on malformed lines, an empty executable, or a missing
// queue statement.
Status parse_submit_file(std::string_view text, SubmitDescription* out);

}  // namespace ethergrid::grid
