// IoChannel: the shared medium of the filesystem scenario.
//
// A shared (NFS-like) filesystem has finite server bandwidth; every client
// RPC -- data or metadata, successful or futile -- occupies it.  This is
// what makes the disk buffer a true Ethernet-style medium: a fixed client's
// flood of doomed writes does not merely fail, it consumes the capacity the
// consumer needs to drain the buffer.
//
// Arbitration is the grid::Substrate capacity interface: the default
// binary model serves RPCs FIFO through one slot (the seed semantics);
// the fluid model admits every RPC at once and shares the bandwidth by
// weighted max-min fairness.  Deadline/kill-aware either way.
#pragma once

#include <cstdint>

#include "core/fault.hpp"
#include "grid/substrate.hpp"
#include "sim/kernel.hpp"
#include "util/time.hpp"

namespace ethergrid::grid {

struct IoChannelConfig {
  // Aggregate server bandwidth shared by every client.  4 MB/s leaves
  // comfortable headroom for the well-behaved workload (1 MB/s of writes
  // plus the consumer's 1 MB/s of reads) but not for a retry flood.
  double bytes_per_second = 4.0 * 1024 * 1024;
  // Fixed cost of one RPC (request parse, metadata update, reply).
  Duration per_op_overhead = msec(5);
  // Binary (seed busy/collision semantics) or fluid max-min sharing.
  CapacityModel model = CapacityModel::kBinary;
};

class IoChannel {
 public:
  IoChannel(sim::Kernel& kernel, const IoChannelConfig& config);

  // Performs one RPC moving `bytes` of payload (0 for pure metadata ops).
  // With a fault injector installed, the RPC may fail -- and a failed RPC
  // still occupies the medium for the time it consumed before dying, which
  // is exactly the contention property the disciplines are measured
  // against.
  Status transfer(sim::Context& ctx, std::int64_t bytes);

  // Injection site: "iochannel.write".  Not owned; nullptr disables.
  void set_fault_injector(core::FaultInjector* injector) {
    substrate_.set_fault_injector(injector);
  }

  // Observability (fluid model: flow_share events).  Not owned.
  void set_observers(obs::ObserverSet* observers) {
    substrate_.set_observers(observers);
  }

  // The capacity interface, for carrier sense and the reservation book.
  Substrate& substrate() { return substrate_; }

  // Telemetry.
  std::int64_t ops() const { return substrate_.completed(); }
  std::int64_t bytes_moved() const { return substrate_.bytes_moved(); }
  std::int64_t failed_ops() const { return substrate_.failed(); }
  Duration busy_time() const { return substrate_.busy_time(); }

 private:
  IoChannelConfig config_;
  Substrate substrate_;
};

}  // namespace ethergrid::grid
