// IoChannel: the shared medium of the filesystem scenario.
//
// A shared (NFS-like) filesystem has finite server bandwidth; every client
// RPC -- data or metadata, successful or futile -- occupies it.  This is
// what makes the disk buffer a true Ethernet-style medium: a fixed client's
// flood of doomed writes does not merely fail, it consumes the capacity the
// consumer needs to drain the buffer.  FIFO service; deadline/kill-aware.
#pragma once

#include <cstdint>

#include "core/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/resource.hpp"
#include "util/time.hpp"

namespace ethergrid::grid {

struct IoChannelConfig {
  // Aggregate server bandwidth shared by every client.  4 MB/s leaves
  // comfortable headroom for the well-behaved workload (1 MB/s of writes
  // plus the consumer's 1 MB/s of reads) but not for a retry flood.
  double bytes_per_second = 4.0 * 1024 * 1024;
  // Fixed cost of one RPC (request parse, metadata update, reply).
  Duration per_op_overhead = msec(5);
};

class IoChannel {
 public:
  IoChannel(sim::Kernel& kernel, const IoChannelConfig& config);

  // Performs one RPC moving `bytes` of payload (0 for pure metadata ops).
  // Occupies the channel FIFO for overhead + bytes/bandwidth.  With a fault
  // injector installed, the RPC may fail -- and a failed RPC still occupies
  // the medium for the time it consumed before dying, which is exactly the
  // contention property the disciplines are measured against.
  Status transfer(sim::Context& ctx, std::int64_t bytes);

  // Injection site: "iochannel.write".  Not owned; nullptr disables.
  void set_fault_injector(core::FaultInjector* injector) {
    faults_ = injector;
  }

  // Telemetry.
  std::int64_t ops() const { return ops_; }
  std::int64_t bytes_moved() const { return bytes_; }
  std::int64_t failed_ops() const { return failed_ops_; }
  Duration busy_time() const { return busy_; }

 private:
  IoChannelConfig config_;
  sim::Resource slot_;
  core::FaultInjector* faults_ = nullptr;
  std::int64_t ops_ = 0;
  std::int64_t bytes_ = 0;
  std::int64_t failed_ops_ = 0;
  Duration busy_{};
};

}  // namespace ethergrid::grid
