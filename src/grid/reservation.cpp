#include "grid/reservation.hpp"

#include <algorithm>
#include <cmath>

namespace ethergrid::grid {

namespace {

// Rate slop absorbing float residue in the availability arithmetic.
constexpr double kRateEpsilon = 1e-6;

}  // namespace

ReservationBook::ReservationBook(ReservationBookConfig config)
    : config_(std::move(config)), site_(obs::intern_site(config_.site)) {}

double ReservationBook::reserved_at(TimePoint t) const {
  double total = 0;
  for (const Booked& g : grants_) {
    if (g.start <= t && t < g.end) total += g.rate;
  }
  return total;
}

double ReservationBook::min_available(TimePoint from, TimePoint to) const {
  // The reserved-rate timeline is piecewise constant with breakpoints at
  // grant starts; evaluating at `from` and every start inside (from, to)
  // covers all of [from, to).
  double worst = config_.reservable_bps - reserved_at(from);
  for (const Booked& g : grants_) {
    if (g.start > from && g.start < to) {
      worst = std::min(worst,
                       config_.reservable_bps - reserved_at(g.start));
    }
  }
  return worst;
}

void ReservationBook::drop_expired(TimePoint now) {
  // Completed clients release explicitly; this sweeps grants whose window
  // passed without one (a client killed after release() already ran is
  // fine -- release is idempotent on unknown ids).
  grants_.erase(std::remove_if(grants_.begin(), grants_.end(),
                               [now](const Booked& g) { return g.end <= now; }),
                grants_.end());
}

Grant ReservationBook::request(sim::Context& ctx, double bytes,
                               double min_rate, double max_rate) {
  const TimePoint now = ctx.now();
  drop_expired(now);

  auto reject = [&]() {
    ++rejected_;
    if (observers_) {
      obs::ObsEvent event;
      event.kind = obs::ObsEvent::Kind::kReservationReject;
      event.time = now;
      event.site = site_;
      event.value = bytes;
      observers_->on_event(event);
    }
    return Grant{};
  };

  if (bytes <= 0 || min_rate <= 0 || max_rate < min_rate ||
      min_rate > config_.reservable_bps + kRateEpsilon) {
    return reject();
  }

  // Candidate start times: now, plus every grant end inside the horizon
  // (capacity only ever *increases* at an end, so the earliest-completion
  // optimum starts at one of these instants).
  const TimePoint latest_start = now + config_.horizon;
  std::vector<TimePoint> candidates{now};
  for (const Booked& g : grants_) {
    if (g.end > now && g.end <= latest_start) candidates.push_back(g.end);
  }
  std::sort(candidates.begin(), candidates.end());

  bool found = false;
  TimePoint best_start{};
  TimePoint best_end{};
  double best_rate = 0;
  for (TimePoint start : candidates) {
    // Fixed-point on the malleable request: pick a rate, see whether the
    // window it implies sustains that rate, lower to the bottleneck and
    // retry.  Monotonically decreasing, so it settles in at most one step
    // per breakpoint in the window.
    double rate = std::min(max_rate, config_.reservable_bps -
                                         reserved_at(start));
    bool feasible = false;
    for (std::size_t round = 0; round <= grants_.size() + 1; ++round) {
      if (rate < min_rate - kRateEpsilon) break;
      const TimePoint end = start + sec(bytes / rate);
      const double sustainable = min_available(start, end);
      if (sustainable >= rate - kRateEpsilon) {
        feasible = true;
        break;
      }
      rate = std::min(rate, sustainable);
    }
    if (!feasible) continue;
    const TimePoint end = start + sec(bytes / rate);
    if (!found || end < best_end ||
        (end == best_end && start < best_start)) {
      found = true;
      best_start = start;
      best_end = end;
      best_rate = rate;
    }
  }
  if (!found) return reject();

  Booked booked;
  booked.id = next_id_++;
  booked.start = best_start;
  booked.end = best_end;
  booked.rate = best_rate;
  grants_.insert(std::upper_bound(grants_.begin(), grants_.end(), booked,
                                  [](const Booked& a, const Booked& b) {
                                    return a.start < b.start ||
                                           (a.start == b.start && a.id < b.id);
                                  }),
                 booked);
  ++granted_;
  if (observers_) {
    obs::ObsEvent event;
    event.kind = obs::ObsEvent::Kind::kReservationGrant;
    event.time = now;
    event.site = site_;
    event.value = best_rate;
    observers_->on_event(event);
  }

  Grant grant;
  grant.id = booked.id;
  grant.start = best_start;
  grant.duration = best_end - best_start;
  grant.rate = best_rate;
  return grant;
}

void ReservationBook::release(std::uint64_t id) {
  grants_.erase(std::remove_if(grants_.begin(), grants_.end(),
                               [id](const Booked& g) { return g.id == id; }),
                grants_.end());
}

}  // namespace ethergrid::grid
