// FdTable: the unmanaged shared resource of the paper's first scenario.
//
// "Most systems go to great lengths to manage the use of physical resources
//  such as disks, memories, and CPUs.  This overlooked resource [file
//  descriptors] is just as vital in a system under a heavy load."
//
// The table is intentionally *not* a queueing resource: allocation either
// succeeds immediately or fails (EMFILE/ENFILE semantics).  Clients may
// observe available() -- that observation is exactly the carrier-sense probe
// the Ethernet submitter performs via /proc/sys/fs/file-nr in the paper.
#pragma once

#include <cstdint>
#include <mutex>

namespace ethergrid::grid {

class FdTable {
 public:
  explicit FdTable(std::int64_t capacity);

  // Takes n descriptors; false (and takes nothing) if fewer than n free.
  bool try_allocate(std::int64_t n);

  void free(std::int64_t n);

  std::int64_t capacity() const { return capacity_; }
  std::int64_t available() const;
  std::int64_t in_use() const;

  // Telemetry: lowest available() ever observed, and failed allocations.
  std::int64_t low_watermark() const;
  std::int64_t allocation_failures() const;

  // Frees everything (the host rebooting / the schedd crash dropping all
  // connections is modelled by the owners releasing; this is a hard reset
  // used by tests).
  void reset();

 private:
  const std::int64_t capacity_;
  mutable std::mutex mu_;
  std::int64_t available_;
  std::int64_t low_watermark_;
  std::int64_t allocation_failures_ = 0;
};

// RAII ownership of n descriptors; empty when allocation failed.
class FdLease {
 public:
  FdLease() = default;
  // Attempts the allocation; check held() afterwards.
  FdLease(FdTable& table, std::int64_t n) {
    if (table.try_allocate(n)) {
      table_ = &table;
      count_ = n;
    }
  }
  ~FdLease() { release(); }
  FdLease(FdLease&& other) noexcept
      : table_(other.table_), count_(other.count_) {
    other.table_ = nullptr;
    other.count_ = 0;
  }
  FdLease& operator=(FdLease&& other) noexcept {
    if (this != &other) {
      release();
      table_ = other.table_;
      count_ = other.count_;
      other.table_ = nullptr;
      other.count_ = 0;
    }
    return *this;
  }
  FdLease(const FdLease&) = delete;
  FdLease& operator=(const FdLease&) = delete;

  bool held() const { return table_ != nullptr; }
  std::int64_t count() const { return count_; }

  void release() {
    if (table_) {
      table_->free(count_);
      table_ = nullptr;
      count_ = 0;
    }
  }

 private:
  FdTable* table_ = nullptr;
  std::int64_t count_ = 0;
};

}  // namespace ethergrid::grid
