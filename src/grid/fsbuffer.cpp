#include "grid/fsbuffer.hpp"

namespace ethergrid::grid {

namespace {

SubstrateConfig substrate_config() {
  SubstrateConfig sc;
  sc.site = "fsbuffer";
  return sc;  // metadata-only: no bandwidth, no slots in play
}

}  // namespace

FsBuffer::FsBuffer(sim::Kernel& kernel, std::int64_t capacity_bytes)
    : kernel_(&kernel),
      capacity_(capacity_bytes),
      substrate_(kernel, substrate_config()),
      append_site_(obs::intern_site("fsbuffer.append")),
      completion_event_(kernel) {}

void FsBuffer::set_fault_injector(core::FaultInjector* injector) {
  std::lock_guard<std::mutex> lock(mu_);
  substrate_.set_fault_injector(injector);
}

void FsBuffer::set_observers(obs::ObserverSet* observers) {
  std::lock_guard<std::mutex> lock(mu_);
  substrate_.set_observers(observers);
}

std::optional<Status> FsBuffer::injected(const char* op) {
  core::FaultDecision fault = substrate_.decide_at(kernel_->now(), op);
  switch (fault.action) {
    case core::FaultDecision::Action::kNone:
    case core::FaultDecision::Action::kStall:  // no duration to stretch here
      return std::nullopt;
    case core::FaultDecision::Action::kFail:
    case core::FaultDecision::Action::kReset:
    case core::FaultDecision::Action::kCrash:
    case core::FaultDecision::Action::kPartition:
      substrate_.note_injected();
      return fault.status;
  }
  return std::nullopt;
}

Status FsBuffer::create(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto fault = injected("create")) return *fault;
  auto [it, inserted] = files_.try_emplace(name);
  if (!inserted) {
    return Status::invalid_argument("file exists: " + name);
  }
  it->second.order = next_order_++;
  return Status::success();
}

Status FsBuffer::append(const std::string& name, std::int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto fault = injected("append")) return *fault;
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::not_found("no such file: " + name);
  }
  if (it->second.complete) {
    return Status::invalid_argument("file already complete: " + name);
  }
  if (used_ + bytes > capacity_) {
    ++enospc_;
    std::string message = "ENOSPC writing " + name;
    substrate_.emit_collision(append_site_, kernel_->now(), message,
                              double(bytes));
    return Status::resource_exhausted(std::move(message));
  }
  used_ += bytes;
  it->second.size += bytes;
  return Status::success();
}

Status FsBuffer::rename_done(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto fault = injected("rename")) return *fault;
    auto it = files_.find(name);
    if (it == files_.end()) {
      return Status::not_found("no such file: " + name);
    }
    if (it->second.complete) {
      return Status::invalid_argument("file already complete: " + name);
    }
    it->second.complete = true;
  }
  completion_event_.pulse();
  return Status::success();
}

void FsBuffer::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return;
  used_ -= it->second.size;
  files_.erase(it);
}

std::optional<FsBuffer::FileInfo> FsBuffer::oldest_complete() const {
  std::lock_guard<std::mutex> lock(mu_);
  const File* best = nullptr;
  const std::string* best_name = nullptr;
  for (const auto& [name, file] : files_) {
    if (!file.complete) continue;
    if (!best || file.order < best->order) {
      best = &file;
      best_name = &name;
    }
  }
  if (!best) return std::nullopt;
  return FileInfo{*best_name, best->size, true};
}

std::int64_t FsBuffer::free_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_ - used_;
}

std::int64_t FsBuffer::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

int FsBuffer::incomplete_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& [name, file] : files_) {
    if (!file.complete) ++n;
  }
  return n;
}

int FsBuffer::complete_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& [name, file] : files_) {
    if (file.complete) ++n;
  }
  return n;
}

std::int64_t FsBuffer::average_complete_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  std::int64_t count = 0;
  for (const auto& [name, file] : files_) {
    if (file.complete) {
      total += file.size;
      ++count;
    }
  }
  return count ? total / count : 0;
}

std::int64_t FsBuffer::enospc_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enospc_;
}

std::int64_t FsBuffer::injected_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return substrate_.injected_failures();
}

std::vector<FsBuffer::FileInfo> FsBuffer::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FileInfo> out;
  out.reserve(files_.size());
  for (const auto& [name, file] : files_) {
    out.push_back(FileInfo{name, file.size, file.complete});
  }
  return out;
}

}  // namespace ethergrid::grid
