#include "grid/schedd.hpp"

#include <algorithm>
#include <cmath>

namespace ethergrid::grid {

ServiceQueue::ServiceQueue(sim::Kernel& kernel, int capacity)
    : kernel_(&kernel), available_(capacity) {}

Status ServiceQueue::acquire(sim::Context& ctx) {
  if (queue_.empty() && available_ > 0) {
    --available_;
    return Status::success();
  }
  sim::Event event(*kernel_);
  Waiter waiter;
  waiter.event = &event;
  queue_.push_back(&waiter);
  try {
    ctx.wait(event);
  } catch (...) {
    if (waiter.granted) {
      ++available_;
      grant_head();
    } else if (!waiter.aborted) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == &waiter) {
          queue_.erase(it);
          break;
        }
      }
    }
    throw;
  }
  if (waiter.aborted) {
    return Status::unavailable("connection reset: daemon died");
  }
  return Status::success();
}

void ServiceQueue::release() {
  ++available_;
  grant_head();
}

void ServiceQueue::grant_head() {
  while (!queue_.empty() && available_ > 0) {
    Waiter* waiter = queue_.front();
    queue_.pop_front();
    --available_;
    waiter->granted = true;
    waiter->event->set();
  }
}

void ServiceQueue::abort_waiters() {
  for (Waiter* waiter : queue_) {
    waiter->aborted = true;
    waiter->event->set();
  }
  queue_.clear();
}

namespace {

// Connection-scope bookkeeping: counts the connection open and pins its
// descriptors; both are undone however the submission ends (success, crash,
// timeout unwind, kill).
class ConnectionScope {
 public:
  ConnectionScope(std::int64_t* counter, FdLease fds)
      : counter_(counter), fds_(std::move(fds)) {
    ++*counter_;
  }
  ~ConnectionScope() { --*counter_; }
  ConnectionScope(const ConnectionScope&) = delete;
  ConnectionScope& operator=(const ConnectionScope&) = delete;

 private:
  std::int64_t* counter_;
  FdLease fds_;
};

}  // namespace

Schedd::Schedd(sim::Kernel& kernel, const ScheddConfig& config)
    : kernel_(&kernel),
      config_(config),
      fds_(config.fd_capacity),
      service_slots_(kernel, config.service_concurrency),
      crash_pulse_(kernel),
      service_rng_(kernel.rng().stream(config.service_stream)),
      obs_site_(obs::intern_site(config.obs_site)),
      obs_fds_site_(obs::intern_site(config.obs_site + ".fds")) {}

double Schedd::load_factor() const {
  return 1.0 + config_.slowdown_per_connection * double(open_connections_);
}

void Schedd::crash(sim::Context& ctx) {
  if (is_down(ctx.now())) return;
  ++crashes_;
  restart_until_ = ctx.now() + config_.restart_delay;
  ctx.log(LogLevel::kWarn,
          "schedd crashed (#" + std::to_string(crashes_) +
              "): cannot allocate descriptors; dropping all connections");
  if (observers_) {
    const std::string detail =
        "crash #" + std::to_string(crashes_) + ", dropping " +
        std::to_string(open_connections_) + " connection(s)";
    obs::ObsEvent event;
    event.kind = obs::ObsEvent::Kind::kCrash;
    event.time = ctx.now();
    event.site = obs_site_;
    event.detail = detail;
    event.value = double(open_connections_);
    observers_->on_event(event);
  }
  // The broadcast jam: every in-flight service AND every queued connection
  // fails at this instant, releasing their descriptors together (the upward
  // FD spike of Figure 2).
  crash_pulse_.pulse();
  service_slots_.abort_waiters();
}

Status Schedd::submit(sim::Context& ctx) {
  return submit_internal(ctx, nullptr);
}

Status Schedd::submit(sim::Context& ctx, const SubmitDescription& job) {
  return submit_internal(ctx, &job);
}

Status Schedd::submit_internal(sim::Context& ctx,
                               const SubmitDescription* job) {
  const TimePoint submit_start = ctx.now();
  auto emit_table_full = [&](const char* what, std::int64_t want) {
    if (!observers_) return;
    const std::string detail = std::string(what) + ": " +
                               std::to_string(want) +
                               " descriptor(s) unavailable";
    obs::ObsEvent event;
    event.kind = obs::ObsEvent::Kind::kTableFull;
    event.time = ctx.now();
    event.site = obs_fds_site_;
    event.detail = detail;
    event.value = double(want);
    observers_->on_event(event);
  };
  // TCP connect + submitter startup chatter.
  ctx.sleep(config_.connect_time);

  if (is_down(ctx.now())) {
    return Status::unavailable("schedd restarting");
  }

  Duration injected_stall{};
  if (faults_ && faults_->enabled()) {
    core::FaultDecision fault = faults_->decide(config_.fault_site, ctx.now());
    switch (fault.action) {
      case core::FaultDecision::Action::kNone:
        break;
      case core::FaultDecision::Action::kStall:
        injected_stall = fault.stall;  // slow daemon: stretches this service
        break;
      case core::FaultDecision::Action::kFail:
      case core::FaultDecision::Action::kReset:
        return fault.status;  // this submission's connection dies
      case core::FaultDecision::Action::kPartition:
        return fault.status;  // daemon unreachable for the window
      case core::FaultDecision::Action::kCrash:
        crash(ctx);  // the whole daemon dies: the broadcast jam
        return fault.status;
    }
  }

  std::int64_t connection_count;
  if (job) {
    // Deterministic footprint from the job's own transfer list.
    connection_count = job->connection_fd_cost(config_.fds_per_connection);
  } else {
    connection_count = config_.fds_per_connection;
    if (config_.fds_per_connection_jitter > 0) {
      connection_count += service_rng_.uniform_int(
          -config_.fds_per_connection_jitter,
          config_.fds_per_connection_jitter);
    }
  }
  FdLease connection_fds(fds_, connection_count);
  if (!connection_fds.held()) {
    emit_table_full("connect", connection_count);
    return Status::resource_exhausted("no file descriptors for connection");
  }
  ConnectionScope connection(&open_connections_, std::move(connection_fds));

  // FIFO wait for a service slot.  Descriptors stay pinned while queued --
  // that is the mechanism of the paper's collapse.
  Status queued = service_slots_.acquire(ctx);
  if (queued.failed()) {
    return queued;  // connection reset by the crash
  }
  struct SlotRelease {
    ServiceQueue& queue;
    ~SlotRelease() { queue.release(); }
  } slot_release{service_slots_};

  if (is_down(ctx.now())) {
    return Status::unavailable("schedd went down while queued");
  }

  // The schedd allocates its own descriptors to service the job.  Failure
  // here is fatal to the whole daemon.
  FdLease service_fds(fds_, config_.fds_per_service);
  if (!service_fds.held()) {
    emit_table_full("service", config_.fds_per_service);
    crash(ctx);
    return Status::unavailable("schedd crashed");
  }

  const int jobs_in_submission = job ? std::max(job->queue_count, 1) : 1;
  const double seconds = service_rng_.uniform(to_seconds(config_.service_min),
                                              to_seconds(config_.service_max));
  const Duration service_time =
      sec(seconds * load_factor() * double(jobs_in_submission)) +
      injected_stall;

  // Phase 1: receive the job description.
  if (ctx.wait_for(crash_pulse_, service_time / 2)) {
    return Status::unavailable("schedd crashed during service");
  }

  // Mid-service: spool the job's transfer files (more descriptors).
  FdLease transfer_fds;
  if (config_.fds_per_transfer > 0) {
    transfer_fds = FdLease(fds_, config_.fds_per_transfer);
    if (!transfer_fds.held()) {
      emit_table_full("transfer", config_.fds_per_transfer);
      crash(ctx);
      return Status::unavailable("schedd crashed");
    }
  }

  // Phase 2: commit the job to the durable queue.
  if (ctx.wait_for(crash_pulse_, service_time / 2)) {
    return Status::unavailable("schedd crashed during service");
  }

  for (int i = 0; i < jobs_in_submission; ++i) {
    submissions_.record(ctx.now());
  }
  latency_.add(ctx.now() - submit_start);
  return Status::success();
}

}  // namespace ethergrid::grid
