// DisciplineRegistry: string-keyed discipline resolution.
//
// Disciplines used to be a hard-coded enum (grid::DisciplineKind) switched
// on in every client factory, every scenario runner, and gridsim's flag
// parser -- adding the Reservation discipline would have meant growing a
// fourth case into each of those switches.  The registry replaces the enum
// with named DisciplineTraits: clients ask for "fixed" / "aloha" /
// "ethernet" / "reservation" by string (gridsim --discipline=reservation),
// and the traits tell them which behaviours to wire up (backoff, carrier
// sense, reservation negotiation) plus the per-discipline option defaults.
//
// MIGRATION (one release, mirroring the PR 4 AuditLog shim): the old
// DisciplineKind enum and the enum-taking runner overloads still work --
// they resolve through discipline_kind_name() into this registry -- but new
// code should carry the discipline *name*.  The enum, the enum fields on
// the client configs, and the enum overloads will be removed next release.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/retry.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace ethergrid::grid {

// Per-discipline knobs with registry-supplied defaults.  A client config
// copies the resolved discipline's defaults and overrides what it needs.
struct DisciplineOptions {
  // Overrides the discipline's default backoff policy (ablation studies:
  // jitter removal, cap sweeps).  Ignored when traits.backoff is false.
  std::optional<core::BackoffPolicy> backoff;
  // Carrier-sense disciplines on fluid substrates: defer when a new flow's
  // instantaneous fair share would fall below this fraction of capacity.
  double share_threshold = 0.25;
  // Reservation discipline: requested rate window as fractions of the
  // medium's capacity (Chen & Primet's malleable bulk request).
  double min_rate_fraction = 0.10;
  double max_rate_fraction = 0.50;
};

// What a named discipline does.  Capability flags, not virtuals: the
// client factories own the actual closures (carrier-sense probes capture
// concrete substrates), the traits only say which ones to build.
struct DisciplineTraits {
  std::string name;
  bool backoff = true;        // false = the Fixed client's blind hammering
  bool carrier_sense = false; // probe the medium before consuming it
  bool reservation = false;   // negotiate a (window, rate) grant first
  DisciplineOptions defaults;

  // Try options for one disciplined work loop under `budget`, honouring a
  // per-client backoff override.
  core::TryOptions
  try_options(Duration budget,
              const std::optional<core::BackoffPolicy>& override_backoff =
                  std::nullopt) const;
};

class DisciplineRegistry {
 public:
  // The process-wide registry, pre-seeded with the built-in disciplines
  // (fixed, aloha, ethernet, reservation) in that order.
  static DisciplineRegistry& global();

  // Registers a discipline; fails if the name is taken.
  Status add(DisciplineTraits traits);

  // nullptr when unknown.  The pointer stays valid for the registry's
  // lifetime (additions never reallocate registered traits).
  const DisciplineTraits* find(std::string_view name) const;

  // Registration order (stable listing for --help and sweeps).
  std::vector<std::string> names() const;

 private:
  DisciplineRegistry();
  std::vector<std::unique_ptr<DisciplineTraits>> traits_;
};

// Global-registry conveniences.
const DisciplineTraits* find_discipline(std::string_view name);
// Resolves or dies with a clear message listing the registered names --
// callers that already validated input (scenario runners) use this.
const DisciplineTraits& resolve_discipline(std::string_view name);
// Comma-separated registered names, for error messages and --help.
std::string discipline_names_csv();

}  // namespace ethergrid::grid
