// Schedd: the Condor job scheduler agent of scenario 1, simulated.
//
// "The schedd is an agent that works on behalf of a grid user, keeping jobs
//  in a persistent queue while finding sites where they may run."
//
// The model captures the dynamics the paper observed:
//   * each open client connection pins fds_per_connection descriptors in the
//     host's FdTable for the life of the submission (connect -> service
//     complete / aborted);
//   * the schedd itself needs fds_per_service descriptors to service a job;
//     if it cannot allocate them it CRASHES -- dropping every in-flight
//     submission at once (the "broadcast jam") -- and restarts after
//     restart_delay;
//   * service is FIFO with limited concurrency, and per-job service time
//     stretches with the number of open connections (CPU/memory contention
//     on the schedd host: the reason even well-behaved clients see reduced
//     peak throughput under load).
#pragma once

#include <cstdint>
#include <memory>

#include <deque>

#include "core/fault.hpp"
#include "grid/fd_table.hpp"
#include "obs/observer.hpp"
#include "grid/submit_file.hpp"
#include "sim/kernel.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"

namespace ethergrid::grid {

// FIFO service-slot queue that a crash can abort wholesale: queued
// submissions are TCP connections into the daemon, and when the daemon dies
// every one of them resets at once (that instant release of descriptors is
// the upward FD spike in the paper's Figure 2).
class ServiceQueue {
 public:
  ServiceQueue(sim::Kernel& kernel, int capacity);

  // Blocks FIFO for a slot.  ok = granted; kUnavailable = aborted by crash.
  // Deadline/kill-aware; a grant is handed onward if the waiter unwinds.
  Status acquire(sim::Context& ctx);
  void release();
  // Wakes every queued waiter with an abort.
  void abort_waiters();

  int available() const { return available_; }
  std::size_t queue_length() const { return queue_.size(); }

 private:
  // Stack-allocated in acquire() (the owner is parked in ctx.wait for the
  // whole time it is queued, and every unwind path dequeues it), so a
  // blocked submission costs no allocation per attempt.
  struct Waiter {
    bool granted = false;
    bool aborted = false;
    sim::Event* event;
  };
  void grant_head();

  sim::Kernel* kernel_;
  int available_;
  std::deque<Waiter*> queue_;
};

struct ScheddConfig {
  std::int64_t fd_capacity = 8192;
  // Descriptors pinned per open client connection (socket, job files, log,
  // lock, ...).  8192 / 20 ~ 410: the table exhausts a little above 400
  // concurrent submitters, matching the paper's collapse point.
  std::int64_t fds_per_connection = 20;
  // Uniform +/- jitter on the per-connection count (job description and
  // transfer-file counts vary per submitter).
  std::int64_t fds_per_connection_jitter = 4;
  // Descriptors the schedd itself needs at the start of each service.
  std::int64_t fds_per_service = 4;
  // Additional descriptors the schedd opens MID-service (spooling the job's
  // transfer files).  This is the allocation that loses the race under
  // saturation: between a completion (which frees space) and the midpoint of
  // the next service, an aggressively retrying client can steal the freed
  // descriptors, and the schedd's own open() then fails => crash.
  std::int64_t fds_per_transfer = 4;
  int service_concurrency = 4;
  Duration service_min = sec(1);
  Duration service_max = sec(2);
  // Service time multiplier grows by this per open connection: models CPU
  // contention.  0 disables.
  double slowdown_per_connection = 1.0 / 400.0;
  Duration connect_time = msec(100);
  // Crash-to-serving time: process restart plus durable job-queue recovery.
  Duration restart_delay = sec(60);
  // Per-instance naming, for worlds with several schedds (the sharded
  // fig1 scenario runs one per site).  fault_site is the injection site
  // consulted per submission; service_stream names the kernel-RNG stream
  // feeding service-time draws; obs_site labels observability events
  // (descriptor-table events use obs_site + ".fds").  Giving each site
  // distinct names keeps its draws and audits independent of every other
  // site -- and therefore independent of how sites are partitioned across
  // shards.  Defaults preserve the single-schedd byte format.
  std::string fault_site = "schedd.submit";
  std::string service_stream = "schedd-service";
  std::string obs_site = "schedd";
};

class Schedd {
 public:
  Schedd(sim::Kernel& kernel, const ScheddConfig& config);

  // One condor_submit: connect, queue for service, get serviced.
  // Blocking in virtual time; deadline/kill aware.  Outcomes:
  //   ok                  -- job accepted and queued durably
  //   resource_exhausted  -- no descriptors for the connection
  //   unavailable         -- schedd down / crashed mid-flight
  Status submit(sim::Context& ctx);

  // Submission of a parsed job description: the connection pins descriptors
  // proportional to the job's transfer-file list, service time scales with
  // the queue count, and all queued jobs land atomically on success.
  Status submit(sim::Context& ctx, const SubmitDescription& job);

  FdTable& fd_table() { return fds_; }

  // Injection site: "schedd.submit", consulted once per submission after
  // the connect.  kFail/kReset reject that submission; kStall stretches its
  // service; kCrash takes the whole daemon down (the broadcast jam);
  // kPartition refuses connections for the window.  Not owned; nullptr
  // disables.
  void set_fault_injector(core::FaultInjector* injector) {
    faults_ = injector;
  }

  // Observability: daemon crashes become kCrash events, descriptor-table
  // exhaustion kTableFull.  Not owned; nullptr off.
  void set_observers(obs::ObserverSet* observers) { observers_ = observers; }

  // Telemetry.
  std::int64_t jobs_submitted() const { return submissions_.total(); }
  const EventSeries& submissions() const { return submissions_; }
  // Connect-to-accepted latency of successful submissions.
  const LatencyHistogram& submit_latency() const { return latency_; }
  int crashes() const { return crashes_; }
  std::int64_t open_connections() const { return open_connections_; }
  bool is_down(TimePoint now) const { return now < restart_until_; }

 private:
  Status submit_internal(sim::Context& ctx, const SubmitDescription* job);
  void crash(sim::Context& ctx);
  double load_factor() const;

  sim::Kernel* kernel_;
  ScheddConfig config_;
  core::FaultInjector* faults_ = nullptr;
  obs::ObserverSet* observers_ = nullptr;
  FdTable fds_;
  ServiceQueue service_slots_;
  sim::Event crash_pulse_;
  TimePoint restart_until_{};  // down until this instant
  int crashes_ = 0;
  std::int64_t open_connections_ = 0;
  EventSeries submissions_{"jobs_submitted"};
  LatencyHistogram latency_;
  Rng service_rng_;
  // Interned per instance (config_.obs_site), not function-static: two
  // schedds with different labels must not alias each other's events.
  obs::SiteId obs_site_;
  obs::SiteId obs_fds_site_;
};

}  // namespace ethergrid::grid
