#include "grid/substrate.hpp"

namespace ethergrid::grid {

std::string_view capacity_model_name(CapacityModel model) {
  switch (model) {
    case CapacityModel::kBinary:
      return "binary";
    case CapacityModel::kFluid:
      return "fluid";
  }
  return "?";
}

bool parse_capacity_model(std::string_view name, CapacityModel* out) {
  if (name == "binary") {
    *out = CapacityModel::kBinary;
    return true;
  }
  if (name == "fluid") {
    *out = CapacityModel::kFluid;
    return true;
  }
  return false;
}

Substrate::Substrate(sim::Kernel& kernel, SubstrateConfig config)
    : kernel_(&kernel),
      config_(std::move(config)),
      site_(obs::intern_site(config_.site)),
      slots_(kernel, config_.slots),
      never_(kernel) {
  if (config_.model == CapacityModel::kFluid) {
    fluid_.emplace(kernel, config_.bytes_per_second);
    fluid_->set_share_listener(
        [this](TimePoint now, std::size_t flows, double unit_share) {
          if (!observers_) return;
          obs::ObsEvent event;
          event.kind = obs::ObsEvent::Kind::kFlowShare;
          event.time = now;
          event.site = site_;
          event.value = config_.bytes_per_second > 0
                            ? unit_share / config_.bytes_per_second
                            : 0;
          event.detail = {};
          observers_->on_event(event);
          (void)flows;
        });
  }
  if (!config_.builtin_faults.rules().empty()) {
    builtin_faults_.emplace(config_.builtin_faults,
                            kernel.rng().stream(config_.builtin_fault_stream));
    faults_ = &*builtin_faults_;
  }
}

Substrate::Hold::Hold(sim::Context& ctx, Substrate& substrate) {
  if (substrate.model() == CapacityModel::kBinary) {
    lease_.emplace(ctx, substrate.slots_);
  }
}

void Substrate::occupy(sim::Context& ctx, Duration d) { ctx.sleep(d); }

Status Substrate::stream(sim::Context& ctx, double bytes,
                         sim::FluidFlowOptions flow) {
  if (config_.model == CapacityModel::kFluid) {
    return fluid_->transfer(ctx, bytes, flow);
  }
  ctx.sleep(payload_duration(bytes));
  return Status::success();
}

void Substrate::park(sim::Context& ctx) { ctx.wait(never_); }

Duration Substrate::payload_duration(double bytes) const {
  return sec(bytes / config_.bytes_per_second);
}

double Substrate::instantaneous_share_fraction() const {
  if (config_.model == CapacityModel::kFluid) {
    if (config_.bytes_per_second <= 0) return 0;
    return fluid_->instantaneous_share(1.0) / config_.bytes_per_second;
  }
  return slots_.available() > 0 ? 1.0 : 0.0;
}

core::FaultDecision Substrate::decide(sim::Context& ctx, std::string_view op) {
  return decide_at(ctx.now(), op);
}

core::FaultDecision Substrate::decide_at(TimePoint now, std::string_view op) {
  if (!faults_ || !faults_->enabled()) return {};
  std::string site_name = config_.site;
  site_name += '.';
  site_name += op;
  return faults_->decide(site_name, now);
}

void Substrate::set_fault_injector(core::FaultInjector* injector) {
  faults_ = injector ? injector
                     : (builtin_faults_ ? &*builtin_faults_ : nullptr);
}

void Substrate::set_observers(obs::ObserverSet* observers) {
  observers_ = observers;
}

void Substrate::emit_collision(obs::SiteId site_id, TimePoint now,
                               std::string_view detail, double value) {
  if (!observers_) return;
  obs::ObsEvent event;
  event.kind = obs::ObsEvent::Kind::kCollision;
  event.time = now;
  event.site = site_id;
  event.detail = detail;
  event.value = value;
  observers_->on_event(event);
}

void Substrate::emit_carrier_sense(obs::SiteId site_id, TimePoint now,
                                   bool clear) {
  if (!observers_) return;
  obs::ObsEvent event;
  event.kind = obs::ObsEvent::Kind::kCarrierSense;
  event.time = now;
  event.site = site_id;
  event.value = clear ? 1 : 0;
  observers_->on_event(event);
}

}  // namespace ethergrid::grid
