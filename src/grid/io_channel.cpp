#include "grid/io_channel.hpp"

namespace ethergrid::grid {

IoChannel::IoChannel(sim::Kernel& kernel, const IoChannelConfig& config)
    : config_(config), slot_(kernel, 1) {}

void IoChannel::transfer(sim::Context& ctx, std::int64_t bytes) {
  sim::ResourceLease lease(ctx, slot_);
  const Duration cost =
      config_.per_op_overhead +
      sec(double(bytes) / config_.bytes_per_second);
  ctx.sleep(cost);
  ++ops_;
  bytes_ += bytes;
  busy_ += cost;
}

}  // namespace ethergrid::grid
