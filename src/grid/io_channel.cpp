#include "grid/io_channel.hpp"

namespace ethergrid::grid {

namespace {

SubstrateConfig substrate_config(const IoChannelConfig& config) {
  SubstrateConfig sc;
  sc.site = "iochannel";
  sc.bytes_per_second = config.bytes_per_second;
  sc.slots = 1;
  sc.model = config.model;
  return sc;
}

}  // namespace

IoChannel::IoChannel(sim::Kernel& kernel, const IoChannelConfig& config)
    : config_(config), substrate_(kernel, substrate_config(config)) {}

Status IoChannel::transfer(sim::Context& ctx, std::int64_t bytes) {
  Substrate::Hold hold(ctx, substrate_);
  const bool fluid = substrate_.model() == CapacityModel::kFluid;
  Duration cost = config_.per_op_overhead +
                  substrate_.payload_duration(double(bytes));

  core::FaultDecision fault = substrate_.decide(ctx, "write");
  switch (fault.action) {
    case core::FaultDecision::Action::kNone:
      break;
    case core::FaultDecision::Action::kStall:
      // Server hiccup: the RPC completes but holds the medium longer.
      cost += fault.stall;
      break;
    case core::FaultDecision::Action::kReset: {
      // The RPC dies after a fraction of the payload moved; the medium
      // time it burned is gone either way.
      if (fluid) {
        const TimePoint start = ctx.now();
        substrate_.occupy(ctx, config_.per_op_overhead);
        Status moved =
            substrate_.stream(ctx, fault.fraction * double(bytes));
        substrate_.note_failed(ctx.now() - start);
        if (moved.failed()) return moved;
        return fault.status;
      }
      const Duration consumed =
          config_.per_op_overhead +
          substrate_.payload_duration(fault.fraction * double(bytes));
      substrate_.occupy(ctx, consumed);
      substrate_.note_failed(consumed);
      return fault.status;
    }
    case core::FaultDecision::Action::kFail:
    case core::FaultDecision::Action::kCrash:
    case core::FaultDecision::Action::kPartition:
      // Prompt refusal still costs the request overhead on the medium.
      substrate_.occupy(ctx, config_.per_op_overhead);
      substrate_.note_failed(config_.per_op_overhead);
      return fault.status;
  }

  if (fluid) {
    const TimePoint start = ctx.now();
    const Duration overhead =
        fault.action == core::FaultDecision::Action::kStall
            ? config_.per_op_overhead + fault.stall
            : config_.per_op_overhead;
    substrate_.occupy(ctx, overhead);
    Status moved = substrate_.stream(ctx, double(bytes));
    if (moved.failed()) {
      substrate_.note_failed(ctx.now() - start);
      return moved;
    }
    substrate_.note_completed(double(bytes), ctx.now() - start);
    return Status::success();
  }

  // Binary (seed) path: one combined sleep, exactly the pre-Substrate op
  // sequence -- the degenerate golden test pins this byte-for-byte.
  substrate_.occupy(ctx, cost);
  substrate_.note_completed(double(bytes), cost);
  return Status::success();
}

}  // namespace ethergrid::grid
