#include "grid/io_channel.hpp"

namespace ethergrid::grid {

IoChannel::IoChannel(sim::Kernel& kernel, const IoChannelConfig& config)
    : config_(config), slot_(kernel, 1) {}

Status IoChannel::transfer(sim::Context& ctx, std::int64_t bytes) {
  sim::ResourceLease lease(ctx, slot_);
  Duration cost = config_.per_op_overhead +
                  sec(double(bytes) / config_.bytes_per_second);

  if (faults_ && faults_->enabled()) {
    core::FaultDecision fault = faults_->decide("iochannel.write", ctx.now());
    switch (fault.action) {
      case core::FaultDecision::Action::kNone:
        break;
      case core::FaultDecision::Action::kStall:
        // Server hiccup: the RPC completes but holds the medium longer.
        cost += fault.stall;
        break;
      case core::FaultDecision::Action::kReset: {
        // The RPC dies after a fraction of the payload moved; the medium
        // time it burned is gone either way.
        const Duration consumed =
            config_.per_op_overhead +
            sec(fault.fraction * double(bytes) / config_.bytes_per_second);
        ctx.sleep(consumed);
        busy_ += consumed;
        ++failed_ops_;
        return fault.status;
      }
      case core::FaultDecision::Action::kFail:
      case core::FaultDecision::Action::kCrash:
      case core::FaultDecision::Action::kPartition:
        // Prompt refusal still costs the request overhead on the medium.
        ctx.sleep(config_.per_op_overhead);
        busy_ += config_.per_op_overhead;
        ++failed_ops_;
        return fault.status;
    }
  }

  ctx.sleep(cost);
  ++ops_;
  bytes_ += bytes;
  busy_ += cost;
  return Status::success();
}

}  // namespace ethergrid::grid
