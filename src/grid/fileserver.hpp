// FileServer / ServerFarm: the replicated read-only file service of
// scenario 3, including the "black hole".
//
// "Each server is single-threaded, allowing only one client at a time to
//  transfer data.  One of the three is a permanent black hole.  It permits
//  clients to connect, but does not provide data or voluntarily disconnect."
//
// Timeouts are the *client's* job (ftsh try scopes); when a client's
// deadline unwinds a fetch, the RAII service slot is released -- the
// connection is broken, freeing the server, exactly the POSIX-process
// cancellation property the paper highlights.
//
// Service arbitration, fault plumbing, and back-channel emission all live
// in the grid::Substrate capacity interface.  The default binary model is
// the paper's single-threaded server; the fluid model serves every client
// concurrently at a weighted max-min share of the bandwidth.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "grid/substrate.hpp"
#include "obs/observer.hpp"
#include "sim/kernel.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"

namespace ethergrid::grid {

struct FileServerConfig {
  std::string name;
  bool black_hole = false;
  // Transfer bandwidth: 10 MB/s makes the paper's 100 MB file take ~10 s.
  double bytes_per_second = 10.0 * 1024 * 1024;
  // Per-request fixed overhead (connection + request parse).
  Duration request_overhead = msec(200);
  int concurrency = 1;  // single-threaded per the paper (binary model)
  // Probability that a data transfer aborts partway (connection reset,
  // server hiccup).  Distinct from a black hole: the failure is *prompt*,
  // so plain retry (the inner `try`) handles it.  Flag probes are immune
  // (they are one byte).  Implemented as a built-in fault plan -- a
  // mid-transfer reset rule on this server's fetch site -- so the knob and
  // an externally installed FaultInjector share one code path.
  double transient_failure_rate = 0.0;
  // Binary (seed single-slot semantics) or fluid max-min sharing.
  CapacityModel model = CapacityModel::kBinary;
};

class FileServer {
 public:
  FileServer(sim::Kernel& kernel, const FileServerConfig& config);

  // Downloads `bytes`.  Binary model: queues FIFO for the server's single
  // service slot.  Fluid model: transfers immediately at the fair share.
  // A black hole accepts the connection and then never responds: the call
  // blocks until the caller's deadline (or kill) unwinds it.
  Status fetch(sim::Context& ctx, std::int64_t bytes);

  // Downloads the well-known one-byte flag file (the carrier-sense probe).
  // Same black-hole behaviour: the probe must carry its own small timeout.
  Status fetch_flag(sim::Context& ctx);

  const std::string& name() const { return config_.name; }
  bool is_black_hole() const { return config_.black_hole; }

  // Injection sites: "fileserver.<name>.fetch" and "fileserver.<name>.flag".
  // Installs a shared injector (not owned; must outlive the server),
  // replacing the built-in one derived from transient_failure_rate.
  // nullptr restores the built-in.
  void set_fault_injector(core::FaultInjector* injector) {
    substrate_.set_fault_injector(injector);
  }

  // The capacity interface, for carrier sense and the reservation book.
  Substrate& substrate() { return substrate_; }

  // Telemetry.
  std::int64_t transfers_completed() const { return substrate_.completed(); }
  std::int64_t bytes_served() const { return substrate_.bytes_moved(); }
  std::int64_t connections_accepted() const {
    return substrate_.admissions();
  }
  std::int64_t transfers_aborted() const { return substrate_.failed(); }

  // Observability: aborted transfers become kCollision events, flag probes
  // kCarrierSense (value 1 = clear, 0 = deferred), fluid re-shares
  // kFlowShare.  Not owned; nullptr off.
  void set_observers(obs::ObserverSet* observers) {
    substrate_.set_observers(observers);
  }

 private:
  Status serve(sim::Context& ctx, std::int64_t bytes, bool flag_only);

  FileServerConfig config_;
  Substrate substrate_;
};

// The replicated service: named servers, uniform random pick helper.
class ServerFarm {
 public:
  ServerFarm(sim::Kernel& kernel, const std::vector<FileServerConfig>& configs);

  FileServer& server(std::size_t index) { return *servers_[index]; }
  FileServer* by_name(const std::string& name);
  std::size_t size() const { return servers_.size(); }

  // Uniform random server index using the caller's RNG stream.
  std::size_t pick(Rng& rng) const;

  // Installs one shared injector on every server in the farm.
  void set_fault_injector(core::FaultInjector* injector);

  // Installs one observer set on every server in the farm.
  void set_observers(obs::ObserverSet* observers);

 private:
  std::vector<std::unique_ptr<FileServer>> servers_;
};

}  // namespace ethergrid::grid
