#include "grid/discipline_registry.hpp"

#include <cstdio>
#include <cstdlib>

namespace ethergrid::grid {

core::TryOptions DisciplineTraits::try_options(
    Duration budget,
    const std::optional<core::BackoffPolicy>& override_backoff) const {
  core::TryOptions options = core::TryOptions::for_time(budget);
  if (!backoff) {
    options.backoff = core::BackoffPolicy::none();
  } else if (override_backoff) {
    options.backoff = *override_backoff;
  } else if (defaults.backoff) {
    options.backoff = *defaults.backoff;
  }
  return options;
}

DisciplineRegistry::DisciplineRegistry() {
  DisciplineTraits fixed;
  fixed.name = "fixed";
  fixed.backoff = false;
  (void)add(std::move(fixed));

  DisciplineTraits aloha;
  aloha.name = "aloha";
  (void)add(std::move(aloha));

  DisciplineTraits ethernet;
  ethernet.name = "ethernet";
  ethernet.carrier_sense = true;
  (void)add(std::move(ethernet));

  DisciplineTraits reservation;
  reservation.name = "reservation";
  reservation.reservation = true;  // Ethernet-style backoff on rejection
  (void)add(std::move(reservation));
}

DisciplineRegistry& DisciplineRegistry::global() {
  static DisciplineRegistry registry;
  return registry;
}

Status DisciplineRegistry::add(DisciplineTraits traits) {
  if (traits.name.empty()) {
    return Status::invalid_argument("discipline name must be non-empty");
  }
  if (find(traits.name)) {
    return Status::invalid_argument("discipline already registered: " +
                                    traits.name);
  }
  traits_.push_back(std::make_unique<DisciplineTraits>(std::move(traits)));
  return Status::success();
}

const DisciplineTraits* DisciplineRegistry::find(std::string_view name) const {
  for (const auto& traits : traits_) {
    if (traits->name == name) return traits.get();
  }
  return nullptr;
}

std::vector<std::string> DisciplineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(traits_.size());
  for (const auto& traits : traits_) out.push_back(traits->name);
  return out;
}

const DisciplineTraits* find_discipline(std::string_view name) {
  return DisciplineRegistry::global().find(name);
}

const DisciplineTraits& resolve_discipline(std::string_view name) {
  const DisciplineTraits* traits = find_discipline(name);
  if (!traits) {
    std::fprintf(stderr, "unknown discipline '%.*s' (registered: %s)\n",
                 int(name.size()), name.data(),
                 discipline_names_csv().c_str());
    std::abort();
  }
  return *traits;
}

std::string discipline_names_csv() {
  std::string out;
  for (const std::string& name : DisciplineRegistry::global().names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace ethergrid::grid
