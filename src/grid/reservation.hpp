// ReservationBook: per-site bandwidth reservation for bulk transfers.
//
// The Chen & Primet framework (PAPERS.md, "A Flexible Bandwidth
// Reservation Framework for Bulk Data Transfers in Grid Networks") admits
// *malleable* bulk requests: the client fixes the volume and a rate window
// [min_rate, max_rate], and the book chooses the start time and rate that
// finish the transfer earliest, subject to the sum of reserved rates never
// exceeding the reservable capacity.  Rejected clients fall back to
// Ethernet-style backoff (the Reservation discipline's collision path).
//
// The book is pure arithmetic over a piecewise-constant reserved-rate
// timeline -- deterministic, no RNG -- and shard-local like the fluid
// substrate it fronts.  A granted flow pins its rate on the fluid model
// via FluidFlowOptions{weight = kReservedWeight, rate_cap = grant.rate}:
// reserved flows out-weigh best-effort traffic by 10^6, so max-min sharing
// hands each exactly its cap and the slack goes to the best-effort flows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "sim/kernel.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace ethergrid::grid {

// Max-min weight that makes a reserved flow's rate cap binding against any
// realistic number of unit-weight best-effort flows.
inline constexpr double kReservedWeight = 1e6;

struct ReservationBookConfig {
  // Capacity the book may promise (usually the substrate's bandwidth, or
  // a fraction of it to leave best-effort headroom).
  double reservable_bps = 0;
  // Furthest future *start* the book will admit; later fits are rejected
  // (the client backs off and asks again).
  Duration horizon = minutes(10);
  // Observer site for reservation_{grant,reject} events.
  std::string site = "reservation";
};

struct Grant {
  std::uint64_t id = 0;  // 0 = rejected
  TimePoint start{};
  Duration duration{};
  double rate = 0;  // bytes/second, guaranteed over [start, start+duration)
  bool ok() const { return id != 0; }
};

class ReservationBook {
 public:
  explicit ReservationBook(ReservationBookConfig config);

  // Asks for `bytes` at a rate in [min_rate, max_rate], starting no
  // earlier than now.  Returns the earliest-completion grant, or a
  // !ok() grant when nothing fits inside the horizon.  Deterministic.
  Grant request(sim::Context& ctx, double bytes, double min_rate,
                double max_rate);

  // Releases a grant's capacity (normal completion and early abandonment
  // alike); unknown ids are ignored (rm -f semantics).
  void release(std::uint64_t id);

  // Sum of granted rates covering `t` (tests + invariants).
  double reserved_at(TimePoint t) const;
  std::size_t active_grants() const { return grants_.size(); }

  void set_observers(obs::ObserverSet* observers) { observers_ = observers; }

  double reservable_bps() const { return config_.reservable_bps; }

  // Telemetry.
  std::int64_t granted() const { return granted_; }
  std::int64_t rejected() const { return rejected_; }

 private:
  struct Booked {
    std::uint64_t id;
    TimePoint start;
    TimePoint end;
    double rate;
  };

  // Smallest spare capacity anywhere in [from, to).
  double min_available(TimePoint from, TimePoint to) const;
  void drop_expired(TimePoint now);

  ReservationBookConfig config_;
  obs::SiteId site_;
  std::vector<Booked> grants_;  // sorted by (start, id)
  std::uint64_t next_id_ = 1;
  std::int64_t granted_ = 0;
  std::int64_t rejected_ = 0;
  obs::ObserverSet* observers_ = nullptr;
};

// RAII release: covers normal completion and kill/deadline unwinds (the
// mc reservation-grant-kill scenario pins that no grant leaks).
class GrantLease {
 public:
  GrantLease(ReservationBook& book, std::uint64_t id)
      : book_(&book), id_(id) {}
  ~GrantLease() { release(); }
  GrantLease(const GrantLease&) = delete;
  GrantLease& operator=(const GrantLease&) = delete;

  void release() {
    if (book_) {
      book_->release(id_);
      book_ = nullptr;
    }
  }

 private:
  ReservationBook* book_;
  std::uint64_t id_;
};

}  // namespace ethergrid::grid
