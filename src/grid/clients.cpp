#include "grid/clients.hpp"

#include <algorithm>
#include <numeric>

#include "core/sim_clock.hpp"
#include "util/strings.hpp"

namespace ethergrid::grid {

std::string_view discipline_kind_name(DisciplineKind kind) {
  switch (kind) {
    case DisciplineKind::kFixed:
      return "fixed";
    case DisciplineKind::kAloha:
      return "aloha";
    case DisciplineKind::kEthernet:
      return "ethernet";
  }
  return "?";
}

namespace {

core::TryOptions base_options(
    DisciplineKind kind, Duration budget,
    const std::optional<core::BackoffPolicy>& backoff_override = std::nullopt) {
  core::TryOptions options = core::TryOptions::for_time(budget);
  if (kind == DisciplineKind::kFixed) {
    options.backoff = core::BackoffPolicy::none();
  } else if (backoff_override) {
    options.backoff = *backoff_override;
  }
  return options;
}

// Removes a partial file unless disarmed -- covers failure returns *and*
// deadline unwinds mid-write (the I/O transaction problem of section 4).
class PartialFileGuard {
 public:
  PartialFileGuard(FsBuffer& buffer, std::string name)
      : buffer_(&buffer), name_(std::move(name)) {}
  ~PartialFileGuard() {
    if (armed_) buffer_->remove(name_);
  }
  void disarm() { armed_ = false; }
  PartialFileGuard(const PartialFileGuard&) = delete;
  PartialFileGuard& operator=(const PartialFileGuard&) = delete;

 private:
  FsBuffer* buffer_;
  std::string name_;
  bool armed_ = true;
};

}  // namespace

// --------------------------------------------------------------- submitter

sim::ProcessBody make_submitter(Schedd& schedd, const SubmitterConfig& config,
                                SubmitterStats* stats) {
  return [&schedd, config, stats](sim::Context& ctx) {
    core::SimClock clock(ctx);
    Rng rng = ctx.rng();

    core::TryOptions options =
        base_options(config.kind, config.try_budget, config.backoff);
    core::Discipline discipline{std::string(discipline_kind_name(config.kind)),
                                options, nullptr};
    if (config.kind == DisciplineKind::kEthernet) {
      discipline.carrier_sense = [&schedd, &ctx, config](TimePoint) -> Status {
        ctx.sleep(config.probe_cost);  // cut -f2 /proc/sys/fs/file-nr
        if (schedd.fd_table().available() < config.fd_threshold) {
          return Status::unavailable("free descriptors below threshold");
        }
        return Status::success();
      };
    }

    while (true) {
      ctx.sleep(config.startup);  // condor_submit process startup
      Status s = core::run_with_discipline(
          clock, rng, discipline,
          [&](TimePoint) { return schedd.submit(ctx); }, &stats->discipline);
      if (s.ok()) {
        ++stats->jobs_succeeded;
      } else {
        ++stats->tries_failed;
      }
    }
  };
}

// ---------------------------------------------------------------- producer

sim::ProcessBody make_producer(FsBuffer& buffer, IoChannel& channel,
                               const ProducerConfig& config,
                               ProducerStats* stats) {
  return [&buffer, &channel, config, stats](sim::Context& ctx) {
    core::SimClock clock(ctx);
    Rng rng = ctx.rng();

    core::TryOptions options =
        base_options(config.kind, config.try_budget, config.backoff);
    core::Discipline discipline{std::string(discipline_kind_name(config.kind)),
                                options, nullptr};
    if (config.kind == DisciplineKind::kEthernet) {
      // "the Ethernet client assumes the incomplete items in the buffer will
      //  be the same size as the average of the complete files, and
      //  subtracts that from the free disk space reported by the file
      //  system.  If there is any space remaining, the client proceeds."
      // Our client also counts its own upcoming (unknown-size) output as one
      // more average-sized incomplete item -- carrier sense must leave room
      // for the transmission it is about to start.
      discipline.carrier_sense = [&buffer, &channel,
                                  &ctx](TimePoint) -> Status {
        // df + ls of the buffer directory; a failed probe is a busy medium.
        Status probe = channel.transfer(ctx, 0);
        if (probe.failed()) return probe;
        const std::int64_t estimate =
            buffer.free_bytes() -
            (std::int64_t(buffer.incomplete_count()) + 1) *
                buffer.average_complete_size();
        if (estimate <= 0) {
          return Status::resource_exhausted("estimated buffer full");
        }
        return Status::success();
      };
    }

    std::uint64_t sequence = 0;
    while (true) {
      ctx.sleep(sec(rng.uniform(to_seconds(config.compute_min),
                                to_seconds(config.compute_max))));
      const std::int64_t size = rng.uniform_int(0, config.max_file_bytes);
      const std::string name =
          config.name_prefix + "." + std::to_string(sequence++);

      Status s = core::run_with_discipline(
          clock, rng, discipline,
          [&](TimePoint) -> Status {
            ctx.sleep(config.attempt_overhead);
            // Cleanup is cost-free on the channel: an aborted connection's
            // dirty state is discarded server-side, and charging an RPC
            // inside unwind paths could itself block on an expired deadline.
            PartialFileGuard guard(buffer, name);
            Status status = channel.transfer(ctx, 0);  // create RPC
            if (status.failed()) return status;
            status = buffer.create(name);
            if (status.failed()) return status;
            std::int64_t written = 0;
            while (written < size) {
              const std::int64_t n =
                  std::min(config.chunk_bytes, size - written);
              // The chunk travels to the server whether or not it fits:
              // a doomed write still consumes the shared medium.
              status = channel.transfer(ctx, n);
              if (status.failed()) return status;
              status = buffer.append(name, n);
              // "If the output cannot be written, it is deleted" (guard).
              if (status.failed()) return status;
              written += n;
            }
            status = channel.transfer(ctx, 0);  // rename RPC
            if (status.failed()) return status;
            status = buffer.rename_done(name);
            if (status.failed()) return status;
            guard.disarm();
            return Status::success();
          },
          &stats->discipline);

      if (s.ok()) {
        ++stats->files_completed;
        stats->bytes_completed += size;
      } else {
        ++stats->tries_failed;
      }
    }
  };
}

sim::ProcessBody make_consumer(FsBuffer& buffer, IoChannel& channel,
                               const ConsumerConfig& config,
                               ConsumerStats* stats) {
  return [&buffer, &channel, config, stats](sim::Context& ctx) {
    while (true) {
      auto file = buffer.oldest_complete();
      if (!file) {
        (void)ctx.wait_for(buffer.completion_event(), config.idle_poll);
        continue;
      }
      // Read the file over the shared medium (competing with producer
      // traffic), forward it downstream at the archive rate, then delete
      // ("deleting each as it is consumed").  A failed read leaves the file
      // in place; the next pass retries it.
      if (channel.transfer(ctx, file->size).failed()) {
        ctx.sleep(config.idle_poll);
        continue;
      }
      ctx.sleep(sec(double(file->size) / config.read_bytes_per_second));
      (void)channel.transfer(ctx, 0);  // unlink RPC: best-effort
      buffer.remove(file->name);
      ++stats->files_consumed;
      stats->bytes_consumed += file->size;
      stats->consumed.record(ctx.now());
    }
  };
}

// ------------------------------------------------------------------ reader

sim::ProcessBody make_reader(ServerFarm& farm, const ReaderConfig& config,
                             ReaderStats* stats) {
  return [&farm, config, stats](sim::Context& ctx) {
    core::SimClock clock(ctx);
    Rng rng = ctx.rng();

    core::TryOptions outer = base_options(config.kind, config.outer_budget);

    while (true) {
      // try for 900 seconds / forany host / (probe +) fetch.
      (void)core::run_try(clock, rng, outer, [&](TimePoint) -> Status {
        // "a server chosen at random": a random order over the replicas,
        // i.e. the forany alternatives.
        std::vector<std::size_t> order(farm.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        for (std::size_t i = order.size(); i > 1; --i) {
          std::swap(order[i - 1],
                    order[std::size_t(rng.uniform_int(0, std::int64_t(i) - 1))]);
        }
        for (std::size_t index : order) {
          FileServer& server = farm.server(index);
          if (config.kind == DisciplineKind::kEthernet) {
            // try for 5 seconds wget http://$host/flag
            Status probe = core::run_try(
                clock, rng, core::TryOptions::for_time(config.probe_timeout),
                [&](TimePoint) { return server.fetch_flag(ctx); });
            if (probe.failed()) {
              ++stats->deferrals;
              stats->deferral_events.record(ctx.now());
              continue;  // forany moves to the next alternative
            }
          }
          // try for 60 seconds wget http://$host/data
          Status data = core::run_try(
              clock, rng, core::TryOptions::for_time(config.data_timeout),
              [&](TimePoint) { return server.fetch(ctx, config.file_bytes); });
          if (data.ok()) {
            ++stats->transfers;
            stats->transfer_events.record(ctx.now());
            return Status::success();
          }
          ++stats->collisions;
          stats->collision_events.record(ctx.now());
        }
        return Status::failure("all replicas failed");
      });
    }
  };
}

}  // namespace ethergrid::grid
