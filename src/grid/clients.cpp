#include "grid/clients.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "core/sim_clock.hpp"
#include "util/strings.hpp"

namespace ethergrid::grid {

std::string_view discipline_kind_name(DisciplineKind kind) {
  switch (kind) {
    case DisciplineKind::kFixed:
      return "fixed";
    case DisciplineKind::kAloha:
      return "aloha";
    case DisciplineKind::kEthernet:
      return "ethernet";
  }
  return "?";
}

const DisciplineTraits& resolve_discipline_field(const std::string& discipline,
                                                 DisciplineKind kind) {
  return resolve_discipline(discipline.empty() ? discipline_kind_name(kind)
                                               : std::string_view(discipline));
}

namespace {

// The paper-scenario clients work a resource directly; a discipline that
// needs grant negotiation cannot be expressed as their carrier-sense hook.
const DisciplineTraits& resolve_for_legacy_client(
    const std::string& discipline, DisciplineKind kind, const char* client) {
  const DisciplineTraits& traits = resolve_discipline_field(discipline, kind);
  if (traits.reservation) {
    std::fprintf(stderr,
                 "discipline '%s' negotiates reservations; the %s client "
                 "cannot (use make_bulk_sender)\n",
                 traits.name.c_str(), client);
    std::abort();
  }
  return traits;
}

// Removes a partial file unless disarmed -- covers failure returns *and*
// deadline unwinds mid-write (the I/O transaction problem of section 4).
class PartialFileGuard {
 public:
  PartialFileGuard(FsBuffer& buffer, std::string name)
      : buffer_(&buffer), name_(std::move(name)) {}
  ~PartialFileGuard() {
    if (armed_) buffer_->remove(name_);
  }
  void disarm() { armed_ = false; }
  PartialFileGuard(const PartialFileGuard&) = delete;
  PartialFileGuard& operator=(const PartialFileGuard&) = delete;

 private:
  FsBuffer* buffer_;
  std::string name_;
  bool armed_ = true;
};

}  // namespace

// --------------------------------------------------------------- submitter

sim::ProcessBody make_submitter(Schedd& schedd, const SubmitterConfig& config,
                                SubmitterStats* stats) {
  return [&schedd, config, stats](sim::Context& ctx) {
    core::SimClock clock(ctx);
    Rng rng = ctx.rng();

    const DisciplineTraits& traits =
        resolve_for_legacy_client(config.discipline, config.kind, "submitter");
    core::TryOptions options =
        traits.try_options(config.try_budget, config.backoff);
    core::Discipline discipline{traits.name, options, nullptr};
    if (traits.carrier_sense) {
      discipline.carrier_sense = [&schedd, &ctx, config](TimePoint) -> Status {
        ctx.sleep(config.probe_cost);  // cut -f2 /proc/sys/fs/file-nr
        if (schedd.fd_table().available() < config.fd_threshold) {
          return Status::unavailable("free descriptors below threshold");
        }
        return Status::success();
      };
    }

    while (true) {
      ctx.sleep(config.startup);  // condor_submit process startup
      Status s = core::run_with_discipline(
          clock, rng, discipline,
          [&](TimePoint) { return schedd.submit(ctx); }, &stats->discipline);
      if (s.ok()) {
        ++stats->jobs_succeeded;
      } else {
        ++stats->tries_failed;
      }
    }
  };
}

// ---------------------------------------------------------------- producer

sim::ProcessBody make_producer(FsBuffer& buffer, IoChannel& channel,
                               const ProducerConfig& config,
                               ProducerStats* stats) {
  return [&buffer, &channel, config, stats](sim::Context& ctx) {
    core::SimClock clock(ctx);
    Rng rng = ctx.rng();

    const DisciplineTraits& traits =
        resolve_for_legacy_client(config.discipline, config.kind, "producer");
    core::TryOptions options =
        traits.try_options(config.try_budget, config.backoff);
    core::Discipline discipline{traits.name, options, nullptr};
    if (traits.carrier_sense) {
      // "the Ethernet client assumes the incomplete items in the buffer will
      //  be the same size as the average of the complete files, and
      //  subtracts that from the free disk space reported by the file
      //  system.  If there is any space remaining, the client proceeds."
      // Our client also counts its own upcoming (unknown-size) output as one
      // more average-sized incomplete item -- carrier sense must leave room
      // for the transmission it is about to start.
      discipline.carrier_sense = [&buffer, &channel,
                                  &ctx](TimePoint) -> Status {
        // df + ls of the buffer directory; a failed probe is a busy medium.
        Status probe = channel.transfer(ctx, 0);
        if (probe.failed()) return probe;
        const std::int64_t estimate =
            buffer.free_bytes() -
            (std::int64_t(buffer.incomplete_count()) + 1) *
                buffer.average_complete_size();
        if (estimate <= 0) {
          return Status::resource_exhausted("estimated buffer full");
        }
        return Status::success();
      };
    }

    std::uint64_t sequence = 0;
    while (true) {
      ctx.sleep(sec(rng.uniform(to_seconds(config.compute_min),
                                to_seconds(config.compute_max))));
      const std::int64_t size = rng.uniform_int(0, config.max_file_bytes);
      const std::string name =
          config.name_prefix + "." + std::to_string(sequence++);

      Status s = core::run_with_discipline(
          clock, rng, discipline,
          [&](TimePoint) -> Status {
            ctx.sleep(config.attempt_overhead);
            // Cleanup is cost-free on the channel: an aborted connection's
            // dirty state is discarded server-side, and charging an RPC
            // inside unwind paths could itself block on an expired deadline.
            PartialFileGuard guard(buffer, name);
            Status status = channel.transfer(ctx, 0);  // create RPC
            if (status.failed()) return status;
            status = buffer.create(name);
            if (status.failed()) return status;
            std::int64_t written = 0;
            while (written < size) {
              const std::int64_t n =
                  std::min(config.chunk_bytes, size - written);
              // The chunk travels to the server whether or not it fits:
              // a doomed write still consumes the shared medium.
              status = channel.transfer(ctx, n);
              if (status.failed()) return status;
              status = buffer.append(name, n);
              // "If the output cannot be written, it is deleted" (guard).
              if (status.failed()) return status;
              written += n;
            }
            status = channel.transfer(ctx, 0);  // rename RPC
            if (status.failed()) return status;
            status = buffer.rename_done(name);
            if (status.failed()) return status;
            guard.disarm();
            return Status::success();
          },
          &stats->discipline);

      if (s.ok()) {
        ++stats->files_completed;
        stats->bytes_completed += size;
      } else {
        ++stats->tries_failed;
      }
    }
  };
}

sim::ProcessBody make_consumer(FsBuffer& buffer, IoChannel& channel,
                               const ConsumerConfig& config,
                               ConsumerStats* stats) {
  return [&buffer, &channel, config, stats](sim::Context& ctx) {
    while (true) {
      auto file = buffer.oldest_complete();
      if (!file) {
        (void)ctx.wait_for(buffer.completion_event(), config.idle_poll);
        continue;
      }
      // Read the file over the shared medium (competing with producer
      // traffic), forward it downstream at the archive rate, then delete
      // ("deleting each as it is consumed").  A failed read leaves the file
      // in place; the next pass retries it.
      if (channel.transfer(ctx, file->size).failed()) {
        ctx.sleep(config.idle_poll);
        continue;
      }
      ctx.sleep(sec(double(file->size) / config.read_bytes_per_second));
      (void)channel.transfer(ctx, 0);  // unlink RPC: best-effort
      buffer.remove(file->name);
      ++stats->files_consumed;
      stats->bytes_consumed += file->size;
      stats->consumed.record(ctx.now());
    }
  };
}

// ------------------------------------------------------------------ reader

sim::ProcessBody make_reader(ServerFarm& farm, const ReaderConfig& config,
                             ReaderStats* stats) {
  return [&farm, config, stats](sim::Context& ctx) {
    core::SimClock clock(ctx);
    Rng rng = ctx.rng();

    const DisciplineTraits& traits =
        resolve_for_legacy_client(config.discipline, config.kind, "reader");
    core::TryOptions outer = traits.try_options(config.outer_budget);

    while (true) {
      // try for 900 seconds / forany host / (probe +) fetch.
      (void)core::run_try(clock, rng, outer, [&](TimePoint) -> Status {
        // "a server chosen at random": a random order over the replicas,
        // i.e. the forany alternatives.
        std::vector<std::size_t> order(farm.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        for (std::size_t i = order.size(); i > 1; --i) {
          std::swap(order[i - 1],
                    order[std::size_t(rng.uniform_int(0, std::int64_t(i) - 1))]);
        }
        for (std::size_t index : order) {
          FileServer& server = farm.server(index);
          if (traits.carrier_sense) {
            // try for 5 seconds wget http://$host/flag
            Status probe = core::run_try(
                clock, rng, core::TryOptions::for_time(config.probe_timeout),
                [&](TimePoint) { return server.fetch_flag(ctx); });
            if (probe.failed()) {
              ++stats->deferrals;
              stats->deferral_events.record(ctx.now());
              continue;  // forany moves to the next alternative
            }
          }
          // try for 60 seconds wget http://$host/data
          Status data = core::run_try(
              clock, rng, core::TryOptions::for_time(config.data_timeout),
              [&](TimePoint) { return server.fetch(ctx, config.file_bytes); });
          if (data.ok()) {
            ++stats->transfers;
            stats->transfer_events.record(ctx.now());
            return Status::success();
          }
          ++stats->collisions;
          stats->collision_events.record(ctx.now());
        }
        return Status::failure("all replicas failed");
      });
    }
  };
}

// ------------------------------------------------------------- bulk sender

sim::ProcessBody make_bulk_sender(Substrate& link, ReservationBook* book,
                                  const BulkSenderConfig& config,
                                  BulkSenderStats* stats) {
  return [&link, book, config, stats](sim::Context& ctx) {
    core::SimClock clock(ctx);
    Rng rng = ctx.rng();

    const DisciplineTraits& traits = resolve_discipline(config.discipline);
    const DisciplineOptions options =
        config.options ? *config.options : traits.defaults;
    if (traits.reservation && !book) {
      std::fprintf(stderr,
                   "bulk sender: discipline '%s' requires a ReservationBook\n",
                   traits.name.c_str());
      std::abort();
    }

    core::TryOptions try_options =
        traits.try_options(config.transfer_budget, options.backoff);
    core::Discipline discipline{traits.name, try_options, nullptr};
    if (traits.carrier_sense) {
      // Fluid carrier sense: ask the link what instantaneous fair share a
      // new unit-weight flow would get; a crowded medium defers us.
      discipline.carrier_sense = [&link, &ctx, config,
                                  options](TimePoint) -> Status {
        ctx.sleep(config.probe_cost);
        if (link.instantaneous_share_fraction() < options.share_threshold) {
          return Status::unavailable("fair share below threshold");
        }
        return Status::success();
      };
    }

    const double bytes = double(config.file_bytes);

    // Chaos hook: the write is the faultable op ("bulk.write" site).
    auto injected = [&link, &ctx]() -> std::optional<Status> {
      core::FaultDecision fault = link.decide(ctx, "write");
      switch (fault.action) {
        case core::FaultDecision::Action::kNone:
          return std::nullopt;
        case core::FaultDecision::Action::kStall:
          ctx.sleep(fault.stall);
          return std::nullopt;
        default:
          link.note_injected();
          return fault.status;
      }
    };

    // Best-effort attempt: stream at whatever max-min hands us, bounded by
    // the per-attempt deadline (a starved flow is a collision to back off
    // from, not something to sit on forever).
    auto best_effort = [&](TimePoint) -> Status {
      core::TryOptions once =
          core::TryOptions::for_time(config.transfer_deadline);
      once.attempt_limit = 1;
      Status s = core::run_try(clock, rng, once, [&](TimePoint) -> Status {
        if (auto fault = injected()) return *fault;
        Substrate::Hold hold(ctx, link);
        return link.stream(ctx, bytes);
      });
      if (s.code() == StatusCode::kTimeout) ++stats->attempt_timeouts;
      return s;
    };

    // Reservation attempt: negotiate a (window, rate) grant, wait for the
    // window, stream at the granted rate.  A rejection is the discipline's
    // collision -- run_with_discipline backs off and retries.
    auto reserved = [&](TimePoint) -> Status {
      ctx.sleep(config.probe_cost);  // negotiation round-trip with the book
      const double cap = link.bytes_per_second() > 0 ? link.bytes_per_second()
                                                     : book->reservable_bps();
      Grant grant =
          book->request(ctx, bytes, options.min_rate_fraction * cap,
                        options.max_rate_fraction * cap);
      if (!grant.ok()) {
        ++stats->rejects;
        return Status::unavailable("reservation rejected");
      }
      ++stats->grants;
      GrantLease lease(*book, grant.id);
      if (grant.start > ctx.now()) ctx.sleep(grant.start - ctx.now());
      // The book guarantees grant.rate over the window, so window + slack
      // bounds the stream; tripping this deadline means the fluid model
      // broke its promise, not that the medium was busy.
      sim::DeadlineScope deadline(ctx, ctx.now() + grant.duration + sec(1));
      if (auto fault = injected()) return *fault;
      Substrate::Hold hold(ctx, link);
      sim::FluidFlowOptions flow;
      flow.weight = kReservedWeight;
      flow.rate_cap = grant.rate;
      return link.stream(ctx, bytes, flow);
    };

    while (true) {
      ctx.sleep(sec(rng.uniform(to_seconds(config.think_min),
                                to_seconds(config.think_max))));
      Status s = core::run_with_discipline(
          clock, rng, discipline,
          traits.reservation ? core::AttemptFn(reserved)
                             : core::AttemptFn(best_effort),
          &stats->discipline);
      if (s.ok()) {
        ++stats->files_sent;
        stats->bytes_sent += config.file_bytes;
      } else {
        ++stats->tries_failed;
      }
    }
  };
}

}  // namespace ethergrid::grid
