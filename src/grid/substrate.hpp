// Substrate: the one capacity interface behind every grid medium.
//
// FileServer, IoChannel, and FsBuffer used to each carry their own copy of
// the same plumbing: a sim::Resource service slot, a FaultInjector pointer
// with enabled() gating (plus FileServer's built-in transient plan), and
// hand-rolled Observer emission for collisions and carrier-sense probes.
// Substrate collapses those copies into one object per medium:
//
//  * admission  -- Hold: FIFO service slots under the binary model, or
//    immediate admission under the fluid model (contention degrades the
//    share instead of queueing);
//  * occupancy  -- occupy(): holding the medium for a fixed duration at
//    full rate (request overheads, stalls, and the binary model's whole
//    transfer time);
//  * streaming  -- stream(): moving payload bytes; the fluid model shares
//    bytes_per_second across concurrent flows by weighted max-min
//    fairness (sim::FluidResource), the binary model sleeps bytes/rate;
//  * faults     -- decide(): one injector slot (built-in transient plan or
//    externally installed), site names composed as "<site>.<op>";
//  * back channel -- emit helpers for kCollision / kCarrierSense plus the
//    fluid-model kFlowShare events, and shared telemetry counters.
//
// The binary model is the fluid model's degenerate point (capacity = one
// slot, unit demand): it reproduces the seed's collision semantics
// bit-for-bit, which tests/grid/degenerate_golden_test.cpp pins against
// stats and fault audits captured from the pre-Substrate tree.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/fault.hpp"
#include "obs/observer.hpp"
#include "sim/fault_plan.hpp"
#include "sim/fluid.hpp"
#include "sim/kernel.hpp"
#include "sim/resource.hpp"
#include "util/status.hpp"

namespace ethergrid::grid {

// How a Substrate arbitrates concurrent transfers.
enum class CapacityModel {
  // Seed semantics: `slots` FIFO service slots; a holder moves payload at
  // the full rate while everyone else queues (binary busy/collision).
  kBinary,
  // Weighted max-min fair sharing of bytes_per_second across every active
  // flow; nobody queues, everybody slows down.
  kFluid,
};

std::string_view capacity_model_name(CapacityModel model);
// Parses "binary" / "fluid" (used by gridsim and the exp configs).
bool parse_capacity_model(std::string_view name, CapacityModel* out);

struct SubstrateConfig {
  // Fault/observer site base: decide("op") consults "<site>.<op>", and
  // collision / carrier-sense / flow-share events carry the interned base.
  std::string site;
  // Medium bandwidth; 0 for metadata-only substrates (FsBuffer) that use
  // only the fault/observer plumbing.
  double bytes_per_second = 0;
  int slots = 1;  // kBinary service slots
  CapacityModel model = CapacityModel::kBinary;
  // Built-in fault plan (FileServer's transient_failure_rate rule) and the
  // name of the kernel RNG stream feeding it.  An externally installed
  // injector replaces it; set_fault_injector(nullptr) restores it.
  sim::FaultPlan builtin_faults;
  std::string builtin_fault_stream;
};

class Substrate {
 public:
  Substrate(sim::Kernel& kernel, SubstrateConfig config);
  Substrate(const Substrate&) = delete;
  Substrate& operator=(const Substrate&) = delete;

  // --- admission -----------------------------------------------------

  // RAII admission to the medium.  Binary: queues FIFO for a service slot
  // (released on destruction or unwind -- the broken-connection property).
  // Fluid: admission is immediate; contention shows up as a reduced share.
  class Hold {
   public:
    Hold(sim::Context& ctx, Substrate& substrate);
    Hold(const Hold&) = delete;
    Hold& operator=(const Hold&) = delete;

   private:
    std::optional<sim::ResourceLease> lease_;
  };

  // --- time on the medium --------------------------------------------

  // Holds the medium for a fixed duration (request overhead, fault stalls,
  // and the binary model's whole transfer).  Deadline/kill-aware.
  void occupy(sim::Context& ctx, Duration d);

  // Moves `bytes` of payload.  Binary: one full-rate sleep.  Fluid: a
  // weighted max-min flow on the shared capacity; reservations pin their
  // granted rate through `rate_cap`.
  Status stream(sim::Context& ctx, double bytes,
                sim::FluidFlowOptions flow = {});

  // Parks the caller forever (black holes, partitions); only the caller's
  // own deadline or a kill unwinds it.
  void park(sim::Context& ctx);

  // Duration `bytes` of payload occupies the medium at the full rate.
  Duration payload_duration(double bytes) const;

  // --- carrier sense --------------------------------------------------

  // Fraction of the full rate a new unit-weight flow would get right now:
  // the fluid carrier sense ("instantaneous fair share below threshold"
  // == busy).  Binary: 1 if a slot is free, else 0.
  double instantaneous_share_fraction() const;

  // --- faults ----------------------------------------------------------

  // Consults the active injector at "<site>.<op>"; kNone when no injector
  // is installed or its plan is empty (no RNG is consumed then, which the
  // degenerate byte-for-byte equivalence relies on).
  core::FaultDecision decide(sim::Context& ctx, std::string_view op);
  core::FaultDecision decide_at(TimePoint now, std::string_view op);

  // Not owned; nullptr restores the built-in injector (or none).
  void set_fault_injector(core::FaultInjector* injector);

  // --- back channel ----------------------------------------------------

  void set_observers(obs::ObserverSet* observers);
  obs::ObserverSet* observers() const { return observers_; }
  obs::SiteId site() const { return site_; }

  // Emitted at `site_id` (pass site() unless the event belongs to a
  // sub-site like "fsbuffer.append").  No-ops without observers.
  void emit_collision(obs::SiteId site_id, TimePoint now,
                      std::string_view detail, double value = 0);
  void emit_carrier_sense(obs::SiteId site_id, TimePoint now, bool clear);

  // --- telemetry --------------------------------------------------------

  void note_admission() { ++admissions_; }
  void note_completed(double bytes, Duration held) {
    ++completed_;
    bytes_moved_ += std::int64_t(bytes);
    busy_ += held;
  }
  void note_failed(Duration held) {
    ++failed_;
    busy_ += held;
  }
  void note_injected() { ++injected_failures_; }

  std::int64_t admissions() const { return admissions_; }
  std::int64_t completed() const { return completed_; }
  std::int64_t failed() const { return failed_; }
  std::int64_t bytes_moved() const { return bytes_moved_; }
  std::int64_t injected_failures() const { return injected_failures_; }
  Duration busy_time() const { return busy_; }

  CapacityModel model() const { return config_.model; }
  double bytes_per_second() const { return config_.bytes_per_second; }
  sim::Kernel& kernel() { return *kernel_; }
  // Fluid-model internals, for tests and the reservation book.
  sim::FluidResource* fluid() { return fluid_ ? &*fluid_ : nullptr; }

 private:
  sim::Kernel* kernel_;
  SubstrateConfig config_;
  obs::SiteId site_;
  sim::Resource slots_;                    // kBinary admission
  std::optional<sim::FluidResource> fluid_;  // kFluid sharing engine
  sim::Event never_;                       // park() target
  std::optional<core::FaultInjector> builtin_faults_;
  core::FaultInjector* faults_ = nullptr;  // active injector (may be null)
  obs::ObserverSet* observers_ = nullptr;
  std::int64_t admissions_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t failed_ = 0;
  std::int64_t bytes_moved_ = 0;
  std::int64_t injected_failures_ = 0;
  Duration busy_{};
};

}  // namespace ethergrid::grid
