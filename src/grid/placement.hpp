// Substrate-to-shard placement for sharded worlds.
//
// The partitioning rule is "partition by substrate": a site -- one
// Schedd/FileServer plus every client attached to it -- lives entirely on
// one shard, so all intra-site interaction stays shard-local and only
// explicit RPCs (ShardedKernel::post) cross shards.  Placement is
// round-robin by site index: deterministic, independent of thread count,
// and balanced when sites are homogeneous (the fig1 sweep's case).
//
// The helpers here also derive the per-site names that make a world
// partition-independent: each site's fault-injection site, RNG stream,
// and observability label include the site index, so a site's draws and
// audit lines are the same bytes no matter how many shards the world was
// split across.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "grid/schedd.hpp"

namespace ethergrid::grid {

// Shard owning site `site` in a world of `shards` shards.
constexpr std::size_t place_site(std::size_t site, std::size_t shards) {
  return shards == 0 ? 0 : site % shards;
}

// Stable mailbox id for a site (ShardMessage::src_site).  Site indices are
// already unique and partition-independent; the identity keeps call sites
// self-documenting.
constexpr std::uint64_t site_mailbox_id(std::size_t site) {
  return static_cast<std::uint64_t>(site);
}

// Per-site schedd naming: "schedd<i>.submit" fault site, "schedd<i>-service"
// RNG stream, "schedd<i>" observability label.  Applied onto a shared base
// config so scenario-level tuning (capacities, delays) carries over.
inline ScheddConfig site_schedd_config(ScheddConfig base, std::size_t site) {
  const std::string stem = "schedd" + std::to_string(site);
  base.fault_site = stem + ".submit";
  base.service_stream = stem + "-service";
  base.obs_site = stem;
  return base;
}

}  // namespace ethergrid::grid
