// FsBuffer: the shared-filesystem output buffer of scenario 2.
//
// "Jobs running in a remote cluster produce data whose size is not known
//  beforehand.  As they run, they place their output files into a shared
//  filesystem buffer of 120 MB, where a consumer process collects the
//  outputs and transmits them off to a remote archive."
//
// The buffer exposes exactly what a real filesystem would: create/append/
// rename/remove, statfs-style free space, and a directory listing showing
// complete (renamed *.done) and incomplete files.  ENOSPC during append is
// the collision of this scenario.  The Ethernet producer's carrier sense --
// free space minus (incomplete files x average complete size) -- is
// computable from this interface alone.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "grid/substrate.hpp"
#include "obs/observer.hpp"
#include "sim/kernel.hpp"
#include "util/status.hpp"

namespace ethergrid::grid {

class FsBuffer {
 public:
  FsBuffer(sim::Kernel& kernel, std::int64_t capacity_bytes);

  // --- producer-side filesystem calls (instantaneous metadata ops; the
  // *time* of writing is modelled by the producer sleeping between appends).

  // Creates an empty file.  Fails if the name exists.
  Status create(const std::string& name);

  // Appends bytes.  Fails with kResourceExhausted (ENOSPC) if the buffer
  // cannot hold them; the partial file remains and the producer must clean
  // it up (exactly the awkwardness the paper notes).
  Status append(const std::string& name, std::int64_t bytes);

  // Atomically marks the file complete (rename to x.done).
  Status rename_done(const std::string& name);

  // Removes a file if present (rm -f semantics: ok when missing).
  void remove(const std::string& name);

  // --- consumer side.

  // Oldest complete file, if any.
  struct FileInfo {
    std::string name;
    std::int64_t size = 0;
    bool complete = false;
  };
  std::optional<FileInfo> oldest_complete() const;

  // Wakes the consumer when a file completes.
  sim::Event& completion_event() { return completion_event_; }

  // --- observations (the carrier-sense inputs).
  std::int64_t capacity() const { return capacity_; }
  std::int64_t free_bytes() const;   // statfs free space
  std::int64_t used_bytes() const;
  int incomplete_count() const;
  int complete_count() const;
  // Mean size of complete files; 0 when none exist.
  std::int64_t average_complete_size() const;

  // Injection sites: "fsbuffer.create", "fsbuffer.append",
  // "fsbuffer.rename".  Metadata ops are instantaneous, so only prompt
  // error faults apply (a stall decision is ignored here; stall the
  // IoChannel the traffic flows over instead).  Not owned; nullptr
  // disables.  Plumbed through a metadata-only grid::Substrate (space,
  // not bandwidth, is this medium's capacity).
  void set_fault_injector(core::FaultInjector* injector);

  // Observability: each ENOSPC append becomes a kCollision event (value =
  // bytes refused).  Not owned; nullptr off.
  void set_observers(obs::ObserverSet* observers);

  // Telemetry.
  std::int64_t enospc_failures() const;
  std::int64_t injected_failures() const;
  std::vector<FileInfo> list() const;

 private:
  struct File {
    std::int64_t size = 0;
    bool complete = false;
    std::uint64_t order = 0;  // creation order; completion keeps it
  };

  // Returns the injected failure for the "fsbuffer.<op>" site, if one
  // fires.
  std::optional<Status> injected(const char* op);

  sim::Kernel* kernel_;
  const std::int64_t capacity_;
  Substrate substrate_;       // fault + back-channel plumbing (no bandwidth)
  obs::SiteId append_site_;   // "fsbuffer.append", interned at construction
  mutable std::mutex mu_;
  std::map<std::string, File> files_;
  std::int64_t used_ = 0;
  std::uint64_t next_order_ = 0;
  std::int64_t enospc_ = 0;
  sim::Event completion_event_;
};

}  // namespace ethergrid::grid
