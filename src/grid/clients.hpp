// Scenario clients: the Fixed / Aloha / Ethernet scripts of the paper's
// evaluation, expressed over the core API.
//
// "A fixed client aggressively repeats its assigned work without delay and
//  without regard to any sort of failure.  An Aloha client uses the
//  ordinary ftsh try structure to repeat a work unit with an exponential
//  backoff and random factor in case of failure.  An Ethernet client uses
//  the same structure, but additionally adds a small piece of code to
//  perform carrier sense before accessing a resource."
//
// Each make_* returns a sim::ProcessBody that loops work units until the
// process is killed (experiments run a fixed window then kill the clients,
// or simply stop sampling).  Telemetry accumulates into caller-owned stats
// structs; the paper's figures are derived from those plus substrate-side
// event series.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/discipline.hpp"
#include "grid/fileserver.hpp"
#include "grid/fsbuffer.hpp"
#include "grid/io_channel.hpp"
#include "grid/schedd.hpp"
#include "sim/kernel.hpp"
#include "util/stats.hpp"

namespace ethergrid::grid {

enum class DisciplineKind { kFixed, kAloha, kEthernet };

std::string_view discipline_kind_name(DisciplineKind kind);

// ------------------------------------------------------------- scenario 1

struct SubmitterConfig {
  DisciplineKind kind = DisciplineKind::kAloha;
  // "try for 5 minutes condor_submit submit.job end"
  Duration try_budget = minutes(5);
  // Ethernet carrier sense: defer unless this many descriptors are free
  // ("if ${n} .lt. 1000 failure").
  std::int64_t fd_threshold = 1000;
  // Cost of reading /proc/sys/fs/file-nr.
  Duration probe_cost = msec(10);
  // condor_submit process startup before each work unit.
  Duration startup = msec(500);
  // Overrides the discipline's default backoff policy (ablation studies:
  // jitter removal, cap sweeps).  Ignored for the Fixed discipline.
  std::optional<core::BackoffPolicy> backoff;
};

struct SubmitterStats {
  std::int64_t jobs_succeeded = 0;
  std::int64_t tries_failed = 0;  // whole try budgets that expired
  core::DisciplineMetrics discipline;
};

// Loops: startup, then one disciplined submission, forever.
sim::ProcessBody make_submitter(Schedd& schedd, const SubmitterConfig& config,
                                SubmitterStats* stats);

// ------------------------------------------------------------- scenario 2

struct ProducerConfig {
  DisciplineKind kind = DisciplineKind::kAloha;
  // Compute phase between output files: "producing an output file of random
  // size between 0-1 MB every second".
  Duration compute_min = sec(1);
  Duration compute_max = sec(1);
  // "an output file of random size between 0-1 MB"
  std::int64_t max_file_bytes = 1 << 20;
  // Write granularity: each chunk is one RPC on the shared IoChannel.
  std::int64_t chunk_bytes = 64 << 10;
  // Producer-local per-attempt cost (process work before touching the fs).
  Duration attempt_overhead = msec(10);
  Duration try_budget = minutes(5);
  std::string name_prefix;  // unique per producer
  // Backoff override for ablations; ignored for the Fixed discipline.
  std::optional<core::BackoffPolicy> backoff;
};

struct ProducerStats {
  std::int64_t files_completed = 0;
  std::int64_t bytes_completed = 0;
  std::int64_t tries_failed = 0;
  core::DisciplineMetrics discipline;
};

// All of the producer's filesystem traffic -- creates, chunk writes
// (including ones that will fail with ENOSPC), deletes, renames -- flows
// through `channel`, the shared medium.
sim::ProcessBody make_producer(FsBuffer& buffer, IoChannel& channel,
                               const ProducerConfig& config,
                               ProducerStats* stats);

struct ConsumerConfig {
  // Downstream archive bandwidth: the consumer processes (off-channel) at
  // this rate -- "reads files at a rate of 1 MB/s".  Its buffer *reads*
  // additionally compete on the shared channel.
  double read_bytes_per_second = 1.0 * 1024 * 1024;
  Duration idle_poll = sec(1);
};

struct ConsumerStats {
  std::int64_t files_consumed = 0;
  std::int64_t bytes_consumed = 0;
  EventSeries consumed{"files_consumed"};
};

// Continuously drains oldest complete files at the configured rate.
sim::ProcessBody make_consumer(FsBuffer& buffer, IoChannel& channel,
                               const ConsumerConfig& config,
                               ConsumerStats* stats);

// ------------------------------------------------------------- scenario 3

struct ReaderConfig {
  DisciplineKind kind = DisciplineKind::kAloha;  // paper compares Aloha/Eth
  std::int64_t file_bytes = 100 << 20;           // "a 100 MB file"
  Duration outer_budget = sec(900);              // "try for 900 seconds"
  Duration data_timeout = sec(60);               // "try for 60 seconds"
  Duration probe_timeout = sec(5);               // "try for 5 seconds"
};

struct ReaderStats {
  std::int64_t transfers = 0;
  std::int64_t collisions = 0;  // 60 s timeouts (black-hole hits and stalls)
  std::int64_t deferrals = 0;   // failed carrier probes (Ethernet only)
  EventSeries transfer_events{"transfers"};
  EventSeries collision_events{"collisions"};
  EventSeries deferral_events{"deferrals"};
};

// Loops whole-file reads against the farm, forever.
sim::ProcessBody make_reader(ServerFarm& farm, const ReaderConfig& config,
                             ReaderStats* stats);

}  // namespace ethergrid::grid
