// Scenario clients: the Fixed / Aloha / Ethernet scripts of the paper's
// evaluation, expressed over the core API.
//
// "A fixed client aggressively repeats its assigned work without delay and
//  without regard to any sort of failure.  An Aloha client uses the
//  ordinary ftsh try structure to repeat a work unit with an exponential
//  backoff and random factor in case of failure.  An Ethernet client uses
//  the same structure, but additionally adds a small piece of code to
//  perform carrier sense before accessing a resource."
//
// Each make_* returns a sim::ProcessBody that loops work units until the
// process is killed (experiments run a fixed window then kill the clients,
// or simply stop sampling).  Telemetry accumulates into caller-owned stats
// structs; the paper's figures are derived from those plus substrate-side
// event series.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/discipline.hpp"
#include "grid/discipline_registry.hpp"
#include "grid/fileserver.hpp"
#include "grid/fsbuffer.hpp"
#include "grid/io_channel.hpp"
#include "grid/reservation.hpp"
#include "grid/schedd.hpp"
#include "grid/substrate.hpp"
#include "sim/kernel.hpp"
#include "util/stats.hpp"

namespace ethergrid::grid {

// DEPRECATED (one release): discipline selection is now string-keyed via
// grid::DisciplineRegistry.  The enum and the `kind` config fields remain
// as a shim -- they resolve through discipline_kind_name() into the
// registry -- and will be removed next release.  New code sets the
// `discipline` string field instead.
enum class DisciplineKind { kFixed, kAloha, kEthernet };

std::string_view discipline_kind_name(DisciplineKind kind);

// Resolves a client config's discipline: the string field when set,
// otherwise the deprecated enum.  Dies on unregistered names.
const DisciplineTraits& resolve_discipline_field(const std::string& discipline,
                                                 DisciplineKind kind);

// ------------------------------------------------------------- scenario 1

struct SubmitterConfig {
  // Registry name ("fixed" / "aloha" / "ethernet" / ...); when empty the
  // deprecated `kind` enum below applies.
  std::string discipline;
  DisciplineKind kind = DisciplineKind::kAloha;  // DEPRECATED: use discipline
  // "try for 5 minutes condor_submit submit.job end"
  Duration try_budget = minutes(5);
  // Ethernet carrier sense: defer unless this many descriptors are free
  // ("if ${n} .lt. 1000 failure").
  std::int64_t fd_threshold = 1000;
  // Cost of reading /proc/sys/fs/file-nr.
  Duration probe_cost = msec(10);
  // condor_submit process startup before each work unit.
  Duration startup = msec(500);
  // Overrides the discipline's default backoff policy (ablation studies:
  // jitter removal, cap sweeps).  Ignored for the Fixed discipline.
  std::optional<core::BackoffPolicy> backoff;
};

struct SubmitterStats {
  std::int64_t jobs_succeeded = 0;
  std::int64_t tries_failed = 0;  // whole try budgets that expired
  core::DisciplineMetrics discipline;
};

// Loops: startup, then one disciplined submission, forever.
sim::ProcessBody make_submitter(Schedd& schedd, const SubmitterConfig& config,
                                SubmitterStats* stats);

// ------------------------------------------------------------- scenario 2

struct ProducerConfig {
  // Registry name; when empty the deprecated `kind` enum applies.
  std::string discipline;
  DisciplineKind kind = DisciplineKind::kAloha;  // DEPRECATED: use discipline
  // Compute phase between output files: "producing an output file of random
  // size between 0-1 MB every second".
  Duration compute_min = sec(1);
  Duration compute_max = sec(1);
  // "an output file of random size between 0-1 MB"
  std::int64_t max_file_bytes = 1 << 20;
  // Write granularity: each chunk is one RPC on the shared IoChannel.
  std::int64_t chunk_bytes = 64 << 10;
  // Producer-local per-attempt cost (process work before touching the fs).
  Duration attempt_overhead = msec(10);
  Duration try_budget = minutes(5);
  std::string name_prefix;  // unique per producer
  // Backoff override for ablations; ignored for the Fixed discipline.
  std::optional<core::BackoffPolicy> backoff;
};

struct ProducerStats {
  std::int64_t files_completed = 0;
  std::int64_t bytes_completed = 0;
  std::int64_t tries_failed = 0;
  core::DisciplineMetrics discipline;
};

// All of the producer's filesystem traffic -- creates, chunk writes
// (including ones that will fail with ENOSPC), deletes, renames -- flows
// through `channel`, the shared medium.
sim::ProcessBody make_producer(FsBuffer& buffer, IoChannel& channel,
                               const ProducerConfig& config,
                               ProducerStats* stats);

struct ConsumerConfig {
  // Downstream archive bandwidth: the consumer processes (off-channel) at
  // this rate -- "reads files at a rate of 1 MB/s".  Its buffer *reads*
  // additionally compete on the shared channel.
  double read_bytes_per_second = 1.0 * 1024 * 1024;
  Duration idle_poll = sec(1);
};

struct ConsumerStats {
  std::int64_t files_consumed = 0;
  std::int64_t bytes_consumed = 0;
  EventSeries consumed{"files_consumed"};
};

// Continuously drains oldest complete files at the configured rate.
sim::ProcessBody make_consumer(FsBuffer& buffer, IoChannel& channel,
                               const ConsumerConfig& config,
                               ConsumerStats* stats);

// ------------------------------------------------------------- scenario 3

struct ReaderConfig {
  // Registry name; when empty the deprecated `kind` enum applies.
  std::string discipline;
  DisciplineKind kind = DisciplineKind::kAloha;  // DEPRECATED: use discipline
  std::int64_t file_bytes = 100 << 20;           // "a 100 MB file"
  Duration outer_budget = sec(900);              // "try for 900 seconds"
  Duration data_timeout = sec(60);               // "try for 60 seconds"
  Duration probe_timeout = sec(5);               // "try for 5 seconds"
};

struct ReaderStats {
  std::int64_t transfers = 0;
  std::int64_t collisions = 0;  // 60 s timeouts (black-hole hits and stalls)
  std::int64_t deferrals = 0;   // failed carrier probes (Ethernet only)
  EventSeries transfer_events{"transfers"};
  EventSeries collision_events{"collisions"};
  EventSeries deferral_events{"deferrals"};
};

// Loops whole-file reads against the farm, forever.
sim::ProcessBody make_reader(ServerFarm& farm, const ReaderConfig& config,
                             ReaderStats* stats);

// ------------------------------------------------------- bulk transfers

// A bulk sender pushes fixed-size files over a shared *fluid* link.  All
// four disciplines apply:
//   fixed/aloha   -- stream immediately, budgeted retries on timeout;
//   ethernet      -- carrier sense = "instantaneous fair share of the link
//                    at or above share_threshold", defer otherwise;
//   reservation   -- negotiate a (window, rate) grant from the site's
//                    ReservationBook, stream at the granted rate with
//                    kReservedWeight, Ethernet-style backoff on rejection.
struct BulkSenderConfig {
  std::string discipline = "ethernet";
  std::int64_t file_bytes = 32 << 20;
  // Think time between files.
  Duration think_min = sec(1);
  Duration think_max = sec(4);
  // Whole-file try budget ("try for 10 minutes send the file end").
  Duration transfer_budget = minutes(10);
  // Per-attempt deadline for best-effort streams; a starved flow is
  // unwound here and counts as a collision.
  Duration transfer_deadline = minutes(2);
  // Cost of probing the link's share (ethernet) or the book (reservation).
  Duration probe_cost = msec(10);
  // Options start from the resolved discipline's registry defaults;
  // set to override (share_threshold, rate fractions, backoff).
  std::optional<DisciplineOptions> options;
};

struct BulkSenderStats {
  std::int64_t files_sent = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t tries_failed = 0;    // whole budgets expired
  std::int64_t attempt_timeouts = 0;  // per-attempt deadline unwinds
  std::int64_t grants = 0;
  std::int64_t rejects = 0;
  core::DisciplineMetrics discipline;
};

// `book` may be null for the non-reservation disciplines; the reservation
// discipline requires it (aborts otherwise).  `link` must be a fluid
// substrate for ethernet share-probing and reservation rate caps to mean
// anything, though binary links degrade gracefully (share is 0 or 1).
sim::ProcessBody make_bulk_sender(Substrate& link, ReservationBook* book,
                                  const BulkSenderConfig& config,
                                  BulkSenderStats* stats);

}  // namespace ethergrid::grid
