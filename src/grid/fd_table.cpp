#include "grid/fd_table.hpp"

#include <cassert>

namespace ethergrid::grid {

FdTable::FdTable(std::int64_t capacity)
    : capacity_(capacity), available_(capacity), low_watermark_(capacity) {
  assert(capacity >= 0);
}

bool FdTable::try_allocate(std::int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (available_ < n) {
    ++allocation_failures_;
    return false;
  }
  available_ -= n;
  if (available_ < low_watermark_) low_watermark_ = available_;
  return true;
}

void FdTable::free(std::int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  available_ += n;
  assert(available_ <= capacity_ && "freed more descriptors than allocated");
}

std::int64_t FdTable::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return available_;
}

std::int64_t FdTable::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_ - available_;
}

std::int64_t FdTable::low_watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return low_watermark_;
}

std::int64_t FdTable::allocation_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocation_failures_;
}

void FdTable::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  available_ = capacity_;
}

}  // namespace ethergrid::grid
