#include "grid/submit_file.hpp"

#include "util/strings.hpp"

namespace ethergrid::grid {

Status parse_submit_file(std::string_view text, SubmitDescription* out) {
  *out = SubmitDescription{};
  int line_number = 0;
  for (const std::string& raw : split_keep_empty(std::string(text), '\n')) {
    ++line_number;
    std::string_view line = trim(raw);
    if (line.empty() || line[0] == '#') continue;

    // queue [N]
    const std::string lowered = to_lower(line);
    if (lowered == "queue" || starts_with(lowered, "queue ")) {
      long long n = 1;
      std::string_view rest = trim(std::string_view(lowered).substr(5));
      if (!rest.empty() && !parse_int(rest, &n)) {
        return Status::invalid_argument(
            strprintf("line %d: bad queue count '%s'", line_number,
                      std::string(rest).c_str()));
      }
      if (n < 1) {
        return Status::invalid_argument(
            strprintf("line %d: queue count must be positive", line_number));
      }
      out->queue_count += int(n);
      continue;
    }

    // key = value
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::invalid_argument(strprintf(
          "line %d: expected 'key = value' or 'queue', got '%s'", line_number,
          std::string(line).c_str()));
    }
    const std::string key = to_lower(trim(line.substr(0, eq)));
    const std::string value{trim(line.substr(eq + 1))};
    if (key.empty()) {
      return Status::invalid_argument(
          strprintf("line %d: empty attribute name", line_number));
    }

    if (key == "executable") {
      out->executable = value;
    } else if (key == "arguments") {
      out->arguments = value;
    } else if (key == "transfer_input_files") {
      out->transfer_input_files.clear();
      for (const std::string& file : split(value, ",")) {
        const std::string trimmed{trim(file)};
        if (!trimmed.empty()) out->transfer_input_files.push_back(trimmed);
      }
    } else {
      out->attributes[key] = value;
    }
  }

  if (out->executable.empty()) {
    return Status::invalid_argument("submit file has no executable");
  }
  if (out->queue_count == 0) {
    return Status::invalid_argument("submit file has no queue statement");
  }
  return Status::success();
}

}  // namespace ethergrid::grid
