#include "grid/fileserver.hpp"

#include <cmath>

namespace ethergrid::grid {

FileServer::FileServer(sim::Kernel& kernel, const FileServerConfig& config)
    : kernel_(&kernel),
      config_(config),
      slots_(kernel, config.concurrency),
      never_(kernel),
      failure_rng_(kernel.rng().stream("server-" + config.name)) {}

Status FileServer::fetch(sim::Context& ctx, std::int64_t bytes) {
  return serve(ctx, bytes, /*flag_only=*/false);
}

Status FileServer::fetch_flag(sim::Context& ctx) {
  return serve(ctx, 1, /*flag_only=*/true);
}

Status FileServer::serve(sim::Context& ctx, std::int64_t bytes,
                         bool flag_only) {
  // Single-threaded: later clients queue on the connection.
  sim::ResourceLease slot(ctx, slots_);
  ++connections_;

  if (config_.black_hole) {
    // Accepts the connection, then silence.  Only the client's own deadline
    // (or kill) ends this; unwinding releases the slot = disconnect.
    ctx.wait(never_);
    return Status::io_error("black hole responded?!");  // unreachable
  }

  ctx.sleep(config_.request_overhead);
  const double seconds = double(bytes) / config_.bytes_per_second;

  if (!flag_only && config_.transient_failure_rate > 0 &&
      failure_rng_.chance(config_.transient_failure_rate)) {
    // Connection resets somewhere mid-transfer: prompt, retryable failure.
    ctx.sleep(sec(seconds * failure_rng_.uniform(0.05, 0.95)));
    ++aborted_;
    return Status::io_error("connection reset during transfer");
  }

  ctx.sleep(sec(seconds));
  ++transfers_;
  bytes_served_ += bytes;
  return Status::success();
}

ServerFarm::ServerFarm(sim::Kernel& kernel,
                       const std::vector<FileServerConfig>& configs) {
  servers_.reserve(configs.size());
  for (const auto& config : configs) {
    servers_.push_back(std::make_unique<FileServer>(kernel, config));
  }
}

FileServer* ServerFarm::by_name(const std::string& name) {
  for (auto& server : servers_) {
    if (server->name() == name) return server.get();
  }
  return nullptr;
}

std::size_t ServerFarm::pick(Rng& rng) const {
  return static_cast<std::size_t>(
      rng.uniform_int(0, std::int64_t(servers_.size()) - 1));
}

}  // namespace ethergrid::grid
