#include "grid/fileserver.hpp"

#include <cmath>

namespace ethergrid::grid {

namespace {

sim::FaultPlan builtin_plan(const FileServerConfig& config) {
  sim::FaultPlan plan;
  if (config.transient_failure_rate > 0) {
    plan.add("fileserver." + config.name + ".fetch",
             sim::FaultPlan::reset(config.transient_failure_rate));
  }
  return plan;
}

}  // namespace

FileServer::FileServer(sim::Kernel& kernel, const FileServerConfig& config)
    : kernel_(&kernel),
      config_(config),
      site_(obs::intern_site("fileserver." + config.name)),
      slots_(kernel, config.concurrency),
      never_(kernel),
      builtin_faults_(builtin_plan(config),
                      kernel.rng().stream("server-" + config.name)),
      faults_(&builtin_faults_) {}

void FileServer::set_fault_injector(core::FaultInjector* injector) {
  faults_ = injector ? injector : &builtin_faults_;
}

Status FileServer::fetch(sim::Context& ctx, std::int64_t bytes) {
  return serve(ctx, bytes, /*flag_only=*/false);
}

Status FileServer::fetch_flag(sim::Context& ctx) {
  return serve(ctx, 1, /*flag_only=*/true);
}

Status FileServer::serve(sim::Context& ctx, std::int64_t bytes,
                         bool flag_only) {
  // Single-threaded: later clients queue on the connection.
  sim::ResourceLease slot(ctx, slots_);
  ++connections_;

  if (config_.black_hole) {
    // Accepts the connection, then silence.  Only the client's own deadline
    // (or kill) ends this; unwinding releases the slot = disconnect.
    ctx.wait(never_);
    return Status::io_error("black hole responded?!");  // unreachable
  }

  core::FaultDecision fault;
  if (faults_->enabled()) {
    const std::string site = "fileserver." + config_.name +
                             (flag_only ? ".flag" : ".fetch");
    fault = faults_->decide(site, ctx.now());
  }

  if (fault.action == core::FaultDecision::Action::kPartition) {
    // Windowed black hole: swallow the connection until the client's
    // deadline breaks it.  The slot stays held -- a partitioned server
    // still blocks the clients queued behind the victim.
    ctx.wait(never_);
    return Status::io_error("partitioned server responded?!");  // unreachable
  }

  ctx.sleep(config_.request_overhead);
  if (fault.action == core::FaultDecision::Action::kStall) {
    ctx.sleep(fault.stall);
  }

  const double seconds = double(bytes) / config_.bytes_per_second;

  auto emit_collision = [&](const Status& status) {
    if (!observers_) return;
    obs::ObsEvent event;
    event.kind = obs::ObsEvent::Kind::kCollision;
    event.time = ctx.now();
    event.site = site_;
    event.detail = status.message();
    observers_->on_event(event);
  };
  auto emit_carrier_sense = [&](bool clear) {
    if (!observers_ || !flag_only) return;
    obs::ObsEvent event;
    event.kind = obs::ObsEvent::Kind::kCarrierSense;
    event.time = ctx.now();
    event.site = site_;
    event.value = clear ? 1 : 0;
    observers_->on_event(event);
  };

  if (fault.action == core::FaultDecision::Action::kFail ||
      fault.action == core::FaultDecision::Action::kCrash) {
    ++aborted_;
    emit_collision(fault.status);
    emit_carrier_sense(false);
    return fault.status;
  }
  if (fault.action == core::FaultDecision::Action::kReset) {
    if (!flag_only) {
      // Connection resets somewhere mid-transfer: prompt, retryable
      // failure that still consumed a fraction of the service time.
      ctx.sleep(sec(seconds * fault.fraction));
    }
    ++aborted_;
    emit_collision(fault.status);
    emit_carrier_sense(false);
    return fault.status;
  }

  ctx.sleep(sec(seconds));
  ++transfers_;
  bytes_served_ += bytes;
  emit_carrier_sense(true);
  return Status::success();
}

ServerFarm::ServerFarm(sim::Kernel& kernel,
                       const std::vector<FileServerConfig>& configs) {
  servers_.reserve(configs.size());
  for (const auto& config : configs) {
    servers_.push_back(std::make_unique<FileServer>(kernel, config));
  }
}

FileServer* ServerFarm::by_name(const std::string& name) {
  for (auto& server : servers_) {
    if (server->name() == name) return server.get();
  }
  return nullptr;
}

std::size_t ServerFarm::pick(Rng& rng) const {
  return static_cast<std::size_t>(
      rng.uniform_int(0, std::int64_t(servers_.size()) - 1));
}

void ServerFarm::set_fault_injector(core::FaultInjector* injector) {
  for (auto& server : servers_) {
    server->set_fault_injector(injector);
  }
}

void ServerFarm::set_observers(obs::ObserverSet* observers) {
  for (auto& server : servers_) {
    server->set_observers(observers);
  }
}

}  // namespace ethergrid::grid
