#include "grid/fileserver.hpp"

#include <cmath>

namespace ethergrid::grid {

namespace {

SubstrateConfig substrate_config(const FileServerConfig& config) {
  SubstrateConfig sc;
  sc.site = "fileserver." + config.name;
  sc.bytes_per_second = config.bytes_per_second;
  sc.slots = config.concurrency;
  sc.model = config.model;
  if (config.transient_failure_rate > 0) {
    sc.builtin_faults.add("fileserver." + config.name + ".fetch",
                          sim::FaultPlan::reset(config.transient_failure_rate));
  }
  sc.builtin_fault_stream = "server-" + config.name;
  return sc;
}

}  // namespace

FileServer::FileServer(sim::Kernel& kernel, const FileServerConfig& config)
    : config_(config), substrate_(kernel, substrate_config(config)) {}

Status FileServer::fetch(sim::Context& ctx, std::int64_t bytes) {
  return serve(ctx, bytes, /*flag_only=*/false);
}

Status FileServer::fetch_flag(sim::Context& ctx) {
  return serve(ctx, 1, /*flag_only=*/true);
}

Status FileServer::serve(sim::Context& ctx, std::int64_t bytes,
                         bool flag_only) {
  // Binary model: single-threaded, later clients queue on the connection.
  // Fluid model: everyone is served at once at a max-min share.
  Substrate::Hold slot(ctx, substrate_);
  substrate_.note_admission();

  if (config_.black_hole) {
    // Accepts the connection, then silence.  Only the client's own deadline
    // (or kill) ends this; unwinding releases the slot = disconnect.
    substrate_.park(ctx);
    return Status::io_error("black hole responded?!");  // unreachable
  }

  core::FaultDecision fault =
      substrate_.decide(ctx, flag_only ? "flag" : "fetch");

  if (fault.action == core::FaultDecision::Action::kPartition) {
    // Windowed black hole: swallow the connection until the client's
    // deadline breaks it.  The slot stays held -- a partitioned server
    // still blocks the clients queued behind the victim.
    substrate_.park(ctx);
    return Status::io_error("partitioned server responded?!");  // unreachable
  }

  substrate_.occupy(ctx, config_.request_overhead);
  if (fault.action == core::FaultDecision::Action::kStall) {
    substrate_.occupy(ctx, fault.stall);
  }

  const bool fluid = substrate_.model() == CapacityModel::kFluid;
  const double seconds = double(bytes) / config_.bytes_per_second;

  auto emit_carrier_sense = [&](bool clear) {
    if (flag_only) substrate_.emit_carrier_sense(substrate_.site(), ctx.now(), clear);
  };

  if (fault.action == core::FaultDecision::Action::kFail ||
      fault.action == core::FaultDecision::Action::kCrash) {
    substrate_.note_failed(Duration{});
    substrate_.emit_collision(substrate_.site(), ctx.now(),
                              fault.status.message());
    emit_carrier_sense(false);
    return fault.status;
  }
  if (fault.action == core::FaultDecision::Action::kReset) {
    if (!flag_only) {
      // Connection resets somewhere mid-transfer: prompt, retryable
      // failure that still consumed a fraction of the service time.
      if (fluid) {
        (void)substrate_.stream(ctx, fault.fraction * double(bytes));
      } else {
        substrate_.occupy(ctx, sec(seconds * fault.fraction));
      }
    }
    substrate_.note_failed(Duration{});
    substrate_.emit_collision(substrate_.site(), ctx.now(),
                              fault.status.message());
    emit_carrier_sense(false);
    return fault.status;
  }

  if (fluid) {
    const TimePoint start = ctx.now();
    Status moved = substrate_.stream(ctx, double(bytes));
    if (moved.failed()) {
      substrate_.note_failed(ctx.now() - start);
      return moved;
    }
    substrate_.note_completed(double(bytes), ctx.now() - start);
  } else {
    substrate_.occupy(ctx, sec(seconds));
    substrate_.note_completed(double(bytes), sec(seconds));
  }
  emit_carrier_sense(true);
  return Status::success();
}

ServerFarm::ServerFarm(sim::Kernel& kernel,
                       const std::vector<FileServerConfig>& configs) {
  servers_.reserve(configs.size());
  for (const auto& config : configs) {
    servers_.push_back(std::make_unique<FileServer>(kernel, config));
  }
}

FileServer* ServerFarm::by_name(const std::string& name) {
  for (auto& server : servers_) {
    if (server->name() == name) return server.get();
  }
  return nullptr;
}

std::size_t ServerFarm::pick(Rng& rng) const {
  return static_cast<std::size_t>(
      rng.uniform_int(0, std::int64_t(servers_.size()) - 1));
}

void ServerFarm::set_fault_injector(core::FaultInjector* injector) {
  for (auto& server : servers_) {
    server->set_fault_injector(injector);
  }
}

void ServerFarm::set_observers(obs::ObserverSet* observers) {
  for (auto& server : servers_) {
    server->set_observers(observers);
  }
}

}  // namespace ethergrid::grid
