#include "sim/shard.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ethergrid::sim {

namespace {

std::size_t resolve_threads(std::size_t requested, std::size_t shards) {
  if (requested == 0) {
    const std::size_t hw = std::thread::hardware_concurrency();
    requested = hw > 0 ? hw : 1;
  }
  return std::min(std::max<std::size_t>(requested, 1), std::max<std::size_t>(shards, 1));
}

}  // namespace

ShardedKernel::ShardedKernel(std::uint64_t seed, ShardedKernelOptions options)
    : lookahead_(std::max(options.lookahead, usec(1))),
      threads_(resolve_threads(options.threads, options.shards)),
      mailbox_(std::max<std::size_t>(options.shards, 1)) {
  const std::size_t shards = std::max<std::size_t>(options.shards, 1);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    // Same seed everywhere: per-site streams are derived by NAME from the
    // kernel root, so a site draws the same sequence no matter which shard
    // (or how many shards) it landed on.
    shards_.push_back(std::make_unique<Kernel>(seed, options.kernel));
  }
  scan_min_.assign(shards, TimePoint::max());
  shard_pending_.assign(shards, 0);
  delivered_to_.assign(shards, 0);
  errors_.assign(shards, nullptr);
  if (threads_ > 1) {
    workers_.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w) {
      workers_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

ShardedKernel::~ShardedKernel() {
  try {
    shutdown();
  } catch (...) {
    // Destructor: swallow; the per-shard kernels' own destructors assert
    // the important postcondition (no live processes).
  }
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    stop_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardedKernel::worker_main(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    // Fixed shard -> worker pinning: shard i always runs here (fiber
    // resume-thread affinity, see shard.hpp).
    for (std::size_t s = worker; s < shards_.size(); s += threads_) {
      try {
        (*job)(s);
      } catch (...) {
        errors_[s] = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      if (--pending_workers_ == 0) done_cv_.notify_one();
    }
  }
}

void ShardedKernel::dispatch(const std::function<void(std::size_t)>& job) {
  std::fill(errors_.begin(), errors_.end(), nullptr);
  if (threads_ == 1) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      try {
        job(s);
      } catch (...) {
        errors_[s] = std::current_exception();
      }
    }
  } else {
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      job_ = &job;
      pending_workers_ = threads_;
      ++epoch_;
    }
    pool_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
      job_ = nullptr;
    }
  }
  // First failure by shard index, so which exception surfaces does not
  // depend on which worker lost a race.
  for (std::exception_ptr& e : errors_) {
    if (e) {
      std::exception_ptr err = e;
      std::fill(errors_.begin(), errors_.end(), nullptr);
      std::rethrow_exception(err);
    }
  }
}

void ShardedKernel::post(std::size_t src_shard, std::uint64_t src_site,
                         std::size_t dst_shard, Duration latency,
                         std::string name, ProcessBody body) {
  assert(src_shard < shards_.size() && dst_shard < shards_.size());
  ShardMessage m;
  m.deliver = shards_[src_shard]->now() + std::max(latency, lookahead_);
  m.src_site = src_site;
  m.dst_shard = dst_shard;
  m.name = std::move(name);
  m.body = std::move(body);
  mailbox_.post(src_shard, std::move(m));
}

std::size_t ShardedKernel::flush_mail() {
  std::fill(delivered_to_.begin(), delivered_to_.end(), 0);
  if (mailbox_.empty()) return 0;
  std::vector<ShardMessage> batch = mailbox_.drain();
  for (ShardMessage& m : batch) {
    Kernel& dst = *shards_[m.dst_shard];
    delivered_to_[m.dst_shard] = 1;
    const TimePoint deliver = m.deliver;
    // The delivery process is spawned at the destination's current time
    // (a barrier, so its wake is the first thing the next window runs)
    // and sleeps out the remaining latency.  Spawning here, in canonical
    // batch order, is what pins the (id, seq) assignment -- and therefore
    // same-instant delivery order -- regardless of threads or partition.
    dst.spawn(std::move(m.name),
              [deliver, body = std::move(m.body)](Context& ctx) {
                if (deliver > ctx.now()) ctx.sleep(deliver - ctx.now());
                body(ctx);
              });
  }
  messages_delivered_ += batch.size();
  return batch.size();
}

void ShardedKernel::run_window(TimePoint h) {
  std::uint64_t before = 0;
  for (const auto& k : shards_) before += k->events_processed();
  dispatch([this, h](std::size_t s) {
    shard_pending_[s] = shards_[s]->run_until(h) ? 1 : 0;
    scan_min_[s] = shards_[s]->next_live_event_time();
  });
  ++windows_;
  std::uint64_t after = 0;
  for (const auto& k : shards_) after += k->events_processed();
  // A window always delivers the event(s) at its opening instant T -- the
  // only way it can't is an mc strategy halting a shard mid-window.  Bail
  // instead of spinning on an unmovable horizon; the strategy's driver
  // discards the run.
  if (after == before) shard_pending_.assign(shards_.size(), 1);
}

bool ShardedKernel::run_until(TimePoint limit) {
  // Fresh scan: the coordinator may have spawned/killed processes since
  // the last window (world construction, a previous run's tail).
  dispatch([this](std::size_t s) {
    scan_min_[s] = shards_[s]->next_live_event_time();
  });
  std::fill(delivered_to_.begin(), delivered_to_.end(), 0);
  for (;;) {
    const std::size_t delivered = flush_mail();
    TimePoint t = TimePoint::max();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      // A shard that received mail has delivery wakes at its current
      // clock, which the pre-flush scan could not see.
      TimePoint m = scan_min_[s];
      if (delivered_to_[s]) m = std::min(m, shards_[s]->now());
      t = std::min(t, m);
    }
    if (t > limit) break;
    // Horizon: everything in [t, h] is safe to run because no message
    // posted at >= t can deliver before t + lookahead = h + 1us.
    TimePoint h = limit;
    if (TimePoint::max() - (lookahead_ - usec(1)) > t) {
      h = std::min(limit, t + lookahead_ - usec(1));
    }
    std::uint64_t events_before = 0;
    for (const auto& k : shards_) events_before += k->events_processed();
    run_window(h);
    std::uint64_t events_after = 0;
    for (const auto& k : shards_) events_after += k->events_processed();
    if (events_after == events_before && delivered == 0) {
      return true;  // halted mid-window (mc strategy); events remain
    }
  }
  // Advance every clock to exactly `limit` (no event processing remains
  // at or below it).
  dispatch([this, limit](std::size_t s) {
    shard_pending_[s] = shards_[s]->run_until(limit) ? 1 : 0;
    scan_min_[s] = shards_[s]->next_live_event_time();
  });
  bool pending = !mailbox_.empty();
  for (char p : shard_pending_) pending = pending || p != 0;
  return pending;
}

void ShardedKernel::run() {
  dispatch([this](std::size_t s) {
    scan_min_[s] = shards_[s]->next_live_event_time();
  });
  std::fill(delivered_to_.begin(), delivered_to_.end(), 0);
  for (;;) {
    const std::size_t delivered = flush_mail();
    TimePoint t = TimePoint::max();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      TimePoint m = scan_min_[s];
      if (delivered_to_[s]) m = std::min(m, shards_[s]->now());
      t = std::min(t, m);
    }
    if (t == TimePoint::max()) break;  // drained; mailbox just flushed
    TimePoint h = TimePoint::max();
    if (TimePoint::max() - (lookahead_ - usec(1)) > t) {
      h = t + lookahead_ - usec(1);
    }
    std::uint64_t events_before = 0;
    for (const auto& k : shards_) events_before += k->events_processed();
    run_window(h);
    std::uint64_t events_after = 0;
    for (const auto& k : shards_) events_after += k->events_processed();
    if (events_after == events_before && delivered == 0) return;  // halted
  }
}

void ShardedKernel::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // Undelivered messages reference a world about to be torn down; they
  // must never run.
  mailbox_.clear();
  // Each kernel's shutdown drains unwinding fibers, so it must run on the
  // shard's pinned worker.
  dispatch([this](std::size_t s) { shards_[s]->shutdown(); });
}

TimePoint ShardedKernel::now() const {
  TimePoint t = TimePoint::max();
  for (const auto& k : shards_) t = std::min(t, k->now());
  return t;
}

std::uint64_t ShardedKernel::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& k : shards_) total += k->events_processed();
  return total;
}

std::size_t ShardedKernel::live_process_count() const {
  std::size_t total = 0;
  for (const auto& k : shards_) total += k->live_process_count();
  return total;
}

}  // namespace ethergrid::sim
