#include "sim/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ethergrid::sim {

namespace {

// Work-unit slop absorbing float residue: transfers are measured in bytes,
// so a millionth of a unit is far below anything observable.
constexpr double kWorkEpsilon = 1e-6;

// Completion wakeups round up to whole microseconds (the queue's tick), so
// every planned sleep makes strictly positive progress.
Duration eta_for(double remaining, double rate) {
  const double seconds = remaining / rate;
  // Clamp: a starved flow plans a far-future wakeup and relies on the
  // re-share pulse; 2^53 us (~285 years) stays exact in double and int64.
  const double us = std::min(std::ceil(seconds * 1e6), 9e15);
  return Duration(std::max<std::int64_t>(1, std::int64_t(us)));
}

// Weighted max-min progressive filling over `flows`, honouring rate caps.
// Writes each flow's new rate into Flow::rate.  Deterministic: flows are
// visited in join order and the fill repeats at most flows.size() rounds.
template <typename FlowPtrs>
void fill_shares(double capacity, FlowPtrs& flows) {
  for (auto* flow : flows) flow->rate = -1;  // -1 = not yet frozen
  double spare = capacity;
  std::size_t unfrozen = flows.size();
  while (unfrozen > 0) {
    double weight_sum = 0;
    for (auto* flow : flows) {
      if (flow->rate < 0) weight_sum += flow->weight;
    }
    const double per_weight = weight_sum > 0 ? spare / weight_sum : 0;
    // Freeze every flow whose cap binds at this fill level; if none does,
    // the remaining flows take their proportional share and we are done.
    bool froze = false;
    for (auto* flow : flows) {
      if (flow->rate >= 0) continue;
      const double proportional = per_weight * flow->weight;
      if (flow->rate_cap <= proportional) {
        flow->rate = flow->rate_cap;
        spare -= flow->rate_cap;
        --unfrozen;
        froze = true;
      }
    }
    if (froze) continue;
    for (auto* flow : flows) {
      if (flow->rate < 0) {
        flow->rate = per_weight * flow->weight;
        --unfrozen;
      }
    }
    break;
  }
}

}  // namespace

FluidResource::FluidResource(Kernel& kernel, double capacity)
    : kernel_(&kernel), capacity_(capacity) {
  assert(capacity > 0 && "FluidResource capacity must be positive");
}

FluidResource::~FluidResource() {
  // Flows live on process stacks; Kernel::shutdown() unwinds them before
  // substrates are destroyed (the kernel lifetime rule).
  assert(flows_.empty() && "FluidResource destroyed with active flows");
}

void FluidResource::set_share_listener(ShareListener listener) {
  listener_ = std::move(listener);
}

void FluidResource::settle(Flow& flow, TimePoint now) {
  if (now > flow.settled) {
    flow.remaining -= flow.rate * to_seconds(now - flow.settled);
    if (flow.remaining < 0) flow.remaining = 0;
    flow.settled = now;
  }
}

void FluidResource::reshare(TimePoint now, Flow* skip) {
  ++reshares_;
  std::vector<double> old_rates;
  old_rates.reserve(flows_.size());
  for (Flow* flow : flows_) {
    settle(*flow, now);
    old_rates.push_back(flow->rate);
  }
  fill_shares(capacity_, flows_);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    Flow* flow = flows_[i];
    if (flow == skip) continue;
    if (flow->rate != old_rates[i]) flow->change->pulse();
  }
  if (listener_) listener_(now, flows_.size(), instantaneous_share(1.0));
}

double FluidResource::instantaneous_share(double weight) const {
  Flow phantom;
  phantom.weight = weight;
  std::vector<Flow*> all(flows_);
  all.push_back(const_cast<Flow*>(&phantom));
  // fill_shares scribbles on Flow::rate; restore the real flows after.
  std::vector<double> saved;
  saved.reserve(flows_.size());
  for (const Flow* flow : flows_) saved.push_back(flow->rate);
  fill_shares(capacity_, all);
  const double share = phantom.rate;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const_cast<Flow*>(flows_[i])->rate = saved[i];
  }
  return share;
}

double FluidResource::allocated_rate() const {
  double total = 0;
  for (const Flow* flow : flows_) total += flow->rate;
  return total;
}

Status FluidResource::transfer(Context& ctx, double work,
                               FluidFlowOptions options) {
  assert(options.weight > 0 && "flow weight must be positive");
  if (work <= 0) return Status::success();

  Event change(*kernel_);
  Flow flow;
  flow.weight = options.weight;
  flow.rate_cap = options.rate_cap;
  flow.remaining = work;
  flow.settled = ctx.now();
  flow.change = &change;
  flows_.push_back(&flow);
  reshare(ctx.now(), &flow);

  try {
    while (flow.remaining > kWorkEpsilon) {
      // Cooperative invariant: nothing runs between this plan and the
      // wait, so the rate cannot change before the waiter is registered.
      const bool reshared = ctx.wait_for(change, eta_for(flow.remaining,
                                                         flow.rate));
      settle(flow, ctx.now());
      if (!reshared && flow.remaining > kWorkEpsilon) {
        // Timeout arithmetic rounds *up*, so an expired plan means the
        // work is done up to float residue; anything more is a logic bug.
        assert(flow.remaining <= work * 1e-9 + kWorkEpsilon);
        break;
      }
    }
  } catch (...) {
    // Killed or deadline-unwound mid-transfer: the flow leaves and the
    // survivors speed up at this instant.
    units_moved_ += work - flow.remaining;
    ++aborted_;
    flows_.erase(std::find(flows_.begin(), flows_.end(), &flow));
    reshare(ctx.now(), nullptr);
    throw;
  }

  units_moved_ += work;
  ++completed_;
  flows_.erase(std::find(flows_.begin(), flows_.end(), &flow));
  reshare(ctx.now(), nullptr);
  return Status::success();
}

}  // namespace ethergrid::sim
