// ShardedKernel: N independent sim::Kernels run in parallel under
// conservative time-window synchronization.
//
// The grid is partitioned by substrate: each FileServer/Schedd plus the
// clients attached to it lives entirely on one shard, which owns its own
// event queue, virtual clock, fiber scheduler, and RNG streams.  Shards
// interact only through cross-shard messages with a minimum latency (the
// `lookahead`), posted into per-shard mailbox rows (mailbox.hpp) and
// delivered in batches at window boundaries.
//
// The window loop (classic conservative / bounded-lag synchronization,
// all times integer microseconds):
//
//   repeat:
//     flush    -- drain the mailboxes in canonical (deliver, src_site,
//                 seq) order and spawn each message's body on its
//                 destination kernel (it sleeps until its deliver time);
//     scan     -- T := min over shards of Kernel::next_live_event_time();
//     window   -- H := min(limit, T + lookahead - 1us); every shard runs
//                 run_until(H) in parallel; barrier.
//
// Safety: a message posted at virtual time s delivers at s + latency with
// latency >= lookahead.  Every event in the window satisfies s >= T, so
// every delivery lands at >= T + lookahead = H + 1us when H is unclamped
// -- strictly beyond the horizon -- and a clamped window (H = limit <
// T + lookahead - 1us) starts within lookahead of the limit, so its
// deliveries land strictly beyond `limit` and simply wait in the mailbox
// for the next call.  No shard can ever receive a message in its past.
//
// Determinism: `shards=N, threads=1` is byte-identical to `threads=N`,
// and -- for worlds built partition-independently (per-site RNG streams
// derived by name from a per-shard kernel constructed with the SAME seed,
// per-site fault sites, site-stable mailbox ids) -- per-site results are
// identical across shard counts too.  The load-bearing details:
//   * the horizon uses the EXACT live-event minimum, so the window
//     schedule is a pure function of the world, not of the partition;
//   * mailbox delivery order is canonical and site-stable;
//   * each shard's window runs on a fixed worker thread, so wall-clock
//     scheduling can reorder nothing that virtual time doesn't.
//
// Thread affinity: shard i is pinned to worker (i % threads) for the
// kernel's whole life.  This is a hard requirement of the fiber backend:
// a parked fiber's sigsetjmp frame caches thread-local addresses, so a
// fiber must always resume on the OS thread that first ran it.  With
// threads=1 no workers are spawned and every shard runs inline on the
// calling thread -- all ShardedKernel calls must then come from that same
// thread (the model checker relies on this mode).
#pragma once

#include <cstdint>
#include <cstddef>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/mailbox.hpp"
#include "util/time.hpp"

namespace ethergrid::sim {

struct ShardedKernelOptions {
  std::size_t shards = 1;
  // Worker threads executing shard windows; 0 means min(shards,
  // hardware_concurrency).  1 runs everything inline on the caller.
  // Clamped to `shards` (more workers than shards would idle).
  std::size_t threads = 1;
  // Minimum cross-shard latency; post() floors every message latency to
  // this, and the window horizon extends lookahead past the earliest
  // pending event.  Larger = fewer barriers but coarser cross-shard
  // timing; must be >= 1us.
  Duration lookahead = msec(50);
  // Per-shard kernel options (backend, queue, stacks).  Every shard
  // kernel is constructed with the same seed so name-derived RNG streams
  // are partition-independent.
  KernelOptions kernel;
};

class ShardedKernel {
 public:
  ShardedKernel(std::uint64_t seed, ShardedKernelOptions options = {});
  ~ShardedKernel();  // shuts down (on the pinned workers), then joins them

  ShardedKernel(const ShardedKernel&) = delete;
  ShardedKernel& operator=(const ShardedKernel&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t thread_count() const { return threads_; }
  Duration lookahead() const { return lookahead_; }

  // The shard kernels themselves: build per-shard worlds against these.
  // Between runs (construction, after run_until returns, after shutdown)
  // they may be used freely from the coordinating thread; while a window
  // is running they belong to their workers.
  Kernel& shard(std::size_t i) { return *shards_[i]; }
  const Kernel& shard(std::size_t i) const { return *shards_[i]; }

  ProcessHandle spawn(std::size_t shard, std::string name, ProcessBody body) {
    return shards_[shard]->spawn(std::move(name), std::move(body));
  }

  // Posts a cross-shard message: `body` runs on dst_shard as a process
  // named `name` at virtual time now(src_shard) + max(latency, lookahead).
  // src_site is the sender's stable site id (see mailbox.hpp).  Callable
  // from a process running on src_shard, or from the coordinating thread
  // while the world is stopped.  src == dst is allowed and follows the
  // same batched path (so a 1-shard world behaves exactly like an N-shard
  // one).
  void post(std::size_t src_shard, std::uint64_t src_site,
            std::size_t dst_shard, Duration latency, std::string name,
            ProcessBody body);

  // Runs every shard to virtual time t (windowed as described above) and
  // advances all clocks to exactly t.  Returns true if live events or
  // undelivered messages remain beyond t.  Rethrows the first (by shard
  // index) exception a shard raised.
  bool run_until(TimePoint t);

  // Runs until every shard drains and no message is pending.
  void run();

  // Kills and drains every shard (each on its pinned worker) and drops
  // undelivered messages.  Idempotent.
  void shutdown();

  // Global virtual time: min over shard clocks (they coincide at every
  // barrier; a shard that went idle early still reads as caught-up).
  TimePoint now() const;

  // Sums over shards.
  std::uint64_t events_processed() const;
  std::size_t live_process_count() const;

  // Telemetry.
  std::uint64_t windows_run() const { return windows_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }

 private:
  // Runs job(shard) for every shard on its pinned worker (inline when
  // threads_ == 1) and barriers.  Rethrows the first error by shard index.
  void dispatch(const std::function<void(std::size_t)>& job);
  void worker_main(std::size_t worker);
  // Drains the mailboxes and spawns delivery processes; returns per-shard
  // "received mail" flags via delivered_to_.
  std::size_t flush_mail();
  // One dispatch: run_until(h) + next_live_event_time per shard.
  void run_window(TimePoint h);

  const Duration lookahead_;
  std::size_t threads_ = 1;
  std::vector<std::unique_ptr<Kernel>> shards_;
  ShardMailbox mailbox_;

  // Per-shard results of the last dispatch (written by the owning worker,
  // read by the coordinator after the barrier).
  std::vector<TimePoint> scan_min_;
  std::vector<char> shard_pending_;
  std::vector<char> delivered_to_;
  std::vector<std::exception_ptr> errors_;

  std::uint64_t windows_ = 0;
  std::uint64_t messages_delivered_ = 0;
  bool shut_down_ = false;

  // Worker pool (threads_ > 1 only).
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;  // coordinator -> workers: new epoch
  std::condition_variable done_cv_;  // workers -> coordinator: all done
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::size_t pending_workers_ = 0;
  bool stop_ = false;
};

}  // namespace ethergrid::sim
