// Event-queue implementations for sim::Kernel: a hierarchical timer wheel
// (default) and the original binary heap (differential-testing oracle).
//
// Both deliver pending wakeups in strict (time, seq) order -- seq is the
// kernel's global schedule counter, so equal-time entries pop FIFO and the
// whole simulation stays deterministic and byte-identical across queue
// implementations and execution backends.
//
// Timer wheel geometry (ticks are integer microseconds, the resolution of
// ethergrid::Duration):
//
//   level 0: 1024 slots x 1 us      window  ~1 ms
//   level 1:   64 slots x 1024 us   window  ~65.5 ms
//   level 2:   64 slots x ~65.5 ms  window  ~4.19 s
//   level 3:   64 slots x ~4.19 s   window  ~4.47 min
//   level 4:   64 slots x ~4.47 min window  ~4.77 h
//   level 5:   64 slots x ~4.77 h   window  ~12.7 days
//
// Entries further than ~12.7 simulated days ahead of the cursor go to an
// overflow bag and re-enter the wheel when the cursor comes within range.
// Each level is a ring indexed by (time >> shift) & mask; per-level
// occupancy bitmaps let the cursor jump straight to the next populated
// slot, so advancing across empty virtual time is O(levels), not O(ticks).
//
// Determinism: entries of the granule the cursor is standing on live in a
// small binary "ready" heap ordered by (time, seq).  Slot drains and
// cascades feed the ready heap; schedules at the current instant (yield,
// Event::pulse) bypass the rings entirely and go straight to ready.  Since
// level-0 slots are 1-us granules and virtual time is integer microseconds,
// every entry passes through the ready heap before delivery, which restores
// the global (time, seq) total order regardless of the (arbitrary) order in
// which ring slots accumulated entries.
//
// Slots are intrusive singly-linked lists threaded through two pooled
// struct-of-arrays arenas: a hot key lane (time, seq, next-link) that
// scans, sorts, and cascades touch, and a cold payload lane (process,
// token) read once at delivery.  Cells are recycled through a freelist,
// so steady-state operation allocates nothing; a slot is one 32-bit head
// index, not a container.
//
// Cancellation stays lazy (wake-token mismatch, see kernel.hpp); the wheel
// drops stale entries whenever it touches a slot (drain or cascade) and,
// when the owning kernel's stale counter crosses the compaction threshold,
// compacts a bounded number of *occupied* slots per call -- incremental
// per-slot reclamation instead of the heap's stop-the-world pass.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/time.hpp"

namespace ethergrid::sim {

class Process;

// Which event-queue implementation a Kernel uses.  kHeap is kept as a
// differential-testing oracle (tests/sim/queue_oracle_test.cpp) exactly
// like the thread backend is for the fiber backend.
enum class QueueImpl { kWheel, kHeap };

const char* queue_impl_name(QueueImpl impl);

// kWheel unless the ETHERGRID_SIM_QUEUE environment variable says
// otherwise ("wheel" / "heap").
QueueImpl default_queue_impl();

namespace internal {

// One pending wakeup.  Entries are not removed on cancellation; each
// process carries a wake token and entries whose token no longer matches
// are skipped on pop (see kernel.hpp).
struct QueueEntry {
  TimePoint time;
  std::uint64_t seq;  // FIFO tie-break at equal times => determinism
  Process* process;
  std::uint64_t token;
};

struct QueueEntryLater {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

// ------------------------------------------------------------------ heap

// The original implementation: one std::push_heap/std::pop_heap min-heap
// over all pending entries, with stop-the-world compaction.
class HeapQueue {
 public:
  void push(const QueueEntry& e) {
    entries_.push_back(e);
    std::push_heap(entries_.begin(), entries_.end(), QueueEntryLater{});
  }

  // Removes and returns the earliest entry if its time is <= limit.
  bool pop_due(TimePoint limit, QueueEntry* out) {
    if (entries_.empty() || entries_.front().time > limit) return false;
    *out = entries_.front();
    std::pop_heap(entries_.begin(), entries_.end(), QueueEntryLater{});
    entries_.pop_back();
    return true;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const QueueEntry& front() const { return entries_.front(); }

  // Drops every entry matching pred and re-heapifies; returns the number
  // dropped.  O(size) -- the stop-the-world pass the wheel avoids.
  template <typename Pred>
  std::size_t compact(Pred pred) {
    const std::size_t before = entries_.size();
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(), pred),
                   entries_.end());
    std::make_heap(entries_.begin(), entries_.end(), QueueEntryLater{});
    return before - entries_.size();
  }

  template <typename Fn>
  void for_each(Fn fn) const {
    for (const QueueEntry& e : entries_) fn(e);
  }

 private:
  std::vector<QueueEntry> entries_;  // min-heap via QueueEntryLater
};

// ----------------------------------------------------------------- wheel

class TimerWheel {
 public:
  using Tick = std::int64_t;  // microseconds since epoch

  static constexpr int kL0Bits = 10;  // 1024 slots
  static constexpr int kLevelBits = 6;  // 64 slots per higher level
  static constexpr int kLevels = 6;   // level 0 + five coarser levels
  static constexpr std::size_t kL0Slots = std::size_t(1) << kL0Bits;
  static constexpr std::size_t kLevelSlots = std::size_t(1) << kLevelBits;
  // Granule shift per level: 0, 10, 16, 22, 28, 34.
  static constexpr int shift_for(int level) {
    return level == 0 ? 0 : kL0Bits + (level - 1) * kLevelBits;
  }
  // Total coverage: 2^40 us (~12.7 days) beyond the cursor
  // (== shift_for(kLevels - 1) + kLevelBits).
  static constexpr int kCoverageBits = kL0Bits + (kLevels - 1) * kLevelBits;

  TimerWheel() {
    heads_.assign(kL0Slots + (kLevels - 1) * kLevelSlots, kNil);
    l0_bits_.assign(kL0Words, 0);
    level_bits_.assign(kLevels - 1, 0);
  }

  void push(const QueueEntry& e) {
    ++size_;
    const Tick t = e.time.time_since_epoch().count();
    if (t <= cursor_) {
      // Current instant (yield, pulse, deadline already due): straight to
      // the ready heap -- the rings never see same-instant churn.  A
      // one-element heap is trivially valid, so skip the sift-up then.
      ready_.push_back(e);
      if (ready_.size() > 1) {
        std::push_heap(ready_.begin(), ready_.end(), QueueEntryLater{});
      }
      return;
    }
    place(alloc_cell(e, t), t);
  }

  // Removes and returns the earliest entry with time <= limit, advancing
  // the cursor (draining and cascading slots) as needed.  When it returns
  // false the cursor has advanced to limit and nothing at or before limit
  // remains.  Stale entries encountered while draining slots are dropped
  // via pred (stale_dropped is incremented for each); delivery-time
  // staleness of ready-heap entries is the caller's job.
  template <typename Pred>
  bool pop_due(TimePoint limit, QueueEntry* out, Pred pred,
               std::size_t* stale_dropped) {
    // An unbounded pop ("next event, whenever it is") must not advance the
    // cursor on exhaustion: parking it at Tick max would classify every
    // later push as current-instant and degenerate the wheel into a heap.
    const bool unbounded = limit == TimePoint::max();
    const Tick limit_t = unbounded ? std::numeric_limits<Tick>::max()
                                   : limit.time_since_epoch().count();
    while (true) {
      if (!ready_.empty() &&
          ready_.front().time.time_since_epoch().count() <= limit_t) {
        *out = ready_.front();
        if (ready_.size() == 1) {
          ready_.clear();  // singleton: skip the sift-down
        } else {
          std::pop_heap(ready_.begin(), ready_.end(), QueueEntryLater{});
          ready_.pop_back();
        }
        --size_;
        return true;
      }
      // Pull the overflow bag into the rings once the cursor is close
      // enough that its earliest entry fits the top level.
      if (!overflow_.empty() &&
          ((overflow_min_ >> shift_for(kLevels - 1)) -
           (cursor_ >> shift_for(kLevels - 1))) < Tick(kLevelSlots)) {
        refill_overflow(pred, stale_dropped);
        continue;
      }
      Tick next = 0;
      int level = -1;
      if (!next_occupied(&next, &level)) {
        if (!overflow_.empty() && overflow_min_ <= limit_t) {
          // Far-future entry inside the limit: jump the cursor to within
          // 63 top-level granules of it, which guarantees the refill above
          // captures it next iteration (a full-coverage jump can leave the
          // granule difference at exactly kLevelSlots and loop forever).
          const int top_shift = shift_for(kLevels - 1);
          cursor_ = std::max(
              cursor_,
              overflow_min_ - (Tick(kLevelSlots - 1) << top_shift));
          continue;
        }
        if (!unbounded) cursor_ = std::max(cursor_, limit_t);
        return false;
      }
      if (next > limit_t) {
        cursor_ = std::max(cursor_, limit_t);
        return false;
      }
      cursor_ = next;
      const std::size_t slot = slot_index(level, next);
      clear_bit(level, next);
      const std::uint32_t head = heads_[slot];
      heads_[slot] = kNil;
      if (level != 0) {
        cascade_list(head, pred, stale_dropped);
        continue;
      }
      // All entries in a level-0 slot share one 1-us granule, i.e. one
      // timestamp.  The overwhelmingly common shape is a single cell with
      // the ready heap empty: hand it back without touching the heap.
      if (ready_.empty() && key_arena_[head].next == kNil) {
        const QueueEntry e = entry_at(head);
        free_cell(head);
        --size_;
        if (pred(e)) {
          ++*stale_dropped;
          continue;
        }
        *out = e;
        return true;
      }
      drain_list(head, pred, stale_dropped);
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Incremental compaction: sweep up to max_slots occupied slots (bitmap
  // guided, round-robin) plus, periodically, the overflow bag, dropping
  // entries matching pred.  Returns the number dropped.  Each call does
  // work bounded by the entries it reclaims plus O(levels) scan -- no
  // global rebuild.
  template <typename Pred>
  std::size_t compact_step(Pred pred, int max_slots = 4) {
    std::size_t dropped = 0;
    const std::size_t total_slots = heads_.size();
    for (int visited = 0; visited < max_slots && total_slots > 0; ++visited) {
      const std::size_t idx = next_occupied_slot_index(rotor_);
      if (idx == kNoSlot) break;
      rotor_ = (idx + 1) % total_slots;
      dropped += compact_list(&heads_[idx], pred);
      if (heads_[idx] == kNil) clear_bit_by_index(idx);
    }
    // The overflow bag is one more "slot" in the rotation.
    if (++overflow_rotor_ >= 16 && !overflow_.empty()) {
      overflow_rotor_ = 0;
      dropped += compact_overflow(pred);
    }
    size_ -= dropped;
    return dropped;
  }

  template <typename Fn>
  void for_each(Fn fn) const {
    for (const QueueEntry& e : ready_) fn(e);
    for (const std::uint32_t head : heads_) {
      for (std::uint32_t i = head; i != kNil; i = key_arena_[i].next) {
        fn(entry_at(i));
      }
    }
    for (const QueueEntry& e : overflow_) fn(e);
  }

 private:
  // Hot lane: everything a scan, sort, or cascade needs, 24 bytes/cell.
  struct KeyCell {
    Tick time;
    std::uint64_t seq;
    std::uint32_t next;  // intrusive slot list / freelist link
  };
  // Cold lane: read once, at delivery.
  struct PayCell {
    Process* process;
    std::uint64_t token;
  };

  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::size_t kNoSlot = ~std::size_t(0);
  static constexpr std::size_t kL0Words = kL0Slots / 64;

  static constexpr std::size_t level_base(int level) {
    return level == 0 ? 0 : kL0Slots + std::size_t(level - 1) * kLevelSlots;
  }
  static constexpr std::size_t level_slot_count(int level) {
    return level == 0 ? kL0Slots : kLevelSlots;
  }

  std::size_t slot_index(int level, Tick t) const {
    const std::size_t mask = level_slot_count(level) - 1;
    return level_base(level) + (std::size_t(t >> shift_for(level)) & mask);
  }

  QueueEntry entry_at(std::uint32_t i) const {
    return QueueEntry{TimePoint(Duration(key_arena_[i].time)),
                      key_arena_[i].seq, pay_arena_[i].process,
                      pay_arena_[i].token};
  }

  std::uint32_t alloc_cell(const QueueEntry& e, Tick t) {
    std::uint32_t idx = free_head_;
    if (idx != kNil) {
      free_head_ = key_arena_[idx].next;
    } else {
      idx = std::uint32_t(key_arena_.size());
      key_arena_.emplace_back();
      pay_arena_.emplace_back();
    }
    key_arena_[idx] = KeyCell{t, e.seq, kNil};
    pay_arena_[idx] = PayCell{e.process, e.token};
    return idx;
  }

  void free_cell(std::uint32_t idx) {
    key_arena_[idx].next = free_head_;
    free_head_ = idx;
  }

  void set_bit(int level, Tick t) {
    const std::size_t mask = level_slot_count(level) - 1;
    const std::size_t bit = std::size_t(t >> shift_for(level)) & mask;
    if (level == 0) {
      l0_bits_[bit >> 6] |= std::uint64_t(1) << (bit & 63);
      l0_word_mask_ |= std::uint32_t(1) << (bit >> 6);
    } else {
      level_bits_[level - 1] |= std::uint64_t(1) << bit;
    }
  }

  void clear_bit(int level, Tick t) {
    const std::size_t mask = level_slot_count(level) - 1;
    const std::size_t bit = std::size_t(t >> shift_for(level)) & mask;
    if (level == 0) {
      if ((l0_bits_[bit >> 6] &= ~(std::uint64_t(1) << (bit & 63))) == 0) {
        l0_word_mask_ &= ~(std::uint32_t(1) << (bit >> 6));
      }
    } else {
      level_bits_[level - 1] &= ~(std::uint64_t(1) << bit);
    }
  }

  void clear_bit_by_index(std::size_t idx) {
    if (idx < kL0Slots) {
      if ((l0_bits_[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63))) == 0) {
        l0_word_mask_ &= ~(std::uint32_t(1) << (idx >> 6));
      }
    } else {
      const std::size_t off = idx - kL0Slots;
      level_bits_[off >> kLevelBits] &=
          ~(std::uint64_t(1) << (off & (kLevelSlots - 1)));
    }
  }

  // Files cell idx (time t, strictly ahead of the cursor) into the finest
  // ring whose window reaches t, or the overflow bag.
  void place(std::uint32_t idx, Tick t) {
    for (int level = 0; level < kLevels; ++level) {
      const int shift = shift_for(level);
      const Tick diff = (t >> shift) - (cursor_ >> shift);
      if (diff < Tick(level_slot_count(level))) {
        const std::size_t slot = slot_index(level, t);
        key_arena_[idx].next = heads_[slot];
        heads_[slot] = idx;
        set_bit(level, t);
        return;
      }
    }
    if (overflow_.empty() || t < overflow_min_) overflow_min_ = t;
    overflow_.push_back(entry_at(idx));
    free_cell(idx);
  }

  // Level-0 slots hold a single 1-us granule: everything goes to ready,
  // where (time, seq) ordering is restored.
  template <typename Pred>
  void drain_list(std::uint32_t head, Pred pred, std::size_t* stale_dropped) {
    while (head != kNil) {
      const std::uint32_t next = key_arena_[head].next;
      const QueueEntry e = entry_at(head);
      free_cell(head);
      head = next;
      if (pred(e)) {
        ++*stale_dropped;
        --size_;
        continue;
      }
      ready_.push_back(e);
      std::push_heap(ready_.begin(), ready_.end(), QueueEntryLater{});
    }
  }

  // Coarser slots re-file into finer rings relative to the new cursor.
  // Cells are re-linked in place; place() may touch other slots, never the
  // one being cascaded (every entry's granule diff shrank below this
  // level's window).
  template <typename Pred>
  void cascade_list(std::uint32_t head, Pred pred,
                    std::size_t* stale_dropped) {
    while (head != kNil) {
      const std::uint32_t next = key_arena_[head].next;
      const QueueEntry e = entry_at(head);
      const Tick t = key_arena_[head].time;
      if (pred(e)) {
        free_cell(head);
        ++*stale_dropped;
        --size_;
      } else if (t <= cursor_) {
        free_cell(head);
        ready_.push_back(e);
        std::push_heap(ready_.begin(), ready_.end(), QueueEntryLater{});
      } else {
        place(head, t);
      }
      head = next;
    }
  }

  template <typename Pred>
  void refill_overflow(Pred pred, std::size_t* stale_dropped) {
    std::vector<QueueEntry> keep;
    keep.reserve(overflow_.size());
    overflow_min_ = std::numeric_limits<Tick>::max();
    for (const QueueEntry& e : overflow_) {
      if (pred(e)) {
        ++*stale_dropped;
        --size_;
        continue;
      }
      const Tick t = e.time.time_since_epoch().count();
      if (((t >> shift_for(kLevels - 1)) -
           (cursor_ >> shift_for(kLevels - 1))) < Tick(kLevelSlots)) {
        place(alloc_cell(e, t), t);
      } else {
        keep.push_back(e);
        overflow_min_ = std::min(overflow_min_, t);
      }
    }
    overflow_ = std::move(keep);
  }

  // The earliest occupied slot's start granule across all rings, found by
  // cyclic bitmap scan from just past the cursor's position.  Returns
  // false when every ring is empty.
  bool next_occupied(Tick* next, int* level_out) const {
    Tick best = std::numeric_limits<Tick>::max();
    int best_level = -1;
    // Level 0: scan 16 words cyclically from the cursor's bit + 1.  A bit
    // at or before the cursor's position means the next window (ring
    // wrap); entries are always within cursor + 1023, so the mapping back
    // to an absolute granule is unambiguous.
    {
      const std::size_t pos = std::size_t(cursor_) & (kL0Slots - 1);
      const std::size_t found = scan_l0(pos);
      if (found != kNoSlot) {
        const Tick window_start = cursor_ - Tick(pos);
        best = found > pos ? window_start + Tick(found)
                           : window_start + Tick(kL0Slots) + Tick(found);
        best_level = 0;
      }
    }
    for (int level = 1; level < kLevels; ++level) {
      const std::uint64_t bits = level_bits_[level - 1];
      if (bits == 0) continue;
      const int shift = shift_for(level);
      const std::size_t pos = std::size_t(cursor_ >> shift) & (kLevelSlots - 1);
      // The cursor's own slot occupied means the cursor entered the slot's
      // granule range (e.g. it landed on a finer-level event at the slot's
      // start tick): its entries must cascade NOW, before anything later.
      // A strictly-after scan would only rediscover the bit a full ring
      // revolution later and deliver those wakeups catastrophically late.
      if (bits & (std::uint64_t(1) << pos)) {
        *next = cursor_;
        *level_out = level;
        return true;
      }
      const std::size_t found = scan_word(bits, pos);
      if (found == kNoSlot) continue;
      const Tick cur_slot_start = (cursor_ >> shift) - Tick(pos);
      const Tick slot_granules = found > pos
                                     ? cur_slot_start + Tick(found)
                                     : cur_slot_start + Tick(kLevelSlots) +
                                           Tick(found);
      const Tick start = slot_granules << shift;
      if (start < best) {
        best = start;
        best_level = level;
      }
    }
    if (best_level < 0) return false;
    *next = best;
    *level_out = best_level;
    return true;
  }

  // Next set bit strictly after pos, cyclically, in the level-0 bitmap.
  // The 16-bit word-occupancy summary makes this two loads in the common
  // case instead of a 16-word sweep.
  std::size_t scan_l0(std::size_t pos) const {
    std::size_t word = (pos + 1) >> 6;
    const std::size_t bit = (pos + 1) & 63;
    if (bit != 0) {
      // Partial first word: only bits strictly after pos count.
      const std::uint64_t v = l0_bits_[word] & (~std::uint64_t(0) << bit);
      if (v != 0) return (word << 6) + std::size_t(__builtin_ctzll(v));
      ++word;
    }
    if (l0_word_mask_ == 0) return kNoSlot;
    // First non-empty word cyclically from `word`.  If the rotation wraps
    // back to pos's own word, only bits at or before pos can be set (the
    // partial scan above ruled out the rest), and those mean "next
    // window" -- exactly what the caller's wrap mapping expects.
    const std::size_t start = word & (kL0Words - 1);
    const std::uint32_t rotated =
        ((l0_word_mask_ >> start) | (l0_word_mask_ << (kL0Words - start))) &
        ((std::uint32_t(1) << kL0Words) - 1);
    const std::size_t w =
        (start + std::size_t(__builtin_ctz(rotated))) & (kL0Words - 1);
    return (w << 6) + std::size_t(__builtin_ctzll(l0_bits_[w]));
  }

  // Next set bit strictly after pos, cyclically, in a single 64-bit word.
  static std::size_t scan_word(std::uint64_t bits, std::size_t pos) {
    const std::uint64_t ahead =
        pos + 1 < 64 ? bits & (~std::uint64_t(0) << (pos + 1)) : 0;
    if (ahead != 0) return std::size_t(__builtin_ctzll(ahead));
    if (bits != 0) return std::size_t(__builtin_ctzll(bits));  // wrapped
    return kNoSlot;
  }

  std::size_t next_occupied_slot_index(std::size_t from) const {
    const std::size_t total = heads_.size();
    for (std::size_t n = 0; n < total; ++n) {
      const std::size_t idx = (from + n) % total;
      if (idx < kL0Slots) {
        if (l0_bits_[idx >> 6] == 0) {
          // Skip the rest of this empty word.
          n += 63 - (idx & 63);
          continue;
        }
        if (l0_bits_[idx >> 6] & (std::uint64_t(1) << (idx & 63))) return idx;
      } else {
        const std::size_t off = idx - kL0Slots;
        const std::uint64_t bits = level_bits_[off >> kLevelBits];
        if (bits == 0) {
          n += (kLevelSlots - 1) - (off & (kLevelSlots - 1));
          continue;
        }
        if (bits & (std::uint64_t(1) << (off & (kLevelSlots - 1)))) return idx;
      }
    }
    return kNoSlot;
  }

  // Unlinks and frees every cell in *head's list matching pred.
  template <typename Pred>
  std::size_t compact_list(std::uint32_t* head, Pred pred) {
    std::size_t dropped = 0;
    std::uint32_t* link = head;
    while (*link != kNil) {
      const std::uint32_t i = *link;
      if (pred(entry_at(i))) {
        *link = key_arena_[i].next;
        free_cell(i);
        ++dropped;
      } else {
        link = &key_arena_[i].next;
      }
    }
    return dropped;
  }

  template <typename Pred>
  std::size_t compact_overflow(Pred pred) {
    const std::size_t before = overflow_.size();
    overflow_.erase(
        std::remove_if(overflow_.begin(), overflow_.end(), pred),
        overflow_.end());
    overflow_min_ = std::numeric_limits<Tick>::max();
    for (const QueueEntry& e : overflow_) {
      overflow_min_ =
          std::min(overflow_min_, e.time.time_since_epoch().count());
    }
    return before - overflow_.size();
  }

  Tick cursor_ = 0;  // granule of the last delivery / advance (us)
  std::size_t size_ = 0;  // total entries, stale included
  std::vector<QueueEntry> ready_;  // current-instant min-heap
  std::vector<std::uint32_t> heads_;  // slot -> first cell (L0, then 1..5)
  std::vector<KeyCell> key_arena_;
  std::vector<PayCell> pay_arena_;
  std::uint32_t free_head_ = kNil;
  std::vector<std::uint64_t> l0_bits_;
  std::uint32_t l0_word_mask_ = 0;  // bit w <=> l0_bits_[w] != 0
  std::vector<std::uint64_t> level_bits_;
  std::vector<QueueEntry> overflow_;
  Tick overflow_min_ = std::numeric_limits<Tick>::max();
  std::size_t rotor_ = 0;          // incremental-compaction position
  int overflow_rotor_ = 0;
};

}  // namespace internal
}  // namespace ethergrid::sim
