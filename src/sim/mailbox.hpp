// Cross-shard mailboxes: batched, canonically ordered message delivery
// between the shards of a ShardedKernel (shard.hpp).
//
// A cross-shard "message" is a process body to run on the destination
// shard at a virtual deliver time.  Messages are NOT delivered when
// posted: each source shard appends to its own row while it runs a time
// window, and the coordinator drains every row at the window barrier,
// sorts the batch into the canonical (deliver_time, src_site, seq) order,
// and spawns the bodies on their destination kernels.  Batching amortizes
// the synchronization point (one drain per window, not one per message)
// and the canonical sort makes delivery order -- and therefore stats and
// fault audits -- independent of both thread scheduling and the number of
// shards the sites were partitioned across.
//
// Ordering key notes:
//   * deliver_time is send_time + latency with latency floored at the
//     sharded kernel's lookahead, so every message lands strictly after
//     the window it was posted in (the conservative-window guarantee).
//   * src_site is a caller-chosen stable id of the SENDING SITE (not the
//     shard index!).  Shard indices change with the partition; site ids do
//     not, which is what keeps same-instant delivery order byte-identical
//     between shards=1 and shards=N.
//   * seq is the per-source-row posting order, so two same-instant
//     messages from one site deliver in their causal posting order.
//
// Thread contract (lock-free by design, not by atomics): row i is written
// only by the worker thread that owns shard i, and only while that shard
// is inside a window; drain() runs only on the coordinator, only at a
// barrier.  The ShardedKernel's window barrier provides the
// happens-before edges, so the rows need no locks of their own.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "sim/kernel.hpp"
#include "util/time.hpp"

namespace ethergrid::sim {

struct ShardMessage {
  TimePoint deliver{};        // virtual delivery instant on the dst shard
  std::uint64_t src_site = 0; // stable sending-site id (canonical tiebreak)
  std::uint64_t seq = 0;      // posting order within the source row
  std::size_t dst_shard = 0;
  std::string name;           // process name the delivery spawn uses
  ProcessBody body;
};

class ShardMailbox {
 public:
  explicit ShardMailbox(std::size_t shards);

  // Appends to src_shard's row and stamps msg.seq.  See the thread
  // contract above: callable only from the worker that owns src_shard (or
  // the coordinator while the world is stopped).
  void post(std::size_t src_shard, ShardMessage msg);

  // Coordinator, at a barrier: moves out every posted message, sorted by
  // (deliver, src_site, seq).
  std::vector<ShardMessage> drain();

  // Coordinator only.
  bool empty() const;
  // Messages ever posted (telemetry; coordinator only).
  std::uint64_t posted_total() const { return posted_total_; }

  // Drops all pending messages (shutdown: a message for a world being torn
  // down must not run).
  void clear();

 private:
  std::vector<std::vector<ShardMessage>> rows_;  // indexed by src shard
  std::vector<std::uint64_t> next_seq_;          // per row, never reset
  std::uint64_t posted_total_ = 0;               // updated at drain()
};

}  // namespace ethergrid::sim
