#include "sim/resource.hpp"

#include <algorithm>
#include <cassert>

namespace ethergrid::sim {

Resource::Resource(Kernel& kernel, std::int64_t capacity)
    : kernel_(&kernel), capacity_(capacity), available_(capacity) {
  assert(capacity >= 0);
}

void Resource::acquire(Context& ctx, std::int64_t n) {
  assert(n >= 0 && n <= capacity_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty() && available_ >= n) {
      available_ -= n;
      return;
    }
  }
  Event event(*kernel_);
  Waiter waiter{n, false, &event};
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(&waiter);
  }
  try {
    ctx.wait(event);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (waiter.granted) {
      // Units were granted while we were being cancelled; hand them on.
      available_ += n;
      grant_locked();
    } else {
      queue_.erase(std::remove(queue_.begin(), queue_.end(), &waiter),
                   queue_.end());
    }
    throw;
  }
}

bool Resource::try_acquire(std::int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty() && available_ >= n) {
    available_ -= n;
    return true;
  }
  return false;
}

void Resource::release(std::int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  available_ += n;
  assert(available_ <= capacity_ && "released more than acquired");
  grant_locked();
}

void Resource::grant_locked() {
  while (!queue_.empty() && queue_.front()->count <= available_) {
    Waiter* waiter = queue_.front();
    queue_.pop_front();
    available_ -= waiter->count;
    waiter->granted = true;
    waiter->event->set();
  }
}

std::int64_t Resource::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return available_;
}

std::size_t Resource::queue_length() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace ethergrid::sim
