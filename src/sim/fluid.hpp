// FluidResource: a capacity-constrained resource whose concurrent flows
// share bandwidth by weighted max-min fairness (the SimGrid "surf" fluid
// model), instead of queueing binarily on a service slot.
//
// Each transfer() registers a flow {weight, rate_cap, remaining work} and
// the resource recomputes every flow's share by progressive filling:
// capacity is divided in proportion to weight, flows whose rate cap (or
// nothing else) freezes them below their proportional share are pinned
// there, and the slack is re-divided among the rest.  A flow joining or
// leaving re-shares the whole resource at that instant: flows whose rate
// changed are pulsed so they re-plan their completion wakeup on the timer
// wheel.  Between joins and leaves every flow progresses linearly, so a
// transfer is a handful of kernel events, not a per-byte loop.
//
// Determinism: all sharing state is touched only from process context under
// the kernel's serialization, flows re-share in join order, and completion
// wakeups ride the ordinary event queue -- so a fixed seed yields identical
// runs across fiber/thread backends, both queue impls, and any shard count
// (a FluidResource belongs to one shard's kernel; cross-shard transfers
// ride the mailbox contract like any other cross-shard work).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/kernel.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace ethergrid::sim {

struct FluidFlowOptions {
  // Max-min weight: a flow's proportional claim on the capacity.
  double weight = 1.0;
  // Upper bound on this flow's rate (units/second); reservations pin their
  // granted rate here.  Unbounded by default.
  double rate_cap = std::numeric_limits<double>::infinity();
};

class FluidResource {
 public:
  // `capacity` is in work units per second (bytes/s for network media).
  FluidResource(Kernel& kernel, double capacity);
  FluidResource(const FluidResource&) = delete;
  FluidResource& operator=(const FluidResource&) = delete;
  ~FluidResource();

  // Moves `work` units through the resource at this flow's fair share,
  // blocking in virtual time until the last unit lands.  Deadline- and
  // kill-aware: an unwound flow leaves immediately and the survivors
  // re-share at that instant (the "broken connection frees the medium"
  // property the paper's substrates rely on).
  Status transfer(Context& ctx, double work, FluidFlowOptions options = {});

  double capacity() const { return capacity_; }
  std::size_t active_flows() const { return flows_.size(); }

  // Rate a hypothetical new flow of `weight` would be assigned right now --
  // the fluid analogue of carrier sense (share below threshold == busy).
  double instantaneous_share(double weight = 1.0) const;

  // Sum of the rates currently assigned (<= capacity).
  double allocated_rate() const;

  // Called after every re-share with (now, active flows, unit-weight
  // share); the grid substrate bridges this to flow_share observer events.
  using ShareListener = std::function<void(TimePoint, std::size_t, double)>;
  void set_share_listener(ShareListener listener);

  // Telemetry.
  std::int64_t transfers_completed() const { return completed_; }
  std::int64_t transfers_aborted() const { return aborted_; }
  double units_moved() const { return units_moved_; }
  std::uint64_t reshares() const { return reshares_; }

 private:
  struct Flow {
    double weight = 1.0;
    double rate_cap = std::numeric_limits<double>::infinity();
    double remaining = 0;   // work units still to move
    double rate = 0;        // currently assigned share (units/s)
    TimePoint settled{};    // instant `remaining` was last brought current
    Event* change = nullptr;  // pulsed when `rate` changes under the flow
  };

  // Brings flow.remaining current to `now` at the flow's present rate.
  static void settle(Flow& flow, TimePoint now);

  // Recomputes every flow's share (weighted max-min progressive filling),
  // settling each flow at `now` first; pulses flows whose rate changed,
  // except `skip` (the flow performing the join/leave, which re-plans
  // inline).  Runs in process context only.
  void reshare(TimePoint now, Flow* skip);

  Kernel* kernel_;
  const double capacity_;
  std::vector<Flow*> flows_;  // join order; no ownership (stack frames)
  ShareListener listener_;
  std::int64_t completed_ = 0;
  std::int64_t aborted_ = 0;
  double units_moved_ = 0;
  std::uint64_t reshares_ = 0;
};

}  // namespace ethergrid::sim
