#include "sim/fault_plan.hpp"

#include <cstdlib>

#include "util/strings.hpp"

namespace ethergrid::sim {

std::string_view fault_kind_name(FaultSpec::Kind kind) {
  switch (kind) {
    case FaultSpec::Kind::kError:
      return "fail";
    case FaultSpec::Kind::kStall:
      return "stall";
    case FaultSpec::Kind::kReset:
      return "reset";
    case FaultSpec::Kind::kCrash:
      return "crash";
    case FaultSpec::Kind::kPartition:
      return "drop";
  }
  return "?";
}

std::string FaultSpec::describe() const {
  switch (kind) {
    case Kind::kError:
      return strprintf("fail@%g", probability);
    case Kind::kStall:
      return strprintf("stall@%g,%g", probability, to_seconds(stall));
    case Kind::kReset:
      return strprintf("reset@%g,%g-%g", probability, fraction_min,
                       fraction_max);
    case Kind::kCrash:
      return strprintf("crash@%g", to_seconds(at));
    case Kind::kPartition:
      return strprintf("drop@%g-%g", to_seconds(window_start),
                       to_seconds(window_end));
  }
  return "?";
}

FaultPlan& FaultPlan::add(std::string site_pattern, FaultSpec spec) {
  rules_.push_back(FaultRule{std::move(site_pattern), spec});
  return *this;
}

FaultSpec FaultPlan::error(double probability, StatusCode code) {
  FaultSpec s;
  s.kind = FaultSpec::Kind::kError;
  s.probability = probability;
  s.code = code;
  return s;
}

FaultSpec FaultPlan::stall(double probability, Duration d) {
  FaultSpec s;
  s.kind = FaultSpec::Kind::kStall;
  s.probability = probability;
  s.stall = d;
  return s;
}

FaultSpec FaultPlan::reset(double probability, double fraction_min,
                           double fraction_max) {
  FaultSpec s;
  s.kind = FaultSpec::Kind::kReset;
  s.probability = probability;
  s.fraction_min = fraction_min;
  s.fraction_max = fraction_max;
  return s;
}

FaultSpec FaultPlan::crash_at(TimePoint t) {
  FaultSpec s;
  s.kind = FaultSpec::Kind::kCrash;
  s.at = t;
  return s;
}

FaultSpec FaultPlan::partition(TimePoint from, TimePoint to) {
  FaultSpec s;
  s.kind = FaultSpec::Kind::kPartition;
  s.window_start = from;
  s.window_end = to;
  return s;
}

namespace {

// Splits on a delimiter, keeping empty pieces out.
std::vector<std::string> split_nonempty(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(delim, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool parse_number(std::string_view text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const std::string copy(text);
  *out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

// "A-B" => two numbers.
bool parse_range(std::string_view text, double* a, double* b) {
  const std::size_t dash = text.find('-');
  if (dash == std::string_view::npos) return false;
  return parse_number(text.substr(0, dash), a) &&
         parse_number(text.substr(dash + 1), b) && *a <= *b;
}

Status bad_rule(std::string_view rule, const char* why) {
  return Status::invalid_argument(strprintf("fault rule '%.*s': %s",
                                            int(rule.size()), rule.data(),
                                            why));
}

Status parse_rule(std::string_view rule, FaultPlan* plan) {
  const std::size_t colon = rule.rfind(':');
  if (colon == std::string_view::npos || colon == 0) {
    return bad_rule(rule, "expected '<site>:<kind>@<args>'");
  }
  const std::string site(rule.substr(0, colon));
  std::string_view fault = rule.substr(colon + 1);
  const std::size_t at = fault.find('@');
  if (at == std::string_view::npos) {
    return bad_rule(rule, "expected '<kind>@<args>'");
  }
  const std::string_view kind = fault.substr(0, at);
  const std::string_view args = fault.substr(at + 1);

  if (kind == "fail") {
    double p;
    if (!parse_number(args, &p)) return bad_rule(rule, "fail needs '@P'");
    plan->add(site, FaultPlan::error(p));
  } else if (kind == "stall") {
    const std::size_t comma = args.find(',');
    double p, seconds;
    if (comma == std::string_view::npos ||
        !parse_number(args.substr(0, comma), &p) ||
        !parse_number(args.substr(comma + 1), &seconds)) {
      return bad_rule(rule, "stall needs '@P,SECONDS'");
    }
    plan->add(site, FaultPlan::stall(p, sec(seconds)));
  } else if (kind == "reset") {
    const std::size_t comma = args.find(',');
    double p;
    if (!parse_number(args.substr(0, comma), &p)) {
      return bad_rule(rule, "reset needs '@P[,F1-F2]'");
    }
    double f1 = 0.05, f2 = 0.95;
    if (comma != std::string_view::npos &&
        !parse_range(args.substr(comma + 1), &f1, &f2)) {
      return bad_rule(rule, "reset fraction range must be 'F1-F2'");
    }
    plan->add(site, FaultPlan::reset(p, f1, f2));
  } else if (kind == "crash") {
    double t;
    if (!parse_number(args, &t)) return bad_rule(rule, "crash needs '@T'");
    plan->add(site, FaultPlan::crash_at(kEpoch + sec(t)));
  } else if (kind == "drop") {
    double t1, t2;
    if (!parse_range(args, &t1, &t2)) {
      return bad_rule(rule, "drop needs '@T1-T2'");
    }
    plan->add(site, FaultPlan::partition(kEpoch + sec(t1), kEpoch + sec(t2)));
  } else {
    return bad_rule(rule, "unknown fault kind");
  }
  return Status::success();
}

}  // namespace

Status FaultPlan::parse(std::string_view spec, FaultPlan* out) {
  FaultPlan plan;
  for (const std::string& rule : split_nonempty(spec, ';')) {
    Status s = parse_rule(rule, &plan);
    if (s.failed()) return s;
  }
  *out = std::move(plan);
  return Status::success();
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const FaultRule& rule : rules_) {
    out += rule.site_pattern;
    out += ':';
    out += rule.spec.describe();
    out += '\n';
  }
  return out;
}

bool site_matches(std::string_view pattern, std::string_view site) {
  // Iterative glob over '*' only: after each star, greedily try every
  // suffix position (classic two-pointer backtracking).
  std::size_t p = 0, s = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (s < site.size()) {
    if (p < pattern.size() &&
        (pattern[p] == site[s])) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = s;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace ethergrid::sim
