// Counting resource with FIFO-fair blocking acquisition.
//
// Models anything countable in the simulated grid: server service slots,
// schedd worker capacity, network channels.  Unlike FdTable (which clients
// may only *observe* -- the whole point of the paper is that such resources
// are unmanaged), Resource queues waiters and grants in order.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "sim/kernel.hpp"

namespace ethergrid::sim {

class Resource {
 public:
  // capacity: total units; all initially available.
  Resource(Kernel& kernel, std::int64_t capacity);

  // Blocks (FIFO) until n units are available, then takes them.
  // Deadline/kill aware via the waiting process's Context.
  void acquire(Context& ctx, std::int64_t n = 1);

  // Non-blocking; returns false (and takes nothing) if fewer than n free.
  bool try_acquire(std::int64_t n = 1);

  // Returns n units and grants queued waiters in order.  It is the caller's
  // bug to release more than it acquired; available() never exceeds
  // capacity() (checked).
  void release(std::int64_t n = 1);

  std::int64_t capacity() const { return capacity_; }
  std::int64_t available() const;
  std::int64_t in_use() const { return capacity_ - available(); }
  std::size_t queue_length() const;

 private:
  // Lives on the acquiring process's stack for the duration of acquire():
  // the owner cannot leave that frame while queued (it is blocked in
  // ctx.wait, and every unwind path dequeues it), so blocking acquisition
  // allocates nothing.
  struct Waiter {
    std::int64_t count;
    bool granted = false;
    Event* event;
  };

  // Grants from the queue head while units suffice.
  void grant_locked();

  Kernel* kernel_;
  const std::int64_t capacity_;
  std::int64_t available_;
  std::deque<Waiter*> queue_;
  mutable std::mutex mu_;  // protects available_ and queue_
};

// RAII guard for Resource units.
class ResourceLease {
 public:
  ResourceLease(Context& ctx, Resource& resource, std::int64_t n = 1)
      : resource_(&resource), count_(n) {
    resource.acquire(ctx, n);
  }
  ~ResourceLease() { release(); }
  ResourceLease(const ResourceLease&) = delete;
  ResourceLease& operator=(const ResourceLease&) = delete;

  // Early release; idempotent.
  void release() {
    if (resource_) {
      resource_->release(count_);
      resource_ = nullptr;
    }
  }

 private:
  Resource* resource_;
  std::int64_t count_;
};

}  // namespace ethergrid::sim
