#include "sim/event_queue.hpp"

#include <cstdlib>
#include <cstring>

namespace ethergrid::sim {

const char* queue_impl_name(QueueImpl impl) {
  return impl == QueueImpl::kWheel ? "wheel" : "heap";
}

QueueImpl default_queue_impl() {
  if (const char* env = std::getenv("ETHERGRID_SIM_QUEUE")) {
    if (std::strcmp(env, "heap") == 0) return QueueImpl::kHeap;
    if (std::strcmp(env, "wheel") == 0) return QueueImpl::kWheel;
  }
#ifdef ETHERGRID_HEAP_QUEUE_DEFAULT
  return QueueImpl::kHeap;
#else
  return QueueImpl::kWheel;
#endif
}

}  // namespace ethergrid::sim
