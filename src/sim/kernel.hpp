// Discrete-event simulation kernel with cooperative, thread-backed processes.
//
// Why threads: the ftsh interpreter and the grid substrates are written as
// ordinary blocking code.  Each sim::Process runs its body on a dedicated
// std::thread, but the Kernel hands a single baton so that exactly one
// process (or the kernel itself) executes at any instant.  The result is a
// fully deterministic simulation -- same seed, same event order, same
// results -- with user code that reads like straight-line POSIX code.
//
// Time is virtual: it advances only when the kernel pops the next event.
// All waiting flows through Context primitives (sleep / wait / join /
// resource acquire), which is what makes the paper's "forcible termination"
// semantics exact: a deadline or kill wakes the process inside the
// primitive, which unwinds the stack with DeadlineExceeded or Interrupted.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace ethergrid::sim {

class Kernel;
class Process;
class Context;
class Event;

using ProcessHandle = std::shared_ptr<Process>;
using ProcessBody = std::function<void(Context&)>;

// Thrown inside a process when it has been killed.  Must be allowed to
// propagate out of the process body; the kernel absorbs it.  Primitives
// re-throw it on every subsequent wait, so swallowing it only delays death.
struct Interrupted {
  std::string reason;
};

// Thrown inside a process when a pushed deadline expires during (or is
// already expired at entry to) a wait primitive.  `token` identifies the
// *outermost* expired deadline so nested try-scopes can tell whose timeout
// fired: a scope catching a token that is not its own must rethrow.
struct DeadlineExceeded {
  std::uint64_t token;
  TimePoint deadline;
};

// Infinite deadline sentinel.
inline constexpr TimePoint kNoDeadline = TimePoint::max();

namespace internal {

// One pending wakeup.  Entries are never removed from the queue on
// cancellation; instead each process carries a wake token and stale entries
// (token mismatch) are skipped on pop.
struct QueueEntry {
  TimePoint time;
  std::uint64_t seq;  // FIFO tie-break at equal times => determinism
  Process* process;
  std::uint64_t token;
};

struct QueueEntryLater {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace internal

// A simulated process.  Created via Kernel::spawn / Context::spawn.  The
// handle outlives completion so results remain readable.
class Process : public std::enable_shared_from_this<Process> {
 public:
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }

  bool finished() const;

  // How the body ended: ok() for normal return, kKilled for interruption,
  // kFailure carrying the what() of an escaped exception.
  Status result() const;

 private:
  friend class Kernel;
  friend class Context;
  friend class Event;

  Process(Kernel* kernel, std::uint64_t id, std::string name,
          ProcessBody body);

  enum class State { kNew, kBlocked, kRunning, kFinished };

  void thread_main();

  Kernel* kernel_;
  const std::uint64_t id_;
  const std::string name_;
  ProcessBody body_;

  // All fields below are guarded by the kernel mutex.
  State state_ = State::kNew;
  bool killed_ = false;
  std::string kill_reason_;
  std::uint64_t wake_token_ = 0;
  std::vector<std::pair<std::uint64_t, TimePoint>> deadlines_;  // token, when
  Status result_;
  std::unique_ptr<Event> done_;  // set when the body finishes
  Rng rng_;
  std::condition_variable cv_;
  std::thread thread_;
};

// A broadcast condition: processes wait, someone sets.  Once set it stays
// set (wait returns immediately) until reset().
class Event {
 public:
  explicit Event(Kernel& kernel) : kernel_(&kernel) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  // Destroying an Event with processes still blocked on it flags their wait
  // records so their eventual cleanup (on kill or deadline) does not touch
  // the dead Event.  This is a safety net -- prefer Kernel::shutdown()
  // before tearing down objects that processes wait on.
  ~Event();

  // Wakes all current waiters and latches.
  void set();
  // Unlatches; future waits block again.
  void reset();
  // Wakes all current waiters without latching.
  void pulse();

  bool is_set() const;

  // Internal wait registration record; public only so that Context's
  // out-of-line helpers can name the type.
  struct Waiter {
    Process* process;
    bool granted = false;
    bool event_destroyed = false;  // see ~Event()
  };

 private:
  friend class Context;
  friend class Process;

  void set_locked();
  void pulse_locked();

  Kernel* kernel_;
  bool set_ = false;                // guarded by kernel mutex
  std::vector<Waiter*> waiters_;    // guarded by kernel mutex
};

// RAII deadline scope; see Context::push_deadline.
class DeadlineScope {
 public:
  DeadlineScope(Context& ctx, TimePoint deadline);
  ~DeadlineScope();
  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

  std::uint64_t token() const { return token_; }

 private:
  Context& ctx_;
  std::uint64_t token_;
};

// The face of the kernel inside a process body.  One Context per process,
// valid for the lifetime of the body invocation.
class Context {
 public:
  TimePoint now() const;

  // Blocks for d of virtual time.  Throws Interrupted if killed, or
  // DeadlineExceeded if an enclosing deadline would expire strictly before
  // the sleep completes (the process wakes exactly at the deadline).
  void sleep(Duration d);

  // Yields to other events scheduled at the current instant.
  void yield() { sleep(Duration(0)); }

  // Blocks until e is set.  Deadline- and kill-aware like sleep.
  void wait(Event& e);

  // Like wait but bounded: returns true if the event fired, false if the
  // local timeout elapsed first.  An enclosing *deadline* still throws.
  bool wait_for(Event& e, Duration timeout);

  // Deadline stack.  A wait primitive that would cross the earliest pushed
  // deadline wakes exactly at it and throws DeadlineExceeded carrying the
  // token of the outermost expired deadline.  Prefer DeadlineScope.
  std::uint64_t push_deadline(TimePoint deadline);
  void pop_deadline();

  // Earliest deadline on the stack, or kNoDeadline.
  TimePoint earliest_deadline() const;

  // Throws immediately if killed or if a pushed deadline has already
  // expired.  Wait primitives call this on entry; long CPU-only loops in
  // user code may call it to stay responsive to cancellation.
  void check();

  // Spawns a sibling process starting at the current instant.
  ProcessHandle spawn(std::string name, ProcessBody body);

  // Blocks until p finishes (deadline/kill aware).  Immediate if finished.
  void join(Process& p);
  void join(const ProcessHandle& p) { join(*p); }

  // Requests termination of p.  If p is blocked it wakes and unwinds now;
  // if p is running it unwinds at its next wait.  Safe on self.
  void kill(Process& p, std::string reason = "killed");
  void kill(const ProcessHandle& p, std::string reason = "killed") {
    kill(*p, std::move(reason));
  }

  Kernel& kernel() { return *kernel_; }
  Process& process() { return *process_; }

  // This process's private deterministic RNG stream.
  Rng& rng();

  void log(LogLevel level, std::string message);

 private:
  friend class Kernel;
  friend class Process;
  Context(Kernel* kernel, Process* process)
      : kernel_(kernel), process_(process) {}

  Kernel* kernel_;
  Process* process_;
};

// The simulation kernel: virtual clock + event queue + process scheduler.
// Not reentrant: run()/run_until() must be called from outside any process
// (normally the test or bench main thread).
//
// LIFETIME RULE: everything a process touches (Events, Resources, grid
// substrates, stats sinks) must stay alive until that process finishes.
// When abandoning a simulation with processes still live (e.g. after
// run_until of a measurement window), call shutdown() BEFORE destroying
// those objects; the Kernel's own destructor runs it too, but by then
// objects declared after the Kernel are already gone.
class Kernel {
 public:
  explicit Kernel(std::uint64_t seed = 1);
  ~Kernel();

  // Kills every live process, drains their unwinding, and joins all
  // threads.  After shutdown the kernel accepts no further work (spawns
  // create already-killed processes).  Idempotent.
  void shutdown();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  TimePoint now() const;

  ProcessHandle spawn(std::string name, ProcessBody body);

  void kill(Process& p, std::string reason = "killed");

  // Runs until the event queue is empty (all processes finished or blocked
  // with no pending wakeups).
  void run();

  // Processes every event at time <= t, then advances the clock to t.
  // Returns true if events remain in the queue.
  bool run_until(TimePoint t);
  bool run_for(Duration d) { return run_until(now() + d); }

  // Number of processes that have not finished.
  std::size_t live_process_count() const;

  // Root RNG for the experiment; derive per-entity streams from it.
  Rng& rng() { return rng_; }

  Logger& logger() { return logger_; }

  // When true (default), an exception escaping a process body -- other than
  // Interrupted -- is rethrown out of run()/run_until().  The process's
  // result() records it either way.
  void set_propagate_errors(bool on) { propagate_errors_ = on; }

 private:
  friend class Process;
  friend class Context;
  friend class Event;

  // --- All methods below require mu_ held. ---

  void schedule_locked(TimePoint t, Process* p);

  // Hands the baton to p and blocks until it yields back or finishes.
  void resume_locked(std::unique_lock<std::mutex>& lock, Process* p);

  // Called from a process thread: gives the baton back and blocks until
  // resumed.  Returns with the lock held.
  void yield_from_process_locked(std::unique_lock<std::mutex>& lock,
                                 Process* p);

  // Kill, assuming mu_ held.
  void kill_locked(Process& p, std::string reason);

  // Pops entries until a valid one at time <= limit; nullptr when none.
  Process* pop_runnable_locked(TimePoint limit);

  void drain_locked(std::unique_lock<std::mutex>& lock, TimePoint limit);

  mutable std::mutex mu_;
  std::condition_variable kernel_cv_;
  Process* current_ = nullptr;  // whose turn it is; nullptr => kernel's

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_process_id_ = 1;
  std::priority_queue<internal::QueueEntry, std::vector<internal::QueueEntry>,
                      internal::QueueEntryLater>
      queue_;
  std::vector<ProcessHandle> processes_;
  std::size_t live_processes_ = 0;
  bool shutting_down_ = false;
  bool propagate_errors_ = true;
  std::exception_ptr pending_error_;

  Rng rng_;
  Logger logger_;
};

}  // namespace ethergrid::sim
