// Discrete-event simulation kernel with cooperative processes.
//
// Two execution backends share one scheduler, one event queue, and one
// determinism contract:
//
//  * Backend::kFiber (default): each sim::Process runs on a stackful fiber
//    with an mmap'd, guard-paged stack.  The fiber is created once with
//    makecontext/swapcontext; every switch after that is a syscall-free
//    sigsetjmp/siglongjmp pair (glibc swapcontext does a sigprocmask
//    syscall per switch; QEMU's coroutines use the same trick).  Every
//    virtual-time event is two such switches on the scheduler's own OS
//    thread -- no futex, no kernel scheduler round trip -- which is what
//    makes 5,000-50,000 simulated clients per run affordable.
//  * Backend::kThread: each process runs its body on a dedicated std::thread
//    and the kernel hands a baton through a mutex + condvar.  Slower by
//    orders of magnitude, but ThreadSanitizer can follow it (TSan cannot
//    follow fibers), so TSan builds force this backend.
//
// Both backends run user code written as ordinary blocking C++: exactly one
// process (or the kernel itself) executes at any instant.  The result is a
// fully deterministic simulation -- same seed, same event order, same
// results, byte-for-byte identical across backends.
//
// Time is virtual: it advances only when the kernel pops the next event.
// All waiting flows through Context primitives (sleep / wait / join /
// resource acquire), which is what makes the paper's "forcible termination"
// semantics exact: a deadline or kill wakes the process inside the
// primitive, which unwinds the stack with DeadlineExceeded or Interrupted.
#pragma once

#include <setjmp.h>
#include <ucontext.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mc/strategy.hpp"
#include "sim/event_queue.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

// Queue-accounting audits run whenever assertions are on, and can be forced
// into release builds (the stress probes do) by defining
// ETHERGRID_QUEUE_AUDIT.  Evaluated here so the inline hot paths below can
// compile the audit hook away entirely.
#if !defined(NDEBUG) || defined(ETHERGRID_QUEUE_AUDIT)
#define ETHERGRID_QUEUE_AUDIT_ON 1
#endif

namespace ethergrid::sim {

class Kernel;
class Process;
class Context;
class Event;

using ProcessHandle = std::shared_ptr<Process>;
using ProcessBody = std::function<void(Context&)>;

// Thrown inside a process when it has been killed.  Must be allowed to
// propagate out of the process body; the kernel absorbs it.  Primitives
// re-throw it on every subsequent wait, so swallowing it only delays death.
struct Interrupted {
  std::string reason;
};

// Thrown inside a process when a pushed deadline expires during (or is
// already expired at entry to) a wait primitive.  `token` identifies the
// *outermost* expired deadline so nested try-scopes can tell whose timeout
// fired: a scope catching a token that is not its own must rethrow.
struct DeadlineExceeded {
  std::uint64_t token;
  TimePoint deadline;
};

// Infinite deadline sentinel.
inline constexpr TimePoint kNoDeadline = TimePoint::max();

// How simulated processes execute.  See the file comment; kThread exists
// for TSan and as a differential-testing oracle for the fiber backend
// (tests/sim/backend_equivalence_test.cpp).
enum class Backend { kFiber, kThread };

const char* backend_name(Backend backend);

// The ambient default: kFiber, unless the build is under ThreadSanitizer
// (forced kThread), the ETHERGRID_SIM_BACKEND environment variable says
// otherwise ("fiber" / "thread"), or CMake was configured with
// -DETHERGRID_THREAD_BACKEND_DEFAULT=ON.
Backend default_backend();

struct KernelOptions {
  Backend backend = default_backend();
  // Event-queue implementation (see event_queue.hpp): kWheel unless the
  // ETHERGRID_SIM_QUEUE environment variable says otherwise.  kHeap is the
  // differential-testing oracle (tests/sim/queue_oracle_test.cpp).
  QueueImpl queue = default_queue_impl();
  // Usable fiber stack bytes (excludes the guard page).  0 means the
  // default: ETHERGRID_SIM_STACK_KB if set, else 256 KiB (1 MiB under
  // AddressSanitizer, whose redzones inflate frames).  Rounded up to the
  // page size.  Ignored by the thread backend.
  std::size_t fiber_stack_bytes = 0;
  // Model-checker self-test ONLY: reintroduces the pre-PR-6 stale-accounting
  // underflow by making kill skip the invalidate step (the token still
  // bumps, so entries go stale without being counted).  The queue-accounting
  // invariant must then observe the drift -- tests/mc uses this to prove the
  // checker catches a real, historical bug.  Also suppresses the debug
  // audit's abort (the drift is the point) and the underflow asserts.
  bool debug_kill_skips_invalidate = false;
  // When > 0, fiber stacks are carved out of shared slab mappings of this
  // many stacks each, WITHOUT per-stack guard pages.  A guard-paged stack
  // costs two VMAs (the PROT_NONE hole splits the mapping), so vm.max_map_count
  // (typically 65530) caps concurrent fibers near 32k; slab mode costs one
  // VMA per `fiber_stack_slab` stacks and reaches 10^5-10^6 concurrent
  // processes.  Trade-off: a stack overflow corrupts the neighboring stack
  // instead of faulting -- use for mega-scale benches, not debugging.
  // Slabs live until kernel destruction (stacks recycle within the kernel
  // but are not returned to the process-wide cache).  Ignored by the thread
  // backend.
  std::size_t fiber_stack_slab = 0;
};

namespace internal {

// QueueEntry / QueueEntryLater and the queue implementations themselves
// live in event_queue.hpp.  Entries are not removed from the queue on
// cancellation; instead each process carries a wake token and stale entries
// (token mismatch) are skipped on pop.  The kernel counts how many entries
// can no longer fire and compacts when they outnumber live ones, so long
// runs with heavy wait_for timeout churn stay O(live) in memory.

// A recyclable fiber stack: one mmap'd region, PROT_NONE guard page at the
// low end (stacks grow down), usable pages above it.
struct FiberStack {
  void* map_base = nullptr;
  std::size_t map_size = 0;
  void* usable_lo = nullptr;   // first byte above the guard page
  std::size_t usable_size = 0;
};

// The kernel whose mutex this thread holds for the duration of an active
// fiber-backend drain (full-hold locking, see Kernel::lock_self), or
// nullptr.  GNU __thread rather than C++ thread_local: the constant
// initializer guarantees no dynamic-init wrapper, so the hot-path read in
// lock_self compiles to a single %fs-relative load.
extern __thread const Kernel* tls_mu_holder;

}  // namespace internal

// A simulated process.  Created via Kernel::spawn / Context::spawn.  The
// handle outlives completion so results remain readable.
class Process : public std::enable_shared_from_this<Process> {
 public:
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }

  bool finished() const;

  // How the body ended: ok() for normal return, kKilled for interruption,
  // kFailure carrying the what() of an escaped exception.
  Status result() const;

 private:
  friend class Kernel;
  friend class Context;
  friend class Event;

  Process(Kernel* kernel, std::uint64_t id, std::string name,
          ProcessBody body);

  enum class State { kNew, kBlocked, kRunning, kFinished };

  // Thread-backend body driver.
  void thread_main();
  // Fiber-backend body driver; parks at creation, runs the body on first
  // resume, never returns (final siglongjmp back to the scheduler).  The
  // trampoline reassembles the Process* makecontext split into two ints.
  static void fiber_trampoline(unsigned int hi, unsigned int lo);
  void fiber_main();
  // Shared core of the two drivers: runs the body (unless killed at birth)
  // and records the result.  Expects `lock` held; returns with it held.
  void run_body_locked(std::unique_lock<std::mutex>& lock);

  Kernel* kernel_;
  const std::uint64_t id_;
  const std::string name_;
  ProcessBody body_;

  // All fields below are guarded by the kernel mutex (the fiber fields are
  // in practice single-threaded, but the thread backend shares the struct).
  State state_ = State::kNew;
  bool killed_ = false;
  std::string kill_reason_;
  std::uint64_t wake_token_ = 0;
  std::uint64_t live_wakeups_ = 0;  // queue entries carrying wake_token_
  std::vector<std::pair<std::uint64_t, TimePoint>> deadlines_;  // token, when
  Status result_;
  std::unique_ptr<Event> done_;  // set when the body finishes
  Context* context_ = nullptr;   // valid while the body runs
  Rng rng_;

  // Thread backend only.
  std::condition_variable cv_;
  std::thread thread_;

  // Fiber backend only.  fiber_context_ is used once, to bootstrap the
  // fiber onto its stack; all steady-state switching goes through fiber_jb_.
  ucontext_t fiber_context_;
  sigjmp_buf fiber_jb_;
  internal::FiberStack stack_;
  void* asan_fake_stack_ = nullptr;  // this fiber's ASan fake-stack handle
};

// A broadcast condition: processes wait, someone sets.  Once set it stays
// set (wait returns immediately) until reset().
class Event {
 public:
  explicit Event(Kernel& kernel) : kernel_(&kernel) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  // Destroying an Event with processes still blocked on it unlinks their
  // wait records so their eventual cleanup (on kill or deadline) does not
  // touch the dead Event.  This is a safety net -- prefer Kernel::shutdown()
  // before tearing down objects that processes wait on.
  ~Event();

  // Wakes all current waiters and latches.
  void set();
  // Unlatches; future waits block again.
  void reset();
  // Wakes all current waiters without latching.
  void pulse();

  bool is_set() const;

  // Internal wait registration record; public only so that Context's
  // out-of-line helpers can name the type.  Lives on the waiting process's
  // stack and links into the Event's intrusive FIFO list -- registering a
  // waiter never allocates, which keeps the kernel's resume path
  // allocation-free.
  struct Waiter {
    Process* process = nullptr;
    bool granted = false;
    bool linked = false;  // still on the event's list (safe to unlink)
    Waiter* prev = nullptr;
    Waiter* next = nullptr;
  };

 private:
  friend class Context;
  friend class Process;

  void set_locked();
  void pulse_locked();
  void link_locked(Waiter* w);
  void unlink_locked(Waiter* w);

  Kernel* kernel_;
  bool set_ = false;            // guarded by kernel mutex
  Waiter* head_ = nullptr;      // guarded by kernel mutex; FIFO order
  Waiter* tail_ = nullptr;
};

// RAII deadline scope; see Context::push_deadline.
class DeadlineScope {
 public:
  DeadlineScope(Context& ctx, TimePoint deadline);
  ~DeadlineScope();
  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

  std::uint64_t token() const { return token_; }

 private:
  Context& ctx_;
  std::uint64_t token_;
};

// The face of the kernel inside a process body.  One Context per process,
// valid for the lifetime of the body invocation.
class Context {
 public:
  TimePoint now() const;

  // Blocks for d of virtual time.  Throws Interrupted if killed, or
  // DeadlineExceeded if an enclosing deadline would expire strictly before
  // the sleep completes (the process wakes exactly at the deadline).
  void sleep(Duration d);

  // Yields to other events scheduled at the current instant.
  void yield() { sleep(Duration(0)); }

  // Blocks until e is set.  Deadline- and kill-aware like sleep.
  void wait(Event& e);

  // Like wait but bounded: returns true if the event fired, false if the
  // local timeout elapsed first.  An enclosing *deadline* still throws.
  bool wait_for(Event& e, Duration timeout);

  // Deadline stack.  A wait primitive that would cross the earliest pushed
  // deadline wakes exactly at it and throws DeadlineExceeded carrying the
  // token of the outermost expired deadline.  Prefer DeadlineScope.
  std::uint64_t push_deadline(TimePoint deadline);
  void pop_deadline();

  // Earliest deadline on the stack, or kNoDeadline.
  TimePoint earliest_deadline() const;

  // Throws immediately if killed or if a pushed deadline has already
  // expired.  Wait primitives call this on entry; long CPU-only loops in
  // user code may call it to stay responsive to cancellation.
  void check();

  // Spawns a sibling process starting at the current instant.
  ProcessHandle spawn(std::string name, ProcessBody body);

  // Blocks until p finishes (deadline/kill aware).  Immediate if finished.
  void join(Process& p);
  void join(const ProcessHandle& p) { join(*p); }

  // Requests termination of p.  If p is blocked it wakes and unwinds now;
  // if p is running it unwinds at its next wait.  Safe on self.
  void kill(Process& p, std::string reason = "killed");
  void kill(const ProcessHandle& p, std::string reason = "killed") {
    kill(*p, std::move(reason));
  }

  Kernel& kernel() { return *kernel_; }
  Process& process() { return *process_; }

  // This process's private deterministic RNG stream.
  Rng& rng();

  void log(LogLevel level, std::string message);

 private:
  friend class Kernel;
  friend class Process;
  Context(Kernel* kernel, Process* process)
      : kernel_(kernel), process_(process) {}

  Kernel* kernel_;
  Process* process_;
};

// The simulation kernel: virtual clock + event queue + process scheduler.
// Not reentrant: run()/run_until() must be called from outside any process
// (normally the test or bench main thread).
//
// LIFETIME RULE: everything a process touches (Events, Resources, grid
// substrates, stats sinks) must stay alive until that process finishes.
// When abandoning a simulation with processes still live (e.g. after
// run_until of a measurement window), call shutdown() BEFORE destroying
// those objects; the Kernel's own destructor runs it too, but by then
// objects declared after the Kernel are already gone.
class Kernel {
 public:
  explicit Kernel(std::uint64_t seed = 1, KernelOptions options = {});
  ~Kernel();

  // Kills every live process, drains their unwinding, and reclaims their
  // threads or fiber stacks.  After shutdown the kernel accepts no further
  // work (spawns create already-killed processes).  Idempotent.
  void shutdown();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  Backend backend() const { return backend_; }
  QueueImpl queue_impl() const { return queue_impl_; }

  TimePoint now() const;

  ProcessHandle spawn(std::string name, ProcessBody body);

  void kill(Process& p, std::string reason = "killed");

  // Runs until the event queue is empty (all processes finished or blocked
  // with no pending wakeups).
  void run();

  // Processes every event at time <= t, then advances the clock to t.
  // Returns true if events remain in the queue.
  bool run_until(TimePoint t);
  bool run_for(Duration d) { return run_until(now() + d); }

  // Number of processes that have not finished.
  std::size_t live_process_count() const;

  // Names of processes that have not finished, as "name#id" (the same labels
  // the mc::Strategy seam surfaces).  Diagnostic: deadlock reports.
  std::vector<std::string> live_process_names() const;

  // Installs (or, with nullptr, removes) the model-checking decision source.
  // While installed, same-instant scheduling goes through strategy->choose()
  // and every delivered wakeup calls strategy->on_transition().  The
  // strategy must outlive the kernel or be removed first; removal also
  // clears a pending on_transition()==false halt so shutdown can drain.
  void set_strategy(mc::Strategy* strategy);
  mc::Strategy* strategy() const;

  // Exact, unsampled recount of the lazy-cancellation bookkeeping:
  // stale_wakeups_ must equal the number of queue entries that can no longer
  // fire and each process's live_wakeups_ its token-matching entries.
  // Returns failure (with a diagnostic message) instead of aborting, so the
  // model checker and the chaos tests can assert the same check the debug
  // audit enforces.  O(queue depth + processes); safe from any thread and
  // from invariant callbacks during a drain.
  Status verify_queue_accounting() const;

  // Order-insensitive FNV-style hash of the kernel-visible state: virtual
  // time, per-process (id, state, killed) and pending live wakeups
  // (time, process).  Sequence numbers are deliberately excluded -- two
  // interleavings that converge to the same logical state hash equal even
  // though their seq counters differ.  Used by the model checker to prune
  // revisited states; collisions only cost soundness of the *pruning*, so
  // exhaustive runs disable it.
  std::uint64_t state_digest() const;

  // Pending wakeup entries, stale ones included (observability: the stale
  // compaction regression test and bench reporting read this).
  std::size_t queue_depth() const;

  // Exact earliest time at which a pending LIVE wakeup can fire, or
  // TimePoint::max() when none is pending.  O(queue depth): scans every
  // entry (both queue impls keep only heap/slot-granule order, and stale
  // entries may front-run the live minimum).  The sharded kernel's
  // conservative window synchronization (shard.hpp) computes its lookahead
  // horizon from this; exactness matters there -- a cheaper per-impl lower
  // bound would vary with how entries were partitioned across shards and
  // make the window schedule (and thus same-instant delivery order) depend
  // on the shard count.
  TimePoint next_live_event_time() const;

  // Wakeups actually delivered to processes since construction: the
  // virtual-time event count benches report as events/sec.
  std::uint64_t events_processed() const;

  // Root RNG for the experiment; derive per-entity streams from it.
  Rng& rng() { return rng_; }

  Logger& logger() { return logger_; }

  // When true (default), an exception escaping a process body -- other than
  // Interrupted -- is rethrown out of run()/run_until().  The process's
  // result() records it either way.
  void set_propagate_errors(bool on) { propagate_errors_ = on; }

  // The Context of the process currently executing inside this kernel, or
  // nullptr when the scheduler (or no simulation at all) is running.  This
  // is how ambient-context consumers (shell::SimExecutor) find "the current
  // simulated process": a thread_local cannot express it on the fiber
  // backend, where every process shares the scheduler's OS thread.
  Context* current_context() const;

 private:
  friend class Process;
  friend class Context;
  friend class Event;

  // Acquires mu_ -- unless this thread already holds it because a
  // fiber-backend drain is active (full-hold locking), in which case the
  // returned guard is non-owning.  On the fiber backend the scheduler and
  // every process share one OS thread, so run()/run_until() hold mu_ for
  // the whole drain and the per-primitive lock/unlock churn (three atomic
  // RMWs per simulated event) disappears; callers on other threads still
  // serialize normally.  The thread backend never engages full-hold: its
  // baton protocol needs the real unlock inside condition_variable::wait.
  // Defined here so every simulation primitive inlines it down to one TLS
  // compare on the fiber fast path.
  std::unique_lock<std::mutex> lock_self() const {
    if (internal::tls_mu_holder == this) {
      return std::unique_lock<std::mutex>(mu_, std::defer_lock);
    }
    return std::unique_lock<std::mutex>(mu_);
  }

  // --- All methods below require mu_ held. ---

  // Defined inline below the class: it sits on the wake path of every
  // primitive (sleep targets, event pulses, deadline arms).
  void schedule_locked(TimePoint t, Process* p);

  // Reclaims queue entries that can no longer fire (stale token).  Called
  // when stale entries outnumber live ones.  Heap: drops every stale entry
  // and re-heapifies (stop-the-world).  Wheel: sweeps a bounded number of
  // occupied slots (incremental, bitmap-guided round-robin).  Pop order is
  // unchanged either way -- stale entries were skipped anyway.
  void compact_queue_locked();

  // True iff e can no longer fire.  Token-uniform: finish and kill both
  // bump the wake token, so this is a single comparison and queue
  // implementations never read process state.
  static bool entry_stale(const internal::QueueEntry& e);

  // Total pending entries (stale included) in the active implementation.
  std::size_t queue_size_locked() const {
    return queue_impl_ == QueueImpl::kWheel ? wheel_queue_.size()
                                            : heap_queue_.size();
  }

  // Note that every entry carrying p's current token just went stale.
  void invalidate_wakeups_locked(Process* p);

  // Debug/audit builds: recount stale entries and per-process live counts
  // and abort on any drift from stale_wakeups_ / live_wakeups_.  No-op in
  // release builds -- the inline wrapper compiles to nothing, so inlined
  // hot paths carry no residual call.  Call only at consistency points
  // (never between an invalidate and its paired token bump).
  void audit_accounting_locked() const {
#ifdef ETHERGRID_QUEUE_AUDIT_ON
    audit_accounting_slow_locked();
#endif
  }
  void audit_accounting_slow_locked() const;

  // Shared core of the debug audit and verify_queue_accounting(): the exact
  // recount, reported as a Status instead of an abort.
  Status check_queue_accounting_locked() const;

  // Hands control to p and blocks until it yields back or finishes.
  void resume_locked(std::unique_lock<std::mutex>& lock, Process* p);

  // Called from inside a process: gives control back to the scheduler and
  // blocks until resumed.  Returns with the lock held.
  void yield_from_process_locked(std::unique_lock<std::mutex>& lock,
                                 Process* p);

  // Kill, assuming mu_ held.
  void kill_locked(Process& p, std::string reason);

  // Pops entries until a valid one at time <= limit; nullptr when none.
  // Forced inline into its two callers (the drain loop and the yield-side
  // direct-switch fast path, both in kernel.cpp): it runs once per
  // simulated event and the call frame is measurable there.
#if defined(__GNUC__)
  __attribute__((always_inline))
#endif
  inline Process*
  pop_runnable_locked(TimePoint limit);

  // Strategy-mode pop (out of line; this path trades speed for control):
  // surfaces every distinct process runnable at the earliest due instant as
  // a ChoicePoint, delivers the one the strategy picks, then runs the
  // on_transition() hook.  Dispatched from pop_runnable_locked when a
  // strategy is installed.
  Process* pop_runnable_strategy_locked(TimePoint limit);

  // Raw pop of the next due entry (stale or live) from the active queue at
  // time <= limit, with the wheel's dropped-stale accounting applied.
  bool raw_pop_due_locked(TimePoint limit, internal::QueueEntry* out);

  // Re-inserts an entry popped by the strategy path, preserving its
  // original (time, seq, token) so delivery order is untouched.
  void repush_entry_locked(const internal::QueueEntry& entry);

  void drain_locked(std::unique_lock<std::mutex>& lock, TimePoint limit);

  // Fiber plumbing (kFiber backend only).
  void make_fiber_locked(Process* p);
  internal::FiberStack obtain_stack_locked();
  void recycle_stack_locked(Process* p);
  void release_stacks_locked();

  const Backend backend_;
  const QueueImpl queue_impl_;
  const std::size_t fiber_stack_bytes_;
  const std::size_t fiber_stack_slab_;  // stacks per slab; 0 = guard-paged
  const bool debug_kill_skips_invalidate_;

  mutable std::mutex mu_;
  std::condition_variable kernel_cv_;  // thread backend baton
  Process* current_ = nullptr;  // whose turn it is; nullptr => kernel's

  TimePoint now_{};
  // Lock-free mirror of now_ for Context::now() / Kernel::now(), the
  // hottest reads in the observers-on interpreter path.  Written (release)
  // under mu_ wherever virtual time advances; the scheduler handoff that
  // resumes a process happens-after the advance, so an acquire load in the
  // process always sees its own wake time or later.
  std::atomic<Duration::rep> now_fast_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_process_id_ = 1;
  std::uint64_t events_processed_ = 0;
  // Exactly one of these is active, per queue_impl_ (the idle one is a few
  // empty vectors).  See event_queue.hpp.
  internal::TimerWheel wheel_queue_;
  internal::HeapQueue heap_queue_;
  std::size_t stale_wakeups_ = 0;  // queue entries that can no longer fire
#ifdef ETHERGRID_QUEUE_AUDIT_ON
  mutable std::uint64_t audit_tick_ = 0;  // sampling counter, audits only
#endif
  std::vector<ProcessHandle> processes_;
  std::size_t live_processes_ = 0;
  // Model-checking seam (null in normal operation; the strategy branch in
  // pop_runnable_locked is a single predicted-not-taken test).
  mc::Strategy* strategy_ = nullptr;
  bool strategy_halt_ = false;  // on_transition() returned false; stop popping
  // Scratch for the strategy pop (member, not stack, so repeated choice
  // points reuse capacity instead of reallocating every event).
  std::vector<internal::QueueEntry> strategy_entries_;
  std::vector<std::string> strategy_labels_;
  bool shutting_down_ = false;
  bool propagate_errors_ = true;
  std::exception_ptr pending_error_;

  // Direct-switch scheduling (fiber backend).  A yielding process pops the
  // next runnable itself and siglongjmps straight into its fiber -- or
  // simply returns, when the next wakeup is its own -- cutting the
  // scheduler-frame bounce (a full switch pair) out of every steady-state
  // event.  The scheduler frame is entered only for cases it alone can
  // handle, via pending_next_: first runs (fiber creation) and end-of-drain.
  TimePoint run_limit_ = TimePoint::max();  // active drain's limit
  Process* pending_next_ = nullptr;  // popped, awaiting a scheduler resume
  Process* last_finished_ = nullptr;  // stack awaiting recycling

  // Fiber backend state.  The scheduler's frame is saved in sched_jb_
  // across each switch into a fiber; finished fibers' stacks go to the
  // free list for reuse (peak-live-bounded, and kind to vm.max_map_count
  // at 50k spawns).
  sigjmp_buf sched_jb_;
  void* sched_asan_fake_stack_ = nullptr;
  const void* sched_stack_bottom_ = nullptr;  // learned at fiber entry
  std::size_t sched_stack_size_ = 0;
  std::vector<internal::FiberStack> free_stacks_;
  // Slab mode (fiber_stack_slab > 0): the live slab mappings, munmapped in
  // the destructor, and the carve frontier within the newest slab.  Carved
  // stacks have map_base == nullptr so every individual-ownership path
  // (process destructor, stack cache, release) skips them.
  std::vector<std::pair<void*, std::size_t>> slab_maps_;
  char* slab_cursor_ = nullptr;
  char* slab_end_ = nullptr;

  Rng rng_;
  Logger logger_;
};

// Hot methods defined here, below Kernel, so callers in any translation
// unit inline them: on the fiber fast path Event::set() is a TLS compare
// plus the waiter walk and a queue push, reset() a TLS compare and a store.

inline bool Kernel::entry_stale(const internal::QueueEntry& e) {
  return e.token != e.process->wake_token_;
}

inline void Kernel::schedule_locked(TimePoint t, Process* p) {
  assert(p->state_ != Process::State::kFinished);
  const internal::QueueEntry entry{std::max(t, now_), next_seq_++, p,
                                   p->wake_token_};
  if (queue_impl_ == QueueImpl::kWheel) {
    wheel_queue_.push(entry);
  } else {
    heap_queue_.push(entry);
  }
  ++p->live_wakeups_;
  // Compaction keeps the queue O(live entries): without it, a long-lived
  // process cycling through wait_for timeouts strands one stale entry per
  // cycle and the queue grows for the whole run.
  if (stale_wakeups_ != 0) {
    const std::size_t size = queue_size_locked();
    if (size >= 64 && stale_wakeups_ > size / 2) {
      compact_queue_locked();
    }
  }
  audit_accounting_locked();
}

inline void Event::set() {
  const auto lock = kernel_->lock_self();
  set_locked();
}

inline void Event::set_locked() {
  set_ = true;
  pulse_locked();
}

inline void Event::pulse() {
  const auto lock = kernel_->lock_self();
  pulse_locked();
}

inline void Event::pulse_locked() {
  // FIFO wake order (registration order) for deterministic seq assignment.
  Waiter* w = head_;
  head_ = tail_ = nullptr;
  while (w) {
    Waiter* next = w->next;
    // linked=false is the whole detach: every consumer (unlink_locked, the
    // ~Event safety net, waiter cleanup in Context) checks it before
    // touching prev/next, so the stale pointers are never followed.
    w->linked = false;
    w->granted = true;
    kernel_->schedule_locked(kernel_->now_, w->process);
    w = next;
  }
}

inline void Event::reset() {
  const auto lock = kernel_->lock_self();
  set_ = false;
}

inline bool Event::is_set() const {
  const auto lock = kernel_->lock_self();
  return set_;
}

}  // namespace ethergrid::sim
