// Store<T>: a bounded FIFO channel between simulated processes.
//
// put() blocks while full, get() blocks while empty; both are deadline- and
// kill-aware via the caller's Context.  Wakeups use Event::pulse and a
// re-check loop; the single-runner discipline of the kernel means the
// classic missed-wakeup race cannot occur (no other process runs between a
// state check and the wait registration).
#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <mutex>
#include <utility>

#include "sim/kernel.hpp"

namespace ethergrid::sim {

template <typename T>
class Store {
 public:
  explicit Store(Kernel& kernel,
                 std::size_t capacity = std::numeric_limits<std::size_t>::max())
      : capacity_(capacity), not_empty_(kernel), not_full_(kernel) {}

  void put(Context& ctx, T item) {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (items_.size() < capacity_) {
          items_.push_back(std::move(item));
          not_empty_.pulse();
          return;
        }
      }
      ctx.wait(not_full_waiting());
    }
  }

  bool try_put(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.pulse();
    return true;
  }

  T get(Context& ctx) {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!items_.empty()) {
          T value = std::move(items_.front());
          items_.pop_front();
          not_full_.pulse();
          return value;
        }
      }
      ctx.wait(not_empty_waiting());
    }
  }

  bool try_get(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.pulse();
    return true;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool empty() const { return size() == 0; }

 private:
  // The Events are pulse-only; reset them before waiting so a stale latched
  // state (from a set() nobody performed -- pulse never latches, but be
  // defensive) cannot cause a spin.
  Event& not_empty_waiting() {
    not_empty_.reset();
    return not_empty_;
  }
  Event& not_full_waiting() {
    not_full_.reset();
    return not_full_;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<T> items_;
  Event not_empty_;
  Event not_full_;
};

}  // namespace ethergrid::sim
