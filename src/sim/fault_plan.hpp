// FaultPlan: a declarative, seed-deterministic description of the faults to
// inject into a run.
//
// The paper's disciplines exist *because the medium fails*; a single
// hard-coded failure knob cannot exercise them systematically.  A plan is a
// list of rules, each binding a fault kind to a named injection *site*
// (e.g. "fileserver.xxx.fetch", "schedd.submit", "iochannel.write").  Site
// patterns may contain '*' wildcards so one rule can cover a family of
// sites.  The plan itself is pure data: core::FaultInjector interprets it
// against per-site RNG streams, so the same seed + plan replays the
// identical fault sequence.
//
// Plans can be built programmatically (the builders below) or parsed from
// the compact command-line grammar used by `gridsim --faults=SPEC`:
//
//   spec  := rule (";" rule)*
//   rule  := site ":" fault
//   fault := "fail@" P            -- prompt error with probability P
//          | "stall@" P "," D     -- latency spike of D seconds, probability P
//          | "reset@" P ["," F1 "-" F2]
//                                 -- mid-transfer reset after a fraction of
//                                    the payload drawn uniformly from [F1,F2)
//          | "crash@" T           -- one-shot crash at virtual time T seconds
//          | "drop@" T1 "-" T2    -- partition (black hole) during [T1,T2)
//
// Example: "fileserver.*.fetch:reset@0.3;fileserver.yyy.*:drop@100-400"
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"
#include "util/time.hpp"

namespace ethergrid::sim {

// One fault kind plus its parameters.  Fields are meaningful per kind; the
// builders on FaultPlan set only what the kind uses.
struct FaultSpec {
  enum class Kind {
    kError,      // prompt retryable failure, probability `probability`
    kStall,      // extra latency of `stall`, probability `probability`
    kReset,      // fail after a fraction of the payload has moved
    kCrash,      // one-shot: fires the first time a decision happens at or
                 // after `at` (substrates map it to their crash path)
    kPartition,  // black hole while now is inside [window_start, window_end)
  };

  Kind kind = Kind::kError;
  double probability = 1.0;         // kError / kStall / kReset
  Duration stall{};                 // kStall
  double fraction_min = 0.05;       // kReset: payload fraction consumed
  double fraction_max = 0.95;       //   before the connection dies
  TimePoint at{};                   // kCrash
  TimePoint window_start{};         // kPartition
  TimePoint window_end{};
  StatusCode code = StatusCode::kIoError;  // status carried by kError/kReset

  std::string describe() const;
};

std::string_view fault_kind_name(FaultSpec::Kind kind);

// Binds a spec to a site pattern ('*' matches any run of characters).
struct FaultRule {
  std::string site_pattern;
  FaultSpec spec;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  bool empty() const { return rules_.empty(); }
  const std::vector<FaultRule>& rules() const { return rules_; }

  FaultPlan& add(std::string site_pattern, FaultSpec spec);

  // --- spec builders ---
  static FaultSpec error(double probability,
                         StatusCode code = StatusCode::kIoError);
  static FaultSpec stall(double probability, Duration d);
  static FaultSpec reset(double probability, double fraction_min = 0.05,
                         double fraction_max = 0.95);
  static FaultSpec crash_at(TimePoint t);
  static FaultSpec partition(TimePoint from, TimePoint to);

  // Parses the --faults grammar above.  On failure returns
  // kInvalidArgument naming the offending rule; *out is untouched.
  static Status parse(std::string_view spec, FaultPlan* out);

  // Round-trippable human-readable rendering (one rule per line).
  std::string describe() const;

 private:
  std::vector<FaultRule> rules_;
};

// '*'-wildcard match; '*' matches any (possibly empty) run of characters.
bool site_matches(std::string_view pattern, std::string_view site);

}  // namespace ethergrid::sim
