#include "sim/mailbox.hpp"

#include <algorithm>

namespace ethergrid::sim {

ShardMailbox::ShardMailbox(std::size_t shards)
    : rows_(shards), next_seq_(shards, 0) {}

void ShardMailbox::post(std::size_t src_shard, ShardMessage msg) {
  msg.seq = next_seq_[src_shard]++;
  rows_[src_shard].push_back(std::move(msg));
}

std::vector<ShardMessage> ShardMailbox::drain() {
  std::vector<ShardMessage> batch;
  std::size_t total = 0;
  for (const auto& row : rows_) total += row.size();
  batch.reserve(total);
  for (auto& row : rows_) {
    for (ShardMessage& m : row) batch.push_back(std::move(m));
    row.clear();
  }
  // Canonical order.  (src_site, seq) pairs are unique -- seq counters are
  // per row and a site posts from exactly one row -- so the order is total
  // and std::sort's instability is immaterial.
  std::sort(batch.begin(), batch.end(),
            [](const ShardMessage& a, const ShardMessage& b) {
              if (a.deliver != b.deliver) return a.deliver < b.deliver;
              if (a.src_site != b.src_site) return a.src_site < b.src_site;
              return a.seq < b.seq;
            });
  posted_total_ += batch.size();
  return batch;
}

bool ShardMailbox::empty() const {
  for (const auto& row : rows_) {
    if (!row.empty()) return false;
  }
  return true;
}

void ShardMailbox::clear() {
  for (auto& row : rows_) row.clear();
}

}  // namespace ethergrid::sim
