#include "sim/kernel.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

// Sanitizer feature detection.  ASan needs the fiber-switch annotations so
// its shadow stack follows swapcontext; TSan cannot follow fibers at all,
// so TSan builds force the thread backend (see default_backend()).
#if defined(__SANITIZE_ADDRESS__)
#define ETHERGRID_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ETHERGRID_ASAN 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define ETHERGRID_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ETHERGRID_TSAN 1
#endif
#endif

#ifdef ETHERGRID_ASAN
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace ethergrid::sim {

namespace {

// The Context of the process currently executing on *this* thread, or
// nullptr while the scheduler (or no kernel at all) owns the thread.  Set
// on every handoff into a process body and cleared on every handoff out,
// so Kernel::current_context() can skip the kernel mutex when the caller
// is the running process itself -- by far the hottest query.  Only the
// owning thread ever touches its slot, so plain loads/stores are race-free
// under both backends.
thread_local Context* tls_running_context = nullptr;

// No-op shims when ASan is absent, so call sites stay unconditional.
inline void asan_start_switch(void** fake_stack_save, const void* bottom,
                              std::size_t size) {
#ifdef ETHERGRID_ASAN
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

inline void asan_finish_switch(void* fake_stack_save, const void** bottom_old,
                               std::size_t* size_old) {
#ifdef ETHERGRID_ASAN
  __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old, size_old);
#else
  (void)fake_stack_save;
  (void)bottom_old;
  (void)size_old;
#endif
}

inline void asan_unpoison_stack(const internal::FiberStack& stack) {
#ifdef ETHERGRID_ASAN
  __asan_unpoison_memory_region(stack.usable_lo, stack.usable_size);
#else
  (void)stack;
#endif
}

std::size_t page_size() {
  static const std::size_t page = std::size_t(::sysconf(_SC_PAGESIZE));
  return page;
}

std::size_t resolve_stack_bytes(std::size_t requested) {
  std::size_t bytes = requested;
  if (bytes == 0) {
    if (const char* env = std::getenv("ETHERGRID_SIM_STACK_KB")) {
      bytes = std::size_t(std::strtoull(env, nullptr, 10)) * 1024;
    }
  }
  if (bytes == 0) {
#ifdef ETHERGRID_ASAN
    bytes = std::size_t(1) << 20;  // ASan redzones inflate every frame
#else
    bytes = std::size_t(256) << 10;
#endif
  }
  const std::size_t page = page_size();
  return (bytes + page - 1) / page * page;
}

}  // namespace

const char* backend_name(Backend backend) {
  return backend == Backend::kFiber ? "fiber" : "thread";
}

Backend default_backend() {
#ifdef ETHERGRID_TSAN
  return Backend::kThread;
#else
  if (const char* env = std::getenv("ETHERGRID_SIM_BACKEND")) {
    if (std::strcmp(env, "thread") == 0) return Backend::kThread;
    if (std::strcmp(env, "fiber") == 0) return Backend::kFiber;
  }
#ifdef ETHERGRID_THREAD_BACKEND_DEFAULT
  return Backend::kThread;
#else
  return Backend::kFiber;
#endif
#endif
}

// ---------------------------------------------------------------- Process

Process::Process(Kernel* kernel, std::uint64_t id, std::string name,
                 ProcessBody body)
    : kernel_(kernel), id_(id), name_(std::move(name)), body_(std::move(body)) {}

Process::~Process() {
  // Thread backend: the kernel joins all threads in its destructor; a
  // handle held past that point owns a finished, join()ed thread.
  if (thread_.joinable()) thread_.join();
  // Fiber backend: a finished process's stack was recycled into the
  // kernel's free list; this munmap only fires if the kernel died with the
  // process unfinished (which shutdown() asserts against).
  if (stack_.map_base) ::munmap(stack_.map_base, stack_.map_size);
}

bool Process::finished() const {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  return state_ == State::kFinished;
}

Status Process::result() const {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  return result_;
}

void Process::run_body_locked(std::unique_lock<std::mutex>& lock) {
  state_ = State::kRunning;
  Status result;
  std::exception_ptr error;
  if (killed_) {
    result = Status::killed(kill_reason_);
  } else {
    Context ctx(kernel_, this);
    context_ = &ctx;
    tls_running_context = &ctx;
    lock.unlock();
    try {
      body_(ctx);
      result = Status::success();
    } catch (const Interrupted& i) {
      result = Status::killed(i.reason);
    } catch (const DeadlineExceeded& d) {
      result = Status::timeout("deadline at " +
                               std::to_string(to_seconds(d.deadline)) +
                               "s escaped process body");
    } catch (const std::exception& e) {
      result = Status::failure(e.what());
      error = std::current_exception();
    } catch (...) {
      result = Status::failure("non-std exception escaped process body");
      error = std::current_exception();
    }
    lock.lock();
    context_ = nullptr;
    tls_running_context = nullptr;
  }

  result_ = std::move(result);
  if (error && !kernel_->shutting_down_) kernel_->pending_error_ = error;
  state_ = State::kFinished;
  --kernel_->live_processes_;
  kernel_->invalidate_wakeups_locked(this);
  done_->set_locked();
  body_ = nullptr;  // drop captured state while the result lives on
}

void Process::thread_main() {
  std::unique_lock<std::mutex> lock(kernel_->mu_);
  cv_.wait(lock, [&] { return kernel_->current_ == this; });
  run_body_locked(lock);
  kernel_->current_ = nullptr;
  kernel_->kernel_cv_.notify_one();
}

void Process::fiber_trampoline(unsigned int hi, unsigned int lo) {
  auto* p = reinterpret_cast<Process*>((std::uintptr_t(hi) << 32) |
                                       std::uintptr_t(lo));
  p->fiber_main();
}

void Process::fiber_main() {
  // First words on the new stack: complete the ASan switch the scheduler
  // began, learning the scheduler's stack bounds for the switch back.
  asan_finish_switch(nullptr, &kernel_->sched_stack_bottom_,
                     &kernel_->sched_stack_size_);
  // Park: creation is not the first run.  The scheduler resumes us later
  // by siglongjmp-ing into this sigsetjmp.
  if (sigsetjmp(fiber_jb_, 0) == 0) {
    asan_start_switch(&asan_fake_stack_, kernel_->sched_stack_bottom_,
                      kernel_->sched_stack_size_);
    siglongjmp(kernel_->sched_jb_, 1);
  }
  asan_finish_switch(asan_fake_stack_, &kernel_->sched_stack_bottom_,
                     &kernel_->sched_stack_size_);
  {
    std::unique_lock<std::mutex> lock(kernel_->mu_);
    run_body_locked(lock);
    kernel_->current_ = nullptr;
  }
  // Final departure: a null save handle tells ASan to destroy this fiber's
  // fake stack (the real stack goes back to the kernel's free list).
  asan_start_switch(nullptr, kernel_->sched_stack_bottom_,
                    kernel_->sched_stack_size_);
  siglongjmp(kernel_->sched_jb_, 1);
}

// ------------------------------------------------------------------ Event

Event::~Event() {
  if (!head_) return;  // common case: nothing to detach
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  Waiter* w = head_;
  while (w) {
    Waiter* next = w->next;
    // Unlinking marks the record safe: the waiter's cleanup (on kill or
    // deadline) sees linked == false and never touches this dead Event.
    w->linked = false;
    w->prev = w->next = nullptr;
    w = next;
  }
  head_ = tail_ = nullptr;
}

void Event::set() {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  set_locked();
}

void Event::set_locked() {
  set_ = true;
  pulse_locked();
}

void Event::pulse() {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  pulse_locked();
}

void Event::pulse_locked() {
  // FIFO wake order (registration order) for deterministic seq assignment.
  Waiter* w = head_;
  head_ = tail_ = nullptr;
  while (w) {
    Waiter* next = w->next;
    w->linked = false;
    w->prev = w->next = nullptr;
    w->granted = true;
    kernel_->schedule_locked(kernel_->now_, w->process);
    w = next;
  }
}

void Event::link_locked(Waiter* w) {
  w->linked = true;
  w->next = nullptr;
  w->prev = tail_;
  if (tail_) {
    tail_->next = w;
  } else {
    head_ = w;
  }
  tail_ = w;
}

void Event::unlink_locked(Waiter* w) {
  if (!w->linked) return;
  if (w->prev) {
    w->prev->next = w->next;
  } else {
    head_ = w->next;
  }
  if (w->next) {
    w->next->prev = w->prev;
  } else {
    tail_ = w->prev;
  }
  w->linked = false;
  w->prev = w->next = nullptr;
}

void Event::reset() {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  set_ = false;
}

bool Event::is_set() const {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  return set_;
}

// ---------------------------------------------------------------- Context

namespace {

using DeadlineStack = std::vector<std::pair<std::uint64_t, TimePoint>>;

// Requires kernel mutex held.  Builds the exception for the *outermost*
// expired deadline (outer timeouts dominate inner scopes).
DeadlineExceeded outermost_expired(const DeadlineStack& deadlines,
                                   TimePoint now) {
  for (const auto& entry : deadlines) {
    if (entry.second <= now) {
      return DeadlineExceeded{entry.first, entry.second};
    }
  }
  assert(false && "no expired deadline");
  return DeadlineExceeded{0, now};
}

TimePoint earliest_deadline_of(const DeadlineStack& deadlines) {
  TimePoint best = kNoDeadline;
  for (const auto& entry : deadlines) best = std::min(best, entry.second);
  return best;
}

}  // namespace

TimePoint Context::now() const {
  // Lock-free: the mirror is released under mu_ on every time advance, and
  // the handoff that resumed this process happens-after that advance.
  return TimePoint(
      Duration(kernel_->now_fast_.load(std::memory_order_acquire)));
}

void Context::sleep(Duration d) {
  std::unique_lock<std::mutex> lock(kernel_->mu_);
  Kernel& k = *kernel_;
  Process& p = *process_;
  if (p.killed_) throw Interrupted{p.kill_reason_};
  if (earliest_deadline_of(p.deadlines_) <= k.now_) {
    throw outermost_expired(p.deadlines_, k.now_);
  }
  if (d < Duration(0)) d = Duration(0);
  const TimePoint target = k.now_ + d;
  const TimePoint deadline = earliest_deadline_of(p.deadlines_);
  const TimePoint effective = std::min(target, deadline);
  k.schedule_locked(effective, &p);
  k.yield_from_process_locked(lock, &p);
  if (p.killed_) throw Interrupted{p.kill_reason_};
  if (deadline < target && k.now_ >= deadline) {
    throw outermost_expired(p.deadlines_, k.now_);
  }
}

void Context::wait(Event& e) {
  std::unique_lock<std::mutex> lock(kernel_->mu_);
  Kernel& k = *kernel_;
  Process& p = *process_;
  if (p.killed_) throw Interrupted{p.kill_reason_};
  if (earliest_deadline_of(p.deadlines_) <= k.now_) {
    throw outermost_expired(p.deadlines_, k.now_);
  }
  if (e.set_) return;
  Event::Waiter waiter;
  waiter.process = &p;
  e.link_locked(&waiter);
  const TimePoint deadline = earliest_deadline_of(p.deadlines_);
  if (deadline != kNoDeadline) k.schedule_locked(deadline, &p);
  while (true) {
    k.yield_from_process_locked(lock, &p);
    if (p.killed_) {
      if (waiter.linked) e.unlink_locked(&waiter);
      throw Interrupted{p.kill_reason_};
    }
    if (waiter.granted) return;
    if (k.now_ >= deadline) {
      if (waiter.linked) e.unlink_locked(&waiter);
      throw outermost_expired(p.deadlines_, k.now_);
    }
    // Defensive: spurious resume; re-arm the deadline guard.
    if (deadline != kNoDeadline) k.schedule_locked(deadline, &p);
  }
}

bool Context::wait_for(Event& e, Duration timeout) {
  std::unique_lock<std::mutex> lock(kernel_->mu_);
  Kernel& k = *kernel_;
  Process& p = *process_;
  if (p.killed_) throw Interrupted{p.kill_reason_};
  if (earliest_deadline_of(p.deadlines_) <= k.now_) {
    throw outermost_expired(p.deadlines_, k.now_);
  }
  if (e.set_) return true;
  if (timeout < Duration(0)) timeout = Duration(0);
  const TimePoint local = k.now_ + timeout;
  const TimePoint deadline = earliest_deadline_of(p.deadlines_);
  const TimePoint effective = std::min(local, deadline);
  Event::Waiter waiter;
  waiter.process = &p;
  e.link_locked(&waiter);
  k.schedule_locked(effective, &p);
  while (true) {
    k.yield_from_process_locked(lock, &p);
    if (p.killed_) {
      if (waiter.linked) e.unlink_locked(&waiter);
      throw Interrupted{p.kill_reason_};
    }
    if (waiter.granted) return true;
    if (k.now_ >= deadline) {
      if (waiter.linked) e.unlink_locked(&waiter);
      throw outermost_expired(p.deadlines_, k.now_);
    }
    if (k.now_ >= local) {
      if (waiter.linked) e.unlink_locked(&waiter);
      return false;
    }
    k.schedule_locked(effective, &p);
  }
}

std::uint64_t Context::push_deadline(TimePoint deadline) {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  const std::uint64_t token = ++kernel_->next_seq_;
  process_->deadlines_.emplace_back(token, deadline);
  return token;
}

void Context::pop_deadline() {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  assert(!process_->deadlines_.empty());
  process_->deadlines_.pop_back();
}

TimePoint Context::earliest_deadline() const {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  return earliest_deadline_of(process_->deadlines_);
}

void Context::check() {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  Process& p = *process_;
  if (p.killed_) throw Interrupted{p.kill_reason_};
  if (earliest_deadline_of(p.deadlines_) <= kernel_->now_) {
    throw outermost_expired(p.deadlines_, kernel_->now_);
  }
}

ProcessHandle Context::spawn(std::string name, ProcessBody body) {
  return kernel_->spawn(std::move(name), std::move(body));
}

void Context::join(Process& p) { wait(*p.done_); }

void Context::kill(Process& p, std::string reason) {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  kernel_->kill_locked(p, std::move(reason));
}

Rng& Context::rng() { return process_->rng_; }

void Context::log(LogLevel level, std::string message) {
  kernel_->logger_.log(level, now(), process_->name_, std::move(message));
}

DeadlineScope::DeadlineScope(Context& ctx, TimePoint deadline) : ctx_(ctx) {
  token_ = ctx_.push_deadline(deadline);
}

DeadlineScope::~DeadlineScope() { ctx_.pop_deadline(); }

// ----------------------------------------------------------------- Kernel

Kernel::Kernel(std::uint64_t seed, KernelOptions options)
    :
#ifdef ETHERGRID_TSAN
      backend_(Backend::kThread),  // TSan cannot follow fibers
#else
      backend_(options.backend),
#endif
      fiber_stack_bytes_(resolve_stack_bytes(options.fiber_stack_bytes)),
      rng_(seed),
      logger_(LogLevel::kWarn) {
}

Kernel::~Kernel() {
  shutdown();
  std::lock_guard<std::mutex> lock(mu_);
  release_stacks_locked();
}

void Kernel::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
    propagate_errors_ = false;
    // Repeatedly kill everything alive and drain; unwinding bodies might
    // spawn (spawns during shutdown start pre-killed, see spawn()).
    for (int rounds = 0; live_processes_ > 0 && rounds < 64; ++rounds) {
      for (auto& p : processes_) {
        if (p->state_ != Process::State::kFinished) {
          kill_locked(*p, "kernel shutdown");
        }
      }
      drain_locked(lock, TimePoint::max());
    }
    assert(live_processes_ == 0 && "process survived kernel shutdown");
  }
  for (auto& p : processes_) {
    if (p->thread_.joinable()) p->thread_.join();
  }
}

TimePoint Kernel::now() const {
  return TimePoint(Duration(now_fast_.load(std::memory_order_acquire)));
}

ProcessHandle Kernel::spawn(std::string name, ProcessBody body) {
  std::lock_guard<std::mutex> lock(mu_);
  ProcessHandle p(new Process(this, next_process_id_, std::move(name),
                              std::move(body)));
  ++next_process_id_;
  p->done_ = std::make_unique<Event>(*this);
  p->rng_ = rng_.stream(p->id_);
  if (shutting_down_) {
    p->killed_ = true;
    p->kill_reason_ = "kernel shutdown";
  }
  processes_.push_back(p);
  ++live_processes_;
  if (backend_ == Backend::kThread) {
    p->thread_ = std::thread(&Process::thread_main, p.get());
  }
  schedule_locked(now_, p.get());
  return p;
}

void Kernel::kill(Process& p, std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  kill_locked(p, std::move(reason));
}

void Kernel::kill_locked(Process& p, std::string reason) {
  if (p.state_ == Process::State::kFinished || p.killed_) return;
  p.killed_ = true;
  p.kill_reason_ = std::move(reason);
  if (&p != current_) {
    invalidate_wakeups_locked(&p);
    ++p.wake_token_;  // invalidate any pending wakeup
    schedule_locked(now_, &p);
  }
}

void Kernel::invalidate_wakeups_locked(Process* p) {
  stale_wakeups_ += p->live_wakeups_;
  p->live_wakeups_ = 0;
}

void Kernel::schedule_locked(TimePoint t, Process* p) {
  assert(p->state_ != Process::State::kFinished);
  queue_.push_back(internal::QueueEntry{std::max(t, now_), next_seq_++, p,
                                        p->wake_token_});
  std::push_heap(queue_.begin(), queue_.end(), internal::QueueEntryLater{});
  ++p->live_wakeups_;
  // Compaction keeps the heap O(live entries): without it, a long-lived
  // process cycling through wait_for timeouts strands one stale entry per
  // cycle and the queue grows for the whole run.
  if (queue_.size() >= 64 && stale_wakeups_ > queue_.size() / 2) {
    compact_queue_locked();
  }
}

void Kernel::compact_queue_locked() {
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [](const internal::QueueEntry& e) {
                                return e.process->state_ ==
                                           Process::State::kFinished ||
                                       e.token != e.process->wake_token_;
                              }),
               queue_.end());
  std::make_heap(queue_.begin(), queue_.end(), internal::QueueEntryLater{});
  stale_wakeups_ = 0;
}

void Kernel::make_fiber_locked(Process* p) {
  p->stack_ = obtain_stack_locked();
  ::getcontext(&p->fiber_context_);
  p->fiber_context_.uc_stack.ss_sp = p->stack_.usable_lo;
  p->fiber_context_.uc_stack.ss_size = p->stack_.usable_size;
  p->fiber_context_.uc_link = nullptr;  // fibers exit via explicit siglongjmp
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  ::makecontext(&p->fiber_context_,
                reinterpret_cast<void (*)()>(&Process::fiber_trampoline), 2,
                static_cast<unsigned int>(addr >> 32),
                static_cast<unsigned int>(addr & 0xffffffffu));
  // Bootstrap: enter the new context once so the fiber parks in its
  // sigsetjmp; every switch from here on is a syscall-free siglongjmp
  // (this swapcontext pair is the only sigprocmask the fiber ever costs).
  if (sigsetjmp(sched_jb_, 0) == 0) {
    asan_start_switch(&sched_asan_fake_stack_, p->stack_.usable_lo,
                      p->stack_.usable_size);
    ucontext_t scratch;  // the fiber returns via siglongjmp, never via this
    ::swapcontext(&scratch, &p->fiber_context_);
  }
  asan_finish_switch(sched_asan_fake_stack_, nullptr, nullptr);
}

internal::FiberStack Kernel::obtain_stack_locked() {
  if (!free_stacks_.empty()) {
    internal::FiberStack stack = free_stacks_.back();
    free_stacks_.pop_back();
    return stack;
  }
  const std::size_t page = page_size();
  internal::FiberStack stack;
  stack.usable_size = fiber_stack_bytes_;
  stack.map_size = stack.usable_size + page;  // + low guard page
#ifndef MAP_STACK
#define MAP_STACK 0
#endif
  void* base = ::mmap(nullptr, stack.map_size, PROT_NONE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (base == MAP_FAILED) throw std::bad_alloc();
  stack.map_base = base;
  stack.usable_lo = static_cast<char*>(base) + page;
  if (::mprotect(stack.usable_lo, stack.usable_size,
                 PROT_READ | PROT_WRITE) != 0) {
    ::munmap(base, stack.map_size);
    throw std::bad_alloc();
  }
  return stack;
}

void Kernel::recycle_stack_locked(Process* p) {
  if (!p->stack_.map_base) return;
  // The shadow of the dead frames must not poison the next tenant.
  asan_unpoison_stack(p->stack_);
  free_stacks_.push_back(p->stack_);
  p->stack_ = internal::FiberStack{};
}

void Kernel::release_stacks_locked() {
  for (const internal::FiberStack& stack : free_stacks_) {
    ::munmap(stack.map_base, stack.map_size);
  }
  free_stacks_.clear();
}

void Kernel::resume_locked(std::unique_lock<std::mutex>& lock, Process* p) {
  if (backend_ == Backend::kThread) {
    current_ = p;
    p->cv_.notify_one();
    kernel_cv_.wait(lock, [&] { return current_ == nullptr; });
    return;
  }
  if (p->state_ == Process::State::kNew) make_fiber_locked(p);
  current_ = p;
  lock.unlock();
  if (sigsetjmp(sched_jb_, 0) == 0) {
    asan_start_switch(&sched_asan_fake_stack_, p->stack_.usable_lo,
                      p->stack_.usable_size);
    siglongjmp(p->fiber_jb_, 1);
  }
  asan_finish_switch(sched_asan_fake_stack_, nullptr, nullptr);
  lock.lock();
  if (p->state_ == Process::State::kFinished) recycle_stack_locked(p);
}

void Kernel::yield_from_process_locked(std::unique_lock<std::mutex>& lock,
                                       Process* p) {
  // While control is away the thread belongs to the scheduler (fiber
  // backend: same thread, possibly resuming a *different* process before
  // us); drop the thread-local and restore it on the way back in.
  tls_running_context = nullptr;
  if (backend_ == Backend::kThread) {
    current_ = nullptr;
    kernel_cv_.notify_one();
    p->cv_.wait(lock, [&] { return current_ == p; });
    tls_running_context = p->context_;
    return;
  }
  current_ = nullptr;
  lock.unlock();
  if (sigsetjmp(p->fiber_jb_, 0) == 0) {
    asan_start_switch(&p->asan_fake_stack_, sched_stack_bottom_,
                      sched_stack_size_);
    siglongjmp(sched_jb_, 1);
  }
  // Re-learn the scheduler's stack bounds on every entry: run() may be
  // driven from a different thread (hence stack) across calls.
  asan_finish_switch(p->asan_fake_stack_, &sched_stack_bottom_,
                     &sched_stack_size_);
  tls_running_context = p->context_;
  lock.lock();
}

Process* Kernel::pop_runnable_locked(TimePoint limit) {
  while (!queue_.empty()) {
    const internal::QueueEntry entry = queue_.front();
    if (entry.time > limit) return nullptr;
    std::pop_heap(queue_.begin(), queue_.end(), internal::QueueEntryLater{});
    queue_.pop_back();
    if (entry.process->state_ == Process::State::kFinished ||
        entry.token != entry.process->wake_token_) {  // stale
      --stale_wakeups_;
      continue;
    }
    --entry.process->live_wakeups_;
    now_ = std::max(now_, entry.time);
    now_fast_.store(now_.time_since_epoch().count(),
                    std::memory_order_release);
    invalidate_wakeups_locked(entry.process);
    ++entry.process->wake_token_;  // consume: later same-token entries stale
    ++events_processed_;
    return entry.process;
  }
  return nullptr;
}

void Kernel::drain_locked(std::unique_lock<std::mutex>& lock,
                          TimePoint limit) {
  while (Process* p = pop_runnable_locked(limit)) {
    resume_locked(lock, p);
    if (pending_error_ && propagate_errors_) {
      std::exception_ptr error = pending_error_;
      pending_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
}

void Kernel::run() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_locked(lock, TimePoint::max());
}

bool Kernel::run_until(TimePoint t) {
  std::unique_lock<std::mutex> lock(mu_);
  drain_locked(lock, t);
  now_ = std::max(now_, t);
  now_fast_.store(now_.time_since_epoch().count(),
                  std::memory_order_release);
  // Purge stale entries so the return value reflects real pending work.
  while (!queue_.empty()) {
    const internal::QueueEntry& entry = queue_.front();
    if (entry.process->state_ != Process::State::kFinished &&
        entry.token == entry.process->wake_token_) {
      break;
    }
    std::pop_heap(queue_.begin(), queue_.end(), internal::QueueEntryLater{});
    queue_.pop_back();
    --stale_wakeups_;
  }
  return !queue_.empty();
}

std::size_t Kernel::live_process_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_processes_;
}

std::size_t Kernel::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::uint64_t Kernel::events_processed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_processed_;
}

Context* Kernel::current_context() const {
  // Fast path: a thread-local hit means the caller *is* the process this
  // kernel is currently running -- no lock needed.  The kernel check keeps
  // nested/multiple kernels honest; a miss (foreign kernel, scheduler
  // thread, plain caller thread) falls back to the locked read.
  Context* ctx = tls_running_context;
  if (ctx != nullptr && ctx->kernel_ == this) return ctx;
  std::lock_guard<std::mutex> lock(mu_);
  return current_ ? current_->context_ : nullptr;
}

}  // namespace ethergrid::sim
