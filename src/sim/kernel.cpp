#include "sim/kernel.hpp"

#include <algorithm>
#include <cassert>

namespace ethergrid::sim {

// ---------------------------------------------------------------- Process

Process::Process(Kernel* kernel, std::uint64_t id, std::string name,
                 ProcessBody body)
    : kernel_(kernel), id_(id), name_(std::move(name)), body_(std::move(body)) {}

Process::~Process() {
  // The kernel joins all threads in its destructor; a handle held past that
  // point owns a finished, join()ed thread.
  if (thread_.joinable()) thread_.join();
}

bool Process::finished() const {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  return state_ == State::kFinished;
}

Status Process::result() const {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  return result_;
}

void Process::thread_main() {
  std::unique_lock<std::mutex> lock(kernel_->mu_);
  cv_.wait(lock, [&] { return kernel_->current_ == this; });
  state_ = State::kRunning;

  Status result;
  std::exception_ptr error;
  if (killed_) {
    result = Status::killed(kill_reason_);
  } else {
    Context ctx(kernel_, this);
    lock.unlock();
    try {
      body_(ctx);
      result = Status::success();
    } catch (const Interrupted& i) {
      result = Status::killed(i.reason);
    } catch (const DeadlineExceeded& d) {
      result = Status::timeout("deadline at " +
                               std::to_string(to_seconds(d.deadline)) +
                               "s escaped process body");
    } catch (const std::exception& e) {
      result = Status::failure(e.what());
      error = std::current_exception();
    } catch (...) {
      result = Status::failure("non-std exception escaped process body");
      error = std::current_exception();
    }
    lock.lock();
  }

  result_ = std::move(result);
  if (error && !kernel_->shutting_down_) kernel_->pending_error_ = error;
  state_ = State::kFinished;
  --kernel_->live_processes_;
  done_->set_locked();
  body_ = nullptr;  // drop captured state while the result lives on
  kernel_->current_ = nullptr;
  kernel_->kernel_cv_.notify_one();
}

// ------------------------------------------------------------------ Event

Event::~Event() {
  if (waiters_.empty()) return;  // common case: nothing to detach
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  for (Waiter* w : waiters_) w->event_destroyed = true;
  waiters_.clear();
}

void Event::set() {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  set_locked();
}

void Event::set_locked() {
  set_ = true;
  pulse_locked();
}

void Event::pulse() {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  pulse_locked();
}

void Event::pulse_locked() {
  for (Waiter* w : waiters_) {
    w->granted = true;
    kernel_->schedule_locked(kernel_->now_, w->process);
  }
  waiters_.clear();
}

void Event::reset() {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  set_ = false;
}

bool Event::is_set() const {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  return set_;
}

// ---------------------------------------------------------------- Context

namespace {

using DeadlineStack = std::vector<std::pair<std::uint64_t, TimePoint>>;

// Requires kernel mutex held.  Builds the exception for the *outermost*
// expired deadline (outer timeouts dominate inner scopes).
DeadlineExceeded outermost_expired(const DeadlineStack& deadlines,
                                   TimePoint now) {
  for (const auto& entry : deadlines) {
    if (entry.second <= now) {
      return DeadlineExceeded{entry.first, entry.second};
    }
  }
  assert(false && "no expired deadline");
  return DeadlineExceeded{0, now};
}

TimePoint earliest_deadline_of(const DeadlineStack& deadlines) {
  TimePoint best = kNoDeadline;
  for (const auto& entry : deadlines) best = std::min(best, entry.second);
  return best;
}

void remove_waiter_impl(std::vector<Event::Waiter*>& waiters,
                        Event::Waiter* w) {
  waiters.erase(std::remove(waiters.begin(), waiters.end(), w), waiters.end());
}

}  // namespace

TimePoint Context::now() const {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  return kernel_->now_;
}

void Context::sleep(Duration d) {
  std::unique_lock<std::mutex> lock(kernel_->mu_);
  Kernel& k = *kernel_;
  Process& p = *process_;
  if (p.killed_) throw Interrupted{p.kill_reason_};
  if (earliest_deadline_of(p.deadlines_) <= k.now_) {
    throw outermost_expired(p.deadlines_, k.now_);
  }
  if (d < Duration(0)) d = Duration(0);
  const TimePoint target = k.now_ + d;
  const TimePoint deadline = earliest_deadline_of(p.deadlines_);
  const TimePoint effective = std::min(target, deadline);
  k.schedule_locked(effective, &p);
  k.yield_from_process_locked(lock, &p);
  if (p.killed_) throw Interrupted{p.kill_reason_};
  if (deadline < target && k.now_ >= deadline) {
    throw outermost_expired(p.deadlines_, k.now_);
  }
}

void Context::wait(Event& e) {
  std::unique_lock<std::mutex> lock(kernel_->mu_);
  Kernel& k = *kernel_;
  Process& p = *process_;
  if (p.killed_) throw Interrupted{p.kill_reason_};
  if (earliest_deadline_of(p.deadlines_) <= k.now_) {
    throw outermost_expired(p.deadlines_, k.now_);
  }
  if (e.set_) return;
  Event::Waiter waiter{&p, false};
  e.waiters_.push_back(&waiter);
  const TimePoint deadline = earliest_deadline_of(p.deadlines_);
  if (deadline != kNoDeadline) k.schedule_locked(deadline, &p);
  while (true) {
    k.yield_from_process_locked(lock, &p);
    if (p.killed_) {
      if (!waiter.event_destroyed) remove_waiter_impl(e.waiters_, &waiter);
      throw Interrupted{p.kill_reason_};
    }
    if (waiter.granted) return;
    if (k.now_ >= deadline) {
      if (!waiter.event_destroyed) remove_waiter_impl(e.waiters_, &waiter);
      throw outermost_expired(p.deadlines_, k.now_);
    }
    // Defensive: spurious resume; re-arm the deadline guard.
    if (deadline != kNoDeadline) k.schedule_locked(deadline, &p);
  }
}

bool Context::wait_for(Event& e, Duration timeout) {
  std::unique_lock<std::mutex> lock(kernel_->mu_);
  Kernel& k = *kernel_;
  Process& p = *process_;
  if (p.killed_) throw Interrupted{p.kill_reason_};
  if (earliest_deadline_of(p.deadlines_) <= k.now_) {
    throw outermost_expired(p.deadlines_, k.now_);
  }
  if (e.set_) return true;
  if (timeout < Duration(0)) timeout = Duration(0);
  const TimePoint local = k.now_ + timeout;
  const TimePoint deadline = earliest_deadline_of(p.deadlines_);
  const TimePoint effective = std::min(local, deadline);
  Event::Waiter waiter{&p, false};
  e.waiters_.push_back(&waiter);
  k.schedule_locked(effective, &p);
  while (true) {
    k.yield_from_process_locked(lock, &p);
    if (p.killed_) {
      if (!waiter.event_destroyed) remove_waiter_impl(e.waiters_, &waiter);
      throw Interrupted{p.kill_reason_};
    }
    if (waiter.granted) return true;
    if (k.now_ >= deadline) {
      if (!waiter.event_destroyed) remove_waiter_impl(e.waiters_, &waiter);
      throw outermost_expired(p.deadlines_, k.now_);
    }
    if (k.now_ >= local) {
      if (!waiter.event_destroyed) remove_waiter_impl(e.waiters_, &waiter);
      return false;
    }
    k.schedule_locked(effective, &p);
  }
}

std::uint64_t Context::push_deadline(TimePoint deadline) {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  const std::uint64_t token = ++kernel_->next_seq_;
  process_->deadlines_.emplace_back(token, deadline);
  return token;
}

void Context::pop_deadline() {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  assert(!process_->deadlines_.empty());
  process_->deadlines_.pop_back();
}

TimePoint Context::earliest_deadline() const {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  return earliest_deadline_of(process_->deadlines_);
}

void Context::check() {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  Process& p = *process_;
  if (p.killed_) throw Interrupted{p.kill_reason_};
  if (earliest_deadline_of(p.deadlines_) <= kernel_->now_) {
    throw outermost_expired(p.deadlines_, kernel_->now_);
  }
}

ProcessHandle Context::spawn(std::string name, ProcessBody body) {
  return kernel_->spawn(std::move(name), std::move(body));
}

void Context::join(Process& p) { wait(*p.done_); }

void Context::kill(Process& p, std::string reason) {
  std::lock_guard<std::mutex> lock(kernel_->mu_);
  kernel_->kill_locked(p, std::move(reason));
}

Rng& Context::rng() { return process_->rng_; }

void Context::log(LogLevel level, std::string message) {
  kernel_->logger_.log(level, now(), process_->name_, std::move(message));
}

DeadlineScope::DeadlineScope(Context& ctx, TimePoint deadline) : ctx_(ctx) {
  token_ = ctx_.push_deadline(deadline);
}

DeadlineScope::~DeadlineScope() { ctx_.pop_deadline(); }

// ----------------------------------------------------------------- Kernel

Kernel::Kernel(std::uint64_t seed) : rng_(seed), logger_(LogLevel::kWarn) {}

Kernel::~Kernel() { shutdown(); }

void Kernel::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
    propagate_errors_ = false;
    // Repeatedly kill everything alive and drain; unwinding bodies might
    // spawn (spawns during shutdown start pre-killed, see spawn()).
    for (int rounds = 0; live_processes_ > 0 && rounds < 64; ++rounds) {
      for (auto& p : processes_) {
        if (p->state_ != Process::State::kFinished) {
          kill_locked(*p, "kernel shutdown");
        }
      }
      drain_locked(lock, TimePoint::max());
    }
    assert(live_processes_ == 0 && "process survived kernel shutdown");
  }
  for (auto& p : processes_) {
    if (p->thread_.joinable()) p->thread_.join();
  }
}

TimePoint Kernel::now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

ProcessHandle Kernel::spawn(std::string name, ProcessBody body) {
  std::lock_guard<std::mutex> lock(mu_);
  ProcessHandle p(new Process(this, next_process_id_, std::move(name),
                              std::move(body)));
  ++next_process_id_;
  p->done_ = std::make_unique<Event>(*this);
  p->rng_ = rng_.stream(p->id_);
  if (shutting_down_) {
    p->killed_ = true;
    p->kill_reason_ = "kernel shutdown";
  }
  processes_.push_back(p);
  ++live_processes_;
  p->thread_ = std::thread(&Process::thread_main, p.get());
  schedule_locked(now_, p.get());
  return p;
}

void Kernel::kill(Process& p, std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  kill_locked(p, std::move(reason));
}

void Kernel::kill_locked(Process& p, std::string reason) {
  if (p.state_ == Process::State::kFinished || p.killed_) return;
  p.killed_ = true;
  p.kill_reason_ = std::move(reason);
  if (&p != current_) {
    ++p.wake_token_;  // invalidate any pending wakeup
    schedule_locked(now_, &p);
  }
}

void Kernel::schedule_locked(TimePoint t, Process* p) {
  queue_.push(internal::QueueEntry{std::max(t, now_), next_seq_++, p,
                                   p->wake_token_});
}

void Kernel::resume_locked(std::unique_lock<std::mutex>& lock, Process* p) {
  current_ = p;
  p->cv_.notify_one();
  kernel_cv_.wait(lock, [&] { return current_ == nullptr; });
}

void Kernel::yield_from_process_locked(std::unique_lock<std::mutex>& lock,
                                       Process* p) {
  current_ = nullptr;
  kernel_cv_.notify_one();
  p->cv_.wait(lock, [&] { return current_ == p; });
}

Process* Kernel::pop_runnable_locked(TimePoint limit) {
  while (!queue_.empty()) {
    internal::QueueEntry entry = queue_.top();
    if (entry.time > limit) return nullptr;
    queue_.pop();
    if (entry.process->state_ == Process::State::kFinished) continue;
    if (entry.token != entry.process->wake_token_) continue;  // stale
    now_ = std::max(now_, entry.time);
    ++entry.process->wake_token_;  // consume: later same-token entries stale
    return entry.process;
  }
  return nullptr;
}

void Kernel::drain_locked(std::unique_lock<std::mutex>& lock,
                          TimePoint limit) {
  while (Process* p = pop_runnable_locked(limit)) {
    resume_locked(lock, p);
    if (pending_error_ && propagate_errors_) {
      std::exception_ptr error = pending_error_;
      pending_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
}

void Kernel::run() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_locked(lock, TimePoint::max());
}

bool Kernel::run_until(TimePoint t) {
  std::unique_lock<std::mutex> lock(mu_);
  drain_locked(lock, t);
  now_ = std::max(now_, t);
  // Purge stale entries so the return value reflects real pending work.
  while (!queue_.empty()) {
    const internal::QueueEntry& entry = queue_.top();
    if (entry.process->state_ != Process::State::kFinished &&
        entry.token == entry.process->wake_token_) {
      break;
    }
    queue_.pop();
  }
  return !queue_.empty();
}

std::size_t Kernel::live_process_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_processes_;
}

}  // namespace ethergrid::sim
