#include "sim/kernel.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <unordered_map>

// Sanitizer feature detection.  ASan needs the fiber-switch annotations so
// its shadow stack follows swapcontext; TSan cannot follow fibers at all,
// so TSan builds force the thread backend (see default_backend()).
#if defined(__SANITIZE_ADDRESS__)
#define ETHERGRID_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ETHERGRID_ASAN 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define ETHERGRID_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ETHERGRID_TSAN 1
#endif
#endif

#ifdef ETHERGRID_ASAN
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace ethergrid::sim {

namespace {

// The Context of the process currently executing on *this* thread, or
// nullptr while the scheduler (or no kernel at all) owns the thread.  Set
// on every handoff into a process body and cleared on every handoff out,
// so Kernel::current_context() can skip the kernel mutex when the caller
// is the running process itself -- by far the hottest query.  Only the
// owning thread ever touches its slot, so plain loads/stores are race-free
// under both backends.
thread_local Context* tls_running_context = nullptr;

// RAII marker for the drain entry points (run / run_until / shutdown).
// Saved/restored on nesting so a simulation driven from inside another
// kernel's process keeps both honest.  The holder variable itself lives in
// internal:: (kernel.hpp) so lock_self can inline the read.
class MuHoldScope {
 public:
  MuHoldScope(Kernel* kernel, bool active) : prev_(internal::tls_mu_holder) {
    if (active) internal::tls_mu_holder = kernel;
  }
  ~MuHoldScope() { internal::tls_mu_holder = prev_; }
  MuHoldScope(const MuHoldScope&) = delete;
  MuHoldScope& operator=(const MuHoldScope&) = delete;

 private:
  const Kernel* prev_;
};

// No-op shims when ASan is absent, so call sites stay unconditional.
inline void asan_start_switch(void** fake_stack_save, const void* bottom,
                              std::size_t size) {
#ifdef ETHERGRID_ASAN
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

inline void asan_finish_switch(void* fake_stack_save, const void** bottom_old,
                               std::size_t* size_old) {
#ifdef ETHERGRID_ASAN
  __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old, size_old);
#else
  (void)fake_stack_save;
  (void)bottom_old;
  (void)size_old;
#endif
}

inline void asan_unpoison_stack(const internal::FiberStack& stack) {
#ifdef ETHERGRID_ASAN
  __asan_unpoison_memory_region(stack.usable_lo, stack.usable_size);
#else
  (void)stack;
#endif
}

std::size_t page_size() {
  static const std::size_t page = std::size_t(::sysconf(_SC_PAGESIZE));
  return page;
}

// Process-wide cache of fiber stacks, shared across Kernel instances.
// Within one kernel stacks already recycle through free_stacks_, but
// short-lived kernels (one per benchmark iteration, one per test case)
// used to pay mmap + guard mprotect + first-touch page faults + munmap
// with TLB shootdown for every stack -- ~5us apiece, dwarfing the
// simulation itself.  Stacks parked here keep their pages mapped and
// warm.  Bounded, so a burst of wide kernels cannot pin memory forever.
class StackCache {
 public:
  bool take(std::size_t usable_size, internal::FiberStack* out) {
    std::lock_guard<std::mutex> guard(mu_);
    for (std::size_t i = stacks_.size(); i-- > 0;) {
      if (stacks_[i].usable_size == usable_size) {
        *out = stacks_[i];
        stacks_[i] = stacks_.back();
        stacks_.pop_back();
        return true;
      }
    }
    return false;
  }

  void put(const internal::FiberStack& stack) {
    {
      std::lock_guard<std::mutex> guard(mu_);
      if (stacks_.size() < kMaxStacks) {
        stacks_.push_back(stack);
        return;
      }
    }
    ::munmap(stack.map_base, stack.map_size);
  }

 private:
  static constexpr std::size_t kMaxStacks = 64;
  std::mutex mu_;
  std::vector<internal::FiberStack> stacks_;
};

StackCache& stack_cache() {
  // Intentionally leaked: kernels destroyed during static teardown may
  // still return stacks, and the OS reclaims the mappings at exit anyway.
  static StackCache* cache = new StackCache;
  return *cache;
}

std::size_t resolve_stack_bytes(std::size_t requested) {
  std::size_t bytes = requested;
  if (bytes == 0) {
    if (const char* env = std::getenv("ETHERGRID_SIM_STACK_KB")) {
      bytes = std::size_t(std::strtoull(env, nullptr, 10)) * 1024;
    }
  }
  if (bytes == 0) {
#ifdef ETHERGRID_ASAN
    bytes = std::size_t(1) << 20;  // ASan redzones inflate every frame
#else
    bytes = std::size_t(256) << 10;
#endif
  }
  const std::size_t page = page_size();
  return (bytes + page - 1) / page * page;
}

}  // namespace

namespace internal {
__thread const Kernel* tls_mu_holder = nullptr;
}  // namespace internal

const char* backend_name(Backend backend) {
  return backend == Backend::kFiber ? "fiber" : "thread";
}

Backend default_backend() {
#ifdef ETHERGRID_TSAN
  return Backend::kThread;
#else
  if (const char* env = std::getenv("ETHERGRID_SIM_BACKEND")) {
    if (std::strcmp(env, "thread") == 0) return Backend::kThread;
    if (std::strcmp(env, "fiber") == 0) return Backend::kFiber;
  }
#ifdef ETHERGRID_THREAD_BACKEND_DEFAULT
  return Backend::kThread;
#else
  return Backend::kFiber;
#endif
#endif
}

// ---------------------------------------------------------------- Process

Process::Process(Kernel* kernel, std::uint64_t id, std::string name,
                 ProcessBody body)
    : kernel_(kernel), id_(id), name_(std::move(name)), body_(std::move(body)) {}

Process::~Process() {
  // Thread backend: the kernel joins all threads in its destructor; a
  // handle held past that point owns a finished, join()ed thread.
  if (thread_.joinable()) thread_.join();
  // Fiber backend: a finished process's stack was recycled into the
  // kernel's free list; this path only fires if the kernel died with the
  // process unfinished (which shutdown() asserts against).
  if (stack_.map_base) {
    asan_unpoison_stack(stack_);
    stack_cache().put(stack_);
  }
}

bool Process::finished() const {
  const auto lock = kernel_->lock_self();
  return state_ == State::kFinished;
}

Status Process::result() const {
  const auto lock = kernel_->lock_self();
  return result_;
}

void Process::run_body_locked(std::unique_lock<std::mutex>& lock) {
  state_ = State::kRunning;
  Status result;
  std::exception_ptr error;
  if (killed_) {
    result = Status::killed(kill_reason_);
  } else {
    Context ctx(kernel_, this);
    context_ = &ctx;
    tls_running_context = &ctx;
    // Thread backend: the body runs with the mutex dropped (the scheduler
    // is parked in its condvar wait).  Fiber full-hold: `lock` is a
    // non-owning dummy and the body runs under the drain's continuous
    // hold -- primitives it calls skip locking via lock_self().
    const bool relock = lock.owns_lock();
    if (relock) lock.unlock();
    try {
      body_(ctx);
      result = Status::success();
    } catch (const Interrupted& i) {
      result = Status::killed(i.reason);
    } catch (const DeadlineExceeded& d) {
      result = Status::timeout("deadline at " +
                               std::to_string(to_seconds(d.deadline)) +
                               "s escaped process body");
    } catch (const std::exception& e) {
      result = Status::failure(e.what());
      error = std::current_exception();
    } catch (...) {
      result = Status::failure("non-std exception escaped process body");
      error = std::current_exception();
    }
    if (relock) lock.lock();
    context_ = nullptr;
    tls_running_context = nullptr;
  }

  result_ = std::move(result);
  if (error && !kernel_->shutting_down_) kernel_->pending_error_ = error;
  state_ = State::kFinished;
  --kernel_->live_processes_;
  // Retire every pending wakeup BEFORE anything can observe the finished
  // process.  The token bump makes "stale" a pure token comparison: a
  // finished process's entries mismatch just like a killed process's do,
  // so queue implementations never need to read process state.  Skipping
  // this accounting would leave live-counted entries behind that the pop
  // path later subtracts from stale_wakeups_, wrapping the counter and
  // locking the queue into permanent O(n) compaction.
  kernel_->invalidate_wakeups_locked(this);
  ++wake_token_;
  done_->set_locked();
  body_ = nullptr;  // drop captured state while the result lives on
  kernel_->audit_accounting_locked();
}

void Process::thread_main() {
  std::unique_lock<std::mutex> lock(kernel_->mu_);
  cv_.wait(lock, [&] { return kernel_->current_ == this; });
  run_body_locked(lock);
  kernel_->current_ = nullptr;
  kernel_->kernel_cv_.notify_one();
}

void Process::fiber_trampoline(unsigned int hi, unsigned int lo) {
  auto* p = reinterpret_cast<Process*>((std::uintptr_t(hi) << 32) |
                                       std::uintptr_t(lo));
  p->fiber_main();
}

void Process::fiber_main() {
  // First words on the new stack: complete the ASan switch the scheduler
  // began, learning the scheduler's stack bounds for the switch back.
  asan_finish_switch(nullptr, &kernel_->sched_stack_bottom_,
                     &kernel_->sched_stack_size_);
  // Park: creation is not the first run.  The scheduler resumes us later
  // by siglongjmp-ing into this sigsetjmp.
  if (sigsetjmp(fiber_jb_, 0) == 0) {
    asan_start_switch(&asan_fake_stack_, kernel_->sched_stack_bottom_,
                      kernel_->sched_stack_size_);
    siglongjmp(kernel_->sched_jb_, 1);
  }
  asan_finish_switch(asan_fake_stack_, &kernel_->sched_stack_bottom_,
                     &kernel_->sched_stack_size_);
  {
    // Full-hold locking: the drain that resumed us holds the mutex across
    // the switch and keeps holding it until run()/run_until() return, so
    // this side never locks -- run_body_locked sees a non-owning guard.
    std::unique_lock<std::mutex> lock(kernel_->mu_, std::defer_lock);
    run_body_locked(lock);
    kernel_->current_ = nullptr;
    kernel_->last_finished_ = this;  // scheduler recycles the stack
  }
  // Final departure: a null save handle tells ASan to destroy this fiber's
  // fake stack (the real stack goes back to the kernel's free list).
  asan_start_switch(nullptr, kernel_->sched_stack_bottom_,
                    kernel_->sched_stack_size_);
  siglongjmp(kernel_->sched_jb_, 1);
}

// ------------------------------------------------------------------ Event

Event::~Event() {
  if (!head_) return;  // common case: nothing to detach
  const auto lock = kernel_->lock_self();
  Waiter* w = head_;
  while (w) {
    Waiter* next = w->next;
    // Unlinking marks the record safe: the waiter's cleanup (on kill or
    // deadline) sees linked == false and never touches this dead Event.
    w->linked = false;
    w->prev = w->next = nullptr;
    w = next;
  }
  head_ = tail_ = nullptr;
}

void Event::link_locked(Waiter* w) {
  w->linked = true;
  w->next = nullptr;
  w->prev = tail_;
  if (tail_) {
    tail_->next = w;
  } else {
    head_ = w;
  }
  tail_ = w;
}

void Event::unlink_locked(Waiter* w) {
  if (!w->linked) return;
  if (w->prev) {
    w->prev->next = w->next;
  } else {
    head_ = w->next;
  }
  if (w->next) {
    w->next->prev = w->prev;
  } else {
    tail_ = w->prev;
  }
  w->linked = false;
  w->prev = w->next = nullptr;
}

// ---------------------------------------------------------------- Context

namespace {

using DeadlineStack = std::vector<std::pair<std::uint64_t, TimePoint>>;

// Requires kernel mutex held.  Builds the exception for the *outermost*
// expired deadline (outer timeouts dominate inner scopes).
DeadlineExceeded outermost_expired(const DeadlineStack& deadlines,
                                   TimePoint now) {
  for (const auto& entry : deadlines) {
    if (entry.second <= now) {
      return DeadlineExceeded{entry.first, entry.second};
    }
  }
  assert(false && "no expired deadline");
  return DeadlineExceeded{0, now};
}

TimePoint earliest_deadline_of(const DeadlineStack& deadlines) {
  TimePoint best = kNoDeadline;
  for (const auto& entry : deadlines) best = std::min(best, entry.second);
  return best;
}

}  // namespace

TimePoint Context::now() const {
  // Lock-free: the mirror is released under mu_ on every time advance, and
  // the handoff that resumed this process happens-after that advance.
  return TimePoint(
      Duration(kernel_->now_fast_.load(std::memory_order_acquire)));
}

void Context::sleep(Duration d) {
  auto lock = kernel_->lock_self();
  Kernel& k = *kernel_;
  Process& p = *process_;
  if (p.killed_) throw Interrupted{p.kill_reason_};
  const TimePoint deadline = earliest_deadline_of(p.deadlines_);
  if (deadline <= k.now_) {
    throw outermost_expired(p.deadlines_, k.now_);
  }
  if (d < Duration(0)) d = Duration(0);
  const TimePoint target = k.now_ + d;
  const TimePoint effective = std::min(target, deadline);
  k.schedule_locked(effective, &p);
  k.yield_from_process_locked(lock, &p);
  if (p.killed_) throw Interrupted{p.kill_reason_};
  if (deadline < target && k.now_ >= deadline) {
    throw outermost_expired(p.deadlines_, k.now_);
  }
}

void Context::wait(Event& e) {
  auto lock = kernel_->lock_self();
  Kernel& k = *kernel_;
  Process& p = *process_;
  if (p.killed_) throw Interrupted{p.kill_reason_};
  const TimePoint deadline = earliest_deadline_of(p.deadlines_);
  if (deadline <= k.now_) {
    throw outermost_expired(p.deadlines_, k.now_);
  }
  if (e.set_) return;
  Event::Waiter waiter;
  waiter.process = &p;
  e.link_locked(&waiter);
  if (deadline != kNoDeadline) k.schedule_locked(deadline, &p);
  while (true) {
    k.yield_from_process_locked(lock, &p);
    if (p.killed_) {
      if (waiter.linked) e.unlink_locked(&waiter);
      throw Interrupted{p.kill_reason_};
    }
    if (waiter.granted) return;
    if (k.now_ >= deadline) {
      if (waiter.linked) e.unlink_locked(&waiter);
      throw outermost_expired(p.deadlines_, k.now_);
    }
    // Defensive: spurious resume; re-arm the deadline guard.
    if (deadline != kNoDeadline) k.schedule_locked(deadline, &p);
  }
}

bool Context::wait_for(Event& e, Duration timeout) {
  auto lock = kernel_->lock_self();
  Kernel& k = *kernel_;
  Process& p = *process_;
  if (p.killed_) throw Interrupted{p.kill_reason_};
  const TimePoint deadline = earliest_deadline_of(p.deadlines_);
  if (deadline <= k.now_) {
    throw outermost_expired(p.deadlines_, k.now_);
  }
  if (e.set_) return true;
  if (timeout < Duration(0)) timeout = Duration(0);
  const TimePoint local = k.now_ + timeout;
  const TimePoint effective = std::min(local, deadline);
  Event::Waiter waiter;
  waiter.process = &p;
  e.link_locked(&waiter);
  k.schedule_locked(effective, &p);
  while (true) {
    k.yield_from_process_locked(lock, &p);
    if (p.killed_) {
      if (waiter.linked) e.unlink_locked(&waiter);
      throw Interrupted{p.kill_reason_};
    }
    if (waiter.granted) return true;
    if (k.now_ >= deadline) {
      if (waiter.linked) e.unlink_locked(&waiter);
      throw outermost_expired(p.deadlines_, k.now_);
    }
    if (k.now_ >= local) {
      if (waiter.linked) e.unlink_locked(&waiter);
      return false;
    }
    k.schedule_locked(effective, &p);
  }
}

std::uint64_t Context::push_deadline(TimePoint deadline) {
  const auto lock = kernel_->lock_self();
  const std::uint64_t token = ++kernel_->next_seq_;
  process_->deadlines_.emplace_back(token, deadline);
  return token;
}

void Context::pop_deadline() {
  const auto lock = kernel_->lock_self();
  assert(!process_->deadlines_.empty());
  process_->deadlines_.pop_back();
}

TimePoint Context::earliest_deadline() const {
  const auto lock = kernel_->lock_self();
  return earliest_deadline_of(process_->deadlines_);
}

void Context::check() {
  const auto lock = kernel_->lock_self();
  Process& p = *process_;
  if (p.killed_) throw Interrupted{p.kill_reason_};
  if (earliest_deadline_of(p.deadlines_) <= kernel_->now_) {
    throw outermost_expired(p.deadlines_, kernel_->now_);
  }
}

ProcessHandle Context::spawn(std::string name, ProcessBody body) {
  return kernel_->spawn(std::move(name), std::move(body));
}

void Context::join(Process& p) { wait(*p.done_); }

void Context::kill(Process& p, std::string reason) {
  const auto lock = kernel_->lock_self();
  kernel_->kill_locked(p, std::move(reason));
}

Rng& Context::rng() { return process_->rng_; }

void Context::log(LogLevel level, std::string message) {
  kernel_->logger_.log(level, now(), process_->name_, std::move(message));
}

DeadlineScope::DeadlineScope(Context& ctx, TimePoint deadline) : ctx_(ctx) {
  token_ = ctx_.push_deadline(deadline);
}

DeadlineScope::~DeadlineScope() { ctx_.pop_deadline(); }

// ----------------------------------------------------------------- Kernel

Kernel::Kernel(std::uint64_t seed, KernelOptions options)
    :
#ifdef ETHERGRID_TSAN
      backend_(Backend::kThread),  // TSan cannot follow fibers
#else
      backend_(options.backend),
#endif
      queue_impl_(options.queue),
      fiber_stack_bytes_(resolve_stack_bytes(options.fiber_stack_bytes)),
      fiber_stack_slab_(options.fiber_stack_slab),
      debug_kill_skips_invalidate_(options.debug_kill_skips_invalidate),
      rng_(seed),
      logger_(LogLevel::kWarn) {
}

Kernel::~Kernel() {
  shutdown();
  std::lock_guard<std::mutex> lock(mu_);
  release_stacks_locked();
  for (const auto& [base, size] : slab_maps_) ::munmap(base, size);
  slab_maps_.clear();
}

void Kernel::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    MuHoldScope hold(this, backend_ == Backend::kFiber);
    shutting_down_ = true;
    propagate_errors_ = false;
    // Shutdown must drain unconditionally; a strategy (or its pending halt)
    // would stop the drain and strand unwinding processes.
    strategy_ = nullptr;
    strategy_halt_ = false;
    // Repeatedly kill everything alive and drain; unwinding bodies might
    // spawn (spawns during shutdown start pre-killed, see spawn()).
    for (int rounds = 0; live_processes_ > 0 && rounds < 64; ++rounds) {
      for (auto& p : processes_) {
        if (p->state_ != Process::State::kFinished) {
          kill_locked(*p, "kernel shutdown");
        }
      }
      drain_locked(lock, TimePoint::max());
    }
    assert(live_processes_ == 0 && "process survived kernel shutdown");
  }
  for (auto& p : processes_) {
    if (p->thread_.joinable()) p->thread_.join();
  }
}

TimePoint Kernel::now() const {
  return TimePoint(Duration(now_fast_.load(std::memory_order_acquire)));
}

ProcessHandle Kernel::spawn(std::string name, ProcessBody body) {
  const auto lock = lock_self();
  ProcessHandle p(new Process(this, next_process_id_, std::move(name),
                              std::move(body)));
  ++next_process_id_;
  p->done_ = std::make_unique<Event>(*this);
  p->rng_ = rng_.stream(p->id_);
  if (shutting_down_) {
    p->killed_ = true;
    p->kill_reason_ = "kernel shutdown";
  }
  processes_.push_back(p);
  ++live_processes_;
  if (backend_ == Backend::kThread) {
    p->thread_ = std::thread(&Process::thread_main, p.get());
  }
  schedule_locked(now_, p.get());
  return p;
}

void Kernel::kill(Process& p, std::string reason) {
  const auto lock = lock_self();
  kill_locked(p, std::move(reason));
}

void Kernel::kill_locked(Process& p, std::string reason) {
  if (p.state_ == Process::State::kFinished || p.killed_) return;
  p.killed_ = true;
  p.kill_reason_ = std::move(reason);
  // Invalidate pending wakeups whether or not p is the running process.
  // The running process cannot have live entries today (its resume consumed
  // and invalidated them), but the bump keeps the invariant local --
  // "killed implies every prior entry is stale" -- instead of depending on
  // that global property, and the audit asserts the live count really was
  // zero.  A killed running process is NOT rescheduled: it unwinds at its
  // next wait primitive.
  if (!debug_kill_skips_invalidate_) {
    invalidate_wakeups_locked(&p);
  }
  ++p.wake_token_;
  if (&p != current_) {
    schedule_locked(now_, &p);
  }
  audit_accounting_locked();
}

void Kernel::invalidate_wakeups_locked(Process* p) {
  stale_wakeups_ += p->live_wakeups_;
  p->live_wakeups_ = 0;
}

// Exact recount of the lazy-cancellation bookkeeping: the stale counter
// must equal the number of queue entries that can no longer fire, and each
// process's live_wakeups_ must equal its token-matching entries.  O(queue)
// per call, so the inline wrapper (kernel.hpp) only calls this when
// assertions are on or ETHERGRID_QUEUE_AUDIT forces it.
// The exact recount behind both the debug audit (abort on drift) and the
// public verify_queue_accounting() (Status on drift): the stale counter must
// equal the number of queue entries that can no longer fire, and each
// process's live_wakeups_ its token-matching entries.  One implementation so
// the model checker, the chaos tests, and the debug audit can never disagree
// about what "accounting is consistent" means.
Status Kernel::check_queue_accounting_locked() const {
  std::size_t stale = 0;
  std::size_t depth = 0;
  std::unordered_map<const Process*, std::size_t> live_by_process;
  const Process* finished_with_live = nullptr;
  auto count = [&](const internal::QueueEntry& e) {
    ++depth;
    if (entry_stale(e)) {
      ++stale;
      return;
    }
    ++live_by_process[e.process];
    // Token-uniform staleness invariant: finishing bumps the wake token, so
    // no entry may reach a finished process through a matching token.
    if (e.process->state_ == Process::State::kFinished) {
      finished_with_live = e.process;
    }
  };
  if (queue_impl_ == QueueImpl::kWheel) {
    wheel_queue_.for_each(count);
  } else {
    heap_queue_.for_each(count);
  }
  if (finished_with_live != nullptr) {
    return Status::failure(
        "queue accounting: finished process " +
        std::to_string(finished_with_live->id_) + " has a live entry");
  }
  if (stale != stale_wakeups_) {
    return Status::failure(
        "queue accounting: stale_wakeups_=" + std::to_string(stale_wakeups_) +
        " actual=" + std::to_string(stale) +
        " depth=" + std::to_string(depth));
  }
  for (const ProcessHandle& p : processes_) {
    const auto it = live_by_process.find(p.get());
    const std::size_t live =
        it == live_by_process.end() ? 0 : it->second;
    if (live != p->live_wakeups_) {
      return Status::failure(
          "queue accounting: process " + std::to_string(p->id_) + " (" +
          p->name_ + ") live_wakeups_=" + std::to_string(p->live_wakeups_) +
          " actual=" + std::to_string(live));
    }
  }
  return Status::success();
}

Status Kernel::verify_queue_accounting() const {
  const auto lock = lock_self();
  return check_queue_accounting_locked();
}

void Kernel::audit_accounting_slow_locked() const {
#ifdef ETHERGRID_QUEUE_AUDIT_ON
  // The self-test knob makes the counters drift on purpose; aborting here
  // would kill the run before the accounting invariant gets to observe it.
  if (debug_kill_skips_invalidate_) return;
  // Counter drift is persistent -- once stale_wakeups_ or a live_wakeups_
  // is wrong it stays wrong -- so on large queues sampling every 64th call
  // still catches it, just a bounded number of events later.  Small queues
  // (every unit test) stay exact on every call; without the throttle the
  // big scenario suites go O(events x queue) under sanitizers.
  if (queue_size_locked() > 128 && (++audit_tick_ & 63) != 0) return;
  const Status status = check_queue_accounting_locked();
  if (!status.ok()) {
    std::fprintf(stderr, "queue audit: %s\n", status.message().c_str());
    std::abort();
  }
#endif
}

void Kernel::compact_queue_locked() {
  if (queue_impl_ == QueueImpl::kWheel) {
    // Incremental: sweep a few occupied slots per trigger.  Near-future
    // stale entries are already dropped when their slot drains; this
    // reclaims the far-future ones (abandoned long timeouts, killed
    // sleepers) without a stop-the-world rebuild.  Inline lambda, not a
    // function pointer, so the predicate inlines into the template.
    const auto stale = [](const internal::QueueEntry& e) {
      return entry_stale(e);
    };
    stale_wakeups_ -= std::min(wheel_queue_.compact_step(stale),
                               stale_wakeups_);
  } else {
    stale_wakeups_ -= std::min(
        heap_queue_.compact(
            [](const internal::QueueEntry& e) { return entry_stale(e); }),
        stale_wakeups_);
  }
}

void Kernel::make_fiber_locked(Process* p) {
  p->stack_ = obtain_stack_locked();
  ::getcontext(&p->fiber_context_);
  p->fiber_context_.uc_stack.ss_sp = p->stack_.usable_lo;
  p->fiber_context_.uc_stack.ss_size = p->stack_.usable_size;
  p->fiber_context_.uc_link = nullptr;  // fibers exit via explicit siglongjmp
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  ::makecontext(&p->fiber_context_,
                reinterpret_cast<void (*)()>(&Process::fiber_trampoline), 2,
                static_cast<unsigned int>(addr >> 32),
                static_cast<unsigned int>(addr & 0xffffffffu));
  // Bootstrap: enter the new context once so the fiber parks in its
  // sigsetjmp; every switch from here on is a syscall-free siglongjmp
  // (this swapcontext pair is the only sigprocmask the fiber ever costs).
  if (sigsetjmp(sched_jb_, 0) == 0) {
    asan_start_switch(&sched_asan_fake_stack_, p->stack_.usable_lo,
                      p->stack_.usable_size);
    ucontext_t scratch;  // the fiber returns via siglongjmp, never via this
    ::swapcontext(&scratch, &p->fiber_context_);
  }
  asan_finish_switch(sched_asan_fake_stack_, nullptr, nullptr);
}

internal::FiberStack Kernel::obtain_stack_locked() {
  if (!free_stacks_.empty()) {
    internal::FiberStack stack = free_stacks_.back();
    free_stacks_.pop_back();
    return stack;
  }
  if (fiber_stack_slab_ > 0) {
    // Carve from the current slab; map a fresh one when it is exhausted.
    // No guard pages: one VMA covers fiber_stack_slab_ stacks, so the
    // concurrent-fiber ceiling is vm.max_map_count * slab instead of
    // vm.max_map_count / 2 (see KernelOptions::fiber_stack_slab).
    if (slab_cursor_ == slab_end_) {
      const std::size_t slab_bytes = fiber_stack_bytes_ * fiber_stack_slab_;
      void* base = ::mmap(nullptr, slab_bytes, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (base == MAP_FAILED) throw std::bad_alloc();
      slab_maps_.emplace_back(base, slab_bytes);
      slab_cursor_ = static_cast<char*>(base);
      slab_end_ = slab_cursor_ + slab_bytes;
    }
    internal::FiberStack stack;
    stack.map_base = nullptr;  // slab-owned: never individually unmapped
    stack.map_size = 0;
    stack.usable_lo = slab_cursor_;
    stack.usable_size = fiber_stack_bytes_;
    slab_cursor_ += fiber_stack_bytes_;
    return stack;
  }
  internal::FiberStack cached;
  if (stack_cache().take(fiber_stack_bytes_, &cached)) return cached;
  const std::size_t page = page_size();
  internal::FiberStack stack;
  stack.usable_size = fiber_stack_bytes_;
  stack.map_size = stack.usable_size + page;  // + low guard page
#ifndef MAP_STACK
#define MAP_STACK 0
#endif
  void* base = ::mmap(nullptr, stack.map_size, PROT_NONE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (base == MAP_FAILED) throw std::bad_alloc();
  stack.map_base = base;
  stack.usable_lo = static_cast<char*>(base) + page;
  if (::mprotect(stack.usable_lo, stack.usable_size,
                 PROT_READ | PROT_WRITE) != 0) {
    ::munmap(base, stack.map_size);
    throw std::bad_alloc();
  }
  return stack;
}

void Kernel::recycle_stack_locked(Process* p) {
  if (!p->stack_.usable_lo) return;  // slab-carved stacks recycle too
  // The shadow of the dead frames must not poison the next tenant.
  asan_unpoison_stack(p->stack_);
  free_stacks_.push_back(p->stack_);
  p->stack_ = internal::FiberStack{};
}

void Kernel::release_stacks_locked() {
  for (const internal::FiberStack& stack : free_stacks_) {
    // Slab-carved stacks (map_base == nullptr) are not individually
    // unmappable; their memory goes with the slabs in the destructor.
    if (stack.map_base) stack_cache().put(stack);
  }
  free_stacks_.clear();
}

void Kernel::resume_locked(std::unique_lock<std::mutex>& lock, Process* p) {
  if (backend_ == Backend::kThread) {
    current_ = p;
    p->cv_.notify_one();
    kernel_cv_.wait(lock, [&] { return current_ == nullptr; });
    return;
  }
  if (p->state_ == Process::State::kNew) make_fiber_locked(p);
  current_ = p;
  // Full-hold locking: fiber switches never leave this OS thread, so the
  // drain's mutex hold simply persists across the jump -- `lock` stays
  // owning, the far side never locks, and a simulated event costs zero
  // mutex operations.
  if (sigsetjmp(sched_jb_, 0) == 0) {
    asan_start_switch(&sched_asan_fake_stack_, p->stack_.usable_lo,
                      p->stack_.usable_size);
    siglongjmp(p->fiber_jb_, 1);
  }
  asan_finish_switch(sched_asan_fake_stack_, nullptr, nullptr);
  // With direct switching the fiber that finished is not necessarily the
  // one this frame resumed (control may have chained through several
  // processes before coming back); fiber_main leaves a note instead.
  if (last_finished_ != nullptr) {
    recycle_stack_locked(last_finished_);
    last_finished_ = nullptr;
  }
}

void Kernel::yield_from_process_locked(std::unique_lock<std::mutex>& lock,
                                       Process* p) {
  // While control is away the thread belongs to the scheduler (fiber
  // backend: same thread, possibly resuming a *different* process before
  // us); drop the thread-local and restore it on the way back in.
  tls_running_context = nullptr;
  if (backend_ == Backend::kThread) {
    current_ = nullptr;
    kernel_cv_.notify_one();
    p->cv_.wait(lock, [&] { return current_ == p; });
    tls_running_context = p->context_;
    return;
  }
  current_ = nullptr;
  // Direct-switch fast path: pop the next runnable right here, on the
  // yielding process's stack, and transfer control without bouncing
  // through the scheduler frame.  The pop is the very call the scheduler
  // loop would have made (same queue, same limit), so delivery order --
  // and therefore the determinism contract -- is untouched; only the
  // route control takes differs.
  Process* next = pop_runnable_locked(run_limit_);
  if (next == p) {
    // Self-wakeup (a lone sleeper, the ubiquitous benchmark and timer
    // pattern): nothing to switch to; just carry on.
    current_ = p;
    tls_running_context = p->context_;
    return;
  }
#ifndef ETHERGRID_ASAN
  // ASan builds skip fiber-to-fiber jumps: the switch annotations thread
  // the *scheduler's* stack bounds through every hop, and a direct jump
  // would corrupt them.  (The shims below are no-ops here.)
  if (next != nullptr && next->state_ != Process::State::kNew) {
    current_ = next;
    if (sigsetjmp(p->fiber_jb_, 0) == 0) {
      asan_start_switch(&p->asan_fake_stack_, next->stack_.usable_lo,
                        next->stack_.usable_size);
      siglongjmp(next->fiber_jb_, 1);
    }
    asan_finish_switch(p->asan_fake_stack_, &sched_stack_bottom_,
                       &sched_stack_size_);
    tls_running_context = p->context_;
    return;
  }
#endif
  // Scheduler-only cases: nothing runnable (end of drain), or a process
  // whose fiber must first be created.  The popped entry was consumed, so
  // park it for the scheduler loop to resume.
  pending_next_ = next;
  // Full-hold: the mutex is owned by the drain, not by `lock`; just jump.
  if (sigsetjmp(p->fiber_jb_, 0) == 0) {
    asan_start_switch(&p->asan_fake_stack_, sched_stack_bottom_,
                      sched_stack_size_);
    siglongjmp(sched_jb_, 1);
  }
  // Re-learn the scheduler's stack bounds on every entry: run() may be
  // driven from a different thread (hence stack) across calls.
  asan_finish_switch(p->asan_fake_stack_, &sched_stack_bottom_,
                     &sched_stack_size_);
  tls_running_context = p->context_;
}

inline Process* Kernel::pop_runnable_locked(TimePoint limit) {
  if (strategy_ != nullptr) return pop_runnable_strategy_locked(limit);
  internal::QueueEntry entry;
  while (true) {
    if (!raw_pop_due_locked(limit, &entry)) return nullptr;
    if (entry_stale(entry)) {
      assert((stale_wakeups_ > 0 || debug_kill_skips_invalidate_) &&
             "stale-wakeup underflow");
      if (stale_wakeups_ > 0) --stale_wakeups_;
      audit_accounting_locked();
      continue;
    }
    --entry.process->live_wakeups_;
    now_ = std::max(now_, entry.time);
    now_fast_.store(now_.time_since_epoch().count(),
                    std::memory_order_release);
    invalidate_wakeups_locked(entry.process);
    ++entry.process->wake_token_;  // consume: later same-token entries stale
    ++events_processed_;
    audit_accounting_locked();
    return entry.process;
  }
}

bool Kernel::raw_pop_due_locked(TimePoint limit, internal::QueueEntry* out) {
  if (queue_impl_ == QueueImpl::kWheel) {
    // The wheel drops stale entries it meets while draining slots; count
    // them off.  The entry it hands back may still be stale (it went
    // stale after reaching the ready heap), so callers recheck.
    std::size_t dropped = 0;
    const bool got = wheel_queue_.pop_due(
        limit, out,
        [](const internal::QueueEntry& e) { return entry_stale(e); },
        &dropped);
    assert((stale_wakeups_ >= dropped || debug_kill_skips_invalidate_) &&
           "stale-wakeup underflow");
    stale_wakeups_ -= std::min(dropped, stale_wakeups_);
    return got;
  }
  return heap_queue_.pop_due(limit, out);
}

void Kernel::repush_entry_locked(const internal::QueueEntry& entry) {
  // Raw re-insert: same (time, seq, token), no live_wakeups_ adjustment
  // (the strategy pop never decremented it) and no compaction trigger.  The
  // wheel routes t <= cursor straight to its ready heap, which restores the
  // (time, seq) total order, so a pop-inspect-repush round trip is
  // order-neutral.
  if (queue_impl_ == QueueImpl::kWheel) {
    wheel_queue_.push(entry);
  } else {
    heap_queue_.push(entry);
  }
}

Process* Kernel::pop_runnable_strategy_locked(TimePoint limit) {
  if (strategy_halt_) return nullptr;
  // Phase 1: pull every entry due at the earliest due instant, dropping
  // stale ones with the usual accounting.  The survivors, in seq order, are
  // the schedulable candidates.
  strategy_entries_.clear();
  internal::QueueEntry entry;
  while (true) {
    const TimePoint bound =
        strategy_entries_.empty() ? limit : strategy_entries_.front().time;
    if (!raw_pop_due_locked(bound, &entry)) break;
    if (entry_stale(entry)) {
      assert((stale_wakeups_ > 0 || debug_kill_skips_invalidate_) &&
             "stale-wakeup underflow");
      if (stale_wakeups_ > 0) --stale_wakeups_;
      continue;
    }
    strategy_entries_.push_back(entry);
  }
  if (strategy_entries_.empty()) return nullptr;
  // Put everything back before consulting the strategy: choose() and
  // on_transition() may run invariants that inspect the queue (accounting
  // checks, digests), which must see a consistent structure.
  for (const internal::QueueEntry& e : strategy_entries_) {
    repush_entry_locked(e);
  }
  audit_accounting_locked();
  // The candidate set is the distinct processes, each represented by its
  // first (lowest-seq) entry; index 0 is the default deterministic choice.
  // A process can hold several due entries (sleep target plus an event
  // pulse); delivery of the first invalidates the rest, exactly as in
  // normal operation.
  std::size_t chosen = 0;
  if (strategy_entries_.size() > 1) {
    strategy_labels_.clear();
    for (std::size_t i = 0; i < strategy_entries_.size(); ++i) {
      Process* p = strategy_entries_[i].process;
      bool seen = false;
      for (std::size_t j = 0; j < i && !seen; ++j) {
        seen = strategy_entries_[j].process == p;
      }
      if (seen) continue;
      strategy_labels_.push_back(p->name_ + "#" + std::to_string(p->id_));
    }
    if (strategy_labels_.size() > 1) {
      const mc::ChoicePoint cp{mc::ChoicePoint::Kind::kSchedule, "sched",
                               strategy_labels_};
      // Full-hold marker for the callback: invariant code re-entering the
      // kernel through const queries (live_process_count, queue_depth,
      // verify_queue_accounting) must get a non-owning lock on both
      // backends -- the thread backend's drain holds mu_ without setting
      // the marker, so set it for the callback's duration.
      MuHoldScope hold(this, true);
      chosen = strategy_->choose(cp);
      if (chosen >= strategy_labels_.size()) chosen = 0;
    }
  }
  // Map the chosen candidate index back to its first entry's seq.
  std::uint64_t want_seq = 0;
  {
    std::size_t distinct = 0;
    for (std::size_t i = 0; i < strategy_entries_.size(); ++i) {
      Process* p = strategy_entries_[i].process;
      bool seen = false;
      for (std::size_t j = 0; j < i && !seen; ++j) {
        seen = strategy_entries_[j].process == p;
      }
      if (seen) continue;
      if (distinct == chosen) {
        want_seq = strategy_entries_[i].seq;
        break;
      }
      ++distinct;
    }
  }
  const TimePoint due = strategy_entries_.front().time;
  // Phase 2: pop until the chosen entry surfaces, holding skipped live
  // entries aside (re-pushing them immediately would hand them right back
  // to the next pop) and restoring them afterwards.
  strategy_entries_.clear();
  bool found = false;
  while (raw_pop_due_locked(due, &entry)) {
    if (entry_stale(entry)) {
      if (stale_wakeups_ > 0) --stale_wakeups_;
      continue;
    }
    if (entry.seq == want_seq) {
      found = true;
      break;
    }
    strategy_entries_.push_back(entry);
  }
  for (const internal::QueueEntry& e : strategy_entries_) {
    repush_entry_locked(e);
  }
  assert(found && "strategy candidate vanished between phases");
  if (!found) return nullptr;
  // Standard delivery bookkeeping, identical to the non-strategy path.
  --entry.process->live_wakeups_;
  now_ = std::max(now_, entry.time);
  now_fast_.store(now_.time_since_epoch().count(),
                  std::memory_order_release);
  invalidate_wakeups_locked(entry.process);
  ++entry.process->wake_token_;
  ++events_processed_;
  audit_accounting_locked();
  bool keep_going = true;
  {
    MuHoldScope hold(this, true);
    keep_going = strategy_->on_transition();
  }
  if (!keep_going) {
    // Sticky halt: the drain (and the yield-side fast path) stop delivering
    // until the strategy is replaced or removed.  The popped entry still
    // runs -- its process must unwind -- but nothing is scheduled after it.
    strategy_halt_ = true;
  }
  return entry.process;
}

void Kernel::drain_locked(std::unique_lock<std::mutex>& lock,
                          TimePoint limit) {
  run_limit_ = limit;  // the yield-side fast path pops against this
  while (true) {
    // A direct-switch bounce may have parked an already-popped process
    // here (first run: its fiber does not exist yet); it goes first --
    // its queue entry was already consumed.
    Process* p = pending_next_;
    if (p != nullptr) {
      pending_next_ = nullptr;
    } else {
      p = pop_runnable_locked(limit);
      if (p == nullptr) break;
    }
    resume_locked(lock, p);
    if (pending_error_ && propagate_errors_) {
      std::exception_ptr error = pending_error_;
      pending_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
}

void Kernel::run() {
  std::unique_lock<std::mutex> lock(mu_);
  MuHoldScope hold(this, backend_ == Backend::kFiber);
  drain_locked(lock, TimePoint::max());
}

bool Kernel::run_until(TimePoint t) {
  std::unique_lock<std::mutex> lock(mu_);
  MuHoldScope hold(this, backend_ == Backend::kFiber);
  drain_locked(lock, t);
  now_ = std::max(now_, t);
  now_fast_.store(now_.time_since_epoch().count(),
                  std::memory_order_release);
  if (queue_impl_ == QueueImpl::kHeap) {
    // Purge stale entries off the front so the oracle's observable
    // queue_depth matches its historical behavior.
    internal::QueueEntry entry;
    while (!heap_queue_.empty() && entry_stale(heap_queue_.front())) {
      heap_queue_.pop_due(TimePoint::max(), &entry);
      assert((stale_wakeups_ > 0 || debug_kill_skips_invalidate_) &&
             "stale-wakeup underflow");
      if (stale_wakeups_ > 0) --stale_wakeups_;
      audit_accounting_locked();
    }
    return !heap_queue_.empty();
  }
  // Exact lazy-cancellation accounting makes "any real pending work?" pure
  // arithmetic -- no purge loop.  (Everything stale at or before t was
  // already dropped while draining; what remains stale is far-future and
  // incremental compaction's job.)
  assert((wheel_queue_.size() >= stale_wakeups_ ||
          debug_kill_skips_invalidate_) &&
         "stale-wakeup underflow");
  return wheel_queue_.size() > stale_wakeups_;
}

std::size_t Kernel::live_process_count() const {
  const auto lock = lock_self();
  return live_processes_;
}

std::vector<std::string> Kernel::live_process_names() const {
  const auto lock = lock_self();
  std::vector<std::string> names;
  for (const ProcessHandle& p : processes_) {
    if (p->state_ != Process::State::kFinished) {
      names.push_back(p->name_ + "#" + std::to_string(p->id_));
    }
  }
  return names;
}

void Kernel::set_strategy(mc::Strategy* strategy) {
  const auto lock = lock_self();
  strategy_ = strategy;
  strategy_halt_ = false;
}

mc::Strategy* Kernel::strategy() const {
  const auto lock = lock_self();
  return strategy_;
}

std::uint64_t Kernel::state_digest() const {
  const auto lock = lock_self();
  // FNV-1a for the ordered part (clock), plus an order-insensitive sum of
  // per-item hashes for the sets (queue iteration order differs between the
  // wheel and the heap, and across compaction points, for identical states).
  const auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull;
    h *= 0x100000001b3ull;
    return h;
  };
  std::uint64_t digest = 0xcbf29ce484222325ull;
  digest = mix(digest, static_cast<std::uint64_t>(
                           now_.time_since_epoch().count()));
  std::uint64_t processes_sum = 0;
  for (const ProcessHandle& p : processes_) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = mix(h, p->id_);
    h = mix(h, static_cast<std::uint64_t>(p->state_));
    h = mix(h, p->killed_ ? 1 : 0);
    processes_sum += h;
  }
  digest = mix(digest, processes_sum);
  std::uint64_t queue_sum = 0;
  auto add_entry = [&](const internal::QueueEntry& e) {
    if (entry_stale(e)) return;  // stale entries are not state
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = mix(h, static_cast<std::uint64_t>(e.time.time_since_epoch().count()));
    h = mix(h, e.process->id_);
    queue_sum += h;
  };
  if (queue_impl_ == QueueImpl::kWheel) {
    wheel_queue_.for_each(add_entry);
  } else {
    heap_queue_.for_each(add_entry);
  }
  digest = mix(digest, queue_sum);
  return digest;
}

std::size_t Kernel::queue_depth() const {
  const auto lock = lock_self();
  return queue_size_locked();
}

TimePoint Kernel::next_live_event_time() const {
  const auto lock = lock_self();
  TimePoint min = TimePoint::max();
  auto visit = [&](const internal::QueueEntry& e) {
    if (!entry_stale(e) && e.time < min) min = e.time;
  };
  if (queue_impl_ == QueueImpl::kWheel) {
    wheel_queue_.for_each(visit);
  } else {
    heap_queue_.for_each(visit);
  }
  return min;
}

std::uint64_t Kernel::events_processed() const {
  const auto lock = lock_self();
  return events_processed_;
}

Context* Kernel::current_context() const {
  // Fast path: a thread-local hit means the caller *is* the process this
  // kernel is currently running -- no lock needed.  The kernel check keeps
  // nested/multiple kernels honest; a miss (foreign kernel, scheduler
  // thread, plain caller thread) falls back to the locked read.
  Context* ctx = tls_running_context;
  if (ctx != nullptr && ctx->kernel_ == this) return ctx;
  const auto lock = lock_self();
  return current_ ? current_->context_ : nullptr;
}

}  // namespace ethergrid::sim
