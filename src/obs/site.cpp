#include "obs/site.hpp"

#include <deque>
#include <map>
#include <mutex>
#include <string>

namespace ethergrid::obs {
namespace {

// Names are stored in a deque so views handed out by site_name() stay valid
// as the registry grows.  The map's std::less<> comparator gives
// heterogeneous lookup, so probing with a string_view never allocates.
struct Registry {
  std::mutex mu;
  std::deque<std::string> names;
  std::map<std::string, SiteId, std::less<>> ids;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: ids live forever by design
  return *r;
}

}  // namespace

SiteId intern_site(std::string_view name) {
  if (name.empty()) return kSiteNone;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.ids.find(name);
  if (it != r.ids.end()) return it->second;
  r.names.emplace_back(name);
  const SiteId id = static_cast<SiteId>(r.names.size());  // ids start at 1
  r.ids.emplace(r.names.back(), id);
  return id;
}

std::string_view site_name(SiteId id) {
  if (id == kSiteNone) return {};
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (id > r.names.size()) return {};
  return r.names[id - 1];
}

}  // namespace ethergrid::obs
