// SiteRegistry: process-wide interning of emission-site names.
//
// Every ObsEvent used to carry its site ("schedd.submit", "forall.table")
// as a std::string, which meant one heap allocation per emission even for
// sites whose names never change.  The registry assigns each distinct name
// a small stable id once; emitters hold the id (usually resolved a single
// time, at construction or in a function-local static) and the export-side
// consumers resolve it back to the name only when rendering.
//
// Ids are process-global and assigned in interning order, so they are NOT
// part of any determinism contract -- exporters must always resolve ids to
// names before serializing.  Interned names live for the process lifetime;
// the expected population is a few dozen static sites plus a bounded set of
// dynamic ones (one per file server, one per `try` line).
#pragma once

#include <cstdint>
#include <string_view>

namespace ethergrid::obs {

// 0 is reserved for "no site".
using SiteId = std::uint32_t;
inline constexpr SiteId kSiteNone = 0;

// Returns the id for `name`, interning it on first use.  Thread-safe.
// Calling with an empty name returns kSiteNone.
SiteId intern_site(std::string_view name);

// Resolves an id back to its name.  kSiteNone and unknown ids resolve to
// the empty string.  The returned view is valid for the process lifetime.
std::string_view site_name(SiteId id);

}  // namespace ethergrid::obs
