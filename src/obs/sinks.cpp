#include "obs/sinks.hpp"

#include "util/strings.hpp"

namespace ethergrid::obs {

void XTraceObserver::on_span_begin(const Span& span) {
  if (span.kind != SpanKind::kCommand || !sink_) return;
  // span.detail carries the expanded argv (see Interpreter::eval_command).
  std::string line;
  line.reserve(span.detail.size() + 3);
  line += "+ ";
  line += span.detail;
  line += '\n';
  sink_(line);
}

void LoggerObserver::on_span_end(const Span& span) {
  if (!logger_ || span.status.ok()) return;
  switch (span.kind) {
    case SpanKind::kCommand:
      logger_->log(LogLevel::kInfo, span.end, "ftsh",
                   strprintf("command '%s' failed: %s",
                             std::string(span.name).c_str(),
                             span.status.to_string().c_str()));
      break;
    case SpanKind::kTry:
      logger_->log(LogLevel::kDebug, span.end, "ftsh",
                   strprintf("try at line %d: failure after %d attempt(s), "
                             "%s backing off",
                             span.line, span.attempts,
                             format_duration(span.backoff).c_str()));
      break;
    default:
      break;
  }
}

void LoggerObserver::on_event(const ObsEvent& event) {
  if (!logger_) return;
  if (event.kind == ObsEvent::Kind::kFault ||
      event.kind == ObsEvent::Kind::kCrash) {
    std::string message(obs_event_kind_name(event.kind));
    if (!event.detail.empty()) {
      message += ": ";
      message += event.detail;
    }
    logger_->log(LogLevel::kWarn, event.time,
                 std::string(site_name(event.site)), message);
  }
}

void LoggerObserver::on_log(const ObsLogLine& line) {
  if (!logger_) return;
  logger_->log(static_cast<LogLevel>(line.level), line.time, line.component,
               line.message);
}

}  // namespace ethergrid::obs
