// MetricsRegistry: named counters and histograms fed by the Observer
// callbacks, exported as flat JSON for bench/report and post-run summaries.
//
// Where the TraceRecorder answers "what did attempt 3 of this try actually
// wait on", the registry answers the aggregate questions the paper's
// evaluation section asks: how many attempts did the workload burn, what
// did the backoff delay distribution look like, how occupied were the
// forall lanes, how long did kills take to land.
//
// A registry is itself an Observer, pre-wired to derive the standard
// metrics from span ends and point events:
//   counters:   spans.<kind>, spans.<kind>.failed, events.<event-kind>,
//               commands.attempts
//   histograms: backoff_delay_s, command_duration_s, try_attempts,
//               forall_occupancy, kill_latency_s
// Callers may also bump arbitrary counters / record arbitrary samples by
// name; unknown names simply materialize.
//
// Export is deterministic: names are sorted, numbers render through the
// same fixed formatter as the trace exporter.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/observer.hpp"

namespace ethergrid::obs {

// Fixed-bucket log-scale histogram.  Buckets are powers of two starting at
// `base`; sample i lands in the first bucket whose upper bound covers it.
// Cheap, deterministic, and good enough for the decade-spanning
// distributions backoff produces (20 ms .. minutes).
class Histogram {
 public:
  void record(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  double mean() const { return count_ ? sum_ / count_ : 0; }
  // Upper-bound estimate of the q-quantile (0 <= q <= 1) from the bucket
  // boundaries; exact for min/max degenerate cases.
  double quantile(double q) const;

  // {"count":N,"sum":S,"min":m,"max":M,"p50":...,"p95":...,"p99":...}
  std::string to_json() const;

 private:
  static constexpr int kBuckets = 64;
  static int bucket_for(double value);

  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::uint64_t buckets_[kBuckets] = {};
};

class MetricsRegistry final : public Observer {
 public:
  MetricsRegistry() = default;

  // Manual instrumentation.
  void add(const std::string& name, double delta = 1);
  void record(const std::string& name, double value);

  double counter(const std::string& name) const;
  const Histogram* histogram(const std::string& name) const;

  // --- Observer interface: derives the standard metrics ---
  void on_span_end(const Span& span) override;
  void on_event(const ObsEvent& event) override;

  // One flat JSON object: {"counters":{...},"histograms":{...}} with
  // sorted keys.
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ethergrid::obs
