// MetricsRegistry: named counters and histograms fed by the Observer
// callbacks, exported as flat JSON for bench/report and post-run summaries.
//
// Where the TraceRecorder answers "what did attempt 3 of this try actually
// wait on", the registry answers the aggregate questions the paper's
// evaluation section asks: how many attempts did the workload burn, what
// did the backoff delay distribution look like, how occupied were the
// forall lanes, how long did kills take to land.
//
// A registry is itself an Observer, pre-wired to derive the standard
// metrics from span ends and point events:
//   counters:   spans.<kind>, spans.<kind>.failed, events.<event-kind>,
//               commands.attempts
//   histograms: backoff_delay_s, command_duration_us, try_attempts,
//               forall_occupancy, kill_latency_s
// The derived counters live in enum-indexed atomic slots and the derived
// histograms record lock-free, so the span/event fast path is a handful of
// relaxed atomic adds -- no map lookup, no string build, no lock.  The
// registry mutex only guards the manual-metric maps.  Durations are
// recorded in the clock's native microseconds (command_duration_us,
// process_duration_us): sub-second commands used to round to 0 through
// a premature seconds conversion.
//
// Callers may also bump arbitrary counters / record arbitrary samples by
// name; unknown names simply materialize.  For hot manual counters,
// resolve a Counter handle once and bump it with a single atomic add.
//
// Export is deterministic: names are sorted, numbers render through the
// same fixed formatter as the trace exporter.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/observer.hpp"

namespace ethergrid::obs {

// Fixed-bucket log-scale histogram.  Buckets are powers of two starting at
// `base`; sample i lands in the first bucket whose upper bound covers it.
// Cheap, deterministic, and good enough for the decade-spanning
// distributions backoff produces (20 ms .. minutes).
//
// record() is lock-free: relaxed atomic adds plus an improve-only CAS for
// min/max (a single relaxed load once the extremes settle).  That keeps
// the registry's span fast path mutex-free.  Readers take relaxed
// snapshots, so a reader racing a writer may see the fields mid-update --
// exports happen after the run, where the counts are quiescent.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const {
    return count() ? min_.load(std::memory_order_relaxed) : 0;
  }
  double max() const {
    return count() ? max_.load(std::memory_order_relaxed) : 0;
  }
  double mean() const {
    const auto n = count();
    return n ? sum() / double(n) : 0;
  }
  // Upper-bound estimate of the q-quantile (0 <= q <= 1) from the bucket
  // boundaries; exact for min/max degenerate cases.
  double quantile(double q) const;

  // {"count":N,"sum":S,"min":m,"max":M,"p50":...,"p95":...,"p99":...}
  std::string to_json() const;

 private:
  static constexpr int kBuckets = 64;
  static int bucket_for(double value);

  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  // +/-inf sentinels make the improve-only CAS correct from the first
  // sample; the accessors report 0 while count_ == 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

class MetricsRegistry final : public Observer {
 public:
  MetricsRegistry() = default;

  // A pre-resolved manual counter: one relaxed atomic add per bump, no
  // name lookup.  Cells live as long as the registry; a default-constructed
  // handle is a safe no-op.
  class Counter {
   public:
    Counter() = default;
    void add(double delta = 1) {
      if (cell_ != nullptr) cell_->fetch_add(delta, std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    explicit Counter(std::atomic<double>* cell) : cell_(cell) {}
    std::atomic<double>* cell_ = nullptr;
  };

  // Resolves (creating if needed) the cell for `name`.  Do this once at
  // setup time, then bump the handle from the hot path.
  Counter counter_handle(std::string_view name);

  // Manual instrumentation (cold path: one map lookup per call).
  void add(std::string_view name, double delta = 1);
  void record(std::string_view name, double value);

  // Reads merge the derived slots with any same-named manual cell.
  double counter(std::string_view name) const;
  const Histogram* histogram(std::string_view name) const;

  // --- Observer interface: derives the standard metrics ---
  void on_span_end(const Span& span) override;
  void on_event(const ObsEvent& event) override;

  // One flat JSON object: {"counters":{...},"histograms":{...}} with
  // sorted keys.
  std::string to_json() const;

 private:
  struct Cell {
    std::string name;
    std::atomic<double> value{0};
  };

  std::atomic<double>* cell_for(std::string_view name);
  // Derived-slot value for `name`, or 0 if `name` is not a derived counter.
  double derived_counter(std::string_view name) const;
  const Histogram* fixed_histogram(std::string_view name) const;

  // Derived counters: enum-indexed relaxed atomics (the emission fast path).
  // commands.attempts is an alias read of spans.command, not its own slot.
  std::atomic<std::uint64_t> span_counts_[kSpanKindCount] = {};
  std::atomic<std::uint64_t> span_failed_[kSpanKindCount] = {};
  std::atomic<std::uint64_t> event_counts_[kObsEventKindCount] = {};
  std::atomic<std::uint64_t> carrier_deferred_{0};

  mutable std::mutex mu_;  // guards the manual-cell and histogram maps only
  // Derived histograms (fixed members: no map lookup on the sample path).
  Histogram command_duration_us_;
  Histogram process_duration_us_;
  Histogram try_attempts_;
  Histogram try_backoff_total_s_;
  Histogram forall_branches_;
  Histogram backoff_delay_s_;
  Histogram forall_occupancy_;
  Histogram kill_latency_s_;
  // Manual metrics.  Cells sit in a deque so handles stay valid forever.
  std::deque<Cell> cells_;
  std::map<std::string, Cell*, std::less<>> cell_index_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace ethergrid::obs
