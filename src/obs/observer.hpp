// The unified observability layer: one Observer interface feeding every
// back channel.
//
// The paper's central debugging claim (section 4) is that *untyped* failure
// plus a rich back channel is what makes the Ethernet discipline usable.
// Before this layer, that back channel was fragmented: a Logger here, an
// AuditLog there, ad-hoc stdout/stderr sinks, an x-trace flag.  Now every
// producer -- interpreter, executors, grid substrates, fault injector --
// emits through one interface:
//
//  * spans: begin/end pairs with virtual (or wall) timestamps forming the
//    script -> statement -> try-attempt -> command -> process hierarchy;
//  * point events: backoff decisions, carrier-sense probes, collisions,
//    process-table-full deferrals, fault-injection hits, kills;
//  * streams: uncaptured command stdout/stderr;
//  * logs: the free-text diagnostic channel.
//
// Consumers implement Observer: TraceRecorder (Perfetto/Chrome JSON export),
// MetricsRegistry (counters + histograms), shell::AuditLog (per-site
// aggregates), plus small adapters for streams, x-trace, and Logger
// bridging.  An ObserverSet composes any number of them behind one pointer,
// so the no-observer hot path is a single null check.
//
// Emission is allocation-free by design: span names/details are
// string_views into storage the emitter keeps alive from begin_span through
// end_span, and event sites are interned SiteIds (obs/site.hpp).  Observers
// that need the payload beyond the synchronous callback must copy it.
//
// Determinism contract: spans are timestamped by the emitting executor's
// core::Clock and ids are assigned in emission order.  Because the sim
// kernel schedules processes identically on both backends, a fixed seed
// yields byte-identical trace exports under fibers and threads alike.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/site.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace ethergrid::obs {

// Where in the script -> process hierarchy a span sits.
enum class SpanKind {
  kScript,      // one whole Interpreter::run
  kStatement,   // a compound statement not covered by a specific kind below
  kTry,         // one try/catch construct (all attempts + backoff)
  kTryAttempt,  // one attempt inside a try's retry loop
  kForany,      // sequential alternatives to first success
  kForall,      // parallel alternatives, abort on first failure
  kCommand,     // one external command execution
  kProcess,     // an OS process (POSIX) or simulated forall branch
  kFunction,    // an ftsh function call frame
};

inline constexpr int kSpanKindCount = 9;

std::string_view span_kind_name(SpanKind kind);

// One span.  The emitter fills the descriptive fields, calls
// ObserverSet::begin_span (which assigns `id`), mutates the end-side fields
// as the work concludes, and calls ObserverSet::end_span.  The same struct
// is passed to both callbacks so simple observers can ignore begins.
//
// `name` and `detail` are views: the emitter must keep the referenced
// storage alive and unchanged from begin_span until end_span returns.
struct Span {
  std::uint64_t id = 0;      // assigned by ObserverSet::begin_span
  std::uint64_t parent = 0;  // enclosing span id; 0 = root
  SpanKind kind = SpanKind::kScript;
  std::string_view name;     // command name / construct summary
  std::string_view detail;   // expanded argv, budgets, pid, ...
  int line = 0;              // script line, when known
  std::uint64_t track = 0;   // render lane (forall branch / process id)
  TimePoint start{};
  // End-side fields; meaningful only in on_span_end.
  TimePoint end{};
  Status status;
  int attempts = 0;          // try spans: attempts consumed
  Duration backoff{};        // try spans: total time spent backing off
};

// A point-in-time occurrence on the back channel.  `site` is an interned
// id (resolve with site_name()); `detail` is a view valid only during the
// synchronous callback.
struct ObsEvent {
  enum class Kind {
    kBackoff,       // a backoff delay was chosen; value = delay seconds
    kCarrierSense,  // a carrier-sense probe; value = 1 clear, 0 deferred
    kCollision,     // a collision (ENOSPC, reset, 60 s stall, jam)
    kTableFull,     // process/fd table full at an allocation attempt
    kFault,         // an injected fault fired (chaos harness)
    kKill,          // forcible termination; value = kill latency seconds
    kCrash,         // whole-component failure (the schedd's broadcast jam)
    kOccupancy,     // forall branch occupancy; value = branches in flight
    kFlowShare,     // fluid substrate re-share; value = unit-flow share
                    // as a fraction of capacity
    kReservationGrant,   // reservation admitted; value = granted rate
    kReservationReject,  // reservation refused; value = requested bytes
  };

  Kind kind = Kind::kCollision;
  TimePoint time{};
  std::uint64_t span = 0;    // enclosing span id, when known
  SiteId site = kSiteNone;   // emitting site ("schedd.submit", "forall", ...)
  std::string_view detail;   // human-readable parameters
  double value = 0;
};

inline constexpr int kObsEventKindCount = 11;

std::string_view obs_event_kind_name(ObsEvent::Kind kind);

// Which output stream a chunk of command output belongs to.
enum class StreamKind { kStdout, kStderr };

// A log line on the diagnostic back channel (mirrors util Logger levels so
// observers can bridge without depending on util/log.hpp level semantics).
// Log lines are off the hot path, so they keep owning strings.
struct ObsLogLine {
  int level = 0;  // LogLevel numeric value
  TimePoint time{};
  std::string component;
  std::string message;
};

// The single-sink interface.  All callbacks default to no-ops so observers
// implement only what they consume.  Callbacks are invoked synchronously on
// the emitting thread; implementations must do their own locking (the sim
// kernel serializes processes, but the POSIX executor emits from forall
// branch threads concurrently).
class Observer {
 public:
  virtual ~Observer() = default;

  virtual void on_span_begin(const Span& span) { (void)span; }
  virtual void on_span_end(const Span& span) { (void)span; }
  virtual void on_event(const ObsEvent& event) { (void)event; }
  virtual void on_output(StreamKind stream, std::string_view text) {
    (void)stream;
    (void)text;
  }
  virtual void on_log(const ObsLogLine& line) { (void)line; }
};

// Fan-out composition: every registered observer sees every emission, in
// registration order.  Also the span-id allocator, so ids are unique per
// set and assigned in (deterministic) emission order.
//
// Emitters hold an `ObserverSet*` that is nullptr when observability is
// off; the hot path is `if (observers_) observers_->...` -- one null check,
// nothing else.
//
// Emission never allocates or takes mu_: members live in a fixed slot
// array published with release stores and walked with an acquire load, and
// span ids come from a relaxed fetch_add.  add()/remove() still serialize
// on mu_; observers added mid-run become visible to subsequent emissions,
// but remove() only unpublishes the pointer -- it must not race in-flight
// emissions that could still be walking the array (Session tears down
// observers only after the run completes).
class ObserverSet final : public Observer {
 public:
  ObserverSet() = default;

  // Registers an observer (not owned; must outlive the set's emissions).
  // Throws std::length_error beyond kMaxObservers members.
  void add(Observer* observer);
  void remove(Observer* observer);

  bool empty() const;
  std::size_t size() const;

  // Assigns span.id (and stamps nothing else), then fans out
  // on_span_begin.  Returns the id for convenience.
  std::uint64_t begin_span(Span& span);
  // Fans out on_span_end; the caller has filled the end-side fields.
  void end_span(const Span& span);

  // --- Observer interface (fan-out) ---
  void on_span_begin(const Span& span) override;
  void on_span_end(const Span& span) override;
  void on_event(const ObsEvent& event) override;
  void on_output(StreamKind stream, std::string_view text) override;
  void on_log(const ObsLogLine& line) override;

  static constexpr std::size_t kMaxObservers = 16;

 private:
  mutable std::mutex mu_;  // serializes add/remove only
  std::array<std::atomic<Observer*>, kMaxObservers> members_{};
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> next_span_id_{0};
};

}  // namespace ethergrid::obs
