#include "obs/observer.hpp"

#include <stdexcept>

namespace ethergrid::obs {

std::string_view span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kScript:
      return "script";
    case SpanKind::kStatement:
      return "statement";
    case SpanKind::kTry:
      return "try";
    case SpanKind::kTryAttempt:
      return "attempt";
    case SpanKind::kForany:
      return "forany";
    case SpanKind::kForall:
      return "forall";
    case SpanKind::kCommand:
      return "command";
    case SpanKind::kProcess:
      return "process";
    case SpanKind::kFunction:
      return "function";
  }
  return "?";
}

std::string_view obs_event_kind_name(ObsEvent::Kind kind) {
  switch (kind) {
    case ObsEvent::Kind::kBackoff:
      return "backoff";
    case ObsEvent::Kind::kCarrierSense:
      return "carrier-sense";
    case ObsEvent::Kind::kCollision:
      return "collision";
    case ObsEvent::Kind::kTableFull:
      return "table-full";
    case ObsEvent::Kind::kFault:
      return "fault";
    case ObsEvent::Kind::kKill:
      return "kill";
    case ObsEvent::Kind::kCrash:
      return "crash";
    case ObsEvent::Kind::kOccupancy:
      return "occupancy";
    case ObsEvent::Kind::kFlowShare:
      return "flow_share";
    case ObsEvent::Kind::kReservationGrant:
      return "reservation_grant";
    case ObsEvent::Kind::kReservationReject:
      return "reservation_reject";
  }
  return "?";
}

// add() publishes the pointer with a release store before bumping count_
// (also release), so an emitter that observes the new count via acquire is
// guaranteed to see the pointer.  remove() compacts the array under mu_;
// concurrent emitters may transiently see a member twice or miss the
// removed one, which is why removal mid-emission is documented as a
// caller-side ordering obligation (Session removes only post-run).
void ObserverSet::add(Observer* observer) {
  if (observer == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = count_.load(std::memory_order_relaxed);
  if (n >= kMaxObservers) {
    throw std::length_error("ObserverSet: too many observers");
  }
  members_[n].store(observer, std::memory_order_release);
  count_.store(n + 1, std::memory_order_release);
}

void ObserverSet::remove(Observer* observer) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = count_.load(std::memory_order_relaxed);
  std::size_t w = 0;
  for (std::size_t r = 0; r < n; ++r) {
    Observer* o = members_[r].load(std::memory_order_relaxed);
    if (o == observer) continue;
    members_[w++].store(o, std::memory_order_release);
  }
  count_.store(w, std::memory_order_release);
}

bool ObserverSet::empty() const {
  return count_.load(std::memory_order_acquire) == 0;
}

std::size_t ObserverSet::size() const {
  return count_.load(std::memory_order_acquire);
}

std::uint64_t ObserverSet::begin_span(Span& span) {
  span.id = next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  on_span_begin(span);
  return span.id;
}

void ObserverSet::end_span(const Span& span) { on_span_end(span); }

void ObserverSet::on_span_begin(const Span& span) {
  const std::size_t n = count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    members_[i].load(std::memory_order_relaxed)->on_span_begin(span);
  }
}

void ObserverSet::on_span_end(const Span& span) {
  const std::size_t n = count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    members_[i].load(std::memory_order_relaxed)->on_span_end(span);
  }
}

void ObserverSet::on_event(const ObsEvent& event) {
  const std::size_t n = count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    members_[i].load(std::memory_order_relaxed)->on_event(event);
  }
}

void ObserverSet::on_output(StreamKind stream, std::string_view text) {
  const std::size_t n = count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    members_[i].load(std::memory_order_relaxed)->on_output(stream, text);
  }
}

void ObserverSet::on_log(const ObsLogLine& line) {
  const std::size_t n = count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    members_[i].load(std::memory_order_relaxed)->on_log(line);
  }
}

}  // namespace ethergrid::obs
