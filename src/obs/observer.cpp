#include "obs/observer.hpp"

#include <algorithm>

namespace ethergrid::obs {

std::string_view span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kScript:
      return "script";
    case SpanKind::kStatement:
      return "statement";
    case SpanKind::kTry:
      return "try";
    case SpanKind::kTryAttempt:
      return "attempt";
    case SpanKind::kForany:
      return "forany";
    case SpanKind::kForall:
      return "forall";
    case SpanKind::kCommand:
      return "command";
    case SpanKind::kProcess:
      return "process";
    case SpanKind::kFunction:
      return "function";
  }
  return "?";
}

std::string_view obs_event_kind_name(ObsEvent::Kind kind) {
  switch (kind) {
    case ObsEvent::Kind::kBackoff:
      return "backoff";
    case ObsEvent::Kind::kCarrierSense:
      return "carrier-sense";
    case ObsEvent::Kind::kCollision:
      return "collision";
    case ObsEvent::Kind::kTableFull:
      return "table-full";
    case ObsEvent::Kind::kFault:
      return "fault";
    case ObsEvent::Kind::kKill:
      return "kill";
    case ObsEvent::Kind::kCrash:
      return "crash";
    case ObsEvent::Kind::kOccupancy:
      return "occupancy";
  }
  return "?";
}

void ObserverSet::add(Observer* observer) {
  if (observer == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  members_.push_back(observer);
}

void ObserverSet::remove(Observer* observer) {
  std::lock_guard<std::mutex> lock(mu_);
  members_.erase(std::remove(members_.begin(), members_.end(), observer),
                 members_.end());
}

bool ObserverSet::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return members_.empty();
}

std::size_t ObserverSet::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return members_.size();
}

std::uint64_t ObserverSet::begin_span(Span& span) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    span.id = ++next_span_id_;
  }
  on_span_begin(span);
  return span.id;
}

void ObserverSet::end_span(const Span& span) { on_span_end(span); }

// Fan-out copies the member list under the lock, then dispatches unlocked:
// observers may themselves take locks (TraceRecorder, MetricsRegistry) and
// holding mu_ across the callbacks would order those locks behind ours for
// no benefit.  Membership changes mid-run are rare (Session sets everything
// up before run_source) and need not be seen by in-flight emissions.
void ObserverSet::on_span_begin(const Span& span) {
  std::vector<Observer*> members;
  {
    std::lock_guard<std::mutex> lock(mu_);
    members = members_;
  }
  for (Observer* o : members) o->on_span_begin(span);
}

void ObserverSet::on_span_end(const Span& span) {
  std::vector<Observer*> members;
  {
    std::lock_guard<std::mutex> lock(mu_);
    members = members_;
  }
  for (Observer* o : members) o->on_span_end(span);
}

void ObserverSet::on_event(const ObsEvent& event) {
  std::vector<Observer*> members;
  {
    std::lock_guard<std::mutex> lock(mu_);
    members = members_;
  }
  for (Observer* o : members) o->on_event(event);
}

void ObserverSet::on_output(StreamKind stream, std::string_view text) {
  std::vector<Observer*> members;
  {
    std::lock_guard<std::mutex> lock(mu_);
    members = members_;
  }
  for (Observer* o : members) o->on_output(stream, text);
}

void ObserverSet::on_log(const ObsLogLine& line) {
  std::vector<Observer*> members;
  {
    std::lock_guard<std::mutex> lock(mu_);
    members = members_;
  }
  for (Observer* o : members) o->on_log(line);
}

}  // namespace ethergrid::obs
