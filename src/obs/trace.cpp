#include "obs/trace.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <utility>

namespace ethergrid::obs {
namespace {

std::int64_t to_micros(TimePoint t) { return t.time_since_epoch().count(); }

void append_kv(std::string* out, std::string_view key, std::string_view value) {
  out->append(out->empty() ? "\"" : ",\"");
  out->append(key);
  out->append("\":\"");
  out->append(json_escape(value));
  out->push_back('"');
}

void append_kv_num(std::string* out, std::string_view key, double value) {
  out->append(out->empty() ? "\"" : ",\"");
  out->append(key);
  out->append("\":");
  out->append(json_number(value));
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  if (value == static_cast<double>(static_cast<std::int64_t>(value))) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  std::string out = buf;
  while (!out.empty() && out.back() == '0') out.pop_back();
  if (!out.empty() && out.back() == '.') out.pop_back();
  return out;
}

TraceRecorder::TraceRecorder(std::string process_name)
    : process_name_(std::move(process_name)) {}

// Begins are not serialized -- the complete ("X") entry carries start and
// duration and is appended at end time, which is when status/attempts are
// known.  Only the counter moves here.
void TraceRecorder::on_span_begin(const Span& span) {
  (void)span;
  std::lock_guard<std::mutex> lock(mu_);
  ++spans_;
}

void TraceRecorder::on_span_end(const Span& span) {
  Entry e;
  e.id = span.id;
  e.track = span.track;
  e.ts = to_micros(span.start);
  e.dur = to_micros(span.end) - to_micros(span.start);
  if (e.dur < 0) e.dur = 0;
  e.name = std::string(span_kind_name(span.kind));
  if (!span.name.empty()) {
    e.name += ": ";
    e.name += span.name;
  }
  std::string args;
  append_kv_num(&args, "span", static_cast<double>(span.id));
  if (span.parent != 0) {
    append_kv_num(&args, "parent", static_cast<double>(span.parent));
  }
  if (span.line != 0) append_kv_num(&args, "line", span.line);
  append_kv(&args, "status",
            span.status.ok() ? "OK" : status_code_name(span.status.code()));
  if (span.status.failed() && !span.status.message().empty()) {
    append_kv(&args, "error", span.status.message());
  }
  if (span.attempts != 0) append_kv_num(&args, "attempts", span.attempts);
  if (span.backoff.count() != 0) {
    append_kv_num(&args, "backoff_s", to_seconds(span.backoff));
  }
  if (!span.detail.empty()) append_kv(&args, "detail", span.detail);
  e.args = std::move(args);

  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(e));
}

void TraceRecorder::on_event(const ObsEvent& event) {
  Entry e;
  e.instant = true;
  e.id = event.span;
  e.track = 0;
  e.ts = to_micros(event.time);
  e.name = std::string(obs_event_kind_name(event.kind));
  if (!event.site.empty()) {
    e.name += ": ";
    e.name += event.site;
  }
  std::string args;
  if (event.span != 0) {
    append_kv_num(&args, "span", static_cast<double>(event.span));
  }
  if (event.value != 0) append_kv_num(&args, "value", event.value);
  if (!event.detail.empty()) append_kv(&args, "detail", event.detail);
  e.args = std::move(args);

  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(e));
  ++events_;
}

std::size_t TraceRecorder::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[\n";
  out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"";
  out += json_escape(process_name_);
  out += "\"}}";
  // Name each lane that appears, in sorted order for stable output.
  std::set<std::uint64_t> tracks;
  for (const Entry& e : entries_) tracks.insert(e.track);
  for (std::uint64_t track : tracks) {
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += json_number(static_cast<double>(track));
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    out += track == 0 ? "main" : "lane " + json_number(static_cast<double>(track));
    out += "\"}}";
  }
  for (const Entry& e : entries_) {
    out += ",\n{\"ph\":\"";
    out += e.instant ? 'i' : 'X';
    out += "\",\"pid\":1,\"tid\":";
    out += json_number(static_cast<double>(e.track));
    out += ",\"ts\":";
    out += json_number(static_cast<double>(e.ts));
    if (!e.instant) {
      out += ",\"dur\":";
      out += json_number(static_cast<double>(e.dur));
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"name\":\"";
    out += json_escape(e.name);
    out += '"';
    if (!e.args.empty()) {
      out += ",\"args\":{";
      out += e.args;
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

Status TraceRecorder::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::io_error("cannot open trace file: " + path);
  out << to_json();
  out.flush();
  if (!out) return Status::io_error("short write to trace file: " + path);
  return Status::success();
}

}  // namespace ethergrid::obs
