#include "obs/trace.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <utility>

namespace ethergrid::obs {
namespace {

std::int64_t to_micros(TimePoint t) { return t.time_since_epoch().count(); }

void append_kv(std::string* out, std::string_view key, std::string_view value) {
  out->append(out->empty() ? "\"" : ",\"");
  out->append(key);
  out->append("\":\"");
  out->append(json_escape(value));
  out->push_back('"');
}

void append_kv_num(std::string* out, std::string_view key, double value) {
  out->append(out->empty() ? "\"" : ",\"");
  out->append(key);
  out->append("\":");
  out->append(json_number(value));
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  if (value == static_cast<double>(static_cast<std::int64_t>(value))) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  std::string out = buf;
  while (!out.empty() && out.back() == '0') out.pop_back();
  if (!out.empty() && out.back() == '.') out.pop_back();
  return out;
}

TraceRecorder::TraceRecorder(std::string process_name, int pid)
    : process_name_(std::move(process_name)), pid_(pid) {}

TraceRecorder::Rec& TraceRecorder::append_locked() {
  const std::size_t slot = size_ % kBlockRecs;
  if (slot == 0) {
    blocks_.push_back(std::make_unique<Rec[]>(kBlockRecs));
  }
  ++size_;
  Rec& rec = blocks_.back()[slot];
  rec = Rec{};
  return rec;
}

std::uint32_t TraceRecorder::arena_add_locked(std::string_view text,
                                              std::uint32_t* len) {
  const std::uint32_t off = static_cast<std::uint32_t>(arena_.size());
  arena_.append(text);
  *len = static_cast<std::uint32_t>(text.size());
  return off;
}

std::uint32_t TraceRecorder::intern_name_locked(std::string_view name) {
  if (name.empty()) return 0;
  auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  names_.emplace_back(name);
  const std::uint32_t id = static_cast<std::uint32_t>(names_.size());
  name_ids_.emplace(names_.back(), id);
  return id;
}

// Begins are not serialized -- the complete ("X") entry carries start and
// duration and is appended at end time, which is when status/attempts are
// known.  Only the counter moves here.
void TraceRecorder::on_span_begin(const Span& span) {
  (void)span;
  spans_.fetch_add(1, std::memory_order_relaxed);
}

void TraceRecorder::on_span_end(const Span& span) {
  std::lock_guard<std::mutex> lock(mu_);
  Rec& rec = append_locked();
  rec.id = span.id;
  rec.parent = span.parent;
  rec.track = span.track;
  rec.ts = to_micros(span.start);
  rec.dur = to_micros(span.end) - rec.ts;
  if (rec.dur < 0) rec.dur = 0;
  rec.backoff_us = span.backoff.count();
  rec.name = intern_name_locked(span.name);
  rec.line = span.line;
  rec.attempts = span.attempts;
  rec.kind = static_cast<std::uint8_t>(span.kind);
  rec.status = static_cast<std::uint8_t>(span.status.code());
  if (span.status.failed() && !span.status.message().empty()) {
    rec.error_off = arena_add_locked(span.status.message(), &rec.error_len);
  }
  if (!span.detail.empty()) {
    rec.detail_off = arena_add_locked(span.detail, &rec.detail_len);
  }
}

void TraceRecorder::on_event(const ObsEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  Rec& rec = append_locked();
  rec.instant = true;
  rec.id = event.span;
  rec.ts = to_micros(event.time);
  rec.name = event.site;
  rec.kind = static_cast<std::uint8_t>(event.kind);
  rec.value = event.value;
  if (!event.detail.empty()) {
    rec.detail_off = arena_add_locked(event.detail, &rec.detail_len);
  }
  events_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t TraceRecorder::span_count() const {
  return spans_.load(std::memory_order_relaxed);
}

std::size_t TraceRecorder::event_count() const {
  return events_.load(std::memory_order_relaxed);
}

// Renders one record exactly as the eager pre-rendered path used to: the
// byte-identical-across-backends contract covers the serialized form, so
// the deferred path must not reorder or reformat anything.
void TraceRecorder::render(const Rec& rec, std::string* out) const {
  std::string name;
  std::string_view extra;
  if (rec.instant) {
    name = obs_event_kind_name(static_cast<ObsEvent::Kind>(rec.kind));
    extra = site_name(rec.name);
  } else {
    name = span_kind_name(static_cast<SpanKind>(rec.kind));
    if (rec.name != 0) extra = names_[rec.name - 1];
  }
  if (!extra.empty()) {
    name += ": ";
    name += extra;
  }
  const std::string_view detail(arena_.data() + rec.detail_off,
                                rec.detail_len);

  std::string args;
  if (rec.instant) {
    if (rec.id != 0) {
      append_kv_num(&args, "span", static_cast<double>(rec.id));
    }
    if (rec.value != 0) append_kv_num(&args, "value", rec.value);
    if (!detail.empty()) append_kv(&args, "detail", detail);
  } else {
    append_kv_num(&args, "span", static_cast<double>(rec.id));
    if (rec.parent != 0) {
      append_kv_num(&args, "parent", static_cast<double>(rec.parent));
    }
    if (rec.line != 0) append_kv_num(&args, "line", rec.line);
    const StatusCode code = static_cast<StatusCode>(rec.status);
    append_kv(&args, "status",
              code == StatusCode::kOk ? "OK" : status_code_name(code));
    if (rec.error_len != 0) {
      append_kv(&args, "error",
                std::string_view(arena_.data() + rec.error_off, rec.error_len));
    }
    if (rec.attempts != 0) append_kv_num(&args, "attempts", rec.attempts);
    if (rec.backoff_us != 0) {
      append_kv_num(&args, "backoff_s", to_seconds(Duration(rec.backoff_us)));
    }
    if (!detail.empty()) append_kv(&args, "detail", detail);
  }

  out->append(",\n{\"ph\":\"");
  out->push_back(rec.instant ? 'i' : 'X');
  out->append("\",\"pid\":");
  out->append(json_number(static_cast<double>(pid_)));
  out->append(",\"tid\":");
  out->append(json_number(static_cast<double>(rec.track)));
  out->append(",\"ts\":");
  out->append(json_number(static_cast<double>(rec.ts)));
  if (!rec.instant) {
    out->append(",\"dur\":");
    out->append(json_number(static_cast<double>(rec.dur)));
  } else {
    out->append(",\"s\":\"t\"");
  }
  out->append(",\"name\":\"");
  out->append(json_escape(name));
  out->push_back('"');
  if (!args.empty()) {
    out->append(",\"args\":{");
    out->append(args);
    out->push_back('}');
  }
  out->push_back('}');
}

std::string TraceRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[\n";
  out += "{\"ph\":\"M\",\"pid\":";
  out += json_number(static_cast<double>(pid_));
  out += ",\"name\":\"process_name\",\"args\":{\"name\":\"";
  out += json_escape(process_name_);
  out += "\"}}";
  // Name each lane that appears, in sorted order for stable output.
  std::set<std::uint64_t> tracks;
  for (std::size_t i = 0; i < size_; ++i) {
    tracks.insert(blocks_[i / kBlockRecs][i % kBlockRecs].track);
  }
  for (std::uint64_t track : tracks) {
    out += ",\n{\"ph\":\"M\",\"pid\":";
    out += json_number(static_cast<double>(pid_));
    out += ",\"tid\":";
    out += json_number(static_cast<double>(track));
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    out += track == 0 ? "main" : "lane " + json_number(static_cast<double>(track));
    out += "\"}}";
  }
  for (std::size_t i = 0; i < size_; ++i) {
    render(blocks_[i / kBlockRecs][i % kBlockRecs], &out);
  }
  out += "\n]}\n";
  return out;
}

std::string merge_chrome_traces(const std::vector<std::string>& traces) {
  static constexpr std::string_view kPrefix = "{\"traceEvents\":[\n";
  static constexpr std::string_view kSuffix = "\n]}\n";
  std::string out{kPrefix};
  bool first = true;
  for (const std::string& trace : traces) {
    std::string_view inner = trace;
    if (inner.size() < kPrefix.size() + kSuffix.size()) continue;
    if (inner.substr(0, kPrefix.size()) != kPrefix) continue;
    if (inner.substr(inner.size() - kSuffix.size()) != kSuffix) continue;
    inner.remove_prefix(kPrefix.size());
    inner.remove_suffix(kSuffix.size());
    if (inner.empty()) continue;
    if (!first) out += ",\n";
    out += inner;
    first = false;
  }
  out += kSuffix;
  return out;
}

Status TraceRecorder::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::io_error("cannot open trace file: " + path);
  out << to_json();
  out.flush();
  if (!out) return Status::io_error("short write to trace file: " + path);
  return Status::success();
}

}  // namespace ethergrid::obs
