// Small Observer adapters that recreate the old scattered
// InterpreterOptions channels as composable ObserverSet members:
//
//   StreamObserver  -- replaces stdout_sink / stderr_sink
//   XTraceObserver  -- replaces `bool trace` ("set -x"-style "+ cmd" lines)
//   LoggerObserver  -- replaces `Logger* logger` (bridges on_log and span
//                      failures onto a util Logger)
#pragma once

#include <functional>
#include <string>

#include "obs/observer.hpp"
#include "util/log.hpp"

namespace ethergrid::obs {

// Forwards command output to caller-supplied sinks.  A missing sink drops
// that stream.
class StreamObserver final : public Observer {
 public:
  using Sink = std::function<void(std::string_view)>;

  StreamObserver(Sink out, Sink err)
      : out_(std::move(out)), err_(std::move(err)) {}

  void on_output(StreamKind stream, std::string_view text) override {
    if (stream == StreamKind::kStdout) {
      if (out_) out_(text);
    } else {
      if (err_) err_(text);
    }
  }

 private:
  Sink out_;
  Sink err_;
};

// Writes one "+ <expanded argv>" line per command span, after variable
// expansion -- the ftsh equivalent of `set -x`.
class XTraceObserver final : public Observer {
 public:
  using Sink = std::function<void(std::string_view)>;

  explicit XTraceObserver(Sink sink) : sink_(std::move(sink)) {}

  void on_span_begin(const Span& span) override;

 private:
  Sink sink_;
};

// Bridges the observability channel onto the structured Logger: on_log
// lines pass straight through; failed command/try spans and fault/crash
// events become warn-level records so `-l` keeps its pre-redesign
// diagnostic value.
class LoggerObserver final : public Observer {
 public:
  explicit LoggerObserver(Logger* logger) : logger_(logger) {}

  void on_span_end(const Span& span) override;
  void on_event(const ObsEvent& event) override;
  void on_log(const ObsLogLine& line) override;

 private:
  Logger* logger_;
};

}  // namespace ethergrid::obs
