// TraceRecorder: span-based execution traces exported as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Spans become "X" (complete) events with microsecond ts/dur; point events
// (backoff, collision, fault, ...) become "i" (instant) events.  The track
// field of a span selects the tid lane, so concurrent forall branches
// render as parallel rows instead of one self-overlapping bar.
//
// Recording is allocation-light by design: each emission appends one
// fixed-size binary record to a growable list of 1024-record blocks (one
// allocation per block, never a copy of existing records).  Span names are
// interned into a recorder-local table on first sight, event sites arrive
// pre-interned as SiteIds, and variable payloads (details, error messages)
// are copied into a byte arena.  ALL JSON work -- escaping, number
// formatting, metadata rows -- is deferred to to_json(), so the emission
// path touches the allocator only when a block, the arena, or the name
// table actually grows.
//
// Export is deterministic: entries are written in emission order, all
// numbers are integers (virtual microseconds) or shortest-form doubles, and
// no wall-clock or host state leaks into the output.  A fixed-seed sim run
// therefore produces byte-identical JSON on both kernel backends -- pinned
// by tests/sim/backend_equivalence_test.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "util/status.hpp"

namespace ethergrid::obs {

class TraceRecorder final : public Observer {
 public:
  // process_name labels the Perfetto process row ("ftsh", "gridsim").
  // pid separates process rows when several recorders' exports are merged
  // into one document (merge_chrome_traces below; the sharded scenarios
  // use pid = shard index + 1).
  explicit TraceRecorder(std::string process_name = "ethergrid", int pid = 1);

  void on_span_begin(const Span& span) override;
  void on_span_end(const Span& span) override;
  void on_event(const ObsEvent& event) override;

  std::size_t span_count() const;
  std::size_t event_count() const;

  // The full trace as a JSON object {"traceEvents":[...]}.  Safe to call
  // repeatedly; the trace keeps accumulating.
  std::string to_json() const;

  // Writes to_json() to `path` (overwrite).
  Status write_file(const std::string& path) const;

 private:
  // One emission, binary.  `name` is a 1-based index into names_ for spans
  // (0 = no extra name) and a global SiteId for instants.  Payload strings
  // live in arena_ as (offset, length); offsets are 32-bit, capping one
  // recorder's payload bytes at 4 GiB -- far beyond any trace we render.
  struct Rec {
    std::uint64_t id = 0;
    std::uint64_t parent = 0;
    std::uint64_t track = 0;
    std::int64_t ts = 0;          // microseconds
    std::int64_t dur = 0;         // microseconds (complete events)
    std::int64_t backoff_us = 0;  // try spans
    double value = 0;             // instants
    std::uint32_t name = 0;
    std::uint32_t detail_off = 0;
    std::uint32_t detail_len = 0;
    std::uint32_t error_off = 0;
    std::uint32_t error_len = 0;
    std::int32_t line = 0;
    std::int32_t attempts = 0;
    std::uint8_t kind = 0;     // SpanKind or ObsEvent::Kind value
    std::uint8_t status = 0;   // StatusCode value (spans)
    bool instant = false;
  };

  static constexpr std::size_t kBlockRecs = 1024;

  Rec& append_locked();  // returns the next free record slot
  std::uint32_t arena_add_locked(std::string_view text, std::uint32_t* len);
  std::uint32_t intern_name_locked(std::string_view name);
  void render(const Rec& rec, std::string* out) const;  // one entry, locked

  mutable std::mutex mu_;
  std::string process_name_;
  int pid_ = 1;
  std::vector<std::unique_ptr<Rec[]>> blocks_;
  std::size_t size_ = 0;  // total records across blocks_
  std::string arena_;     // detail / error payload bytes
  std::deque<std::string> names_;  // interned span names, 1-based via map
  std::map<std::string, std::uint32_t, std::less<>> name_ids_;
  // Counters are atomic so on_span_begin (which records nothing -- the
  // complete event is appended at end time) never touches the mutex.
  std::atomic<std::size_t> spans_{0};
  std::atomic<std::size_t> events_{0};
};

// Merges several TraceRecorder::to_json() exports into one Chrome-trace
// document, concatenating their traceEvents arrays in argument order.
// Sharded worlds record one per-shard trace lane (distinct pids) and merge
// them in shard order at export, so the merged bytes are deterministic and
// independent of worker-thread scheduling.  Inputs that are not
// TraceRecorder exports are skipped.
std::string merge_chrome_traces(const std::vector<std::string>& traces);

// Escapes a string for embedding in a JSON string literal (no quotes
// added).  Shared by the trace and metrics exporters.
std::string json_escape(std::string_view text);

// Shortest deterministic rendering of a double: integers print without a
// decimal point, everything else with up to 6 significant fractional
// digits, trailing zeros trimmed.
std::string json_number(double value);

}  // namespace ethergrid::obs
