// TraceRecorder: span-based execution traces exported as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Spans become "X" (complete) events with microsecond ts/dur; point events
// (backoff, collision, fault, ...) become "i" (instant) events.  The track
// field of a span selects the tid lane, so concurrent forall branches
// render as parallel rows instead of one self-overlapping bar.
//
// Export is deterministic: entries are written in emission order, all
// numbers are integers (virtual microseconds) or shortest-form doubles, and
// no wall-clock or host state leaks into the output.  A fixed-seed sim run
// therefore produces byte-identical JSON on both kernel backends -- pinned
// by tests/sim/backend_equivalence_test.cpp.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "util/status.hpp"

namespace ethergrid::obs {

class TraceRecorder final : public Observer {
 public:
  // process_name labels the Perfetto process row ("ftsh", "gridsim").
  explicit TraceRecorder(std::string process_name = "ethergrid");

  void on_span_begin(const Span& span) override;
  void on_span_end(const Span& span) override;
  void on_event(const ObsEvent& event) override;

  std::size_t span_count() const;
  std::size_t event_count() const;

  // The full trace as a JSON object {"traceEvents":[...]}.  Safe to call
  // repeatedly; the trace keeps accumulating.
  std::string to_json() const;

  // Writes to_json() to `path` (overwrite).
  Status write_file(const std::string& path) const;

 private:
  struct Entry {
    bool instant = false;
    std::uint64_t id = 0;
    std::uint64_t track = 0;
    std::int64_t ts = 0;   // microseconds
    std::int64_t dur = 0;  // microseconds (complete events)
    std::string name;
    // Pre-rendered ,"args":{...} fragment (empty = none); building it at
    // emission time keeps to_json() a pure serialization pass.
    std::string args;
  };

  mutable std::mutex mu_;
  std::string process_name_;
  std::vector<Entry> entries_;
  std::size_t spans_ = 0;
  std::size_t events_ = 0;
};

// Escapes a string for embedding in a JSON string literal (no quotes
// added).  Shared by the trace and metrics exporters.
std::string json_escape(std::string_view text);

// Shortest deterministic rendering of a double: integers print without a
// decimal point, everything else with up to 6 significant fractional
// digits, trailing zeros trimmed.
std::string json_number(double value);

}  // namespace ethergrid::obs
