#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"  // json_escape / json_number

namespace ethergrid::obs {

// Bucket i holds samples in (2^(i-32-1), 2^(i-32)]; bucket 0 catches
// everything at or below 2^-32 (including zero), bucket 63 everything
// above 2^30.  That spans sub-microsecond latencies to ~34 years of
// virtual seconds, which is plenty.
int Histogram::bucket_for(double value) {
  if (!(value > 0)) return 0;
  int exp = static_cast<int>(std::ceil(std::log2(value)));
  int bucket = exp + 32;
  return std::clamp(bucket, 0, kBuckets - 1);
}

void Histogram::record(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Improve-only CAS: once the extremes settle, each is one relaxed load.
  double cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  buckets_[bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank && seen > 0) {
      // Upper bound of bucket i, clamped into the observed range.
      double upper = std::ldexp(1.0, i - 32);
      return std::clamp(upper, min(), max());
    }
  }
  return max();
}

std::string Histogram::to_json() const {
  std::string out = "{\"count\":";
  out += json_number(static_cast<double>(count()));
  out += ",\"sum\":";
  out += json_number(sum());
  out += ",\"min\":";
  out += json_number(min());
  out += ",\"max\":";
  out += json_number(max());
  out += ",\"mean\":";
  out += json_number(mean());
  out += ",\"p50\":";
  out += json_number(quantile(0.50));
  out += ",\"p95\":";
  out += json_number(quantile(0.95));
  out += ",\"p99\":";
  out += json_number(quantile(0.99));
  out += '}';
  return out;
}

std::atomic<double>* MetricsRegistry::cell_for(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cell_index_.find(name);
  if (it != cell_index_.end()) return &it->second->value;
  Cell& cell = cells_.emplace_back();
  cell.name = name;
  cell_index_.emplace(cell.name, &cell);
  return &cell.value;
}

MetricsRegistry::Counter MetricsRegistry::counter_handle(
    std::string_view name) {
  return Counter(cell_for(name));
}

void MetricsRegistry::add(std::string_view name, double delta) {
  cell_for(name)->fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::record(std::string_view name, double value) {
  if (const Histogram* fixed = fixed_histogram(name)) {
    // Manual samples under a derived name feed the derived histogram, so
    // reads and the JSON export see one merged distribution.  Lock-free:
    // the fixed histograms record atomically.
    const_cast<Histogram*>(fixed)->record(value);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  it->second.record(value);
}

double MetricsRegistry::derived_counter(std::string_view name) const {
  if (name == "commands.attempts") {
    // Every command span is one attempt; alias the span slot.
    return static_cast<double>(
        span_counts_[static_cast<int>(SpanKind::kCommand)].load(
            std::memory_order_relaxed));
  }
  if (name == "events.carrier-sense.deferred") {
    return static_cast<double>(
        carrier_deferred_.load(std::memory_order_relaxed));
  }
  if (name.substr(0, 6) == "spans.") {
    std::string_view rest = name.substr(6);
    const bool failed = rest.size() > 7 &&
                        rest.substr(rest.size() - 7) == ".failed";
    if (failed) rest = rest.substr(0, rest.size() - 7);
    for (int k = 0; k < kSpanKindCount; ++k) {
      if (rest != span_kind_name(static_cast<SpanKind>(k))) continue;
      const auto& slot = failed ? span_failed_[k] : span_counts_[k];
      return static_cast<double>(slot.load(std::memory_order_relaxed));
    }
  }
  if (name.substr(0, 7) == "events.") {
    const std::string_view rest = name.substr(7);
    for (int k = 0; k < kObsEventKindCount; ++k) {
      if (rest != obs_event_kind_name(static_cast<ObsEvent::Kind>(k))) continue;
      return static_cast<double>(
          event_counts_[k].load(std::memory_order_relaxed));
    }
  }
  return 0;
}

double MetricsRegistry::counter(std::string_view name) const {
  double value = derived_counter(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cell_index_.find(name);
  if (it != cell_index_.end()) {
    value += it->second->value.load(std::memory_order_relaxed);
  }
  return value;
}

const Histogram* MetricsRegistry::fixed_histogram(std::string_view name) const {
  if (name == "command_duration_us") return &command_duration_us_;
  if (name == "process_duration_us") return &process_duration_us_;
  if (name == "try_attempts") return &try_attempts_;
  if (name == "try_backoff_total_s") return &try_backoff_total_s_;
  if (name == "forall_branches") return &forall_branches_;
  if (name == "backoff_delay_s") return &backoff_delay_s_;
  if (name == "forall_occupancy") return &forall_occupancy_;
  if (name == "kill_latency_s") return &kill_latency_s_;
  return nullptr;
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (const Histogram* fixed = fixed_histogram(name)) {
    return fixed->count() > 0 ? fixed : nullptr;  // match map materialization
  }
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::on_span_end(const Span& span) {
  const int k = static_cast<int>(span.kind);
  span_counts_[k].fetch_add(1, std::memory_order_relaxed);
  if (span.status.failed()) {
    span_failed_[k].fetch_add(1, std::memory_order_relaxed);
  }
  switch (span.kind) {
    case SpanKind::kCommand:
      command_duration_us_.record(
          static_cast<double>((span.end - span.start).count()));
      break;
    case SpanKind::kTry:
      if (span.attempts > 0) try_attempts_.record(span.attempts);
      if (span.backoff > Duration(0)) {
        try_backoff_total_s_.record(to_seconds(span.backoff));
      }
      break;
    case SpanKind::kForall:
      if (span.attempts > 0) forall_branches_.record(span.attempts);
      break;
    case SpanKind::kProcess:
      process_duration_us_.record(
          static_cast<double>((span.end - span.start).count()));
      break;
    default:
      break;
  }
}

void MetricsRegistry::on_event(const ObsEvent& event) {
  event_counts_[static_cast<int>(event.kind)].fetch_add(
      1, std::memory_order_relaxed);
  switch (event.kind) {
    case ObsEvent::Kind::kBackoff:
      backoff_delay_s_.record(event.value);
      break;
    case ObsEvent::Kind::kOccupancy:
      forall_occupancy_.record(event.value);
      break;
    case ObsEvent::Kind::kKill:
      kill_latency_s_.record(event.value);
      break;
    case ObsEvent::Kind::kCarrierSense:
      if (event.value == 0) {
        carrier_deferred_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    default:
      break;
  }
}

std::string MetricsRegistry::to_json() const {
  // Merge derived slots (only the ones that ever fired, mirroring the old
  // materialize-on-first-bump behavior) with the manual cells, sorted.
  std::map<std::string, double, std::less<>> counters;
  for (int k = 0; k < kSpanKindCount; ++k) {
    const auto n = span_counts_[k].load(std::memory_order_relaxed);
    const auto f = span_failed_[k].load(std::memory_order_relaxed);
    std::string base = "spans.";
    base += span_kind_name(static_cast<SpanKind>(k));
    if (n != 0) counters[base] += static_cast<double>(n);
    if (f != 0) counters[base + ".failed"] += static_cast<double>(f);
  }
  for (int k = 0; k < kObsEventKindCount; ++k) {
    const auto n = event_counts_[k].load(std::memory_order_relaxed);
    if (n == 0) continue;
    std::string name = "events.";
    name += obs_event_kind_name(static_cast<ObsEvent::Kind>(k));
    counters[name] += static_cast<double>(n);
  }
  if (const auto n = span_counts_[static_cast<int>(SpanKind::kCommand)].load(
          std::memory_order_relaxed)) {
    counters["commands.attempts"] += static_cast<double>(n);
  }
  if (const auto n = carrier_deferred_.load(std::memory_order_relaxed)) {
    counters["events.carrier-sense.deferred"] += static_cast<double>(n);
  }

  std::lock_guard<std::mutex> lock(mu_);
  for (const Cell& cell : cells_) {
    counters[cell.name] += cell.value.load(std::memory_order_relaxed);
  }

  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    out += json_number(value);
  }
  out += "},\"histograms\":{";

  std::map<std::string_view, const Histogram*> histograms;
  for (std::string_view name :
       {"command_duration_us", "process_duration_us", "try_attempts",
        "try_backoff_total_s", "forall_branches", "backoff_delay_s",
        "forall_occupancy", "kill_latency_s"}) {
    const Histogram* h = fixed_histogram(name);
    if (h->count() > 0) histograms[name] = h;
  }
  for (const auto& [name, hist] : histograms_) histograms[name] = &hist;
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    out += hist->to_json();
  }
  out += "}}";
  return out;
}

}  // namespace ethergrid::obs
