#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"  // json_escape / json_number

namespace ethergrid::obs {

// Bucket i holds samples in (2^(i-32-1), 2^(i-32)]; bucket 0 catches
// everything at or below 2^-32 (including zero), bucket 63 everything
// above 2^30.  That spans sub-microsecond latencies to ~34 years of
// virtual seconds, which is plenty.
int Histogram::bucket_for(double value) {
  if (!(value > 0)) return 0;
  int exp = static_cast<int>(std::ceil(std::log2(value)));
  int bucket = exp + 32;
  return std::clamp(bucket, 0, kBuckets - 1);
}

void Histogram::record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_for(value)];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank && seen > 0) {
      // Upper bound of bucket i, clamped into the observed range.
      double upper = std::ldexp(1.0, i - 32);
      return std::clamp(upper, min_, max_);
    }
  }
  return max_;
}

std::string Histogram::to_json() const {
  std::string out = "{\"count\":";
  out += json_number(static_cast<double>(count_));
  out += ",\"sum\":";
  out += json_number(sum_);
  out += ",\"min\":";
  out += json_number(min());
  out += ",\"max\":";
  out += json_number(max());
  out += ",\"mean\":";
  out += json_number(mean());
  out += ",\"p50\":";
  out += json_number(quantile(0.50));
  out += ",\"p95\":";
  out += json_number(quantile(0.95));
  out += ",\"p99\":";
  out += json_number(quantile(0.99));
  out += '}';
  return out;
}

void MetricsRegistry::add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::record(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].record(value);
}

double MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::on_span_end(const Span& span) {
  const double duration_s =
      to_seconds(span.end.time_since_epoch() - span.start.time_since_epoch());
  std::lock_guard<std::mutex> lock(mu_);
  std::string base = "spans.";
  base += span_kind_name(span.kind);
  counters_[base] += 1;
  if (span.status.failed()) counters_[base + ".failed"] += 1;
  switch (span.kind) {
    case SpanKind::kCommand:
      counters_["commands.attempts"] += 1;
      histograms_["command_duration_s"].record(duration_s);
      break;
    case SpanKind::kTry:
      if (span.attempts > 0) {
        histograms_["try_attempts"].record(span.attempts);
      }
      if (span.backoff > Duration(0)) {
        histograms_["try_backoff_total_s"].record(to_seconds(span.backoff));
      }
      break;
    case SpanKind::kForall:
      if (span.attempts > 0) {
        histograms_["forall_branches"].record(span.attempts);
      }
      break;
    case SpanKind::kProcess:
      histograms_["process_duration_s"].record(duration_s);
      break;
    default:
      break;
  }
}

void MetricsRegistry::on_event(const ObsEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string name = "events.";
  name += obs_event_kind_name(event.kind);
  counters_[name] += 1;
  switch (event.kind) {
    case ObsEvent::Kind::kBackoff:
      histograms_["backoff_delay_s"].record(event.value);
      break;
    case ObsEvent::Kind::kOccupancy:
      histograms_["forall_occupancy"].record(event.value);
      break;
    case ObsEvent::Kind::kKill:
      histograms_["kill_latency_s"].record(event.value);
      break;
    case ObsEvent::Kind::kCarrierSense:
      if (event.value == 0) counters_["events.carrier-sense.deferred"] += 1;
      break;
    default:
      break;
  }
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    out += json_number(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    out += hist.to_json();
  }
  out += "}}";
  return out;
}

}  // namespace ethergrid::obs
