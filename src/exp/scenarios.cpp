#include "exp/scenarios.hpp"

#include <memory>
#include <string>
#include <utility>

#include "core/fault.hpp"
#include "core/sim_clock.hpp"
#include "grid/placement.hpp"
#include "obs/trace.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::exp {

namespace {

// One injector per world, fed by the kernel's "faults" stream: derived by
// name, so adding fault rules perturbs nothing else in the run.  Null when
// the plan is empty -- substrates then skip the consultation entirely.
std::unique_ptr<core::FaultInjector> make_injector(sim::Kernel& kernel,
                                                   const sim::FaultPlan& plan) {
  if (plan.rules().empty()) return nullptr;
  return std::make_unique<core::FaultInjector>(plan,
                                               kernel.rng().stream("faults"));
}

// Bridges fired faults onto the observability channel as kFault events.
// The "<site> <kind>" label matches shell::fault_observer, so an AuditLog
// listening on the set shows the same rows as the legacy adapter.
void bridge_faults(core::FaultInjector* faults, obs::ObserverSet* observers) {
  if (!faults || !observers) return;
  faults->set_observer([observers](const core::FaultEvent& fe) {
    obs::ObsEvent event;
    event.kind = obs::ObsEvent::Kind::kFault;
    event.time = fe.time;
    // Fault firings are rare; interning per emission is fine here.
    event.site = obs::intern_site(fe.site + " " + fe.kind);
    event.detail = fe.detail;
    observers->on_event(event);
  });
}

// Jain's fairness index over per-sender byte counts: (sum x)^2 / (n sum x^2).
double jain_index(const std::vector<std::int64_t>& xs) {
  if (xs.empty()) return 0;
  double sum = 0;
  double sum_sq = 0;
  for (std::int64_t x : xs) {
    sum += double(x);
    sum_sq += double(x) * double(x);
  }
  if (sum_sq == 0) return 1;  // nobody moved anything: trivially fair
  return sum * sum / (double(xs.size()) * sum_sq);
}

// Spawns n submitters against a fresh schedd world; returns after `window`.
struct SubmitWorld {
  SubmitWorld(const SubmitScenarioConfig& config, std::string_view discipline,
              int submitters)
      : kernel(config.seed, config.kernel),
        schedd(kernel, config.schedd),
        faults(make_injector(kernel, config.faults)) {
    schedd.set_fault_injector(faults.get());
    schedd.set_observers(config.observers);
    bridge_faults(faults.get(), config.observers);
    grid::SubmitterConfig sc = config.submitter;
    sc.discipline = std::string(discipline);
    stats.resize(std::size_t(submitters));
    for (int i = 0; i < submitters; ++i) {
      kernel.spawn("submitter" + std::to_string(i),
                   grid::make_submitter(schedd, sc, &stats[std::size_t(i)]));
    }
  }

  sim::Kernel kernel;
  grid::Schedd schedd;
  std::unique_ptr<core::FaultInjector> faults;
  std::vector<grid::SubmitterStats> stats;
};

// ----------------------------------- scenario 1 at scale: the sharded grid

// Reply rendezvous of the cross-shard submit RPC.  Heap-allocated and held
// by shared_ptr from three places -- the waiting client, the request
// payload, and the reply payload -- so it survives whichever of them dies
// first (client killed or timed out mid-wait, message dropped at
// shutdown).  `reply` belongs to the CLIENT's kernel; set() runs on the
// client's shard via the reply message.
struct SubmitRpc {
  explicit SubmitRpc(sim::Kernel& client_kernel) : reply(client_kernel) {}
  sim::Event reply;
  Status result = Status::unavailable("rpc dropped");
};

// Sharded fig1 world: `sites` schedd worlds placed round-robin over the
// shards, each with local submitters and (optionally) remote submitters
// whose submissions target the next site over the mailbox.
struct ShardedSubmitWorld {
  ShardedSubmitWorld(const ShardedSubmitConfig& config,
                     std::string_view discipline)
      : config(config), sk(config.seed, config.sharded) {
    const std::size_t shards = sk.shard_count();
    // Per-shard observability and fault injection.  Every injector is
    // built from the SAME root stream (each shard kernel has the same
    // seed), so a site's per-site fault stream -- derived by name -- is
    // identical no matter which shard its schedd landed on.
    for (std::size_t s = 0; s < shards; ++s) {
      if (config.record_trace) {
        traces.push_back(std::make_unique<obs::TraceRecorder>(
            "shard" + std::to_string(s), int(s) + 1));
        observers.push_back(std::make_unique<obs::ObserverSet>());
        observers.back()->add(traces.back().get());
      }
      injectors.push_back(make_injector(sk.shard(s), config.faults));
      if (config.record_trace) {
        bridge_faults(injectors.back().get(), observers.back().get());
      }
    }
    grid::SubmitterConfig sc = config.submitter;
    sc.discipline = std::string(discipline);
    local_stats.resize(config.sites * std::size_t(config.submitters_per_site));
    remote_stats.resize(config.sites * std::size_t(config.remote_per_site));
    for (std::size_t site = 0; site < config.sites; ++site) {
      const std::size_t shard = grid::place_site(site, shards);
      schedds.push_back(std::make_unique<grid::Schedd>(
          sk.shard(shard), grid::site_schedd_config(config.schedd, site)));
      grid::Schedd& schedd = *schedds.back();
      schedd.set_fault_injector(injectors[shard].get());
      if (config.record_trace) schedd.set_observers(observers[shard].get());
      for (int j = 0; j < config.submitters_per_site; ++j) {
        const std::size_t idx =
            site * std::size_t(config.submitters_per_site) + std::size_t(j);
        spawn_with_stream(
            shard, "site" + std::to_string(site) + ".submitter" +
                       std::to_string(j),
            grid::make_submitter(schedd, sc, &local_stats[idx]));
      }
    }
    // Remote submitters spawn after every schedd exists (they target site
    // (site + 1) % sites).  Their RNG stream is name-derived like the
    // locals', so the remote workload is partition-independent too.
    for (std::size_t site = 0; site < config.sites; ++site) {
      const std::size_t shard = grid::place_site(site, shards);
      for (int j = 0; j < config.remote_per_site; ++j) {
        const std::size_t idx =
            site * std::size_t(config.remote_per_site) + std::size_t(j);
        spawn_with_stream(shard,
                          "site" + std::to_string(site) + ".remote" +
                              std::to_string(j),
                          remote_submitter(site, sc, &remote_stats[idx]));
      }
    }
    // Per-site fluid bulk lane: a shard-local fluid link (flows never
    // cross a shard boundary) and `bulk_per_site` senders per site.  Every
    // name -- the link's fault site, the senders' RNG streams, the book's
    // observer site -- is derived from the site index, so the lane is
    // partition-independent like everything above it.
    if (config.bulk_per_site > 0) {
      const grid::DisciplineTraits& bulk_traits =
          grid::resolve_discipline(config.bulk.discipline);
      bulk_stats.resize(config.sites * std::size_t(config.bulk_per_site));
      for (std::size_t site = 0; site < config.sites; ++site) {
        const std::size_t shard = grid::place_site(site, shards);
        grid::SubstrateConfig lc;
        lc.site = "site" + std::to_string(site) + ".bulk";
        lc.bytes_per_second = config.bulk_link_bps;
        lc.model = grid::CapacityModel::kFluid;
        bulk_links.push_back(
            std::make_unique<grid::Substrate>(sk.shard(shard), lc));
        grid::Substrate& link = *bulk_links.back();
        link.set_fault_injector(injectors[shard].get());
        if (config.record_trace) link.set_observers(observers[shard].get());
        grid::ReservationBook* book = nullptr;
        if (bulk_traits.reservation) {
          grid::ReservationBookConfig bc;
          bc.reservable_bps = config.bulk_link_bps;
          bc.site = lc.site + ".book";
          bulk_books.push_back(std::make_unique<grid::ReservationBook>(bc));
          book = bulk_books.back().get();
          if (config.record_trace) {
            book->set_observers(observers[shard].get());
          }
        }
        for (int j = 0; j < config.bulk_per_site; ++j) {
          const std::size_t idx =
              site * std::size_t(config.bulk_per_site) + std::size_t(j);
          spawn_with_stream(
              shard,
              "site" + std::to_string(site) + ".bulk" + std::to_string(j),
              grid::make_bulk_sender(link, book, config.bulk,
                                     &bulk_stats[idx]));
        }
      }
    }
  }

  ~ShardedSubmitWorld() {
    // Processes hold references into schedds/injectors, which are
    // destroyed before sk (declared after it): kill them first.
    sk.shutdown();
  }

  // Spawns `body` under a per-process RNG replaced by the name-derived
  // stream: the default per-process stream depends on spawn ORDER, which
  // varies with the partition, so partition-independent worlds must pin
  // it by name instead.  Client bodies copy ctx.rng() at startup, so
  // overwriting before the body runs covers every draw.
  void spawn_with_stream(std::size_t shard, std::string name,
                         sim::ProcessBody body) {
    Rng stream = sk.shard(0).rng().stream(name);
    sk.spawn(shard, std::move(name),
             [stream, body = std::move(body)](sim::Context& ctx) {
               ctx.rng() = stream;
               body(ctx);
             });
  }

  // A submitter whose schedd lives on the next site over: each submission
  // is a request message to the target shard (which performs the actual
  // Schedd::submit there) plus a reply message carrying the status back.
  // No carrier sense even for the Ethernet kind -- a remote client cannot
  // cheaply probe the far descriptor table, and reading it directly would
  // race with the owning shard's window -- so Ethernet remotes rely on
  // backoff alone.
  sim::ProcessBody remote_submitter(std::size_t src_site,
                                    const grid::SubmitterConfig& sc,
                                    grid::SubmitterStats* stats) {
    const std::size_t dst_site = (src_site + 1) % config.sites;
    const std::size_t src_shard = grid::place_site(src_site, sk.shard_count());
    const std::size_t dst_shard = grid::place_site(dst_site, sk.shard_count());
    grid::Schedd* dst = schedds[dst_site].get();
    sim::ShardedKernel* k = &sk;
    const Duration latency = config.rpc_latency;
    return [k, sc, stats, dst, src_site, dst_site, src_shard, dst_shard,
            latency](sim::Context& ctx) {
      core::SimClock clock(ctx);
      Rng rng = ctx.rng();
      const grid::DisciplineTraits& traits =
          grid::resolve_discipline_field(sc.discipline, sc.kind);
      const core::TryOptions options =
          traits.try_options(sc.try_budget, sc.backoff);
      const core::Discipline discipline{traits.name, options, nullptr};
      sim::Kernel& home = k->shard(src_shard);
      const std::string rpc_name =
          "rpc:site" + std::to_string(src_site) + "->" +
          std::to_string(dst_site);
      while (true) {
        ctx.sleep(sc.startup);
        Status s = core::run_with_discipline(
            clock, rng, discipline,
            [&](TimePoint) {
              auto state = std::make_shared<SubmitRpc>(home);
              k->post(src_shard, grid::site_mailbox_id(src_site), dst_shard,
                      latency, rpc_name,
                      [k, state, dst, dst_site, dst_shard, src_shard,
                       latency](sim::Context& rctx) {
                        Status result = dst->submit(rctx);
                        k->post(dst_shard, grid::site_mailbox_id(dst_site),
                                src_shard, latency, "rpc-reply",
                                [state, result](sim::Context&) {
                                  state->result = result;
                                  state->reply.set();
                                });
                      });
              ctx.wait(state->reply);
              return state->result;
            },
            &stats->discipline);
        if (s.ok()) {
          ++stats->jobs_succeeded;
        } else {
          ++stats->tries_failed;
        }
      }
    };
  }

  const ShardedSubmitConfig config;
  sim::ShardedKernel sk;
  std::vector<std::unique_ptr<obs::TraceRecorder>> traces;
  std::vector<std::unique_ptr<obs::ObserverSet>> observers;
  std::vector<std::unique_ptr<core::FaultInjector>> injectors;
  std::vector<std::unique_ptr<grid::Schedd>> schedds;
  std::vector<std::unique_ptr<grid::Substrate>> bulk_links;
  std::vector<std::unique_ptr<grid::ReservationBook>> bulk_books;
  std::vector<grid::SubmitterStats> local_stats;
  std::vector<grid::SubmitterStats> remote_stats;
  std::vector<grid::BulkSenderStats> bulk_stats;
};

}  // namespace

ShardedSubmitResult run_sharded_submit(const ShardedSubmitConfig& config,
                                       std::string_view discipline,
                                       Duration window) {
  ShardedSubmitWorld world(config, discipline);
  world.sk.run_until(kEpoch + window);

  ShardedSubmitResult result;
  result.discipline = std::string(discipline);
  result.sites = config.sites;
  result.shards = world.sk.shard_count();
  result.threads = world.sk.thread_count();
  for (std::size_t i = 0; i < world.schedds.size(); ++i) {
    ShardedSubmitSite site;
    site.jobs_submitted = world.schedds[i]->jobs_submitted();
    site.schedd_crashes = world.schedds[i]->crashes();
    site.fd_low_watermark = world.schedds[i]->fd_table().low_watermark();
    for (int j = 0; j < config.bulk_per_site; ++j) {
      const grid::BulkSenderStats& bs =
          world.bulk_stats[i * std::size_t(config.bulk_per_site) +
                           std::size_t(j)];
      site.bulk_files += bs.files_sent;
      site.bulk_bytes += bs.bytes_sent;
      site.bulk_grants += bs.grants;
    }
    result.by_site.push_back(site);
    result.jobs_total += site.jobs_submitted;
    result.schedd_crashes += site.schedd_crashes;
    result.bulk_bytes_total += site.bulk_bytes;
    result.bulk_grants_total += site.bulk_grants;
  }
  for (const auto& stats : world.remote_stats) {
    result.remote_jobs += stats.jobs_succeeded;
    result.remote_tries_failed += stats.tries_failed;
  }
  std::vector<core::FaultEvent> fault_events;
  for (const auto& injector : world.injectors) {
    if (!injector) continue;
    result.faults_injected += injector->fired_total();
    for (core::FaultEvent& event : injector->events()) {
      fault_events.push_back(std::move(event));
    }
  }
  if (!fault_events.empty()) {
    result.fault_audit = core::merged_audit_text(std::move(fault_events));
  }
  result.kernel_events = world.sk.events_processed();
  result.windows = world.sk.windows_run();
  result.messages_delivered = world.sk.messages_delivered();
  world.sk.shutdown();
  if (config.record_trace) {
    std::vector<std::string> jsons;
    jsons.reserve(world.traces.size());
    for (const auto& trace : world.traces) jsons.push_back(trace->to_json());
    result.trace_json = obs::merge_chrome_traces(jsons);
  }
  return result;
}

SubmitScalePoint run_submit_scale_point(const SubmitScenarioConfig& config,
                                        std::string_view discipline,
                                        int submitters, Duration window) {
  SubmitWorld world(config, discipline, submitters);
  world.kernel.run_until(kEpoch + window);
  SubmitScalePoint point;
  point.discipline = std::string(discipline);
  point.submitters = submitters;
  point.jobs_submitted = world.schedd.jobs_submitted();
  point.schedd_crashes = world.schedd.crashes();
  point.fd_low_watermark = world.schedd.fd_table().low_watermark();
  if (world.faults) {
    point.faults_injected = world.faults->fired_total();
    point.fault_audit = world.faults->audit_text();
  }
  point.kernel_events = world.kernel.events_processed();
  world.kernel.shutdown();
  return point;
}

SubmitterTimeline run_submitter_timeline(const SubmitScenarioConfig& config,
                                         std::string_view discipline,
                                         int submitters, Duration duration,
                                         Duration sample_every) {
  SubmitWorld world(config, discipline, submitters);
  SubmitterTimeline timeline;
  timeline.discipline = std::string(discipline);
  timeline.submitters = submitters;
  for (TimePoint t = kEpoch; t <= kEpoch + duration; t += sample_every) {
    world.kernel.run_until(t);
    timeline.points.push_back(TimelinePoint{
        to_seconds(t), double(world.schedd.fd_table().available()),
        double(world.schedd.jobs_submitted())});
  }
  timeline.jobs_total = world.schedd.jobs_submitted();
  timeline.schedd_crashes = world.schedd.crashes();
  if (world.faults) {
    timeline.faults_injected = world.faults->fired_total();
    timeline.fault_audit = world.faults->audit_text();
  }
  timeline.kernel_events = world.kernel.events_processed();
  world.kernel.shutdown();
  return timeline;
}

BufferSweepPoint run_buffer_point(const BufferScenarioConfig& config,
                                  std::string_view discipline, int producers,
                                  Duration window) {
  sim::Kernel kernel(config.seed, config.kernel);
  grid::FsBuffer buffer(kernel, config.buffer_bytes);
  grid::IoChannel channel(kernel, config.channel);
  auto faults = make_injector(kernel, config.faults);
  channel.set_fault_injector(faults.get());
  buffer.set_fault_injector(faults.get());
  buffer.set_observers(config.observers);
  bridge_faults(faults.get(), config.observers);
  grid::ConsumerStats consumer_stats;
  kernel.spawn("consumer", grid::make_consumer(buffer, channel,
                                               config.consumer,
                                               &consumer_stats));
  std::vector<std::unique_ptr<grid::ProducerStats>> producer_stats;
  for (int i = 0; i < producers; ++i) {
    grid::ProducerConfig pc = config.producer;
    pc.discipline = std::string(discipline);
    pc.name_prefix = "p" + std::to_string(i);
    producer_stats.push_back(std::make_unique<grid::ProducerStats>());
    kernel.spawn("producer" + std::to_string(i),
                 grid::make_producer(buffer, channel, pc,
                                     producer_stats.back().get()));
  }
  kernel.run_until(kEpoch + window);

  BufferSweepPoint point;
  point.discipline = std::string(discipline);
  point.producers = producers;
  point.files_consumed = consumer_stats.files_consumed;
  point.bytes_consumed = consumer_stats.bytes_consumed;
  for (const auto& stats : producer_stats) {
    point.collisions += stats->discipline.collisions;
    point.deferrals += stats->discipline.deferrals;
    point.files_completed += stats->files_completed;
    point.tries_failed += stats->tries_failed;
  }
  if (faults) {
    point.faults_injected = faults->fired_total();
    point.fault_audit = faults->audit_text();
  }
  point.kernel_events = kernel.events_processed();
  kernel.shutdown();
  return point;
}

std::vector<grid::FileServerConfig> ReaderScenarioConfig::paper_farm() {
  grid::FileServerConfig xxx;
  xxx.name = "xxx";
  grid::FileServerConfig yyy;
  yyy.name = "yyy";
  grid::FileServerConfig zzz;
  zzz.name = "zzz";
  zzz.black_hole = true;
  return {xxx, yyy, zzz};
}

ReaderTimeline run_reader_timeline(const ReaderScenarioConfig& config,
                                   std::string_view discipline,
                                   Duration duration, Duration sample_every) {
  sim::Kernel kernel(config.seed, config.kernel);
  auto servers = config.servers;
  if (servers.empty()) servers = ReaderScenarioConfig::paper_farm();
  grid::ServerFarm farm(kernel, servers);
  auto faults = make_injector(kernel, config.faults);
  if (faults) farm.set_fault_injector(faults.get());
  farm.set_observers(config.observers);
  bridge_faults(faults.get(), config.observers);
  std::vector<std::unique_ptr<grid::ReaderStats>> stats;
  for (int i = 0; i < config.readers; ++i) {
    grid::ReaderConfig rc = config.reader;
    rc.discipline = std::string(discipline);
    stats.push_back(std::make_unique<grid::ReaderStats>());
    kernel.spawn("reader" + std::to_string(i),
                 grid::make_reader(farm, rc, stats.back().get()));
  }

  ReaderTimeline timeline;
  timeline.discipline = std::string(discipline);
  for (TimePoint t = kEpoch; t <= kEpoch + duration; t += sample_every) {
    kernel.run_until(t);
    ReaderTimelinePoint point;
    point.t_seconds = to_seconds(t);
    for (const auto& s : stats) {
      point.transfers += s->transfers;
      point.collisions += s->collisions;
      point.deferrals += s->deferrals;
    }
    timeline.points.push_back(point);
  }
  for (const auto& s : stats) {
    timeline.transfers_total += s->transfers;
    timeline.collisions_total += s->collisions;
    timeline.deferrals_total += s->deferrals;
  }
  if (faults) {
    timeline.faults_injected = faults->fired_total();
    timeline.fault_audit = faults->audit_text();
  }
  timeline.kernel_events = kernel.events_processed();
  kernel.shutdown();
  return timeline;
}

BulkSweepPoint run_bulk_point(const BulkScenarioConfig& config,
                              std::string_view discipline, int senders,
                              Duration window) {
  sim::Kernel kernel(config.seed, config.kernel);
  grid::SubstrateConfig link_config;
  link_config.site = "bulk";
  link_config.bytes_per_second = config.link_bps;
  link_config.model = grid::CapacityModel::kFluid;
  grid::Substrate link(kernel, link_config);
  auto faults = make_injector(kernel, config.faults);
  link.set_fault_injector(faults.get());
  link.set_observers(config.observers);
  bridge_faults(faults.get(), config.observers);

  grid::ReservationBookConfig book_config = config.book;
  if (book_config.reservable_bps <= 0) {
    book_config.reservable_bps = config.reservable_fraction * config.link_bps;
  }
  book_config.site = "bulk.book";
  grid::ReservationBook book(book_config);
  book.set_observers(config.observers);

  std::vector<std::unique_ptr<grid::BulkSenderStats>> stats;
  for (int i = 0; i < senders; ++i) {
    grid::BulkSenderConfig bc = config.sender;
    bc.discipline = std::string(discipline);
    stats.push_back(std::make_unique<grid::BulkSenderStats>());
    kernel.spawn("sender" + std::to_string(i),
                 grid::make_bulk_sender(link, &book, bc, stats.back().get()));
  }
  kernel.run_until(kEpoch + window);

  BulkSweepPoint point;
  point.discipline = std::string(discipline);
  point.senders = senders;
  for (const auto& s : stats) {
    point.files_sent += s->files_sent;
    point.bytes_sent += s->bytes_sent;
    point.collisions += s->discipline.collisions;
    point.deferrals += s->discipline.deferrals;
    point.attempt_timeouts += s->attempt_timeouts;
    point.tries_failed += s->tries_failed;
    point.grants += s->grants;
    point.rejects += s->rejects;
    point.per_sender_bytes.push_back(s->bytes_sent);
  }
  point.goodput_bps = double(point.bytes_sent) / to_seconds(window);
  point.jain_fairness = jain_index(point.per_sender_bytes);
  if (faults) {
    point.faults_injected = faults->fired_total();
    point.fault_audit = faults->audit_text();
  }
  point.kernel_events = kernel.events_processed();
  kernel.shutdown();
  return point;
}

}  // namespace ethergrid::exp
