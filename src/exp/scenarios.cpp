#include "exp/scenarios.hpp"

#include <memory>
#include <string>

#include "core/fault.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::exp {

namespace {

// One injector per world, fed by the kernel's "faults" stream: derived by
// name, so adding fault rules perturbs nothing else in the run.  Null when
// the plan is empty -- substrates then skip the consultation entirely.
std::unique_ptr<core::FaultInjector> make_injector(sim::Kernel& kernel,
                                                   const sim::FaultPlan& plan) {
  if (plan.rules().empty()) return nullptr;
  return std::make_unique<core::FaultInjector>(plan,
                                               kernel.rng().stream("faults"));
}

// Bridges fired faults onto the observability channel as kFault events.
// The "<site> <kind>" label matches shell::fault_observer, so an AuditLog
// listening on the set shows the same rows as the legacy adapter.
void bridge_faults(core::FaultInjector* faults, obs::ObserverSet* observers) {
  if (!faults || !observers) return;
  faults->set_observer([observers](const core::FaultEvent& fe) {
    obs::ObsEvent event;
    event.kind = obs::ObsEvent::Kind::kFault;
    event.time = fe.time;
    // Fault firings are rare; interning per emission is fine here.
    event.site = obs::intern_site(fe.site + " " + fe.kind);
    event.detail = fe.detail;
    observers->on_event(event);
  });
}

// Spawns n submitters against a fresh schedd world; returns after `window`.
struct SubmitWorld {
  SubmitWorld(const SubmitScenarioConfig& config, grid::DisciplineKind kind,
              int submitters)
      : kernel(config.seed, config.kernel),
        schedd(kernel, config.schedd),
        faults(make_injector(kernel, config.faults)) {
    schedd.set_fault_injector(faults.get());
    schedd.set_observers(config.observers);
    bridge_faults(faults.get(), config.observers);
    grid::SubmitterConfig sc = config.submitter;
    sc.kind = kind;
    stats.resize(std::size_t(submitters));
    for (int i = 0; i < submitters; ++i) {
      kernel.spawn("submitter" + std::to_string(i),
                   grid::make_submitter(schedd, sc, &stats[std::size_t(i)]));
    }
  }

  sim::Kernel kernel;
  grid::Schedd schedd;
  std::unique_ptr<core::FaultInjector> faults;
  std::vector<grid::SubmitterStats> stats;
};

}  // namespace

SubmitScalePoint run_submit_scale_point(const SubmitScenarioConfig& config,
                                        grid::DisciplineKind kind,
                                        int submitters, Duration window) {
  SubmitWorld world(config, kind, submitters);
  world.kernel.run_until(kEpoch + window);
  SubmitScalePoint point;
  point.kind = kind;
  point.submitters = submitters;
  point.jobs_submitted = world.schedd.jobs_submitted();
  point.schedd_crashes = world.schedd.crashes();
  point.fd_low_watermark = world.schedd.fd_table().low_watermark();
  if (world.faults) {
    point.faults_injected = world.faults->fired_total();
    point.fault_audit = world.faults->audit_text();
  }
  point.kernel_events = world.kernel.events_processed();
  world.kernel.shutdown();
  return point;
}

SubmitterTimeline run_submitter_timeline(const SubmitScenarioConfig& config,
                                         grid::DisciplineKind kind,
                                         int submitters, Duration duration,
                                         Duration sample_every) {
  SubmitWorld world(config, kind, submitters);
  SubmitterTimeline timeline;
  timeline.kind = kind;
  timeline.submitters = submitters;
  for (TimePoint t = kEpoch; t <= kEpoch + duration; t += sample_every) {
    world.kernel.run_until(t);
    timeline.points.push_back(TimelinePoint{
        to_seconds(t), double(world.schedd.fd_table().available()),
        double(world.schedd.jobs_submitted())});
  }
  timeline.jobs_total = world.schedd.jobs_submitted();
  timeline.schedd_crashes = world.schedd.crashes();
  if (world.faults) {
    timeline.faults_injected = world.faults->fired_total();
    timeline.fault_audit = world.faults->audit_text();
  }
  timeline.kernel_events = world.kernel.events_processed();
  world.kernel.shutdown();
  return timeline;
}

BufferSweepPoint run_buffer_point(const BufferScenarioConfig& config,
                                  grid::DisciplineKind kind, int producers,
                                  Duration window) {
  sim::Kernel kernel(config.seed, config.kernel);
  grid::FsBuffer buffer(kernel, config.buffer_bytes);
  grid::IoChannel channel(kernel, config.channel);
  auto faults = make_injector(kernel, config.faults);
  channel.set_fault_injector(faults.get());
  buffer.set_fault_injector(faults.get());
  buffer.set_observers(config.observers);
  bridge_faults(faults.get(), config.observers);
  grid::ConsumerStats consumer_stats;
  kernel.spawn("consumer", grid::make_consumer(buffer, channel,
                                               config.consumer,
                                               &consumer_stats));
  std::vector<std::unique_ptr<grid::ProducerStats>> producer_stats;
  for (int i = 0; i < producers; ++i) {
    grid::ProducerConfig pc = config.producer;
    pc.kind = kind;
    pc.name_prefix = "p" + std::to_string(i);
    producer_stats.push_back(std::make_unique<grid::ProducerStats>());
    kernel.spawn("producer" + std::to_string(i),
                 grid::make_producer(buffer, channel, pc,
                                     producer_stats.back().get()));
  }
  kernel.run_until(kEpoch + window);

  BufferSweepPoint point;
  point.kind = kind;
  point.producers = producers;
  point.files_consumed = consumer_stats.files_consumed;
  point.bytes_consumed = consumer_stats.bytes_consumed;
  for (const auto& stats : producer_stats) {
    point.collisions += stats->discipline.collisions;
    point.deferrals += stats->discipline.deferrals;
    point.files_completed += stats->files_completed;
    point.tries_failed += stats->tries_failed;
  }
  if (faults) {
    point.faults_injected = faults->fired_total();
    point.fault_audit = faults->audit_text();
  }
  point.kernel_events = kernel.events_processed();
  kernel.shutdown();
  return point;
}

std::vector<grid::FileServerConfig> ReaderScenarioConfig::paper_farm() {
  grid::FileServerConfig xxx;
  xxx.name = "xxx";
  grid::FileServerConfig yyy;
  yyy.name = "yyy";
  grid::FileServerConfig zzz;
  zzz.name = "zzz";
  zzz.black_hole = true;
  return {xxx, yyy, zzz};
}

ReaderTimeline run_reader_timeline(const ReaderScenarioConfig& config,
                                   grid::DisciplineKind kind,
                                   Duration duration, Duration sample_every) {
  sim::Kernel kernel(config.seed, config.kernel);
  auto servers = config.servers;
  if (servers.empty()) servers = ReaderScenarioConfig::paper_farm();
  grid::ServerFarm farm(kernel, servers);
  auto faults = make_injector(kernel, config.faults);
  if (faults) farm.set_fault_injector(faults.get());
  farm.set_observers(config.observers);
  bridge_faults(faults.get(), config.observers);
  std::vector<std::unique_ptr<grid::ReaderStats>> stats;
  for (int i = 0; i < config.readers; ++i) {
    grid::ReaderConfig rc = config.reader;
    rc.kind = kind;
    stats.push_back(std::make_unique<grid::ReaderStats>());
    kernel.spawn("reader" + std::to_string(i),
                 grid::make_reader(farm, rc, stats.back().get()));
  }

  ReaderTimeline timeline;
  timeline.kind = kind;
  for (TimePoint t = kEpoch; t <= kEpoch + duration; t += sample_every) {
    kernel.run_until(t);
    ReaderTimelinePoint point;
    point.t_seconds = to_seconds(t);
    for (const auto& s : stats) {
      point.transfers += s->transfers;
      point.collisions += s->collisions;
      point.deferrals += s->deferrals;
    }
    timeline.points.push_back(point);
  }
  for (const auto& s : stats) {
    timeline.transfers_total += s->transfers;
    timeline.collisions_total += s->collisions;
    timeline.deferrals_total += s->deferrals;
  }
  if (faults) {
    timeline.faults_injected = faults->fired_total();
    timeline.fault_audit = faults->audit_text();
  }
  timeline.kernel_events = kernel.events_processed();
  kernel.shutdown();
  return timeline;
}

}  // namespace ethergrid::exp
