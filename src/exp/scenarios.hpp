// Scenario runners: one function per figure-shaped experiment.
//
// Each runner builds a fresh simulated world (kernel + substrate + clients),
// runs it for the configured virtual window, shuts the world down, and
// returns the series the paper plots.  All runs are deterministic in the
// seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/clients.hpp"
#include "grid/fileserver.hpp"
#include "grid/schedd.hpp"
#include "obs/observer.hpp"
#include "sim/fault_plan.hpp"
#include "sim/kernel.hpp"
#include "sim/shard.hpp"
#include "util/time.hpp"

namespace ethergrid::exp {

// Every scenario config carries an optional fault plan.  When non-empty,
// the runner builds one core::FaultInjector from the kernel's "faults"
// stream and installs it on every substrate, so the whole run -- workload
// and injected faults alike -- replays identically from (seed, plan).
// Results report faults_injected plus the injector's audit text (one line
// per fired fault, in firing order): byte-equal audits are the replay
// check the chaos suite asserts.

// ------------------------------------------------ scenario 1: submission

struct SubmitScenarioConfig {
  grid::ScheddConfig schedd;        // paper defaults from ScheddConfig
  grid::SubmitterConfig submitter;  // .discipline overridden by the runners
  std::uint64_t seed = 42;
  sim::KernelOptions kernel;        // execution backend; results identical
  sim::FaultPlan faults;            // sites: schedd.submit
  // Observability: installed on the substrate (crashes, fd-table
  // exhaustion) and bridged from the fault injector (kFault events).
  // Not owned; nullptr off.
  obs::ObserverSet* observers = nullptr;
};

// Discipline selection: every runner takes the discipline by registry name
// ("fixed" / "aloha" / "ethernet" / ...).  The grid::DisciplineKind enum
// overloads below are a DEPRECATED one-release shim that forwards through
// discipline_kind_name(); result structs now carry the name.

// Figure 1: jobs submitted in `window` by `submitters` clients.
struct SubmitScalePoint {
  std::string discipline;
  int submitters = 0;
  std::int64_t jobs_submitted = 0;
  int schedd_crashes = 0;
  std::int64_t fd_low_watermark = 0;
  std::int64_t faults_injected = 0;
  std::string fault_audit;
  std::uint64_t kernel_events = 0;  // wakeups processed; for bench reports
};

SubmitScalePoint run_submit_scale_point(const SubmitScenarioConfig& config,
                                        std::string_view discipline,
                                        int submitters,
                                        Duration window = minutes(5));

// DEPRECATED enum shim.
inline SubmitScalePoint run_submit_scale_point(
    const SubmitScenarioConfig& config, grid::DisciplineKind kind,
    int submitters, Duration window = minutes(5)) {
  return run_submit_scale_point(config, grid::discipline_kind_name(kind),
                                submitters, window);
}

// ----------------------------------- scenario 1 at scale: the sharded grid
//
// The same submission workload, partitioned by substrate across a
// sim::ShardedKernel: `sites` schedds, each with its attached submitters,
// placed round-robin on the shards (grid/placement.hpp).  Optionally each
// site also runs `remote_per_site` submitters that target the NEXT site's
// schedd through a cross-shard RPC (request and reply both ride the
// mailbox, so every window carries traffic across every shard pair).
//
// The world is built partition-independently: every per-site name (fault
// site, schedd service stream, submitter RNG stream) embeds the site
// index, and every shard kernel is constructed with the same seed, so a
// site's draws -- and therefore its stats and audit lines -- do not depend
// on how many shards the world was split across.  Pinned by
// tests/sim/backend_equivalence_test.cpp: per-site stats and the merged
// fault audit are identical for shards=1, shards=4/threads=1 and
// shards=4/threads=4.
struct ShardedSubmitConfig {
  std::size_t sites = 4;        // one schedd per site
  int submitters_per_site = 100;
  int remote_per_site = 0;      // cross-shard submitters per site
  grid::ScheddConfig schedd;    // base config; per-site names applied on top
  grid::SubmitterConfig submitter;  // .discipline overridden by the runner
  // One-way latency of the cross-shard submit RPC; floored to the
  // sharded kernel's lookahead by post().
  Duration rpc_latency = msec(50);
  std::uint64_t seed = 42;
  sim::ShardedKernelOptions sharded;  // shards / threads / lookahead / kernel
  sim::FaultPlan faults;  // sites: schedd<i>.submit, site<i>.bulk.write
  // Optional per-site fluid bulk lane: `bulk_per_site` senders stream files
  // over a shard-local fluid link "site<i>.bulk" (plus a per-site
  // ReservationBook when bulk.discipline resolves to a reservation
  // discipline).  Flows are shard-local per the FluidResource sharding
  // contract, so per-site bulk stats must be partition-independent too.
  int bulk_per_site = 0;
  double bulk_link_bps = 4.0 * 1024 * 1024;
  grid::BulkSenderConfig bulk;
  // When set, each shard records a TraceRecorder lane (pid = shard + 1)
  // and the runner returns the merged Chrome-trace JSON.  The merged bytes
  // are deterministic in (seed, config) and independent of thread count.
  bool record_trace = false;
};

struct ShardedSubmitSite {
  std::int64_t jobs_submitted = 0;
  int schedd_crashes = 0;
  std::int64_t fd_low_watermark = 0;
  std::int64_t bulk_files = 0;   // per-site fluid bulk lane (bulk_per_site)
  std::int64_t bulk_bytes = 0;
  std::int64_t bulk_grants = 0;
};

struct ShardedSubmitResult {
  std::string discipline;
  std::size_t sites = 0;
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::vector<ShardedSubmitSite> by_site;
  std::int64_t jobs_total = 0;
  int schedd_crashes = 0;
  std::int64_t remote_jobs = 0;         // successes over the cross-shard RPC
  std::int64_t remote_tries_failed = 0;
  std::int64_t bulk_bytes_total = 0;    // summed over the per-site bulk lanes
  std::int64_t bulk_grants_total = 0;
  std::int64_t faults_injected = 0;
  std::string fault_audit;          // core::merged_audit_text over all shards
  std::uint64_t kernel_events = 0;  // wakeups, summed over shards
  std::uint64_t windows = 0;        // conservative windows run
  std::uint64_t messages_delivered = 0;  // cross-shard mailbox deliveries
  std::string trace_json;           // merged Chrome trace (record_trace)
};

ShardedSubmitResult run_sharded_submit(const ShardedSubmitConfig& config,
                                       std::string_view discipline,
                                       Duration window = minutes(5));

// DEPRECATED enum shim.
inline ShardedSubmitResult run_sharded_submit(const ShardedSubmitConfig& config,
                                              grid::DisciplineKind kind,
                                              Duration window = minutes(5)) {
  return run_sharded_submit(config, grid::discipline_kind_name(kind), window);
}

// Figures 2-3: timeline of available FDs and cumulative jobs.
struct TimelinePoint {
  double t_seconds = 0;
  double available_fds = 0;
  double jobs_submitted = 0;
};

struct SubmitterTimeline {
  std::string discipline;
  int submitters = 0;
  std::vector<TimelinePoint> points;
  std::int64_t jobs_total = 0;
  int schedd_crashes = 0;
  std::int64_t faults_injected = 0;
  std::string fault_audit;
  std::uint64_t kernel_events = 0;  // wakeups processed; for bench reports
};

SubmitterTimeline run_submitter_timeline(const SubmitScenarioConfig& config,
                                         std::string_view discipline,
                                         int submitters = 400,
                                         Duration duration = sec(1800),
                                         Duration sample_every = sec(10));

// DEPRECATED enum shim.
inline SubmitterTimeline run_submitter_timeline(
    const SubmitScenarioConfig& config, grid::DisciplineKind kind,
    int submitters = 400, Duration duration = sec(1800),
    Duration sample_every = sec(10)) {
  return run_submitter_timeline(config, grid::discipline_kind_name(kind),
                                submitters, duration, sample_every);
}

// ------------------------------------------- scenario 2: the disk buffer

struct BufferScenarioConfig {
  std::int64_t buffer_bytes = 120 << 20;  // "120 MB"
  grid::IoChannelConfig channel;          // the shared filesystem medium
  grid::ProducerConfig producer;          // .discipline overridden
  grid::ConsumerConfig consumer;
  std::uint64_t seed = 42;
  sim::KernelOptions kernel;  // execution backend; results identical
  sim::FaultPlan faults;  // sites: iochannel.write, fsbuffer.{create,append,rename}
  // Observability: ENOSPC collisions plus bridged kFault events.  Not
  // owned; nullptr off.
  obs::ObserverSet* observers = nullptr;
};

// Figures 4-5: one sweep point.
struct BufferSweepPoint {
  std::string discipline;
  int producers = 0;
  std::int64_t files_consumed = 0;
  std::int64_t bytes_consumed = 0;
  std::int64_t collisions = 0;   // failed writes (producer-observed)
  std::int64_t deferrals = 0;    // Ethernet carrier-sense deferrals
  std::int64_t files_completed = 0;
  std::int64_t tries_failed = 0;  // wasted producer attempts
  std::int64_t faults_injected = 0;
  std::string fault_audit;
  std::uint64_t kernel_events = 0;  // wakeups processed; for bench reports
};

BufferSweepPoint run_buffer_point(const BufferScenarioConfig& config,
                                  std::string_view discipline, int producers,
                                  Duration window = sec(600));

// DEPRECATED enum shim.
inline BufferSweepPoint run_buffer_point(const BufferScenarioConfig& config,
                                         grid::DisciplineKind kind,
                                         int producers,
                                         Duration window = sec(600)) {
  return run_buffer_point(config, grid::discipline_kind_name(kind), producers,
                          window);
}

// -------------------------------------------- scenario 3: the black hole

struct ReaderScenarioConfig {
  std::vector<grid::FileServerConfig> servers;  // default paper farm
  grid::ReaderConfig reader;                    // .discipline overridden
  int readers = 3;
  std::uint64_t seed = 42;
  sim::KernelOptions kernel;  // execution backend; results identical
  sim::FaultPlan faults;  // sites: fileserver.<name>.{fetch,flag}
  // Observability: transfer collisions, carrier-sense probes, bridged
  // kFault events.  Not owned; nullptr off.
  obs::ObserverSet* observers = nullptr;

  // "three web servers ... one of the three is a permanent black hole"
  static std::vector<grid::FileServerConfig> paper_farm();
};

// Figures 6-7: cumulative event series sampled over time.
struct ReaderTimelinePoint {
  double t_seconds = 0;
  std::int64_t transfers = 0;
  std::int64_t collisions = 0;
  std::int64_t deferrals = 0;
};

struct ReaderTimeline {
  std::string discipline;
  std::vector<ReaderTimelinePoint> points;
  std::int64_t transfers_total = 0;
  std::int64_t collisions_total = 0;
  std::int64_t deferrals_total = 0;
  std::int64_t faults_injected = 0;
  std::string fault_audit;
  std::uint64_t kernel_events = 0;  // wakeups processed; for bench reports
};

ReaderTimeline run_reader_timeline(const ReaderScenarioConfig& config,
                                   std::string_view discipline,
                                   Duration duration = sec(900),
                                   Duration sample_every = sec(30));

// DEPRECATED enum shim.
inline ReaderTimeline run_reader_timeline(const ReaderScenarioConfig& config,
                                          grid::DisciplineKind kind,
                                          Duration duration = sec(900),
                                          Duration sample_every = sec(30)) {
  return run_reader_timeline(config, grid::discipline_kind_name(kind),
                             duration, sample_every);
}

// ------------------------------------------ scenario 4: bulk transfers

// Saturating bulk transfers over one shared *fluid* link: `senders`
// clients push files continuously; the link divides its bandwidth by
// weighted max-min fairness.  All four disciplines run here -- this is the
// scenario where "reservation" means something.
struct BulkScenarioConfig {
  double link_bps = 10.0 * 1024 * 1024;  // shared wide-area link
  // Fraction of the link the ReservationBook may promise.  1.0 books the
  // whole link (Chen & Primet); lower it to keep best-effort headroom when
  // mixing reserved and unreserved senders.
  double reservable_fraction = 1.0;
  grid::ReservationBookConfig book;  // reservable_bps derived when 0
  grid::BulkSenderConfig sender;     // .discipline overridden by the runner
  std::uint64_t seed = 42;
  sim::KernelOptions kernel;  // execution backend; results identical
  sim::FaultPlan faults;      // sites: bulk.write
  obs::ObserverSet* observers = nullptr;
};

// The fig8 comparison: goodput and Jain fairness per discipline.
struct BulkSweepPoint {
  std::string discipline;
  int senders = 0;
  std::int64_t files_sent = 0;
  std::int64_t bytes_sent = 0;
  double goodput_bps = 0;    // bytes_sent / window
  double jain_fairness = 0;  // (sum x)^2 / (n * sum x^2) over sender bytes
  std::int64_t collisions = 0;       // failed/timed-out attempts
  std::int64_t deferrals = 0;        // carrier-sense deferrals (ethernet)
  std::int64_t attempt_timeouts = 0; // starved streams unwound
  std::int64_t tries_failed = 0;     // whole budgets expired
  std::int64_t grants = 0;           // reservation only
  std::int64_t rejects = 0;
  std::vector<std::int64_t> per_sender_bytes;
  std::int64_t faults_injected = 0;
  std::string fault_audit;
  std::uint64_t kernel_events = 0;
};

BulkSweepPoint run_bulk_point(const BulkScenarioConfig& config,
                              std::string_view discipline, int senders,
                              Duration window = sec(600));

}  // namespace ethergrid::exp
