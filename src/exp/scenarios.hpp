// Scenario runners: one function per figure-shaped experiment.
//
// Each runner builds a fresh simulated world (kernel + substrate + clients),
// runs it for the configured virtual window, shuts the world down, and
// returns the series the paper plots.  All runs are deterministic in the
// seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/clients.hpp"
#include "grid/fileserver.hpp"
#include "grid/schedd.hpp"
#include "obs/observer.hpp"
#include "sim/fault_plan.hpp"
#include "sim/kernel.hpp"
#include "util/time.hpp"

namespace ethergrid::exp {

// Every scenario config carries an optional fault plan.  When non-empty,
// the runner builds one core::FaultInjector from the kernel's "faults"
// stream and installs it on every substrate, so the whole run -- workload
// and injected faults alike -- replays identically from (seed, plan).
// Results report faults_injected plus the injector's audit text (one line
// per fired fault, in firing order): byte-equal audits are the replay
// check the chaos suite asserts.

// ------------------------------------------------ scenario 1: submission

struct SubmitScenarioConfig {
  grid::ScheddConfig schedd;        // paper defaults from ScheddConfig
  grid::SubmitterConfig submitter;  // .kind overridden by the runners
  std::uint64_t seed = 42;
  sim::KernelOptions kernel;        // execution backend; results identical
  sim::FaultPlan faults;            // sites: schedd.submit
  // Observability: installed on the substrate (crashes, fd-table
  // exhaustion) and bridged from the fault injector (kFault events).
  // Not owned; nullptr off.
  obs::ObserverSet* observers = nullptr;
};

// Figure 1: jobs submitted in `window` by `submitters` clients of `kind`.
struct SubmitScalePoint {
  grid::DisciplineKind kind;
  int submitters = 0;
  std::int64_t jobs_submitted = 0;
  int schedd_crashes = 0;
  std::int64_t fd_low_watermark = 0;
  std::int64_t faults_injected = 0;
  std::string fault_audit;
  std::uint64_t kernel_events = 0;  // wakeups processed; for bench reports
};

SubmitScalePoint run_submit_scale_point(const SubmitScenarioConfig& config,
                                        grid::DisciplineKind kind,
                                        int submitters,
                                        Duration window = minutes(5));

// Figures 2-3: timeline of available FDs and cumulative jobs.
struct TimelinePoint {
  double t_seconds = 0;
  double available_fds = 0;
  double jobs_submitted = 0;
};

struct SubmitterTimeline {
  grid::DisciplineKind kind;
  int submitters = 0;
  std::vector<TimelinePoint> points;
  std::int64_t jobs_total = 0;
  int schedd_crashes = 0;
  std::int64_t faults_injected = 0;
  std::string fault_audit;
  std::uint64_t kernel_events = 0;  // wakeups processed; for bench reports
};

SubmitterTimeline run_submitter_timeline(const SubmitScenarioConfig& config,
                                         grid::DisciplineKind kind,
                                         int submitters = 400,
                                         Duration duration = sec(1800),
                                         Duration sample_every = sec(10));

// ------------------------------------------- scenario 2: the disk buffer

struct BufferScenarioConfig {
  std::int64_t buffer_bytes = 120 << 20;  // "120 MB"
  grid::IoChannelConfig channel;          // the shared filesystem medium
  grid::ProducerConfig producer;          // .kind overridden
  grid::ConsumerConfig consumer;
  std::uint64_t seed = 42;
  sim::KernelOptions kernel;  // execution backend; results identical
  sim::FaultPlan faults;  // sites: iochannel.write, fsbuffer.{create,append,rename}
  // Observability: ENOSPC collisions plus bridged kFault events.  Not
  // owned; nullptr off.
  obs::ObserverSet* observers = nullptr;
};

// Figures 4-5: one sweep point.
struct BufferSweepPoint {
  grid::DisciplineKind kind;
  int producers = 0;
  std::int64_t files_consumed = 0;
  std::int64_t bytes_consumed = 0;
  std::int64_t collisions = 0;   // failed writes (producer-observed)
  std::int64_t deferrals = 0;    // Ethernet carrier-sense deferrals
  std::int64_t files_completed = 0;
  std::int64_t tries_failed = 0;  // wasted producer attempts
  std::int64_t faults_injected = 0;
  std::string fault_audit;
  std::uint64_t kernel_events = 0;  // wakeups processed; for bench reports
};

BufferSweepPoint run_buffer_point(const BufferScenarioConfig& config,
                                  grid::DisciplineKind kind, int producers,
                                  Duration window = sec(600));

// -------------------------------------------- scenario 3: the black hole

struct ReaderScenarioConfig {
  std::vector<grid::FileServerConfig> servers;  // default paper farm
  grid::ReaderConfig reader;                    // .kind overridden
  int readers = 3;
  std::uint64_t seed = 42;
  sim::KernelOptions kernel;  // execution backend; results identical
  sim::FaultPlan faults;  // sites: fileserver.<name>.{fetch,flag}
  // Observability: transfer collisions, carrier-sense probes, bridged
  // kFault events.  Not owned; nullptr off.
  obs::ObserverSet* observers = nullptr;

  // "three web servers ... one of the three is a permanent black hole"
  static std::vector<grid::FileServerConfig> paper_farm();
};

// Figures 6-7: cumulative event series sampled over time.
struct ReaderTimelinePoint {
  double t_seconds = 0;
  std::int64_t transfers = 0;
  std::int64_t collisions = 0;
  std::int64_t deferrals = 0;
};

struct ReaderTimeline {
  grid::DisciplineKind kind;
  std::vector<ReaderTimelinePoint> points;
  std::int64_t transfers_total = 0;
  std::int64_t collisions_total = 0;
  std::int64_t deferrals_total = 0;
  std::int64_t faults_injected = 0;
  std::string fault_audit;
  std::uint64_t kernel_events = 0;  // wakeups processed; for bench reports
};

ReaderTimeline run_reader_timeline(const ReaderScenarioConfig& config,
                                   grid::DisciplineKind kind,
                                   Duration duration = sec(900),
                                   Duration sample_every = sec(30));

}  // namespace ethergrid::exp
