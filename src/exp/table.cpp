#include "exp/table.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/strings.hpp"

namespace ethergrid::exp {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v) { return strprintf("%g", v); }

std::string Table::cell(std::int64_t v) {
  return strprintf("%lld", static_cast<long long>(v));
}

std::string Table::slug() const {
  std::string out;
  for (char c : title_) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += char(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

void Table::print() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::printf("\n== %s ==\n", title_.c_str());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%-*s  ", int(widths[c]), columns_[c].c_str());
  }
  std::printf("\n");
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::printf("%-*s  ", int(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);

  if (const char* dir = std::getenv("ETHERGRID_CSV_DIR")) {
    std::ofstream csv(std::string(dir) + "/" + slug() + ".csv");
    if (csv) {
      csv << join(columns_, ",") << "\n";
      for (const auto& row : rows_) csv << join(row, ",") << "\n";
    }
  }
}

}  // namespace ethergrid::exp
