// Fixed-width table / CSV output for the benchmark harness.
//
// Every figure bench prints the series the paper plots as a table; setting
// ETHERGRID_CSV_DIR additionally writes each table as CSV for replotting.
#pragma once

#include <string>
#include <vector>

namespace ethergrid::exp {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with %g, integers plainly.
  static std::string cell(double v);
  static std::string cell(std::int64_t v);
  static std::string cell(int v) { return cell(std::int64_t(v)); }

  // Prints the table to stdout; writes "<dir>/<slug>.csv" if the
  // ETHERGRID_CSV_DIR environment variable is set.
  void print() const;

  const std::string& title() const { return title_; }
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string slug() const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ethergrid::exp
