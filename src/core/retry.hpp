// run_try: the C++ embedding of the ftsh `try` construct.
//
//   try for 30 minutes ... end          => TryOptions{.time_limit = 30min}
//   try 5 times ... end                 => TryOptions{.attempt_limit = 5}
//   try for 1 hour or 3 times ... end   => both; whichever expires first
//
// The contained operation is attempted repeatedly with exponential backoff
// until it succeeds or the budget is exhausted.  In virtual time a running
// attempt is forcibly unwound at the deadline (Clock::with_deadline); the
// engine never inspects *why* an attempt failed -- untyped failure is the
// paper's point -- but it does count outcomes for the back channel.
#pragma once

#include <functional>
#include <optional>

#include "core/backoff.hpp"
#include "core/clock.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace ethergrid::core {

// The operation under retry.  Receives the overall deadline (TimePoint::max
// when the try has no time limit) so cooperative implementations can bound
// internal waits.  Must be idempotent-safe: it may run many times and may be
// unwound mid-flight.
using AttemptFn = std::function<Status(TimePoint deadline)>;

// Telemetry for one run_try invocation (the administrative back channel).
struct TryMetrics {
  int attempts = 0;         // times the operation started
  int failures = 0;         // attempts that returned failure
  Duration backoff_total{}; // time spent delaying between attempts
  Duration elapsed{};       // wall/virtual time inside run_try
  bool succeeded = false;
  bool timed_out = false;        // time budget expired
  bool attempts_exhausted = false;

  void merge(const TryMetrics& other);
};

struct TryOptions {
  // "for T": total time budget.  Attempts in flight at expiry are aborted.
  std::optional<Duration> time_limit;
  // "N times": maximum number of attempts.
  std::optional<int> attempt_limit;
  BackoffPolicy backoff = BackoffPolicy::paper_default();
  // Floor on the duration of one attempt+delay cycle.  Real clients pay
  // process startup and syscall costs on every attempt; in virtual time this
  // floor is also what keeps a zero-backoff (Fixed) client retrying an
  // instantly-failing operation from livelocking the simulation at a single
  // instant.  Set to zero only if every attempt provably consumes time.
  Duration min_cycle = msec(1);
  // Optional back-channel accumulator; engine adds to it when non-null.
  TryMetrics* metrics = nullptr;
  // Called with each backoff delay as it is chosen (after min-cycle and
  // deadline clamping, before the sleep).  This is where the observability
  // layer learns the *actual* per-attempt delays -- TryMetrics only carries
  // the total.
  std::function<void(Duration)> on_backoff;

  static TryOptions for_time(Duration d) {
    TryOptions o;
    o.time_limit = d;
    return o;
  }
  static TryOptions times(int n) {
    TryOptions o;
    o.attempt_limit = n;
    return o;
  }
  static TryOptions for_time_or_times(Duration d, int n) {
    TryOptions o;
    o.time_limit = d;
    o.attempt_limit = n;
    return o;
  }
};

// Executes `attempt` under the try discipline.  Returns:
//  - the first successful status;
//  - kTimeout when the time budget expires (including mid-attempt);
//  - the last attempt's failure when the attempt budget is exhausted;
//  - immediately propagates sim::Interrupted / enclosing deadlines.
Status run_try(Clock& clock, Rng& rng, const TryOptions& options,
               const AttemptFn& attempt);

}  // namespace ethergrid::core
