// Exponential backoff with a random spreading factor -- the paper's policy:
//
//   "The base delay is one second, doubled after every failure, up to a
//    maximum of one hour.  Each delay interval is multiplied by a random
//    factor between one and two in order to distribute the expected values."
#pragma once

#include <string>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace ethergrid::core {

struct BackoffPolicy {
  enum class Kind {
    kNone,         // no delay between attempts (the Fixed client)
    kFixed,        // constant `base` delay (jitter still applies if set)
    kExponential,  // base * factor^k, capped (the Aloha/Ethernet client)
  };

  Kind kind = Kind::kExponential;
  Duration base = sec(1);
  double factor = 2.0;
  Duration cap = hours(1);
  // Uniform multiplier range applied to the computed delay.  [1,2) is the
  // paper's choice; [1,1] disables jitter (used by the ablation study).
  double jitter_min = 1.0;
  double jitter_max = 2.0;

  // The exact policy from the paper.
  static BackoffPolicy paper_default() { return BackoffPolicy{}; }

  // Aggressive retry with no delay at all (the Fixed client).
  static BackoffPolicy none();

  // Constant delay with optional jitter.
  static BackoffPolicy fixed(Duration delay);

  // paper_default with jitter disabled; for the cascading-collision study.
  static BackoffPolicy no_jitter();

  std::string describe() const;
};

// Stateful delay generator.  One instance per retry loop; reset() after a
// success restores the base delay.
class Backoff {
 public:
  Backoff(const BackoffPolicy& policy, Rng& rng)
      : policy_(policy), rng_(&rng) {}

  // Delay to apply after the (failures()+1)-th consecutive failure.
  // Advances the failure counter.
  Duration next();

  // Delay that next() would return before jitter; does not advance.
  Duration peek_base() const;

  void reset() { failures_ = 0; }
  int failures() const { return failures_; }

 private:
  BackoffPolicy policy_;
  Rng* rng_;
  int failures_ = 0;
};

}  // namespace ethergrid::core
