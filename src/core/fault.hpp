// FaultInjector: the deterministic chaos harness.
//
// Substrates declare named injection *sites* ("fileserver.xxx.fetch",
// "schedd.submit", "iochannel.write", "fsbuffer.append") and ask the
// injector for a decision at each pass.  The injector interprets a
// sim::FaultPlan against per-site RNG streams derived from one root stream,
// so a run with the same seed and plan replays the identical fault
// sequence -- and the injector's own audit trail (every fired fault, in
// order, with virtual timestamps) is byte-identical across replays.  That
// trail is the post-mortem "which injected fault did each discipline
// absorb" view; an observer hook forwards fired faults to richer back
// channels such as shell::AuditLog.
//
// The injector only *decides*; the site executes.  A kFail decision is a
// status the site returns, a kStall is extra latency the site sleeps, a
// kReset is a failure after a fraction of the payload, kPartition means
// "behave as a black hole right now", and kCrash maps to whatever
// whole-component failure the site models (the schedd's crash, for
// example).  Keeping execution at the site is what lets one injector span
// the simulated substrates and, via the syscall shim, the POSIX layer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "mc/strategy.hpp"
#include "sim/fault_plan.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace ethergrid::core {

// What a site must do right now.  kNone means proceed normally.
struct FaultDecision {
  enum class Action { kNone, kFail, kStall, kReset, kPartition, kCrash };

  Action action = Action::kNone;
  Status status;        // kFail / kReset / kCrash: what the caller returns
  Duration stall{};     // kStall: extra latency to serve
  double fraction = 0;  // kReset: payload fraction consumed before the reset
};

// One fired fault, as recorded in the audit trail.
struct FaultEvent {
  TimePoint time{};
  std::string site;
  std::string kind;    // fault_kind_name of the firing rule
  std::string detail;  // human-readable parameters ("fraction=0.42", ...)
};

class FaultInjector {
 public:
  // An empty injector never fires; substrates may hold one by value.
  FaultInjector() = default;
  FaultInjector(const sim::FaultPlan& plan, Rng root);

  bool enabled() const { return !plan_.empty(); }

  // Evaluates the plan's rules in order against `site` at virtual time
  // `now`; the first rule that fires wins.  Draws from the site's private
  // RNG stream, so distinct sites never perturb each other's sequences.
  FaultDecision decide(std::string_view site, TimePoint now);

  // Called synchronously for every fired fault (after it is recorded).
  void set_observer(std::function<void(const FaultEvent&)> observer);

  // Model checking: with a strategy installed, probabilistic rules stop
  // drawing from the per-site RNG stream and become an enumerable choice.
  // For each consultation, the eligible alternatives are the matching
  // kError/kStall/kReset rules with 0 < probability < 1, in plan order, up
  // to (but not including) the first rule that would fire deterministically
  // -- a crash past its time, a partition inside its window, or any rule
  // with probability >= 1 -- which becomes the fallback.  choose() index 0
  // means "no probabilistic fault" (the fallback fires if there is one);
  // index k>0 fires the k-th alternative.  kReset fires with the midpoint
  // of its fraction range so the decision stays RNG-free.  Sites with no
  // alternatives never consult the strategy, and the RNG streams are not
  // advanced while one is installed.
  void set_strategy(mc::Strategy* strategy);

  // --- audit trail ---
  std::int64_t fired_total() const;
  std::int64_t fired_at(std::string_view site) const;
  std::vector<FaultEvent> events() const;
  // One line per fired fault: "t=<seconds> <site> <kind> <detail>".
  // Byte-identical across replays of the same seed + plan.
  std::string audit_text() const;

  // Renders one audit line in the exact audit_text() format (shared by the
  // sharded merge below).
  static std::string render_audit_line(const FaultEvent& event);

 private:
  Rng& site_rng(std::string_view site);
  void record(TimePoint now, std::string_view site, const sim::FaultSpec& spec,
              std::string detail);
  FaultDecision decide_with_strategy_locked(std::string_view site,
                                            TimePoint now);
  FaultDecision fire_rule_locked(std::size_t index, std::string_view site,
                                 TimePoint now);

  sim::FaultPlan plan_;
  Rng root_;
  mutable std::mutex mu_;
  std::map<std::string, Rng, std::less<>> streams_;
  std::vector<bool> crash_fired_;  // one-shot latch per kCrash rule
  std::vector<FaultEvent> events_;
  std::map<std::string, std::int64_t, std::less<>> fired_;
  std::function<void(const FaultEvent&)> observer_;
  mc::Strategy* strategy_ = nullptr;
};

// Canonical merge of several injectors' audit trails (sharded worlds run
// one injector per shard, all built from the same root RNG so per-site
// streams match the unsharded world).  Events are stable-sorted by
// (time, site): per-site relative order -- which is causal, since a site
// fires from exactly one injector -- is preserved, and the interleaving
// between sites becomes partition-independent.  The rendered text uses the
// audit_text() line format, so shards=1 and shards=N produce the same
// bytes for partition-independent worlds.
std::string merged_audit_text(std::vector<FaultEvent> events);

}  // namespace ethergrid::core
