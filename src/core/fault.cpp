#include "core/fault.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace ethergrid::core {

FaultInjector::FaultInjector(const sim::FaultPlan& plan, Rng root)
    : plan_(plan),
      root_(root),
      crash_fired_(plan.rules().size(), false) {}

Rng& FaultInjector::site_rng(std::string_view site) {
  auto it = streams_.find(site);
  if (it == streams_.end()) {
    // Derived from the root by name, so the stream a site gets does not
    // depend on which other sites were consulted first.
    it = streams_.emplace(std::string(site), root_.stream(site)).first;
  }
  return it->second;
}

void FaultInjector::record(TimePoint now, std::string_view site,
                           const sim::FaultSpec& spec, std::string detail) {
  FaultEvent event{now, std::string(site),
                   std::string(fault_kind_name(spec.kind)),
                   std::move(detail)};
  events_.push_back(event);
  ++fired_[event.site];
  if (observer_) observer_(event);
}

// Fires rule `index` unconditionally (the strategy already decided) and
// records it.  Mirrors the per-kind bodies of the RNG path below, with the
// one RNG draw (the reset fraction) replaced by the range midpoint.
FaultDecision FaultInjector::fire_rule_locked(std::size_t index,
                                              std::string_view site,
                                              TimePoint now) {
  const sim::FaultRule& rule = plan_.rules()[index];
  const sim::FaultSpec& spec = rule.spec;
  FaultDecision decision;
  switch (spec.kind) {
    case sim::FaultSpec::Kind::kError:
      decision.action = FaultDecision::Action::kFail;
      decision.status =
          Status(spec.code, "injected fault: " + std::string(site));
      record(now, site, spec, "");
      break;
    case sim::FaultSpec::Kind::kStall:
      decision.action = FaultDecision::Action::kStall;
      decision.stall = spec.stall;
      record(now, site, spec, strprintf("stall=%gs", to_seconds(spec.stall)));
      break;
    case sim::FaultSpec::Kind::kReset: {
      const double fraction = (spec.fraction_min + spec.fraction_max) / 2;
      decision.action = FaultDecision::Action::kReset;
      decision.fraction = fraction;
      decision.status =
          Status(spec.code, "injected reset: " + std::string(site));
      record(now, site, spec, strprintf("fraction=%.3f", fraction));
      break;
    }
    case sim::FaultSpec::Kind::kCrash:
      crash_fired_[index] = true;
      decision.action = FaultDecision::Action::kCrash;
      decision.status = Status(StatusCode::kUnavailable,
                               "injected crash: " + std::string(site));
      record(now, site, spec, strprintf("at=%gs", to_seconds(spec.at)));
      break;
    case sim::FaultSpec::Kind::kPartition:
      decision.action = FaultDecision::Action::kPartition;
      decision.status = Status(StatusCode::kUnavailable,
                               "injected partition: " + std::string(site));
      record(now, site, spec,
             strprintf("window=%g-%gs", to_seconds(spec.window_start),
                       to_seconds(spec.window_end)));
      break;
  }
  return decision;
}

FaultDecision FaultInjector::decide_with_strategy_locked(std::string_view site,
                                                         TimePoint now) {
  // Collect the alternatives (see set_strategy in the header for the
  // contract): probabilistic rules that *might* fire, in plan order, capped
  // by the first rule that *must* fire under first-match-wins.
  const auto& rules = plan_.rules();
  std::vector<std::size_t> alternatives;
  std::size_t fallback = rules.size();  // sentinel: nothing deterministic
  for (std::size_t i = 0; i < rules.size() && fallback == rules.size(); ++i) {
    const sim::FaultRule& rule = rules[i];
    if (!sim::site_matches(rule.site_pattern, site)) continue;
    const sim::FaultSpec& spec = rule.spec;
    switch (spec.kind) {
      case sim::FaultSpec::Kind::kError:
      case sim::FaultSpec::Kind::kStall:
      case sim::FaultSpec::Kind::kReset:
        if (spec.probability <= 0) continue;
        if (spec.probability >= 1) {
          fallback = i;  // fires whenever reached: caps the scan
        } else {
          alternatives.push_back(i);
        }
        break;
      case sim::FaultSpec::Kind::kCrash:
        if (!crash_fired_[i] && now >= spec.at) fallback = i;
        break;
      case sim::FaultSpec::Kind::kPartition:
        if (now >= spec.window_start && now < spec.window_end) fallback = i;
        break;
    }
  }
  if (alternatives.empty()) {
    if (fallback < rules.size()) return fire_rule_locked(fallback, site, now);
    return FaultDecision{};
  }
  std::vector<std::string> labels;
  labels.reserve(alternatives.size() + 1);
  labels.push_back(fallback < rules.size()
                       ? std::string(sim::fault_kind_name(
                             rules[fallback].spec.kind)) +
                             "@" + rules[fallback].site_pattern + "#" +
                             std::to_string(fallback)
                       : std::string("none"));
  for (std::size_t i : alternatives) {
    labels.push_back(std::string(sim::fault_kind_name(rules[i].spec.kind)) +
                     "@" + rules[i].site_pattern + "#" + std::to_string(i));
  }
  const mc::ChoicePoint cp{mc::ChoicePoint::Kind::kFault, site, labels};
  std::size_t chosen = strategy_->choose(cp);
  if (chosen >= labels.size()) chosen = 0;
  if (chosen == 0) {
    if (fallback < rules.size()) return fire_rule_locked(fallback, site, now);
    return FaultDecision{};
  }
  return fire_rule_locked(alternatives[chosen - 1], site, now);
}

FaultDecision FaultInjector::decide(std::string_view site, TimePoint now) {
  FaultDecision decision;
  if (plan_.empty()) return decision;
  std::lock_guard<std::mutex> lock(mu_);
  if (strategy_ != nullptr) return decide_with_strategy_locked(site, now);
  const auto& rules = plan_.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const sim::FaultRule& rule = rules[i];
    if (!sim::site_matches(rule.site_pattern, site)) continue;
    const sim::FaultSpec& spec = rule.spec;
    switch (spec.kind) {
      case sim::FaultSpec::Kind::kError:
        if (!site_rng(site).chance(spec.probability)) continue;
        decision.action = FaultDecision::Action::kFail;
        decision.status = Status(spec.code, "injected fault: " +
                                                std::string(site));
        record(now, site, spec, "");
        return decision;
      case sim::FaultSpec::Kind::kStall:
        if (!site_rng(site).chance(spec.probability)) continue;
        decision.action = FaultDecision::Action::kStall;
        decision.stall = spec.stall;
        record(now, site, spec,
               strprintf("stall=%gs", to_seconds(spec.stall)));
        return decision;
      case sim::FaultSpec::Kind::kReset: {
        Rng& rng = site_rng(site);
        // Draw the fraction unconditionally so the stream's advance per
        // consultation is fixed whether or not the reset fires.
        const double fraction =
            spec.fraction_max > spec.fraction_min
                ? rng.uniform(spec.fraction_min, spec.fraction_max)
                : spec.fraction_min;
        if (!rng.chance(spec.probability)) continue;
        decision.action = FaultDecision::Action::kReset;
        decision.fraction = fraction;
        decision.status = Status(spec.code, "injected reset: " +
                                                std::string(site));
        record(now, site, spec, strprintf("fraction=%.3f", fraction));
        return decision;
      }
      case sim::FaultSpec::Kind::kCrash:
        if (crash_fired_[i] || now < spec.at) continue;
        crash_fired_[i] = true;
        decision.action = FaultDecision::Action::kCrash;
        decision.status =
            Status(StatusCode::kUnavailable,
                   "injected crash: " + std::string(site));
        record(now, site, spec, strprintf("at=%gs", to_seconds(spec.at)));
        return decision;
      case sim::FaultSpec::Kind::kPartition:
        if (now < spec.window_start || now >= spec.window_end) continue;
        decision.action = FaultDecision::Action::kPartition;
        decision.status =
            Status(StatusCode::kUnavailable,
                   "injected partition: " + std::string(site));
        record(now, site, spec,
               strprintf("window=%g-%gs", to_seconds(spec.window_start),
                         to_seconds(spec.window_end)));
        return decision;
    }
  }
  return decision;
}

void FaultInjector::set_strategy(mc::Strategy* strategy) {
  std::lock_guard<std::mutex> lock(mu_);
  strategy_ = strategy;
}

void FaultInjector::set_observer(
    std::function<void(const FaultEvent&)> observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(observer);
}

std::int64_t FaultInjector::fired_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::int64_t(events_.size());
}

std::int64_t FaultInjector::fired_at(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fired_.find(site);
  return it == fired_.end() ? 0 : it->second;
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string FaultInjector::render_audit_line(const FaultEvent& event) {
  std::string out = strprintf("t=%.6f %s %s", to_seconds(event.time),
                              event.site.c_str(), event.kind.c_str());
  if (!event.detail.empty()) {
    out += ' ';
    out += event.detail;
  }
  out += '\n';
  return out;
}

std::string FaultInjector::audit_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const FaultEvent& event : events_) {
    out += render_audit_line(event);
  }
  return out;
}

std::string merged_audit_text(std::vector<FaultEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.site < b.site;
                   });
  std::string out;
  for (const FaultEvent& event : events) {
    out += FaultInjector::render_audit_line(event);
  }
  return out;
}

}  // namespace ethergrid::core
