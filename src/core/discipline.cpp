#include "core/discipline.hpp"

#include <utility>

namespace ethergrid::core {

Discipline Discipline::fixed(TryOptions options) {
  options.backoff = BackoffPolicy::none();
  return Discipline{"fixed", options, nullptr};
}

Discipline Discipline::aloha(TryOptions options) {
  return Discipline{"aloha", options, nullptr};
}

Discipline Discipline::ethernet(TryOptions options, CarrierSenseFn carrier) {
  return Discipline{"ethernet", options, std::move(carrier)};
}

Status run_with_discipline(Clock& clock, Rng& rng,
                           const Discipline& discipline, const AttemptFn& work,
                           DisciplineMetrics* metrics) {
  TryOptions options = discipline.options;
  TryMetrics try_metrics;
  options.metrics = &try_metrics;

  Status result = run_try(clock, rng, options, [&](TimePoint deadline) {
    if (discipline.carrier_sense) {
      if (metrics) ++metrics->probes;
      Status clear = discipline.carrier_sense(deadline);
      if (clear.failed()) {
        if (metrics) ++metrics->deferrals;
        // Deferral: the medium is busy.  Fail the attempt *without* running
        // the work; run_try applies the backoff.
        return Status(clear.code(), "carrier busy: " + clear.message());
      }
    }
    Status status = work(deadline);
    if (status.failed() && metrics) ++metrics->collisions;
    return status;
  });

  if (metrics) metrics->try_metrics.merge(try_metrics);
  return result;
}

}  // namespace ethergrid::core
