#include "core/clock.hpp"

#include <thread>

namespace ethergrid::core {

WallClock::WallClock() : start_(std::chrono::steady_clock::now()) {}

TimePoint WallClock::now() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return kEpoch + std::chrono::duration_cast<Duration>(elapsed);
}

void WallClock::sleep(Duration d) {
  if (d > Duration(0)) std::this_thread::sleep_for(d);
}

Status WallClock::with_deadline(TimePoint deadline,
                                const std::function<Status()>& fn) {
  // Cooperative: fn (e.g. the POSIX executor) enforces the deadline itself.
  Status status = fn();
  if (status.failed() && now() >= deadline &&
      status.code() != StatusCode::kTimeout) {
    return Status::timeout("deadline expired during attempt");
  }
  return status;
}

}  // namespace ethergrid::core
