#include "core/retry.hpp"

#include <algorithm>

namespace ethergrid::core {

void TryMetrics::merge(const TryMetrics& other) {
  attempts += other.attempts;
  failures += other.failures;
  backoff_total += other.backoff_total;
  elapsed += other.elapsed;
  succeeded = succeeded || other.succeeded;
  timed_out = timed_out || other.timed_out;
  attempts_exhausted = attempts_exhausted || other.attempts_exhausted;
}

Status run_try(Clock& clock, Rng& rng, const TryOptions& options,
               const AttemptFn& attempt) {
  const TimePoint start = clock.now();
  const TimePoint deadline = options.time_limit
                                 ? start + *options.time_limit
                                 : TimePoint::max();
  TryMetrics local;
  // Record into the caller's accumulator even if we unwind via an enclosing
  // deadline or a kill.
  struct Flush {
    const TryOptions& options;
    TryMetrics& local;
    Clock& clock;
    TimePoint start;
    ~Flush() {
      local.elapsed = clock.now() - start;
      if (options.metrics) options.metrics->merge(local);
    }
  } flush{options, local, clock, start};

  Status result = clock.with_deadline(deadline, [&]() -> Status {
    Backoff backoff(options.backoff, rng);
    Status last = Status::failure("try: no attempts made");
    while (true) {
      if (options.attempt_limit && local.attempts >= *options.attempt_limit) {
        local.attempts_exhausted = true;
        return last;
      }
      if (clock.now() >= deadline) {
        return Status::timeout("try: time budget expired");
      }
      ++local.attempts;
      const TimePoint cycle_start = clock.now();
      last = attempt(deadline);
      if (last.ok()) {
        local.succeeded = true;
        return last;
      }
      ++local.failures;
      if (options.attempt_limit && local.attempts >= *options.attempt_limit) {
        local.attempts_exhausted = true;  // no point delaying after the last
        return last;
      }
      Duration delay = backoff.next();
      const Duration cycle_elapsed = clock.now() - cycle_start;
      if (cycle_elapsed + delay < options.min_cycle) {
        delay = options.min_cycle - cycle_elapsed;
      }
      if (deadline != TimePoint::max()) {
        delay = std::min(delay, deadline - clock.now());
      }
      if (delay > Duration(0)) {
        if (options.on_backoff) options.on_backoff(delay);
        // Record what was actually slept, not what was asked for: a group
        // abort (or an unwinding deadline) can cut the sleep short, and the
        // back channel must not overstate time spent backing off.
        const TimePoint sleep_start = clock.now();
        try {
          clock.sleep(delay);
        } catch (...) {
          local.backoff_total += clock.now() - sleep_start;
          throw;
        }
        local.backoff_total += clock.now() - sleep_start;
      }
    }
  });
  if (result.code() == StatusCode::kTimeout) local.timed_out = true;
  return result;
}

}  // namespace ethergrid::core
