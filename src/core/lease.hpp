// Limited allocation: "even after fairly acquiring a resource and using it
// without collision, a client must release it periodically to permit others
// to compete in the acquisition protocol."
//
// LeaseTimer is the small policy object behind that obligation: a client
// holding a shared resource asks expired() between work units and releases
// (then re-competes) when its slice is up.  The ablation bench
// `ablation_limited_allocation` compares holding a schedd connection forever
// against leasing it.
#pragma once

#include "core/clock.hpp"
#include "util/time.hpp"

namespace ethergrid::core {

class LeaseTimer {
 public:
  // `slice`: maximum continuous hold time.  A non-positive slice never
  // expires (the "hog" configuration for ablations).
  LeaseTimer(Clock& clock, Duration slice)
      : clock_(&clock), slice_(slice), acquired_at_(clock.now()) {}

  // Call when the resource is (re-)acquired.
  void on_acquire() { acquired_at_ = clock_->now(); }

  bool expired() const {
    if (slice_ <= Duration(0)) return false;
    return clock_->now() - acquired_at_ >= slice_;
  }

  Duration held() const { return clock_->now() - acquired_at_; }
  Duration slice() const { return slice_; }

 private:
  Clock* clock_;
  Duration slice_;
  TimePoint acquired_at_;
};

}  // namespace ethergrid::core
