// Client disciplines: the three contenders of the paper's evaluation.
//
//   Fixed    -- aggressively repeats the work with no delay and no regard
//               for failure ("fixed client").
//   Aloha    -- plain `try`: exponential backoff + random factor after each
//               failure, no knowledge of the medium.
//   Ethernet -- Aloha plus *carrier sense*: a cheap probe of the shared
//               resource before each attempt; a busy medium defers (counts
//               as a failure for backoff purposes) without consuming it.
//
// Collision detection is the attempt itself observing its effects (the
// operation returns failure); the discipline counts those.  Limited
// allocation is the client releasing the resource between work units, which
// is the structure of the scenario clients in grid/.
#pragma once

#include <functional>
#include <string>

#include "core/retry.hpp"

namespace ethergrid::core {

// Probe of the shared medium.  ok() = clear to transmit.  Receives the
// overall attempt deadline so a probe with its own timeout can bound itself.
using CarrierSenseFn = std::function<Status(TimePoint deadline)>;

// Telemetry across one discipline run.
struct DisciplineMetrics {
  TryMetrics try_metrics;
  int deferrals = 0;   // carrier-sense said busy; we backed off pre-emptively
  int collisions = 0;  // the operation itself failed (post-consumption)
  int probes = 0;      // carrier-sense invocations
};

struct Discipline {
  std::string name;
  TryOptions options;             // backoff + budget
  CarrierSenseFn carrier_sense;   // empty for Fixed/Aloha

  // The paper's three clients, parameterized by the try budget.
  static Discipline fixed(TryOptions options);
  static Discipline aloha(TryOptions options);
  static Discipline ethernet(TryOptions options, CarrierSenseFn carrier);
};

// Runs `work` under the discipline: per attempt, probe the carrier (if any)
// and defer on busy; otherwise run the work.  Budget, backoff, and abort
// semantics are run_try's.  `metrics` may be null.
Status run_with_discipline(Clock& clock, Rng& rng,
                           const Discipline& discipline, const AttemptFn& work,
                           DisciplineMetrics* metrics);

}  // namespace ethergrid::core
