#include "core/backoff.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace ethergrid::core {

BackoffPolicy BackoffPolicy::none() {
  BackoffPolicy p;
  p.kind = Kind::kNone;
  p.base = Duration(0);
  p.jitter_min = p.jitter_max = 1.0;
  return p;
}

BackoffPolicy BackoffPolicy::fixed(Duration delay) {
  BackoffPolicy p;
  p.kind = Kind::kFixed;
  p.base = delay;
  p.jitter_min = p.jitter_max = 1.0;
  return p;
}

BackoffPolicy BackoffPolicy::no_jitter() {
  BackoffPolicy p;
  p.jitter_min = p.jitter_max = 1.0;
  return p;
}

std::string BackoffPolicy::describe() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kFixed:
      return "fixed(" + format_duration(base) + ")";
    case Kind::kExponential:
      return strprintf("exp(base=%s, x%.3g, cap=%s, jitter=[%.3g,%.3g))",
                       format_duration(base).c_str(), factor,
                       format_duration(cap).c_str(), jitter_min, jitter_max);
  }
  return "?";
}

Duration Backoff::peek_base() const {
  switch (policy_.kind) {
    case BackoffPolicy::Kind::kNone:
      return Duration(0);
    case BackoffPolicy::Kind::kFixed:
      return policy_.base;
    case BackoffPolicy::Kind::kExponential: {
      // base * factor^failures, saturating at cap.
      double us = double(policy_.base.count()) *
                  std::pow(policy_.factor, double(failures_));
      us = std::min(us, double(policy_.cap.count()));
      return Duration(static_cast<std::int64_t>(us));
    }
  }
  return Duration(0);
}

Duration Backoff::next() {
  Duration base = peek_base();
  ++failures_;
  if (base <= Duration(0)) return Duration(0);
  double jitter = 1.0;
  if (policy_.jitter_max > policy_.jitter_min) {
    jitter = rng_->uniform(policy_.jitter_min, policy_.jitter_max);
  } else {
    jitter = policy_.jitter_min;
  }
  return Duration(static_cast<std::int64_t>(double(base.count()) * jitter));
}

}  // namespace ethergrid::core
