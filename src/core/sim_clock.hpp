// SimClock: Clock implementation over a simulated process Context.
//
// with_deadline uses the kernel's deadline stack, so fn is *preemptively*
// unwound exactly at the deadline -- the virtual-time analogue of ftsh
// killing a POSIX session on timeout.
#pragma once

#include "core/clock.hpp"
#include "sim/kernel.hpp"

namespace ethergrid::core {

class SimClock final : public Clock {
 public:
  explicit SimClock(sim::Context& ctx) : ctx_(&ctx) {}

  TimePoint now() override { return ctx_->now(); }

  void sleep(Duration d) override { ctx_->sleep(d); }

  Status with_deadline(TimePoint deadline,
                       const std::function<Status()>& fn) override {
    sim::DeadlineScope scope(*ctx_, deadline);
    try {
      return fn();
    } catch (const sim::DeadlineExceeded& d) {
      if (d.token != scope.token()) throw;  // an enclosing deadline: not ours
      return Status::timeout("deadline expired during attempt");
    }
  }

  sim::Context& context() { return *ctx_; }

 private:
  sim::Context* ctx_;
};

}  // namespace ethergrid::core
