// Clock: the seam that lets the Ethernet machinery run identically in
// virtual time (experiments) and wall-clock time (the real ftsh tool).
#pragma once

#include <functional>

#include "util/status.hpp"
#include "util/time.hpp"

namespace ethergrid::core {

class Clock {
 public:
  virtual ~Clock() = default;

  virtual TimePoint now() = 0;

  // Blocks for d.  Virtual-time implementations may throw (sim::Interrupted,
  // sim::DeadlineExceeded from an *enclosing* scope); callers let those
  // propagate.
  virtual void sleep(Duration d) = 0;

  // Runs fn under a hard deadline.  Returns fn's status, or a kTimeout
  // status if *this* deadline cut fn short.  An enclosing deadline firing
  // inside fn still propagates as an exception (it is not ours to absorb).
  //
  // The virtual-time implementation enforces the deadline preemptively (fn
  // is forcibly unwound at the deadline, the paper's SIGTERM analogue); the
  // wall-clock implementation is cooperative -- fn receives the deadline and
  // is responsible for honoring it (the POSIX executor does so by killing
  // process sessions).
  virtual Status with_deadline(TimePoint deadline,
                               const std::function<Status()>& fn) = 0;
};

// Wall-clock implementation over std::chrono::steady_clock.  now() is the
// elapsed time since construction, mapped onto the ethergrid epoch.
class WallClock final : public Clock {
 public:
  WallClock();
  TimePoint now() override;
  void sleep(Duration d) override;
  Status with_deadline(TimePoint deadline,
                       const std::function<Status()>& fn) override;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ethergrid::core
