#include "mc/scenarios.hpp"

#include <utility>

#include "core/fault.hpp"
#include "grid/fd_table.hpp"
#include "grid/reservation.hpp"
#include "grid/schedd.hpp"
#include "grid/substrate.hpp"
#include "shell/session.hpp"
#include "shell/sim_executor.hpp"
#include "sim/resource.hpp"
#include "sim/shard.hpp"
#include "sim/store.hpp"

namespace ethergrid::mc {

namespace {

// ------------------------------------------------------------ forall-abort

// One branch of three fails after a same-instant sleep; the interpreter's
// sibling-abort (kill-on-failure) storm must leave no process behind and
// keep the wakeup accounting exact through the kills.  The sleeps are
// deliberately identical so every branch wakes at the same instant --
// maximum scheduling ambiguity for the explorer to enumerate.
constexpr const char* kForallAbortScript = R"(
forall b in 1 2 3
  branch ${b}
end
)";

class ForallAbortWorld final : public ScenarioWorld {
 public:
  explicit ForallAbortWorld(sim::Kernel& kernel)
      : executor(kernel), session(executor) {}

  shell::SimExecutor executor;
  shell::Session session;
  Status result = Status::success();
  bool script_done = false;
};

class ForallAbortScenario final : public Scenario {
 public:
  std::string name() const override { return "forall-abort"; }

  std::unique_ptr<ScenarioWorld> build(sim::Kernel& kernel, Strategy*,
                                       InvariantSet& invariants) override {
    auto world = std::make_unique<ForallAbortWorld>(kernel);
    ForallAbortWorld* w = world.get();
    w->executor.register_command(
        "branch",
        [](sim::Context& ctx,
           const shell::CommandInvocation& inv) -> shell::CommandResult {
          ctx.sleep(msec(1));
          if (inv.argv.size() > 1 && inv.argv[1] == "2") {
            return {Status::failure("branch 2 fails"), "", ""};
          }
          return {Status::success(), "", ""};
        });
    kernel.spawn("script", [w](sim::Context& ctx) {
      shell::SimExecutor::ContextBinding binding(w->executor, ctx);
      w->result = w->session.run_source(kForallAbortScript);
      w->script_done = true;
    });
    invariants.add("forall-reports-failure",
                   [w](const CheckContext& ctx) -> Status {
                     if (!ctx.at_end) return Status::success();
                     if (!w->script_done) {
                       return Status::failure("script never completed");
                     }
                     if (w->result.ok()) {
                       return Status::failure(
                           "forall with a failing branch reported success");
                     }
                     return Status::success();
                   });
    return world;
  }
};

// ---------------------------------------------------- try-timeout-resource

// Two clients race a try/timeout around a capacity-1 Resource, fd-table
// entries, and a bounded Store slot, with a probabilistic stall fault that
// pushes some paths past the deadline.  Whatever the interleaving and
// whichever side of the deadline each wait lands on, every unwind path must
// give back everything it held.
constexpr const char* kTryTimeoutScript = R"(
try for 60 milliseconds
  grab
end
)";

class TryTimeoutWorld final : public ScenarioWorld {
 public:
  explicit TryTimeoutWorld(sim::Kernel& kernel, Rng fault_rng)
      : resource(kernel, 1),
        fds(8),
        store(kernel, 2),
        faults(sim::FaultPlan().add("mc.grab",
                                    sim::FaultPlan::stall(0.5, msec(40))),
               fault_rng),
        executor(kernel) {}

  sim::Resource resource;
  grid::FdTable fds;
  sim::Store<int> store;
  core::FaultInjector faults;
  shell::SimExecutor executor;
  std::vector<std::unique_ptr<shell::Session>> sessions;
};

class TryTimeoutScenario final : public Scenario {
 public:
  std::string name() const override { return "try-timeout-resource"; }

  std::unique_ptr<ScenarioWorld> build(sim::Kernel& kernel,
                                       Strategy* strategy,
                                       InvariantSet& invariants) override {
    auto world = std::make_unique<TryTimeoutWorld>(kernel, kernel.rng());
    TryTimeoutWorld* w = world.get();
    w->faults.set_strategy(strategy);
    w->executor.register_command(
        "grab",
        [w](sim::Context& ctx,
            const shell::CommandInvocation&) -> shell::CommandResult {
          // Everything acquired here must ride RAII (or the guard below):
          // the enclosing try's deadline may unwind this frame at any wait.
          sim::ResourceLease lease(ctx, w->resource);
          grid::FdLease fd(w->fds, 2);
          const core::FaultDecision fault =
              w->faults.decide("mc.grab", ctx.now());
          if (fault.action == core::FaultDecision::Action::kStall) {
            ctx.sleep(fault.stall);
          }
          w->store.put(ctx, 1);
          // Pop our slot back out even if the sleep below unwinds.
          struct StoreSlotGuard {
            sim::Store<int>* store;
            ~StoreSlotGuard() {
              int value = 0;
              store->try_get(&value);
            }
          } guard{&w->store};
          ctx.sleep(msec(30));
          return {Status::success(), "", ""};
        });
    shell::SessionOptions session_options;
    session_options.backoff.kind = core::BackoffPolicy::Kind::kFixed;
    session_options.backoff.base = msec(10);
    session_options.backoff.jitter_min = 1.0;
    session_options.backoff.jitter_max = 1.0;
    for (int i = 0; i < 2; ++i) {
      w->sessions.push_back(
          std::make_unique<shell::Session>(w->executor, session_options));
      shell::Session* session = w->sessions.back().get();
      kernel.spawn("client" + std::to_string(i), [w, session](
                                                    sim::Context& ctx) {
        shell::SimExecutor::ContextBinding binding(w->executor, ctx);
        (void)session->run_source(kTryTimeoutScript);
      });
    }
    invariants.add(
        "try-timeout-releases-resources",
        [w](const CheckContext& ctx) -> Status {
          if (!ctx.at_end) return Status::success();
          if (w->resource.available() != w->resource.capacity()) {
            return Status::failure(
                "resource units leaked: available " +
                std::to_string(w->resource.available()) + " of " +
                std::to_string(w->resource.capacity()));
          }
          if (w->fds.in_use() != 0) {
            return Status::failure("fd-table entries leaked: in_use " +
                                   std::to_string(w->fds.in_use()));
          }
          if (w->store.size() != 0) {
            return Status::failure("store slots leaked: size " +
                                   std::to_string(w->store.size()));
          }
          return Status::success();
        });
    return world;
  }
};

// ---------------------------------------------------- carrier-sense-crash

// The paper's Ethernet submitter (carrier-sense on the fd table, then
// submit) against a Schedd that crashes partway through and probabilistically
// rejects submissions.  The discipline's whole claim is that it rides out
// the crash: no interleaving or fault branch may deadlock the retry loop or
// leak a process once the try budget expires.
constexpr const char* kCarrierSenseScript = R"(
try for 3 seconds
  read-file-nr -> n
  if ${n} .lt. 20
    failure
  else
    condor_submit
  end
end
)";

class CarrierSenseWorld final : public ScenarioWorld {
 public:
  CarrierSenseWorld(sim::Kernel& kernel, const grid::ScheddConfig& config,
                    Rng fault_rng)
      : schedd(kernel, config),
        faults(sim::FaultPlan()
                   .add("schedd.submit", sim::FaultPlan::error(0.25))
                   .add("schedd.submit",
                        sim::FaultPlan::crash_at(kEpoch + msec(50))),
               fault_rng),
        executor(kernel) {}

  grid::Schedd schedd;
  core::FaultInjector faults;
  shell::SimExecutor executor;
  std::vector<std::unique_ptr<shell::Session>> sessions;
};

class CarrierSenseScenario final : public Scenario {
 public:
  std::string name() const override { return "carrier-sense-crash"; }

  std::unique_ptr<ScenarioWorld> build(sim::Kernel& kernel,
                                       Strategy* strategy,
                                       InvariantSet& invariants) override {
    grid::ScheddConfig config;
    config.fd_capacity = 60;
    config.fds_per_connection = 20;
    config.fds_per_connection_jitter = 0;
    config.fds_per_service = 4;
    config.fds_per_transfer = 0;
    config.service_concurrency = 1;
    config.service_min = msec(20);
    config.service_max = msec(20);
    config.slowdown_per_connection = 0;
    config.connect_time = msec(10);
    config.restart_delay = msec(300);
    auto world =
        std::make_unique<CarrierSenseWorld>(kernel, config, kernel.rng());
    CarrierSenseWorld* w = world.get();
    w->faults.set_strategy(strategy);
    w->schedd.set_fault_injector(&w->faults);
    w->executor.register_command(
        "read-file-nr",
        [w](sim::Context& ctx,
            const shell::CommandInvocation&) -> shell::CommandResult {
          ctx.sleep(msec(1));
          return {Status::success(),
                  std::to_string(w->schedd.fd_table().available()), ""};
        });
    w->executor.register_command(
        "condor_submit",
        [w](sim::Context& ctx,
            const shell::CommandInvocation&) -> shell::CommandResult {
          return {w->schedd.submit(ctx), "", ""};
        });
    shell::SessionOptions session_options;
    session_options.backoff.kind = core::BackoffPolicy::Kind::kFixed;
    session_options.backoff.base = msec(100);
    session_options.backoff.jitter_min = 1.0;
    session_options.backoff.jitter_max = 1.0;
    for (int i = 0; i < 2; ++i) {
      w->sessions.push_back(
          std::make_unique<shell::Session>(w->executor, session_options));
      shell::Session* session = w->sessions.back().get();
      kernel.spawn("submitter" + std::to_string(i), [w, session](
                                                        sim::Context& ctx) {
        shell::SimExecutor::ContextBinding binding(w->executor, ctx);
        (void)session->run_source(kCarrierSenseScript);
      });
    }
    (void)invariants;  // defaults (no leaks / accounting) are the contract
    return world;
  }
};

// ---------------------------------------------------- wake-token-selftest

// Re-arms the pre-PR-6 accounting bug (kill without invalidate) through the
// KernelOptions debug knob.  The drift is only observable in the window
// between the kill and the delivery of the victim's kill-wakeup -- exactly
// the kind of ordering-dependent bug seed-sampled chaos can miss and the
// explorer cannot: some interleaving delivers another process's wakeup
// inside the window, and the per-transition queue-accounting invariant
// fires with a replayable trace.
class WakeTokenWorld final : public ScenarioWorld {
 public:
  sim::ProcessHandle sleeper;
};

class WakeTokenScenario final : public Scenario {
 public:
  std::string name() const override { return "wake-token-selftest"; }

  sim::KernelOptions kernel_options(sim::KernelOptions base) const override {
    base.debug_kill_skips_invalidate = true;
    return base;
  }

  std::unique_ptr<ScenarioWorld> build(sim::Kernel& kernel, Strategy*,
                                       InvariantSet&) override {
    auto world = std::make_unique<WakeTokenWorld>();
    WakeTokenWorld* w = world.get();
    w->sleeper = kernel.spawn("sleeper", [](sim::Context& ctx) {
      ctx.sleep(sec(1));  // the pending far-future wakeup the kill strands
    });
    kernel.spawn("ticker", [](sim::Context& ctx) {
      for (int i = 0; i < 3; ++i) ctx.yield();
    });
    kernel.spawn("killer", [w](sim::Context& ctx) {
      ctx.yield();
      ctx.kill(w->sleeper, "selftest kill");
    });
    return world;
  }
};

// ---------------------------------------------------- cross-shard-window

// A two-shard ShardedKernel under the explorer: a client on shard 0
// submits to a schedd on shard 1 through the cross-shard mailbox (request
// and reply both cross a conservative window boundary), while a killer on
// shard 0 kills the client at the exact instant the reply delivery wakes.
// The explorer enumerates both the schedule ambiguity at that boundary
// (kill-before-reply / reply-before-kill) and the schedd's probabilistic
// fault branch.  Whatever the interleaving: both shard kernels must drain
// with exact accounting, the reply must run at most once, and a client
// that completed must have consumed exactly one reply.
class CrossShardWorld final : public ScenarioWorld {
 public:
  // Shared by the client, the request payload, and the reply payload, so
  // it survives whichever dies first (client killed mid-wait, message
  // dropped at shutdown).
  struct Rpc {
    explicit Rpc(sim::Kernel& home) : reply(home) {}
    sim::Event reply;
    Status result = Status::unavailable("rpc dropped");
  };

  CrossShardWorld(std::uint64_t seed, const sim::ShardedKernelOptions& opts,
                  const grid::ScheddConfig& config)
      : sk(seed, opts),
        schedd(sk.shard(1), config),
        faults(sim::FaultPlan().add(config.fault_site,
                                    sim::FaultPlan::error(0.5)),
               sk.shard(1).rng().stream("faults")) {}

  ~CrossShardWorld() override {
    // Kill the shard processes (which reference schedd/faults, declared
    // after sk) before the members destruct.  Per-shard shutdown also
    // detaches any installed strategy.
    sk.shutdown();
  }

  sim::ShardedKernel sk;
  grid::Schedd schedd;        // shard 1
  core::FaultInjector faults;
  sim::ProcessHandle client;  // shard 0
  bool client_done = false;
  Status rpc_result = Status::success();
  int replies = 0;
};

class CrossShardScenario final : public Scenario {
 public:
  std::string name() const override { return "cross-shard-window"; }

  sim::KernelOptions kernel_options(sim::KernelOptions base) const override {
    // Stash the explorer-level options (backend, queue): run_one calls this
    // before build(), and the shard kernels below must execute on the same
    // configuration as the (empty) explorer kernel.
    shard_kernel_ = base;
    return base;
  }

  std::unique_ptr<ScenarioWorld> build(sim::Kernel& kernel, Strategy* strategy,
                                       InvariantSet& invariants) override {
    (void)kernel;  // stays empty; drive() runs the sharded world instead
    sim::ShardedKernelOptions opts;
    opts.shards = 2;
    opts.threads = 1;  // DFS prefix replay must stay on the calling thread
    opts.lookahead = msec(10);
    opts.kernel = shard_kernel_;
    // Deterministic single-slot schedd: the only RNG-free ambiguity left
    // is the strategy's (schedule choices + the fault rule).
    grid::ScheddConfig config;
    config.fd_capacity = 60;
    config.fds_per_connection = 20;
    config.fds_per_connection_jitter = 0;
    config.fds_per_service = 4;
    config.fds_per_transfer = 0;
    config.service_concurrency = 1;
    config.service_min = msec(20);
    config.service_max = msec(20);
    config.slowdown_per_connection = 0;
    config.connect_time = msec(10);
    config.restart_delay = msec(300);
    auto world = std::make_unique<CrossShardWorld>(1, opts, config);
    CrossShardWorld* w = world.get();
    w->faults.set_strategy(strategy);
    w->schedd.set_fault_injector(&w->faults);
    for (std::size_t s = 0; s < w->sk.shard_count(); ++s) {
      w->sk.shard(s).logger().set_threshold(LogLevel::kOff);
      w->sk.shard(s).set_strategy(strategy);
    }
    sim::ShardedKernel* k = &w->sk;
    grid::Schedd* schedd = &w->schedd;
    // Timeline (virtual, lookahead 10ms): request posted at 0 delivers at
    // 10ms; connect 10ms + service 20ms finish the submit at 40ms; the
    // reply delivers at 50ms -- the same instant the killer fires, so the
    // client's fate rides on a window-boundary schedule choice.
    w->client = k->spawn(0, "client", [w, k, schedd](sim::Context& ctx) {
      auto rpc = std::make_shared<CrossShardWorld::Rpc>(k->shard(0));
      k->post(/*src_shard=*/0, /*src_site=*/0, /*dst_shard=*/1, msec(10),
              "rpc:submit", [w, k, schedd, rpc](sim::Context& rctx) {
                const Status result = schedd->submit(rctx);
                k->post(/*src_shard=*/1, /*src_site=*/1, /*dst_shard=*/0,
                        msec(10), "rpc:reply",
                        [w, rpc, result](sim::Context&) {
                          ++w->replies;
                          rpc->result = result;
                          rpc->reply.set();
                        });
              });
      ctx.wait(rpc->reply);
      w->rpc_result = rpc->result;
      w->client_done = true;
    });
    k->spawn(0, "killer", [w](sim::Context& ctx) {
      ctx.sleep(msec(50));
      ctx.kill(w->client, "window-boundary kill");
    });
    invariants.add(
        "shard-queue-accounting",
        [w](const CheckContext&) -> Status {
          for (std::size_t s = 0; s < w->sk.shard_count(); ++s) {
            const Status status = w->sk.shard(s).verify_queue_accounting();
            if (status.failed()) return status;
          }
          return Status::success();
        },
        /*every_transition=*/true);
    invariants.add("reply-runs-at-most-once",
                   [w](const CheckContext&) -> Status {
                     if (w->replies > 1) {
                       return Status::failure(
                           "cross-shard reply delivered " +
                           std::to_string(w->replies) + " times");
                     }
                     return Status::success();
                   },
                   /*every_transition=*/true);
    invariants.add("cross-shard-drains", [w](const CheckContext& ctx) -> Status {
      if (!ctx.at_end) return Status::success();
      if (w->sk.live_process_count() != 0) {
        return Status::failure(
            std::to_string(w->sk.live_process_count()) +
            " process(es) still live across the shards after the run");
      }
      if (w->client_done && w->replies != 1) {
        return Status::failure("client completed without consuming a reply");
      }
      return Status::success();
    });
    return world;
  }

  void drive(sim::Kernel& kernel, ScenarioWorld& world) override {
    (void)kernel;
    static_cast<CrossShardWorld&>(world).sk.run();
  }

 private:
  mutable sim::KernelOptions shard_kernel_;
};

// ------------------------------------------- reservation-grant-kill

// Two bulk clients negotiate malleable grants from a ReservationBook whose
// capacity (500 B/s) fits only one at a time, then stream over a fluid
// link; a killer fires at t=2s -- the exact instant the second grant
// starts AND the first grant's stream completes, so the victim dies either
// at grant delivery (unwinding the sleep-to-start) or at stream completion
// (aborting the fluid flow), depending on the schedule the explorer picks.
// A probabilistic stall fault shifts the flows half a second to widen the
// race.  Whatever the interleaving: GrantLease must return every booking
// (no active grants at the end), the fluid link must drain (no orphaned
// flows), the book must never oversubscribe mid-flight, and the requester
// the killer never targets must complete.
class ReservationKillWorld final : public ScenarioWorld {
 public:
  ReservationKillWorld(sim::Kernel& kernel, Rng fault_rng)
      : link(kernel, link_config()),
        book(book_config()),
        faults(sim::FaultPlan().add("link.write",
                                    sim::FaultPlan::stall(0.5, msec(500))),
               fault_rng) {
    link.set_fault_injector(&faults);
  }

  static grid::SubstrateConfig link_config() {
    grid::SubstrateConfig config;
    config.site = "link";
    config.bytes_per_second = 1000.0;
    config.model = grid::CapacityModel::kFluid;
    return config;
  }

  static grid::ReservationBookConfig book_config() {
    grid::ReservationBookConfig config;
    config.reservable_bps = 500.0;
    config.site = "link.book";
    return config;
  }

  grid::Substrate link;
  grid::ReservationBook book;
  core::FaultInjector faults;
  sim::ProcessHandle victim;
  int completed = 0;
};

class ReservationKillScenario final : public Scenario {
 public:
  std::string name() const override { return "reservation-grant-kill"; }

  std::unique_ptr<ScenarioWorld> build(sim::Kernel& kernel, Strategy* strategy,
                                       InvariantSet& invariants) override {
    auto world = std::make_unique<ReservationKillWorld>(kernel, kernel.rng());
    ReservationKillWorld* w = world.get();
    w->faults.set_strategy(strategy);
    auto requester = [w](sim::Context& ctx) {
      // 1000 bytes at exactly 500 B/s: each grant is a 2-second window,
      // and the book fits one window at a time.
      const grid::Grant grant = w->book.request(ctx, 1000.0, 500.0, 500.0);
      if (!grant.ok()) return;
      grid::GrantLease lease(w->book, grant.id);
      if (ctx.now() < grant.start) ctx.sleep(grant.start - ctx.now());
      const core::FaultDecision fault = w->link.decide(ctx, "write");
      if (fault.action == core::FaultDecision::Action::kStall) {
        ctx.sleep(fault.stall);
      }
      sim::FluidFlowOptions flow;
      flow.weight = grid::kReservedWeight;
      flow.rate_cap = grant.rate;
      if (w->link.stream(ctx, 1000.0, flow).ok()) ++w->completed;
    };
    kernel.spawn("requester0", requester);
    w->victim = kernel.spawn("requester1", requester);
    kernel.spawn("killer", [w](sim::Context& ctx) {
      ctx.sleep(sec(2));  // grant-delivery instant of the queued grant
      ctx.kill(w->victim, "grant-delivery kill");
    });
    invariants.add(
        "book-never-oversubscribes",
        [w](const CheckContext& ctx) -> Status {
          const double reserved = w->book.reserved_at(ctx.kernel.now());
          if (reserved > w->book.reservable_bps() + 1e-9) {
            return Status::failure("book oversubscribed: " +
                                   std::to_string(reserved) + " reserved of " +
                                   std::to_string(w->book.reservable_bps()));
          }
          return Status::success();
        },
        /*every_transition=*/true);
    invariants.add(
        "reservation-releases-grants",
        [w](const CheckContext& ctx) -> Status {
          if (!ctx.at_end) return Status::success();
          if (w->book.active_grants() != 0) {
            return Status::failure(
                std::to_string(w->book.active_grants()) +
                " grant(s) still booked after the run (GrantLease leak)");
          }
          if (w->link.fluid() != nullptr &&
              w->link.fluid()->active_flows() != 0) {
            return Status::failure(
                std::to_string(w->link.fluid()->active_flows()) +
                " fluid flow(s) still active after the run");
          }
          if (w->completed < 1) {
            return Status::failure(
                "the requester the killer never targets did not complete");
          }
          return Status::success();
        });
    return world;
  }
};

// ------------------------------------------------------------- script

class ScriptWorld final : public ScenarioWorld {
 public:
  explicit ScriptWorld(sim::Kernel& kernel)
      : executor(kernel), session(executor) {}

  shell::SimExecutor executor;
  shell::Session session;
  Status result = Status::success();
};

class ScriptScenario final : public Scenario {
 public:
  ScriptScenario(std::string name, std::string source)
      : name_(std::move(name)), source_(std::move(source)) {}

  std::string name() const override { return name_; }

  std::unique_ptr<ScenarioWorld> build(sim::Kernel& kernel, Strategy*,
                                       InvariantSet&) override {
    auto world = std::make_unique<ScriptWorld>(kernel);
    ScriptWorld* w = world.get();
    const std::string& source = source_;
    kernel.spawn("script", [w, source](sim::Context& ctx) {
      shell::SimExecutor::ContextBinding binding(w->executor, ctx);
      w->result = w->session.run_source(source);
    });
    return world;
  }

 private:
  std::string name_;
  std::string source_;
};

}  // namespace

std::vector<std::string> scenario_names() {
  return {"forall-abort", "try-timeout-resource", "carrier-sense-crash",
          "wake-token-selftest", "cross-shard-window",
          "reservation-grant-kill"};
}

std::unique_ptr<Scenario> make_scenario(const std::string& name) {
  if (name == "forall-abort") return std::make_unique<ForallAbortScenario>();
  if (name == "try-timeout-resource") {
    return std::make_unique<TryTimeoutScenario>();
  }
  if (name == "carrier-sense-crash") {
    return std::make_unique<CarrierSenseScenario>();
  }
  if (name == "wake-token-selftest") {
    return std::make_unique<WakeTokenScenario>();
  }
  if (name == "cross-shard-window") {
    return std::make_unique<CrossShardScenario>();
  }
  if (name == "reservation-grant-kill") {
    return std::make_unique<ReservationKillScenario>();
  }
  return nullptr;
}

std::unique_ptr<Scenario> make_script_scenario(std::string name,
                                               std::string source) {
  return std::make_unique<ScriptScenario>(std::move(name), std::move(source));
}

}  // namespace ethergrid::mc
