#include "mc/explorer.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace ethergrid::mc {

namespace {

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

Invariant no_leaked_processes() {
  return Invariant{
      "no-leaked-processes", /*every_transition=*/false,
      [](const CheckContext& ctx) -> Status {
        const std::size_t live = ctx.kernel.live_process_count();
        if (live == 0) return Status::success();
        // run() only returns when the queue is empty, so anything still
        // live is blocked with no pending wakeup: a leak or a deadlock.
        return Status::failure(
            std::to_string(live) +
            " process(es) still live after the run drained "
            "(leaked or deadlocked): " +
            join_names(ctx.kernel.live_process_names()));
      }};
}

Invariant queue_accounting() {
  return Invariant{"queue-accounting", /*every_transition=*/true,
                   [](const CheckContext& ctx) -> Status {
                     return ctx.kernel.verify_queue_accounting();
                   }};
}

// The per-exploration Strategy implementation: answers choice points by
// replaying the DFS stack prefix and extending it at the frontier, ticks
// budgets and per-transition invariants from on_transition, and records the
// choice vector for counterexample traces.
class Explorer::Driver final : public Strategy {
 public:
  Driver(Scenario& scenario, const ExplorerOptions& options,
         const std::vector<Decision>* replay_trace)
      : scenario_(scenario), options_(options), replay_trace_(replay_trace) {}

  // --- per-execution state, reset by begin_run ---
  sim::Kernel* kernel = nullptr;
  ScenarioWorld* world = nullptr;
  const InvariantSet* invariants = nullptr;

  ExplorerStats stats;
  std::vector<Violation> violations;

  bool bailed() const { return bail_; }
  bool truncated() const { return truncated_run_; }
  bool pruned() const { return pruned_run_; }
  bool violated() const { return violated_run_; }
  std::uint64_t transitions_this_run() const { return transitions_run_; }

  void begin_run() {
    depth_ = 0;
    current_.clear();
    transitions_run_ = 0;
    bail_ = false;
    truncated_run_ = false;
    pruned_run_ = false;
    violated_run_ = false;
    ++execution_index_;
  }

  void record_violation(std::string invariant, std::string message) {
    violations.push_back(Violation{std::move(invariant), std::move(message),
                                   current_, execution_index_ - 1});
    violated_run_ = true;
    bail_ = true;
  }

  std::size_t choose(const ChoicePoint& cp) override {
    if (bail_) return 0;
    ++stats.choice_points;
    if (replay_trace_ != nullptr) return choose_replay(cp);
    return choose_explore(cp);
  }

  bool on_transition() override {
    if (bail_) return false;
    ++transitions_run_;
    ++stats.transitions;
    if (transitions_run_ > options_.max_transitions) {
      truncated_run_ = true;
      ++stats.transition_truncations;
      bail_ = true;
      return false;
    }
    const CheckContext ctx{*kernel, /*at_end=*/false, transitions_run_};
    for (const Invariant& inv : invariants->all()) {
      if (!inv.every_transition) continue;
      const Status status = inv.check(ctx);
      if (status.failed()) {
        record_violation(inv.name, status.message());
        return false;
      }
    }
    return true;
  }

  // End-of-execution invariant pass; only meaningful for runs that drained
  // to completion (a truncated or pruned run is mid-flight by design).
  void check_end_invariants() {
    if (bail_ || truncated_run_ || pruned_run_) return;
    const CheckContext ctx{*kernel, /*at_end=*/true, transitions_run_};
    for (const Invariant& inv : invariants->all()) {
      const Status status = inv.check(ctx);
      if (status.failed()) {
        record_violation(inv.name, status.message());
        return;
      }
    }
    stats.max_depth_seen = std::max(stats.max_depth_seen, depth_);
  }

  // Advances the deepest node with an unexplored, non-sleeping branch.
  // Returns false when the whole tree is closed.
  bool backtrack() {
    while (!stack_.empty()) {
      Node& node = stack_.back();
      node.explored.push_back(node.labels[node.chosen]);
      std::size_t next = node.chosen + 1;
      while (next < node.labels.size() &&
             node.sleep.count(node.labels[next]) != 0) {
        ++stats.sleep_set_skips;
        ++next;
      }
      if (next < node.labels.size()) {
        node.chosen = next;
        ++stats.branches_explored;
        return true;
      }
      stack_.pop_back();
    }
    return false;
  }

  const std::vector<Decision>& current_trace() const { return current_; }

 private:
  struct Node {
    ChoicePoint::Kind kind;
    std::string site;
    std::vector<std::string> labels;
    std::size_t chosen = 0;
    std::vector<std::string> explored;  // branches already fully explored
    std::set<std::string> sleep;        // inherited sleep set (POR)
  };

  void record_decision(const ChoicePoint& cp, std::size_t chosen) {
    Decision d;
    d.kind = cp.kind;
    d.site = std::string(cp.site);
    d.chosen = chosen;
    d.arity = cp.labels.size();
    d.label = chosen < cp.labels.size() ? cp.labels[chosen] : std::string();
    current_.push_back(std::move(d));
  }

  std::size_t choose_replay(const ChoicePoint& cp) {
    if (depth_ >= replay_trace_->size()) {
      // Past the recorded prefix: follow the default deterministic order.
      record_decision(cp, 0);
      ++depth_;
      return 0;
    }
    const Decision& d = (*replay_trace_)[depth_];
    if (d.kind != cp.kind || d.arity != cp.labels.size() ||
        (d.chosen < cp.labels.size() && !d.label.empty() &&
         d.label != cp.labels[d.chosen])) {
      record_violation(
          "mc.divergence",
          "replay diverged at decision " + std::to_string(depth_) +
              ": recorded " + std::string(choice_kind_name(d.kind)) + "/" +
              d.label + " arity " + std::to_string(d.arity) + ", live " +
              std::string(choice_kind_name(cp.kind)) + " arity " +
              std::to_string(cp.labels.size()));
      return 0;
    }
    const std::size_t chosen =
        d.chosen < cp.labels.size() ? d.chosen : 0;
    record_decision(cp, chosen);
    ++depth_;
    return chosen;
  }

  std::size_t choose_explore(const ChoicePoint& cp) {
    if (depth_ < stack_.size()) {
      // Replaying the current DFS prefix.  The simulation is deterministic,
      // so the same prefix must surface the same choice points; anything
      // else means a scenario leaked nondeterminism past the seam.
      Node& node = stack_[depth_];
      if (node.kind != cp.kind || node.labels != cp.labels) {
        record_violation("mc.divergence",
                         "prefix replay diverged at decision " +
                             std::to_string(depth_) +
                             " (scenario is nondeterministic outside the "
                             "strategy seam)");
        return 0;
      }
      record_decision(cp, node.chosen);
      ++depth_;
      return node.chosen;
    }
    // Frontier: a choice point no previous execution has reached.
    if (depth_ >= options_.max_depth) {
      truncated_run_ = true;
      ++stats.depth_truncations;
      bail_ = true;
      return 0;
    }
    if (options_.state_pruning) {
      std::uint64_t digest = kernel->state_digest();
      digest ^= world->digest() * 0x9e3779b97f4a7c15ull;
      if (!seen_states_.insert(digest).second) {
        ++stats.state_prunes;
        pruned_run_ = true;
        bail_ = true;
        return 0;
      }
    }
    Node node;
    node.kind = cp.kind;
    node.site = std::string(cp.site);
    node.labels = cp.labels;
    if (!stack_.empty()) {
      // Sleep-set inheritance: a branch explored at the parent stays asleep
      // below as long as it is independent of the branch taken there.
      const Node& parent = stack_.back();
      const std::string& taken = parent.labels[parent.chosen];
      auto inherit = [&](const std::string& label) {
        if (scenario_.independent(label, taken)) node.sleep.insert(label);
      };
      for (const std::string& label : parent.sleep) inherit(label);
      for (const std::string& label : parent.explored) inherit(label);
    }
    std::size_t first = 0;
    while (first < node.labels.size() &&
           node.sleep.count(node.labels[first]) != 0) {
      ++stats.sleep_set_skips;
      ++first;
    }
    if (first == node.labels.size()) {
      // Every branch is asleep: the whole subtree is covered by siblings.
      pruned_run_ = true;
      bail_ = true;
      return 0;
    }
    node.chosen = first;
    record_decision(cp, first);
    stack_.push_back(std::move(node));
    ++stats.branches_explored;
    ++depth_;
    stats.max_depth_seen = std::max(stats.max_depth_seen, depth_);
    return first;
  }

  Scenario& scenario_;
  const ExplorerOptions& options_;
  const std::vector<Decision>* replay_trace_;

  std::vector<Node> stack_;
  std::unordered_set<std::uint64_t> seen_states_;
  std::uint64_t execution_index_ = 0;

  // Per-execution state.
  std::size_t depth_ = 0;
  std::vector<Decision> current_;
  std::uint64_t transitions_run_ = 0;
  bool bail_ = false;
  bool truncated_run_ = false;
  bool pruned_run_ = false;
  bool violated_run_ = false;
};

Explorer::Explorer(Scenario& scenario, ExplorerOptions options)
    : scenario_(scenario), options_(std::move(options)) {}

void Explorer::run_one(Driver& driver, ExploreResult& result) {
  ++driver.stats.executions;
  driver.begin_run();
  sim::Kernel kernel(options_.seed,
                     scenario_.kernel_options(options_.kernel));
  // Thousands of re-executions of arbitrary interleavings would flood the
  // back channel with meaningless warnings; violations carry their own trace.
  kernel.logger().set_threshold(LogLevel::kOff);
  InvariantSet invariants;
  invariants.add(queue_accounting());
  invariants.add(no_leaked_processes());
  std::unique_ptr<ScenarioWorld> world =
      scenario_.build(kernel, &driver, invariants);
  driver.kernel = &kernel;
  driver.world = world.get();
  driver.invariants = &invariants;
  kernel.set_strategy(&driver);
  try {
    scenario_.drive(kernel, *world);
  } catch (const std::exception& e) {
    driver.record_violation("mc.exception",
                           std::string("exception escaped the run: ") +
                               e.what());
  } catch (...) {
    driver.record_violation("mc.exception",
                           "non-standard exception escaped the run");
  }
  kernel.set_strategy(nullptr);
  driver.check_end_invariants();
  kernel.shutdown();
  driver.kernel = nullptr;
  driver.world = nullptr;
  driver.invariants = nullptr;
  world.reset();
  (void)result;
}

ExploreResult Explorer::explore() {
  ExploreResult result;
  Driver driver(scenario_, options_, /*replay_trace=*/nullptr);
  bool budget_hit = false;
  bool stopped_early = false;
  while (true) {
    if (driver.stats.executions >= options_.max_executions) {
      budget_hit = true;
      stopped_early = true;
      break;
    }
    run_one(driver, result);
    if (driver.truncated()) budget_hit = true;
    if (driver.violated() && options_.stop_on_first_violation) {
      stopped_early = true;
      break;
    }
    if (!driver.backtrack()) break;  // tree closed
  }
  result.stats = driver.stats;
  result.violations = std::move(driver.violations);
  result.complete = !budget_hit && !stopped_early;
  return result;
}

ExploreResult Explorer::replay(const std::vector<Decision>& trace) {
  ExploreResult result;
  Driver driver(scenario_, options_, &trace);
  run_one(driver, result);
  result.stats = driver.stats;
  result.violations = std::move(driver.violations);
  result.complete = !driver.truncated();
  return result;
}

}  // namespace ethergrid::mc
