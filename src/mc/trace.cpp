#include "mc/trace.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ethergrid::mc {

namespace {

constexpr const char* kMagic = "ethergrid-mc-trace v1";

}  // namespace

std::string format_trace(const TraceFile& trace) {
  std::string out;
  out += kMagic;
  out += '\n';
  out += "scenario " + trace.scenario + "\n";
  out += "queue ";
  out += sim::queue_impl_name(trace.queue);
  out += '\n';
  out += "seed " + std::to_string(trace.seed) + "\n";
  if (!trace.violation.empty()) {
    out += "violation " + trace.violation + "\n";
  }
  for (const Decision& d : trace.decisions) {
    out += "d ";
    out += choice_kind_name(d.kind);
    out += ' ' + std::to_string(d.chosen) + ' ' + std::to_string(d.arity) +
           ' ' + d.site + ' ' + d.label + '\n';
  }
  out += "end\n";
  return out;
}

Status parse_trace(const std::string& text, TraceFile* out) {
  *out = TraceFile{};
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& what) {
    return Status::failure("trace line " + std::to_string(line_no) + ": " +
                           what);
  };
  if (!std::getline(in, line)) return Status::failure("trace: empty input");
  ++line_no;
  if (line != kMagic) return fail("bad magic (expected \"" +
                                  std::string(kMagic) + "\")");
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
      break;
    }
    if (key == "scenario") {
      fields >> out->scenario;
      if (out->scenario.empty()) return fail("scenario: missing name");
    } else if (key == "queue") {
      std::string name;
      fields >> name;
      if (name == "wheel") {
        out->queue = sim::QueueImpl::kWheel;
      } else if (name == "heap") {
        out->queue = sim::QueueImpl::kHeap;
      } else {
        return fail("queue: expected wheel|heap, got \"" + name + "\"");
      }
    } else if (key == "seed") {
      if (!(fields >> out->seed)) return fail("seed: expected an integer");
    } else if (key == "violation") {
      fields >> out->violation;
      if (out->violation.empty()) return fail("violation: missing name");
    } else if (key == "d") {
      Decision d;
      std::string kind;
      if (!(fields >> kind >> d.chosen >> d.arity >> d.site)) {
        return fail("decision: expected `d <kind> <chosen> <arity> <site> "
                    "<label>`");
      }
      if (kind == "sched") {
        d.kind = ChoicePoint::Kind::kSchedule;
      } else if (kind == "fault") {
        d.kind = ChoicePoint::Kind::kFault;
      } else {
        return fail("decision: unknown kind \"" + kind + "\"");
      }
      if (d.arity == 0 || d.chosen >= d.arity) {
        return fail("decision: chosen " + std::to_string(d.chosen) +
                    " out of range for arity " + std::to_string(d.arity));
      }
      // The label is the remainder of the line (may contain spaces).
      std::getline(fields, d.label);
      if (!d.label.empty() && d.label[0] == ' ') d.label.erase(0, 1);
      out->decisions.push_back(std::move(d));
    }
    // Unknown keys are skipped for forward compatibility.
  }
  if (!saw_end) return Status::failure("trace: missing `end` terminator");
  if (out->scenario.empty()) {
    return Status::failure("trace: missing `scenario` header");
  }
  return Status::success();
}

Status write_trace_file(const std::string& path, const TraceFile& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::io_error("cannot open for write: " + path);
  out << format_trace(trace);
  out.flush();
  if (!out) return Status::io_error("write failed: " + path);
  return Status::success();
}

Status read_trace_file(const std::string& path, TraceFile* out) {
  std::ifstream in(path);
  if (!in) return Status::io_error("cannot open: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_trace(text.str(), out);
}

}  // namespace ethergrid::mc
